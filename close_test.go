package mcn

import (
	"errors"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"mcn/internal/core"
	"mcn/internal/dynamic"
	"mcn/internal/flat"
)

// Close must run the release hook exactly once no matter how many
// goroutines race on it (run with -race), and Next must fail closed.
func TestIteratorCloseReleasesOnce(t *testing.T) {
	g := cityGraph(t)
	src := flat.Compile(g)
	loc, err := LocationAtNode(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		it, err := core.NewTopKIterator(src, loc, WeightedSum(1, 1), core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		var released atomic.Int32
		it.SetRelease(func() { released.Add(1) })
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				it.Close()
			}()
		}
		wg.Wait()
		if n := released.Load(); n != 1 {
			t.Fatalf("trial %d: release ran %d times, want exactly 1", trial, n)
		}
		if _, _, err := it.Next(); !errors.Is(err, ErrIteratorClosed) {
			t.Fatalf("Next after Close: err = %v, want ErrIteratorClosed", err)
		}
	}
}

// Same contract for the Maintainer; Insert must fail closed while the
// materialised entries stay readable.
func TestMaintainerCloseReleasesOnce(t *testing.T) {
	g := cityGraph(t)
	net := FromGraph(g)
	loc, err := LocationAtNode(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		m, err := dynamic.New(net.src, loc, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		var released atomic.Int32
		m.SetRelease(func() { released.Add(1) })
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				m.Close()
			}()
		}
		wg.Wait()
		if n := released.Load(); n != 1 {
			t.Fatalf("trial %d: release ran %d times, want exactly 1", trial, n)
		}
		if _, err := m.Insert(0, 0.5); !errors.Is(err, ErrMaintainerClosed) {
			t.Fatalf("Insert after Close: err = %v, want ErrMaintainerClosed", err)
		}
		if len(m.Skyline()) == 0 {
			t.Fatal("materialised skyline unreadable after Close")
		}
	}
}

// Close racing an in-flight Next must not release the scratch from under
// it: Close drains the call (the closed flag aborts it promptly), so the
// pool never receives a scratch another goroutine is still expanding on.
// Run with -race; the interleaved full queries would also catch a shared
// scratch via wrong results.
func TestCloseConcurrentWithNext(t *testing.T) {
	g, err := Synthetic(SyntheticConfig{Nodes: 800, Facilities: 120, D: 2, Seed: 71})
	if err != nil {
		t.Fatal(err)
	}
	net := FromGraph(g)
	loc := RandomQueries(g, 1, 5)[0]
	agg := WeightedSum(1, 1)

	for trial := 0; trial < 30; trial++ {
		it, err := net.TopKIterator(ctx, loc, agg)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			for {
				if _, ok, err := it.Next(); err != nil || !ok {
					return // ErrIteratorClosed or exhaustion
				}
			}
		}()
		go func() {
			defer wg.Done()
			it.Close()
		}()
		// Concurrent plain queries drawing from the same pool.
		if _, err := net.Skyline(ctx, loc); err != nil {
			t.Fatal(err)
		}
		wg.Wait()
	}
}

// Closed handles must return their scratch to the pool without poisoning
// it: interleave iterator/maintainer lifecycles with plain queries and
// check the answers stay right.
func TestCloseReturnsScratchWithoutPoisoning(t *testing.T) {
	g, err := Synthetic(SyntheticConfig{Nodes: 1_000, Facilities: 150, D: 2, Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	net := FromGraph(g)
	locs := RandomQueries(g, 4, 11)
	agg := WeightedSum(0.6, 0.4)

	want := make([][]FacilityID, len(locs))
	for i, loc := range locs {
		res, err := net.Skyline(ctx, loc, WithEngine(CEA))
		if err != nil {
			t.Fatal(err)
		}
		want[i] = idsSorted(res)
	}

	for round := 0; round < 30; round++ {
		loc := locs[round%len(locs)]
		it, err := net.TopKIterator(ctx, loc, agg)
		if err != nil {
			t.Fatal(err)
		}
		for pulls := 0; pulls <= round%4; pulls++ {
			if _, ok, err := it.Next(); err != nil || !ok {
				break
			}
		}
		it.Close()
		it.Close() // double-Close from the owner must be a no-op

		m, err := net.Maintain(ctx, loc)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Insert(loc.Edge, loc.T); err != nil {
			t.Fatal(err)
		}
		m.Close()

		res, err := net.Skyline(ctx, loc, WithEngine(CEA))
		if err != nil {
			t.Fatal(err)
		}
		if got := idsSorted(res); !reflect.DeepEqual(got, want[round%len(locs)]) {
			t.Fatalf("round %d: skyline %v != %v after handle churn", round, got, want[round%len(locs)])
		}
	}
}
