// Package mcn_test: the benchmarks live in the external test package —
// internal/bench now imports mcn itself (the cluster experiment stands up
// real serving stacks), so an in-package test importing internal/bench
// would be an import cycle.
package mcn_test

// One testing.B benchmark per figure of the paper's evaluation (Sec. VI).
// Each sub-benchmark runs one query per iteration, cycling through the
// dataset's query locations, and reports physical page reads per query next
// to the usual ns/op. Dataset scale is controlled with MCN_BENCH_SCALE
// (default 0.05 so `go test -bench=.` stays quick; cmd/mcnbench -full runs
// the paper-scale sweeps).

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"mcn"
	"mcn/internal/bench"
	"mcn/internal/core"
	"mcn/internal/engine"
	"mcn/internal/expand"
	"mcn/internal/flat"
	"mcn/internal/gen"
	"mcn/internal/storage"
	"mcn/internal/vec"
)

func benchScale() float64 {
	if s := os.Getenv("MCN_BENCH_SCALE"); s != "" {
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			return v
		}
	}
	return 0.05
}

var (
	dsMu    sync.Mutex
	dsCache = map[string]*bench.Dataset{}
)

// dataset returns a cached dataset for the workload, building it on first
// use.
func dataset(b *testing.B, key string, w bench.Workload) *bench.Dataset {
	b.Helper()
	dsMu.Lock()
	defer dsMu.Unlock()
	if ds, ok := dsCache[key]; ok {
		return ds
	}
	ds, err := bench.BuildDataset(w)
	if err != nil {
		b.Fatal(err)
	}
	dsCache[key] = ds
	return ds
}

func baseWorkload(b *testing.B) bench.Workload {
	cfg := bench.Config{Scale: benchScale(), Queries: 16, Seed: 1}
	return cfg.DefaultWorkload()
}

// runSkyline benchmarks one engine over a dataset.
func runSkylineBench(b *testing.B, ds *bench.Dataset, buffer float64, engine core.Engine) {
	b.Helper()
	net, err := storage.Open(ds.Dev, buffer)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := ds.Queries[i%len(ds.Queries)]
		if _, err := core.Skyline(net, q, core.Options{Engine: engine}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(net.Stats().Physical)/float64(b.N), "pages/query")
}

func runTopKBench(b *testing.B, ds *bench.Dataset, buffer float64, k int, engine core.Engine) {
	b.Helper()
	net, err := storage.Open(ds.Dev, buffer)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % len(ds.Queries)
		if _, err := core.TopK(net, ds.Queries[j], ds.Aggs[j], k, core.Options{Engine: engine}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(net.Stats().Physical)/float64(b.N), "pages/query")
}

func engines() []core.Engine { return []core.Engine{core.LSA, core.CEA} }

// BenchmarkFig08a: skyline vs |P|.
func BenchmarkFig08a(b *testing.B) {
	for _, p := range []int{25_000, 100_000, 200_000} {
		w := baseWorkload(b)
		w.Facilities = int(float64(p) * benchScale())
		ds := dataset(b, fmt.Sprintf("fig8a-%d", p), w)
		for _, e := range engines() {
			b.Run(fmt.Sprintf("P=%dK/%v", p/1000, e), func(b *testing.B) {
				runSkylineBench(b, ds, w.Buffer, e)
			})
		}
	}
}

// BenchmarkFig08b: skyline vs d.
func BenchmarkFig08b(b *testing.B) {
	for _, d := range []int{2, 3, 4, 5} {
		w := baseWorkload(b)
		w.D = d
		ds := dataset(b, fmt.Sprintf("fig8b-%d", d), w)
		for _, e := range engines() {
			b.Run(fmt.Sprintf("d=%d/%v", d, e), func(b *testing.B) {
				runSkylineBench(b, ds, w.Buffer, e)
			})
		}
	}
}

// BenchmarkFig09a: skyline vs edge-cost distribution.
func BenchmarkFig09a(b *testing.B) {
	for _, dist := range []gen.Distribution{gen.AntiCorrelated, gen.Independent, gen.Correlated} {
		w := baseWorkload(b)
		w.Dist = dist
		ds := dataset(b, "fig9a-"+dist.String(), w)
		for _, e := range engines() {
			b.Run(fmt.Sprintf("%v/%v", dist, e), func(b *testing.B) {
				runSkylineBench(b, ds, w.Buffer, e)
			})
		}
	}
}

// BenchmarkFig09b: skyline vs buffer size.
func BenchmarkFig09b(b *testing.B) {
	w := baseWorkload(b)
	ds := dataset(b, "fig9b", w)
	for _, buf := range []float64{0, 0.01, 0.02} {
		for _, e := range engines() {
			b.Run(fmt.Sprintf("buffer=%.1f%%/%v", buf*100, e), func(b *testing.B) {
				runSkylineBench(b, ds, buf, e)
			})
		}
	}
}

// BenchmarkFig10a: top-k vs |P|.
func BenchmarkFig10a(b *testing.B) {
	for _, p := range []int{25_000, 100_000, 200_000} {
		w := baseWorkload(b)
		w.Facilities = int(float64(p) * benchScale())
		ds := dataset(b, fmt.Sprintf("fig8a-%d", p), w) // same data as fig8a
		for _, e := range engines() {
			b.Run(fmt.Sprintf("P=%dK/%v", p/1000, e), func(b *testing.B) {
				runTopKBench(b, ds, w.Buffer, w.K, e)
			})
		}
	}
}

// BenchmarkFig10b: top-k vs d.
func BenchmarkFig10b(b *testing.B) {
	for _, d := range []int{2, 3, 4, 5} {
		w := baseWorkload(b)
		w.D = d
		ds := dataset(b, fmt.Sprintf("fig8b-%d", d), w)
		for _, e := range engines() {
			b.Run(fmt.Sprintf("d=%d/%v", d, e), func(b *testing.B) {
				runTopKBench(b, ds, w.Buffer, w.K, e)
			})
		}
	}
}

// BenchmarkFig11a: top-k vs edge-cost distribution.
func BenchmarkFig11a(b *testing.B) {
	for _, dist := range []gen.Distribution{gen.AntiCorrelated, gen.Independent, gen.Correlated} {
		w := baseWorkload(b)
		w.Dist = dist
		ds := dataset(b, "fig9a-"+dist.String(), w)
		for _, e := range engines() {
			b.Run(fmt.Sprintf("%v/%v", dist, e), func(b *testing.B) {
				runTopKBench(b, ds, w.Buffer, w.K, e)
			})
		}
	}
}

// BenchmarkFig11b: top-k vs buffer size.
func BenchmarkFig11b(b *testing.B) {
	w := baseWorkload(b)
	ds := dataset(b, "fig9b", w)
	for _, buf := range []float64{0, 0.01, 0.02} {
		for _, e := range engines() {
			b.Run(fmt.Sprintf("buffer=%.1f%%/%v", buf*100, e), func(b *testing.B) {
				runTopKBench(b, ds, buf, w.K, e)
			})
		}
	}
}

// BenchmarkFig12: top-k vs k.
func BenchmarkFig12(b *testing.B) {
	w := baseWorkload(b)
	ds := dataset(b, "fig9b", w)
	for _, k := range []int{1, 2, 4, 8, 16} {
		for _, e := range engines() {
			b.Run(fmt.Sprintf("k=%d/%v", k, e), func(b *testing.B) {
				runTopKBench(b, ds, w.Buffer, k, e)
			})
		}
	}
}

// BenchmarkAblation: the Sec. IV-A enhancements on vs off.
func BenchmarkAblation(b *testing.B) {
	w := baseWorkload(b)
	ds := dataset(b, "fig9b", w)
	for _, variant := range []struct {
		name string
		opts core.Options
	}{
		{"LSA", core.Options{Engine: core.LSA}},
		{"LSA-plain", core.Options{Engine: core.LSA, NoEnhancements: true}},
		{"CEA", core.Options{Engine: core.CEA}},
		{"CEA-plain", core.Options{Engine: core.CEA, NoEnhancements: true}},
	} {
		b.Run(variant.name, func(b *testing.B) {
			net, err := storage.Open(ds.Dev, w.Buffer)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Skyline(net, ds.Queries[i%len(ds.Queries)], variant.opts); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(net.Stats().Physical)/float64(b.N), "pages/query")
		})
	}
}

// BenchmarkBaselineSkyline: the naive d-expansions strawman for comparison.
func BenchmarkBaselineSkyline(b *testing.B) {
	w := baseWorkload(b)
	ds := dataset(b, "fig9b", w)
	net, err := storage.Open(ds.Dev, w.Buffer)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.NaiveSkyline(net, ds.Queries[i%len(ds.Queries)], core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(net.Stats().Physical)/float64(b.N), "pages/query")
}

// BenchmarkBatchSkyline: concurrent skyline throughput through the batch
// executor at several worker counts, over one shared disk-resident network.
// Reports queries/sec next to the usual ns/op (which here is wall time for
// the whole 32-query batch).
func BenchmarkBatchSkyline(b *testing.B) {
	w := baseWorkload(b)
	ds := dataset(b, "fig9b", w)
	const batch = 32
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			net, err := storage.Open(ds.Dev, w.Buffer)
			if err != nil {
				b.Fatal(err)
			}
			exec := engine.New(net, engine.Config{Workers: workers})
			reqs := make([]mcn.BatchRequest, batch)
			for i := range reqs {
				reqs[i] = mcn.BatchRequest{Kind: mcn.SkylineQuery, Loc: ds.Queries[i%len(ds.Queries)],
					Opts: core.Options{Engine: core.CEA}}
			}
			var queries int
			b.ReportAllocs()
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				for _, resp := range exec.Execute(context.Background(), reqs) {
					if resp.Err != nil {
						b.Fatal(resp.Err)
					}
				}
				queries += batch
			}
			b.StopTimer()
			if wall := time.Since(start).Seconds(); wall > 0 {
				b.ReportMetric(float64(queries)/wall, "queries/sec")
			}
		})
	}
}

// BenchmarkBatchSkylineMem: concurrent skyline throughput over one shared
// in-memory network — the reference hash-map source vs the flat CSR fast
// path with pooled expansion scratch. The allocs/op delta between the two
// sub-benchmarks is the PR 2 acceptance metric.
func BenchmarkBatchSkylineMem(b *testing.B) {
	w := baseWorkload(b)
	mds, err := bench.BuildMemDataset(w)
	if err != nil {
		b.Fatal(err)
	}
	const batch = 32
	sources := []struct {
		name string
		src  expand.Source
	}{
		{"map", expand.NewMemorySource(mds.Graph)},
		{"flat", flat.Compile(mds.Graph)},
	}
	for _, s := range sources {
		for _, workers := range []int{1, 8} {
			b.Run(fmt.Sprintf("%s/workers=%d", s.name, workers), func(b *testing.B) {
				exec := engine.New(s.src, engine.Config{Workers: workers})
				reqs := make([]engine.Request, batch)
				for i := range reqs {
					reqs[i] = engine.Request{Kind: engine.Skyline, Loc: mds.Queries[i%len(mds.Queries)],
						Opts: core.Options{Engine: core.CEA}}
				}
				// Warmup populates the executor's scratch pool.
				for _, resp := range exec.Execute(context.Background(), reqs) {
					if resp.Err != nil {
						b.Fatal(resp.Err)
					}
				}
				var queries int
				b.ReportAllocs()
				b.ResetTimer()
				start := time.Now()
				for i := 0; i < b.N; i++ {
					for _, resp := range exec.Execute(context.Background(), reqs) {
						if resp.Err != nil {
							b.Fatal(resp.Err)
						}
					}
					queries += batch
				}
				b.StopTimer()
				if wall := time.Since(start).Seconds(); wall > 0 {
					b.ReportMetric(float64(queries)/wall, "queries/sec")
				}
			})
		}
	}
}

// BenchmarkIncrementalTopK: cost of pulling the first 4 results one by one.
func BenchmarkIncrementalTopK(b *testing.B) {
	w := baseWorkload(b)
	ds := dataset(b, "fig9b", w)
	for _, e := range engines() {
		b.Run(e.String(), func(b *testing.B) {
			net, err := storage.Open(ds.Dev, w.Buffer)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				j := i % len(ds.Queries)
				it, err := core.NewTopKIterator(net, ds.Queries[j], ds.Aggs[j], core.Options{Engine: e})
				if err != nil {
					b.Fatal(err)
				}
				for n := 0; n < 4; n++ {
					if _, ok, err := it.Next(); err != nil || !ok {
						break
					}
				}
			}
		})
	}
}

// BenchmarkTopKIteratorNext measures the closeable incremental iterator:
// creation plus the first 4 Next calls, over one shared in-memory network.
// The map sub-benchmark is the pre-v2 configuration (map-based expansion
// state); flat+scratch is what the facade now does — TopKIterator borrows a
// pooled dense scratch and returns it on Close. The allocs/op delta is the
// PR's iterator acceptance metric.
func BenchmarkTopKIteratorNext(b *testing.B) {
	w := baseWorkload(b)
	mds, err := bench.BuildMemDataset(w)
	if err != nil {
		b.Fatal(err)
	}
	coef := make([]float64, w.D)
	for i := range coef {
		coef[i] = 1
	}
	agg := vec.NewWeighted(coef...)

	b.Run("map", func(b *testing.B) {
		src := expand.NewMemorySource(mds.Graph)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			it, err := core.NewTopKIterator(src, mds.Queries[i%len(mds.Queries)], agg, core.Options{})
			if err != nil {
				b.Fatal(err)
			}
			for n := 0; n < 4; n++ {
				if _, ok, err := it.Next(); err != nil || !ok {
					break
				}
			}
			it.Close()
		}
	})
	b.Run("flat+scratch", func(b *testing.B) {
		src := flat.Compile(mds.Graph)
		pool := expand.NewPool(src)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sc := pool.Get()
			it, err := core.NewTopKIterator(src, mds.Queries[i%len(mds.Queries)], agg, core.Options{Scratch: sc})
			if err != nil {
				b.Fatal(err)
			}
			it.SetRelease(func() { pool.Put(sc) })
			for n := 0; n < 4; n++ {
				if _, ok, err := it.Next(); err != nil || !ok {
					break
				}
			}
			it.Close()
		}
	})
}
