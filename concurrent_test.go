package mcn

import (
	"context"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

// Concurrent queries against one opened database must be safe and agree
// with each other (run with -race).
func TestConcurrentQueriesOnSharedDatabase(t *testing.T) {
	g, err := Synthetic(SyntheticConfig{Nodes: 2_000, Facilities: 300, D: 3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "conc.mcn")
	if err := CreateDatabase(g, path); err != nil {
		t.Fatal(err)
	}
	db, err := OpenDatabase(path, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	queries := RandomQueries(g, 8, 13)
	ctx := context.Background()
	agg := WeightedSum(0.5, 0.3, 0.2)

	// Reference answers, computed sequentially.
	wantSky := make([][]FacilityID, len(queries))
	wantTop := make([][]FacilityID, len(queries))
	for i, q := range queries {
		sky, err := db.Skyline(ctx, q, WithEngine(CEA))
		if err != nil {
			t.Fatal(err)
		}
		wantSky[i] = idsSorted(sky)
		top, err := db.TopK(ctx, q, agg, 3)
		if err != nil {
			t.Fatal(err)
		}
		wantTop[i] = top.IDs()
	}

	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < 6; r++ {
				i := (w + r) % len(queries)
				sky, err := db.Skyline(ctx, queries[i], WithEngine(CEA))
				if err != nil {
					t.Errorf("concurrent skyline: %v", err)
					return
				}
				if got := idsSorted(sky); !reflect.DeepEqual(got, wantSky[i]) {
					t.Errorf("query %d: concurrent skyline %v != sequential %v", i, got, wantSky[i])
					return
				}
				top, err := db.TopK(ctx, queries[i], agg, 3)
				if err != nil {
					t.Errorf("concurrent topk: %v", err)
					return
				}
				if got := top.IDs(); !reflect.DeepEqual(got, wantTop[i]) {
					t.Errorf("query %d: concurrent top-k %v != sequential %v", i, got, wantTop[i])
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
