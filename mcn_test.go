package mcn

import (
	"context"
	"math"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
)

// ctx is the do-nothing context the facade tests thread through the
// context-first query API; cancellation behaviour has its own tests.
var ctx = context.Background()

// cityGraph builds a small deterministic city for facade tests: a 2-cost
// grid-ish network with a handful of facilities.
func cityGraph(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(2, false)
	// 3x2 grid of intersections.
	var n [6]NodeID
	for i := range n {
		n[i] = b.AddNode(float64(i%3), float64(i/3))
	}
	edges := []struct {
		u, v NodeID
		w    Costs
	}{
		{n[0], n[1], Of(2, 5)},
		{n[1], n[2], Of(3, 3)},
		{n[3], n[4], Of(4, 2)},
		{n[4], n[5], Of(2, 2)},
		{n[0], n[3], Of(1, 6)},
		{n[1], n[4], Of(2, 2)},
		{n[2], n[5], Of(5, 1)},
	}
	var ids []EdgeID
	for _, e := range edges {
		ids = append(ids, b.AddEdge(e.u, e.v, e.w))
	}
	b.AddFacility(ids[1], 0.5)
	b.AddFacility(ids[2], 0.25)
	b.AddFacility(ids[6], 0.75)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFacadeSkylineEnginesAgree(t *testing.T) {
	g := cityGraph(t)
	net := FromGraph(g)
	loc, err := LocationAtNode(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	lsa, err := net.Skyline(ctx, loc, WithEngine(LSA))
	if err != nil {
		t.Fatal(err)
	}
	cea, err := net.Skyline(ctx, loc, WithEngine(CEA))
	if err != nil {
		t.Fatal(err)
	}
	naive, err := net.BaselineSkyline(ctx, loc)
	if err != nil {
		t.Fatal(err)
	}
	a, b, c := idsSorted(lsa), idsSorted(cea), idsSorted(naive)
	if !reflect.DeepEqual(a, b) || !reflect.DeepEqual(a, c) {
		t.Errorf("engines disagree: LSA %v, CEA %v, baseline %v", a, b, c)
	}
	if len(a) == 0 {
		t.Error("expected a non-empty skyline")
	}
}

func idsSorted(r *Result) []FacilityID {
	ids := r.IDs()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func TestFacadeDiskRoundtrip(t *testing.T) {
	g := cityGraph(t)
	path := filepath.Join(t.TempDir(), "city.mcn")
	if err := CreateDatabase(g, path); err != nil {
		t.Fatal(err)
	}
	db, err := OpenDatabase(path, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if db.D() != 2 {
		t.Errorf("D = %d", db.D())
	}

	loc, err := LocationOnEdge(g, 0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	mem, err := FromGraph(g).Skyline(ctx, loc)
	if err != nil {
		t.Fatal(err)
	}
	disk, err := db.Skyline(ctx, loc, WithEngine(CEA))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(idsSorted(mem), idsSorted(disk)) {
		t.Errorf("disk skyline %v != memory skyline %v", idsSorted(disk), idsSorted(mem))
	}
	stats, ok := db.IOStats()
	if !ok || stats.Logical == 0 {
		t.Errorf("disk query reported no I/O: %+v ok=%v", stats, ok)
	}
	db.ResetIOStats()
	if s, _ := db.IOStats(); s.Logical != 0 {
		t.Error("ResetIOStats did not clear counters")
	}
}

func TestFacadeTopKAndIterator(t *testing.T) {
	g := cityGraph(t)
	net := FromGraph(g)
	loc, err := LocationAtNode(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	agg := WeightedSum(0.7, 0.3)
	res, err := net.TopK(ctx, loc, agg, 2, WithEngine(CEA))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Facilities) != 2 {
		t.Fatalf("top-2 returned %d", len(res.Facilities))
	}
	it, err := net.TopKIterator(ctx, loc, agg)
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	for i := 0; i < 2; i++ {
		f, ok, err := it.Next()
		if err != nil || !ok {
			t.Fatalf("iterator ended early: %v %v", ok, err)
		}
		if math.Abs(f.Score-res.Facilities[i].Score) > 1e-9 {
			t.Errorf("incremental score %g != batch %g", f.Score, res.Facilities[i].Score)
		}
	}
}

func TestFacadeProgressive(t *testing.T) {
	g := cityGraph(t)
	net := FromGraph(g)
	loc, _ := LocationAtNode(g, 0)
	var streamed []FacilityID
	res, err := net.Skyline(ctx, loc, Progressive(func(f Facility) { streamed = append(streamed, f.ID) }))
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(res.Facilities) {
		t.Errorf("streamed %d, result %d", len(streamed), len(res.Facilities))
	}
}

func TestFacadeWithoutEnhancements(t *testing.T) {
	g := cityGraph(t)
	net := FromGraph(g)
	loc, _ := LocationAtNode(g, 2)
	a, err := net.Skyline(ctx, loc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.Skyline(ctx, loc, WithoutEnhancements())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(idsSorted(a), idsSorted(b)) {
		t.Error("enhancements changed the result")
	}
}

func TestFacadeParetoPaths(t *testing.T) {
	g := cityGraph(t)
	net := FromGraph(g)
	paths, err := net.ParetoPaths(ctx, 0, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no Pareto paths found")
	}
	for i, p := range paths {
		for j, q := range paths {
			if i != j && q.Costs.Dominates(p.Costs) {
				t.Errorf("returned path %d dominated by %d", i, j)
			}
		}
	}
}

func TestFacadeParetoRequiresGraph(t *testing.T) {
	g := cityGraph(t)
	path := filepath.Join(t.TempDir(), "c.mcn")
	if err := CreateDatabase(g, path); err != nil {
		t.Fatal(err)
	}
	db, err := OpenDatabase(path, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.ParetoPaths(ctx, 0, 1, 0); err == nil {
		t.Error("Pareto paths on disk network should fail with a clear error")
	}
}

func TestFacadeMaintain(t *testing.T) {
	g := cityGraph(t)
	net := FromGraph(g)
	loc, _ := LocationAtNode(g, 0)
	m, err := net.Maintain(ctx, loc)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	before := len(m.Skyline())
	if _, err := m.Insert(0, 0.1); err != nil {
		t.Fatal(err)
	}
	after := len(m.Skyline())
	if after < before {
		// A very close facility can only shrink the skyline by dominating
		// members, or grow it by joining; both are fine — just exercise it.
		t.Logf("skyline shrank from %d to %d after insert", before, after)
	}
}

func TestFacadeSynthetic(t *testing.T) {
	g, err := Synthetic(SyntheticConfig{Nodes: 2000, Facilities: 300, D: 3, Dist: "correlated", Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if g.D() != 3 || g.NumFacilities() != 300 {
		t.Errorf("synthetic graph: d=%d facilities=%d", g.D(), g.NumFacilities())
	}
	qs := RandomQueries(g, 5, 9)
	if len(qs) != 5 {
		t.Fatalf("queries = %d", len(qs))
	}
	net := FromGraph(g)
	res, err := net.Skyline(ctx, qs[0], WithEngine(CEA))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Facilities) == 0 {
		t.Error("synthetic skyline empty")
	}
}

func TestFacadeSyntheticBadDist(t *testing.T) {
	if _, err := Synthetic(SyntheticConfig{Nodes: 100, Facilities: 5, Dist: "bogus"}); err == nil {
		t.Error("bad distribution accepted")
	}
}
