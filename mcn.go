// Package mcn is a library for preference queries in multi-cost
// transportation networks, reproducing Mouratidis, Lin & Yiu, "Preference
// Queries in Large Multi-Cost Transportation Networks", ICDE 2010.
//
// A multi-cost network (MCN) is a road network whose edges carry a vector of
// d non-negative costs (distance, driving time, walking time, toll, …), with
// facilities (points of interest) lying on its edges. Given a query location
// q on the network, the library answers:
//
//   - Skyline(ctx, q): the facilities not dominated with respect to their d
//     per-cost-type shortest-path costs from q — progressive, with results
//     streamed as they are confirmed;
//   - TopK(ctx, q, f, k): the k facilities minimising an increasingly
//     monotone aggregate f over those costs;
//   - TopKIterator(ctx, q, f): the incremental variant that yields the
//     next-best facility on demand, without fixing k in advance.
//
// The API is context-first (v2): every query entry point takes a leading
// context.Context, and cancelling it — or passing one with a deadline —
// aborts the query at its next interrupt poll, uniformly across single
// queries, batches, iterators and streams. The algorithms' progressive
// nature is surfaced directly as Go range-over-func iterators: SkylineSeq
// streams skyline members the moment they are confirmed, TopKSeq yields
// next-best facilities on demand, and breaking out of either loop stops the
// underlying search. Handles that outlive a call (TopKIterator, Maintainer)
// borrow pooled expansion state and must be Closed.
//
// Queries run over in-memory graphs or over the paper's disk-resident
// storage scheme (adjacency/facility files indexed by paged B+-trees behind
// a sharded clock-sweep buffer pool), with a choice of two engines: LSA
// (independent per-cost expansions) and CEA (shared record fetches; at most
// one storage access per record per query).
//
// For serving repeat traffic, EnableResultCache attaches a sharded result
// cache with singleflight coalescing and incremental invalidation to the
// executor-based query paths (Batch, NewExecutor); see the method's
// documentation for the cacheability rules and the relaxed-consistency
// contract.
package mcn

import (
	"context"
	"fmt"
	"io"
	"iter"
	"time"

	"mcn/internal/core"
	"mcn/internal/dynamic"
	"mcn/internal/engine"
	"mcn/internal/expand"
	"mcn/internal/fault"
	"mcn/internal/flat"
	"mcn/internal/gen"
	"mcn/internal/graph"
	"mcn/internal/index"
	"mcn/internal/paretopath"
	"mcn/internal/rescache"
	"mcn/internal/storage"
	"mcn/internal/timedep"
	"mcn/internal/vec"
)

// Re-exported identifier and data types.
type (
	// NodeID identifies a network node.
	NodeID = graph.NodeID
	// EdgeID identifies a network edge.
	EdgeID = graph.EdgeID
	// FacilityID identifies a facility.
	FacilityID = graph.FacilityID
	// Location is a position on the network: edge plus fraction from its U
	// end-node.
	Location = graph.Location
	// Costs is a d-dimensional cost vector (one value per cost type).
	Costs = vec.Costs
	// Aggregate is an increasingly monotone scoring function for top-k.
	Aggregate = vec.Aggregate
	// Graph is an immutable in-memory multi-cost network.
	Graph = graph.Graph
	// Builder assembles a Graph.
	Builder = graph.Builder
	// Engine selects LSA or CEA processing.
	Engine = core.Engine
	// Facility is one query answer.
	Facility = core.Facility
	// Result is a completed skyline or top-k answer with work statistics.
	Result = core.Result
	// Stats describes the work a query performed.
	Stats = core.Stats
	// TopKIterator yields top-k results incrementally; Close it when done.
	TopKIterator = core.TopKIterator
	// PoolShardStats is one buffer-pool shard's counters (see
	// Network.PoolShardStats).
	PoolShardStats = storage.ShardStats
	// Path is a Pareto-optimal route with its cost vector.
	Path = paretopath.Path
	// Maintainer keeps skyline/top-k state under facility updates.
	Maintainer = dynamic.Maintainer
	// Handle identifies a facility managed by a Maintainer; handles of the
	// network's initial facilities equal their FacilityIDs.
	Handle = dynamic.Handle
	// MaintainedEntry is a facility tracked by a Maintainer.
	MaintainedEntry = dynamic.Entry
	// IOStats counts logical and physical page reads of a database.
	IOStats = storage.Stats
	// IOFailureStats counts a database's I/O failure handling: retries,
	// exhausted transient failures, permanent failures, checksum mismatches
	// (see Network.IOFailureStats).
	IOFailureStats = storage.FailureStats
	// RetryPolicy bounds the buffer pool's retries of transient read
	// failures (see PoolOptions.Retry).
	RetryPolicy = storage.RetryPolicy
	// PoolOptions tunes the disk buffer pool: shard count, replacement
	// policy and miss coalescing (see OpenDatabaseOptions).
	PoolOptions = storage.PoolOptions
	// PoolPolicy selects the buffer pool's replacement algorithm.
	PoolPolicy = storage.Policy
	// ResultCache is a serving-layer cache of completed query results with
	// singleflight miss coalescing and incremental invalidation (see
	// Network.EnableResultCache and ARCHITECTURE.md "Result cache").
	ResultCache = rescache.Cache
	// CacheOptions tunes a ResultCache: entry capacity, shard count, miss
	// coalescing.
	CacheOptions = rescache.Options
	// CacheStats is an aggregate snapshot of a ResultCache's counters.
	CacheStats = rescache.Stats
	// CacheShardStats is one ResultCache shard's counters (see
	// Network.ResultCacheShardStats).
	CacheShardStats = rescache.ShardStats
	// TimeNetwork is a network with time-dependent edge costs (piecewise-
	// constant profiles), answering preference queries at single instants
	// and over time periods from a compiled flat overlay (topology once,
	// per-interval cost vectors).
	TimeNetwork = timedep.Network
	// TimeProfile is a piecewise-constant cost modifier for one edge.
	TimeProfile = timedep.Profile
	// IntervalResult is a maximal time interval with a constant preferred
	// set.
	IntervalResult = timedep.IntervalResult
	// Executor runs queries concurrently over one shared network through a
	// bounded worker pool (see Network.NewExecutor).
	Executor = engine.Executor
	// ExecutorConfig tunes an Executor: worker count, default per-query
	// timeout, and pending-queue bound (admission control).
	ExecutorConfig = engine.Config
	// ExecutorStats is a snapshot of an Executor's lifetime counters.
	ExecutorStats = engine.Stats
	// AdmissionStats is a snapshot of an Executor's admission state: queries
	// in flight, queued, shed, and the drain flag.
	AdmissionStats = engine.AdmissionStats
	// BatchRequest describes one query of a concurrent batch.
	BatchRequest = engine.Request
	// BatchResponse is the outcome of one BatchRequest, with its per-query
	// latency.
	BatchResponse = engine.Response
	// QueryKind selects the query a BatchRequest runs.
	QueryKind = engine.Kind
)

// Batch query kinds.
const (
	// SkylineQuery runs Network.Skyline.
	SkylineQuery = engine.Skyline
	// TopKQuery runs Network.TopK.
	TopKQuery = engine.TopK
	// NearestQuery runs Network.Nearest.
	NearestQuery = engine.Nearest
	// WithinQuery runs Network.Within.
	WithinQuery = engine.Within
	// MultiSourceSkylineQuery runs Network.MultiSourceSkyline.
	MultiSourceSkylineQuery = engine.MultiSourceSkyline
	// MultiSourceTopKQuery runs Network.MultiSourceTopK.
	MultiSourceTopKQuery = engine.MultiSourceTopK
)

// Engines.
const (
	// LSA is the Local Search Algorithm: d independent expansions.
	LSA = core.LSA
	// CEA is the Combined Expansion Algorithm: shared record fetches.
	CEA = core.CEA
)

// Buffer pool replacement policies.
const (
	// ClockPolicy approximates LRU with a second-chance sweep (default).
	ClockPolicy = storage.PolicyClock
	// LRUPolicy is exact least-recently-used.
	LRUPolicy = storage.PolicyLRU
)

// ParsePoolPolicy converts "clock" or "lru" to a PoolPolicy.
func ParsePoolPolicy(s string) (PoolPolicy, error) { return storage.ParsePolicy(s) }

// Lifecycle errors of closeable query handles.
var (
	// ErrIteratorClosed is returned by TopKIterator.Next after Close.
	ErrIteratorClosed = core.ErrIteratorClosed
	// ErrMaintainerClosed is returned by Maintainer.Insert after Close.
	ErrMaintainerClosed = dynamic.ErrClosed
	// ErrOverloaded rejects a query at executor admission when the pending
	// queue is full (ExecutorConfig.QueueDepth); back off and retry.
	ErrOverloaded = engine.ErrOverloaded
	// ErrDraining rejects a query at executor admission once a drain has
	// begun (Executor.StartDrain).
	ErrDraining = engine.ErrDraining
)

// NewBuilder starts a network with d cost types; directed networks restrict
// edge traversal from U to V.
func NewBuilder(d int, directed bool) *Builder { return graph.NewBuilder(d, directed) }

// Of builds a cost vector from values.
func Of(vals ...float64) Costs { return vec.Of(vals...) }

// WeightedSum returns the linear aggregate f(p) = Σ coefᵢ·cᵢ(p) used in the
// paper's evaluation. Coefficients must be non-negative.
func WeightedSum(coef ...float64) Aggregate { return vec.NewWeighted(coef...) }

// WeightedMax returns the weighted-Chebyshev aggregate f(p) = maxᵢ coefᵢ·cᵢ(p).
func WeightedMax(coef ...float64) Aggregate { return vec.NewMax(coef...) }

// LocationOnEdge places a query at fraction t along edge e of g.
func LocationOnEdge(g *Graph, e EdgeID, t float64) (Location, error) {
	return graph.LocationAt(g, e, t)
}

// LocationAtNode places a query at node v of g.
func LocationAtNode(g *Graph, v NodeID) (Location, error) {
	return graph.LocationAtNode(g, v)
}

// Option configures a query.
type Option func(*core.Options)

// WithEngine selects LSA (default) or CEA.
func WithEngine(e Engine) Option {
	return func(o *core.Options) { o.Engine = e }
}

// Progressive streams each confirmed skyline facility to cb as soon as it
// is known, before the query completes. It is a thin adapter over the
// streaming surface: the callback rides the same emission hook SkylineSeq
// yields through, so order and timing are identical to ranging the Seq.
// New code should prefer SkylineSeq — it can also stop the query early.
func Progressive(cb func(Facility)) Option {
	return func(o *core.Options) { o.OnResult = cb }
}

// WithoutEnhancements disables the paper's Sec. IV-A optimisations, for
// ablation experiments. Results are unchanged.
func WithoutEnhancements() Option {
	return func(o *core.Options) { o.NoEnhancements = true }
}

// WithoutPruning disables the precomputed lower-bound pruning index for this
// query, for ablation experiments and pruned-vs-unpruned comparisons.
// Results are unchanged — pruning only ever reduces the work statistics.
// Network.DisablePruning detaches the index for every future query instead.
func WithoutPruning() Option {
	return func(o *core.Options) { o.NoPrune = true }
}

func buildOptions(opts []Option) core.Options {
	var o core.Options
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// Network is a queryable multi-cost network: either an in-memory graph or an
// opened disk database.
type Network struct {
	src   expand.Source
	g     *graph.Graph
	store *storage.Network
	dev   storage.Device
	// pool recycles dense expansion state across queries on in-memory
	// networks (nil for disk-backed ones, whose id spaces the state arrays
	// cannot index).
	pool *expand.Pool
	// faultDev is set when the network was opened through OpenDatabaseChaos:
	// the fault-injecting wrapper between the pool and the real device, kept
	// so FaultCounters can report what was injected.
	faultDev *fault.Device
	// cache, when enabled, memoizes completed results for every executor
	// this network creates; see EnableResultCache.
	cache *rescache.Cache
	// bounds is the precomputed lower-bound pruning index: built at
	// FromGraph time for in-memory networks, loaded from the layout-v3
	// bounds table for disk databases (nil for v1/v2 files). Attached to
	// every query by default; see WithoutPruning and DisablePruning.
	bounds *index.Bounds
}

// FromGraph wraps an in-memory graph for querying. The graph is compiled
// once into a flat CSR representation (see internal/flat), so queries read
// adjacency and facility records as shared slices with zero per-call
// allocation and run their expansions over pooled dense state.
func FromGraph(g *Graph) *Network {
	src := flat.Compile(g)
	return &Network{src: src, g: g, pool: expand.NewPool(src), bounds: index.FromGraph(g)}
}

// CreateDatabase writes g to a disk database at path using the paper's
// storage scheme (Fig. 2). The lower-bound pruning index is computed and
// embedded in the database (layout v3); OpenDatabase picks it up
// automatically.
func CreateDatabase(g *Graph, path string) error {
	_, err := CreateDatabaseIndexed(g, path)
	return err
}

// CreateDatabaseIndexed is CreateDatabase, additionally reporting the size
// and build time of the pruning index it embedded (mcngen prints these).
func CreateDatabaseIndexed(g *Graph, path string) (IndexStats, error) {
	dev, err := storage.CreateFileDevice(path)
	if err != nil {
		return IndexStats{}, err
	}
	bounds, err := storage.BuildIndexed(g, dev)
	if err != nil {
		dev.Close()
		return IndexStats{}, err
	}
	return IndexStats{BoundsBytes: bounds.Bytes(), BuildTime: bounds.BuildTime()}, dev.Close()
}

// OpenDatabase opens a disk database with a buffer pool sized to bufferFrac
// of its pages (0 disables caching), under the default pool options: a
// sharded clock cache with miss coalescing.
func OpenDatabase(path string, bufferFrac float64) (*Network, error) {
	return OpenDatabaseOptions(path, bufferFrac, PoolOptions{})
}

// OpenDatabaseOptions is OpenDatabase with explicit buffer-pool tuning:
// shard count, replacement policy (clock or exact LRU) and miss coalescing.
// The zero PoolOptions selects the defaults.
func OpenDatabaseOptions(path string, bufferFrac float64, opts PoolOptions) (*Network, error) {
	dev, err := storage.OpenFileDevice(path)
	if err != nil {
		return nil, err
	}
	n, err := OpenDeviceOptions(dev, bufferFrac, opts)
	if err != nil {
		dev.Close()
		return nil, err
	}
	return n, nil
}

// Device is the storage backend abstraction a disk database lives on: page
// reads and writes plus a close. storage provides file devices, in-memory
// devices and latency-simulating wrappers.
type Device = storage.Device

// OpenDeviceOptions opens a database resident on an already-open device —
// the seam for wrapping the storage layer (latency simulation in benchmarks,
// fault injection in chaos drills) before the buffer pool sees it. The
// returned network owns dev and closes it on Close.
func OpenDeviceOptions(dev Device, bufferFrac float64, opts PoolOptions) (*Network, error) {
	store, err := storage.OpenOptions(dev, bufferFrac, opts)
	if err != nil {
		return nil, err
	}
	return &Network{src: store, store: store, dev: dev, bounds: store.Bounds()}, nil
}

// FaultInjection configures the deterministic fault schedule of
// OpenDatabaseChaos: seeded probabilities for transient read errors,
// bit-flip corruption and latency spikes. See internal/fault.
type FaultInjection = fault.Options

// FaultCounters reports the faults a chaos-opened network's device has
// actually injected.
type FaultCounters = fault.Counters

// OpenDatabaseChaos is OpenDatabaseOptions with a deterministic
// fault-injecting device wrapped between the buffer pool and the file — the
// backing for mcnserve's -chaos flag, so game-day drills can exercise the
// retry/checksum path on a live replica and watch injected-fault counters
// in /stats. Injection arms only after the database opens: the header,
// catalog and bounds-table reads are never faulted, queries are.
func OpenDatabaseChaos(path string, bufferFrac float64, opts PoolOptions, inject FaultInjection) (*Network, error) {
	dev, err := storage.OpenFileDevice(path)
	if err != nil {
		return nil, err
	}
	fdev := fault.Wrap(dev, inject)
	n, err := OpenDeviceOptions(fdev, bufferFrac, opts)
	if err != nil {
		dev.Close()
		return nil, err
	}
	fdev.Arm()
	n.faultDev = fdev
	return n, nil
}

// FaultCounters reports the injected-fault counters of a network opened
// with OpenDatabaseChaos; ok is false for networks without fault injection.
func (n *Network) FaultCounters() (c FaultCounters, ok bool) {
	if n.faultDev == nil {
		return FaultCounters{}, false
	}
	return n.faultDev.Counters(), true
}

// Close releases the underlying device of a disk-backed network; it is a
// no-op for in-memory networks.
func (n *Network) Close() error {
	if n.dev != nil {
		return n.dev.Close()
	}
	return nil
}

// D returns the number of cost types.
func (n *Network) D() int { return n.src.D() }

// Directed reports whether the network is directed.
func (n *Network) Directed() bool { return n.src.Directed() }

// Graph returns the underlying in-memory graph, if this network was built
// with FromGraph.
func (n *Network) Graph() (*Graph, bool) { return n.g, n.g != nil }

// NumNodes returns the node count.
func (n *Network) NumNodes() int {
	if n.store != nil {
		return n.store.NumNodes()
	}
	return n.g.NumNodes()
}

// NumEdges returns the edge count.
func (n *Network) NumEdges() int {
	if n.store != nil {
		return n.store.NumEdges()
	}
	return n.g.NumEdges()
}

// NumFacilities returns the facility count.
func (n *Network) NumFacilities() int {
	if n.store != nil {
		return n.store.NumFacilities()
	}
	return n.g.NumFacilities()
}

// scratchOptions materialises opts and attaches pooled expansion scratch
// for in-memory networks, without binding a context — the Seq surfaces use
// it directly because core.SkylineSeq/TopKSeq bind ctx themselves, and a
// second binding would chain two identical ctx checks into every interrupt
// poll. Callers must invoke release when the query completes (a no-op for
// disk-backed networks).
func (n *Network) scratchOptions(opts []Option) (o core.Options, release func()) {
	o = buildOptions(opts)
	if o.Bounds == nil && n.bounds != nil {
		o.Bounds = n.bounds
	}
	if sc := n.pool.Get(); sc != nil {
		o.Scratch = sc
		return o, func() { n.pool.Put(sc) }
	}
	return o, func() {}
}

// queryOptions is scratchOptions plus ctx cancellation/deadline binding —
// what every non-streaming query method uses.
func (n *Network) queryOptions(ctx context.Context, opts []Option) (o core.Options, release func()) {
	o, release = n.scratchOptions(opts)
	return o.BindContext(ctx), release
}

// srcFor returns the source a query under ctx should read from: disk-backed
// networks get a view whose page reads are bound to ctx, so cancellation
// aborts retry backoff sleeps and coalesced waits, not just the next
// interrupt poll. In-memory sources never block on a device and are returned
// unchanged, as is everything when ctx can never be cancelled.
func (n *Network) srcFor(ctx context.Context) expand.Source {
	if n.store != nil && ctx != nil && ctx.Done() != nil {
		return n.store.WithReadContext(ctx)
	}
	return n.src
}

// Skyline computes sky(q) for the query location loc. Cancelling ctx aborts
// the query at its next interrupt poll.
func (n *Network) Skyline(ctx context.Context, loc Location, opts ...Option) (*Result, error) {
	o, release := n.queryOptions(ctx, opts)
	defer release()
	return core.Skyline(n.srcFor(ctx), loc, o)
}

// SkylineSeq streams sky(q) as a range-over-func iterator: each confirmed
// skyline facility is yielded the moment the search proves it undominated,
// in the same order a Progressive callback would see. Breaking out of the
// loop stops the query early; cancelling ctx (or hitting its deadline)
// yields the context's error once and ends the stream. The query runs
// inside the consumer's loop — no goroutine is spawned — and pooled state
// is returned when the loop exits, however it exits.
//
//	for f, err := range net.SkylineSeq(ctx, loc, mcn.WithEngine(mcn.CEA)) {
//	    if err != nil { ... }
//	    show(f)
//	    if enough() { break } // aborts the remaining search
//	}
func (n *Network) SkylineSeq(ctx context.Context, loc Location, opts ...Option) iter.Seq2[Facility, error] {
	return func(yield func(Facility, error) bool) {
		o, release := n.scratchOptions(opts)
		defer release()
		for f, err := range core.SkylineSeq(ctx, n.srcFor(ctx), loc, o) {
			if !yield(f, err) {
				return
			}
		}
	}
}

// TopK computes the k facilities minimising agg from loc.
func (n *Network) TopK(ctx context.Context, loc Location, agg Aggregate, k int, opts ...Option) (*Result, error) {
	o, release := n.queryOptions(ctx, opts)
	defer release()
	return core.TopK(n.srcFor(ctx), loc, agg, k, o)
}

// TopKSeq streams facilities in ascending aggregate-score order without
// fixing k in advance: the incremental top-k query as a range-over-func
// iterator. Pull until satisfied and break; ranged to exhaustion it
// enumerates every reachable facility. Pooled state is borrowed for the
// duration of the loop and returned when it exits.
func (n *Network) TopKSeq(ctx context.Context, loc Location, agg Aggregate, opts ...Option) iter.Seq2[Facility, error] {
	return func(yield func(Facility, error) bool) {
		o, release := n.scratchOptions(opts)
		defer release()
		for f, err := range core.TopKSeq(ctx, n.srcFor(ctx), loc, agg, o) {
			if !yield(f, err) {
				return
			}
		}
	}
}

// TopKIterator starts an incremental top-k query from loc; each Next call
// yields the facility with the next-smallest aggregate cost, and cancelling
// ctx makes the next call fail with the context's error. The iterator
// borrows pooled expansion state; Close it when done pulling results (Close
// is idempotent and safe from any goroutine). TopKSeq is the loop-shaped
// form of the same query and closes itself.
func (n *Network) TopKIterator(ctx context.Context, loc Location, agg Aggregate, opts ...Option) (*TopKIterator, error) {
	o, release := n.queryOptions(ctx, opts)
	it, err := core.NewTopKIterator(n.srcFor(ctx), loc, agg, o)
	if err != nil {
		release()
		return nil, err
	}
	it.SetRelease(release)
	return it, nil
}

// MultiSourceSkyline answers the multi-source skyline query (Deng et al.,
// ICDE 2007 — the related-work query the paper contrasts with MCN skylines):
// a single cost type, several query locations, and each facility judged by
// its vector of network distances from all of them.
func (n *Network) MultiSourceSkyline(ctx context.Context, costIdx int, locs []Location, opts ...Option) (*Result, error) {
	o, release := n.queryOptions(ctx, opts)
	defer release()
	return core.MultiSourceSkyline(n.srcFor(ctx), costIdx, locs, o)
}

// MultiSourceTopK ranks facilities by an increasingly monotone aggregate
// over their distances from several query locations (aggregate
// nearest-neighbour search, e.g. min-sum meeting points).
func (n *Network) MultiSourceTopK(ctx context.Context, costIdx int, locs []Location, agg Aggregate, k int, opts ...Option) (*Result, error) {
	o, release := n.queryOptions(ctx, opts)
	defer release()
	return core.MultiSourceTopK(n.srcFor(ctx), costIdx, locs, agg, k, o)
}

// Nearest returns up to k facilities closest to loc under a single cost
// type, in non-decreasing cost order — the incremental network-expansion
// primitive (NE) the paper's algorithms are built on, exposed for ordinary
// kNN workloads.
func (n *Network) Nearest(ctx context.Context, loc Location, costIdx, k int) ([]Facility, error) {
	o, release := n.queryOptions(ctx, nil)
	defer release()
	res, err := core.Nearest(n.srcFor(ctx), loc, costIdx, k, o)
	if err != nil {
		return nil, err
	}
	return res.Facilities, nil
}

// Within returns all facilities whose full cost vector fits the budget
// component-wise — a multi-cost range query. The search explores only the
// region each budget component allows.
func (n *Network) Within(ctx context.Context, loc Location, budget Costs, opts ...Option) (*Result, error) {
	o, release := n.queryOptions(ctx, opts)
	defer release()
	return core.Within(n.srcFor(ctx), loc, budget, o)
}

// SkylineRequest builds a batch request for Network.Skyline at loc.
func SkylineRequest(loc Location, opts ...Option) BatchRequest {
	return BatchRequest{Kind: SkylineQuery, Loc: loc, Opts: buildOptions(opts)}
}

// TopKRequest builds a batch request for Network.TopK at loc.
func TopKRequest(loc Location, agg Aggregate, k int, opts ...Option) BatchRequest {
	return BatchRequest{Kind: TopKQuery, Loc: loc, Agg: agg, K: k, Opts: buildOptions(opts)}
}

// NearestRequest builds a batch request for Network.Nearest at loc.
func NearestRequest(loc Location, costIdx, k int) BatchRequest {
	return BatchRequest{Kind: NearestQuery, Loc: loc, CostIdx: costIdx, K: k}
}

// WithinRequest builds a batch request for Network.Within at loc.
func WithinRequest(loc Location, budget Costs, opts ...Option) BatchRequest {
	return BatchRequest{Kind: WithinQuery, Loc: loc, Budget: budget, Opts: buildOptions(opts)}
}

// MultiSourceSkylineRequest builds a batch request for
// Network.MultiSourceSkyline over locs on cost type costIdx.
func MultiSourceSkylineRequest(costIdx int, locs []Location, opts ...Option) BatchRequest {
	return BatchRequest{Kind: MultiSourceSkylineQuery, CostIdx: costIdx, Locs: locs, Opts: buildOptions(opts)}
}

// MultiSourceTopKRequest builds a batch request for Network.MultiSourceTopK
// over locs on cost type costIdx.
func MultiSourceTopKRequest(costIdx int, locs []Location, agg Aggregate, k int, opts ...Option) BatchRequest {
	return BatchRequest{Kind: MultiSourceTopKQuery, CostIdx: costIdx, Locs: locs, Agg: agg, K: k, Opts: buildOptions(opts)}
}

// IsQueryPanic reports whether a batch-response error came from the
// executor's panic isolation (a fault in query processing, not a bad
// request).
func IsQueryPanic(err error) bool { return engine.IsPanic(err) }

// NewExecutor returns a long-lived concurrent query executor over the
// network: a bounded worker pool with per-query cancellation, timeouts,
// panic isolation and latency statistics. One executor may serve any number
// of goroutines; the mcnserve HTTP server funnels all traffic through one.
func (n *Network) NewExecutor(cfg ExecutorConfig) *Executor {
	ex := engine.New(n.src, cfg)
	if n.cache != nil {
		ex.SetCache(n.cache)
	}
	if n.bounds != nil {
		ex.SetBounds(n.bounds)
	}
	return ex
}

// Batch runs heterogeneous requests concurrently through a worker pool of
// cfg.Workers (GOMAXPROCS if zero) and returns one response per request, in
// request order. Cancelling ctx aborts in-flight queries at their next
// interrupt poll; per-request errors are reported in the responses, never as
// a batch-wide failure.
func (n *Network) Batch(ctx context.Context, reqs []BatchRequest, cfg ExecutorConfig) []BatchResponse {
	return n.NewExecutor(cfg).Execute(ctx, reqs)
}

// batchResults runs same-kind requests and unwraps the responses into
// results aligned with the requests, failing on the first per-query error.
func (n *Network) batchResults(ctx context.Context, reqs []BatchRequest, workers int) ([]*Result, error) {
	out := make([]*Result, len(reqs))
	for _, resp := range n.Batch(ctx, reqs, ExecutorConfig{Workers: workers}) {
		if resp.Err != nil {
			return nil, fmt.Errorf("mcn: batch query %d: %w", resp.Index, resp.Err)
		}
		out[resp.Index] = resp.Result
	}
	return out, nil
}

// BatchSkyline answers a skyline query at every location concurrently, with
// at most workers (GOMAXPROCS if zero) queries in flight.
func (n *Network) BatchSkyline(ctx context.Context, locs []Location, workers int, opts ...Option) ([]*Result, error) {
	reqs := make([]BatchRequest, len(locs))
	for i, loc := range locs {
		reqs[i] = SkylineRequest(loc, opts...)
	}
	return n.batchResults(ctx, reqs, workers)
}

// BatchTopK answers a top-k query at every location concurrently.
func (n *Network) BatchTopK(ctx context.Context, locs []Location, agg Aggregate, k, workers int, opts ...Option) ([]*Result, error) {
	reqs := make([]BatchRequest, len(locs))
	for i, loc := range locs {
		reqs[i] = TopKRequest(loc, agg, k, opts...)
	}
	return n.batchResults(ctx, reqs, workers)
}

// BatchNearest answers a k-nearest query at every location concurrently.
func (n *Network) BatchNearest(ctx context.Context, locs []Location, costIdx, k, workers int) ([]*Result, error) {
	reqs := make([]BatchRequest, len(locs))
	for i, loc := range locs {
		reqs[i] = NearestRequest(loc, costIdx, k)
	}
	return n.batchResults(ctx, reqs, workers)
}

// BatchWithin answers a budget range query at every location concurrently.
func (n *Network) BatchWithin(ctx context.Context, locs []Location, budget Costs, workers int, opts ...Option) ([]*Result, error) {
	reqs := make([]BatchRequest, len(locs))
	for i, loc := range locs {
		reqs[i] = WithinRequest(loc, budget, opts...)
	}
	return n.batchResults(ctx, reqs, workers)
}

// BaselineSkyline runs the paper's strawman skyline: d complete expansions
// followed by a conventional skyline operator.
func (n *Network) BaselineSkyline(ctx context.Context, loc Location) (*Result, error) {
	o, release := n.queryOptions(ctx, nil)
	defer release()
	return core.NaiveSkyline(n.srcFor(ctx), loc, o)
}

// BaselineTopK runs the strawman top-k over fully materialised vectors.
func (n *Network) BaselineTopK(ctx context.Context, loc Location, agg Aggregate, k int) (*Result, error) {
	o, release := n.queryOptions(ctx, nil)
	defer release()
	return core.NaiveTopK(n.srcFor(ctx), loc, agg, k, o)
}

// ctxInterrupt adapts ctx to the poll-style interrupt hook non-core
// searches (Pareto paths) take; nil when ctx can never be cancelled.
func ctxInterrupt(ctx context.Context) func() error {
	if ctx == nil || ctx.Done() == nil {
		return nil
	}
	return ctx.Err
}

// ParetoPaths returns the multi-criteria Pareto path set between two nodes
// (the MCPP problem of the paper's Sec. II-D). maxLabels caps the search (0
// = unlimited); cancelling ctx aborts it at the next label pop. Requires an
// in-memory network.
func (n *Network) ParetoPaths(ctx context.Context, from, to NodeID, maxLabels int) ([]Path, error) {
	if n.g == nil {
		return nil, fmt.Errorf("mcn: Pareto paths require an in-memory network (FromGraph)")
	}
	return paretopath.Paths(n.g, from, to, paretopath.Options{MaxLabels: maxLabels, Interrupt: ctxInterrupt(ctx)})
}

// ParetoPathsTo returns the Pareto path set from a node to an arbitrary
// on-edge location. Requires an in-memory network.
func (n *Network) ParetoPathsTo(ctx context.Context, from NodeID, to Location, maxLabels int) ([]Path, error) {
	if n.g == nil {
		return nil, fmt.Errorf("mcn: Pareto paths require an in-memory network (FromGraph)")
	}
	return paretopath.PathsToLocation(n.g, from, to, paretopath.Options{MaxLabels: maxLabels, Interrupt: ctxInterrupt(ctx)})
}

// ParetoPathsApprox is ParetoPaths with ε-dominance pruning: alternatives
// within a (1+epsilon) factor on every cost are collapsed, taming the
// exponential frontiers exact multi-criteria search can produce on large
// anti-correlated networks.
func (n *Network) ParetoPathsApprox(ctx context.Context, from, to NodeID, maxLabels int, epsilon float64) ([]Path, error) {
	if n.g == nil {
		return nil, fmt.Errorf("mcn: Pareto paths require an in-memory network (FromGraph)")
	}
	return paretopath.Paths(n.g, from, to, paretopath.Options{MaxLabels: maxLabels, Epsilon: epsilon, Interrupt: ctxInterrupt(ctx)})
}

// Maintain materialises dynamic skyline/top-k maintenance state for loc:
// facilities can then be inserted and removed with cheap local probes (the
// paper's future-work extension). Cancelling ctx aborts the initial
// materialisation. The maintainer borrows pooled expansion scratch for its
// insertion probes; Close it when done (idempotent, any goroutine).
func (n *Network) Maintain(ctx context.Context, loc Location) (*Maintainer, error) {
	o, release := n.queryOptions(ctx, nil)
	// The pruning index is built for the network's static facility set; a
	// maintainer exists to change that set, and an insert can shrink true
	// nearest-facility distances below the precomputed bounds. Detach them.
	o.Bounds = nil
	m, err := dynamic.New(n.srcFor(ctx), loc, o)
	if err != nil {
		release()
		return nil, err
	}
	m.SetRelease(release)
	if n.cache != nil {
		// Every facility mutation kills exactly the cached entries that
		// depend on the touched edge — the incremental half of the cache's
		// relaxed-consistency contract (see EnableResultCache).
		cache := n.cache
		m.SetOnUpdate(func(e EdgeID) { cache.Invalidate(rescache.EdgeTag(e)) })
	}
	return m, nil
}

// NewResultCache builds a standalone result cache for callers that wire it
// themselves — e.g. a TimeNetwork with no associated Network. Most code
// wants Network.EnableResultCache instead.
func NewResultCache(opts CacheOptions) *ResultCache { return rescache.New(opts) }

// EnableResultCache attaches a serving-layer result cache to the network
// and returns it. Every executor the network creates afterwards — via
// NewExecutor, Batch and the Batch* helpers — memoizes completed results
// under canonical query keys with singleflight miss coalescing, and
// Maintain wires facility updates to incremental invalidation. Enable the
// cache before creating executors or maintainers; calling it again
// replaces the cache for future executors only. The returned cache can be
// shared with a TimeNetwork via TimeNetwork.EnableResultCache so instant
// time-dependent queries use the same capacity and counters.
//
// Consistency is deliberately relaxed in one direction: a facility update
// invalidates exactly the entries whose query location or result
// facilities lie on the touched edge, so an entry whose result *should*
// gain a newly inserted facility on some unrelated edge may be served
// unchanged until it is evicted or flushed. FlushResultCache is the strict
// fallback. The direct query methods (Skyline, TopK, ...) never consult
// the cache. See ARCHITECTURE.md "Result cache" for the full contract.
func (n *Network) EnableResultCache(opts CacheOptions) *ResultCache {
	n.cache = rescache.New(opts)
	return n.cache
}

// ResultCache returns the attached result cache, or nil when caching is
// disabled.
func (n *Network) ResultCache() *ResultCache { return n.cache }

// ResultCacheStats returns the result cache's aggregate counters; ok is
// false when no cache is enabled. Lock-free, like IOStats.
func (n *Network) ResultCacheStats() (CacheStats, bool) {
	if n.cache == nil {
		return CacheStats{}, false
	}
	return n.cache.Stats(), true
}

// ResultCacheShardStats returns per-shard result-cache counters for
// diagnosing shard skew, mirroring PoolShardStats; ok is false when no
// cache is enabled.
func (n *Network) ResultCacheShardStats() ([]CacheShardStats, bool) {
	if n.cache == nil {
		return nil, false
	}
	return n.cache.ShardStats(), true
}

// FlushResultCache invalidates every cached result at once — the strict
// fallback when the relaxed invalidation contract is not enough. A no-op
// when no cache is enabled.
func (n *Network) FlushResultCache() {
	if n.cache != nil {
		n.cache.Flush()
	}
}

// DisablePruning detaches the lower-bound pruning index from the network:
// every future query (including executors created afterwards) runs unpruned,
// as if the index had never been built. For a per-query opt-out use the
// WithoutPruning option instead. Call it before queries start; it must not
// race in-flight queries.
func (n *Network) DisablePruning() { n.bounds = nil }

// IndexStats describes the pruning index attached to a network.
type IndexStats struct {
	// BoundsBytes is the in-memory (and on-disk) size of the lower-bound
	// vectors: d × numNodes × 8 bytes.
	BoundsBytes int
	// BuildTime is how long the reverse multi-source Dijkstra passes took.
	// Zero for indexes loaded from a database rather than built.
	BuildTime time.Duration
}

// IndexStats returns the pruning index's size and build time; ok is false
// when the network has none (a v1/v2 database, or DisablePruning was
// called).
func (n *Network) IndexStats() (IndexStats, bool) {
	if n.bounds == nil {
		return IndexStats{}, false
	}
	return IndexStats{BoundsBytes: n.bounds.Bytes(), BuildTime: n.bounds.BuildTime()}, true
}

// IOStats returns the buffer-pool counters of a disk-backed network; ok is
// false for in-memory networks.
func (n *Network) IOStats() (IOStats, bool) {
	if n.store == nil {
		return IOStats{}, false
	}
	return n.store.Stats(), true
}

// IOFailureStats returns the I/O failure counters of a disk-backed network
// — retries, exhausted transient failures, permanent failures, checksum
// mismatches; ok is false for in-memory networks. Lock-free, like IOStats.
func (n *Network) IOFailureStats() (IOFailureStats, bool) {
	if n.store == nil {
		return IOFailureStats{}, false
	}
	return n.store.FailureStats(), true
}

// PoolShardStats returns per-shard buffer-pool counters (hits, evictions,
// coalesced reads) of a disk-backed network, for diagnosing shard skew; ok
// is false for in-memory networks. Lock-free, like IOStats.
func (n *Network) PoolShardStats() ([]PoolShardStats, bool) {
	if n.store == nil {
		return nil, false
	}
	return n.store.Pool().ShardStats(), true
}

// ResetIOStats zeroes the buffer-pool counters of a disk-backed network.
func (n *Network) ResetIOStats() {
	if n.store != nil {
		n.store.Pool().ResetStats()
	}
}

// TimeDependent wraps an in-memory graph with time-dependent cost support
// (the paper's future-work extension): attach TimeProfiles to edges, then
// query at single instants (SkylineAt, TopKAt, NearestAt, WithinAt) or over
// whole time periods (SkylineOverPeriod, TopKOverPeriod). All entry points
// are ctx-first, like every other query in the v2 API, and take core
// options built from the same Option helpers via QueryOptions.
//
// The first query compiles the network onto the flat overlay fast path:
// topology once into shared CSR arrays, one dense cost vector per
// elementary interval of the time axis (see README "Time-dependent
// architecture"). Resolving an instant is then a binary search plus a
// pointer read, and queries run on pooled dense expansion state at the
// in-memory fast path's allocation level — no per-interval graph rebuild.
//
//	tn := mcn.TimeDependent(g)
//	tn.SetProfile(highway, mcn.TimeProfile{Times: []float64{8, 10},
//	    Mult: []mcn.Costs{mcn.Of(3, 1), mcn.Of(1, 1)}})
//	rush, _ := tn.SkylineAt(ctx, q, 8.5, mcn.QueryOptions())
//	intervals, _ := tn.SkylineOverPeriod(ctx, q, 0, 24, mcn.QueryOptions(mcn.WithEngine(mcn.CEA)))
func TimeDependent(g *Graph) *TimeNetwork { return timedep.New(g) }

// AttachSyntheticProfiles attaches deterministic rush-hour-style synthetic
// profiles to count distinct edges of tn — the same (graph, count, seed)
// always yields the same time-dependent network, so replicated serving
// nodes built from one synthetic graph agree on every period query. Used by
// mcnserve -timedep and the cluster equivalence tests.
func AttachSyntheticProfiles(tn *TimeNetwork, count int, seed int64) error {
	return timedep.AttachSyntheticProfiles(tn, count, seed)
}

// QueryOptions materialises Option values into the option struct period
// queries on a TimeNetwork expect.
func QueryOptions(opts ...Option) core.Options { return buildOptions(opts) }

// SyntheticConfig parameterises Synthetic. Zero values select the paper's
// defaults (Sec. VI): ~175K nodes, 100K facilities in 10 Gaussian clusters,
// d = 4 anti-correlated cost types.
type SyntheticConfig struct {
	Nodes      int
	Facilities int
	Clusters   int
	D          int
	// Dist is "independent", "correlated" or "anti-correlated" (default).
	Dist     string
	Directed bool
	Seed     int64
}

// Synthetic generates a road-like multi-cost network matching the structural
// profile of the paper's San Francisco dataset (see DESIGN.md for the
// substitution rationale).
func Synthetic(cfg SyntheticConfig) (*Graph, error) {
	dist := gen.AntiCorrelated
	if cfg.Dist != "" {
		var err error
		dist, err = gen.ParseDistribution(cfg.Dist)
		if err != nil {
			return nil, err
		}
	}
	inst, err := gen.MakeInstance(gen.InstanceConfig{
		Nodes:      cfg.Nodes,
		Facilities: cfg.Facilities,
		Clusters:   cfg.Clusters,
		D:          cfg.D,
		Dist:       dist,
		Directed:   cfg.Directed,
		Seed:       cfg.Seed,
		Queries:    1,
	})
	if err != nil {
		return nil, err
	}
	return inst.Graph, nil
}

// RandomQueries samples count uniformly random query locations on g.
func RandomQueries(g *Graph, count int, seed int64) []Location {
	return gen.QueryLocations(g, count, seed)
}

// WriteText serialises g in the plain-text interchange format (see
// internal/graph/io.go for the grammar), for exporting to other tools.
func WriteText(w io.Writer, g *Graph) error { return graph.WriteText(w, g) }

// ReadText parses a network in the plain-text interchange format, for
// importing user-supplied data.
func ReadText(r io.Reader) (*Graph, error) { return graph.ReadText(r) }
