// Fleet dispatch: a delivery operator answers preference queries for a whole
// fleet at once. Every courier standing somewhere on the network wants the
// skyline of depots under (driving minutes, fuel cost, toll dollars); the
// dispatcher wants them all answered now, not one by one.
//
// This example drives the concurrent batch API: Network.BatchSkyline for the
// homogeneous fan-out, Network.Batch for a mixed workload, and a long-lived
// Executor with per-query timeouts and latency statistics — the same
// machinery the mcnserve HTTP server puts behind its endpoints.
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"
	"time"

	"mcn"
)

func main() {
	// A mid-size synthetic city: ~8000 intersections, 900 depots, three cost
	// types per road segment.
	g, err := mcn.Synthetic(mcn.SyntheticConfig{Nodes: 8_000, Facilities: 900, D: 3, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	net := mcn.FromGraph(g)
	couriers := mcn.RandomQueries(g, 24, 99)
	ctx := context.Background()

	// 1. Fan out one skyline per courier across all CPUs.
	start := time.Now()
	skylines, err := net.BatchSkyline(ctx, couriers, runtime.GOMAXPROCS(0), mcn.WithEngine(mcn.CEA))
	if err != nil {
		log.Fatal(err)
	}
	total := 0
	for _, res := range skylines {
		total += len(res.Facilities)
	}
	fmt.Printf("— fleet skyline — %d couriers, %d undominated depots total, %.1fms wall\n",
		len(couriers), total, time.Since(start).Seconds()*1000)

	// 2. A mixed batch: some couriers want skylines, some a ranked top-3
	// under their own preference weights, one a strict budget filter.
	agg := mcn.WeightedSum(0.6, 0.3, 0.1)
	reqs := []mcn.BatchRequest{
		mcn.SkylineRequest(couriers[0], mcn.WithEngine(mcn.CEA)),
		mcn.TopKRequest(couriers[1], agg, 3),
		mcn.NearestRequest(couriers[2], 0, 5),
		mcn.WithinRequest(couriers[3], mcn.Of(40, 40, 40)),
	}
	fmt.Println("— mixed batch —")
	for _, resp := range net.Batch(ctx, reqs, mcn.ExecutorConfig{Workers: 4}) {
		if resp.Err != nil {
			log.Fatal(resp.Err)
		}
		fmt.Printf("  %-8s %2d facilities in %v\n",
			reqs[resp.Index].Kind, len(resp.Result.Facilities), resp.Latency.Round(time.Microsecond))
	}

	// 3. A long-lived executor, as a server would hold: bounded parallelism,
	// a default per-query timeout, aggregate latency counters.
	exec := net.NewExecutor(mcn.ExecutorConfig{Workers: 8, Timeout: 2 * time.Second})
	for _, c := range couriers {
		if resp := exec.Do(ctx, mcn.TopKRequest(c, agg, 3)); resp.Err != nil {
			log.Fatal(resp.Err)
		}
	}
	s := exec.Stats()
	fmt.Printf("— executor — %d queries, mean %v, max %v\n",
		s.Queries(), s.MeanLatency().Round(time.Microsecond), s.MaxLatency.Round(time.Microsecond))

	// 4. Cancellation: a dispatcher that waits at most 1ms abandons the rest
	// of its batch; queries abort mid-expansion instead of running on.
	shortCtx, cancel := context.WithTimeout(ctx, time.Millisecond)
	defer cancel()
	responses := net.Batch(shortCtx, repeatSkylines(couriers, 40), mcn.ExecutorConfig{Workers: 2})
	done, aborted := 0, 0
	for _, resp := range responses {
		if resp.Err != nil {
			aborted++
		} else {
			done++
		}
	}
	fmt.Printf("— 1ms deadline — %d answered, %d aborted early\n", done, aborted)
}

func repeatSkylines(locs []mcn.Location, n int) []mcn.BatchRequest {
	reqs := make([]mcn.BatchRequest, n)
	for i := range reqs {
		reqs[i] = mcn.SkylineRequest(locs[i%len(locs)])
	}
	return reqs
}
