// Rushhour: the paper's second future-work item — preference queries in
// MCNs whose edge costs are functions of time. A courier dispatcher wants,
// for every instant of the working day, the depots that are Pareto-optimal
// in (travel minutes, fuel cost). The highway triples its travel time during
// the morning and evening peaks; the answer is a timetable of skylines, each
// valid on a maximal interval of the day.
package main

import (
	"context"
	"fmt"
	"log"

	"mcn"
)

func main() {
	// d=2: (travel minutes, fuel dollars).
	b := mcn.NewBuilder(2, false)
	hub := b.AddNode(0, 0)
	n1 := b.AddNode(4, 0)
	n2 := b.AddNode(0, 3)
	n3 := b.AddNode(4, 3)

	highway := b.AddEdge(hub, n1, mcn.Of(10, 4)) // fast, thirsty
	avenue := b.AddEdge(hub, n2, mcn.Of(22, 2))  // steady
	b.AddEdge(n1, n3, mcn.Of(6, 2))
	b.AddEdge(n2, n3, mcn.Of(8, 1))

	depots := map[mcn.FacilityID]string{
		b.AddFacility(highway, 1.0): "Depot H (highway exit)",
		b.AddFacility(avenue, 1.0):  "Depot A (avenue)",
	}
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	tn := mcn.TimeDependent(g)
	ctx := context.Background()
	// Morning peak 7–9h and evening peak 17–19h: highway travel time ×3,
	// fuel ×1.5 (stop-and-go traffic).
	err = tn.SetProfile(highway, mcn.TimeProfile{
		Times: []float64{7, 9, 17, 19},
		Mult: []mcn.Costs{
			mcn.Of(3, 1.5), // 7–9
			mcn.Of(1, 1),   // 9–17
			mcn.Of(3, 1.5), // 17–19
			mcn.Of(1, 1),   // 19–
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	q, err := mcn.LocationAtNode(g, hub)
	if err != nil {
		log.Fatal(err)
	}

	// A dispatcher deciding right now, mid-morning-peak: one instant query
	// answered from the compiled overlay (no per-interval graph rebuild).
	rush, err := tn.SkylineAt(ctx, q, 8.5, mcn.QueryOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Pareto-optimal depots at 08:30 (morning peak):")
	for _, f := range rush.Facilities {
		fmt.Printf("      %-22s %v\n", depots[f.ID], f.Costs)
	}
	fmt.Println()

	intervals, err := tn.SkylineOverPeriod(ctx, q, 0, 24, mcn.QueryOptions(mcn.WithEngine(mcn.CEA)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Skyline timetable for the dispatcher (minutes, fuel $):")
	for _, iv := range intervals {
		fmt.Printf("  %05.2fh – %05.2fh:\n", iv.From, iv.To)
		for _, f := range iv.Result.Facilities {
			fmt.Printf("      %-22s %v\n", depots[f.ID], f.Costs)
		}
	}

	// And the best depot over the day for a 80/20 time/fuel blend.
	agg := mcn.WeightedSum(0.8, 0.2)
	top, err := tn.TopKOverPeriod(ctx, q, agg, 1, 0, 24, mcn.QueryOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nBest depot per interval for f = 0.8·time + 0.2·fuel:")
	for _, iv := range top {
		f := iv.Result.Facilities[0]
		fmt.Printf("  %05.2fh – %05.2fh: %-22s score %.1f\n", iv.From, iv.To, depots[f.ID], f.Score)
	}
}
