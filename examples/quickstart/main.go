// Quickstart: build a small two-cost network, stream a skyline, run a
// top-k and an incremental top-k query, and round-trip the network through
// the disk storage format. Every query takes a context: cancel it or give
// it a deadline and the query aborts mid-search.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"mcn"
)

func main() {
	// A toy downtown: 4 intersections, 5 road segments. Every edge carries
	// two costs: (driving minutes, toll dollars).
	b := mcn.NewBuilder(2, false)
	a := b.AddNode(0, 0)
	c := b.AddNode(1, 0)
	d := b.AddNode(1, 1)
	e := b.AddNode(0, 1)

	ac := b.AddEdge(a, c, mcn.Of(5, 2)) // fast toll road
	cd := b.AddEdge(c, d, mcn.Of(4, 1))
	b.AddEdge(a, e, mcn.Of(9, 0)) // slow free road
	ed := b.AddEdge(e, d, mcn.Of(8, 0))
	b.AddEdge(c, e, mcn.Of(3, 3))

	// Three coffee shops on the way.
	shops := []mcn.FacilityID{
		b.AddFacility(cd, 0.5), // via the toll road
		b.AddFacility(ed, 0.5), // via the free road
		b.AddFacility(ac, 0.9), // close, small toll
	}
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	net := mcn.FromGraph(g)
	ctx := context.Background()
	q, err := mcn.LocationAtNode(g, a) // we stand at intersection a
	if err != nil {
		log.Fatal(err)
	}

	// 1. Skyline, streamed: shops for which no other shop is both faster
	// AND cheaper to reach, yielded the moment each one is confirmed.
	// Breaking out of the loop would abort the remaining search.
	fmt.Println("— skyline, streamed as confirmed (minutes, dollars) —")
	for f, err := range net.SkylineSeq(ctx, q, mcn.WithEngine(mcn.CEA)) {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  shop %d: %v\n", f.ID, f.Costs)
	}

	// 2. Top-k with a preference: time matters 4x as much as money.
	agg := mcn.WeightedSum(0.8, 0.2)
	top, err := net.TopK(ctx, q, agg, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("— top-2 for f = 0.8·time + 0.2·toll —")
	for i, f := range top.Facilities {
		fmt.Printf("  #%d shop %d: costs %v, score %.2f\n", i+1, f.ID, f.Costs, f.Score)
	}

	// 3. Incremental: "give me the next best" without fixing k. TopKSeq
	// pulls results on demand; stop ranging whenever you have enough.
	fmt.Println("— incremental ranking —")
	rank := 1
	for f, err := range net.TopKSeq(ctx, q, agg) {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  rank %d: shop %d (score %.2f)\n", rank, f.ID, f.Score)
		rank++
	}

	// 4. The same network as a disk database with a 1% LRU buffer.
	dir, err := os.MkdirTemp("", "mcn-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "downtown.mcn")
	if err := mcn.CreateDatabase(g, path); err != nil {
		log.Fatal(err)
	}
	db, err := mcn.OpenDatabase(path, 0.01)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	diskSky, err := db.Skyline(ctx, q, mcn.WithEngine(mcn.CEA))
	if err != nil {
		log.Fatal(err)
	}
	io, _ := db.IOStats()
	fmt.Printf("— disk run — skyline size %d, I/O: %v\n", len(diskSky.Facilities), io)

	_ = shops
}
