// Housing: the paper's second motivating scenario. A university must pick a
// residential block for student/instructor housing. Commuters either walk or
// drive, and the shortest walking path differs from the shortest driving
// path (one-way streets, pedestrian zones). The example runs on a synthetic
// city (the paper-scale generator, scaled down), demonstrates the skyline
// over (walking, driving) reachability, ranks blocks for a 70/30
// walking/driving population, and shows dynamic maintenance as blocks enter
// and leave the market.
package main

import (
	"context"
	"fmt"
	"log"

	"mcn"
)

func main() {
	// d=2: cost 0 = walking minutes, cost 1 = driving minutes. The
	// anti-correlated generator captures the tension between the two (roads
	// good for cars are often bad for pedestrians).
	g, err := mcn.Synthetic(mcn.SyntheticConfig{
		Nodes:      8_000,
		Facilities: 400, // residential blocks on the market
		Clusters:   6,
		D:          2,
		Dist:       "anti-correlated",
		Seed:       42,
	})
	if err != nil {
		log.Fatal(err)
	}
	net := mcn.FromGraph(g)
	ctx := context.Background()

	// The university sits at a fixed network location.
	university := mcn.RandomQueries(g, 1, 7)[0]

	sky, err := net.Skyline(ctx, university, mcn.WithEngine(mcn.CEA))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("City: %d intersections, %d road segments, %d blocks on the market\n",
		g.NumNodes(), g.NumEdges(), g.NumFacilities())
	fmt.Printf("\nSkyline blocks (walk, drive) — candidates for ANY commuter mix: %d\n", len(sky.Facilities))
	for i, f := range sky.Facilities {
		if i == 5 {
			fmt.Printf("  … and %d more\n", len(sky.Facilities)-5)
			break
		}
		fmt.Printf("  block %4d: walk %6.1f, drive %6.1f\n", f.ID, f.Costs[0], f.Costs[1])
	}
	fmt.Printf("(local search: tracked %d of %d blocks, expanded %d nodes)\n",
		sky.Stats.Tracked, g.NumFacilities(), sky.Stats.NodeExpansions)

	// 70% of residents walk, 30% drive.
	agg := mcn.WeightedSum(0.7, 0.3)
	top, err := net.TopK(ctx, university, agg, 4, mcn.WithEngine(mcn.CEA))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nTop-4 blocks for f = 0.7·walk + 0.3·drive:")
	for i, f := range top.Facilities {
		fmt.Printf("  #%d block %4d: score %6.1f (walk %6.1f, drive %6.1f)\n",
			i+1, f.ID, f.Score, f.Costs[0], f.Costs[1])
	}

	// The market moves: one block sells, a new one is listed right next to
	// campus. Maintain the result without recomputing from scratch.
	m, err := net.Maintain(ctx, university)
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close() // returns the maintainer's pooled probe scratch
	sold := top.Facilities[0].ID
	if err := m.Delete(mcn.Handle(sold)); err != nil {
		log.Fatal(err)
	}
	newBlock, err := m.Insert(university.Edge, university.T)
	if err != nil {
		log.Fatal(err)
	}
	entries, scores, err := m.TopK(agg, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nAfter block %d sold and block %d was listed on campus:\n", sold, newBlock)
	for i, e := range entries {
		fmt.Printf("  #%d block %4d: score %6.1f\n", i+1, e.Handle, scores[i])
	}
}
