// Socialnet: the paper notes (Sec. I) that MCN preference queries apply
// directly to social networks whose ties carry multiple weights. Here edges
// between people carry two "distances": call infrequency (rarely calling =
// far) and spatial distance between home addresses. The skyline finds the
// people closest to a given person under any mix of the two affinity
// measures; an incremental top-k ranks them for a chosen blend. People are
// modelled as facilities pinned to the end of an incident tie, and the
// network is purely topological — node coordinates are never used.
package main

import (
	"context"
	"fmt"
	"log"

	"mcn"
)

func main() {
	names := []string{"alice", "bob", "carol", "dave", "erin", "frank", "grace", "heidi"}
	b := mcn.NewBuilder(2, false)
	idx := make(map[string]mcn.NodeID, len(names))
	for _, n := range names {
		idx[n] = b.AddNode(0, 0)
	}

	// (call infrequency, km between homes)
	ties := []struct {
		a, b string
		w    mcn.Costs
	}{
		{"alice", "bob", mcn.Of(1, 12)},  // talk daily, live far apart
		{"alice", "carol", mcn.Of(8, 1)}, // rarely talk, next door
		{"alice", "dave", mcn.Of(4, 5)},  // middling both
		{"bob", "erin", mcn.Of(2, 3)},
		{"carol", "frank", mcn.Of(1, 2)},
		{"dave", "grace", mcn.Of(3, 9)},
		{"erin", "grace", mcn.Of(5, 2)},
		{"frank", "heidi", mcn.Of(2, 6)},
		{"grace", "heidi", mcn.Of(1, 1)},
	}

	// Pin each person to one incident tie: T=0 if they are its first
	// endpoint, T=1 if its second.
	type pin struct {
		edge mcn.EdgeID
		t    float64
	}
	pins := make(map[string]pin, len(names))
	for _, tie := range ties {
		e := b.AddEdge(idx[tie.a], idx[tie.b], tie.w)
		if _, done := pins[tie.a]; !done {
			pins[tie.a] = pin{edge: e, t: 0}
		}
		if _, done := pins[tie.b]; !done {
			pins[tie.b] = pin{edge: e, t: 1}
		}
	}
	person := make(map[mcn.FacilityID]string)
	for _, n := range names {
		if n == "alice" {
			continue // alice is the query subject
		}
		p := pins[n]
		person[b.AddFacility(p.edge, p.t)] = n
	}

	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	net := mcn.FromGraph(g)
	ctx := context.Background()
	q, err := mcn.LocationAtNode(g, idx["alice"])
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Who is closest to alice? (call infrequency, km)")
	sky, err := net.Skyline(ctx, q, mcn.WithEngine(mcn.CEA))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nSkyline — closest under some mix of affinity measures:")
	for _, f := range sky.Facilities {
		fmt.Printf("  %-6s %v\n", person[f.ID], f.Costs)
	}

	// Blend: calls matter twice as much as geography.
	agg := mcn.WeightedSum(2, 1)
	it, err := net.TopKIterator(ctx, q, agg)
	if err != nil {
		log.Fatal(err)
	}
	defer it.Close()
	fmt.Println("\nIncremental ranking for f = 2·calls + 1·distance:")
	for rank := 1; rank <= 3; rank++ {
		f, ok, err := it.Next()
		if err != nil {
			log.Fatal(err)
		}
		if !ok {
			break
		}
		fmt.Printf("  #%d %-6s score %.1f %v\n", rank, person[f.ID], f.Score, f.Costs)
	}
}
