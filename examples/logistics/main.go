// Logistics: the paper's Figure 1 scenario. Goods leave a port for one of
// several candidate warehouses. Dairy products need the fastest route; bulk
// goods the cheapest (toll-wise). The MCN skyline shortlists warehouses that
// are optimal for some mix, a top-k query ranks them for the observed 90/10
// sensitive/bulk traffic split, and Pareto routing materialises the actual
// route options to the winner.
package main

import (
	"context"
	"fmt"
	"log"

	"mcn"
)

func main() {
	// Two cost types per road segment: (travel minutes, toll dollars).
	b := mcn.NewBuilder(2, false)

	port := b.AddNode(0, 0)
	j1 := b.AddNode(2, 1)   // highway junction (tolled, fast)
	j2 := b.AddNode(2, -1)  // surface streets (free, slow)
	j3 := b.AddNode(4, 0)   // ring road
	east := b.AddNode(6, 0) // eastern industrial park

	hw1 := b.AddEdge(port, j1, mcn.Of(6, 1)) // highway with toll gate
	hw2 := b.AddEdge(j1, j3, mcn.Of(5, 1))   // second toll gate
	st1 := b.AddEdge(port, j2, mcn.Of(12, 0))
	st2 := b.AddEdge(j2, j3, mcn.Of(10, 0))
	ring := b.AddEdge(j3, east, mcn.Of(8, 0))
	b.AddEdge(j1, j2, mcn.Of(4, 1)) // tolled connector

	// Candidate warehouse sites. Placing them at T=1.0 keeps toll costs
	// whole (the toll gate sits at the start of each highway segment).
	warehouses := map[mcn.FacilityID]string{
		b.AddFacility(hw1, 1.0):  "W-highway (past toll gate)",
		b.AddFacility(st2, 0.5):  "W-streets (cheap corridor)",
		b.AddFacility(ring, 0.4): "W-ring (far east)",
		b.AddFacility(hw2, 1.0):  "W-junction (past 2nd toll)",
		b.AddFacility(st1, 0.9):  "W-portside (slow but free)",
	}

	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	net := mcn.FromGraph(g)
	ctx := context.Background()
	q, err := mcn.LocationAtNode(g, port)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Candidate warehouses reachable from the port (minutes, tolls $):")
	sky, err := net.Skyline(ctx, q, mcn.WithEngine(mcn.CEA))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nSkyline — no other site is both faster AND cheaper:")
	for _, f := range sky.Facilities {
		fmt.Printf("  %-28s %v\n", warehouses[f.ID], f.Costs)
	}
	fmt.Printf("(search tracked %d of %d sites, %d NN pops)\n",
		sky.Stats.Tracked, g.NumFacilities(), sky.Stats.Pops)

	// 90% of loads are time-sensitive, 10% cost-sensitive.
	agg := mcn.WeightedSum(0.9, 0.1)
	top, err := net.TopK(ctx, q, agg, 3, mcn.WithEngine(mcn.CEA))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nTop-3 for f = 0.9·time + 0.1·toll:")
	for i, f := range top.Facilities {
		fmt.Printf("  #%d %-28s score %.2f  %v\n", i+1, warehouses[f.ID], f.Score, f.Costs)
	}

	// Route options to the winner: the Pareto set over (time, toll) —
	// typically the tolled fast route and the free slow one.
	winner := top.Facilities[0].ID
	wf := g.Facility(winner)
	routes, err := net.ParetoPathsTo(ctx, port, mcn.Location{Edge: wf.Edge, T: wf.T}, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPareto route options from the port to %s:\n", warehouses[winner])
	for _, r := range routes {
		fmt.Printf("  via edges %v — full-edge costs %v\n", r.Edges, r.Costs)
	}
}
