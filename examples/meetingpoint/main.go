// Meetingpoint: multi-source preference queries (the related-work query
// class of Deng et al., ICDE 2007, which the paper contrasts with its MCN
// skyline). Three friends scattered across a synthetic city pick a café:
// the multi-source skyline lists cafés not dominated in (dist-from-ana,
// dist-from-ben, dist-from-caro), and aggregate top-k queries answer
// "minimise total travel" vs "minimise the worst commute". A multi-cost
// range query then shortlists cafés within everyone's personal budget.
package main

import (
	"context"
	"fmt"
	"log"

	"mcn"
)

func main() {
	g, err := mcn.Synthetic(mcn.SyntheticConfig{
		Nodes:      6_000,
		Facilities: 150, // cafés
		Clusters:   5,
		D:          2, // cost 0 = walking minutes, cost 1 = taxi dollars
		Dist:       "independent",
		Seed:       3,
	})
	if err != nil {
		log.Fatal(err)
	}
	net := mcn.FromGraph(g)
	ctx := context.Background()

	people := []string{"ana", "ben", "caro"}
	locs := mcn.RandomQueries(g, len(people), 99)

	const walk = 0 // judge by walking time
	sky, err := net.MultiSourceSkyline(ctx, walk, locs, mcn.WithEngine(mcn.CEA))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d cafés are Pareto-optimal for the three friends (walking minutes):\n", len(sky.Facilities))
	for i, f := range sky.Facilities {
		if i == 6 {
			fmt.Printf("  … and %d more\n", len(sky.Facilities)-6)
			break
		}
		fmt.Printf("  café %3d: ana %5.1f  ben %5.1f  caro %5.1f\n", f.ID, f.Costs[0], f.Costs[1], f.Costs[2])
	}

	sum, err := net.MultiSourceTopK(ctx, walk, locs, mcn.WeightedSum(1, 1, 1), 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nTop-3 by total walking time:")
	for i, f := range sum.Facilities {
		fmt.Printf("  #%d café %3d: total %5.1f min %v\n", i+1, f.ID, f.Score, f.Costs)
	}

	worst, err := net.MultiSourceTopK(ctx, walk, locs, mcn.WeightedMax(1, 1, 1), 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nTop-3 by the worst individual commute (min-max):")
	for i, f := range worst.Facilities {
		fmt.Printf("  #%d café %3d: worst %5.1f min %v\n", i+1, f.ID, f.Score, f.Costs)
	}

	// Ana also has a hard budget: at most 20 walking minutes AND at most 15
	// taxi dollars from her own location.
	within, err := net.Within(ctx, locs[0], mcn.Of(20, 15))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nCafés within ana's personal budget (≤20 min walk, ≤$15 taxi): %d\n", len(within.Facilities))
}
