module mcn

go 1.24
