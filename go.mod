module mcn

go 1.23
