package mcn

import (
	"context"
	"errors"
	"math"
	"path/filepath"
	"reflect"
	"testing"
)

// seqNetworks returns in-memory and disk-resident views of one synthetic
// network plus query locations, for exercising the streaming surface over
// both backends (the disk path streams on nil scratch / map state).
func seqNetworks(t *testing.T) (map[string]*Network, []Location) {
	t.Helper()
	g, err := Synthetic(SyntheticConfig{Nodes: 1_500, Facilities: 250, D: 3, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "seq.mcn")
	if err := CreateDatabase(g, path); err != nil {
		t.Fatal(err)
	}
	db, err := OpenDatabase(path, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return map[string]*Network{"memory": FromGraph(g), "disk": db}, RandomQueries(g, 6, 17)
}

// SkylineSeq must stream exactly the facilities, in exactly the confirmed
// order, that the Progressive callback delivers — for both engines.
func TestSkylineSeqMatchesProgressiveOrder(t *testing.T) {
	nets, locs := seqNetworks(t)
	for name, net := range nets {
		for _, eng := range []Engine{LSA, CEA} {
			t.Run(name+"/"+eng.String(), func(t *testing.T) {
				for _, loc := range locs {
					var progressive []FacilityID
					res, err := net.Skyline(ctx, loc, WithEngine(eng),
						Progressive(func(f Facility) { progressive = append(progressive, f.ID) }))
					if err != nil {
						t.Fatal(err)
					}
					var streamed []FacilityID
					for f, err := range net.SkylineSeq(ctx, loc, WithEngine(eng)) {
						if err != nil {
							t.Fatal(err)
						}
						streamed = append(streamed, f.ID)
					}
					if !reflect.DeepEqual(streamed, progressive) {
						t.Fatalf("SkylineSeq order %v != Progressive order %v", streamed, progressive)
					}
					if len(streamed) != len(res.Facilities) {
						t.Fatalf("streamed %d facilities, result has %d", len(streamed), len(res.Facilities))
					}
				}
			})
		}
	}
}

// TopKSeq must yield the same ranking as the closeable iterator and the
// batch TopK call.
func TestTopKSeqMatchesIterator(t *testing.T) {
	nets, locs := seqNetworks(t)
	net := nets["memory"]
	agg := WeightedSum(0.5, 0.3, 0.2)
	for _, loc := range locs {
		res, err := net.TopK(ctx, loc, agg, 5)
		if err != nil {
			t.Fatal(err)
		}
		var got []Facility
		for f, err := range net.TopKSeq(ctx, loc, agg) {
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, f)
			if len(got) == 5 {
				break
			}
		}
		if len(got) != len(res.Facilities) {
			t.Fatalf("TopKSeq yielded %d, TopK returned %d", len(got), len(res.Facilities))
		}
		for i := range got {
			if got[i].ID != res.Facilities[i].ID ||
				math.Abs(got[i].Score-res.Facilities[i].Score) > 1e-9 {
				t.Fatalf("rank %d: seq (%d, %g) != batch (%d, %g)",
					i, got[i].ID, got[i].Score, res.Facilities[i].ID, res.Facilities[i].Score)
			}
		}
	}
}

// Breaking out of a Seq loop stops the query cleanly, and the pooled
// scratch it borrowed is reusable: subsequent full queries must be correct.
func TestSeqEarlyBreakLeavesPoolHealthy(t *testing.T) {
	nets, locs := seqNetworks(t)
	net := nets["memory"]
	loc := locs[0]
	want, err := net.Skyline(ctx, loc, WithEngine(CEA))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		n := 0
		for _, err := range net.SkylineSeq(ctx, loc, WithEngine(CEA)) {
			if err != nil {
				t.Fatal(err)
			}
			n++
			if n > i%3 {
				break // abandon mid-stream, at varying depths
			}
		}
		for f, err := range net.TopKSeq(ctx, loc, WeightedSum(1, 1, 1)) {
			if err != nil {
				t.Fatal(err)
			}
			_ = f
			break // first result only
		}
	}
	got, err := net.Skyline(ctx, loc, WithEngine(CEA))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(idsSorted(got), idsSorted(want)) {
		t.Fatalf("skyline after abandoned streams %v != %v", idsSorted(got), idsSorted(want))
	}
}

// Errors surface exactly once through the Seq's error slot.
func TestSeqErrorPropagation(t *testing.T) {
	nets, _ := seqNetworks(t)
	net := nets["memory"]
	bad := Location{Edge: EdgeID(net.NumEdges() + 5), T: 0.5}
	var yields, errs int
	for _, err := range net.SkylineSeq(ctx, bad) {
		yields++
		if err != nil {
			errs++
		}
	}
	if yields != 1 || errs != 1 {
		t.Fatalf("bad location: %d yields, %d errors; want exactly one error yield", yields, errs)
	}

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	errs = 0
	for _, err := range net.SkylineSeq(cancelled, RandomQueries(mustGraph(t, net), 1, 4)[0]) {
		if err == nil {
			continue
		}
		errs++
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	}
	if errs != 1 {
		t.Fatalf("cancelled stream yielded %d errors, want 1", errs)
	}
}

// Breaking the loop and cancelling the context in the same round must not
// re-enter the consumer: a range-over-func panics if yielded to after it
// returned false, so the driver has to swallow late interrupt errors once
// the consumer is gone.
func TestSeqBreakWithConcurrentCancel(t *testing.T) {
	nets, locs := seqNetworks(t)
	net := nets["memory"]
	for _, loc := range locs {
		streamCtx, cancel := context.WithCancel(context.Background())
		for _, err := range net.SkylineSeq(streamCtx, loc) {
			if err != nil {
				t.Fatal(err)
			}
			cancel() // driver sees both a stop and a cancelled ctx
			break
		}
		cancel()
	}
}

func mustGraph(t *testing.T, net *Network) *Graph {
	t.Helper()
	g, ok := net.Graph()
	if !ok {
		t.Fatal("network has no in-memory graph")
	}
	return g
}
