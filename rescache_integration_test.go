package mcn

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// bitEqualResults reports bit-for-bit equality of two results: same
// facilities in the same order with bit-identical cost/score floats (NaN
// components compare by bits, so "unknown" equals "unknown"), and the same
// work statistics. This is the cache's byte-identity contract: a hit must
// be indistinguishable from running the query.
func bitEqualResults(a, b *Result) bool {
	if a.Stats != b.Stats || len(a.Facilities) != len(b.Facilities) {
		return false
	}
	for i, fa := range a.Facilities {
		fb := b.Facilities[i]
		if fa.ID != fb.ID || len(fa.Costs) != len(fb.Costs) {
			return false
		}
		if math.Float64bits(fa.Score) != math.Float64bits(fb.Score) {
			return false
		}
		for j := range fa.Costs {
			if math.Float64bits(fa.Costs[j]) != math.Float64bits(fb.Costs[j]) {
				return false
			}
		}
	}
	return true
}

// equivGraph builds the randomized harness's network once per test.
func equivGraph(t *testing.T, seed int64) *Graph {
	t.Helper()
	g, err := Synthetic(SyntheticConfig{Nodes: 600, Facilities: 150, D: 3, Seed: seed})
	if err != nil {
		t.Fatalf("Synthetic: %v", err)
	}
	return g
}

// randomRequest draws one request of a random kind with random parameters,
// mixing engines and the enhancement ablation so the cache key's variant
// bytes are exercised too.
func randomRequest(rng *rand.Rand, g *Graph, locs []Location) BatchRequest {
	loc := locs[rng.Intn(len(locs))]
	var opts []Option
	if rng.Intn(2) == 0 {
		opts = append(opts, WithEngine(CEA))
	}
	if rng.Intn(8) == 0 {
		opts = append(opts, WithoutEnhancements())
	}
	switch rng.Intn(4) {
	case 0:
		return SkylineRequest(loc, opts...)
	case 1:
		coef := make([]float64, g.D())
		for i := range coef {
			coef[i] = rng.Float64()
		}
		coef[rng.Intn(len(coef))] += 0.1 // keep at least one weight positive
		return TopKRequest(loc, WeightedSum(coef...), 1+rng.Intn(5), opts...)
	case 2:
		return NearestRequest(loc, rng.Intn(g.D()), 1+rng.Intn(4))
	default:
		budget := make([]float64, g.D())
		for i := range budget {
			budget[i] = 5 + 60*rng.Float64()
		}
		return WithinRequest(loc, Of(budget...), opts...)
	}
}

// TestCachedEquivalenceRandomized runs a Zipf-ish randomized workload (few
// distinct queries, many repetitions) through a cached and an uncached
// executor over the same graph and requires every response to be
// bit-identical — the cache must be observationally invisible.
func TestCachedEquivalenceRandomized(t *testing.T) {
	g := equivGraph(t, 7)
	plain := FromGraph(g)
	cached := FromGraph(g)
	cached.EnableResultCache(CacheOptions{Entries: 256})

	plainEx := plain.NewExecutor(ExecutorConfig{Workers: 1})
	cachedEx := cached.NewExecutor(ExecutorConfig{Workers: 1})

	rng := rand.New(rand.NewSource(11))
	locs := RandomQueries(g, 6, 3)

	// A small distinct-request pool replayed many times guarantees hits.
	reqs := make([]BatchRequest, 12)
	for i := range reqs {
		reqs[i] = randomRequest(rng, g, locs)
	}
	for i := 0; i < 120; i++ {
		req := reqs[rng.Intn(len(reqs))]
		want := plainEx.Do(ctx, req)
		got := cachedEx.Do(ctx, req)
		if want.Err != nil || got.Err != nil {
			t.Fatalf("query %d (%v): errs %v / %v", i, req.Kind, want.Err, got.Err)
		}
		if !bitEqualResults(want.Result, got.Result) {
			t.Fatalf("query %d (%v): cached result diverged from uncached", i, req.Kind)
		}
	}
	cs, ok := cached.ResultCacheStats()
	if !ok || cs.Hits == 0 {
		t.Fatalf("harness never hit the cache: %+v", cs)
	}
	if cs.Misses > int64(len(reqs)) {
		t.Fatalf("more misses (%d) than distinct requests (%d)", cs.Misses, len(reqs))
	}
}

// TestCachedEquivalenceScaledWeights checks the weight-normalization alias:
// a top-k query whose weight vector is a positive multiple of a cached one
// shares the entry and must return the same ranking with proportionally
// scaled scores.
func TestCachedEquivalenceScaledWeights(t *testing.T) {
	g := equivGraph(t, 7)
	net := FromGraph(g)
	net.EnableResultCache(CacheOptions{Entries: 64})
	ex := net.NewExecutor(ExecutorConfig{Workers: 1})
	loc := RandomQueries(g, 1, 5)[0]

	// The scaled vector must be an exact binary multiple (here 4x) for the
	// normalized keys to collide bit-for-bit; decimal multiples like 3x
	// produce different float bits and legitimately miss.
	base := ex.Do(ctx, TopKRequest(loc, WeightedSum(0.2, 0.3, 0.5), 5))
	scaled := ex.Do(ctx, TopKRequest(loc, WeightedSum(0.8, 1.2, 2.0), 5))
	if base.Err != nil || scaled.Err != nil {
		t.Fatalf("errs: %v / %v", base.Err, scaled.Err)
	}
	cs, _ := net.ResultCacheStats()
	if cs.Hits != 1 {
		t.Fatalf("scaled weight vector did not share the entry: %+v", cs)
	}
	for i, f := range base.Result.Facilities {
		sf := scaled.Result.Facilities[i]
		if f.ID != sf.ID {
			t.Fatalf("rank %d: id %d vs %d under scaled weights", i, f.ID, sf.ID)
		}
		if want := f.Score * 4; math.Abs(sf.Score-want) > 1e-9*math.Max(1, math.Abs(want)) {
			t.Fatalf("rank %d: score %g, want %g", i, sf.Score, want)
		}
	}
}

// timedepPair builds two identical time-dependent networks over g — one
// cached, one not — with the same rush-hour profiles attached.
func timedepPair(t *testing.T, g *Graph) (cached, plain *TimeNetwork, cache *ResultCache) {
	t.Helper()
	cached, plain = TimeDependent(g), TimeDependent(g)
	for e := 0; e < g.NumEdges(); e += 7 {
		p := TimeProfile{
			Times: []float64{8, 10},
			Mult:  []Costs{Of(3, 1, 2), Of(1, 1, 1)},
		}
		if err := cached.SetProfile(EdgeID(e), p); err != nil {
			t.Fatalf("SetProfile: %v", err)
		}
		if err := plain.SetProfile(EdgeID(e), p); err != nil {
			t.Fatalf("SetProfile: %v", err)
		}
	}
	c := NewResultCache(CacheOptions{Entries: 256})
	cached.EnableResultCache(c)
	return cached, plain, c
}

// TestCachedEquivalenceTimeDependent replays random instant queries of all
// four kinds against cached and uncached time-dependent networks and
// requires bit-identical results. Instants are drawn from a small pool so
// interval-keyed entries are hit both at the exact same instant and at
// different instants inside the same elementary interval.
func TestCachedEquivalenceTimeDependent(t *testing.T) {
	g := equivGraph(t, 9)
	cached, plain, cache := timedepPair(t, g)
	rng := rand.New(rand.NewSource(13))
	locs := RandomQueries(g, 4, 17)
	agg := WeightedSum(0.5, 0.2, 0.3)
	times := []float64{2, 8.5, 9.9, 25}

	for i := 0; i < 80; i++ {
		loc := locs[rng.Intn(len(locs))]
		at := times[rng.Intn(len(times))] + rng.Float64()*0.05 // same interval, jittered instant
		var want, got *Result
		var errW, errG error
		switch i % 4 {
		case 0:
			want, errW = plain.SkylineAt(ctx, loc, at, QueryOptions())
			got, errG = cached.SkylineAt(ctx, loc, at, QueryOptions())
		case 1:
			want, errW = plain.TopKAt(ctx, loc, agg, 4, at, QueryOptions())
			got, errG = cached.TopKAt(ctx, loc, agg, 4, at, QueryOptions())
		case 2:
			want, errW = plain.NearestAt(ctx, loc, i%3, 3, at, QueryOptions())
			got, errG = cached.NearestAt(ctx, loc, i%3, 3, at, QueryOptions())
		default:
			want, errW = plain.WithinAt(ctx, loc, Of(40, 40, 40), at, QueryOptions())
			got, errG = cached.WithinAt(ctx, loc, Of(40, 40, 40), at, QueryOptions())
		}
		if errW != nil || errG != nil {
			t.Fatalf("query %d: errs %v / %v", i, errW, errG)
		}
		if !bitEqualResults(want, got) {
			t.Fatalf("query %d at t=%g: cached timedep result diverged", i, at)
		}
	}
	if cs := cache.Stats(); cs.Hits == 0 {
		t.Fatalf("timedep harness never hit the cache: %+v", cs)
	}
}

// precisionGraph is a hand-built chain whose facility placement the
// invalidation tests control exactly: facilities f0 on edge 0 and f1 on
// edge 2, with edge 3 kept empty.
//
//	n0 --e0[f0]-- n1 --e1-- n2 --e2[f1]-- n3 --e3-- n4
func precisionGraph(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(2, false)
	var n [5]NodeID
	for i := range n {
		n[i] = b.AddNode(float64(i), 0)
	}
	e0 := b.AddEdge(n[0], n[1], Of(1, 2))
	b.AddEdge(n[1], n[2], Of(2, 1))
	e2 := b.AddEdge(n[2], n[3], Of(1, 1))
	b.AddEdge(n[3], n[4], Of(3, 3))
	b.AddFacility(e0, 0.5)
	b.AddFacility(e2, 0.5)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

// TestMaintainInvalidationPrecision pins the incremental half of the
// contract: a Maintainer insert kills exactly the cached entries whose
// query location or result facilities lie on the touched edge. The entry
// for an untouched facility survives; inserting on an edge no entry
// depends on evicts nothing.
func TestMaintainInvalidationPrecision(t *testing.T) {
	g := precisionGraph(t)
	net := FromGraph(g)
	net.EnableResultCache(CacheOptions{Entries: 64})
	ex := net.NewExecutor(ExecutorConfig{Workers: 1})

	// Nearest k=1 keeps each entry's tag set to {loc edge, result edge}.
	reqA := NearestRequest(Location{Edge: 0, T: 0.25}, 0, 1) // f0; tags {e0}
	reqB := NearestRequest(Location{Edge: 2, T: 0.75}, 0, 1) // f1; tags {e2}
	for _, r := range []BatchRequest{reqA, reqB} {
		if resp := ex.Do(ctx, r); resp.Err != nil {
			t.Fatalf("fill: %v", resp.Err)
		}
	}

	m, err := net.Maintain(ctx, Location{Edge: 1, T: 0.5})
	if err != nil {
		t.Fatalf("Maintain: %v", err)
	}
	defer m.Close()

	// Insert on the empty edge 3: neither entry depends on it.
	if _, err := m.Insert(3, 0.5); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	hitsBefore, _ := net.ResultCacheStats()
	ex.Do(ctx, reqA)
	ex.Do(ctx, reqB)
	cs, _ := net.ResultCacheStats()
	if got := cs.Hits - hitsBefore.Hits; got != 2 {
		t.Fatalf("insert on unrelated edge evicted entries: %d hits of 2", got)
	}

	// Insert on edge 0: entry A (loc and result on e0) must die, entry B
	// must survive.
	if _, err := m.Insert(0, 0.1); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	before, _ := net.ResultCacheStats()
	respA := ex.Do(ctx, reqA)
	respB := ex.Do(ctx, reqB)
	if respA.Err != nil || respB.Err != nil {
		t.Fatalf("requery: %v / %v", respA.Err, respB.Err)
	}
	after, _ := net.ResultCacheStats()
	if respA.Cached {
		t.Fatalf("entry for touched edge 0 survived the insert")
	}
	if !respB.Cached {
		t.Fatalf("entry for untouched edge 2 was evicted")
	}
	if after.Invalidated-before.Invalidated != 1 {
		t.Fatalf("Invalidated delta = %d, want 1", after.Invalidated-before.Invalidated)
	}
}

// TestSetProfileInvalidationPrecision pins the time-dependent half: a
// profile edit that keeps the breakpoint axis invalidates only the
// elementary intervals whose effective costs changed; an axis-changing
// edit invalidates the whole time-dependent class but never static
// entries sharing the cache.
func TestSetProfileInvalidationPrecision(t *testing.T) {
	g := precisionGraph(t)
	net := FromGraph(g)
	cache := net.EnableResultCache(CacheOptions{Entries: 64})
	ex := net.NewExecutor(ExecutorConfig{Workers: 1})

	tn := TimeDependent(g)
	tn.EnableResultCache(cache)
	if err := tn.SetProfile(1, TimeProfile{
		Times: []float64{10, 20},
		Mult:  []Costs{Of(2, 2), Of(3, 3)},
	}); err != nil {
		t.Fatalf("SetProfile: %v", err)
	}

	loc := Location{Edge: 0, T: 0.5}
	fill := func() {
		for _, at := range []float64{5, 15, 25} { // intervals 0, 1, 2
			if _, err := tn.SkylineAt(ctx, loc, at, QueryOptions()); err != nil {
				t.Fatalf("SkylineAt: %v", err)
			}
		}
	}
	hit := func(at float64) bool {
		before := cache.Stats()
		if _, err := tn.SkylineAt(ctx, loc, at, QueryOptions()); err != nil {
			t.Fatalf("SkylineAt: %v", err)
		}
		return cache.Stats().Hits == before.Hits+1
	}
	fill()

	// Same axis, only the [20, inf) multiplier changes: interval 2 dies,
	// intervals 0 and 1 survive.
	if err := tn.SetProfile(1, TimeProfile{
		Times: []float64{10, 20},
		Mult:  []Costs{Of(2, 2), Of(5, 5)},
	}); err != nil {
		t.Fatalf("SetProfile: %v", err)
	}
	if !hit(5) || !hit(15) {
		t.Fatalf("untouched intervals were invalidated by a same-axis edit")
	}
	if hit(25) {
		t.Fatalf("edited interval survived the profile edit")
	}

	// The recomputed entry must match a fresh uncached network.
	fresh := TimeDependent(g)
	if err := fresh.SetProfile(1, TimeProfile{
		Times: []float64{10, 20},
		Mult:  []Costs{Of(2, 2), Of(5, 5)},
	}); err != nil {
		t.Fatalf("SetProfile: %v", err)
	}
	want, err := fresh.SkylineAt(ctx, loc, 25, QueryOptions())
	if err != nil {
		t.Fatalf("SkylineAt: %v", err)
	}
	got, err := tn.SkylineAt(ctx, loc, 25, QueryOptions())
	if err != nil {
		t.Fatalf("SkylineAt: %v", err)
	}
	if !bitEqualResults(want, got) {
		t.Fatalf("post-edit cached result diverged from fresh network")
	}

	// Axis change: every timedep entry dies, static entries survive.
	static := NearestRequest(Location{Edge: 0, T: 0.25}, 0, 1)
	ex.Do(ctx, static) // fill a static entry in the shared cache
	if err := tn.SetProfile(1, TimeProfile{
		Times: []float64{10, 20, 30},
		Mult:  []Costs{Of(2, 2), Of(5, 5), Of(7, 7)},
	}); err != nil {
		t.Fatalf("SetProfile: %v", err)
	}
	if hit(5) {
		t.Fatalf("timedep entry survived an axis-changing edit")
	}
	if resp := ex.Do(ctx, static); !resp.Cached {
		t.Fatalf("static entry was killed by a timedep axis change")
	}
}

// TestThunderingHerdSingleExpansion pins the coalescing contract under the
// race detector: a herd of goroutines issuing the same cold query through
// one executor performs the expansion exactly once — every other caller
// either coalesces onto the in-flight computation or hits the entry it
// filled.
func TestThunderingHerdSingleExpansion(t *testing.T) {
	g := equivGraph(t, 21)
	net := FromGraph(g)
	net.EnableResultCache(CacheOptions{Entries: 64})
	ex := net.NewExecutor(ExecutorConfig{Workers: 8})
	req := SkylineRequest(RandomQueries(g, 1, 23)[0], WithEngine(CEA))

	const herd = 24
	results := make([]*Result, herd)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			resp := ex.Do(ctx, req)
			if resp.Err != nil {
				t.Errorf("herd query: %v", resp.Err)
				return
			}
			results[i] = resp.Result
		}(i)
	}
	close(start)
	wg.Wait()

	cs, _ := net.ResultCacheStats()
	if cs.Misses != 1 {
		t.Fatalf("cold popular key expanded %d times; want 1 (%+v)", cs.Misses, cs)
	}
	if cs.Hits+cs.Coalesced != herd-1 {
		t.Fatalf("hits+coalesced = %d, want %d (%+v)", cs.Hits+cs.Coalesced, herd-1, cs)
	}
	for i := 1; i < herd; i++ {
		if !bitEqualResults(results[0], results[i]) {
			t.Fatalf("herd member %d saw a different result", i)
		}
	}
}
