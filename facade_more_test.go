package mcn

import (
	"bytes"
	"context"
	"math"
	"reflect"
	"testing"
)

// Exercise the facade entry points not covered by the focused tests, against
// the same small deterministic city.
func TestFacadeBreadth(t *testing.T) {
	g := cityGraph(t)
	net := FromGraph(g)
	ctx := context.Background()
	loc, err := LocationAtNode(g, 0)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("Directed and Graph accessors", func(t *testing.T) {
		if net.Directed() {
			t.Error("city graph should be undirected")
		}
		got, ok := net.Graph()
		if !ok || got != g {
			t.Error("Graph() should return the wrapped graph")
		}
	})

	t.Run("WeightedMax", func(t *testing.T) {
		agg := WeightedMax(1, 1)
		res, err := net.TopK(ctx, loc, agg, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Facilities) != 1 {
			t.Fatalf("top-1 size %d", len(res.Facilities))
		}
		f := res.Facilities[0]
		if want := math.Max(f.Costs[0], f.Costs[1]); math.Abs(f.Score-want) > 1e-9 {
			t.Errorf("max score = %g, want %g", f.Score, want)
		}
	})

	t.Run("Within", func(t *testing.T) {
		res, err := net.Within(ctx, loc, Of(100, 100), WithEngine(CEA))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Facilities) != g.NumFacilities() {
			t.Errorf("generous budget admits %d of %d facilities", len(res.Facilities), g.NumFacilities())
		}
	})

	t.Run("BaselineTopK", func(t *testing.T) {
		agg := WeightedSum(0.5, 0.5)
		fast, err := net.TopK(ctx, loc, agg, 2)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := net.BaselineTopK(ctx, loc, agg, 2)
		if err != nil {
			t.Fatal(err)
		}
		for i := range fast.Facilities {
			if math.Abs(fast.Facilities[i].Score-slow.Facilities[i].Score) > 1e-9 {
				t.Errorf("baseline top-k disagrees at %d", i)
			}
		}
	})

	t.Run("MultiSource", func(t *testing.T) {
		locB, err := LocationAtNode(g, 5)
		if err != nil {
			t.Fatal(err)
		}
		sky, err := net.MultiSourceSkyline(ctx, 0, []Location{loc, locB}, WithEngine(CEA))
		if err != nil {
			t.Fatal(err)
		}
		if len(sky.Facilities) == 0 {
			t.Error("multi-source skyline empty")
		}
		top, err := net.MultiSourceTopK(ctx, 0, []Location{loc, locB}, WeightedSum(1, 1), 2)
		if err != nil {
			t.Fatal(err)
		}
		if len(top.Facilities) != 2 {
			t.Errorf("multi-source top-2 size %d", len(top.Facilities))
		}
	})

	t.Run("ParetoPathsTo and Approx", func(t *testing.T) {
		to, err := LocationOnEdge(g, 3, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := net.ParetoPathsTo(ctx, 0, to, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(exact) == 0 {
			t.Fatal("no Pareto routes to location")
		}
		approx, err := net.ParetoPathsApprox(ctx, 0, 5, 0, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		exactN, err := net.ParetoPaths(ctx, 0, 5, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(approx) > len(exactN) {
			t.Errorf("epsilon pruning grew the frontier: %d > %d", len(approx), len(exactN))
		}
	})

	t.Run("TextRoundtrip", func(t *testing.T) {
		var buf bytes.Buffer
		if err := WriteText(&buf, g); err != nil {
			t.Fatal(err)
		}
		g2, err := ReadText(&buf)
		if err != nil {
			t.Fatal(err)
		}
		a, err := FromGraph(g2).Skyline(ctx, loc)
		if err != nil {
			t.Fatal(err)
		}
		b, err := net.Skyline(ctx, loc)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(idsSorted(a), idsSorted(b)) {
			t.Error("skyline differs after text roundtrip")
		}
	})

	t.Run("TimeDependent", func(t *testing.T) {
		tn := TimeDependent(g)
		if err := tn.SetProfile(0, TimeProfile{
			Times: []float64{5},
			Mult:  []Costs{Of(2, 2)},
		}); err != nil {
			t.Fatal(err)
		}
		intervals, err := tn.SkylineOverPeriod(ctx, loc, 0, 10, QueryOptions(WithEngine(CEA)))
		if err != nil {
			t.Fatal(err)
		}
		if len(intervals) == 0 {
			t.Fatal("no intervals")
		}
		if intervals[0].From != 0 || intervals[len(intervals)-1].To != 10 {
			t.Error("intervals do not tile the period")
		}
		// Instant queries must agree with the interval covering the instant.
		for _, at := range []float64{0, 5, 9.5} {
			res, err := tn.SkylineAt(ctx, loc, at, QueryOptions(WithEngine(CEA)))
			if err != nil {
				t.Fatal(err)
			}
			for _, iv := range intervals {
				if at < iv.From || at >= iv.To {
					continue
				}
				if !reflect.DeepEqual(idsSorted(res), idsSorted(iv.Result)) {
					t.Errorf("SkylineAt(%g) = %v, interval result %v", at, idsSorted(res), idsSorted(iv.Result))
				}
			}
		}
		if _, err := tn.TopKAt(ctx, loc, WeightedSum(1, 1), 2, 6, QueryOptions()); err != nil {
			t.Errorf("TopKAt: %v", err)
		}
		if _, err := tn.NearestAt(ctx, loc, 0, 2, 6, QueryOptions()); err != nil {
			t.Errorf("NearestAt: %v", err)
		}
		if _, err := tn.WithinAt(ctx, loc, Of(100, 100), 6, QueryOptions()); err != nil {
			t.Errorf("WithinAt: %v", err)
		}
	})

	t.Run("InMemoryIOStats", func(t *testing.T) {
		if _, ok := net.IOStats(); ok {
			t.Error("in-memory network reported I/O stats")
		}
		net.ResetIOStats() // must be a safe no-op
		if err := net.Close(); err != nil {
			t.Errorf("Close on in-memory network: %v", err)
		}
	})
}

func TestFacadeDatabaseErrors(t *testing.T) {
	if _, err := OpenDatabase("/nonexistent/path.mcn", 0.1); err == nil {
		t.Error("opening a missing database succeeded")
	}
	g := cityGraph(t)
	if err := CreateDatabase(g, "/nonexistent/dir/x.mcn"); err == nil {
		t.Error("creating a database in a missing directory succeeded")
	}
}
