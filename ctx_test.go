package mcn

import (
	"context"
	"errors"
	"testing"
)

// Every facade query entry point must honour a cancelled context: the query
// aborts at its next interrupt poll with the context's error.
func TestContextCancellationPerQueryKind(t *testing.T) {
	g, err := Synthetic(SyntheticConfig{Nodes: 1_200, Facilities: 200, D: 3, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	net := FromGraph(g)
	loc := RandomQueries(g, 2, 7)[0]
	locB := RandomQueries(g, 2, 7)[1]
	agg := WeightedSum(1, 1, 1)

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()

	wantCanceled := func(t *testing.T, err error) {
		t.Helper()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	}

	t.Run("Skyline", func(t *testing.T) {
		_, err := net.Skyline(cancelled, loc)
		wantCanceled(t, err)
	})
	t.Run("TopK", func(t *testing.T) {
		_, err := net.TopK(cancelled, loc, agg, 3)
		wantCanceled(t, err)
	})
	t.Run("TopKIterator", func(t *testing.T) {
		it, err := net.TopKIterator(cancelled, loc, agg)
		if err != nil {
			t.Fatal(err)
		}
		defer it.Close()
		_, _, err = it.Next()
		wantCanceled(t, err)
	})
	t.Run("Nearest", func(t *testing.T) {
		_, err := net.Nearest(cancelled, loc, 0, 3)
		wantCanceled(t, err)
	})
	t.Run("Within", func(t *testing.T) {
		_, err := net.Within(cancelled, loc, Of(100, 100, 100))
		wantCanceled(t, err)
	})
	t.Run("MultiSourceSkyline", func(t *testing.T) {
		_, err := net.MultiSourceSkyline(cancelled, 0, []Location{loc, locB})
		wantCanceled(t, err)
	})
	t.Run("MultiSourceTopK", func(t *testing.T) {
		_, err := net.MultiSourceTopK(cancelled, 0, []Location{loc, locB}, WeightedSum(1, 1), 3)
		wantCanceled(t, err)
	})
	t.Run("BaselineSkyline", func(t *testing.T) {
		_, err := net.BaselineSkyline(cancelled, loc)
		wantCanceled(t, err)
	})
	t.Run("BaselineTopK", func(t *testing.T) {
		_, err := net.BaselineTopK(cancelled, loc, agg, 3)
		wantCanceled(t, err)
	})
	t.Run("Maintain", func(t *testing.T) {
		_, err := net.Maintain(cancelled, loc)
		wantCanceled(t, err)
	})
	t.Run("ParetoPaths", func(t *testing.T) {
		_, err := net.ParetoPaths(cancelled, 0, NodeID(g.NumNodes()-1), 0)
		wantCanceled(t, err)
	})
	t.Run("ParetoPathsTo", func(t *testing.T) {
		_, err := net.ParetoPathsTo(cancelled, 0, loc, 0)
		wantCanceled(t, err)
	})
	t.Run("ParetoPathsApprox", func(t *testing.T) {
		_, err := net.ParetoPathsApprox(cancelled, 0, NodeID(g.NumNodes()-1), 0, 0.1)
		wantCanceled(t, err)
	})
	t.Run("SkylineSeq", func(t *testing.T) {
		var last error
		for _, err := range net.SkylineSeq(cancelled, loc) {
			last = err
		}
		wantCanceled(t, last)
	})
	t.Run("TopKSeq", func(t *testing.T) {
		var last error
		for _, err := range net.TopKSeq(cancelled, loc, agg) {
			last = err
		}
		wantCanceled(t, last)
	})
	t.Run("TimedepOverPeriod", func(t *testing.T) {
		tn := TimeDependent(g)
		if err := tn.SetProfile(0, TimeProfile{Times: []float64{5}, Mult: []Costs{Of(2, 2, 2)}}); err != nil {
			t.Fatal(err)
		}
		_, err := tn.SkylineOverPeriod(cancelled, loc, 0, 10, QueryOptions())
		wantCanceled(t, err)
		_, err = tn.TopKOverPeriod(cancelled, loc, agg, 2, 0, 10, QueryOptions())
		wantCanceled(t, err)
	})
	t.Run("TimedepInstant", func(t *testing.T) {
		tn := TimeDependent(g)
		_, err := tn.SkylineAt(cancelled, loc, 3, QueryOptions())
		wantCanceled(t, err)
		_, err = tn.TopKAt(cancelled, loc, agg, 2, 3, QueryOptions())
		wantCanceled(t, err)
	})
}

// Cancelling mid-stream must abort a Seq at the next interrupt poll: the
// stream ends with the context error instead of running to exhaustion.
func TestSeqMidStreamCancellation(t *testing.T) {
	g, err := Synthetic(SyntheticConfig{Nodes: 2_500, Facilities: 500, D: 3, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	net := FromGraph(g)
	loc := RandomQueries(g, 1, 9)[0]

	streamCtx, cancel := context.WithCancel(context.Background())
	defer cancel()
	full, err := net.Skyline(ctx, loc)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Facilities) < 2 {
		t.Skip("need a skyline with at least 2 members to cancel between yields")
	}
	var n int
	var last error
	for _, err := range net.SkylineSeq(streamCtx, loc) {
		last = err
		if err != nil {
			break
		}
		n++
		cancel() // cancel after the first confirmed facility
	}
	if n == 0 {
		t.Fatal("stream yielded nothing before cancellation")
	}
	if n >= len(full.Facilities) {
		t.Fatalf("stream ran to exhaustion (%d facilities) despite cancellation", n)
	}
	if !errors.Is(last, context.Canceled) {
		t.Fatalf("stream ended with %v, want context.Canceled", last)
	}
}
