// Command mcnserve serves preference queries over a multi-cost network as a
// JSON HTTP API. It answers skyline, top-k, k-nearest and budget range
// queries concurrently against one shared network — either a disk database
// written by mcngen, or a synthetic in-memory network generated at startup.
//
// Usage:
//
//	mcnserve -db city.mcn                  # serve a disk database
//	mcnserve -synthetic -nodes 20000       # serve a generated network
//	mcnserve -db city.mcn -workers 16 -timeout 2s -addr :9090
//
// Endpoints:
//
//	GET /skyline?edge=123&t=0.5&engine=cea
//	GET /topk?edge=123&t=0.5&k=4&weights=0.7,0.1,0.1,0.1
//	GET /nearest?edge=123&t=0.5&cost=0&k=5
//	GET /within?edge=123&t=0.5&budget=10,20,30,40
//	GET /healthz
//	GET /stats
//	GET /debug/pprof/   (only with -pprof)
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"mcn"
)

func main() {
	log.SetFlags(0)
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		db         = flag.String("db", "", "disk database path (written by mcngen)")
		buffer     = flag.Float64("buffer", 0.01, "buffer pool fraction of database pages")
		poolShards = flag.Int("pool-shards", 0, "buffer pool shard count, rounded to a power of two (0 = auto from GOMAXPROCS)")
		poolPolicy = flag.String("pool-policy", "clock", "buffer pool replacement policy: clock or lru")
		synthetic  = flag.Bool("synthetic", false, "serve a synthetic in-memory network instead of a database")
		nodes      = flag.Int("nodes", 10_000, "synthetic: approximate node count")
		facilities = flag.Int("facilities", 2_000, "synthetic: facility count")
		d          = flag.Int("d", 4, "synthetic: cost types")
		seed       = flag.Int64("seed", 1, "synthetic: generator seed")
		workers    = flag.Int("workers", 0, "max concurrent queries (0 = GOMAXPROCS)")
		timeout    = flag.Duration("timeout", 10*time.Second, "per-query timeout (0 = none)")
		pprofFlag  = flag.Bool("pprof", false, "expose net/http/pprof endpoints under /debug/pprof/ (profiling; off by default)")

		cacheEntries = flag.Int("cache-entries", 4096, "result cache capacity in cached query results (0 = caching off)")
		cacheShards  = flag.Int("cache-shards", 0, "result cache shard count, rounded to a power of two (0 = auto from GOMAXPROCS)")
		cacheNoCo    = flag.Bool("cache-no-coalesce", false, "disable singleflight coalescing of concurrent misses on the same key")
	)
	flag.Parse()

	var net *mcn.Network
	switch {
	case *db != "":
		policy, err := mcn.ParsePoolPolicy(*poolPolicy)
		if err != nil {
			log.Fatal(err)
		}
		n, err := mcn.OpenDatabaseOptions(*db, *buffer, mcn.PoolOptions{Shards: *poolShards, Policy: policy})
		if err != nil {
			log.Fatal(err)
		}
		defer n.Close()
		log.Printf("mcnserve: opened %s (d=%d, buffer=%.1f%%, %s pool)", *db, n.D(), *buffer*100, policy)
		net = n
	case *synthetic:
		g, err := mcn.Synthetic(mcn.SyntheticConfig{
			Nodes: *nodes, Facilities: *facilities, D: *d, Seed: *seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		net = mcn.FromGraph(g)
		log.Printf("mcnserve: generated synthetic network (%d nodes, %d facilities, d=%d)",
			g.NumNodes(), g.NumFacilities(), g.D())
	default:
		log.Fatal("mcnserve: pass -db <path> or -synthetic")
	}

	if *cacheEntries > 0 {
		cache := net.EnableResultCache(mcn.CacheOptions{
			Entries:    *cacheEntries,
			Shards:     *cacheShards,
			NoCoalesce: *cacheNoCo,
		})
		log.Printf("mcnserve: result cache enabled (%d entries, %d shards)",
			cache.Capacity(), cache.Shards())
	}
	srv := newServer(net, *workers, *timeout)
	var handler http.Handler
	if *pprofFlag {
		handler = srv.profiledHandler()
		log.Printf("mcnserve: profiling endpoints enabled at /debug/pprof/")
	} else {
		handler = srv.handler()
	}
	log.Printf("mcnserve: listening on %s (%d workers, %v query timeout)",
		*addr, srv.exec.Workers(), *timeout)
	log.Fatal(http.ListenAndServe(*addr, handler))
}
