// Command mcnserve serves preference queries over a multi-cost network as a
// JSON HTTP API. It answers skyline, top-k, k-nearest, budget range,
// multi-source and time-dependent period queries concurrently against one
// shared network — either a disk database written by mcngen, or a synthetic
// in-memory network generated at startup.
//
// Usage:
//
//	mcnserve -db city.mcn                  # serve a disk database
//	mcnserve -synthetic -nodes 20000       # serve a generated network
//	mcnserve -db city.mcn -workers 16 -timeout 2s -addr :9090
//
// Endpoints:
//
//	GET /skyline?edge=123&t=0.5&engine=cea          (stream=1 for NDJSON)
//	GET /topk?edge=123&t=0.5&k=4&weights=0.7,0.1,0.1,0.1   (stream=1 for NDJSON)
//	GET /nearest?edge=123&t=0.5&cost=0&k=5
//	GET /within?edge=123&t=0.5&budget=10,20,30,40
//	GET /multisource/skyline?cost=0&edges=3,17,42&ts=0.5,0.2,0.9
//	GET /multisource/topk?cost=0&edges=3,17&k=4
//	GET /skyline/period?edge=123&from=6&to=20       (only with -timedep)
//	GET /topk/period?edge=123&from=6&to=20&k=4      (only with -timedep)
//	GET /healthz
//	GET /readyz
//	GET /stats
//	GET /debug/pprof/   (only with -pprof)
//
// Every query endpoint accepts timeout_ms to tighten the per-request deadline
// below the server's -timeout. When more than -max-inflight queries are
// running and -queue-depth more are waiting, further queries are shed with
// 503 and a Retry-After hint rather than queued without bound; /readyz turns
// unready only while the shed rate exceeds -shed-rate over -shed-window. On
// SIGINT or SIGTERM the server stops admitting queries, finishes the
// in-flight ones within -drain-timeout, and exits cleanly.
//
// The -chaos flag (disk databases only) wraps the storage device in the
// deterministic fault injector for game-day drills: seeded transient read
// errors and bit-flip corruption exercise the retry/checksum path on live
// traffic, with injected-fault counters reported under fault_injection in
// /stats.
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mcn"
	"mcn/internal/serve"
)

func main() {
	log.SetFlags(0)
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		db         = flag.String("db", "", "disk database path (written by mcngen)")
		buffer     = flag.Float64("buffer", 0.01, "buffer pool fraction of database pages")
		poolShards = flag.Int("pool-shards", 0, "buffer pool shard count, rounded to a power of two (0 = auto from GOMAXPROCS)")
		poolPolicy = flag.String("pool-policy", "clock", "buffer pool replacement policy: clock or lru")
		synthetic  = flag.Bool("synthetic", false, "serve a synthetic in-memory network instead of a database")
		nodes      = flag.Int("nodes", 10_000, "synthetic: approximate node count")
		facilities = flag.Int("facilities", 2_000, "synthetic: facility count")
		d          = flag.Int("d", 4, "synthetic: cost types")
		seed       = flag.Int64("seed", 1, "synthetic: generator seed")
		timedep    = flag.Bool("timedep", false, "synthetic: attach deterministic time profiles and enable the /skyline/period and /topk/period endpoints")
		workers    = flag.Int("workers", 0, "max concurrent queries (0 = GOMAXPROCS); -max-inflight is an alias")
		maxInfl    = flag.Int("max-inflight", 0, "max concurrent queries (0 = GOMAXPROCS); overrides -workers when set")
		queueDepth = flag.Int("queue-depth", 64, "queries allowed to wait for a worker slot before admission sheds with 503 (0 = unbounded)")
		shedRate   = flag.Float64("shed-rate", serve.DefaultShedRate, "sustained sheds/s over -shed-window above which /readyz reports unready (negative = any shed)")
		shedWindow = flag.Duration("shed-window", serve.DefaultShedWindow, "sliding window the shed rate is averaged over")
		drainTO    = flag.Duration("drain-timeout", 10*time.Second, "how long SIGINT/SIGTERM waits for in-flight queries before forcing exit")
		ioRetries  = flag.Int("io-retries", 3, "transient page-read failures retried (with backoff) before a query fails")
		timeout    = flag.Duration("timeout", 10*time.Second, "per-query timeout (0 = none)")
		prune      = flag.Bool("prune", true, "use the precomputed lower-bound pruning index (false = every query runs unpruned)")
		pprofFlag  = flag.Bool("pprof", false, "expose net/http/pprof endpoints under /debug/pprof/ (profiling; off by default)")

		cacheEntries = flag.Int("cache-entries", 4096, "result cache capacity in cached query results (0 = caching off)")
		cacheShards  = flag.Int("cache-shards", 0, "result cache shard count, rounded to a power of two (0 = auto from GOMAXPROCS)")
		cacheNoCo    = flag.Bool("cache-no-coalesce", false, "disable singleflight coalescing of concurrent misses on the same key")

		chaos          = flag.Bool("chaos", false, "dev: wrap the storage device in the deterministic fault injector (requires -db)")
		chaosSeed      = flag.Uint64("chaos-seed", 1, "dev: fault schedule seed")
		chaosTransient = flag.Float64("chaos-read-transient", 0.05, "dev: probability a page read fails transiently")
		chaosCorrupt   = flag.Float64("chaos-read-corrupt", 0.01, "dev: probability a page read is bit-flipped (caught by checksums)")
	)
	flag.Parse()

	var net *mcn.Network
	var tnet *mcn.TimeNetwork
	switch {
	case *db != "":
		if *timedep {
			log.Fatal("mcnserve: -timedep requires -synthetic (time profiles attach to the in-memory graph)")
		}
		policy, err := mcn.ParsePoolPolicy(*poolPolicy)
		if err != nil {
			log.Fatal(err)
		}
		pool := mcn.PoolOptions{
			Shards: *poolShards,
			Policy: policy,
			Retry:  mcn.RetryPolicy{MaxRetries: *ioRetries},
		}
		var n *mcn.Network
		if *chaos {
			n, err = mcn.OpenDatabaseChaos(*db, *buffer, pool, mcn.FaultInjection{
				Seed:          *chaosSeed,
				ReadTransient: *chaosTransient,
				ReadCorrupt:   *chaosCorrupt,
			})
			if err == nil {
				log.Printf("mcnserve: CHAOS MODE — injecting faults (seed=%d, transient=%.3f, corrupt=%.3f)",
					*chaosSeed, *chaosTransient, *chaosCorrupt)
			}
		} else {
			n, err = mcn.OpenDatabaseOptions(*db, *buffer, pool)
		}
		if err != nil {
			log.Fatal(err)
		}
		defer n.Close()
		log.Printf("mcnserve: opened %s (d=%d, buffer=%.1f%%, %s pool)", *db, n.D(), *buffer*100, policy)
		net = n
	case *synthetic:
		if *chaos {
			log.Fatal("mcnserve: -chaos requires -db (faults are injected into the storage device)")
		}
		g, err := mcn.Synthetic(mcn.SyntheticConfig{
			Nodes: *nodes, Facilities: *facilities, D: *d, Seed: *seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		net = mcn.FromGraph(g)
		log.Printf("mcnserve: generated synthetic network (%d nodes, %d facilities, d=%d)",
			g.NumNodes(), g.NumFacilities(), g.D())
		if *timedep {
			tnet = mcn.TimeDependent(g)
			profiles := g.NumEdges() / 10
			if err := mcn.AttachSyntheticProfiles(tnet, profiles, *seed); err != nil {
				log.Fatal(err)
			}
			log.Printf("mcnserve: time-dependent profiles on %d edges; period endpoints enabled", profiles)
		}
	default:
		log.Fatal("mcnserve: pass -db <path> or -synthetic")
	}

	if !*prune {
		net.DisablePruning()
		log.Printf("mcnserve: lower-bound pruning disabled")
	} else if is, ok := net.IndexStats(); ok {
		log.Printf("mcnserve: pruning index attached (%d bytes)", is.BoundsBytes)
	} else {
		log.Printf("mcnserve: no pruning index (pre-v3 database); queries run unpruned")
	}
	if *cacheEntries > 0 {
		cache := net.EnableResultCache(mcn.CacheOptions{
			Entries:    *cacheEntries,
			Shards:     *cacheShards,
			NoCoalesce: *cacheNoCo,
		})
		log.Printf("mcnserve: result cache enabled (%d entries, %d shards)",
			cache.Capacity(), cache.Shards())
	}
	if *maxInfl > 0 {
		*workers = *maxInfl
	}
	srv := serve.New(net, serve.Config{
		Workers:    *workers,
		Timeout:    *timeout,
		QueueDepth: *queueDepth,
		ShedRate:   *shedRate,
		ShedWindow: *shedWindow,
		TimeNet:    tnet,
	})
	var handler http.Handler
	if *pprofFlag {
		handler = srv.ProfiledHandler()
		log.Printf("mcnserve: profiling endpoints enabled at /debug/pprof/")
	} else {
		handler = srv.Handler()
	}
	log.Printf("mcnserve: listening on %s (%d workers, queue depth %d, %v query timeout)",
		*addr, srv.Executor().Workers(), *queueDepth, *timeout)

	httpSrv := &http.Server{Addr: *addr, Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)

	select {
	case err := <-errc:
		log.Fatal(err)
	case sig := <-sigc:
		log.Printf("mcnserve: %v received, draining (timeout %v)", sig, *drainTO)
		// Flip admission first so /readyz goes unready and new queries are
		// rejected with 503, then let the HTTP layer finish open requests.
		// Queries admitted before this point — including queued ones — still
		// run to completion; only the drain timeout cuts them off.
		srv.Executor().StartDrain()
		ctx, cancel := context.WithTimeout(context.Background(), *drainTO)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("mcnserve: connection drain incomplete: %v", err)
		}
		if err := srv.Executor().DrainWait(ctx); err != nil {
			log.Printf("mcnserve: query drain incomplete: %v", err)
		}
		log.Printf("mcnserve: drained, exiting")
	}
}
