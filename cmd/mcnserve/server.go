package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"mcn"
)

// server exposes preference queries over one shared network as JSON
// endpoints. Every query funnels through a single bounded executor, so the
// worker count caps concurrent query work no matter how many HTTP
// connections are open.
type server struct {
	net     *mcn.Network
	exec    *mcn.Executor
	timeout time.Duration // default + upper bound for per-request deadlines
	started time.Time
	served  atomic.Int64
	// lastShed is the UnixNano of the most recent overload/drain rejection;
	// /readyz reports unready while a shed happened within shedWindow, so load
	// balancers route around a saturated instance instead of piling on.
	lastShed atomic.Int64
}

// shedWindow is how recently a rejection must have happened for /readyz to
// report the instance unready.
const shedWindow = time.Second

func newServer(net *mcn.Network, workers int, timeout time.Duration, queueDepth int) *server {
	return &server{
		net:     net,
		exec:    net.NewExecutor(mcn.ExecutorConfig{Workers: workers, Timeout: timeout, QueueDepth: queueDepth}),
		timeout: timeout,
		started: time.Now(),
	}
}

// handler routes the server's endpoints.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /skyline", s.skylineHandler())
	mux.HandleFunc("GET /topk", s.queryHandler(s.topkRequest))
	mux.HandleFunc("GET /nearest", s.queryHandler(s.nearestRequest))
	mux.HandleFunc("GET /within", s.queryHandler(s.withinRequest))
	return mux
}

// profiledHandler is handler plus net/http/pprof endpoints under
// /debug/pprof/, for profiling query hot paths in-situ (mcnserve -pprof).
// Kept off the default handler: the profiling endpoints expose runtime
// internals and cost CPU while sampling, so they are strictly opt-in.
func (s *server) profiledHandler() http.Handler {
	mux := s.handler().(*http.ServeMux)
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return mux
}

// jsonCosts renders a cost vector with non-finite components as null: NaN
// marks a component the search never needed (Nearest fills only the queried
// cost type) and +Inf marks unreachability — JSON numbers support neither.
type jsonCosts []float64

// MarshalJSON implements json.Marshaler.
func (c jsonCosts) MarshalJSON() ([]byte, error) {
	var b strings.Builder
	b.WriteByte('[')
	for i, v := range c {
		if i > 0 {
			b.WriteByte(',')
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			b.WriteString("null")
		} else {
			b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		}
	}
	b.WriteByte(']')
	return []byte(b.String()), nil
}

// facilityJSON is one query answer on the wire.
type facilityJSON struct {
	ID    mcn.FacilityID `json:"id"`
	Costs jsonCosts      `json:"costs"`
	Score float64        `json:"score,omitempty"`
}

// resultJSON is the envelope of every query endpoint.
type resultJSON struct {
	Query      string         `json:"query"`
	Count      int            `json:"count"`
	Facilities []facilityJSON `json:"facilities"`
	Stats      mcn.Stats      `json:"stats"`
	LatencyMS  float64        `json:"latency_ms"`
}

type errorJSON struct {
	Error string `json:"error"`
}

// queryHandler wraps a request parser with the shared execute/respond flow.
// The HTTP request context rides into the query, so a client hanging up
// aborts its query mid-expansion.
func (s *server) queryHandler(parse func(r *http.Request) (mcn.BatchRequest, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		req, err := parse(r)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorJSON{err.Error()})
			return
		}
		if err := s.applyTimeout(r, &req); err != nil {
			writeJSON(w, http.StatusBadRequest, errorJSON{err.Error()})
			return
		}
		resp := s.exec.Do(r.Context(), req)
		if resp.Err != nil {
			s.writeError(w, resp.Err)
			return
		}
		s.served.Add(1)
		out := resultJSON{
			Query:      req.Kind.String(),
			Count:      len(resp.Result.Facilities),
			Facilities: make([]facilityJSON, len(resp.Result.Facilities)),
			Stats:      resp.Result.Stats,
			LatencyMS:  float64(resp.Latency.Microseconds()) / 1000,
		}
		for i, f := range resp.Result.Facilities {
			out.Facilities[i] = facilityJSON{ID: f.ID, Costs: jsonCosts(f.Costs), Score: f.Score}
		}
		writeJSON(w, http.StatusOK, out)
	}
}

// skylineHandler answers /skyline. Without stream=1 it is the ordinary
// buffered JSON endpoint; with stream=1 it streams NDJSON — one facility
// per line, flushed the moment the progressive search confirms it, so
// clients see the first skyline members while the query is still running.
// An optional timeout_ms parameter bounds the query (capped by the server
// default); the HTTP request context rides along, so a client hanging up
// aborts the search mid-expansion.
func (s *server) skylineHandler() http.HandlerFunc {
	buffered := s.queryHandler(s.skylineRequest)
	return func(w http.ResponseWriter, r *http.Request) {
		stream := false
		if raw := r.URL.Query().Get("stream"); raw != "" {
			v, err := strconv.ParseBool(raw)
			if err != nil {
				writeJSON(w, http.StatusBadRequest, errorJSON{fmt.Sprintf("invalid stream %q (want a boolean)", raw)})
				return
			}
			stream = v
		}
		if !stream {
			buffered(w, r)
			return
		}
		req, err := s.skylineRequest(r)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorJSON{err.Error()})
			return
		}
		if err := s.applyTimeout(r, &req); err != nil {
			writeJSON(w, http.StatusBadRequest, errorJSON{err.Error()})
			return
		}

		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Header().Set("X-Accel-Buffering", "no") // defeat proxy buffering
		flusher, _ := w.(http.Flusher)
		enc := json.NewEncoder(w)
		count := 0
		resp := s.exec.StreamSkyline(r.Context(), req, func(f mcn.Facility) bool {
			if err := enc.Encode(facilityJSON{ID: f.ID, Costs: jsonCosts(f.Costs)}); err != nil {
				return false // client went away; abort the query
			}
			count++
			if flusher != nil {
				flusher.Flush()
			}
			return true
		})
		if resp.Err != nil {
			// Headers are already out (possibly with results); report the
			// failure in-band as a terminal NDJSON line.
			s.noteShed(resp.Err)
			_, msg := classifyError(resp.Err)
			enc.Encode(errorJSON{msg})
			return
		}
		s.served.Add(1)
		// Terminal line: lets clients distinguish a complete skyline from a
		// truncated connection.
		enc.Encode(map[string]any{
			"done":       true,
			"count":      count,
			"latency_ms": float64(resp.Latency.Microseconds()) / 1000,
		})
	}
}

// applyTimeout folds an optional timeout_ms parameter into the request
// deadline. A client may tighten its deadline but never loosen it past the
// server's own bound: a huge timeout_ms would pin an executor slot far beyond
// what the operator configured.
func (s *server) applyTimeout(r *http.Request, req *mcn.BatchRequest) error {
	raw := r.URL.Query().Get("timeout_ms")
	if raw == "" {
		return nil
	}
	ms, err := strconv.Atoi(raw)
	if err != nil || ms <= 0 {
		return fmt.Errorf("invalid timeout_ms %q", raw)
	}
	req.Timeout = time.Duration(ms) * time.Millisecond
	if s.timeout > 0 && req.Timeout > s.timeout {
		req.Timeout = s.timeout
	}
	return nil
}

// noteShed records an admission rejection for /readyz and reports whether err
// was one.
func (s *server) noteShed(err error) bool {
	if errors.Is(err, mcn.ErrOverloaded) || errors.Is(err, mcn.ErrDraining) {
		s.lastShed.Store(time.Now().UnixNano())
		return true
	}
	return false
}

// writeError renders a query error. Admission rejections additionally carry a
// Retry-After hint: the condition is expected to clear as soon as in-flight
// work finishes (overload) or never on this instance (drain) — either way the
// client's move is the same, retry elsewhere or later.
func (s *server) writeError(w http.ResponseWriter, err error) {
	if s.noteShed(err) {
		w.Header().Set("Retry-After", "1")
	}
	status, msg := classifyError(err)
	writeJSON(w, status, errorJSON{msg})
}

// classifyError maps a query error to an HTTP status and client-safe
// message: overload/cancellation is 503, server faults (panics, storage I/O)
// are 500 with the detail kept out of the response, and everything else —
// validation the query layer itself performed — is the caller's 400.
func classifyError(err error) (int, string) {
	switch {
	case errors.Is(err, mcn.ErrOverloaded) || errors.Is(err, mcn.ErrDraining):
		return http.StatusServiceUnavailable, err.Error()
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable, err.Error()
	case mcn.IsQueryPanic(err):
		return http.StatusInternalServerError, "internal query failure"
	case strings.HasPrefix(err.Error(), "storage:"):
		return http.StatusInternalServerError, "storage failure"
	default:
		return http.StatusBadRequest, err.Error()
	}
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":        "ok",
		"cost_types":    s.net.D(),
		"directed":      s.net.Directed(),
		"nodes":         s.net.NumNodes(),
		"edges":         s.net.NumEdges(),
		"facilities":    s.net.NumFacilities(),
		"workers":       s.exec.Workers(),
		"uptime_sec":    time.Since(s.started).Seconds(),
		"queries_total": s.served.Load(),
	})
}

// handleReadyz answers readiness, as distinct from /healthz liveness: a
// draining or shedding instance is still alive (don't restart it) but should
// receive no new traffic. Readiness returns 503 for the whole drain and for
// shedWindow after any admission rejection.
func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.exec.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	if last := s.lastShed.Load(); last != 0 && time.Since(time.Unix(0, last)) < shedWindow {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "shedding"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ready"})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	es := s.exec.Stats()
	out := map[string]any{
		"completed":       es.Completed,
		"failed":          es.Failed,
		"canceled":        es.Canceled,
		"panics":          es.Panics,
		"mean_latency_ms": float64(es.MeanLatency().Microseconds()) / 1000,
		"max_latency_ms":  float64(es.MaxLatency.Microseconds()) / 1000,
		// Admission state: inflight/queued occupancy plus shed_requests,
		// drain_rejected and the draining flag.
		"admission": s.exec.AdmissionStats(),
	}
	if is, ok := s.net.IndexStats(); ok {
		// The pruning index attached to every query, with the lifetime
		// effect it had: node pops discarded before their adjacency was
		// read, against total node expansions performed.
		out["index"] = map[string]any{
			"bounds_bytes":    is.BoundsBytes,
			"build_ms":        float64(is.BuildTime.Microseconds()) / 1000,
			"pruned_nodes":    es.PrunedNodes,
			"node_expansions": es.NodeExpansions,
		}
	}
	if fs, ok := s.net.IOFailureStats(); ok {
		// io_retries, io_fail_transient, io_fail_permanent, checksum_errors —
		// the disk failure-handling ledger (zero on a healthy device).
		out["io_failures"] = fs
	}
	if io, ok := s.net.IOStats(); ok {
		out["io"] = map[string]any{
			"logical":  io.Logical,
			"physical": io.Physical,
			"hit_rate": io.HitRate(),
		}
	}
	if shards, ok := s.net.PoolShardStats(); ok {
		// Per-shard counters expose skew the aggregate hides: a hot page
		// shows up as one shard carrying most of the logical reads.
		out["pool_shards"] = shards
	}
	if cs, ok := s.net.ResultCacheStats(); ok {
		out["cache"] = map[string]any{
			"hits":        cs.Hits,
			"misses":      cs.Misses,
			"coalesced":   cs.Coalesced,
			"invalidated": cs.Invalidated,
			"evicted":     cs.Evicted,
			"hit_rate":    cs.HitRate(),
		}
	}
	if shards, ok := s.net.ResultCacheShardStats(); ok {
		// Same skew diagnosis as pool_shards, one level up: a single hot
		// query shows as one shard absorbing most hits.
		out["cache_shards"] = shards
	}
	writeJSON(w, http.StatusOK, out)
}

// skylineRequest parses /skyline?edge=&t=&engine=.
func (s *server) skylineRequest(r *http.Request) (mcn.BatchRequest, error) {
	loc, err := s.parseLoc(r)
	if err != nil {
		return mcn.BatchRequest{}, err
	}
	opts, err := parseEngine(r)
	if err != nil {
		return mcn.BatchRequest{}, err
	}
	return mcn.SkylineRequest(loc, opts...), nil
}

// topkRequest parses /topk?edge=&t=&k=&weights=&engine=.
func (s *server) topkRequest(r *http.Request) (mcn.BatchRequest, error) {
	loc, err := s.parseLoc(r)
	if err != nil {
		return mcn.BatchRequest{}, err
	}
	opts, err := parseEngine(r)
	if err != nil {
		return mcn.BatchRequest{}, err
	}
	k, err := intParam(r, "k", 4)
	if err != nil {
		return mcn.BatchRequest{}, err
	}
	agg, err := parseWeights(r.URL.Query().Get("weights"), s.net.D())
	if err != nil {
		return mcn.BatchRequest{}, err
	}
	return mcn.TopKRequest(loc, agg, k, opts...), nil
}

// nearestRequest parses /nearest?edge=&t=&cost=&k=.
func (s *server) nearestRequest(r *http.Request) (mcn.BatchRequest, error) {
	loc, err := s.parseLoc(r)
	if err != nil {
		return mcn.BatchRequest{}, err
	}
	cost, err := intParam(r, "cost", 0)
	if err != nil {
		return mcn.BatchRequest{}, err
	}
	k, err := intParam(r, "k", 1)
	if err != nil {
		return mcn.BatchRequest{}, err
	}
	return mcn.NearestRequest(loc, cost, k), nil
}

// withinRequest parses /within?edge=&t=&budget=b1,b2,…&engine=.
func (s *server) withinRequest(r *http.Request) (mcn.BatchRequest, error) {
	loc, err := s.parseLoc(r)
	if err != nil {
		return mcn.BatchRequest{}, err
	}
	opts, err := parseEngine(r)
	if err != nil {
		return mcn.BatchRequest{}, err
	}
	raw := r.URL.Query().Get("budget")
	if raw == "" {
		return mcn.BatchRequest{}, fmt.Errorf("missing budget parameter (comma-separated, %d components)", s.net.D())
	}
	vals, err := parseFloats(raw)
	if err != nil {
		return mcn.BatchRequest{}, fmt.Errorf("budget: %w", err)
	}
	if len(vals) != s.net.D() {
		return mcn.BatchRequest{}, fmt.Errorf("budget has %d components, network has %d", len(vals), s.net.D())
	}
	return mcn.WithinRequest(loc, mcn.Of(vals...), opts...), nil
}

// parseLoc reads the query location: edge (required) and t (default 0.5).
func (s *server) parseLoc(r *http.Request) (mcn.Location, error) {
	raw := r.URL.Query().Get("edge")
	if raw == "" {
		return mcn.Location{}, fmt.Errorf("missing edge parameter")
	}
	edge, err := strconv.Atoi(raw)
	if err != nil || edge < 0 {
		return mcn.Location{}, fmt.Errorf("invalid edge %q", raw)
	}
	if edge >= s.net.NumEdges() {
		return mcn.Location{}, fmt.Errorf("edge %d out of range (network has %d edges)", edge, s.net.NumEdges())
	}
	t := 0.5
	if rawT := r.URL.Query().Get("t"); rawT != "" {
		t, err = strconv.ParseFloat(rawT, 64)
		if err != nil || t < 0 || t > 1 {
			return mcn.Location{}, fmt.Errorf("invalid t %q (want a fraction in [0, 1])", rawT)
		}
	}
	return mcn.Location{Edge: mcn.EdgeID(edge), T: t}, nil
}

// parseEngine reads engine=lsa|cea (default cea).
func parseEngine(r *http.Request) ([]mcn.Option, error) {
	switch strings.ToLower(r.URL.Query().Get("engine")) {
	case "", "cea":
		return []mcn.Option{mcn.WithEngine(mcn.CEA)}, nil
	case "lsa":
		return []mcn.Option{mcn.WithEngine(mcn.LSA)}, nil
	default:
		return nil, fmt.Errorf("unknown engine %q (want lsa or cea)", r.URL.Query().Get("engine"))
	}
}

// parseWeights builds the top-k aggregate; empty means uniform weights.
func parseWeights(raw string, d int) (mcn.Aggregate, error) {
	if raw == "" {
		coef := make([]float64, d)
		for i := range coef {
			coef[i] = 1
		}
		return mcn.WeightedSum(coef...), nil
	}
	vals, err := parseFloats(raw)
	if err != nil {
		return nil, fmt.Errorf("weights: %w", err)
	}
	if len(vals) != d {
		return nil, fmt.Errorf("got %d weights, network has %d cost types", len(vals), d)
	}
	return mcn.WeightedSum(vals...), nil
}

func parseFloats(raw string) ([]float64, error) {
	parts := strings.Split(raw, ",")
	out := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("component %d: %v", i, err)
		}
		out[i] = v
	}
	return out, nil
}

func intParam(r *http.Request, name string, def int) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("invalid %s %q", name, raw)
	}
	return v, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}
