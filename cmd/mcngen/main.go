// Command mcngen generates a synthetic multi-cost road network with
// clustered facilities (the paper's Sec. VI workload profile) and writes it
// as a disk database in the paper's storage format.
//
// Usage:
//
//	mcngen -out city.mcn                          # paper defaults, scaled down
//	mcngen -nodes 175000 -facilities 100000 \
//	       -d 4 -dist anti-correlated -out sf.mcn # full paper scale
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"mcn"
)

func main() {
	log.SetFlags(0)
	var (
		out        = flag.String("out", "network.mcn", "output path (.mcn database, or .txt for the text interchange format)")
		in         = flag.String("in", "", "import a text-format network instead of generating one")
		nodes      = flag.Int("nodes", 20_000, "approximate node count")
		facilities = flag.Int("facilities", 10_000, "facility count")
		clusters   = flag.Int("clusters", 10, "facility clusters")
		d          = flag.Int("d", 4, "number of cost types (2-5 in the paper)")
		dist       = flag.String("dist", "anti-correlated", "edge-cost distribution: independent|correlated|anti-correlated")
		directed   = flag.Bool("directed", false, "generate one-way edges")
		seed       = flag.Int64("seed", 1, "generator seed")
	)
	flag.Parse()

	var g *mcn.Graph
	var err error
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		g, err = mcn.ReadText(f)
		f.Close()
		if err != nil {
			log.Fatalf("import %s: %v", *in, err)
		}
	} else {
		g, err = mcn.Synthetic(mcn.SyntheticConfig{
			Nodes:      *nodes,
			Facilities: *facilities,
			Clusters:   *clusters,
			D:          *d,
			Dist:       *dist,
			Directed:   *directed,
			Seed:       *seed,
		})
		if err != nil {
			log.Fatal(err)
		}
	}

	if strings.HasSuffix(*out, ".txt") {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		if err := mcn.WriteText(f, g); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s: %d nodes, %d edges, %d facilities, d=%d\n",
			*out, g.NumNodes(), g.NumEdges(), g.NumFacilities(), g.D())
		return
	}
	is, err := mcn.CreateDatabaseIndexed(g, *out)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s: %d nodes, %d edges, %d facilities, d=%d\n",
		*out, g.NumNodes(), g.NumEdges(), g.NumFacilities(), g.D())
	fmt.Printf("pruning index: %d bytes, built in %v\n", is.BoundsBytes, is.BuildTime.Round(time.Millisecond))
}
