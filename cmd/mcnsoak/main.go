// Command mcnsoak drives sustained load at a /v1/query endpoint — a running
// mcnserve or mcngateway, or an in-process stack it spins up itself — and
// reports throughput plus p50/p99/p999 latency from a log-linear histogram.
//
// The generator is open-loop when -rate is set: arrival n is scheduled at
// start + n/rate no matter how the server is coping, and each sample measures
// scheduled-to-done time, so queueing delay shows up in the tail quantiles
// instead of silently slowing the generator (the coordinated-omission trap).
// With -rate 0 the loop is closed and probes peak throughput.
//
// Usage:
//
//	mcnsoak                                  # in-process single node, both codecs
//	mcnsoak -replicas 3 -codec binary        # in-process gateway over 3 replicas
//	mcnsoak -target http://host:8080 -clients 64 -rate 2000 -duration 60s
//	mcnsoak -json soak.json                  # bench-compatible report
//
// The request mix is generated from the synthetic workload (-scale, -queries,
// -seed); against an external -target those flags must match the dataset the
// server is serving, or the mix will query out-of-range edges.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"mcn"
	"mcn/internal/bench"
	"mcn/internal/cluster"
	"mcn/internal/serve"
)

func main() {
	log.SetFlags(0)
	var (
		target   = flag.String("target", "", "base URL of a running mcnserve or mcngateway (empty = start an in-process stack)")
		replicas = flag.Int("replicas", 0, "in-process only: front this many replicas with a gateway (0 = bare single node)")
		codec    = flag.String("codec", "both", "request codec: json, binary, or both")
		clients  = flag.Int("clients", 16, "concurrent senders")
		rate     = flag.Float64("rate", 0, "target arrival rate in requests/sec across all clients (0 = closed loop)")
		duration = flag.Duration("duration", 10*time.Second, "measurement window per codec")
		scale    = flag.Float64("scale", 0.05, "synthetic workload scale for the request mix and the in-process stack")
		queries  = flag.Int("queries", 32, "distinct query locations in the mix")
		seed     = flag.Int64("seed", 1, "workload seed")
		cache    = flag.Bool("cache", true, "in-process only: enable the serving-layer result cache")
		jsonPath = flag.String("json", "", "also write a bench-compatible JSON report to this file")
	)
	flag.Parse()

	var codecs []bool // false = json, true = binary
	switch *codec {
	case "json":
		codecs = []bool{false}
	case "binary":
		codecs = []bool{true}
	case "both":
		codecs = []bool{false, true}
	default:
		log.Fatalf("mcnsoak: unknown codec %q (want json, binary or both)", *codec)
	}

	cfg := bench.Config{Scale: *scale, Queries: *queries, Seed: *seed}
	w := cfg.DefaultWorkload()
	mem, err := bench.BuildMemDataset(w)
	if err != nil {
		log.Fatal(err)
	}
	reqs := bench.SoakRequests(mem.Queries, w)

	base := *target
	if base == "" {
		stack, err := startStack(mem, *replicas, *cache)
		if err != nil {
			log.Fatal(err)
		}
		defer stack.close()
		base = stack.url
		kind := "single node"
		if *replicas > 0 {
			kind = fmt.Sprintf("gateway over %d replicas", *replicas)
		}
		log.Printf("mcnsoak: in-process %s at %s", kind, base)
	}

	mode := "closed loop"
	if *rate > 0 {
		mode = fmt.Sprintf("open loop, %.0f req/s", *rate)
	}
	fmt.Printf("mcnsoak: target=%s clients=%d %s window=%v mix=%d requests\n\n",
		base, *clients, mode, *duration, len(reqs))

	pt := bench.Point{Param: fmt.Sprintf("clients=%d", *clients)}
	fmt.Printf("%-8s %10s %10s %9s %9s %9s %10s %8s\n",
		"codec", "completed", "queries/s", "p50 ms", "p99 ms", "p999 ms", "mean ms", "errors")
	for _, binary := range codecs {
		res, err := bench.RunSoak(bench.SoakConfig{
			BaseURL:  base,
			Binary:   binary,
			Clients:  *clients,
			Rate:     *rate,
			Duration: *duration,
			Requests: reqs,
			Warmup:   true,
		})
		if err != nil {
			log.Fatalf("mcnsoak: %v", err)
		}
		name := "json"
		if binary {
			name = "binary"
		}
		ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
		mean := 0.0
		if res.Completed > 0 {
			mean = res.WallSeconds / float64(res.Completed) * 1000 * float64(*clients)
		}
		fmt.Printf("%-8s %10d %10.1f %9.3f %9.3f %9.3f %10.3f %8d\n",
			name, res.Completed, res.QPS, ms(res.P50), ms(res.P99), ms(res.P999), mean, res.Errors)
		pt.Rows = append(pt.Rows, bench.SoakRow(name, res))
	}

	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			log.Fatal(err)
		}
		report := bench.Report{
			Config: cfg,
			Host:   bench.CurrentHost(),
			Results: []bench.ExperimentResult{{
				ID:     "soakthroughput",
				Title:  "mcnsoak: /v1/query sustained load",
				Points: []bench.Point{pt},
			}},
		}
		if err := bench.WriteJSON(f, report); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote JSON report to %s\n", *jsonPath)
	}
}

// stack is the in-process serving tier mcnsoak stands up when no -target is
// given: one server, or a gateway fronting several replicas.
type stack struct {
	url     string
	closers []func()
}

func (s *stack) close() {
	for i := len(s.closers) - 1; i >= 0; i-- {
		s.closers[i]()
	}
}

func startStack(mem *bench.MemDataset, replicas int, cache bool) (*stack, error) {
	s := &stack{}
	listen := func(h http.Handler) (string, error) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return "", err
		}
		srv := &http.Server{Handler: h}
		go srv.Serve(ln) //nolint:errcheck // closed on shutdown
		s.closers = append(s.closers, func() { srv.Close() })
		return "http://" + ln.Addr().String(), nil
	}
	node := func() (string, error) {
		net := mcn.FromGraph(mem.Graph)
		if cache {
			net.EnableResultCache(mcn.CacheOptions{})
		}
		return listen(serve.New(net, serve.Config{Timeout: time.Minute}).Handler())
	}
	if replicas <= 0 {
		url, err := node()
		if err != nil {
			return nil, err
		}
		s.url = url
		return s, nil
	}
	urls := make([]string, replicas)
	for i := range urls {
		url, err := node()
		if err != nil {
			s.close()
			return nil, err
		}
		urls[i] = url
	}
	m, err := cluster.NewMembership(urls, time.Second)
	if err != nil {
		s.close()
		return nil, err
	}
	gw := cluster.NewGateway(m, cluster.PolicyHash, time.Minute)
	url, err := listen(gw.Handler())
	if err != nil {
		s.close()
		return nil, err
	}
	s.url = url
	return s, nil
}
