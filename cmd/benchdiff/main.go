// Command benchdiff compares two mcnbench JSON reports and fails when the
// new one regresses against the baseline: queries/sec dropping by more than
// the tolerance, per-query physical I/O growing by more than the tolerance,
// or a baseline measurement disappearing entirely. CI runs it against the
// committed BENCH_*.json to gate performance regressions.
//
// Usage:
//
//	benchdiff -base BENCH_PR3.json -new bench_current.json
//	benchdiff -base old.json -new new.json -qps-tol 0.10 -io-tol 0.05 -v
//
// Exit status is 0 when every shared measurement is within tolerance, 1 on
// regression, 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"mcn/internal/bench"
)

func main() {
	log.SetFlags(0)
	var (
		basePath = flag.String("base", "", "baseline report (committed BENCH_*.json)")
		newPath  = flag.String("new", "", "report to check (mcnbench -json output)")
		qpsTol   = flag.Float64("qps-tol", 0.25, "allowed fractional QPS drop before failing (negative = zero tolerance)")
		ioTol    = flag.Float64("io-tol", 0.25, "allowed fractional physical-I/O growth before failing (negative = zero tolerance)")
		verbose  = flag.Bool("v", false, "print every compared measurement, not just regressions")
	)
	flag.Parse()
	if *basePath == "" || *newPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	base, err := bench.ReadReport(*basePath)
	if err != nil {
		log.Fatal(err)
	}
	cur, err := bench.ReadReport(*newPath)
	if err != nil {
		log.Fatal(err)
	}

	if base.Host != cur.Host {
		fmt.Printf("note: reports come from different hosts (%+v vs %+v); QPS comparisons are indicative only\n",
			base.Host, cur.Host)
	}
	if base.Config != cur.Config {
		fmt.Printf("warning: reports use different configs (%+v vs %+v)\n", base.Config, cur.Config)
	}

	deltas := bench.CompareReports(base, cur, bench.CompareOptions{
		QPSTolerance: *qpsTol,
		IOTolerance:  *ioTol,
	})
	if len(deltas) == 0 {
		log.Fatalf("benchdiff: no shared measurements between %s and %s", *basePath, *newPath)
	}
	regs := bench.Regressions(deltas)
	for _, d := range deltas {
		if *verbose || d.Regression {
			fmt.Println(d)
		}
	}
	fmt.Printf("benchdiff: %d measurements compared, %d regressions (qps tolerance %.0f%%, io tolerance %.0f%%)\n",
		len(deltas), len(regs), 100**qpsTol, 100**ioTol)
	if len(regs) > 0 {
		os.Exit(1)
	}
}
