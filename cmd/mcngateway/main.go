// Command mcngateway fronts a set of replicated mcnserve backends as one
// HTTP endpoint. Single-location queries (/skyline, /topk, /nearest,
// /within — including stream=1) are proxied to one replica chosen by the
// routing policy, failing over on transport errors and 503s;
// /multisource/* queries are scattered to every available replica and
// merged through the exact dominance re-filter, and /skyline/period and
// /topk/period split their time range across the replicas and stitch the
// interval lists back together. Merged responses are byte-identical to a
// single replica's answer.
//
// Usage:
//
//	mcngateway -backends http://10.0.0.1:8080,http://10.0.0.2:8080
//	mcngateway -backends ... -policy least-inflight -probe-interval 1s
//
// Endpoints mirror mcnserve's query surface, plus the gateway's own
// /healthz, /readyz (ready while at least one backend is available) and
// /stats (per-backend health, inflight and traffic counters).
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mcn/internal/cluster"
)

func main() {
	log.SetFlags(0)
	var (
		addr          = flag.String("addr", ":8090", "listen address")
		backends      = flag.String("backends", "", "comma-separated mcnserve base URLs (required)")
		policyFlag    = flag.String("policy", "hash", "routing policy for single-location queries: hash (cache affinity) or least-inflight")
		probeInterval = flag.Duration("probe-interval", 2*time.Second, "how often backends' /readyz is probed")
		probeTimeout  = flag.Duration("probe-timeout", cluster.DefaultProbeTimeout, "per-probe timeout")
		timeout       = flag.Duration("timeout", 15*time.Second, "per-backend-request timeout (0 = none; replicas still enforce their own)")
	)
	flag.Parse()
	if *backends == "" {
		log.Fatal("mcngateway: pass -backends with at least one mcnserve URL")
	}
	policy, err := cluster.ParsePolicy(*policyFlag)
	if err != nil {
		log.Fatal(err)
	}
	m, err := cluster.NewMembership(strings.Split(*backends, ","), *probeTimeout)
	if err != nil {
		log.Fatal(err)
	}
	gw := cluster.NewGateway(m, policy, *timeout)

	probeCtx, stopProbes := context.WithCancel(context.Background())
	defer stopProbes()
	go m.Start(probeCtx, *probeInterval)

	log.Printf("mcngateway: fronting %d backends on %s (%s routing, probing every %v)",
		len(m.Backends()), *addr, policy, *probeInterval)
	httpSrv := &http.Server{Addr: *addr, Handler: gw.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)

	select {
	case err := <-errc:
		log.Fatal(err)
	case sig := <-sigc:
		log.Printf("mcngateway: %v received, shutting down", sig)
		stopProbes()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("mcngateway: shutdown incomplete: %v", err)
		}
	}
}
