// Command mcnbench regenerates the paper's evaluation figures (Sec. VI) on
// the synthetic San-Francisco-profile workload. Each experiment sweeps one
// parameter and reports LSA vs CEA per-query simulated time, physical and
// logical page I/O, CPU time and result size.
//
// Usage:
//
//	mcnbench                         # full suite at the default scale (0.25)
//	mcnbench -exp fig8a,fig12        # selected figures
//	mcnbench -full                   # paper scale (175K nodes, 100 queries)
//	mcnbench -csv results.csv        # also write CSV
//	mcnbench -json BENCH_PR2.json    # also write a JSON perf baseline
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"mcn/internal/bench"
)

func main() {
	log.SetFlags(0)
	var (
		expFlag  = flag.String("exp", "all", "comma-separated experiment ids (all, or any ids from -list: fig8a…fig12, ablation, baseline, throughput, memthroughput, diskthroughput, timedepthroughput, cachethroughput, faultthroughput, prunethroughput, clusterthroughput, soakthroughput)")
		scale    = flag.Float64("scale", 0.25, "fraction of the paper's dataset scale (1.0 = 175K nodes, 100K facilities)")
		queries  = flag.Int("queries", 20, "query locations per data point")
		latency  = flag.Float64("latency", 8, "simulated I/O latency per physical page read (ms)")
		seed     = flag.Int64("seed", 1, "workload seed")
		full     = flag.Bool("full", false, "paper scale: -scale 1.0 -queries 100")
		csvPath  = flag.String("csv", "", "also write results as CSV to this file")
		jsonPath = flag.String("json", "", "also write results as a JSON report to this file (perf baselines, e.g. BENCH_PR2.json)")
		runs     = flag.Int("runs", 1, "repetitions per experiment; rows keep the minimum QPS seen (conservative envelope for committed baselines)")
		listOnly = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *listOnly {
		for _, e := range bench.All() {
			fmt.Printf("%-11s %s\n", e.ID, e.Title)
		}
		return
	}

	cfg := bench.Config{Scale: *scale, Queries: *queries, LatencyMS: *latency, Seed: *seed}
	if *full {
		cfg.Scale = 1.0
		cfg.Queries = 100
	}

	var selected []bench.Experiment
	if *expFlag == "all" {
		selected = bench.All()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			e, ok := bench.Find(strings.TrimSpace(id))
			if !ok {
				log.Fatalf("unknown experiment %q (use -list)", id)
			}
			selected = append(selected, e)
		}
	}

	var csv *os.File
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		csv = f
	}

	fmt.Printf("mcnbench: scale=%.2f queries=%d latency=%.1fms seed=%d\n\n", cfg.Scale, cfg.Queries, cfg.LatencyMS, cfg.Seed)
	report := bench.Report{Config: cfg, Host: bench.CurrentHost()}
	for i, exp := range selected {
		start := time.Now()
		points, err := exp.Run(cfg)
		if err != nil {
			log.Fatalf("%s: %v", exp.ID, err)
		}
		// Extra runs tighten the wall-clock rows toward their floor: the
		// regression gate only fires on QPS drops, so a committed baseline
		// built from a lucky fast draw would flag every ordinary run after
		// it. Deterministic metrics (page I/O, retries, expanded nodes) are
		// identical across runs and keep their first-run values.
		for r := 1; r < *runs; r++ {
			again, err := exp.Run(cfg)
			if err != nil {
				log.Fatalf("%s (run %d): %v", exp.ID, r+1, err)
			}
			for pi := range points {
				for ri := range points[pi].Rows {
					if q := again[pi].Rows[ri].QPS; q > 0 && q < points[pi].Rows[ri].QPS {
						points[pi].Rows[ri].QPS = q
						points[pi].Rows[ri].SimSeconds = again[pi].Rows[ri].SimSeconds
					}
				}
			}
		}
		bench.WriteTable(os.Stdout, exp, points)
		fmt.Printf("(%s completed in %.1fs)\n\n", exp.ID, time.Since(start).Seconds())
		if csv != nil {
			bench.WriteCSV(csv, exp, points, i == 0)
		}
		report.Results = append(report.Results, bench.ExperimentResult{ID: exp.ID, Title: exp.Title, Points: points})
	}
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := bench.WriteJSON(f, report); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote JSON report to %s\n", *jsonPath)
	}
}
