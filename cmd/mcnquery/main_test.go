package main

import "testing"

func TestParseWeights(t *testing.T) {
	agg, err := parseWeights("0.5, 0.3 ,0.2", 3)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Dims() != 3 {
		t.Errorf("dims = %d", agg.Dims())
	}
	if got := agg.Score([]float64{1, 1, 1}); got != 1.0 {
		t.Errorf("score = %g, want 1.0", got)
	}
}

func TestParseWeightsDefault(t *testing.T) {
	agg, err := parseWeights("", 4)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Dims() != 4 {
		t.Errorf("dims = %d", agg.Dims())
	}
	if got := agg.Score([]float64{1, 2, 3, 4}); got != 10 {
		t.Errorf("uniform default score = %g, want 10", got)
	}
}

func TestParseWeightsErrors(t *testing.T) {
	if _, err := parseWeights("1,2", 3); err == nil {
		t.Error("arity mismatch accepted")
	}
	if _, err := parseWeights("1,x,3", 3); err == nil {
		t.Error("non-numeric weight accepted")
	}
}
