// Command mcnquery runs ad-hoc preference queries against a database written
// by mcngen (or mcn.CreateDatabase).
//
// Usage:
//
//	mcnquery -db city.mcn -query skyline -edge 123 -t 0.5
//	mcnquery -db city.mcn -query topk -k 4 -weights 0.7,0.1,0.1,0.1
//	mcnquery -db city.mcn -query incremental -n 10 -weights 1,1,1,1
//	mcnquery -db city.mcn -query pareto -from 17 -to 99
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"mcn"
	"mcn/internal/paretopath"
	"mcn/internal/storage"
)

func main() {
	log.SetFlags(0)
	var (
		db      = flag.String("db", "network.mcn", "database path")
		query   = flag.String("query", "skyline", "query type: skyline|topk|incremental|baseline|pareto")
		edge    = flag.Int("edge", 0, "query location: edge id")
		tFrac   = flag.Float64("t", 0.5, "query location: fraction along the edge")
		k       = flag.Int("k", 4, "k for top-k")
		n       = flag.Int("n", 10, "results to pull for incremental queries")
		fromN   = flag.Int("from", 0, "pareto: source node id")
		toN     = flag.Int("to", 1, "pareto: destination node id")
		maxLbl  = flag.Int("maxlabels", 1_000_000, "pareto: label budget (0 = unlimited)")
		epsilon = flag.Float64("epsilon", 0, "pareto: ε-dominance pruning factor (0 = exact)")
		weights = flag.String("weights", "", "aggregate coefficients, comma-separated (default: uniform)")
		engine  = flag.String("engine", "cea", "engine: lsa|cea")
		buffer  = flag.Float64("buffer", 0.01, "buffer pool fraction of database pages")
		timeout = flag.Duration("timeout", 0, "per-query deadline (0 = none), e.g. 500ms")
	)
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	net, err := mcn.OpenDatabase(*db, *buffer)
	if err != nil {
		log.Fatal(err)
	}
	defer net.Close()

	var eng mcn.Engine
	switch strings.ToLower(*engine) {
	case "lsa":
		eng = mcn.LSA
	case "cea":
		eng = mcn.CEA
	default:
		log.Fatalf("unknown engine %q", *engine)
	}

	loc := mcn.Location{Edge: mcn.EdgeID(*edge), T: *tFrac}
	agg, err := parseWeights(*weights, net.D())
	if err != nil {
		log.Fatal(err)
	}

	switch *query {
	case "skyline":
		res, err := net.Skyline(ctx, loc, mcn.WithEngine(eng))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("skyline: %d facilities\n", len(res.Facilities))
		for _, f := range res.Facilities {
			fmt.Printf("  facility %d: %v\n", f.ID, f.Costs)
		}
		printStats(net, res.Stats)
	case "topk":
		res, err := net.TopK(ctx, loc, agg, *k, mcn.WithEngine(eng))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("top-%d:\n", *k)
		for i, f := range res.Facilities {
			fmt.Printf("  #%d facility %d: score %.4f %v\n", i+1, f.ID, f.Score, f.Costs)
		}
		printStats(net, res.Stats)
	case "incremental":
		it, err := net.TopKIterator(ctx, loc, agg, mcn.WithEngine(eng))
		if err != nil {
			log.Fatal(err)
		}
		defer it.Close()
		for i := 0; i < *n; i++ {
			f, ok, err := it.Next()
			if err != nil {
				log.Fatal(err)
			}
			if !ok {
				fmt.Println("  (exhausted)")
				break
			}
			fmt.Printf("  #%d facility %d: score %.4f %v\n", i+1, f.ID, f.Score, f.Costs)
		}
		printStats(net, it.Stats())
	case "baseline":
		res, err := net.BaselineSkyline(ctx, loc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("baseline skyline: %d facilities\n", len(res.Facilities))
		printStats(net, res.Stats)
	case "pareto":
		// Pareto path search needs the whole graph in memory; reconstruct
		// it from the database.
		dev, err := storage.OpenFileDevice(*db)
		if err != nil {
			log.Fatal(err)
		}
		defer dev.Close()
		store, err := storage.Open(dev, 0.1)
		if err != nil {
			log.Fatal(err)
		}
		g, err := storage.LoadGraph(store)
		if err != nil {
			log.Fatal(err)
		}
		paths, err := paretopath.Paths(g, mcn.NodeID(*fromN), mcn.NodeID(*toN),
			paretopath.Options{MaxLabels: *maxLbl, Epsilon: *epsilon, Interrupt: ctx.Err})
		if err != nil {
			log.Fatalf("%v\n(Pareto path sets grow exponentially with distance on anti-correlated networks — "+
				"pick closer nodes, raise -maxlabels, or prune with -epsilon 0.05)", err)
		}
		fmt.Printf("pareto paths %d → %d: %d routes\n", *fromN, *toN, len(paths))
		for i, p := range paths {
			if i == 20 {
				fmt.Printf("  … and %d more\n", len(paths)-20)
				break
			}
			fmt.Printf("  costs %v via %d edges\n", p.Costs, len(p.Edges))
		}
	default:
		log.Fatalf("unknown query type %q", *query)
	}
}

func parseWeights(s string, d int) (mcn.Aggregate, error) {
	if s == "" {
		coef := make([]float64, d)
		for i := range coef {
			coef[i] = 1
		}
		return mcn.WeightedSum(coef...), nil
	}
	parts := strings.Split(s, ",")
	if len(parts) != d {
		return nil, fmt.Errorf("got %d weights, network has %d cost types", len(parts), d)
	}
	coef := make([]float64, d)
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("weight %d: %v", i, err)
		}
		coef[i] = v
	}
	return mcn.WeightedSum(coef...), nil
}

func printStats(net *mcn.Network, s mcn.Stats) {
	fmt.Printf("stats: %d NN pops (%d in growing), %d node expansions, %d facilities tracked\n",
		s.Pops, s.GrowingPops, s.NodeExpansions, s.Tracked)
	if io, ok := net.IOStats(); ok {
		fmt.Printf("I/O:   %v\n", io)
	}
}
