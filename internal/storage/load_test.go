package storage

import (
	"math/rand"
	"testing"

	"mcn/internal/graph"
	"mcn/internal/vec"
)

func TestLoadGraphRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(800))
	for trial := 0; trial < 10; trial++ {
		d := 1 + rng.Intn(4)
		nn := 2 + rng.Intn(60)
		directed := rng.Intn(2) == 0
		b := graph.NewBuilder(d, directed)
		b.AddNodes(nn)
		ne := 1 + rng.Intn(2*nn)
		for i := 0; i < ne; i++ {
			u := graph.NodeID(rng.Intn(nn))
			v := graph.NodeID(rng.Intn(nn))
			if u == v {
				v = (v + 1) % graph.NodeID(nn)
			}
			w := make(vec.Costs, d)
			for j := range w {
				w[j] = rng.Float64() * 10
			}
			b.AddEdge(u, v, w)
		}
		for i := 0; i < rng.Intn(40); i++ {
			b.AddFacility(graph.EdgeID(rng.Intn(ne)), rng.Float64())
		}
		g, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}

		dev, err := BuildMem(g)
		if err != nil {
			t.Fatal(err)
		}
		net, err := Open(dev, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		g2, err := LoadGraph(net)
		if err != nil {
			t.Fatal(err)
		}

		if g2.D() != g.D() || g2.Directed() != g.Directed() ||
			g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() ||
			g2.NumFacilities() != g.NumFacilities() {
			t.Fatalf("trial %d: shape mismatch", trial)
		}
		for e := 0; e < g.NumEdges(); e++ {
			a, b := g.Edge(graph.EdgeID(e)), g2.Edge(graph.EdgeID(e))
			if a.U != b.U || a.V != b.V || !a.W.Equal(b.W) {
				t.Fatalf("trial %d: edge %d differs: %+v vs %+v", trial, e, a, b)
			}
		}
		for p := 0; p < g.NumFacilities(); p++ {
			a, b := g.Facility(graph.FacilityID(p)), g2.Facility(graph.FacilityID(p))
			if a.Edge != b.Edge || a.T != b.T {
				t.Fatalf("trial %d: facility %d differs: %+v vs %+v", trial, p, a, b)
			}
		}
	}
}
