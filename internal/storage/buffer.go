package storage

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Stats counts page accesses through a buffer pool. Logical counts every
// request; Physical counts the requests that reached the device. The paper's
// experiments are driven by the physical count (its processing time is
// vastly I/O-dominated, Sec. VI footnote 7).
//
// With miss coalescing enabled (the default), concurrent readers of the same
// cold page share one device read, so Physical counts actual device reads —
// it can be lower than the number of misses observed by callers.
type Stats struct {
	Logical  int64
	Physical int64
}

// HitRate returns the fraction of logical reads served from the pool.
func (s Stats) HitRate() float64 {
	if s.Logical == 0 {
		return 0
	}
	return 1 - float64(s.Physical)/float64(s.Logical)
}

// Sub returns s - o component-wise; useful for per-query deltas.
func (s Stats) Sub(o Stats) Stats {
	return Stats{Logical: s.Logical - o.Logical, Physical: s.Physical - o.Physical}
}

// String implements fmt.Stringer.
func (s Stats) String() string {
	return fmt.Sprintf("logical=%d physical=%d hit=%.1f%%", s.Logical, s.Physical, 100*s.HitRate())
}

// ShardStats is one buffer-pool shard's lifetime counters, for diagnosing
// shard skew (a hot page concentrating traffic on one lock) in production
// workloads. Like Stats it is read lock-free from per-shard atomics, so a
// snapshot taken under traffic is approximate but monotone.
type ShardStats struct {
	// Logical counts page requests routed to this shard; Physical the device
	// reads it issued.
	Logical  int64 `json:"logical"`
	Physical int64 `json:"physical"`
	// Hits counts requests served from the shard's frames without waiting on
	// the device: Logical − Physical − Coalesced.
	Hits int64 `json:"hits"`
	// Evictions counts frames displaced by the replacement policy.
	Evictions int64 `json:"evictions"`
	// Coalesced counts requests that piggybacked on another query's
	// in-flight read of the same cold page (miss coalescing).
	Coalesced int64 `json:"coalesced"`
}

// Policy selects a shard's replacement algorithm.
type Policy int

const (
	// PolicyClock is the default: a CLOCK (second-chance) sweep that
	// approximates LRU while touching only a reference bit on hits.
	PolicyClock Policy = iota
	// PolicyLRU is an exact least-recently-used list per shard — the pre-
	// sharding pool's behaviour when combined with Shards: 1. It moves list
	// nodes on every hit, so it is the more contention-prone choice.
	PolicyLRU
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case PolicyClock:
		return "clock"
	case PolicyLRU:
		return "lru"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ParsePolicy converts "clock" or "lru" to a Policy (command-line flags).
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "clock", "":
		return PolicyClock, nil
	case "lru":
		return PolicyLRU, nil
	default:
		return 0, fmt.Errorf("storage: unknown buffer policy %q (want clock or lru)", s)
	}
}

// PoolOptions tunes a BufferPool beyond its capacity.
type PoolOptions struct {
	// Shards is the number of independently locked cache partitions, rounded
	// down to a power of two and clamped so every shard owns at least one
	// frame. Zero selects a default based on GOMAXPROCS. One shard with
	// PolicyLRU reproduces the classic single-mutex LRU pool.
	Shards int
	// Policy selects the per-shard replacement algorithm (default clock).
	Policy Policy
	// NoCoalesce disables miss coalescing: concurrent readers of the same
	// cold page each issue their own device read, as the pre-sharding pool
	// did. Kept for A/B experiments; leave it false in servers.
	NoCoalesce bool
	// Retry bounds re-reads of transiently failing pages (see RetryPolicy).
	// The zero value surfaces every device error immediately.
	Retry RetryPolicy
	// NoVerify disables per-page checksum verification even when the
	// database carries a checksum table (see Build). Kept for A/B
	// experiments; leave it false in servers.
	NoVerify bool
}

// BufferPool is a sharded page cache over a Device. Pages are distributed
// across power-of-two shards by a hash of their id; each shard has its own
// lock, frame table and replacement state, so concurrent queries contend
// only when they touch the same shard. A capacity of zero disables caching
// entirely (the paper's 0% buffer configuration): every logical read becomes
// a physical read.
//
// The pool is read-only — query processing never mutates the database — and
// safe for concurrent readers: page contents remain valid after eviction
// (frames are immutable snapshots), so a reader may keep decoding a page
// another query just displaced.
//
// Misses are coalesced per page (singleflight): when several queries want
// the same cold page at once, one of them reads the device and the rest wait
// for that read, so a popular page costs one physical read per eviction
// rather than one per waiting query.
type BufferPool struct {
	dev      Device
	cap      int
	policy   Policy
	coalesce bool
	retry    RetryPolicy
	noVerify bool
	// verify, when set (OpenWithPool wires it to the database's checksum
	// table), checks a freshly read page's content; a failure is classified
	// like a transient device error and retried.
	verify func(PageID, []byte) error
	shift  uint // shard index = hash(id) >> shift
	shards []poolShard

	// I/O failure counters (see FailureStats); pool-global because failures
	// are rare enough that shard-striping them would buy nothing.
	retries       atomic.Int64
	failTransient atomic.Int64
	failPermanent atomic.Int64
	checksumErrs  atomic.Int64
}

// poolShard is one cache partition. Its counters are updated with atomics
// and read lock-free; everything below mu is guarded by mu.
type poolShard struct {
	logical   atomic.Int64
	physical  atomic.Int64
	evictions atomic.Int64
	coalesced atomic.Int64
	cached    atomic.Int64 // len(frames), mirrored for lock-free Len

	mu       sync.Mutex
	cap      int
	policy   Policy
	frames   map[PageID]*frame
	inflight map[PageID]*inflightRead

	// Clock state: a ring of frames and the sweep hand.
	slots []*frame
	hand  int

	// LRU state: head is most recently used.
	head, tail *frame

	// pad keeps neighbouring shards off one cache line, so shard counters
	// updated by different cores do not false-share.
	_ [64]byte
}

type frame struct {
	id         PageID
	data       []byte
	ref        bool // clock reference bit
	prev, next *frame
}

// inflightRead is one coalesced device read: the first misser fills data/err
// and closes done; waiters block on done and share the result.
type inflightRead struct {
	done chan struct{}
	data []byte
	err  error
}

// defaultShards picks the shard count for PoolOptions{Shards: 0}: enough
// partitions that GOMAXPROCS concurrent queries rarely collide, capped to
// keep per-shard capacities meaningful.
func defaultShards() int {
	n := 4 * runtime.GOMAXPROCS(0)
	if n > 64 {
		n = 64
	}
	return n
}

// floorPow2 returns the largest power of two <= n (n >= 1).
func floorPow2(n int) int { return 1 << (bits.Len(uint(n)) - 1) }

// NewBufferPool returns a pool holding at most capacity pages. At most one
// PoolOptions value may be passed; omitting it selects the clock policy with
// a GOMAXPROCS-derived shard count and miss coalescing on.
func NewBufferPool(dev Device, capacity int, opts ...PoolOptions) *BufferPool {
	var o PoolOptions
	if len(opts) > 0 {
		o = opts[0]
	}
	if capacity < 0 {
		capacity = 0
	}
	n := o.Shards
	if n <= 0 {
		n = defaultShards()
	}
	n = floorPow2(n)
	if capacity > 0 && n > capacity {
		n = floorPow2(capacity)
	}
	if capacity == 0 {
		n = 1
	}
	b := &BufferPool{
		dev:      dev,
		cap:      capacity,
		policy:   o.Policy,
		coalesce: !o.NoCoalesce,
		retry:    o.Retry.withDefaults(),
		noVerify: o.NoVerify,
		shift:    uint(32 - bits.Len(uint(n-1))),
		shards:   make([]poolShard, n),
	}
	if n == 1 {
		b.shift = 32
	}
	for i := range b.shards {
		s := &b.shards[i]
		// Distribute capacity as evenly as possible; the first capacity%n
		// shards take the remainder.
		s.cap = capacity / n
		if i < capacity%n {
			s.cap++
		}
		s.policy = o.Policy
		s.frames = make(map[PageID]*frame, s.cap)
		s.inflight = make(map[PageID]*inflightRead)
	}
	return b
}

// NewBufferPoolFrac returns a pool sized as a fraction of the device's
// current page count, mirroring the paper's "buffer size as a percentage of
// the MCN pages" parameter.
func NewBufferPoolFrac(dev Device, frac float64, opts ...PoolOptions) *BufferPool {
	return NewBufferPool(dev, int(frac*float64(dev.NumPages())), opts...)
}

// shard maps a page id to its partition with a Fibonacci hash, so the
// sequential page numbers of one file extent spread across shards.
func (b *BufferPool) shard(id PageID) *poolShard {
	if b.shift >= 32 {
		return &b.shards[0]
	}
	return &b.shards[(uint32(id)*2654435761)>>b.shift]
}

// Capacity returns the pool's total page capacity.
func (b *BufferPool) Capacity() int { return b.cap }

// Shards returns the number of cache partitions.
func (b *BufferPool) Shards() int { return len(b.shards) }

// Policy returns the replacement policy.
func (b *BufferPool) Policy() Policy { return b.policy }

// Stats returns the access counters accumulated since the last ResetStats.
// The counters are read lock-free (per-shard atomics summed one shard at a
// time), so a snapshot taken during concurrent traffic is approximate: it
// may interleave with in-flight reads, though each counter — and any
// sequence of snapshots — remains monotonically non-decreasing. Stats never
// blocks or delays Get callers.
func (b *BufferPool) Stats() Stats {
	var s Stats
	for i := range b.shards {
		// Physical is loaded before logical: every physical increment is
		// preceded by its logical increment in Get, so this order guarantees
		// a snapshot never shows Physical > Logical.
		s.Physical += b.shards[i].physical.Load()
		s.Logical += b.shards[i].logical.Load()
	}
	return s
}

// ShardStats returns one entry per cache partition, in shard order. The
// per-shard counters expose skew that the aggregate Stats hides: a popular
// page shows up as one shard carrying a disproportionate share of Logical
// (and, under churn, Evictions). Lock-free, like Stats.
func (b *BufferPool) ShardStats() []ShardStats {
	out := make([]ShardStats, len(b.shards))
	for i := range b.shards {
		s := &b.shards[i]
		// Load order mirrors Stats: increments happen logical-first, so a
		// snapshot never shows more work than was requested.
		ev := s.evictions.Load()
		co := s.coalesced.Load()
		ph := s.physical.Load()
		lo := s.logical.Load()
		hits := lo - ph - co
		if hits < 0 {
			hits = 0 // racing snapshot: reads landed between counter updates
		}
		out[i] = ShardStats{Logical: lo, Physical: ph, Hits: hits, Evictions: ev, Coalesced: co}
	}
	return out
}

// ResetStats zeroes the access counters without evicting cached pages. Like
// Stats it is lock-free; resets concurrent with traffic land between
// individual counter updates.
func (b *BufferPool) ResetStats() {
	for i := range b.shards {
		b.shards[i].logical.Store(0)
		b.shards[i].physical.Store(0)
		b.shards[i].evictions.Store(0)
		b.shards[i].coalesced.Store(0)
	}
}

// Len returns the number of cached pages (lock-free, approximate during
// concurrent inserts).
func (b *BufferPool) Len() int {
	var n int64
	for i := range b.shards {
		n += b.shards[i].cached.Load()
	}
	return int(n)
}

// Drop evicts all cached pages (a cold restart) without touching counters.
func (b *BufferPool) Drop() {
	for i := range b.shards {
		s := &b.shards[i]
		s.mu.Lock()
		s.frames = make(map[PageID]*frame, s.cap)
		s.slots = nil
		s.hand = 0
		s.head, s.tail = nil, nil
		s.cached.Store(0)
		s.mu.Unlock()
	}
}

// Get returns the contents of page id. The returned slice is owned by the
// pool and must be treated as read-only; it stays valid even after eviction.
func (b *BufferPool) Get(id PageID) ([]byte, error) {
	return b.GetCtx(nil, id)
}

// GetCtx is Get bound to a query context: a ctx that is cancelled (or whose
// deadline passes) aborts retry backoff sleeps immediately and releases
// coalesced waiters without waiting for the leader's read, returning the
// context's error. A nil ctx behaves like Get. The leader of a coalesced
// read always runs its retry schedule to completion under its own ctx, so
// one waiter's cancellation never fails the read for the others.
func (b *BufferPool) GetCtx(ctx context.Context, id PageID) ([]byte, error) {
	s := b.shard(id)
	s.logical.Add(1)
	if b.cap == 0 {
		// Caching disabled: every logical read is a physical read, by
		// definition of the paper's 0% buffer configuration (no coalescing
		// either — the counters must stay equal).
		s.physical.Add(1)
		data := make([]byte, PageSize)
		if err := b.readPage(ctx, id, data); err != nil {
			return nil, err
		}
		return data, nil
	}

	s.mu.Lock()
	if f, ok := s.frames[id]; ok {
		s.touch(f)
		data := f.data
		s.mu.Unlock()
		return data, nil
	}
	if b.coalesce {
		if c, ok := s.inflight[id]; ok {
			// Another query is already reading this page; share its read —
			// including the outcome of any retries the leader performs. A
			// cancelled waiter leaves early; the leader's read still
			// completes and populates the frame.
			s.coalesced.Add(1)
			s.mu.Unlock()
			if ctx != nil {
				select {
				case <-c.done:
				case <-ctx.Done():
					return nil, fmt.Errorf("storage: page %d: coalesced read abandoned: %w", id, ctx.Err())
				}
			} else {
				<-c.done
			}
			if c.err != nil && isCtxErr(c.err) && (ctx == nil || ctx.Err() == nil) {
				// The leader abandoned the read because *its* context died;
				// this waiter's is still live, so re-issue the read (becoming
				// the new leader) instead of inheriting a failure that says
				// nothing about the device.
				return b.GetCtx(ctx, id)
			}
			return c.data, c.err
		}
		c := &inflightRead{done: make(chan struct{})}
		s.inflight[id] = c
		s.mu.Unlock()

		s.physical.Add(1)
		data := make([]byte, PageSize)
		err := b.readPage(ctx, id, data)
		if err != nil {
			data = nil
		}
		c.data, c.err = data, err

		s.mu.Lock()
		delete(s.inflight, id)
		if err == nil {
			if _, ok := s.frames[id]; !ok {
				s.insert(id, data)
			}
		}
		s.mu.Unlock()
		close(c.done)
		return data, err
	}

	// Uncoalesced miss (NoCoalesce): read outside the lock; concurrent
	// readers of the same missing page may each hit the device, which only
	// overstates physical I/O, never corrupts state.
	s.physical.Add(1)
	s.mu.Unlock()
	data := make([]byte, PageSize)
	if err := b.readPage(ctx, id, data); err != nil {
		return nil, err
	}
	s.mu.Lock()
	if _, ok := s.frames[id]; !ok {
		s.insert(id, data)
	}
	s.mu.Unlock()
	return data, nil
}

// FailureStats returns the pool's lifetime I/O failure counters (lock-free).
func (b *BufferPool) FailureStats() FailureStats {
	return FailureStats{
		Retries:   b.retries.Load(),
		Transient: b.failTransient.Load(),
		Permanent: b.failPermanent.Load(),
		Checksum:  b.checksumErrs.Load(),
	}
}

// setVerify installs the per-page content check applied after every
// successful device read (OpenWithPool wires the database's checksum table
// through it unless PoolOptions.NoVerify is set).
func (b *BufferPool) setVerify(v func(PageID, []byte) error) {
	if !b.noVerify {
		b.verify = v
	}
}

// isCtxErr reports whether err stems from context cancellation or deadline
// expiry rather than the device.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// readPage performs one logical device read of page id into data: the raw
// read, optional checksum verification, and bounded retry with exponential
// backoff and jitter on transient failures. Classification (see errors.go):
// transient errors and checksum mismatches are retried up to the policy's
// budget; anything else — and a cancelled ctx — surfaces immediately. Frames
// are only ever populated from a fully successful attempt, so a failure can
// never poison the cache.
func (b *BufferPool) readPage(ctx context.Context, id PageID, data []byte) error {
	var err error
	for attempt := 0; ; attempt++ {
		err = b.dev.ReadPage(id, data)
		if err == nil && b.verify != nil {
			if verr := b.verify(id, data); verr != nil {
				b.checksumErrs.Add(1)
				err = verr
			}
		}
		if err == nil {
			return nil
		}
		if !IsTransient(err) {
			b.failPermanent.Add(1)
			return err
		}
		if attempt >= b.retry.MaxRetries {
			b.failTransient.Add(1)
			if b.retry.MaxRetries > 0 {
				return fmt.Errorf("storage: page %d: %d retries exhausted: %w", id, b.retry.MaxRetries, err)
			}
			return err
		}
		b.retries.Add(1)
		if d := b.retry.backoff(attempt + 1); d > 0 {
			if ctx != nil {
				t := time.NewTimer(d)
				select {
				case <-t.C:
				case <-ctx.Done():
					t.Stop()
					return fmt.Errorf("storage: page %d: retry abandoned after %v: %w", id, err, ctx.Err())
				}
			} else {
				time.Sleep(d)
			}
		}
		if ctx != nil && ctx.Err() != nil {
			return fmt.Errorf("storage: page %d: retry abandoned after %v: %w", id, err, ctx.Err())
		}
	}
}

// touch records a hit under the shard lock.
func (s *poolShard) touch(f *frame) {
	if s.policy == PolicyClock {
		f.ref = true
		return
	}
	s.moveToFront(f)
}

// insert places a new frame, evicting if the shard is full. Caller holds mu.
func (s *poolShard) insert(id PageID, data []byte) {
	f := &frame{id: id, data: data}
	if s.policy == PolicyClock {
		s.insertClock(f)
	} else {
		if len(s.frames) >= s.cap {
			s.evictLRU()
		}
		s.pushFront(f)
	}
	s.frames[id] = f
	s.cached.Store(int64(len(s.frames)))
}

// insertClock places f on the clock ring, sweeping the hand past referenced
// frames (clearing their bit — the second chance) until it finds a victim.
// New frames enter with the bit clear just behind the hand, so they survive
// a full rotation before becoming eviction candidates.
func (s *poolShard) insertClock(f *frame) {
	if len(s.slots) < s.cap {
		s.slots = append(s.slots, f)
		return
	}
	for s.slots[s.hand].ref {
		s.slots[s.hand].ref = false
		s.hand++
		if s.hand == len(s.slots) {
			s.hand = 0
		}
	}
	s.evictions.Add(1)
	delete(s.frames, s.slots[s.hand].id)
	s.slots[s.hand] = f
	s.hand++
	if s.hand == len(s.slots) {
		s.hand = 0
	}
}

func (s *poolShard) pushFront(f *frame) {
	f.prev = nil
	f.next = s.head
	if s.head != nil {
		s.head.prev = f
	}
	s.head = f
	if s.tail == nil {
		s.tail = f
	}
}

func (s *poolShard) moveToFront(f *frame) {
	if s.head == f {
		return
	}
	// Unlink.
	if f.prev != nil {
		f.prev.next = f.next
	}
	if f.next != nil {
		f.next.prev = f.prev
	}
	if s.tail == f {
		s.tail = f.prev
	}
	s.pushFront(f)
}

func (s *poolShard) evictLRU() {
	victim := s.tail
	if victim == nil {
		return
	}
	s.evictions.Add(1)
	if victim.prev != nil {
		victim.prev.next = nil
	}
	s.tail = victim.prev
	if s.head == victim {
		s.head = nil
	}
	delete(s.frames, victim.id)
}
