package storage

import (
	"fmt"
	"sync"
)

// Stats counts page accesses through a buffer pool. Logical counts every
// request; Physical counts the requests that missed the pool and reached the
// device. The paper's experiments are driven by the physical count (its
// processing time is vastly I/O-dominated, Sec. VI footnote 7).
type Stats struct {
	Logical  int64
	Physical int64
}

// HitRate returns the fraction of logical reads served from the pool.
func (s Stats) HitRate() float64 {
	if s.Logical == 0 {
		return 0
	}
	return 1 - float64(s.Physical)/float64(s.Logical)
}

// Sub returns s - o component-wise; useful for per-query deltas.
func (s Stats) Sub(o Stats) Stats {
	return Stats{Logical: s.Logical - o.Logical, Physical: s.Physical - o.Physical}
}

// String implements fmt.Stringer.
func (s Stats) String() string {
	return fmt.Sprintf("logical=%d physical=%d hit=%.1f%%", s.Logical, s.Physical, 100*s.HitRate())
}

// BufferPool is an LRU page cache over a Device. A capacity of zero disables
// caching entirely (the paper's 0% buffer configuration): every logical read
// becomes a physical read. The pool is read-only — query processing never
// mutates the database — and safe for concurrent readers: page contents
// remain valid after eviction (frames are immutable snapshots), so a reader
// may keep decoding a page another query just displaced.
type BufferPool struct {
	dev   Device
	cap   int
	stats Stats

	mu     sync.Mutex
	frames map[PageID]*frame
	head   *frame // most recently used
	tail   *frame // least recently used
}

type frame struct {
	id         PageID
	data       []byte
	prev, next *frame
}

// NewBufferPool returns a pool holding at most capacity pages.
func NewBufferPool(dev Device, capacity int) *BufferPool {
	if capacity < 0 {
		capacity = 0
	}
	return &BufferPool{dev: dev, cap: capacity, frames: make(map[PageID]*frame, capacity)}
}

// NewBufferPoolFrac returns a pool sized as a fraction of the device's
// current page count, mirroring the paper's "buffer size as a percentage of
// the MCN pages" parameter.
func NewBufferPoolFrac(dev Device, frac float64) *BufferPool {
	return NewBufferPool(dev, int(frac*float64(dev.NumPages())))
}

// Capacity returns the pool's page capacity.
func (b *BufferPool) Capacity() int { return b.cap }

// Stats returns the access counters accumulated since the last ResetStats.
func (b *BufferPool) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

// ResetStats zeroes the access counters without evicting cached pages.
func (b *BufferPool) ResetStats() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.stats = Stats{}
}

// Drop evicts all cached pages (a cold restart) without touching counters.
func (b *BufferPool) Drop() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.frames = make(map[PageID]*frame, b.cap)
	b.head, b.tail = nil, nil
}

// Get returns the contents of page id. The returned slice is owned by the
// pool and must be treated as read-only; it stays valid even after eviction.
func (b *BufferPool) Get(id PageID) ([]byte, error) {
	b.mu.Lock()
	b.stats.Logical++
	if f, ok := b.frames[id]; ok {
		b.moveToFront(f)
		data := f.data
		b.mu.Unlock()
		return data, nil
	}
	b.stats.Physical++
	b.mu.Unlock()

	// Read outside the lock; concurrent readers of the same missing page may
	// both hit the device, which only overstates physical I/O, never
	// corrupts state.
	data := make([]byte, PageSize)
	if err := b.dev.ReadPage(id, data); err != nil {
		return nil, err
	}
	if b.cap == 0 {
		return data, nil
	}
	b.mu.Lock()
	if _, ok := b.frames[id]; !ok {
		if len(b.frames) >= b.cap {
			b.evict()
		}
		f := &frame{id: id, data: data}
		b.frames[id] = f
		b.pushFront(f)
	}
	b.mu.Unlock()
	return data, nil
}

func (b *BufferPool) pushFront(f *frame) {
	f.prev = nil
	f.next = b.head
	if b.head != nil {
		b.head.prev = f
	}
	b.head = f
	if b.tail == nil {
		b.tail = f
	}
}

func (b *BufferPool) moveToFront(f *frame) {
	if b.head == f {
		return
	}
	// Unlink.
	if f.prev != nil {
		f.prev.next = f.next
	}
	if f.next != nil {
		f.next.prev = f.prev
	}
	if b.tail == f {
		b.tail = f.prev
	}
	b.pushFront(f)
}

func (b *BufferPool) evict() {
	victim := b.tail
	if victim == nil {
		return
	}
	if victim.prev != nil {
		victim.prev.next = nil
	}
	b.tail = victim.prev
	if b.head == victim {
		b.head = nil
	}
	delete(b.frames, victim.id)
}

// Len returns the number of cached pages.
func (b *BufferPool) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.frames)
}
