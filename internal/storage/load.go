package storage

import (
	"fmt"

	"mcn/internal/graph"
)

// LoadGraph reconstructs the in-memory graph from a database, inverting
// Build. Useful for tools that need whole-graph algorithms (e.g. Pareto path
// search) over a stored network.
func LoadGraph(n *Network) (*graph.Graph, error) {
	b := graph.NewBuilder(n.D(), n.Directed())
	b.AddNodes(n.NumNodes())

	type edgeRec struct {
		u, v     graph.NodeID
		w        []float64
		facRef   uint64
		facCount int
		seen     bool
	}
	edges := make([]edgeRec, n.NumEdges())
	for v := 0; v < n.NumNodes(); v++ {
		entries, err := n.Adjacency(graph.NodeID(v))
		if err != nil {
			return nil, err
		}
		for i := range entries {
			e := &entries[i]
			if !e.Forward {
				continue // undirected back-arc; the forward arc defines the edge
			}
			if int(e.Edge) >= len(edges) {
				return nil, fmt.Errorf("storage: edge %d out of range while loading", e.Edge)
			}
			edges[e.Edge] = edgeRec{
				u: graph.NodeID(v), v: e.Neighbor,
				w: e.W, facRef: e.FacRef, facCount: e.FacCount,
				seen: true,
			}
		}
	}
	type facRec struct {
		edge graph.EdgeID
		t    float64
		seen bool
	}
	facs := make([]facRec, n.NumFacilities())
	for id, rec := range edges {
		if !rec.seen {
			return nil, fmt.Errorf("storage: edge %d missing from all adjacency records", id)
		}
		b.AddEdge(rec.u, rec.v, rec.w)
		if rec.facCount == 0 {
			continue
		}
		fes, err := n.Facilities(rec.facRef, rec.facCount)
		if err != nil {
			return nil, err
		}
		for _, fe := range fes {
			if int(fe.ID) >= len(facs) {
				return nil, fmt.Errorf("storage: facility %d out of range while loading", fe.ID)
			}
			facs[fe.ID] = facRec{edge: graph.EdgeID(id), t: fe.T, seen: true}
		}
	}
	for id, rec := range facs {
		if !rec.seen {
			return nil, fmt.Errorf("storage: facility %d missing from all facility records", id)
		}
		b.AddFacility(rec.edge, rec.t)
	}
	return b.Build()
}
