package storage

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
)

// Ref locates a byte position inside a page file: a page and an offset
// within it. Refs are packed into uint64 fields of other records.
type Ref struct {
	Page PageID
	Off  uint16
}

// Pack encodes the ref into a uint64 (page in the high bits).
func (r Ref) Pack() uint64 { return uint64(r.Page)<<16 | uint64(r.Off) }

// UnpackRef decodes a packed ref.
func UnpackRef(v uint64) Ref {
	return Ref{Page: PageID(v >> 16), Off: uint16(v & 0xFFFF)}
}

// pageWriter appends bytes to consecutively allocated pages of a device.
// Records may span page boundaries; because Alloc returns consecutive ids,
// a reader can continue a record simply by moving to the next page.
type pageWriter struct {
	dev  Device
	page PageID
	buf  []byte
	off  int
	open bool
}

func newPageWriter(dev Device) *pageWriter {
	return &pageWriter{dev: dev, buf: make([]byte, PageSize)}
}

// pos returns the ref at which the next byte will be written, opening the
// first page lazily.
func (w *pageWriter) pos() (Ref, error) {
	if !w.open {
		id, err := w.dev.Alloc()
		if err != nil {
			return Ref{}, err
		}
		w.page, w.off, w.open = id, 0, true
	}
	if w.off == PageSize {
		if err := w.flushPage(); err != nil {
			return Ref{}, err
		}
	}
	return Ref{Page: w.page, Off: uint16(w.off)}, nil
}

func (w *pageWriter) flushPage() error {
	if err := w.dev.WritePage(w.page, w.buf); err != nil {
		return err
	}
	id, err := w.dev.Alloc()
	if err != nil {
		return err
	}
	if id != w.page+1 {
		return fmt.Errorf("storage: non-contiguous allocation (%d after %d)", id, w.page)
	}
	w.page, w.off = id, 0
	for i := range w.buf {
		w.buf[i] = 0
	}
	return nil
}

func (w *pageWriter) write(p []byte) error {
	if _, err := w.pos(); err != nil {
		return err
	}
	for len(p) > 0 {
		if w.off == PageSize {
			if err := w.flushPage(); err != nil {
				return err
			}
		}
		n := copy(w.buf[w.off:], p)
		w.off += n
		p = p[n:]
	}
	return nil
}

func (w *pageWriter) writeU16(v uint16) error {
	var b [2]byte
	binary.LittleEndian.PutUint16(b[:], v)
	return w.write(b[:])
}

func (w *pageWriter) writeU32(v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return w.write(b[:])
}

func (w *pageWriter) writeU64(v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return w.write(b[:])
}

func (w *pageWriter) writeF64(v float64) error {
	return w.writeU64(math.Float64bits(v))
}

// close flushes the final partial page.
func (w *pageWriter) close() error {
	if !w.open {
		return nil
	}
	return w.dev.WritePage(w.page, w.buf)
}

// cursor reads bytes sequentially from a ref through a buffer pool,
// following records across contiguous pages. A non-nil ctx binds every page
// read to it (see BufferPool.GetCtx).
type cursor struct {
	pool *BufferPool
	ctx  context.Context
	page PageID
	off  int
	data []byte
}

func newCursor(pool *BufferPool, ref Ref) *cursor {
	return &cursor{pool: pool, page: ref.Page, off: int(ref.Off)}
}

func newCursorCtx(ctx context.Context, pool *BufferPool, ref Ref) *cursor {
	return &cursor{pool: pool, ctx: ctx, page: ref.Page, off: int(ref.Off)}
}

func (c *cursor) ensure() error {
	if c.data == nil {
		data, err := c.pool.GetCtx(c.ctx, c.page)
		if err != nil {
			return err
		}
		c.data = data
	}
	if c.off == PageSize {
		c.page++
		c.off = 0
		data, err := c.pool.GetCtx(c.ctx, c.page)
		if err != nil {
			return err
		}
		c.data = data
	}
	return nil
}

func (c *cursor) read(p []byte) error {
	for len(p) > 0 {
		if err := c.ensure(); err != nil {
			return err
		}
		n := copy(p, c.data[c.off:])
		c.off += n
		p = p[n:]
	}
	return nil
}

func (c *cursor) readU16() (uint16, error) {
	var b [2]byte
	if err := c.read(b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b[:]), nil
}

func (c *cursor) readU32() (uint32, error) {
	var b [4]byte
	if err := c.read(b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func (c *cursor) readU64() (uint64, error) {
	var b [8]byte
	if err := c.read(b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

func (c *cursor) readF64() (float64, error) {
	v, err := c.readU64()
	return math.Float64frombits(v), err
}
