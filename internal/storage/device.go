// Package storage implements the disk-resident MCN storage scheme of the
// paper (Fig. 2): an adjacency tree mapping nodes to adjacency-list records,
// a flat adjacency file, a facility file holding the facilities of each
// edge, and a facility tree mapping facilities to their edges — all laid out
// on fixed-size pages behind a sharded clock-sweep buffer pool that counts
// logical and physical reads. An additional edge tree (edge → first
// end-node) supports query initialisation at arbitrary network locations.
package storage

import (
	"fmt"
	"io"
	"os"
)

// PageSize is the fixed page size in bytes.
const PageSize = 4096

// PageID identifies a page on a device.
type PageID uint32

// Device is a page-addressed storage medium. Implementations must return
// stable page contents; concurrent use requires external synchronisation.
type Device interface {
	// ReadPage fills buf (len PageSize) with the contents of page id.
	ReadPage(id PageID, buf []byte) error
	// WritePage stores buf (len PageSize) as the contents of page id.
	WritePage(id PageID, buf []byte) error
	// Alloc appends a zeroed page and returns its id. Pages are numbered
	// consecutively from zero, so sequentially allocated extents are
	// contiguous.
	Alloc() (PageID, error)
	// NumPages returns the number of allocated pages.
	NumPages() int
	// Close releases underlying resources.
	Close() error
}

// MemDevice is an in-memory Device. The zero value is an empty device.
type MemDevice struct {
	pages [][]byte
}

// NewMemDevice returns an empty in-memory device.
func NewMemDevice() *MemDevice { return &MemDevice{} }

// ReadPage implements Device.
func (m *MemDevice) ReadPage(id PageID, buf []byte) error {
	if int(id) >= len(m.pages) {
		return fmt.Errorf("storage: read of unallocated page %d (have %d)", id, len(m.pages))
	}
	copy(buf, m.pages[id])
	return nil
}

// WritePage implements Device.
func (m *MemDevice) WritePage(id PageID, buf []byte) error {
	if int(id) >= len(m.pages) {
		return fmt.Errorf("storage: write of unallocated page %d (have %d)", id, len(m.pages))
	}
	copy(m.pages[id], buf)
	return nil
}

// Alloc implements Device.
func (m *MemDevice) Alloc() (PageID, error) {
	m.pages = append(m.pages, make([]byte, PageSize))
	return PageID(len(m.pages) - 1), nil
}

// NumPages implements Device.
func (m *MemDevice) NumPages() int { return len(m.pages) }

// Close implements Device.
func (m *MemDevice) Close() error { return nil }

// FileDevice stores pages in an operating-system file.
type FileDevice struct {
	f *os.File
	n int
}

// CreateFileDevice creates (or truncates) a file-backed device at path.
func CreateFileDevice(path string) (*FileDevice, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("storage: create device: %w", err)
	}
	return &FileDevice{f: f}, nil
}

// OpenFileDevice opens an existing file-backed device read-only.
func OpenFileDevice(path string) (*FileDevice, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("storage: open device: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: stat device: %w", err)
	}
	if st.Size()%PageSize != 0 {
		f.Close()
		return nil, fmt.Errorf("storage: device size %d is not a multiple of the page size", st.Size())
	}
	return &FileDevice{f: f, n: int(st.Size() / PageSize)}, nil
}

// ReadPage implements Device. A read that returns fewer than PageSize bytes
// is an error, not a silently zero-padded page: an allocated page that the
// file cannot fully deliver means the file was truncated behind the handle,
// and callers need io.ErrUnexpectedEOF (with the page id) rather than a
// page of garbage. ReadAt may legitimately pair a full read of the final
// page with io.EOF; only short reads fail.
func (d *FileDevice) ReadPage(id PageID, buf []byte) error {
	if int(id) >= d.n {
		return fmt.Errorf("storage: read of unallocated page %d (have %d)", id, d.n)
	}
	n, err := d.f.ReadAt(buf[:PageSize], int64(id)*PageSize)
	if n == PageSize {
		return nil
	}
	if err == nil || err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	return fmt.Errorf("storage: read page %d: short read (%d of %d bytes): %w", id, n, PageSize, err)
}

// WritePage implements Device.
func (d *FileDevice) WritePage(id PageID, buf []byte) error {
	if int(id) >= d.n {
		return fmt.Errorf("storage: write of unallocated page %d (have %d)", id, d.n)
	}
	if _, err := d.f.WriteAt(buf[:PageSize], int64(id)*PageSize); err != nil {
		return fmt.Errorf("storage: write page %d: %w", id, err)
	}
	return nil
}

// Alloc implements Device.
func (d *FileDevice) Alloc() (PageID, error) {
	id := PageID(d.n)
	if err := d.f.Truncate(int64(d.n+1) * PageSize); err != nil {
		return 0, fmt.Errorf("storage: grow device: %w", err)
	}
	d.n++
	return id, nil
}

// NumPages implements Device.
func (d *FileDevice) NumPages() int { return d.n }

// Close implements Device.
func (d *FileDevice) Close() error { return d.f.Close() }
