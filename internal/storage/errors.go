package storage

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"time"
)

// Error taxonomy of the storage layer. Every I/O failure a query can observe
// falls into one of three classes, and the buffer pool's retry logic keys off
// the classification:
//
//   - transient: the device reported a failure that may not repeat (a timed-
//     out command, a dropped interconnect frame, an injected fault). Marked
//     with MarkTransient; the pool retries these with exponential backoff.
//   - corrupt: the page was read "successfully" but its content fails the
//     database's checksum (ErrChecksum). Treated as retryable — a re-read
//     distinguishes a transfer corruption from damaged media — and counted
//     separately so silent corruption is always visible in /stats.
//   - permanent: everything else. Surfaced immediately, never retried.

// transientError marks an error as retryable. It wraps, so errors.Is/As see
// through it, and IsTransient recognises it across wrapping layers.
type transientError struct{ err error }

func (t *transientError) Error() string { return t.err.Error() }
func (t *transientError) Unwrap() error { return t.err }

// TransientIO marks the classification; any error type with this method
// reporting true is treated as retryable by the pool.
func (t *transientError) TransientIO() bool { return true }

// MarkTransient wraps err so IsTransient reports true for it (and for any
// error wrapping it). A nil err stays nil.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether err is classified as a transient I/O failure —
// one the buffer pool may retry. Checksum mismatches count as transient (a
// re-read distinguishes transfer corruption from damaged media).
func IsTransient(err error) bool {
	var t interface{ TransientIO() bool }
	if errors.As(err, &t) {
		return t.TransientIO()
	}
	return errors.Is(err, ErrChecksum)
}

// ErrChecksum reports a page whose content does not match the database's
// checksum table: silent corruption turned into an explicit, classified
// error. The pool retries checksum failures like transient errors (counting
// them separately); persistent corruption exhausts the retry budget and
// surfaces wrapped in this sentinel.
var ErrChecksum = errors.New("storage: page checksum mismatch")

// RetryPolicy bounds the buffer pool's retries of transient read failures.
// The zero value disables retrying (every error surfaces immediately), which
// is the pre-fault-model behaviour.
type RetryPolicy struct {
	// MaxRetries is the number of re-reads after the first failed attempt.
	MaxRetries int
	// BaseBackoff is the sleep before the first retry; each subsequent
	// retry doubles it up to MaxBackoff. Zero selects 500µs when MaxRetries
	// is positive.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential backoff. Zero selects 50ms.
	MaxBackoff time.Duration
}

// withDefaults fills the zero backoff fields.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxRetries > 0 {
		if p.BaseBackoff <= 0 {
			p.BaseBackoff = 500 * time.Microsecond
		}
		if p.MaxBackoff <= 0 {
			p.MaxBackoff = 50 * time.Millisecond
		}
	}
	return p
}

// backoff returns the sleep before retry attempt (1-based), jittered
// uniformly over [d/2, d) so coalescing leaders retrying the same failing
// device do not synchronise.
func (p RetryPolicy) backoff(attempt int) time.Duration {
	d := p.BaseBackoff << uint(attempt-1)
	if d > p.MaxBackoff || d <= 0 {
		d = p.MaxBackoff
	}
	if d <= 0 {
		return 0
	}
	half := d / 2
	return half + rand.N(d-half)
}

// FailureStats counts the buffer pool's I/O failure handling since the pool
// was created. Counters are updated atomically and read lock-free, like
// Stats; they are not reset by ResetStats (failures are rare and lifetime
// totals are what operators alert on).
type FailureStats struct {
	// Retries counts individual re-read attempts after transient failures.
	Retries int64 `json:"io_retries"`
	// Transient counts reads that still failed after exhausting the retry
	// budget on transient errors.
	Transient int64 `json:"io_fail_transient"`
	// Permanent counts reads that failed with a non-retryable error.
	Permanent int64 `json:"io_fail_permanent"`
	// Checksum counts checksum mismatches observed (each failed verify,
	// including ones a retry subsequently repaired).
	Checksum int64 `json:"checksum_errors"`
}

// String implements fmt.Stringer.
func (f FailureStats) String() string {
	return fmt.Sprintf("retries=%d transient=%d permanent=%d checksum=%d",
		f.Retries, f.Transient, f.Permanent, f.Checksum)
}
