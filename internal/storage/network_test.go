package storage

import (
	"encoding/binary"
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"mcn/internal/graph"
	"mcn/internal/index"
	"mcn/internal/vec"
)

// sampleGraph builds a small fixed network with facilities.
func sampleGraph(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(2, false)
	n0 := b.AddNode(0, 0)
	n1 := b.AddNode(1, 0)
	n2 := b.AddNode(1, 1)
	n3 := b.AddNode(2, 1)
	e0 := b.AddEdge(n0, n1, vec.Of(1, 4))
	e1 := b.AddEdge(n1, n2, vec.Of(2, 3))
	e2 := b.AddEdge(n2, n3, vec.Of(3, 2))
	b.AddEdge(n0, n2, vec.Of(4, 1))
	b.AddFacility(e0, 0.5)
	b.AddFacility(e1, 0.25)
	b.AddFacility(e1, 0.75)
	b.AddFacility(e2, 0.1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func openNetwork(t *testing.T, g *graph.Graph, frac float64) *Network {
	t.Helper()
	dev, err := BuildMem(g)
	if err != nil {
		t.Fatalf("BuildMem: %v", err)
	}
	n, err := Open(dev, frac)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return n
}

// verifyAgainstGraph checks that every network read agrees with the
// in-memory graph.
func verifyAgainstGraph(t *testing.T, g *graph.Graph, n *Network) {
	t.Helper()
	if n.D() != g.D() || n.Directed() != g.Directed() {
		t.Fatalf("header mismatch: d=%d/%d directed=%v/%v", n.D(), g.D(), n.Directed(), g.Directed())
	}
	if n.NumNodes() != g.NumNodes() || n.NumEdges() != g.NumEdges() || n.NumFacilities() != g.NumFacilities() {
		t.Fatalf("counts mismatch")
	}
	for v := 0; v < g.NumNodes(); v++ {
		arcs := g.Arcs(graph.NodeID(v))
		entries, err := n.Adjacency(graph.NodeID(v))
		if err != nil {
			t.Fatalf("Adjacency(%d): %v", v, err)
		}
		if len(entries) != len(arcs) {
			t.Fatalf("node %d: %d entries, want %d", v, len(entries), len(arcs))
		}
		for i, a := range arcs {
			e := entries[i]
			if e.Neighbor != a.Neighbor || e.Edge != a.Edge || e.Forward != a.Forward {
				t.Fatalf("node %d arc %d: got %+v, want %+v", v, i, e, a)
			}
			if !e.W.Equal(g.Edge(a.Edge).W) {
				t.Fatalf("node %d arc %d: costs %v, want %v", v, i, e.W, g.Edge(a.Edge).W)
			}
			wantFacs := g.EdgeFacilities(a.Edge)
			if e.FacCount != len(wantFacs) {
				t.Fatalf("edge %d: facCount %d, want %d", a.Edge, e.FacCount, len(wantFacs))
			}
			facs, err := n.Facilities(e.FacRef, e.FacCount)
			if err != nil {
				t.Fatalf("Facilities(edge %d): %v", a.Edge, err)
			}
			for j, fe := range facs {
				if fe.ID != wantFacs[j] {
					t.Fatalf("edge %d fac %d: id %d, want %d", a.Edge, j, fe.ID, wantFacs[j])
				}
				if math.Abs(fe.T-g.Facility(fe.ID).T) > 1e-15 {
					t.Fatalf("edge %d fac %d: T %g, want %g", a.Edge, j, fe.T, g.Facility(fe.ID).T)
				}
			}
		}
	}
	for p := 0; p < g.NumFacilities(); p++ {
		e, err := n.FacilityEdge(graph.FacilityID(p))
		if err != nil {
			t.Fatalf("FacilityEdge(%d): %v", p, err)
		}
		if e != g.Facility(graph.FacilityID(p)).Edge {
			t.Fatalf("FacilityEdge(%d) = %d, want %d", p, e, g.Facility(graph.FacilityID(p)).Edge)
		}
	}
	for e := 0; e < g.NumEdges(); e++ {
		info, err := n.EdgeInfo(graph.EdgeID(e))
		if err != nil {
			t.Fatalf("EdgeInfo(%d): %v", e, err)
		}
		want := g.Edge(graph.EdgeID(e))
		if info.U != want.U || info.V != want.V || !info.W.Equal(want.W) {
			t.Fatalf("EdgeInfo(%d) = %+v, want %+v", e, info, want)
		}
		if info.FacCount != len(g.EdgeFacilities(graph.EdgeID(e))) {
			t.Fatalf("EdgeInfo(%d).FacCount = %d", e, info.FacCount)
		}
	}
}

func TestNetworkRoundtrip(t *testing.T) {
	g := sampleGraph(t)
	verifyAgainstGraph(t, g, openNetwork(t, g, 0.5))
}

func TestNetworkRoundtripZeroBuffer(t *testing.T) {
	g := sampleGraph(t)
	n := openNetwork(t, g, 0)
	verifyAgainstGraph(t, g, n)
	s := n.Stats()
	if s.Physical != s.Logical {
		t.Errorf("zero buffer must make every read physical: %+v", s)
	}
}

func TestNetworkDirected(t *testing.T) {
	b := graph.NewBuilder(3, true)
	b.AddNodes(3)
	e0 := b.AddEdge(0, 1, vec.Of(1, 2, 3))
	b.AddEdge(1, 2, vec.Of(4, 5, 6))
	b.AddFacility(e0, 0.4)
	g := b.MustBuild()
	verifyAgainstGraph(t, g, openNetwork(t, g, 0.5))
}

func TestNetworkRandomizedRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 8; trial++ {
		d := 1 + rng.Intn(5)
		nn := 2 + rng.Intn(120)
		b := graph.NewBuilder(d, rng.Intn(2) == 0)
		b.AddNodes(nn)
		ne := 1 + rng.Intn(3*nn)
		for i := 0; i < ne; i++ {
			u := graph.NodeID(rng.Intn(nn))
			v := graph.NodeID(rng.Intn(nn))
			if u == v {
				v = (v + 1) % graph.NodeID(nn)
			}
			w := make(vec.Costs, d)
			for j := range w {
				w[j] = rng.Float64() * 100
			}
			b.AddEdge(u, v, w)
		}
		nf := rng.Intn(200)
		for i := 0; i < nf; i++ {
			b.AddFacility(graph.EdgeID(rng.Intn(ne)), rng.Float64())
		}
		g, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		verifyAgainstGraph(t, g, openNetwork(t, g, 0.3))
	}
}

// A single edge with thousands of facilities forces its facility record to
// span multiple pages.
func TestNetworkHugeFacilityRecord(t *testing.T) {
	b := graph.NewBuilder(2, false)
	b.AddNodes(2)
	e := b.AddEdge(0, 1, vec.Of(1, 1))
	const nf = 2000 // 2000 × 12 bytes ≈ 6 pages
	for i := 0; i < nf; i++ {
		b.AddFacility(e, float64(i)/float64(nf))
	}
	g := b.MustBuild()
	n := openNetwork(t, g, 0.5)
	entries, err := n.Adjacency(0)
	if err != nil {
		t.Fatal(err)
	}
	if entries[0].FacCount != nf {
		t.Fatalf("FacCount = %d, want %d", entries[0].FacCount, nf)
	}
	facs, err := n.Facilities(entries[0].FacRef, entries[0].FacCount)
	if err != nil {
		t.Fatal(err)
	}
	for i, fe := range facs {
		if int(fe.ID) != i {
			t.Fatalf("facility %d out of order (got id %d)", i, fe.ID)
		}
	}
}

func TestNetworkFilePersistence(t *testing.T) {
	g := sampleGraph(t)
	path := filepath.Join(t.TempDir(), "net.mcn")
	dev, err := CreateFileDevice(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := Build(g, dev); err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := dev.Close(); err != nil {
		t.Fatal(err)
	}
	ro, err := OpenFileDevice(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	n, err := Open(ro, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	verifyAgainstGraph(t, g, n)
}

func TestOpenRejectsGarbage(t *testing.T) {
	dev := NewMemDevice()
	if _, err := Open(dev, 0.1); err == nil {
		t.Error("empty device opened")
	}
	if _, err := dev.Alloc(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dev, 0.1); err == nil {
		t.Error("zero page accepted as header")
	}
}

func TestBuildRejectsDirtyDevice(t *testing.T) {
	g := sampleGraph(t)
	dev := NewMemDevice()
	if _, err := dev.Alloc(); err != nil {
		t.Fatal(err)
	}
	if err := Build(g, dev); err == nil {
		t.Error("Build accepted a non-empty device")
	}
}

func TestAdjacencyOutOfRange(t *testing.T) {
	n := openNetwork(t, sampleGraph(t), 0.1)
	if _, err := n.Adjacency(graph.NodeID(999)); err == nil {
		t.Error("out-of-range node accepted")
	}
}

// The persisted bounds table must round-trip exactly: the loaded index is
// byte-identical to one rebuilt from the in-memory graph.
func TestNetworkBoundsRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 6; trial++ {
		d := 1 + rng.Intn(4)
		nn := 2 + rng.Intn(80)
		b := graph.NewBuilder(d, rng.Intn(2) == 0)
		b.AddNodes(nn)
		ne := nn + rng.Intn(2*nn)
		for i := 0; i < ne; i++ {
			u := graph.NodeID(rng.Intn(nn))
			v := graph.NodeID(rng.Intn(nn))
			if u == v {
				v = (v + 1) % graph.NodeID(nn)
			}
			w := make(vec.Costs, d)
			for j := range w {
				w[j] = 1 + rng.Float64()*50
			}
			b.AddEdge(u, v, w)
		}
		for i := 0; i < 1+rng.Intn(10); i++ {
			b.AddFacility(graph.EdgeID(rng.Intn(ne)), rng.Float64())
		}
		g, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		n := openNetwork(t, g, 0.3)
		got := n.Bounds()
		if got == nil {
			t.Fatal("v3 database opened with nil bounds")
		}
		want := index.FromGraph(g)
		if got.D() != want.D() || got.NumNodes() != want.NumNodes() {
			t.Fatalf("bounds shape %d×%d, want %d×%d", got.D(), got.NumNodes(), want.D(), want.NumNodes())
		}
		gd, wd := got.Data(), want.Data()
		for i := range wd {
			if gd[i] != wd[i] && !(math.IsInf(gd[i], 1) && math.IsInf(wd[i], 1)) {
				t.Fatalf("bounds[%d] = %v, want %v", i, gd[i], wd[i])
			}
		}
	}
}

// Version-2 databases (no bounds table) must still open, with nil Bounds.
func TestNetworkOpensV2WithoutBounds(t *testing.T) {
	g := sampleGraph(t)
	dev, err := BuildMem(g)
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite the header as version 2 with no bounds pointer. The bounds
	// table pages become dead space, exactly like a v2-era file.
	buf := make([]byte, PageSize)
	if err := dev.ReadPage(0, buf); err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint16(buf[4:], 2)
	binary.LittleEndian.PutUint32(buf[52:], 0)
	if err := dev.WritePage(0, buf); err != nil {
		t.Fatal(err)
	}
	n, err := Open(dev, 0.3)
	if err != nil {
		t.Fatalf("v2 database failed to open: %v", err)
	}
	if n.Bounds() != nil {
		t.Error("v2 database returned non-nil bounds")
	}
	verifyAgainstGraph(t, g, n)
}
