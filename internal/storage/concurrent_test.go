package storage

import (
	"math/rand"
	"sync"
	"testing"
)

// The buffer pool must stay consistent under concurrent readers (run with
// -race). Contents must always be correct; physical counts may only be
// overstated by racing misses, never understated below the distinct-page
// count.
func TestBufferPoolConcurrentReaders(t *testing.T) {
	const pages = 64
	dev := stampDevice(t, pages)
	pool := NewBufferPool(dev, 16)

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 2000; i++ {
				id := PageID(rng.Intn(pages))
				data, err := pool.Get(id)
				if err != nil {
					t.Error(err)
					return
				}
				if pageStamp(data) != uint32(id) {
					t.Errorf("page %d returned stamp %d", id, pageStamp(data))
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
	s := pool.Stats()
	if s.Logical != 8*2000 {
		t.Errorf("logical = %d, want %d", s.Logical, 8*2000)
	}
	if s.Physical < 1 || s.Physical > s.Logical {
		t.Errorf("implausible physical count %d", s.Physical)
	}
	if pool.Len() > 16 {
		t.Errorf("pool holds %d pages, capacity 16", pool.Len())
	}
}

// Whole networks must serve concurrent queries (each query is sequential;
// different queries share the pool).
func TestNetworkConcurrentAccess(t *testing.T) {
	g := sampleGraph(t)
	n := openNetwork(t, g, 0.3)
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				entries, err := n.Adjacency(1)
				if err != nil || len(entries) == 0 {
					t.Errorf("Adjacency: %v", err)
					return
				}
				if _, err := n.EdgeInfo(0); err != nil {
					t.Errorf("EdgeInfo: %v", err)
					return
				}
				if _, err := n.FacilityEdge(0); err != nil {
					t.Errorf("FacilityEdge: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
}
