package storage

import (
	"bytes"
	"path/filepath"
	"testing"
)

func testDeviceBasics(t *testing.T, dev Device) {
	t.Helper()
	if dev.NumPages() != 0 {
		t.Fatalf("fresh device has %d pages", dev.NumPages())
	}
	p0, err := dev.Alloc()
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	p1, err := dev.Alloc()
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if p0 != 0 || p1 != 1 {
		t.Fatalf("page ids = %d, %d; want 0, 1", p0, p1)
	}

	buf := make([]byte, PageSize)
	for i := range buf {
		buf[i] = byte(i % 251)
	}
	if err := dev.WritePage(p1, buf); err != nil {
		t.Fatalf("WritePage: %v", err)
	}
	got := make([]byte, PageSize)
	if err := dev.ReadPage(p1, got); err != nil {
		t.Fatalf("ReadPage: %v", err)
	}
	if !bytes.Equal(buf, got) {
		t.Error("read back different contents")
	}
	// Page 0 must still be zero.
	if err := dev.ReadPage(p0, got); err != nil {
		t.Fatalf("ReadPage(0): %v", err)
	}
	for _, b := range got {
		if b != 0 {
			t.Fatal("fresh page not zeroed")
		}
	}
	if err := dev.ReadPage(99, got); err == nil {
		t.Error("read of unallocated page succeeded")
	}
	if err := dev.WritePage(99, buf); err == nil {
		t.Error("write of unallocated page succeeded")
	}
}

func TestMemDevice(t *testing.T) {
	testDeviceBasics(t, NewMemDevice())
}

func TestFileDevice(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dev.mcn")
	dev, err := CreateFileDevice(path)
	if err != nil {
		t.Fatalf("CreateFileDevice: %v", err)
	}
	testDeviceBasics(t, dev)
	if err := dev.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reopen read-only and verify persistence.
	ro, err := OpenFileDevice(path)
	if err != nil {
		t.Fatalf("OpenFileDevice: %v", err)
	}
	defer ro.Close()
	if ro.NumPages() != 2 {
		t.Fatalf("reopened pages = %d, want 2", ro.NumPages())
	}
	got := make([]byte, PageSize)
	if err := ro.ReadPage(1, got); err != nil {
		t.Fatalf("ReadPage: %v", err)
	}
	for i := range got {
		if got[i] != byte(i%251) {
			t.Fatal("persisted page corrupted")
		}
	}
}

func TestOpenFileDeviceBadSize(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.mcn")
	dev, err := CreateFileDevice(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dev.f.Write([]byte("partial page")); err != nil {
		t.Fatal(err)
	}
	dev.Close()
	if _, err := OpenFileDevice(path); err == nil {
		t.Error("device with torn page opened successfully")
	}
}
