package storage

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// Stress test for the sharded pool under -race: workers hammer a mix of hot
// pages (always resident after warmup) and a cold tail (constant eviction
// churn). Frames must stay valid after eviction — a reader that got a slice
// just before its page was displaced must still see the right contents.
func TestBufferPoolStressMixedHotCold(t *testing.T) {
	const (
		pages   = 512
		hotSet  = 8
		workers = 8
		steps   = 4000
	)
	dev := stampDevice(t, pages)
	for _, opt := range []PoolOptions{
		{},                  // default: sharded clock, coalescing
		{Shards: 1},         // single shard exercises one-lock interleavings
		{Policy: PolicyLRU}, // sharded LRU
		{NoCoalesce: true},  // duplicated miss path
		{Shards: 4, Policy: PolicyLRU, NoCoalesce: true},
	} {
		opt := opt
		t.Run(fmt.Sprintf("shards=%d_policy=%v_nocoalesce=%v", opt.Shards, opt.Policy, opt.NoCoalesce), func(t *testing.T) {
			pool := NewBufferPool(dev, 64, opt)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					for i := 0; i < steps; i++ {
						var id PageID
						if rng.Intn(4) > 0 { // 75% of traffic on the hot set
							id = PageID(rng.Intn(hotSet))
						} else {
							id = PageID(hotSet + rng.Intn(pages-hotSet))
						}
						data, err := pool.Get(id)
						if err != nil {
							t.Error(err)
							return
						}
						if pageStamp(data) != uint32(id) {
							t.Errorf("page %d returned stamp %d", id, pageStamp(data))
							return
						}
					}
				}(int64(w + 1))
			}
			wg.Wait()
			s := pool.Stats()
			if s.Logical != workers*steps {
				t.Errorf("logical = %d, want %d", s.Logical, workers*steps)
			}
			if s.Physical < 1 || s.Physical > s.Logical {
				t.Errorf("implausible physical count %d", s.Physical)
			}
			if n := pool.Len(); n > 64 {
				t.Errorf("pool holds %d pages, capacity 64", n)
			}
		})
	}
}

// Stats snapshots are lock-free but must remain monotonically non-decreasing
// while traffic flows: a /stats poller must never observe a counter running
// backwards.
func TestBufferPoolStatsMonotonic(t *testing.T) {
	const pages = 128
	dev := stampDevice(t, pages)
	pool := NewBufferPool(dev, 16)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := pool.Get(PageID(rng.Intn(pages))); err != nil {
					t.Error(err)
					return
				}
			}
		}(int64(w + 1))
	}

	var prev Stats
	for i := 0; i < 5000; i++ {
		s := pool.Stats()
		if s.Logical < prev.Logical || s.Physical < prev.Physical {
			t.Errorf("stats ran backwards: %+v -> %+v", prev, s)
			break
		}
		if s.Physical > s.Logical {
			t.Errorf("physical %d exceeds logical %d", s.Physical, s.Logical)
			break
		}
		prev = s
	}
	close(stop)
	wg.Wait()
}

// Miss coalescing must bound the physical reads of a popular page: when many
// queries want the same cold page at once, one device read serves them all.
// The latency device keeps the read in flight long enough that every reader
// of a burst arrives while it is pending.
func TestBufferPoolCoalescesPopularPage(t *testing.T) {
	const (
		readers = 16
		bursts  = 5
	)
	base := stampDevice(t, 8)
	dev := NewLatencyDevice(base, 5*time.Millisecond, readers)
	pool := NewBufferPool(dev, 4)

	var total int64
	for burst := 0; burst < bursts; burst++ {
		pool.Drop() // page 7 is cold again
		start := make(chan struct{})
		var wg sync.WaitGroup
		for r := 0; r < readers; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				data, err := pool.Get(7)
				if err != nil {
					t.Error(err)
					return
				}
				if pageStamp(data) != 7 {
					t.Errorf("stamp = %d, want 7", pageStamp(data))
				}
			}()
		}
		close(start)
		wg.Wait()
	}
	total = pool.Stats().Physical
	// Perfect coalescing costs one read per burst; allow a small margin for
	// a reader that arrives after its burst's read completed and re-misses
	// (it cannot happen here — the page stays cached until Drop — but the
	// bound should not encode that much about scheduling).
	if total > bursts*2 {
		t.Errorf("popular page cost %d physical reads over %d bursts, want <= %d (coalescing broken)",
			total, bursts, bursts*2)
	}
	if total < bursts {
		t.Errorf("physical = %d, want >= %d (page re-read each burst)", total, bursts)
	}
	if got := dev.Reads(); got != total {
		t.Errorf("device serviced %d reads but pool counted %d", got, total)
	}
}

// A failed device read must propagate to every coalesced waiter and must not
// poison the pool: the next read of that page retries the device.
func TestBufferPoolCoalescedReadError(t *testing.T) {
	dev := stampDevice(t, 4)
	pool := NewBufferPool(dev, 4)
	if _, err := pool.Get(99); err == nil {
		t.Fatal("read of unallocated page succeeded")
	}
	if _, err := pool.Get(99); err == nil {
		t.Fatal("second read of unallocated page succeeded (error frame cached?)")
	}
	if s := pool.Stats(); s.Physical != 2 {
		t.Errorf("physical = %d, want 2 (failed reads are not cached)", s.Physical)
	}
	// A good page still works afterwards.
	data, err := pool.Get(2)
	if err != nil {
		t.Fatal(err)
	}
	if pageStamp(data) != 2 {
		t.Errorf("stamp = %d, want 2", pageStamp(data))
	}
}

// BenchmarkBufferPoolParallel compares page-get throughput of the classic
// single-mutex LRU pool against the sharded clock pool under parallel load
// (go test -bench BufferPoolParallel -cpu 1,2,4,8).
func BenchmarkBufferPoolParallel(b *testing.B) {
	const pages = 4096
	dev := NewMemDevice()
	buf := make([]byte, PageSize)
	for i := 0; i < pages; i++ {
		id, err := dev.Alloc()
		if err != nil {
			b.Fatal(err)
		}
		if err := dev.WritePage(id, buf); err != nil {
			b.Fatal(err)
		}
	}
	for _, cfg := range []struct {
		name string
		opts PoolOptions
	}{
		{"mutexLRU", PoolOptions{Shards: 1, Policy: PolicyLRU, NoCoalesce: true}},
		{"shardedClock", PoolOptions{}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			pool := NewBufferPool(dev, pages/4, cfg.opts)
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewSource(42))
				for pb.Next() {
					// Zipf-ish skew: most traffic on low page ids.
					id := PageID(rng.Intn(64))
					if rng.Intn(8) == 0 {
						id = PageID(rng.Intn(pages))
					}
					if _, err := pool.Get(id); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}
