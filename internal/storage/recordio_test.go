package storage

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestRefPacking(t *testing.T) {
	r := Ref{Page: 0xDEADBE, Off: 0x1234}
	got := UnpackRef(r.Pack())
	if got != r {
		t.Errorf("roundtrip = %+v, want %+v", got, r)
	}
}

func TestPageWriterCursorRoundtrip(t *testing.T) {
	dev := NewMemDevice()
	w := newPageWriter(dev)

	ref1, err := w.pos()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.writeU16(7); err != nil {
		t.Fatal(err)
	}
	if err := w.writeU32(0xCAFEBABE); err != nil {
		t.Fatal(err)
	}
	ref2, err := w.pos()
	if err != nil {
		t.Fatal(err)
	}
	if err := w.writeU64(1 << 40); err != nil {
		t.Fatal(err)
	}
	if err := w.writeF64(3.25); err != nil {
		t.Fatal(err)
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}

	pool := NewBufferPool(dev, 4)
	c := newCursor(pool, ref1)
	if v, err := c.readU16(); err != nil || v != 7 {
		t.Fatalf("readU16 = %d, %v", v, err)
	}
	if v, err := c.readU32(); err != nil || v != 0xCAFEBABE {
		t.Fatalf("readU32 = %x, %v", v, err)
	}
	c2 := newCursor(pool, ref2)
	if v, err := c2.readU64(); err != nil || v != 1<<40 {
		t.Fatalf("readU64 = %d, %v", v, err)
	}
	if v, err := c2.readF64(); err != nil || v != 3.25 {
		t.Fatalf("readF64 = %g, %v", v, err)
	}
}

// Records larger than a page must span contiguous pages transparently.
func TestRecordSpansPages(t *testing.T) {
	dev := NewMemDevice()
	w := newPageWriter(dev)

	// Burn most of the first page so the record starts near the end.
	pad := make([]byte, PageSize-10)
	if err := w.write(pad); err != nil {
		t.Fatal(err)
	}
	ref, err := w.pos()
	if err != nil {
		t.Fatal(err)
	}
	record := make([]byte, 3*PageSize)
	rng := rand.New(rand.NewSource(1))
	rng.Read(record)
	if err := w.write(record); err != nil {
		t.Fatal(err)
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}

	pool := NewBufferPool(dev, 8)
	c := newCursor(pool, ref)
	got := make([]byte, len(record))
	if err := c.read(got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, record) {
		t.Error("spanning record corrupted")
	}
}

// Property: any sequence of variable-size writes reads back identically from
// recorded positions.
func TestPageWriterRandomizedRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		dev := NewMemDevice()
		w := newPageWriter(dev)
		type rec struct {
			ref  Ref
			data []byte
		}
		var recs []rec
		for i := 0; i < 100; i++ {
			ref, err := w.pos()
			if err != nil {
				t.Fatal(err)
			}
			data := make([]byte, 1+rng.Intn(700))
			rng.Read(data)
			if err := w.write(data); err != nil {
				t.Fatal(err)
			}
			recs = append(recs, rec{ref, data})
		}
		if err := w.close(); err != nil {
			t.Fatal(err)
		}
		pool := NewBufferPool(dev, 2) // tiny pool to stress page re-reads
		order := rng.Perm(len(recs))
		for _, i := range order {
			got := make([]byte, len(recs[i].data))
			c := newCursor(pool, recs[i].ref)
			if err := c.read(got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, recs[i].data) {
				t.Fatalf("trial %d: record %d corrupted", trial, i)
			}
		}
	}
}
