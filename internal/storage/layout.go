package storage

import (
	"encoding/binary"
	"fmt"

	"mcn/internal/graph"
	"mcn/internal/index"
)

// Database file layout (all offsets in pages):
//
//	page 0            header
//	facility file     one record per edge that carries facilities
//	adjacency file    one record per node
//	adjacency tree    B+-tree: node id → packed Ref of its adjacency record
//	facility tree     B+-tree: facility id → edge id
//	edge tree         B+-tree: edge id → U end-node id
//
// Adjacency record:  count u16, then per arc:
//
//	neighbor u32, edge u32, flags u8 (bit0 = forward), facCount u16,
//	facRef u64 (NoFacRef when the edge has no facilities), d × cost f64
//
// Facility record (per edge): facCount × { facility u32, T f64 }.
//
// Version 2 appends a checksum table after the trees: one FNV-1a u64 per
// data/index page (pages 1..checksumPages, i.e. everything written before the
// table; the header page is excluded because it is read before the table is
// known, and the table's own pages are excluded because they are read once at
// Open, directly from the device). OpenWithPool loads the table into memory
// and wires it into the buffer pool, which verifies every page it reads.
// Version-1 databases (no table) still open; reads are simply unverified.
//
// Version 3 inserts the pruning-index bounds table between the trees and the
// checksum table: d × numNodes f64 values, criterion-major (the
// internal/index layout), the exact distance from each node to its nearest
// facility per cost type. Writing it before the checksum table keeps it
// covered by the page checksums; like the checksum table it is loaded once
// at Open. Version-1/2 databases still open with no bounds — queries simply
// run unpruned.
const (
	magic            = 0x4D434E31 // "MCN1"
	version          = 3
	checksumOffset64 = 14695981039346656037
	checksumPrime64  = 1099511628211
)

// PageChecksum returns the FNV-1a 64-bit hash of a page's content, the
// checksum stored in the database's checksum table.
func PageChecksum(data []byte) uint64 {
	h := uint64(checksumOffset64)
	for _, b := range data {
		h ^= uint64(b)
		h *= checksumPrime64
	}
	return h
}

type header struct {
	d             int
	directed      bool
	numNodes      int
	numEdges      int
	numFacs       int
	adjTreeRoot   PageID
	facTreeRoot   PageID
	edgeTreeRoot  PageID
	adjFileFirst  PageID
	facFileFirst  PageID
	checksumFirst PageID // first page of the checksum table (0 when absent)
	checksumPages int    // pages covered by the table: ids 1..checksumPages
	boundsFirst   PageID // first page of the pruning-bounds table (0 when absent)
}

func (h *header) encode() []byte {
	buf := make([]byte, PageSize)
	le := binary.LittleEndian
	le.PutUint32(buf[0:], magic)
	le.PutUint16(buf[4:], version)
	le.PutUint16(buf[6:], uint16(h.d))
	if h.directed {
		buf[8] = 1
	}
	le.PutUint32(buf[12:], uint32(h.numNodes))
	le.PutUint32(buf[16:], uint32(h.numEdges))
	le.PutUint32(buf[20:], uint32(h.numFacs))
	le.PutUint32(buf[24:], uint32(h.adjTreeRoot))
	le.PutUint32(buf[28:], uint32(h.facTreeRoot))
	le.PutUint32(buf[32:], uint32(h.edgeTreeRoot))
	le.PutUint32(buf[36:], uint32(h.adjFileFirst))
	le.PutUint32(buf[40:], uint32(h.facFileFirst))
	le.PutUint32(buf[44:], uint32(h.checksumFirst))
	le.PutUint32(buf[48:], uint32(h.checksumPages))
	le.PutUint32(buf[52:], uint32(h.boundsFirst))
	return buf
}

func decodeHeader(buf []byte) (*header, error) {
	le := binary.LittleEndian
	if le.Uint32(buf[0:]) != magic {
		return nil, fmt.Errorf("storage: not an MCN database (bad magic)")
	}
	v := le.Uint16(buf[4:])
	if v < 1 || v > version {
		return nil, fmt.Errorf("storage: unsupported database version %d", v)
	}
	h := &header{
		d:            int(le.Uint16(buf[6:])),
		directed:     buf[8] == 1,
		numNodes:     int(le.Uint32(buf[12:])),
		numEdges:     int(le.Uint32(buf[16:])),
		numFacs:      int(le.Uint32(buf[20:])),
		adjTreeRoot:  PageID(le.Uint32(buf[24:])),
		facTreeRoot:  PageID(le.Uint32(buf[28:])),
		edgeTreeRoot: PageID(le.Uint32(buf[32:])),
		adjFileFirst: PageID(le.Uint32(buf[36:])),
		facFileFirst: PageID(le.Uint32(buf[40:])),
	}
	if v >= 2 {
		h.checksumFirst = PageID(le.Uint32(buf[44:]))
		h.checksumPages = int(le.Uint32(buf[48:]))
	}
	if v >= 3 {
		h.boundsFirst = PageID(le.Uint32(buf[52:]))
	}
	return h, nil
}

// Build writes the database for g onto dev, which must be empty. The
// pruning-bounds table is computed and embedded as part of the build; use
// BuildIndexed to also receive the computed index (mcngen reports its size
// and build time).
func Build(g *graph.Graph, dev Device) error {
	_, err := BuildIndexed(g, dev)
	return err
}

// BuildIndexed is Build, returning the pruning index it computed and
// persisted.
func BuildIndexed(g *graph.Graph, dev Device) (*index.Bounds, error) {
	if dev.NumPages() != 0 {
		return nil, fmt.Errorf("storage: device not empty (%d pages)", dev.NumPages())
	}
	hdrPage, err := dev.Alloc()
	if err != nil {
		return nil, err
	}
	if hdrPage != 0 {
		return nil, fmt.Errorf("storage: header page allocated at %d", hdrPage)
	}
	h := &header{
		d:        g.D(),
		directed: g.Directed(),
		numNodes: g.NumNodes(),
		numEdges: g.NumEdges(),
		numFacs:  g.NumFacilities(),
	}

	// Facility file: one record per edge with facilities.
	facRefs := make([]uint64, g.NumEdges())
	fw := newPageWriter(dev)
	first := true
	for e := 0; e < g.NumEdges(); e++ {
		facs := g.EdgeFacilities(graph.EdgeID(e))
		if len(facs) == 0 {
			facRefs[e] = graph.NoFacRef
			continue
		}
		ref, err := fw.pos()
		if err != nil {
			return nil, err
		}
		if first {
			h.facFileFirst = ref.Page
			first = false
		}
		facRefs[e] = ref.Pack()
		for _, p := range facs {
			if err := fw.writeU32(uint32(p)); err != nil {
				return nil, err
			}
			if err := fw.writeF64(g.Facility(p).T); err != nil {
				return nil, err
			}
		}
	}
	if err := fw.close(); err != nil {
		return nil, err
	}

	// Adjacency file: one record per node.
	adjRefs := make([]uint64, g.NumNodes())
	aw := newPageWriter(dev)
	for v := 0; v < g.NumNodes(); v++ {
		ref, err := aw.pos()
		if err != nil {
			return nil, err
		}
		if v == 0 {
			h.adjFileFirst = ref.Page
		}
		adjRefs[v] = ref.Pack()
		arcs := g.Arcs(graph.NodeID(v))
		if err := aw.writeU16(uint16(len(arcs))); err != nil {
			return nil, err
		}
		for _, a := range arcs {
			edge := g.Edge(a.Edge)
			if err := aw.writeU32(uint32(a.Neighbor)); err != nil {
				return nil, err
			}
			if err := aw.writeU32(uint32(a.Edge)); err != nil {
				return nil, err
			}
			var flags byte
			if a.Forward {
				flags |= 1
			}
			if err := aw.write([]byte{flags}); err != nil {
				return nil, err
			}
			if err := aw.writeU16(uint16(len(g.EdgeFacilities(a.Edge)))); err != nil {
				return nil, err
			}
			if err := aw.writeU64(facRefs[a.Edge]); err != nil {
				return nil, err
			}
			for _, w := range edge.W {
				if err := aw.writeF64(w); err != nil {
					return nil, err
				}
			}
		}
	}
	if err := aw.close(); err != nil {
		return nil, err
	}

	// Indexes.
	nodeKeys := make([]uint64, g.NumNodes())
	for v := range nodeKeys {
		nodeKeys[v] = uint64(v)
	}
	if h.adjTreeRoot, err = BuildBTree(dev, nodeKeys, adjRefs); err != nil {
		return nil, fmt.Errorf("storage: adjacency tree: %w", err)
	}

	facKeys := make([]uint64, g.NumFacilities())
	facVals := make([]uint64, g.NumFacilities())
	for p := range facKeys {
		facKeys[p] = uint64(p)
		facVals[p] = uint64(g.Facility(graph.FacilityID(p)).Edge)
	}
	if h.facTreeRoot, err = BuildBTree(dev, facKeys, facVals); err != nil {
		return nil, fmt.Errorf("storage: facility tree: %w", err)
	}

	edgeKeys := make([]uint64, g.NumEdges())
	edgeVals := make([]uint64, g.NumEdges())
	for e := range edgeKeys {
		edgeKeys[e] = uint64(e)
		edgeVals[e] = uint64(g.Edge(graph.EdgeID(e)).U)
	}
	if h.edgeTreeRoot, err = BuildBTree(dev, edgeKeys, edgeVals); err != nil {
		return nil, fmt.Errorf("storage: edge tree: %w", err)
	}

	// Pruning-bounds table (layout v3): the per-criterion nearest-facility
	// distances, written before the checksum table so its pages are covered
	// by the checksums.
	bounds := index.FromGraph(g)
	bw := newPageWriter(dev)
	bref, err := bw.pos()
	if err != nil {
		return nil, fmt.Errorf("storage: bounds table: %w", err)
	}
	h.boundsFirst = bref.Page
	for _, v := range bounds.Data() {
		if err := bw.writeF64(v); err != nil {
			return nil, fmt.Errorf("storage: bounds table: %w", err)
		}
	}
	if err := bw.close(); err != nil {
		return nil, fmt.Errorf("storage: bounds table: %w", err)
	}

	// Checksum table: one FNV-1a u64 per page written so far (1..n-1; the
	// header page is written last, after the table's location is known, and
	// is excluded — see the layout comment).
	n := dev.NumPages()
	h.checksumPages = n - 1
	cw := newPageWriter(dev)
	ref, err := cw.pos()
	if err != nil {
		return nil, fmt.Errorf("storage: checksum table: %w", err)
	}
	h.checksumFirst = ref.Page
	page := make([]byte, PageSize)
	for p := 1; p < n; p++ {
		if err := dev.ReadPage(PageID(p), page); err != nil {
			return nil, fmt.Errorf("storage: checksum table: %w", err)
		}
		if err := cw.writeU64(PageChecksum(page)); err != nil {
			return nil, fmt.Errorf("storage: checksum table: %w", err)
		}
	}
	if err := cw.close(); err != nil {
		return nil, fmt.Errorf("storage: checksum table: %w", err)
	}

	return bounds, dev.WritePage(0, h.encode())
}

// BuildMem builds the database for g on a fresh in-memory device.
func BuildMem(g *graph.Graph) (*MemDevice, error) {
	dev := NewMemDevice()
	if err := Build(g, dev); err != nil {
		return nil, err
	}
	return dev, nil
}
