package storage

import (
	"sync/atomic"
	"time"
)

// LatencyDevice wraps a Device with a fixed service time per read and a
// bounded number of concurrently serviced reads — the behaviour of a real
// block device with a command queue (a cloud volume or SATA SSD: every read
// costs its latency, and at most QueueDepth requests make progress at once;
// the rest wait in the queue). It turns in-memory experiments I/O-bound, so
// throughput measurements exercise how the buffer pool schedules device
// traffic rather than raw CPU.
//
// Writes and allocation pass through untouched: the experiments build their
// database at memory speed and only pay latency at query time.
type LatencyDevice struct {
	dev     Device
	latency time.Duration
	queue   chan struct{}
	reads   atomic.Int64
}

// NewLatencyDevice wraps dev with latency per read and queueDepth concurrent
// reads (values < 1 select depth 1).
func NewLatencyDevice(dev Device, latency time.Duration, queueDepth int) *LatencyDevice {
	if queueDepth < 1 {
		queueDepth = 1
	}
	return &LatencyDevice{dev: dev, latency: latency, queue: make(chan struct{}, queueDepth)}
}

// Reads returns the number of reads the device has serviced.
func (d *LatencyDevice) Reads() int64 { return d.reads.Load() }

// ReadPage implements Device: it waits for a queue slot, pays the service
// latency and then reads the wrapped device.
func (d *LatencyDevice) ReadPage(id PageID, buf []byte) error {
	d.queue <- struct{}{}
	time.Sleep(d.latency)
	err := d.dev.ReadPage(id, buf)
	<-d.queue
	d.reads.Add(1)
	return err
}

// WritePage implements Device.
func (d *LatencyDevice) WritePage(id PageID, buf []byte) error { return d.dev.WritePage(id, buf) }

// Alloc implements Device.
func (d *LatencyDevice) Alloc() (PageID, error) { return d.dev.Alloc() }

// NumPages implements Device.
func (d *LatencyDevice) NumPages() int { return d.dev.NumPages() }

// Close implements Device.
func (d *LatencyDevice) Close() error { return d.dev.Close() }
