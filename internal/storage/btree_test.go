package storage

import (
	"math/rand"
	"sort"
	"testing"
)

func buildTree(t *testing.T, keys, vals []uint64) (*BTree, *BufferPool) {
	t.Helper()
	dev := NewMemDevice()
	root, err := BuildBTree(dev, keys, vals)
	if err != nil {
		t.Fatalf("BuildBTree: %v", err)
	}
	pool := NewBufferPool(dev, 64)
	return OpenBTree(pool, root), pool
}

func TestBTreeEmpty(t *testing.T) {
	tree, _ := buildTree(t, nil, nil)
	if _, ok, err := tree.Lookup(42); err != nil || ok {
		t.Errorf("empty tree lookup = ok=%v, err=%v; want miss", ok, err)
	}
}

func TestBTreeSingleLeaf(t *testing.T) {
	keys := []uint64{2, 5, 9}
	vals := []uint64{20, 50, 90}
	tree, _ := buildTree(t, keys, vals)
	for i, k := range keys {
		v, ok, err := tree.Lookup(k)
		if err != nil || !ok || v != vals[i] {
			t.Errorf("Lookup(%d) = %d, %v, %v; want %d", k, v, ok, err, vals[i])
		}
	}
	for _, k := range []uint64{0, 3, 10} {
		if _, ok, _ := tree.Lookup(k); ok {
			t.Errorf("Lookup(%d) hit; want miss", k)
		}
	}
}

func TestBTreeMultiLevel(t *testing.T) {
	// Enough keys for three levels: > leafFanout * innerFanout would be
	// huge; two levels need > leafFanout (255). Use sparse keys to exercise
	// inner-node routing on misses too.
	n := leafFanout*innerFanout/40 + 3*leafFanout // comfortably multi-level
	keys := make([]uint64, n)
	vals := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i * 3)
		vals[i] = uint64(i * 7)
	}
	tree, pool := buildTree(t, keys, vals)
	for _, i := range []int{0, 1, n / 2, n - 2, n - 1} {
		v, ok, err := tree.Lookup(keys[i])
		if err != nil || !ok || v != vals[i] {
			t.Fatalf("Lookup(%d) = %d, %v, %v; want %d", keys[i], v, ok, err, vals[i])
		}
	}
	// Misses between, below and above all keys.
	for _, k := range []uint64{1, 4, keys[n-1] + 1, keys[n-1] + 1000} {
		if _, ok, _ := tree.Lookup(k); ok {
			t.Errorf("Lookup(%d) hit; want miss", k)
		}
	}
	if pool.Stats().Logical == 0 {
		t.Error("lookups did not touch the buffer pool")
	}
}

func TestBTreeRejectsUnsortedKeys(t *testing.T) {
	dev := NewMemDevice()
	if _, err := BuildBTree(dev, []uint64{3, 1}, []uint64{0, 0}); err == nil {
		t.Error("unsorted keys accepted")
	}
	if _, err := BuildBTree(dev, []uint64{3, 3}, []uint64{0, 0}); err == nil {
		t.Error("duplicate keys accepted")
	}
	if _, err := BuildBTree(dev, []uint64{1}, []uint64{0, 0}); err == nil {
		t.Error("mismatched lengths accepted")
	}
}

// Property test: tree lookups agree with a map oracle across random key
// sets, including lookups of absent keys.
func TestBTreeMatchesMap(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(3000)
		oracle := make(map[uint64]uint64, n)
		for len(oracle) < n {
			oracle[uint64(rng.Intn(10_000))] = rng.Uint64()
		}
		keys := make([]uint64, 0, n)
		for k := range oracle {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		vals := make([]uint64, n)
		for i, k := range keys {
			vals[i] = oracle[k]
		}
		tree, _ := buildTree(t, keys, vals)
		for probe := uint64(0); probe < 10_000; probe += uint64(1 + rng.Intn(37)) {
			want, wantOK := oracle[probe]
			got, ok, err := tree.Lookup(probe)
			if err != nil {
				t.Fatal(err)
			}
			if ok != wantOK || (ok && got != want) {
				t.Fatalf("trial %d: Lookup(%d) = (%d, %v), want (%d, %v)", trial, probe, got, ok, want, wantOK)
			}
		}
	}
}
