package storage

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// scriptDevice wraps a device with per-page scripted transient failures and
// an optional gate that holds every read until released, so tests can park a
// leader mid-read while waiters pile onto the coalesced record.
type scriptDevice struct {
	Device
	gate chan struct{} // nil = no gating

	mu    sync.Mutex
	fails map[PageID]int // remaining transient failures per page
}

func newScriptDevice(t *testing.T, pages int) *scriptDevice {
	t.Helper()
	dev := NewMemDevice()
	buf := make([]byte, PageSize)
	for i := 0; i < pages; i++ {
		id, err := dev.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		buf[0] = byte(i)
		if err := dev.WritePage(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	return &scriptDevice{Device: dev, fails: make(map[PageID]int)}
}

func (d *scriptDevice) setFails(id PageID, n int) {
	d.mu.Lock()
	d.fails[id] = n
	d.mu.Unlock()
}

func (d *scriptDevice) ReadPage(id PageID, buf []byte) error {
	if d.gate != nil {
		<-d.gate
	}
	d.mu.Lock()
	n := d.fails[id]
	if n > 0 {
		d.fails[id] = n - 1
		d.mu.Unlock()
		return MarkTransient(fmt.Errorf("scripted transient failure on page %d", id))
	}
	d.mu.Unlock()
	return d.Device.ReadPage(id, buf)
}

// coalescedCount sums the pool's coalesced-read counters.
func coalescedCount(pool *BufferPool) int64 {
	var n int64
	for _, s := range pool.ShardStats() {
		n += s.Coalesced
	}
	return n
}

// When the leader of a coalesced read exhausts its retry budget, every waiter
// must observe that same transient-classified error — and the failure must
// not be cached, so the next read retries the device.
func TestCoalescedWaitersObserveLeaderRetryError(t *testing.T) {
	dev := newScriptDevice(t, 4)
	dev.gate = make(chan struct{})
	dev.setFails(3, 1_000) // beyond any retry budget
	pool := NewBufferPool(dev, 4, PoolOptions{
		Shards: 1,
		Retry:  RetryPolicy{MaxRetries: 2, BaseBackoff: time.Microsecond, MaxBackoff: 10 * time.Microsecond},
	})

	const waiters = 8
	errs := make(chan error, waiters+1)
	for i := 0; i < waiters+1; i++ {
		go func() {
			_, err := pool.Get(3)
			errs <- err
		}()
	}
	// The leader is parked inside ReadPage by the gate; wait until every
	// other goroutine has registered on its inflight record, then let the
	// retry schedule run.
	deadline := time.Now().Add(5 * time.Second)
	for coalescedCount(pool) < waiters {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d readers coalesced", coalescedCount(pool), waiters)
		}
		time.Sleep(100 * time.Microsecond)
	}
	close(dev.gate)
	for i := 0; i < waiters+1; i++ {
		err := <-errs
		if err == nil {
			t.Fatal("read of failing page succeeded")
		}
		if !IsTransient(err) {
			t.Fatalf("coalesced error lost its transient classification: %v", err)
		}
	}
	fs := pool.FailureStats()
	if fs.Transient != 1 || fs.Retries != 2 {
		t.Fatalf("one leader with 2 retries should record {Transient:1 Retries:2}, got %+v", fs)
	}
	// The error was shared, not cached: a later read retries the device and
	// succeeds once the fault clears.
	dev.setFails(3, 0)
	if _, err := pool.Get(3); err != nil {
		t.Fatalf("page still failing after fault cleared: %v", err)
	}
}

// A waiter whose own context is live must not inherit the leader's
// cancellation: it re-issues the read as the new leader and gets the data.
func TestCoalescedWaiterReissuesAfterLeaderCancel(t *testing.T) {
	dev := newScriptDevice(t, 8)
	dev.setFails(5, 1_000)
	pool := NewBufferPool(dev, 4, PoolOptions{
		Shards: 1,
		Retry:  RetryPolicy{MaxRetries: 50, BaseBackoff: 20 * time.Millisecond, MaxBackoff: 20 * time.Millisecond},
	})

	leaderCtx, cancel := context.WithCancel(context.Background())
	leaderErr := make(chan error, 1)
	go func() {
		_, err := pool.GetCtx(leaderCtx, 5)
		leaderErr <- err
	}()
	// Wait for the leader to fail its first attempt and enter backoff, then
	// join as a waiter with an independent, live context.
	deadline := time.Now().Add(5 * time.Second)
	for pool.FailureStats().Retries == 0 {
		if time.Now().After(deadline) {
			t.Fatal("leader never entered its retry schedule")
		}
		time.Sleep(time.Millisecond)
	}
	waiterErr := make(chan error, 1)
	var waiterData []byte
	go func() {
		data, err := pool.GetCtx(context.Background(), 5)
		waiterData = data
		waiterErr <- err
	}()
	for coalescedCount(pool) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never coalesced onto the leader's read")
		}
		time.Sleep(time.Millisecond)
	}
	// Kill only the leader's context: its backoff sleep aborts with a ctx
	// error. Then heal the page — the waiter's re-issued read (it is the new
	// leader now, retrying under its own live ctx) must succeed.
	cancel()
	if err := <-leaderErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled leader returned %v, want context.Canceled", err)
	}
	dev.setFails(5, 0)
	if err := <-waiterErr; err != nil {
		t.Fatalf("live waiter inherited the leader's cancellation: %v", err)
	}
	if waiterData[0] != 5 {
		t.Fatalf("waiter read wrong content: %d", waiterData[0])
	}
}

// Context cancellation must cut a retry backoff sleep short instead of
// running out the full schedule.
func TestCtxCancelAbortsBackoffSleep(t *testing.T) {
	dev := newScriptDevice(t, 2)
	dev.setFails(1, 1_000)
	pool := NewBufferPool(dev, 4, PoolOptions{
		// Full schedule would sleep minutes; the deadline must cut it off.
		Retry: RetryPolicy{MaxRetries: 1_000, BaseBackoff: 50 * time.Millisecond, MaxBackoff: time.Minute},
	})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := pool.GetCtx(ctx, 1)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("read succeeded on an always-failing page")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v to cut the backoff sleep", elapsed)
	}
}
