package storage

import (
	"context"
	"encoding/binary"
	"fmt"
)

// The adjacency, facility and edge trees of the paper's storage scheme are
// static indexes built once when the database is written. We implement them
// as bulk-loaded B+-trees over uint64 keys and values, stored on the same
// paged device as the data files so that index traversals are charged to the
// same buffer pool the paper measures.
//
// Page layout:
//
//	byte 0      node kind (leafKind or innerKind)
//	bytes 1..2  entry count (uint16)
//	entries     leaf:  key uint64, value uint64        (16 bytes)
//	            inner: firstKey uint64, child uint32   (12 bytes)
//
// Inner entries store the smallest key reachable through the child, enabling
// upper-bound binary search during descent.
const (
	leafKind  = 1
	innerKind = 2

	btreeHeader = 3
	leafEntry   = 16
	innerEntry  = 12

	leafFanout  = (PageSize - btreeHeader) / leafEntry
	innerFanout = (PageSize - btreeHeader) / innerEntry
)

// BTree is a read-only handle to a bulk-loaded B+-tree.
type BTree struct {
	pool *BufferPool
	root PageID
	// empty marks a tree built from zero entries; lookups always miss.
	empty bool
}

// BuildBTree bulk-loads the given key-sorted entries onto dev and returns
// the root page id. Keys must be strictly increasing.
func BuildBTree(dev Device, keys []uint64, values []uint64) (PageID, error) {
	if len(keys) != len(values) {
		return 0, fmt.Errorf("storage: btree bulk-load with %d keys, %d values", len(keys), len(values))
	}
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			return 0, fmt.Errorf("storage: btree keys not strictly increasing at %d", i)
		}
	}
	if len(keys) == 0 {
		// Allocate a single empty leaf so the tree has a valid root.
		return writeBTreeNode(dev, leafKind, nil, nil, nil)
	}

	// Level 0: leaves.
	type nodeRef struct {
		firstKey uint64
		page     PageID
	}
	var level []nodeRef
	for i := 0; i < len(keys); i += leafFanout {
		j := i + leafFanout
		if j > len(keys) {
			j = len(keys)
		}
		id, err := writeBTreeNode(dev, leafKind, keys[i:j], values[i:j], nil)
		if err != nil {
			return 0, err
		}
		level = append(level, nodeRef{firstKey: keys[i], page: id})
	}
	// Upper levels.
	for len(level) > 1 {
		var next []nodeRef
		for i := 0; i < len(level); i += innerFanout {
			j := i + innerFanout
			if j > len(level) {
				j = len(level)
			}
			ks := make([]uint64, j-i)
			ch := make([]PageID, j-i)
			for k, nr := range level[i:j] {
				ks[k] = nr.firstKey
				ch[k] = nr.page
			}
			id, err := writeBTreeNode(dev, innerKind, ks, nil, ch)
			if err != nil {
				return 0, err
			}
			next = append(next, nodeRef{firstKey: ks[0], page: id})
		}
		level = next
	}
	return level[0].page, nil
}

func writeBTreeNode(dev Device, kind byte, keys, values []uint64, children []PageID) (PageID, error) {
	id, err := dev.Alloc()
	if err != nil {
		return 0, err
	}
	buf := make([]byte, PageSize)
	buf[0] = kind
	binary.LittleEndian.PutUint16(buf[1:3], uint16(len(keys)))
	off := btreeHeader
	for i, k := range keys {
		binary.LittleEndian.PutUint64(buf[off:], k)
		off += 8
		if kind == leafKind {
			binary.LittleEndian.PutUint64(buf[off:], values[i])
			off += 8
		} else {
			binary.LittleEndian.PutUint32(buf[off:], uint32(children[i]))
			off += 4
		}
	}
	return id, dev.WritePage(id, buf)
}

// OpenBTree returns a lookup handle for the tree rooted at root.
func OpenBTree(pool *BufferPool, root PageID) *BTree {
	return &BTree{pool: pool, root: root}
}

// Lookup returns the value stored under key, with ok=false when absent.
func (t *BTree) Lookup(key uint64) (value uint64, ok bool, err error) {
	return t.LookupCtx(nil, key)
}

// LookupCtx is Lookup with the page reads bound to ctx (see
// BufferPool.GetCtx); a nil ctx behaves like Lookup.
func (t *BTree) LookupCtx(ctx context.Context, key uint64) (value uint64, ok bool, err error) {
	page := t.root
	for {
		data, err := t.pool.GetCtx(ctx, page)
		if err != nil {
			return 0, false, err
		}
		kind := data[0]
		n := int(binary.LittleEndian.Uint16(data[1:3]))
		switch kind {
		case leafKind:
			lo, hi := 0, n
			for lo < hi {
				mid := (lo + hi) / 2
				k := binary.LittleEndian.Uint64(data[btreeHeader+mid*leafEntry:])
				switch {
				case k == key:
					v := binary.LittleEndian.Uint64(data[btreeHeader+mid*leafEntry+8:])
					return v, true, nil
				case k < key:
					lo = mid + 1
				default:
					hi = mid
				}
			}
			return 0, false, nil
		case innerKind:
			if n == 0 {
				return 0, false, fmt.Errorf("storage: empty inner btree node at page %d", page)
			}
			// Largest i with firstKey[i] <= key; keys below firstKey[0]
			// cannot exist but descend leftmost for a definitive miss.
			lo, hi := 0, n
			for lo < hi {
				mid := (lo + hi) / 2
				k := binary.LittleEndian.Uint64(data[btreeHeader+mid*innerEntry:])
				if k <= key {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			idx := lo - 1
			if idx < 0 {
				idx = 0
			}
			page = PageID(binary.LittleEndian.Uint32(data[btreeHeader+idx*innerEntry+8:]))
		default:
			return 0, false, fmt.Errorf("storage: page %d is not a btree node (kind %d)", page, kind)
		}
	}
}
