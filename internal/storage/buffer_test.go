package storage

import (
	"encoding/binary"
	"math/rand"
	"testing"
)

// stampDevice allocates n pages, each stamped with its id.
func stampDevice(t *testing.T, n int) *MemDevice {
	t.Helper()
	dev := NewMemDevice()
	buf := make([]byte, PageSize)
	for i := 0; i < n; i++ {
		id, err := dev.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		binary.LittleEndian.PutUint32(buf, uint32(id))
		if err := dev.WritePage(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	return dev
}

func pageStamp(data []byte) uint32 { return binary.LittleEndian.Uint32(data) }

func TestBufferPoolHitAndMiss(t *testing.T) {
	dev := stampDevice(t, 4)
	pool := NewBufferPool(dev, 2)

	data, err := pool.Get(3)
	if err != nil {
		t.Fatal(err)
	}
	if pageStamp(data) != 3 {
		t.Fatalf("stamp = %d, want 3", pageStamp(data))
	}
	if s := pool.Stats(); s.Logical != 1 || s.Physical != 1 {
		t.Fatalf("stats after miss: %+v", s)
	}
	if _, err := pool.Get(3); err != nil {
		t.Fatal(err)
	}
	if s := pool.Stats(); s.Logical != 2 || s.Physical != 1 {
		t.Fatalf("stats after hit: %+v", s)
	}
}

func TestBufferPoolLRUEviction(t *testing.T) {
	dev := stampDevice(t, 5)
	pool := NewBufferPool(dev, 2)
	mustGet := func(id PageID) {
		t.Helper()
		if _, err := pool.Get(id); err != nil {
			t.Fatal(err)
		}
	}
	mustGet(0)
	mustGet(1)
	mustGet(0) // 0 becomes MRU; LRU order: 1, 0
	mustGet(2) // evicts 1
	base := pool.Stats().Physical
	mustGet(0) // must still be cached
	if got := pool.Stats().Physical; got != base {
		t.Errorf("page 0 was evicted out of LRU order (physical %d -> %d)", base, got)
	}
	mustGet(1) // must have been evicted
	if got := pool.Stats().Physical; got != base+1 {
		t.Errorf("page 1 unexpectedly cached (physical %d -> %d)", base, got)
	}
	if pool.Len() != 2 {
		t.Errorf("Len = %d, want 2", pool.Len())
	}
}

func TestBufferPoolZeroCapacity(t *testing.T) {
	dev := stampDevice(t, 3)
	pool := NewBufferPool(dev, 0)
	for i := 0; i < 5; i++ {
		if _, err := pool.Get(1); err != nil {
			t.Fatal(err)
		}
	}
	s := pool.Stats()
	if s.Logical != 5 || s.Physical != 5 {
		t.Errorf("zero-capacity pool must miss every read: %+v", s)
	}
	if pool.Len() != 0 {
		t.Errorf("zero-capacity pool cached %d pages", pool.Len())
	}
}

func TestBufferPoolFrac(t *testing.T) {
	dev := stampDevice(t, 200)
	pool := NewBufferPoolFrac(dev, 0.01)
	if pool.Capacity() != 2 {
		t.Errorf("capacity = %d, want 2 (1%% of 200)", pool.Capacity())
	}
}

func TestBufferPoolResetAndDrop(t *testing.T) {
	dev := stampDevice(t, 3)
	pool := NewBufferPool(dev, 3)
	if _, err := pool.Get(0); err != nil {
		t.Fatal(err)
	}
	pool.ResetStats()
	if s := pool.Stats(); s.Logical != 0 || s.Physical != 0 {
		t.Errorf("stats not reset: %+v", s)
	}
	if _, err := pool.Get(0); err != nil {
		t.Fatal(err)
	}
	if s := pool.Stats(); s.Physical != 0 {
		t.Error("ResetStats must keep cached pages")
	}
	pool.Drop()
	if _, err := pool.Get(0); err != nil {
		t.Fatal(err)
	}
	if s := pool.Stats(); s.Physical != 1 {
		t.Error("Drop must evict cached pages")
	}
}

// Model-based test: the pool must behave exactly like a reference LRU.
func TestBufferPoolMatchesReferenceLRU(t *testing.T) {
	const pages = 30
	dev := stampDevice(t, pages)
	for _, capacity := range []int{1, 2, 7, 30} {
		pool := NewBufferPool(dev, capacity)
		var ref []PageID // ref[0] is MRU
		rng := rand.New(rand.NewSource(int64(capacity)))
		for step := 0; step < 3000; step++ {
			id := PageID(rng.Intn(pages))
			before := pool.Stats().Physical
			data, err := pool.Get(id)
			if err != nil {
				t.Fatal(err)
			}
			if pageStamp(data) != uint32(id) {
				t.Fatalf("cap %d: wrong contents for page %d", capacity, id)
			}
			missed := pool.Stats().Physical > before

			inRef := -1
			for i, r := range ref {
				if r == id {
					inRef = i
					break
				}
			}
			if (inRef == -1) != missed {
				t.Fatalf("cap %d step %d: miss=%v but reference cached=%v", capacity, step, missed, inRef != -1)
			}
			if inRef >= 0 {
				ref = append(ref[:inRef], ref[inRef+1:]...)
			}
			ref = append([]PageID{id}, ref...)
			if len(ref) > capacity {
				ref = ref[:capacity]
			}
		}
	}
}
