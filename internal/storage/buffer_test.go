package storage

import (
	"encoding/binary"
	"math/rand"
	"testing"
	"time"
)

// stampDevice allocates n pages, each stamped with its id.
func stampDevice(t *testing.T, n int) *MemDevice {
	t.Helper()
	dev := NewMemDevice()
	buf := make([]byte, PageSize)
	for i := 0; i < n; i++ {
		id, err := dev.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		binary.LittleEndian.PutUint32(buf, uint32(id))
		if err := dev.WritePage(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	return dev
}

func pageStamp(data []byte) uint32 { return binary.LittleEndian.Uint32(data) }

func TestBufferPoolHitAndMiss(t *testing.T) {
	dev := stampDevice(t, 4)
	pool := NewBufferPool(dev, 2)

	data, err := pool.Get(3)
	if err != nil {
		t.Fatal(err)
	}
	if pageStamp(data) != 3 {
		t.Fatalf("stamp = %d, want 3", pageStamp(data))
	}
	if s := pool.Stats(); s.Logical != 1 || s.Physical != 1 {
		t.Fatalf("stats after miss: %+v", s)
	}
	if _, err := pool.Get(3); err != nil {
		t.Fatal(err)
	}
	if s := pool.Stats(); s.Logical != 2 || s.Physical != 1 {
		t.Fatalf("stats after hit: %+v", s)
	}
}

func TestBufferPoolLRUEviction(t *testing.T) {
	dev := stampDevice(t, 5)
	pool := NewBufferPool(dev, 2, PoolOptions{Shards: 1, Policy: PolicyLRU})
	mustGet := func(id PageID) {
		t.Helper()
		if _, err := pool.Get(id); err != nil {
			t.Fatal(err)
		}
	}
	mustGet(0)
	mustGet(1)
	mustGet(0) // 0 becomes MRU; LRU order: 1, 0
	mustGet(2) // evicts 1
	base := pool.Stats().Physical
	mustGet(0) // must still be cached
	if got := pool.Stats().Physical; got != base {
		t.Errorf("page 0 was evicted out of LRU order (physical %d -> %d)", base, got)
	}
	mustGet(1) // must have been evicted
	if got := pool.Stats().Physical; got != base+1 {
		t.Errorf("page 1 unexpectedly cached (physical %d -> %d)", base, got)
	}
	if pool.Len() != 2 {
		t.Errorf("Len = %d, want 2", pool.Len())
	}
}

func TestBufferPoolZeroCapacity(t *testing.T) {
	dev := stampDevice(t, 3)
	pool := NewBufferPool(dev, 0)
	for i := 0; i < 5; i++ {
		if _, err := pool.Get(1); err != nil {
			t.Fatal(err)
		}
	}
	s := pool.Stats()
	if s.Logical != 5 || s.Physical != 5 {
		t.Errorf("zero-capacity pool must miss every read: %+v", s)
	}
	if pool.Len() != 0 {
		t.Errorf("zero-capacity pool cached %d pages", pool.Len())
	}
}

func TestBufferPoolFrac(t *testing.T) {
	dev := stampDevice(t, 200)
	pool := NewBufferPoolFrac(dev, 0.01)
	if pool.Capacity() != 2 {
		t.Errorf("capacity = %d, want 2 (1%% of 200)", pool.Capacity())
	}
}

func TestBufferPoolResetAndDrop(t *testing.T) {
	dev := stampDevice(t, 3)
	pool := NewBufferPool(dev, 3)
	if _, err := pool.Get(0); err != nil {
		t.Fatal(err)
	}
	pool.ResetStats()
	if s := pool.Stats(); s.Logical != 0 || s.Physical != 0 {
		t.Errorf("stats not reset: %+v", s)
	}
	if _, err := pool.Get(0); err != nil {
		t.Fatal(err)
	}
	if s := pool.Stats(); s.Physical != 0 {
		t.Error("ResetStats must keep cached pages")
	}
	pool.Drop()
	if _, err := pool.Get(0); err != nil {
		t.Fatal(err)
	}
	if s := pool.Stats(); s.Physical != 1 {
		t.Error("Drop must evict cached pages")
	}
}

// Model-based test: a single-shard LRU pool must behave exactly like a
// reference LRU (the pre-sharding pool's semantics).
func TestBufferPoolMatchesReferenceLRU(t *testing.T) {
	const pages = 30
	dev := stampDevice(t, pages)
	for _, capacity := range []int{1, 2, 7, 30} {
		pool := NewBufferPool(dev, capacity, PoolOptions{Shards: 1, Policy: PolicyLRU})
		var ref []PageID // ref[0] is MRU
		rng := rand.New(rand.NewSource(int64(capacity)))
		for step := 0; step < 3000; step++ {
			id := PageID(rng.Intn(pages))
			before := pool.Stats().Physical
			data, err := pool.Get(id)
			if err != nil {
				t.Fatal(err)
			}
			if pageStamp(data) != uint32(id) {
				t.Fatalf("cap %d: wrong contents for page %d", capacity, id)
			}
			missed := pool.Stats().Physical > before

			inRef := -1
			for i, r := range ref {
				if r == id {
					inRef = i
					break
				}
			}
			if (inRef == -1) != missed {
				t.Fatalf("cap %d step %d: miss=%v but reference cached=%v", capacity, step, missed, inRef != -1)
			}
			if inRef >= 0 {
				ref = append(ref[:inRef], ref[inRef+1:]...)
			}
			ref = append([]PageID{id}, ref...)
			if len(ref) > capacity {
				ref = ref[:capacity]
			}
		}
	}
}

// Model-based test: a single-shard clock pool must behave exactly like a
// reference CLOCK (second-chance) cache.
func TestBufferPoolMatchesReferenceClock(t *testing.T) {
	const pages = 30
	dev := stampDevice(t, pages)
	for _, capacity := range []int{1, 2, 7, 30} {
		pool := NewBufferPool(dev, capacity, PoolOptions{Shards: 1, Policy: PolicyClock})

		// Reference clock: fixed slots, a hand, and per-slot ref bits.
		type slot struct {
			id  PageID
			ref bool
		}
		var ring []slot
		hand := 0
		cached := func(id PageID) int {
			for i := range ring {
				if ring[i].id == id {
					return i
				}
			}
			return -1
		}
		rng := rand.New(rand.NewSource(int64(capacity)))
		for step := 0; step < 3000; step++ {
			id := PageID(rng.Intn(pages))
			before := pool.Stats().Physical
			data, err := pool.Get(id)
			if err != nil {
				t.Fatal(err)
			}
			if pageStamp(data) != uint32(id) {
				t.Fatalf("cap %d: wrong contents for page %d", capacity, id)
			}
			missed := pool.Stats().Physical > before

			if i := cached(id); i >= 0 {
				if missed {
					t.Fatalf("cap %d step %d: miss but reference has page %d cached", capacity, step, id)
				}
				ring[i].ref = true
				continue
			}
			if !missed {
				t.Fatalf("cap %d step %d: hit but reference does not cache page %d", capacity, step, id)
			}
			if len(ring) < capacity {
				ring = append(ring, slot{id: id})
				continue
			}
			for ring[hand].ref {
				ring[hand].ref = false
				hand = (hand + 1) % capacity
			}
			ring[hand] = slot{id: id}
			hand = (hand + 1) % capacity
		}
	}
}

// Sharded pools must respect their total capacity, hash every page to a
// stable shard, and keep serving correct contents through eviction churn.
func TestBufferPoolSharded(t *testing.T) {
	const pages = 256
	dev := stampDevice(t, pages)
	for _, shards := range []int{2, 4, 8} {
		pool := NewBufferPool(dev, 32, PoolOptions{Shards: shards})
		if got := pool.Shards(); got != shards {
			t.Fatalf("Shards() = %d, want %d", got, shards)
		}
		rng := rand.New(rand.NewSource(int64(shards)))
		for step := 0; step < 5000; step++ {
			id := PageID(rng.Intn(pages))
			data, err := pool.Get(id)
			if err != nil {
				t.Fatal(err)
			}
			if pageStamp(data) != uint32(id) {
				t.Fatalf("shards=%d: page %d returned stamp %d", shards, id, pageStamp(data))
			}
			if n := pool.Len(); n > 32 {
				t.Fatalf("shards=%d: pool holds %d pages, capacity 32", shards, n)
			}
		}
		s := pool.Stats()
		if s.Logical != 5000 {
			t.Errorf("shards=%d: logical = %d, want 5000", shards, s.Logical)
		}
		if s.Physical < int64(pages-32) || s.Physical > s.Logical {
			t.Errorf("shards=%d: implausible physical count %d", shards, s.Physical)
		}
	}
}

// Shard counts are clamped so every shard owns at least one frame: a tiny
// pool must not silently disable caching for pages hashed to empty shards.
func TestBufferPoolShardClamp(t *testing.T) {
	dev := stampDevice(t, 64)
	pool := NewBufferPool(dev, 3, PoolOptions{Shards: 64})
	if got := pool.Shards(); got != 2 {
		t.Fatalf("Shards() = %d, want 2 (clamped by capacity 3)", got)
	}
	for i := 0; i < 64; i++ {
		if _, err := pool.Get(PageID(i)); err != nil {
			t.Fatal(err)
		}
	}
	if n := pool.Len(); n != 3 {
		t.Errorf("Len = %d, want full capacity 3", n)
	}

	// A zero-capacity pool collapses to one shard and caches nothing.
	empty := NewBufferPool(dev, 0, PoolOptions{Shards: 16})
	if got := empty.Shards(); got != 1 {
		t.Errorf("zero-capacity Shards() = %d, want 1", got)
	}
}

func TestParsePolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Policy
	}{{"clock", PolicyClock}, {"", PolicyClock}, {"lru", PolicyLRU}} {
		got, err := ParsePolicy(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParsePolicy(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParsePolicy("mru"); err == nil {
		t.Error("ParsePolicy(mru) succeeded, want error")
	}
	if PolicyClock.String() != "clock" || PolicyLRU.String() != "lru" {
		t.Error("Policy.String mismatch")
	}
}

// TestShardStats: the per-shard counters must sum to the aggregate Stats,
// count hits/evictions/coalesced correctly on a single-shard pool where the
// access pattern is fully predictable, and zero out with ResetStats.
func TestShardStats(t *testing.T) {
	dev := stampDevice(t, 6)
	pool := NewBufferPool(dev, 2, PoolOptions{Shards: 1, Policy: PolicyLRU})

	mustGet := func(id PageID) {
		t.Helper()
		if _, err := pool.Get(id); err != nil {
			t.Fatal(err)
		}
	}
	mustGet(0) // miss
	mustGet(0) // hit
	mustGet(1) // miss
	mustGet(2) // miss + eviction (cap 2)
	mustGet(2) // hit

	shards := pool.ShardStats()
	if len(shards) != 1 {
		t.Fatalf("ShardStats returned %d entries, want 1", len(shards))
	}
	s := shards[0]
	if s.Logical != 5 || s.Physical != 3 || s.Hits != 2 || s.Evictions != 1 || s.Coalesced != 0 {
		t.Fatalf("shard stats = %+v, want logical=5 physical=3 hits=2 evictions=1 coalesced=0", s)
	}

	agg := pool.Stats()
	if agg.Logical != s.Logical || agg.Physical != s.Physical {
		t.Fatalf("aggregate %+v disagrees with shard sum %+v", agg, s)
	}

	pool.ResetStats()
	for _, s := range pool.ShardStats() {
		if s.Logical != 0 || s.Physical != 0 || s.Hits != 0 || s.Evictions != 0 || s.Coalesced != 0 {
			t.Fatalf("counters survived ResetStats: %+v", s)
		}
	}
}

// TestShardStatsCoalesced: concurrent readers of one cold page on a slow
// device must record coalesced waits, and the multi-shard sum must match
// the aggregate counters.
func TestShardStatsCoalesced(t *testing.T) {
	dev := stampDevice(t, 64)
	slow := NewLatencyDevice(dev, 2*time.Millisecond, 2)
	pool := NewBufferPool(slow, 32, PoolOptions{Shards: 4})

	const readers = 8
	start := make(chan struct{}) // gate: maximise overlap on the cold page
	errs := make(chan error, readers)
	for w := 0; w < readers; w++ {
		go func() {
			<-start
			_, err := pool.Get(7) // same cold page for everyone
			errs <- err
		}()
	}
	close(start)
	for w := 0; w < readers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}

	var logical, physical, hits, coalesced int64
	for _, s := range pool.ShardStats() {
		logical += s.Logical
		physical += s.Physical
		hits += s.Hits
		coalesced += s.Coalesced
	}
	if logical != readers {
		t.Fatalf("logical = %d, want %d", logical, readers)
	}
	// Every reader resolves one way: a device read, a shared in-flight read,
	// or — if scheduled after the 2ms read completed — a plain cache hit.
	if physical < 1 || physical+coalesced+hits != readers {
		t.Fatalf("physical=%d coalesced=%d hits=%d; must account for all %d readers", physical, coalesced, hits, readers)
	}
	if coalesced == 0 && hits == 0 {
		t.Fatal("8 gate-released readers of one cold page on a 2ms device neither coalesced nor hit the cache")
	}
	agg := pool.Stats()
	if agg.Logical != logical || agg.Physical != physical {
		t.Fatalf("aggregate %+v disagrees with shard sums logical=%d physical=%d", agg, logical, physical)
	}
}
