package storage

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"

	"mcn/internal/graph"
	"mcn/internal/index"
	"mcn/internal/vec"
)

// Network is a read handle to a disk-resident MCN database. It satisfies the
// network-source interface consumed by the expansion engine, so LSA and CEA
// run against it directly; every adjacency-tree, adjacency-file, facility-
// tree and facility-file access goes through the sharded buffer pool.
type Network struct {
	pool     *BufferPool
	hdr      *header
	adjTree  *BTree
	facTree  *BTree
	edgeTree *BTree
	// bounds is the pruning index loaded from the layout-v3 bounds table,
	// nil for v1/v2 databases (queries run unpruned).
	bounds *index.Bounds
	// ctx, when non-nil, bounds every page read issued through this handle
	// (see WithReadContext). Shared by all views of one database.
	ctx context.Context
}

// WithReadContext returns a view of n whose page reads are bound to ctx:
// retry backoff sleeps abort when ctx is done, and coalesced waiters stop
// waiting on another query's read. The view shares the pool, indexes and
// cache with n — it is a cheap per-query wrapper, not a reopened database.
// A nil ctx returns n itself.
func (n *Network) WithReadContext(ctx context.Context) *Network {
	if ctx == nil {
		return n
	}
	m := *n
	m.ctx = ctx
	return &m
}

// Open prepares a network handle over dev with a buffer pool holding
// bufferFrac of the database pages (the paper's cache-size parameter; 0
// disables caching) under the default pool options (sharded clock cache
// with miss coalescing).
func Open(dev Device, bufferFrac float64) (*Network, error) {
	return OpenOptions(dev, bufferFrac, PoolOptions{})
}

// OpenOptions is Open with explicit buffer-pool tuning (shard count,
// replacement policy, miss coalescing).
func OpenOptions(dev Device, bufferFrac float64, opts PoolOptions) (*Network, error) {
	pool := NewBufferPoolFrac(dev, bufferFrac, opts)
	return OpenWithPool(dev, pool)
}

// OpenWithPool is Open with a caller-constructed buffer pool.
func OpenWithPool(dev Device, pool *BufferPool) (*Network, error) {
	buf := make([]byte, PageSize)
	if dev.NumPages() == 0 {
		return nil, fmt.Errorf("storage: empty device")
	}
	if err := dev.ReadPage(0, buf); err != nil {
		return nil, err
	}
	hdr, err := decodeHeader(buf)
	if err != nil {
		return nil, err
	}
	if hdr.checksumPages > 0 {
		// Load the checksum table (8 bytes per covered page, ~0.2% of the
		// database) directly from the device — its own pages are not covered
		// — and have the pool verify every page it reads against it.
		sums := make([]uint64, hdr.checksumPages+1) // indexed by page id; 0 unused
		page, idx := hdr.checksumFirst, 1
		for idx <= hdr.checksumPages {
			if err := dev.ReadPage(page, buf); err != nil {
				return nil, fmt.Errorf("storage: checksum table: %w", err)
			}
			for off := 0; off+8 <= PageSize && idx <= hdr.checksumPages; off += 8 {
				sums[idx] = binary.LittleEndian.Uint64(buf[off:])
				idx++
			}
			page++
		}
		pool.setVerify(func(id PageID, data []byte) error {
			if id == 0 || int(id) >= len(sums) {
				return nil
			}
			if PageChecksum(data) != sums[id] {
				return fmt.Errorf("storage: page %d: %w", id, ErrChecksum)
			}
			return nil
		})
	}
	var bounds *index.Bounds
	if hdr.boundsFirst != 0 {
		// Load the pruning-bounds table (d × numNodes f64, criterion-major)
		// directly from the device, like the checksum table: it is read once
		// here and never again, so routing it through the pool would only
		// perturb the cache statistics.
		data := make([]float64, hdr.d*hdr.numNodes)
		page, idx := hdr.boundsFirst, 0
		for idx < len(data) {
			if err := dev.ReadPage(page, buf); err != nil {
				return nil, fmt.Errorf("storage: bounds table: %w", err)
			}
			for off := 0; off+8 <= PageSize && idx < len(data); off += 8 {
				data[idx] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
				idx++
			}
			page++
		}
		if bounds, err = index.FromData(hdr.d, hdr.numNodes, data); err != nil {
			return nil, fmt.Errorf("storage: bounds table: %w", err)
		}
	}
	return &Network{
		pool:     pool,
		hdr:      hdr,
		adjTree:  OpenBTree(pool, hdr.adjTreeRoot),
		facTree:  OpenBTree(pool, hdr.facTreeRoot),
		edgeTree: OpenBTree(pool, hdr.edgeTreeRoot),
		bounds:   bounds,
	}, nil
}

// D returns the number of cost types.
func (n *Network) D() int { return n.hdr.d }

// Directed reports whether the network is directed.
func (n *Network) Directed() bool { return n.hdr.directed }

// NumNodes returns the node count.
func (n *Network) NumNodes() int { return n.hdr.numNodes }

// NumEdges returns the edge count.
func (n *Network) NumEdges() int { return n.hdr.numEdges }

// NumFacilities returns the facility count.
func (n *Network) NumFacilities() int { return n.hdr.numFacs }

// Bounds returns the pruning index persisted in the database (layout v3),
// or nil for version-1/2 databases, which carry none.
func (n *Network) Bounds() *index.Bounds { return n.bounds }

// Pool exposes the buffer pool (for statistics and resets).
func (n *Network) Pool() *BufferPool { return n.pool }

// Stats returns the buffer pool counters.
func (n *Network) Stats() Stats { return n.pool.Stats() }

// FailureStats returns the buffer pool's I/O failure counters.
func (n *Network) FailureStats() FailureStats { return n.pool.FailureStats() }

// Adjacency returns the adjacency list of v: one entry per outgoing arc with
// the edge's full cost vector and its facility-record pointer. It performs
// an adjacency-tree lookup followed by an adjacency-file record read.
func (n *Network) Adjacency(v graph.NodeID) ([]graph.AdjEntry, error) {
	if int(v) >= n.hdr.numNodes {
		return nil, fmt.Errorf("storage: node %d out of range (%d nodes)", v, n.hdr.numNodes)
	}
	packed, ok, err := n.adjTree.LookupCtx(n.ctx, uint64(v))
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("storage: node %d missing from adjacency tree", v)
	}
	c := newCursorCtx(n.ctx, n.pool, UnpackRef(packed))
	count, err := c.readU16()
	if err != nil {
		return nil, err
	}
	entries := make([]graph.AdjEntry, count)
	for i := range entries {
		e := &entries[i]
		var nb, eid uint32
		if nb, err = c.readU32(); err != nil {
			return nil, err
		}
		if eid, err = c.readU32(); err != nil {
			return nil, err
		}
		var flags [1]byte
		if err = c.read(flags[:]); err != nil {
			return nil, err
		}
		var fc uint16
		if fc, err = c.readU16(); err != nil {
			return nil, err
		}
		var fref uint64
		if fref, err = c.readU64(); err != nil {
			return nil, err
		}
		w := make(vec.Costs, n.hdr.d)
		for j := range w {
			if w[j], err = c.readF64(); err != nil {
				return nil, err
			}
		}
		e.Neighbor = graph.NodeID(nb)
		e.Edge = graph.EdgeID(eid)
		e.Forward = flags[0]&1 != 0
		e.FacCount = int(fc)
		e.FacRef = fref
		e.W = w
	}
	return entries, nil
}

// Facilities reads the facility-file record at facRef holding count entries
// (facility id and position on the edge).
func (n *Network) Facilities(facRef uint64, count int) ([]graph.FacEntry, error) {
	if facRef == graph.NoFacRef || count == 0 {
		return nil, nil
	}
	c := newCursorCtx(n.ctx, n.pool, UnpackRef(facRef))
	out := make([]graph.FacEntry, count)
	for i := range out {
		id, err := c.readU32()
		if err != nil {
			return nil, err
		}
		t, err := c.readF64()
		if err != nil {
			return nil, err
		}
		out[i] = graph.FacEntry{ID: graph.FacilityID(id), T: t}
	}
	return out, nil
}

// FacilityEdge returns the edge that facility p lies on, via the facility
// tree (used by the shrinking-stage optimisation that restricts facility-
// file reads to candidate edges).
func (n *Network) FacilityEdge(p graph.FacilityID) (graph.EdgeID, error) {
	v, ok, err := n.facTree.LookupCtx(n.ctx, uint64(p))
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, fmt.Errorf("storage: facility %d missing from facility tree", p)
	}
	return graph.EdgeID(v), nil
}

// EdgeInfo resolves edge e to its end-nodes, cost vector and facility
// record, used to initialise expansions at an on-edge query location. It
// costs one edge-tree lookup plus one adjacency access.
func (n *Network) EdgeInfo(e graph.EdgeID) (graph.EdgeInfo, error) {
	uVal, ok, err := n.edgeTree.LookupCtx(n.ctx, uint64(e))
	if err != nil {
		return graph.EdgeInfo{}, err
	}
	if !ok {
		return graph.EdgeInfo{}, fmt.Errorf("storage: edge %d missing from edge tree", e)
	}
	u := graph.NodeID(uVal)
	entries, err := n.Adjacency(u)
	if err != nil {
		return graph.EdgeInfo{}, err
	}
	for i := range entries {
		if entries[i].Edge == e {
			return graph.EdgeInfo{
				U:        u,
				V:        entries[i].Neighbor,
				W:        entries[i].W,
				FacRef:   entries[i].FacRef,
				FacCount: entries[i].FacCount,
			}, nil
		}
	}
	return graph.EdgeInfo{}, fmt.Errorf("storage: edge %d not present in adjacency of node %d", e, u)
}
