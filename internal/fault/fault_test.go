package fault

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"mcn/internal/storage"
)

// memDev builds a small in-memory device with n pages of recognisable
// content.
func memDev(t *testing.T, n int) *storage.MemDevice {
	t.Helper()
	dev := storage.NewMemDevice()
	buf := make([]byte, storage.PageSize)
	for i := 0; i < n; i++ {
		id, err := dev.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		for j := range buf {
			buf[j] = byte(i + j)
		}
		if err := dev.WritePage(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	return dev
}

// readAll reads pages 0..n-1 once and returns the per-page outcomes.
func readAll(d *Device, n int) []error {
	buf := make([]byte, storage.PageSize)
	out := make([]error, n)
	for i := 0; i < n; i++ {
		out[i] = d.ReadPage(storage.PageID(i), buf)
	}
	return out
}

func TestDisarmedPassesThrough(t *testing.T) {
	d := Wrap(memDev(t, 8), Options{Seed: 1, ReadTransient: 1, ReadCorrupt: 1})
	for i, err := range readAll(d, 8) {
		if err != nil {
			t.Fatalf("disarmed read of page %d failed: %v", i, err)
		}
	}
	if c := d.Counters(); c != (Counters{}) {
		t.Fatalf("disarmed device injected faults: %+v", c)
	}
}

func TestDeterministicSchedule(t *testing.T) {
	outcomes := func(seed uint64) []bool {
		d := Wrap(memDev(t, 32), Options{Seed: seed, ReadTransient: 0.5})
		d.Arm()
		var out []bool
		for i := 0; i < 200; i++ {
			err := d.ReadPage(storage.PageID(i%32), make([]byte, storage.PageSize))
			out = append(out, err != nil)
		}
		return out
	}
	a, b := outcomes(42), outcomes(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at op %d", i)
		}
	}
	c := outcomes(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical 200-op schedules")
	}
}

func TestTransientErrorsAreClassified(t *testing.T) {
	d := Wrap(memDev(t, 1), Options{Seed: 7, ReadTransient: 1})
	d.Arm()
	err := d.ReadPage(0, make([]byte, storage.PageSize))
	if err == nil {
		t.Fatal("p=1 transient injection did not fire")
	}
	if !storage.IsTransient(err) {
		t.Fatalf("injected transient error not classified transient: %v", err)
	}
	if c := d.Counters().ReadTransient; c != 1 {
		t.Fatalf("ReadTransient counter = %d, want 1", c)
	}
}

func TestMaxConsecutiveBoundsFaultRun(t *testing.T) {
	d := Wrap(memDev(t, 1), Options{Seed: 3, ReadTransient: 1, MaxConsecutive: 3})
	d.Arm()
	buf := make([]byte, storage.PageSize)
	fails := 0
	for i := 0; i < 8; i++ {
		if err := d.ReadPage(0, buf); err != nil {
			fails++
			continue
		}
		// Clean read must arrive after exactly MaxConsecutive failures, and
		// the streak resets — the next run fails again.
		if fails != 3 {
			t.Fatalf("clean read after %d consecutive faults, want 3", fails)
		}
		fails = 0
	}
}

func TestCorruptInjectionFlipsOneBit(t *testing.T) {
	dev := memDev(t, 1)
	want := make([]byte, storage.PageSize)
	if err := dev.ReadPage(0, want); err != nil {
		t.Fatal(err)
	}
	d := Wrap(dev, Options{Seed: 11, ReadCorrupt: 1})
	d.Arm()
	got := make([]byte, storage.PageSize)
	if err := d.ReadPage(0, got); err != nil {
		t.Fatalf("corrupt read errored (corruption must be silent): %v", err)
	}
	diff := 0
	for i := range got {
		b := got[i] ^ want[i]
		for ; b != 0; b &= b - 1 {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("corrupt read flipped %d bits, want 1", diff)
	}
	if c := d.Counters().ReadCorrupt; c != 1 {
		t.Fatalf("ReadCorrupt counter = %d, want 1", c)
	}
}

func TestFailPageIsPermanentAndUnclassified(t *testing.T) {
	d := Wrap(memDev(t, 2), Options{Seed: 5})
	d.FailPage(1)
	buf := make([]byte, storage.PageSize)
	if err := d.ReadPage(0, buf); err != nil {
		t.Fatalf("unmarked page failed: %v", err)
	}
	for i := 0; i < 3; i++ {
		err := d.ReadPage(1, buf)
		if err == nil {
			t.Fatal("failed page read succeeded")
		}
		if storage.IsTransient(err) {
			t.Fatalf("permanent failure classified transient: %v", err)
		}
	}
	if c := d.Counters().PermanentReads; c != 3 {
		t.Fatalf("PermanentReads = %d, want 3", c)
	}
	d.ClearPage(1)
	if err := d.ReadPage(1, buf); err != nil {
		t.Fatalf("cleared page still fails: %v", err)
	}
}

func TestCorruptPageIsStable(t *testing.T) {
	dev := memDev(t, 1)
	want := make([]byte, storage.PageSize)
	if err := dev.ReadPage(0, want); err != nil {
		t.Fatal(err)
	}
	d := Wrap(dev, Options{Seed: 9})
	d.CorruptPage(0)
	a := make([]byte, storage.PageSize)
	b := make([]byte, storage.PageSize)
	if err := d.ReadPage(0, a); err != nil {
		t.Fatal(err)
	}
	if err := d.ReadPage(0, b); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, want) {
		t.Fatal("corrupted page read back clean")
	}
	if !bytes.Equal(a, b) {
		t.Fatal("permanent corruption not stable across reads")
	}
}

func TestLatencySpike(t *testing.T) {
	d := Wrap(memDev(t, 1), Options{Seed: 13, LatencyProb: 1, Latency: 5 * time.Millisecond})
	d.Arm()
	start := time.Now()
	if err := d.ReadPage(0, make([]byte, storage.PageSize)); err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el < 5*time.Millisecond {
		t.Fatalf("read took %v, want >= 5ms spike", el)
	}
	if c := d.Counters().LatencySpikes; c != 1 {
		t.Fatalf("LatencySpikes = %d, want 1", c)
	}
}

func TestWriteTransient(t *testing.T) {
	d := Wrap(memDev(t, 1), Options{Seed: 17, WriteTransient: 1, MaxConsecutive: 1})
	d.Arm()
	buf := make([]byte, storage.PageSize)
	err := d.WritePage(0, buf)
	if err == nil {
		t.Fatal("p=1 write injection did not fire")
	}
	if !storage.IsTransient(err) {
		t.Fatalf("injected write error not transient: %v", err)
	}
	// The streak cap forces the retry through.
	if err := d.WritePage(0, buf); err != nil {
		t.Fatalf("write after streak cap failed: %v", err)
	}
}

func TestRetryingPoolSurvivesTransientOnlyFaults(t *testing.T) {
	// End-to-end over the buffer pool: with MaxRetries >= MaxConsecutive,
	// every read eventually succeeds despite heavy transient injection.
	dev := memDev(t, 16)
	fd := Wrap(dev, Options{Seed: 21, ReadTransient: 0.5, MaxConsecutive: 2})
	pool := storage.NewBufferPool(fd, 4, storage.PoolOptions{
		Retry: storage.RetryPolicy{MaxRetries: 2, BaseBackoff: time.Microsecond, MaxBackoff: 10 * time.Microsecond},
	})
	fd.Arm()
	want := make([]byte, storage.PageSize)
	for i := 0; i < 200; i++ {
		id := storage.PageID(i % 16)
		data, err := pool.Get(id)
		if err != nil {
			t.Fatalf("read %d of page %d failed despite retry budget: %v", i, id, err)
		}
		if err := dev.ReadPage(id, want); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, want) {
			t.Fatalf("page %d content mismatch", id)
		}
		pool.Drop() // force a real read next round
	}
	fs := pool.FailureStats()
	if fs.Retries == 0 {
		t.Fatal("no retries recorded under p=0.5 injection")
	}
	if fs.Transient != 0 || fs.Permanent != 0 {
		t.Fatalf("unexpected failures: %+v", fs)
	}
}

func TestPermanentFaultSurfacesThroughPool(t *testing.T) {
	fd := Wrap(memDev(t, 4), Options{Seed: 23})
	pool := storage.NewBufferPool(fd, 4, storage.PoolOptions{Retry: storage.RetryPolicy{MaxRetries: 3}})
	fd.FailPage(2)
	if _, err := pool.Get(2); err == nil {
		t.Fatal("read of failed page succeeded")
	} else if storage.IsTransient(err) {
		t.Fatalf("permanent fault surfaced as transient: %v", err)
	}
	if fs := pool.FailureStats(); fs.Permanent != 1 || fs.Retries != 0 {
		t.Fatalf("want 1 permanent failure, 0 retries; got %+v", fs)
	}
	// The failure must not poison the frame table: clearing the fault makes
	// the page readable again.
	fd.ClearPage(2)
	if _, err := pool.Get(2); err != nil {
		t.Fatalf("page still failing after ClearPage: %v", err)
	}
	var errNil error
	if errors.Is(errNil, storage.ErrChecksum) {
		t.Fatal("nil error must not match ErrChecksum")
	}
}
