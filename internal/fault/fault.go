// Package fault injects storage failures deterministically. Its Device wraps
// any storage.Device and, while armed, makes a seeded pseudo-random subset of
// operations fail: transient read/write errors (classified retryable via
// storage.MarkTransient), latency spikes, bit-flipped page contents, and —
// targeted explicitly rather than randomly — permanently failing or corrupt
// pages. Every fault decision is a pure function of the seed and a per-device
// operation counter, so a schedule replays identically for a given seed and
// operation order; per-fault counters report what was actually injected.
//
// The wrapper exists for the chaos harness (internal/chaos), for tests of
// the buffer pool's retry path, and — through the facade's OpenDatabaseChaos
// behind mcnserve's -chaos dev flag — for game-day drills that inject faults
// into a live replica and observe the counters via /stats.
package fault

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mcn/internal/storage"
)

// DefaultMaxConsecutive is the Options.MaxConsecutive fallback.
const DefaultMaxConsecutive = 2

// Options configures a Device. Probabilities are in [0, 1] and evaluated
// independently per operation, in the order latency → permanent → transient
// → corrupt.
type Options struct {
	// Seed selects the fault schedule; the same seed over the same operation
	// sequence injects the same faults.
	Seed uint64
	// ReadTransient is the probability a ReadPage fails with a transient
	// (retryable) error.
	ReadTransient float64
	// WriteTransient is the probability a WritePage fails with a transient
	// error.
	WriteTransient float64
	// ReadCorrupt is the probability a ReadPage returns the page with one
	// deterministically chosen bit flipped (no error — detecting this is the
	// checksum layer's job).
	ReadCorrupt float64
	// LatencyProb is the probability an operation sleeps for Latency before
	// proceeding; both must be set for spikes to occur.
	LatencyProb float64
	// Latency is the spike duration.
	Latency time.Duration
	// MaxConsecutive caps successive injected transient/corrupt faults per
	// page: after that many in a row, the next read of the page is forced
	// clean. This guarantees a retry budget of MaxConsecutive re-reads always
	// reaches the data, so transient-only schedules cannot starve a query.
	// Zero selects DefaultMaxConsecutive; explicit permanent faults
	// (FailPage, CorruptPage) ignore the cap.
	MaxConsecutive int
}

// Counters reports the faults a Device has injected since creation (atomic,
// read lock-free).
type Counters struct {
	ReadTransient  int64 `json:"read_transient"`
	WriteTransient int64 `json:"write_transient"`
	ReadCorrupt    int64 `json:"read_corrupt"`
	LatencySpikes  int64 `json:"latency_spikes"`
	// PermanentReads counts reads of pages marked with FailPage.
	PermanentReads int64 `json:"permanent_reads"`
}

// Device wraps a storage.Device with deterministic fault injection. It is
// safe for concurrent use (fault decisions are serialised per operation by an
// atomic counter; the consecutive-fault ledger is mutex-guarded). A new
// Device starts disarmed: until Arm is called every operation passes through
// untouched, so databases can be built through the wrapper fault-free.
type Device struct {
	dev  storage.Device
	opts Options
	ops  atomic.Uint64
	arm  atomic.Bool

	readTransient  atomic.Int64
	writeTransient atomic.Int64
	readCorrupt    atomic.Int64
	latencySpikes  atomic.Int64
	permanentReads atomic.Int64

	mu sync.Mutex
	// streak counts consecutive injected transient/corrupt faults per page,
	// enforcing MaxConsecutive.
	streak map[storage.PageID]int
	// failed pages always error permanently; corrupted pages always read
	// with a flipped bit.
	failed  map[storage.PageID]bool
	corrupt map[storage.PageID]bool
}

// Wrap returns a disarmed fault-injecting view of dev.
func Wrap(dev storage.Device, opts Options) *Device {
	if opts.MaxConsecutive <= 0 {
		opts.MaxConsecutive = DefaultMaxConsecutive
	}
	return &Device{
		dev:     dev,
		opts:    opts,
		streak:  make(map[storage.PageID]int),
		failed:  make(map[storage.PageID]bool),
		corrupt: make(map[storage.PageID]bool),
	}
}

// Arm enables fault injection; Disarm suspends it (explicitly failed and
// corrupted pages keep failing — they model damaged media, not load).
func (d *Device) Arm() { d.arm.Store(true) }

// Disarm suspends randomized injection.
func (d *Device) Disarm() { d.arm.Store(false) }

// FailPage marks a page as permanently unreadable: every ReadPage returns a
// non-retryable error until ClearPage.
func (d *Device) FailPage(id storage.PageID) {
	d.mu.Lock()
	d.failed[id] = true
	d.mu.Unlock()
}

// CorruptPage marks a page as permanently corrupt: every ReadPage returns its
// content with one bit flipped (deterministically chosen from the seed), so
// only a checksum layer can tell. ClearPage undoes it.
func (d *Device) CorruptPage(id storage.PageID) {
	d.mu.Lock()
	d.corrupt[id] = true
	d.mu.Unlock()
}

// ClearPage removes a page's permanent fail/corrupt marks.
func (d *Device) ClearPage(id storage.PageID) {
	d.mu.Lock()
	delete(d.failed, id)
	delete(d.corrupt, id)
	d.mu.Unlock()
}

// Counters returns the injected-fault counters.
func (d *Device) Counters() Counters {
	return Counters{
		ReadTransient:  d.readTransient.Load(),
		WriteTransient: d.writeTransient.Load(),
		ReadCorrupt:    d.readCorrupt.Load(),
		LatencySpikes:  d.latencySpikes.Load(),
		PermanentReads: d.permanentReads.Load(),
	}
}

// splitmix64 is the SplitMix64 finalizer: a bijective scrambler giving every
// operation an independent-looking 64-bit draw from seed ^ counter.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// draw returns this operation's pseudo-random word.
func (d *Device) draw() uint64 {
	return splitmix64(d.opts.Seed ^ d.ops.Add(1))
}

// hit maps a probability and a draw-derived word to a fault decision.
func hit(p float64, w uint64) bool {
	if p <= 0 {
		return false
	}
	// Top 53 bits → uniform float in [0, 1).
	return float64(w>>11)/(1<<53) < p
}

// allowInjected consults and updates the per-page consecutive-fault streak;
// it reports whether another injected fault on id is within MaxConsecutive.
func (d *Device) allowInjected(id storage.PageID) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.streak[id] >= d.opts.MaxConsecutive {
		delete(d.streak, id)
		return false
	}
	d.streak[id]++
	return true
}

// clearStreak resets a page's consecutive-fault count after a clean read.
func (d *Device) clearStreak(id storage.PageID) {
	d.mu.Lock()
	delete(d.streak, id)
	d.mu.Unlock()
}

// ReadPage implements storage.Device.
func (d *Device) ReadPage(id storage.PageID, buf []byte) error {
	d.mu.Lock()
	failed, corrupted := d.failed[id], d.corrupt[id]
	d.mu.Unlock()
	if failed {
		d.permanentReads.Add(1)
		return fmt.Errorf("fault: page %d permanently unreadable", id)
	}
	if !d.arm.Load() {
		if err := d.dev.ReadPage(id, buf); err != nil {
			return err
		}
		if corrupted {
			d.flipBit(id, buf)
		}
		return nil
	}
	w := d.draw()
	if d.opts.Latency > 0 && hit(d.opts.LatencyProb, splitmix64(w^1)) {
		d.latencySpikes.Add(1)
		time.Sleep(d.opts.Latency)
	}
	if hit(d.opts.ReadTransient, splitmix64(w^2)) && d.allowInjected(id) {
		d.readTransient.Add(1)
		return storage.MarkTransient(fmt.Errorf("fault: injected transient read error on page %d", id))
	}
	if err := d.dev.ReadPage(id, buf); err != nil {
		return err
	}
	if corrupted {
		d.flipBit(id, buf)
		return nil
	}
	if hit(d.opts.ReadCorrupt, splitmix64(w^3)) && d.allowInjected(id) {
		d.readCorrupt.Add(1)
		i := int(splitmix64(w^4) % uint64(len(buf)*8))
		buf[i/8] ^= 1 << (i % 8)
		return nil
	}
	d.clearStreak(id)
	return nil
}

// flipBit applies a page's permanent corruption: the flipped bit depends only
// on the seed and page id, so every read sees the same damage.
func (d *Device) flipBit(id storage.PageID, buf []byte) {
	i := int(splitmix64(d.opts.Seed^0xC0DE^uint64(id)) % uint64(len(buf)*8))
	buf[i/8] ^= 1 << (i % 8)
}

// WritePage implements storage.Device.
func (d *Device) WritePage(id storage.PageID, buf []byte) error {
	if d.arm.Load() {
		w := d.draw()
		if d.opts.Latency > 0 && hit(d.opts.LatencyProb, splitmix64(w^1)) {
			d.latencySpikes.Add(1)
			time.Sleep(d.opts.Latency)
		}
		if hit(d.opts.WriteTransient, splitmix64(w^2)) && d.allowInjected(id) {
			d.writeTransient.Add(1)
			return storage.MarkTransient(fmt.Errorf("fault: injected transient write error on page %d", id))
		}
		d.clearStreak(id)
	}
	return d.dev.WritePage(id, buf)
}

// Alloc implements storage.Device.
func (d *Device) Alloc() (storage.PageID, error) { return d.dev.Alloc() }

// NumPages implements storage.Device.
func (d *Device) NumPages() int { return d.dev.NumPages() }

// Close implements storage.Device.
func (d *Device) Close() error { return d.dev.Close() }
