package engine

import (
	"context"
	"errors"
	"testing"

	"mcn/internal/core"
	"mcn/internal/expand"
	"mcn/internal/vec"
)

// StreamSkyline must deliver exactly the buffered skyline, in confirmation
// order, and honor an emit that stops early.
func TestStreamSkyline(t *testing.T) {
	inst := testInstance(t)
	src := expand.NewMemorySource(inst.Graph)
	exec := New(src, Config{Workers: 2})
	q := inst.Queries[0]

	want := exec.Do(context.Background(), Request{Kind: Skyline, Loc: q})
	if want.Err != nil {
		t.Fatal(want.Err)
	}

	var got []core.Facility
	resp := exec.StreamSkyline(context.Background(), Request{Kind: Skyline, Loc: q}, func(f core.Facility) bool {
		got = append(got, f)
		return true
	})
	if resp.Err != nil {
		t.Fatal(resp.Err)
	}
	if resp.Result != nil {
		t.Error("streamed response must carry no buffered Result")
	}
	if len(got) != len(want.Result.Facilities) {
		t.Fatalf("streamed %d facilities, buffered %d", len(got), len(want.Result.Facilities))
	}
	for i, f := range want.Result.Facilities {
		if got[i].ID != f.ID {
			t.Errorf("facility %d: streamed %d, buffered %d", i, got[i].ID, f.ID)
		}
	}

	n := 0
	resp = exec.StreamSkyline(context.Background(), Request{Kind: Skyline, Loc: q}, func(core.Facility) bool {
		n++
		return false
	})
	if resp.Err != nil || n != 1 {
		t.Errorf("early stop: n = %d, err = %v", n, resp.Err)
	}
}

// StreamTopK must deliver the k best in ascending score order and stop at K.
func TestStreamTopK(t *testing.T) {
	inst := testInstance(t)
	src := expand.NewMemorySource(inst.Graph)
	exec := New(src, Config{Workers: 2})
	q := inst.Queries[1]
	agg := vec.NewWeighted(1, 1, 1)
	const k = 3

	want := exec.Do(context.Background(), Request{Kind: TopK, Loc: q, Agg: agg, K: k})
	if want.Err != nil {
		t.Fatal(want.Err)
	}

	var got []core.Facility
	resp := exec.StreamTopK(context.Background(), Request{Kind: TopK, Loc: q, Agg: agg, K: k},
		func(f core.Facility) bool {
			got = append(got, f)
			return true
		})
	if resp.Err != nil {
		t.Fatal(resp.Err)
	}
	if len(got) != len(want.Result.Facilities) {
		t.Fatalf("streamed %d facilities, buffered %d", len(got), len(want.Result.Facilities))
	}
	for i, f := range want.Result.Facilities {
		if got[i].ID != f.ID || got[i].Score != f.Score {
			t.Errorf("facility %d: streamed (%d, %g), buffered (%d, %g)",
				i, got[i].ID, got[i].Score, f.ID, f.Score)
		}
	}
}

// A panic inside a streaming query is recovered, classified by IsPanic, and
// does not take the worker down.
func TestStreamTopKPanicIsolation(t *testing.T) {
	inst := testInstance(t)
	exec := New(expand.NewMemorySource(inst.Graph), Config{Workers: 1})

	resp := exec.StreamTopK(context.Background(),
		Request{Kind: TopK, Loc: inst.Queries[0], Agg: nil, K: 2}, // nil aggregate panics in core
		func(core.Facility) bool { return true })
	if resp.Err == nil || !IsPanic(resp.Err) {
		t.Fatalf("err = %v, want a panic-classified error", resp.Err)
	}
	if IsPanic(errors.New("ordinary")) {
		t.Error("IsPanic misclassified an ordinary error")
	}

	// The executor still works.
	if r := exec.Do(context.Background(), Request{Kind: Skyline, Loc: inst.Queries[0]}); r.Err != nil {
		t.Errorf("query after panic: %v", r.Err)
	}
}

// The drain lifecycle: StartDrain rejects new admissions (streaming ones
// too), Draining and AdmissionStats report it, DrainWait returns once idle.
func TestDrainLifecycle(t *testing.T) {
	inst := testInstance(t)
	exec := New(expand.NewMemorySource(inst.Graph), Config{Workers: 3, QueueDepth: 4})

	if exec.Workers() != 3 {
		t.Errorf("Workers = %d, want 3", exec.Workers())
	}
	exec.SetBounds(nil) // no-op attach must not break queries
	if r := exec.Do(context.Background(), Request{Kind: Skyline, Loc: inst.Queries[0]}); r.Err != nil {
		t.Fatal(r.Err)
	}
	if exec.Draining() {
		t.Fatal("draining before StartDrain")
	}

	exec.StartDrain()
	if !exec.Draining() {
		t.Fatal("not draining after StartDrain")
	}
	if r := exec.Do(context.Background(), Request{Kind: Skyline, Loc: inst.Queries[0]}); !errors.Is(r.Err, ErrDraining) {
		t.Errorf("Do during drain: err = %v, want ErrDraining", r.Err)
	}
	if r := exec.StreamSkyline(context.Background(), Request{Kind: Skyline, Loc: inst.Queries[0]},
		func(core.Facility) bool { return true }); !errors.Is(r.Err, ErrDraining) {
		t.Errorf("StreamSkyline during drain: err = %v, want ErrDraining", r.Err)
	}

	s := exec.AdmissionStats()
	if s.DrainRejected != 2 || !s.Draining || s.Inflight != 0 || s.Queued != 0 {
		t.Errorf("admission stats = %+v", s)
	}
	if err := exec.DrainWait(context.Background()); err != nil {
		t.Errorf("DrainWait on idle executor: %v", err)
	}

	// DrainWait honors its context when queries are (apparently) stuck.
	exec.admitted.Add(1)
	defer exec.admitted.Add(-1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := exec.DrainWait(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("DrainWait with dead ctx: %v", err)
	}
}
