// Package engine executes preference queries concurrently against one
// shared network source. An Executor bounds parallelism with a fixed worker
// pool, gives every query its own context (cancellation and timeouts are
// polled mid-query through core.Options.Interrupt), isolates panics to the
// query that raised them, and accumulates latency statistics — the building
// block behind the facade's Batch* methods and the mcnserve HTTP server.
//
// Safety: all network sources are safe for concurrent readers — the
// disk-resident storage.Network guards page access with per-shard buffer
// pool locks, expand.MemorySource touches only immutable graph data (its
// access counters are atomic), and flat.Source is immutable CSR arrays. All
// per-query state (expansions, CEA record memos, trackers) is created per
// call or drawn from the executor's scratch pool, so concurrent queries
// share nothing mutable.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mcn/internal/core"
	"mcn/internal/expand"
	"mcn/internal/graph"
	"mcn/internal/rescache"
	"mcn/internal/storage"
	"mcn/internal/vec"
)

// ErrOverloaded rejects a query at admission because the executor's pending
// queue is full (Config.QueueDepth). The caller should back off and retry;
// the HTTP server maps it to 503 + Retry-After.
var ErrOverloaded = errors.New("engine: overloaded, query shed")

// ErrDraining rejects a query at admission because the executor is shutting
// down (StartDrain). Queries admitted before the drain began still run to
// completion.
var ErrDraining = errors.New("engine: draining, not accepting queries")

// Kind selects the query a Request runs.
type Kind int

// Supported query kinds.
const (
	Skyline Kind = iota
	TopK
	Nearest
	Within
	MultiSourceSkyline
	MultiSourceTopK
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Skyline:
		return "skyline"
	case TopK:
		return "topk"
	case Nearest:
		return "nearest"
	case Within:
		return "within"
	case MultiSourceSkyline:
		return "multisource_skyline"
	case MultiSourceTopK:
		return "multisource_topk"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Request describes one query. Only the fields of the selected Kind are
// consulted: Agg and K for TopK, CostIdx and K for Nearest, Budget for
// Within, Locs and CostIdx (plus Agg and K for the top-k variant) for the
// MultiSource kinds.
type Request struct {
	Kind    Kind
	Loc     graph.Location
	Locs    []graph.Location
	Agg     vec.Aggregate
	K       int
	CostIdx int
	Budget  vec.Costs
	Opts    core.Options
	// Timeout bounds this query alone; zero falls back to the executor's
	// default. The deadline is enforced mid-query, not just at dispatch.
	Timeout time.Duration
}

// Response is the outcome of one Request. Exactly one of Result and Err is
// meaningful; Latency covers query execution, not time spent queued.
type Response struct {
	// Index is the request's position in the Execute batch (0 for Do).
	Index   int
	Result  *core.Result
	Err     error
	Latency time.Duration
	// Cached reports that Result was served from the executor's result
	// cache without running the query. Cached results are shared: treat
	// them as read-only, and note that Result.Stats describes the query
	// that originally filled the entry, not this request.
	Cached bool
}

// Config tunes an Executor.
type Config struct {
	// Workers bounds concurrent queries; <= 0 selects GOMAXPROCS.
	Workers int
	// Timeout is the default per-query timeout (0 = none).
	Timeout time.Duration
	// QueueDepth bounds queries waiting for a worker slot: at most
	// Workers+QueueDepth queries may be inside the executor (running or
	// queued) before admission rejects with ErrOverloaded. Zero keeps the
	// pre-admission-control behaviour — callers queue without bound.
	QueueDepth int
}

// Stats is a snapshot of an executor's lifetime counters.
type Stats struct {
	Completed int64 // queries that returned a result
	Failed    int64 // queries that returned an error (panics included)
	Canceled  int64 // failed queries whose error was cancellation/timeout
	Panics    int64 // failed queries that panicked
	// TotalLatency sums execution time across all queries; MaxLatency is
	// the slowest single query.
	TotalLatency time.Duration
	MaxLatency   time.Duration
	// NodeExpansions and PrunedNodes accumulate the per-query work counters
	// of completed queries: node-expansion events performed, and node pops
	// discarded by the lower-bound pruning index (SetBounds) before their
	// adjacency was read. Cached responses contribute nothing — no search
	// ran.
	NodeExpansions int64
	PrunedNodes    int64
}

// Queries returns the total number of finished queries.
func (s Stats) Queries() int64 { return s.Completed + s.Failed }

// MeanLatency returns the average per-query execution time.
func (s Stats) MeanLatency() time.Duration {
	n := s.Queries()
	if n == 0 {
		return 0
	}
	return s.TotalLatency / time.Duration(n)
}

// Executor runs queries concurrently over one shared source. It is safe for
// concurrent use; a single Executor is meant to live as long as its network
// (the HTTP server funnels every request through one).
type Executor struct {
	src expand.Source
	cfg Config
	sem chan struct{}
	// pool hands out dense expansion scratch for in-memory sources (nil for
	// sources without dense id spaces, e.g. the disk store). Workers draw one
	// scratch per query, so steady-state queries reuse state arrays and heap
	// backing instead of reallocating them.
	pool *expand.Pool
	// cache, when non-nil, memoizes completed results at the serving layer;
	// see SetCache and internal/rescache.
	cache *rescache.Cache
	// bounds, when non-nil, is the lower-bound pruning index attached to
	// every query whose options carry none; see SetBounds.
	bounds expand.LowerBounder

	// Admission state. admitted counts queries past the shed check that have
	// not yet released their worker slot (queued + running); inflight counts
	// those actually holding a slot. The admit/StartDrain handshake relies on
	// ordering: admit increments admitted *before* loading draining, and
	// StartDrain stores draining *before* DrainWait loads admitted, so either
	// the admitter observes the drain or the drainer observes the admission.
	admitted atomic.Int64
	inflight atomic.Int64
	shed     atomic.Int64
	drainRej atomic.Int64
	draining atomic.Bool

	mu    sync.Mutex
	stats Stats
}

// New returns an executor over src.
func New(src expand.Source, cfg Config) *Executor {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	return &Executor{src: src, cfg: cfg, sem: make(chan struct{}, cfg.Workers), pool: expand.NewPool(src)}
}

// Workers returns the configured parallelism bound.
func (e *Executor) Workers() int { return e.cfg.Workers }

// SetBounds attaches the lower-bound pruning index: every query whose
// options carry no Bounds of their own runs with it (requests setting
// NoPrune still opt out). Attach before queries start, like SetCache; it
// must not race in-flight queries. The bounds must be admissible for the
// executor's source — built from the same graph and facility set.
func (e *Executor) SetBounds(lb expand.LowerBounder) { e.bounds = lb }

// admit performs admission control and acquires a worker slot: it rejects
// with ErrDraining once StartDrain has been called, with ErrOverloaded when
// the pending queue is full (Config.QueueDepth > 0), and with a wrapped ctx
// error if ctx dies while queued. On nil return the caller holds a slot and
// must call release.
func (e *Executor) admit(ctx context.Context) error {
	a := e.admitted.Add(1)
	if e.draining.Load() {
		e.admitted.Add(-1)
		e.drainRej.Add(1)
		return ErrDraining
	}
	if e.cfg.QueueDepth > 0 && a > int64(e.cfg.Workers+e.cfg.QueueDepth) {
		e.admitted.Add(-1)
		e.shed.Add(1)
		return ErrOverloaded
	}
	select {
	case e.sem <- struct{}{}:
		e.inflight.Add(1)
		return nil
	case <-ctx.Done():
		e.admitted.Add(-1)
		return fmt.Errorf("engine: queued query aborted: %w", ctx.Err())
	}
}

// release returns the worker slot taken by a successful admit.
func (e *Executor) release() {
	e.inflight.Add(-1)
	<-e.sem
	e.admitted.Add(-1)
}

// AdmissionStats is a lock-free snapshot of the executor's admission state.
type AdmissionStats struct {
	// Inflight counts queries currently holding a worker slot; Queued counts
	// admitted queries still waiting for one.
	Inflight int64 `json:"inflight"`
	Queued   int64 `json:"queued"`
	// Shed counts queries rejected with ErrOverloaded; DrainRejected those
	// rejected with ErrDraining.
	Shed          int64 `json:"shed_requests"`
	DrainRejected int64 `json:"drain_rejected"`
	// Draining reports that StartDrain has been called.
	Draining bool `json:"draining"`
}

// AdmissionStats returns the current admission counters. Lock-free; a
// snapshot under traffic is approximate (Queued is derived and clamped).
func (e *Executor) AdmissionStats() AdmissionStats {
	inflight := e.inflight.Load()
	queued := e.admitted.Load() - inflight
	if queued < 0 {
		queued = 0
	}
	return AdmissionStats{
		Inflight:      inflight,
		Queued:        queued,
		Shed:          e.shed.Load(),
		DrainRejected: e.drainRej.Load(),
		Draining:      e.draining.Load(),
	}
}

// StartDrain flips the executor into drain mode: every subsequent admission
// is rejected with ErrDraining, while queries already admitted (queued or
// running) proceed normally. Idempotent; there is no way back.
func (e *Executor) StartDrain() { e.draining.Store(true) }

// Draining reports whether StartDrain has been called.
func (e *Executor) Draining() bool { return e.draining.Load() }

// DrainWait blocks until every admitted query has released its slot or ctx
// is done, whichever comes first; it returns ctx's error in the latter case
// (queries still running keep running — the caller decides how hard to
// stop). Call StartDrain first, or new admissions can starve the wait.
func (e *Executor) DrainWait(ctx context.Context) error {
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	for {
		if e.admitted.Load() == 0 {
			return nil
		}
		select {
		case <-tick.C:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// srcFor returns the source to run a query against under ctx: disk-backed
// sources get a view whose page reads are bound to ctx (retry backoff and
// coalesced waits abort when the query is cancelled); other sources are
// returned unchanged, since their reads never block on a device.
func (e *Executor) srcFor(ctx context.Context) expand.Source {
	if n, ok := e.src.(*storage.Network); ok {
		return n.WithReadContext(ctx)
	}
	return e.src
}

// Stats returns a snapshot of the lifetime counters.
func (e *Executor) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// Do runs one request, waiting for a worker slot first (the executor's
// parallelism bound applies across Do and Execute callers combined). A
// context cancelled while queued returns immediately without running the
// query; an executor that is draining or over its queue bound rejects with
// ErrDraining/ErrOverloaded without running it.
func (e *Executor) Do(ctx context.Context, req Request) Response {
	if err := e.admit(ctx); err != nil {
		resp := Response{Err: err}
		e.record(resp)
		return resp
	}
	defer e.release()
	return e.run(ctx, req, 0)
}

// Execute runs a batch through the worker pool and returns responses
// positionally aligned with reqs. Each job acquires a slot from the same
// semaphore Do uses, so the executor's parallelism bound holds across
// overlapping Execute and Do callers combined. Cancelling ctx aborts
// in-flight queries at their next interrupt poll and fails the rest without
// running them; Execute always returns len(reqs) responses.
func (e *Executor) Execute(ctx context.Context, reqs []Request) []Response {
	out := make([]Response, len(reqs))
	workers := e.cfg.Workers
	if workers > len(reqs) {
		workers = len(reqs)
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if err := e.admit(ctx); err != nil {
					out[i] = Response{Index: i, Err: err}
					e.record(out[i])
					continue
				}
				out[i] = e.run(ctx, reqs[i], i)
				e.release()
			}
		}()
	}
	for i := range reqs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return out
}

// prepare applies the request's timeout to ctx and attaches pooled scratch
// to its options. It does NOT bind ctx into the interrupt hook — run does
// that itself and the streaming path leaves it to core.SkylineSeq, so every
// interrupt poll carries exactly one ctx check. The returned cleanup
// cancels the derived context and returns the scratch; callers must run it
// when the query finishes.
func (e *Executor) prepare(ctx context.Context, req Request) (context.Context, core.Options, func()) {
	timeout := req.Timeout
	if timeout == 0 {
		timeout = e.cfg.Timeout
	}
	cancel := context.CancelFunc(func() {})
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, timeout)
	}
	opts := req.Opts
	if opts.Bounds == nil {
		opts.Bounds = e.bounds
	}
	release := func() {}
	if opts.Scratch == nil {
		if sc := e.pool.Get(); sc != nil {
			opts.Scratch = sc
			release = func() { e.pool.Put(sc) }
		}
	}
	return ctx, opts, func() { release(); cancel() }
}

// run executes one request on the calling goroutine with panic isolation.
func (e *Executor) run(ctx context.Context, req Request, idx int) (resp Response) {
	resp.Index = idx
	start := time.Now()
	defer func() {
		if r := recover(); r != nil {
			resp.Result = nil
			resp.Err = panicError{fmt.Errorf("engine: %v query panicked: %v", req.Kind, r)}
		}
		resp.Latency = time.Since(start)
		e.record(resp)
	}()

	ctx, opts, cleanup := e.prepare(ctx, req)
	defer cleanup()
	opts = opts.BindContext(ctx)
	if err := ctx.Err(); err != nil {
		resp.Err = err
		return
	}
	src := e.srcFor(ctx)

	if e.cache != nil && cacheable(req, opts) {
		if key, scale, ok := cacheKey(req, opts); ok {
			val, hit, err := e.cache.Do(key, func() (rescache.Value, []rescache.Tag, error) {
				res, err := e.execute(src, req, opts)
				if err != nil {
					return rescache.Value{}, nil, err
				}
				return rescache.Value{Result: res, Scale: scale}, resultTags(e.src, req.Loc, res), nil
			})
			if err != nil {
				resp.Err = err
				return
			}
			resp.Result = val.ResultAt(scale)
			resp.Cached = hit
			return
		}
	}
	resp.Result, resp.Err = e.execute(src, req, opts)
	return
}

// execute dispatches one prepared request to the core algorithms against src
// (the executor's source, possibly wrapped per query by srcFor).
func (e *Executor) execute(src expand.Source, req Request, opts core.Options) (*core.Result, error) {
	switch req.Kind {
	case Skyline:
		return core.Skyline(src, req.Loc, opts)
	case TopK:
		return core.TopK(src, req.Loc, req.Agg, req.K, opts)
	case Nearest:
		return core.Nearest(src, req.Loc, req.CostIdx, req.K, opts)
	case Within:
		return core.Within(src, req.Loc, req.Budget, opts)
	case MultiSourceSkyline:
		return core.MultiSourceSkyline(src, req.CostIdx, req.Locs, opts)
	case MultiSourceTopK:
		return core.MultiSourceTopK(src, req.CostIdx, req.Locs, req.Agg, req.K, opts)
	default:
		return nil, fmt.Errorf("engine: unknown query kind %d", int(req.Kind))
	}
}

// StreamSkyline runs a progressive skyline query on the calling goroutine
// under the executor's parallelism bound (the same semaphore Do and Execute
// use), delivering each confirmed facility to emit as soon as the driver
// proves it undominated. emit returning false stops the query early — the
// backing for the server's NDJSON streaming endpoint. The response carries
// no Result: facilities were already delivered. Per-request timeouts, panic
// isolation, scratch pooling and statistics match Do.
func (e *Executor) StreamSkyline(ctx context.Context, req Request, emit func(core.Facility) bool) (resp Response) {
	if err := e.admit(ctx); err != nil {
		resp = Response{Err: err}
		e.record(resp)
		return resp
	}
	defer e.release()

	start := time.Now()
	defer func() {
		if r := recover(); r != nil {
			resp.Result = nil
			resp.Err = panicError{fmt.Errorf("engine: streaming skyline panicked: %v", r)}
		}
		resp.Latency = time.Since(start)
		e.record(resp)
	}()

	ctx, opts, cleanup := e.prepare(ctx, req)
	defer cleanup()
	if err := ctx.Err(); err != nil {
		resp.Err = err
		return
	}
	for f, err := range core.SkylineSeq(ctx, e.srcFor(ctx), req.Loc, opts) {
		if err != nil {
			resp.Err = err
			return
		}
		if !emit(f) {
			return
		}
	}
	return
}

// StreamTopK runs an incremental top-k query on the calling goroutine under
// the executor's parallelism bound, delivering facilities to emit in
// ascending score order as the iterator produces them. The query stops after
// req.K deliveries when req.K > 0 (zero streams until the facility set is
// exhausted), or earlier when emit returns false. The response carries no
// Result: facilities were already delivered. Per-request timeouts, panic
// isolation, scratch pooling and statistics match StreamSkyline.
func (e *Executor) StreamTopK(ctx context.Context, req Request, emit func(core.Facility) bool) (resp Response) {
	if err := e.admit(ctx); err != nil {
		resp = Response{Err: err}
		e.record(resp)
		return resp
	}
	defer e.release()

	start := time.Now()
	defer func() {
		if r := recover(); r != nil {
			resp.Result = nil
			resp.Err = panicError{fmt.Errorf("engine: streaming top-k panicked: %v", r)}
		}
		resp.Latency = time.Since(start)
		e.record(resp)
	}()

	ctx, opts, cleanup := e.prepare(ctx, req)
	defer cleanup()
	if err := ctx.Err(); err != nil {
		resp.Err = err
		return
	}
	n := 0
	for f, err := range core.TopKSeq(ctx, e.srcFor(ctx), req.Loc, req.Agg, opts) {
		if err != nil {
			resp.Err = err
			return
		}
		if !emit(f) {
			return
		}
		n++
		if req.K > 0 && n >= req.K {
			return
		}
	}
	return
}

// panicError marks errors produced by the recover path so record can count
// them without re-parsing messages.
type panicError struct{ error }

func (p panicError) Unwrap() error { return p.error }

// IsPanic reports whether err came from the executor's panic recovery —
// always a server-side fault, never a malformed query.
func IsPanic(err error) bool {
	var pe panicError
	return errors.As(err, &pe)
}

func (e *Executor) record(resp Response) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if resp.Err == nil {
		e.stats.Completed++
		if resp.Result != nil && !resp.Cached {
			e.stats.NodeExpansions += int64(resp.Result.Stats.NodeExpansions)
			e.stats.PrunedNodes += int64(resp.Result.Stats.PrunedNodes)
		}
	} else {
		e.stats.Failed++
		if errors.Is(resp.Err, context.Canceled) || errors.Is(resp.Err, context.DeadlineExceeded) {
			e.stats.Canceled++
		}
		var pe panicError
		if errors.As(resp.Err, &pe) {
			e.stats.Panics++
		}
	}
	e.stats.TotalLatency += resp.Latency
	if resp.Latency > e.stats.MaxLatency {
		e.stats.MaxLatency = resp.Latency
	}
}
