package engine

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"mcn/internal/core"
	"mcn/internal/expand"
	"mcn/internal/gen"
	"mcn/internal/graph"
	"mcn/internal/storage"
	"mcn/internal/vec"
)

// testInstance builds a small synthetic network with query locations.
func testInstance(t testing.TB) *gen.Instance {
	t.Helper()
	inst, err := gen.MakeInstance(gen.InstanceConfig{
		Nodes: 1_500, Facilities: 200, Clusters: 4, D: 3, Seed: 7, Queries: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

// sources returns the in-memory and disk-resident views of one instance.
func sources(t testing.TB, inst *gen.Instance) map[string]expand.Source {
	t.Helper()
	dev, err := storage.BuildMem(inst.Graph)
	if err != nil {
		t.Fatal(err)
	}
	disk, err := storage.Open(dev, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]expand.Source{
		"memory": expand.NewMemorySource(inst.Graph),
		"disk":   disk,
	}
}

// mixedRequests builds a batch cycling through all four query kinds.
func mixedRequests(inst *gen.Instance, n int) []Request {
	agg := vec.NewWeighted(0.5, 0.3, 0.2)
	budget := vec.Of(400, 400, 400)
	reqs := make([]Request, n)
	for i := range reqs {
		loc := inst.Queries[i%len(inst.Queries)]
		switch i % 4 {
		case 0:
			reqs[i] = Request{Kind: Skyline, Loc: loc, Opts: core.Options{Engine: core.CEA}}
		case 1:
			reqs[i] = Request{Kind: TopK, Loc: loc, Agg: agg, K: 3}
		case 2:
			reqs[i] = Request{Kind: Nearest, Loc: loc, CostIdx: i % 3, K: 5}
		case 3:
			reqs[i] = Request{Kind: Within, Loc: loc, Budget: budget}
		}
	}
	return reqs
}

func ids(res *core.Result) []graph.FacilityID {
	if res == nil {
		return nil
	}
	return res.IDs()
}

// The batch executor must produce, under 8-way concurrency over one shared
// network (in-memory and disk-resident alike), exactly the answers the same
// requests produce sequentially. Run with -race.
func TestExecutorMatchesSequential(t *testing.T) {
	inst := testInstance(t)
	for name, src := range sources(t, inst) {
		t.Run(name, func(t *testing.T) {
			reqs := mixedRequests(inst, 64)

			// Sequential reference: a single-worker executor.
			seq := New(src, Config{Workers: 1})
			want := seq.Execute(context.Background(), reqs)

			exec := New(src, Config{Workers: 8})
			got := exec.Execute(context.Background(), reqs)
			if len(got) != len(reqs) {
				t.Fatalf("got %d responses for %d requests", len(got), len(reqs))
			}
			for i := range got {
				if got[i].Err != nil {
					t.Fatalf("request %d (%v): %v", i, reqs[i].Kind, got[i].Err)
				}
				if got[i].Index != i {
					t.Fatalf("response %d carries index %d", i, got[i].Index)
				}
				if !reflect.DeepEqual(ids(got[i].Result), ids(want[i].Result)) {
					t.Errorf("request %d (%v): concurrent %v != sequential %v",
						i, reqs[i].Kind, ids(got[i].Result), ids(want[i].Result))
				}
			}
			s := exec.Stats()
			if s.Completed != int64(len(reqs)) || s.Failed != 0 {
				t.Errorf("stats = %+v, want %d completed", s, len(reqs))
			}
			if s.MeanLatency() <= 0 || s.MaxLatency < s.MeanLatency() {
				t.Errorf("implausible latency stats %+v", s)
			}
		})
	}
}

// Concurrent Do calls from many goroutines share the worker bound and the
// stats, without racing (run with -race).
func TestExecutorConcurrentDo(t *testing.T) {
	inst := testInstance(t)
	src := expand.NewMemorySource(inst.Graph)
	exec := New(src, Config{Workers: 4})
	reqs := mixedRequests(inst, 32)

	var wg sync.WaitGroup
	errs := make([]error, len(reqs))
	for i := range reqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp := exec.Do(context.Background(), reqs[i])
			errs[i] = resp.Err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("request %d: %v", i, err)
		}
	}
	if got := exec.Stats().Queries(); got != int64(len(reqs)) {
		t.Errorf("stats count %d queries, want %d", got, len(reqs))
	}
}

// gaugeSource tracks the peak number of in-flight source accesses, yielding
// the processor inside each call so any overlap beyond the executor's bound
// gets scheduled and observed.
type gaugeSource struct {
	expand.Source
	mu       sync.Mutex
	cur, max int
}

func (s *gaugeSource) Adjacency(v graph.NodeID) ([]graph.AdjEntry, error) {
	s.mu.Lock()
	s.cur++
	if s.cur > s.max {
		s.max = s.cur
	}
	s.mu.Unlock()
	runtime.Gosched()
	defer func() {
		s.mu.Lock()
		s.cur--
		s.mu.Unlock()
	}()
	return s.Source.Adjacency(v)
}

// The parallelism bound must hold across overlapping Execute and Do callers
// on one executor: every query path acquires the shared semaphore, so source
// accesses can never overlap more than Workers deep.
func TestExecutorBoundSharedAcrossCallers(t *testing.T) {
	inst := testInstance(t)
	src := &gaugeSource{Source: expand.NewMemorySource(inst.Graph)}
	exec := New(src, Config{Workers: 2})

	// Top-k only: enough source traffic to expose overlap without the full
	// mixed workload's runtime.
	agg := vec.NewWeighted(1, 1, 1)
	batch := make([]Request, 6)
	for i := range batch {
		batch[i] = Request{Kind: TopK, Loc: inst.Queries[i%len(inst.Queries)], Agg: agg, K: 3}
	}
	var wg sync.WaitGroup
	for b := 0; b < 2; b++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, resp := range exec.Execute(context.Background(), batch) {
				if resp.Err != nil {
					t.Error(resp.Err)
				}
			}
		}()
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if resp := exec.Do(context.Background(), Request{Kind: Skyline, Loc: inst.Queries[i%len(inst.Queries)]}); resp.Err != nil {
				t.Error(resp.Err)
			}
		}(i)
	}
	wg.Wait()
	if src.max > 2 {
		t.Errorf("observed %d concurrent source accesses, executor bound is 2", src.max)
	}
}

// A cancelled context fails queued queries without running them and aborts
// in-flight queries mid-expansion.
func TestExecutorCancellation(t *testing.T) {
	inst := testInstance(t)
	src := expand.NewMemorySource(inst.Graph)
	exec := New(src, Config{Workers: 2})

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	got := exec.Execute(ctx, mixedRequests(inst, 8))
	for i, resp := range got {
		if !errors.Is(resp.Err, context.Canceled) {
			t.Errorf("request %d: err = %v, want context.Canceled", i, resp.Err)
		}
		if resp.Result != nil {
			t.Errorf("request %d: got a result from a cancelled query", i)
		}
	}
	if s := exec.Stats(); s.Canceled != 8 {
		t.Errorf("stats.Canceled = %d, want 8", s.Canceled)
	}
}

// Per-request timeouts abort long queries mid-flight through the interrupt
// hook rather than letting them run to completion.
func TestExecutorTimeout(t *testing.T) {
	inst := testInstance(t)
	src := expand.NewMemorySource(inst.Graph)
	exec := New(src, Config{Workers: 1, Timeout: time.Nanosecond})

	resp := exec.Do(context.Background(), Request{Kind: Skyline, Loc: inst.Queries[0]})
	if !errors.Is(resp.Err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", resp.Err)
	}

	// A per-request timeout overrides the executor default.
	resp = exec.Do(context.Background(), Request{Kind: Skyline, Loc: inst.Queries[0], Timeout: time.Minute})
	if resp.Err != nil {
		t.Fatalf("generous per-request timeout still failed: %v", resp.Err)
	}
}

// A panicking query must not take down its worker or the batch: the panic is
// converted to that query's error and every other query still answers.
func TestExecutorPanicIsolation(t *testing.T) {
	inst := testInstance(t)
	src := expand.NewMemorySource(inst.Graph)
	exec := New(src, Config{Workers: 4})

	reqs := mixedRequests(inst, 12)
	reqs[5] = Request{Kind: TopK, Loc: inst.Queries[0], Agg: nil, K: 2} // nil aggregate panics in core
	got := exec.Execute(context.Background(), reqs)
	for i, resp := range got {
		if i == 5 {
			if resp.Err == nil || !strings.Contains(resp.Err.Error(), "panicked") {
				t.Errorf("poisoned request: err = %v, want panic error", resp.Err)
			}
			continue
		}
		if resp.Err != nil {
			t.Errorf("request %d: %v", i, resp.Err)
		}
	}
	s := exec.Stats()
	if s.Panics != 1 || s.Failed != 1 || s.Completed != int64(len(reqs)-1) {
		t.Errorf("stats = %+v, want 1 panic, 1 failed, %d completed", s, len(reqs)-1)
	}
}

// An unknown kind is an error, not a panic.
func TestExecutorUnknownKind(t *testing.T) {
	inst := testInstance(t)
	exec := New(expand.NewMemorySource(inst.Graph), Config{})
	resp := exec.Do(context.Background(), Request{Kind: Kind(42), Loc: inst.Queries[0]})
	if resp.Err == nil || !strings.Contains(resp.Err.Error(), "unknown query kind") {
		t.Fatalf("err = %v, want unknown-kind error", resp.Err)
	}
	if fmt.Sprint(Kind(42)) != "Kind(42)" || Skyline.String() != "skyline" {
		t.Fatalf("Kind.String misbehaves: %v %v", Kind(42), Skyline)
	}
}
