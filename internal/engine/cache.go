package engine

import (
	"mcn/internal/core"
	"mcn/internal/graph"
	"mcn/internal/rescache"
)

// SetCache attaches a serving-layer result cache. Attach it before the
// executor starts serving queries; a nil cache (the default) disables
// caching. Several executors may share one cache — the facade points every
// executor it creates at the network's cache so Batch calls and the HTTP
// server's long-lived executor hit the same entries.
func (e *Executor) SetCache(c *rescache.Cache) { e.cache = c }

// Cache returns the attached result cache, or nil.
func (e *Executor) Cache() *rescache.Cache { return e.cache }

// cacheable reports whether a request may go through the result cache:
// progressive delivery (OnResult) must observe the query run, so it always
// executes.
func cacheable(req Request, opts core.Options) bool {
	return opts.OnResult == nil
}

// cacheKey canonicalizes req into a cache key; ok is false for requests the
// cache cannot key (opaque aggregates, unknown kinds).
func cacheKey(req Request, opts core.Options) (key string, scale float64, ok bool) {
	var kind byte
	switch req.Kind {
	case Skyline:
		kind = rescache.KindSkyline
	case TopK:
		kind = rescache.KindTopK
	case Nearest:
		kind = rescache.KindNearest
	case Within:
		kind = rescache.KindWithin
	default:
		return "", 0, false
	}
	spec := rescache.KeySpec{
		Kind:           kind,
		Interval:       -1,
		Engine:         byte(opts.Engine),
		NoEnhancements: opts.NoEnhancements,
		Edge:           req.Loc.Edge,
		T:              req.Loc.T,
		Agg:            req.Agg,
		K:              req.K,
		CostIdx:        req.CostIdx,
		Budget:         req.Budget,
	}
	return spec.Key()
}

// resultTags returns the invalidation tags a completed result depends on:
// the query location's edge plus every edge carrying a result facility. A
// dynamic update touching any of them kills the entry; updates elsewhere
// leave it alone (the documented relaxed-consistency contract).
func resultTags(src interface {
	FacilityEdge(graph.FacilityID) (graph.EdgeID, error)
}, loc graph.Location, res *core.Result) []rescache.Tag {
	tags := make([]rescache.Tag, 0, len(res.Facilities)+1)
	tags = append(tags, rescache.EdgeTag(loc.Edge))
	for _, f := range res.Facilities {
		if e, err := src.FacilityEdge(f.ID); err == nil {
			tags = append(tags, rescache.EdgeTag(e))
		}
	}
	return tags
}
