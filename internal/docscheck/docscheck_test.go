package docscheck

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"unicode"
)

// repoRoot walks up from the working directory to the directory holding
// go.mod.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above the working directory")
		}
		dir = parent
	}
}

// markdownFiles returns every .md file in the repository, skipping VCS and
// test fixture directories.
func markdownFiles(t *testing.T, root string) []string {
	t.Helper()
	var files []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case ".git", "testdata", ".claude":
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".md") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no markdown files found")
	}
	return files
}

// stripFencedCode removes ``` blocks so code snippets cannot produce false
// link matches.
func stripFencedCode(src string) string {
	var out strings.Builder
	inFence := false
	for _, line := range strings.Split(src, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if !inFence {
			out.WriteString(line)
			out.WriteByte('\n')
		}
	}
	return out.String()
}

// githubSlug reproduces GitHub's heading-anchor algorithm closely enough
// for this repository: lowercase, drop everything but letters, digits,
// spaces, hyphens and underscores, then turn spaces into hyphens.
func githubSlug(heading string) string {
	heading = strings.ReplaceAll(heading, "`", "")
	var b strings.Builder
	for _, r := range strings.TrimSpace(heading) {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r) || r == '-' || r == '_':
			b.WriteRune(unicode.ToLower(r))
		case r == ' ':
			b.WriteByte('-')
		}
	}
	return b.String()
}

// anchors returns the set of heading anchors a markdown file defines.
func anchors(src string) map[string]bool {
	out := map[string]bool{}
	for _, line := range strings.Split(stripFencedCode(src), "\n") {
		trimmed := strings.TrimSpace(line)
		if !strings.HasPrefix(trimmed, "#") {
			continue
		}
		heading := strings.TrimLeft(trimmed, "#")
		if heading == trimmed || (heading != "" && heading[0] != ' ') {
			continue // not a heading (e.g. a #! line or hashtag)
		}
		out[githubSlug(heading)] = true
	}
	return out
}

var linkRe = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestMarkdownLinks fails on any relative markdown link whose target file
// or heading anchor does not exist — the docs-freshness gate: renaming a
// file or rewording a heading breaks the build instead of silently
// stranding readers.
func TestMarkdownLinks(t *testing.T) {
	root := repoRoot(t)
	files := markdownFiles(t, root)

	contents := make(map[string]string, len(files))
	for _, f := range files {
		b, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		contents[f] = string(b)
	}

	for _, f := range files {
		rel, _ := filepath.Rel(root, f)
		for _, m := range linkRe.FindAllStringSubmatch(stripFencedCode(contents[f]), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") {
				continue
			}
			path, frag, _ := strings.Cut(target, "#")
			dest := f
			if path != "" {
				dest = filepath.Join(filepath.Dir(f), path)
				info, err := os.Stat(dest)
				if err != nil {
					t.Errorf("%s: dead link %q: %v", rel, target, err)
					continue
				}
				if info.IsDir() || frag == "" {
					continue
				}
			}
			body, ok := contents[dest]
			if !ok {
				b, err := os.ReadFile(dest)
				if err != nil {
					t.Errorf("%s: link %q: %v", rel, target, err)
					continue
				}
				body = string(b)
			}
			if frag != "" && !anchors(body)[frag] {
				t.Errorf("%s: link %q: no heading with anchor #%s in %s",
					rel, target, frag, filepath.Base(dest))
			}
		}
	}
}

// TestPackageComments fails when a Go package lacks a `// Package ...` doc
// comment, keeping `go doc ./...` a coherent tour of the codebase. Package
// main commands are held to the same bar: their doc comment is the CLI's
// usage documentation.
func TestPackageComments(t *testing.T) {
	root := repoRoot(t)
	seen := map[string]bool{} // package dirs with a doc comment
	dirs := map[string]string{}

	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case ".git", "testdata", ".claude":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") || strings.HasSuffix(d.Name(), "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, path, nil, parser.PackageClauseOnly|parser.ParseComments)
		if err != nil {
			return err
		}
		dirs[dir] = file.Name.Name
		// Libraries must follow the `// Package <name> ...` convention;
		// commands and examples conventionally open `// Command <name> ...`
		// or describe the program, so any non-empty doc comment counts.
		if file.Doc != nil {
			doc := strings.TrimSpace(file.Doc.Text())
			if file.Name.Name == "main" && doc != "" {
				seen[dir] = true
			}
			if strings.HasPrefix(doc, "Package "+file.Name.Name) {
				seen[dir] = true
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for dir, name := range dirs {
		if !seen[dir] {
			rel, _ := filepath.Rel(root, dir)
			t.Errorf("package %s (%s): no file carries a package doc comment", name, rel)
		}
	}
}
