// Package docscheck keeps the documentation from rotting: its tests verify
// that every relative link and heading anchor in the repository's markdown
// files resolves, and that every Go package carries a godoc package comment
// (so `go doc ./...` reads as a coherent tour). It contains no runtime code
// — the package exists so the checks run inside the ordinary test suite and
// CI instead of needing an external link-checker dependency.
package docscheck
