package gen

import (
	"fmt"
	"math"
	"math/rand"
)

// Placement positions one facility on an edge at fraction T from the edge's
// first endpoint.
type Placement struct {
	Edge uint32
	T    float64
}

// ClusterConfig controls clustered facility placement, reproducing the
// paper's workload: facilities form Gaussian clusters around random network
// nodes ("most of the facilities are located around specific locations in a
// city", Sec. VI).
type ClusterConfig struct {
	// Count is the number of facilities (paper default 100K).
	Count int
	// Clusters is the number of Gaussian clusters (paper default 10).
	Clusters int
	// Sigma is the cluster standard deviation in coordinate units. Zero
	// selects a default of 3% of the bounding-box diagonal.
	Sigma float64
	Seed  int64
}

// ClusteredFacilities samples facility placements in Gaussian clusters
// centred at uniformly random nodes. Each facility picks a cluster
// uniformly, samples a displaced point, snaps to the nearest node (via a
// spatial grid) and lands at a uniform position on a random incident edge.
func ClusteredFacilities(t *Topology, cfg ClusterConfig) []Placement {
	if cfg.Count < 0 {
		panic(fmt.Sprintf("gen: negative facility count %d", cfg.Count))
	}
	if cfg.Clusters < 1 {
		cfg.Clusters = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	minX, minY, maxX, maxY := bounds(t)
	if cfg.Sigma == 0 {
		cfg.Sigma = 0.03 * math.Hypot(maxX-minX, maxY-minY)
	}

	idx := newNodeIndex(t, minX, minY, maxX, maxY)
	incident := incidentEdges(t)

	centers := make([]uint32, cfg.Clusters)
	for i := range centers {
		centers[i] = uint32(rng.Intn(t.NumNodes()))
	}

	out := make([]Placement, 0, cfg.Count)
	for len(out) < cfg.Count {
		c := centers[rng.Intn(len(centers))]
		px := t.X[c] + rng.NormFloat64()*cfg.Sigma
		py := t.Y[c] + rng.NormFloat64()*cfg.Sigma
		v := idx.nearest(px, py)
		edges := incident[v]
		if len(edges) == 0 {
			continue // isolated node; resample
		}
		e := edges[rng.Intn(len(edges))]
		out = append(out, Placement{Edge: e, T: rng.Float64()})
	}
	return out
}

// UniformFacilities samples placements uniformly over edges.
func UniformFacilities(t *Topology, count int, rng *rand.Rand) []Placement {
	out := make([]Placement, count)
	for i := range out {
		out[i] = Placement{Edge: uint32(rng.Intn(t.NumEdges())), T: rng.Float64()}
	}
	return out
}

func bounds(t *Topology) (minX, minY, maxX, maxY float64) {
	minX, minY = math.Inf(1), math.Inf(1)
	maxX, maxY = math.Inf(-1), math.Inf(-1)
	for i := range t.X {
		minX = math.Min(minX, t.X[i])
		maxX = math.Max(maxX, t.X[i])
		minY = math.Min(minY, t.Y[i])
		maxY = math.Max(maxY, t.Y[i])
	}
	return
}

func incidentEdges(t *Topology) [][]uint32 {
	inc := make([][]uint32, t.NumNodes())
	for e := range t.EU {
		inc[t.EU[e]] = append(inc[t.EU[e]], uint32(e))
		inc[t.EV[e]] = append(inc[t.EV[e]], uint32(e))
	}
	return inc
}

// nodeIndex is a uniform spatial grid over node coordinates supporting
// nearest-node queries, used to snap sampled cluster points to the network.
type nodeIndex struct {
	minX, minY float64
	cell       float64
	nx, ny     int
	buckets    [][]uint32
	t          *Topology
}

func newNodeIndex(t *Topology, minX, minY, maxX, maxY float64) *nodeIndex {
	n := t.NumNodes()
	side := int(math.Sqrt(float64(n)/4)) + 1
	w, h := maxX-minX, maxY-minY
	cell := math.Max(w, h) / float64(side)
	if cell <= 0 {
		cell = 1
	}
	idx := &nodeIndex{
		minX: minX, minY: minY, cell: cell,
		nx: int(w/cell) + 1, ny: int(h/cell) + 1,
		t: t,
	}
	idx.buckets = make([][]uint32, idx.nx*idx.ny)
	for i := 0; i < n; i++ {
		idx.buckets[idx.bucketOf(t.X[i], t.Y[i])] = append(idx.buckets[idx.bucketOf(t.X[i], t.Y[i])], uint32(i))
	}
	return idx
}

func (idx *nodeIndex) bucketOf(x, y float64) int {
	cx := int((x - idx.minX) / idx.cell)
	cy := int((y - idx.minY) / idx.cell)
	cx = clampInt(cx, 0, idx.nx-1)
	cy = clampInt(cy, 0, idx.ny-1)
	return cy*idx.nx + cx
}

// nearest returns the node closest to (x, y), searching grid rings outward
// from the containing cell.
func (idx *nodeIndex) nearest(x, y float64) uint32 {
	cx := clampInt(int((x-idx.minX)/idx.cell), 0, idx.nx-1)
	cy := clampInt(int((y-idx.minY)/idx.cell), 0, idx.ny-1)
	best := uint32(0)
	bestD := math.Inf(1)
	maxR := idx.nx + idx.ny
	for r := 0; r <= maxR; r++ {
		found := false
		for dy := -r; dy <= r; dy++ {
			for dx := -r; dx <= r; dx++ {
				if absInt(dx) != r && absInt(dy) != r {
					continue // ring only
				}
				bx, by := cx+dx, cy+dy
				if bx < 0 || bx >= idx.nx || by < 0 || by >= idx.ny {
					continue
				}
				for _, v := range idx.buckets[by*idx.nx+bx] {
					found = true
					d := math.Hypot(idx.t.X[v]-x, idx.t.Y[v]-y)
					if d < bestD {
						bestD, best = d, v
					}
				}
			}
		}
		// One extra ring after the first hit guards against a closer node in
		// the next ring (cells are square, distances are not).
		if found && r > 0 {
			break
		}
		if found && r == 0 {
			maxR = 1
		}
	}
	return best
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
