package gen

import (
	"fmt"
	"math"
	"math/rand"

	"mcn/internal/vec"
)

// Distribution selects how the d costs of an edge relate to each other,
// following the standard skyline-benchmark distributions of Börzsönyi et
// al. that the paper adopts (Sec. VI): in Correlated, when one cost is low
// the others tend to be low; in AntiCorrelated, when one is low the rest
// tend to be high.
type Distribution int

// Supported edge-cost distributions.
const (
	Independent Distribution = iota
	Correlated
	AntiCorrelated
)

// String implements fmt.Stringer.
func (d Distribution) String() string {
	switch d {
	case Independent:
		return "independent"
	case Correlated:
		return "correlated"
	case AntiCorrelated:
		return "anti-correlated"
	default:
		return fmt.Sprintf("Distribution(%d)", int(d))
	}
}

// ParseDistribution converts a string (as used in CLI flags) to a
// Distribution.
func ParseDistribution(s string) (Distribution, error) {
	switch s {
	case "independent", "ind", "uniform":
		return Independent, nil
	case "correlated", "corr":
		return Correlated, nil
	case "anti-correlated", "anticorrelated", "anti":
		return AntiCorrelated, nil
	default:
		return 0, fmt.Errorf("gen: unknown distribution %q (want independent|correlated|anti-correlated)", s)
	}
}

// costFloor keeps every generated multiplier strictly positive so that edge
// costs remain valid MCN weights.
const costFloor = 0.02

// AssignCosts draws one d-dimensional cost vector per edge of t. Every cost
// is the edge's Euclidean length scaled by a distribution-specific
// multiplier with mean ≈ 1, preserving the "network metric" character of
// each cost type (longer segments cost more on average in every dimension).
func AssignCosts(t *Topology, d int, dist Distribution, rng *rand.Rand) []vec.Costs {
	if d < 1 {
		panic(fmt.Sprintf("gen: d must be positive, got %d", d))
	}
	out := make([]vec.Costs, t.NumEdges())
	for e := range out {
		out[e] = multipliers(d, dist, rng).Scale(t.Len[e])
	}
	return out
}

// multipliers draws a d-vector of strictly positive multipliers under dist.
func multipliers(d int, dist Distribution, rng *rand.Rand) vec.Costs {
	m := make(vec.Costs, d)
	switch dist {
	case Independent:
		for i := range m {
			m[i] = costFloor + rng.Float64()*(2-2*costFloor)
		}
	case Correlated:
		base := costFloor + rng.Float64()*(2-2*costFloor)
		for i := range m {
			v := base + (rng.Float64()*2-1)*0.15
			m[i] = math.Max(costFloor, v)
		}
	case AntiCorrelated:
		// Spread a fixed per-edge budget across the d dimensions using a
		// Dirichlet(1,…,1) direction: a dimension that receives a small
		// share forces the others to receive large shares.
		budget := float64(d) * (0.8 + rng.NormFloat64()*0.12)
		if budget < float64(d)*0.3 {
			budget = float64(d) * 0.3
		}
		sum := 0.0
		for i := range m {
			m[i] = -math.Log(1 - rng.Float64())
			sum += m[i]
		}
		for i := range m {
			m[i] = math.Max(costFloor, budget*m[i]/sum)
		}
	default:
		panic(fmt.Sprintf("gen: unknown distribution %d", int(dist)))
	}
	return m
}

// UnitCosts assigns every edge its Euclidean length in all d dimensions.
// Useful for tests that need predictable distances.
func UnitCosts(t *Topology, d int) []vec.Costs {
	out := make([]vec.Costs, t.NumEdges())
	for e := range out {
		c := make(vec.Costs, d)
		for i := range c {
			c[i] = t.Len[e]
		}
		out[e] = c
	}
	return out
}

// RandomIntegerCosts draws small integer costs in [1, maxCost] independently
// per dimension. Integer costs deliberately produce ties, exercising the
// tie-robust paths of the query algorithms in property tests.
func RandomIntegerCosts(t *Topology, d, maxCost int, rng *rand.Rand) []vec.Costs {
	out := make([]vec.Costs, t.NumEdges())
	for e := range out {
		c := make(vec.Costs, d)
		for i := range c {
			c[i] = float64(1 + rng.Intn(maxCost))
		}
		out[e] = c
	}
	return out
}
