// Package gen synthesises multi-cost network workloads: road-like
// topologies, edge-cost distributions (independent, correlated,
// anti-correlated, as in the paper's Sec. VI), clustered facility sets and
// query locations. All generators are seeded and deterministic.
//
// The paper evaluates on the San Francisco road network (174,956 nodes,
// 223,001 edges) from Brinkhoff's generator, which is not redistributable
// here. RoadNetwork reproduces its structural profile — a sparse, almost
// planar graph with edge/node ratio ≈ 1.27 and many degree-2 chain nodes —
// from a jittered grid via connectivity-preserving pruning and edge
// subdivision. The query algorithms use connectivity only, so matching this
// profile preserves their behaviour.
package gen

import (
	"fmt"
	"math"
	"math/rand"
)

// Topology is network structure prior to cost assignment: node coordinates
// and undirected edges with Euclidean lengths.
type Topology struct {
	X, Y   []float64 // node coordinates
	EU, EV []uint32  // edge endpoints
	Len    []float64 // Euclidean edge lengths
}

// NumNodes returns the node count.
func (t *Topology) NumNodes() int { return len(t.X) }

// NumEdges returns the edge count.
func (t *Topology) NumEdges() int { return len(t.EU) }

func (t *Topology) addNode(x, y float64) uint32 {
	t.X = append(t.X, x)
	t.Y = append(t.Y, y)
	return uint32(len(t.X) - 1)
}

func (t *Topology) addEdge(u, v uint32) {
	t.EU = append(t.EU, u)
	t.EV = append(t.EV, v)
	t.Len = append(t.Len, math.Hypot(t.X[u]-t.X[v], t.Y[u]-t.Y[v]))
}

// Grid returns an nx × ny lattice with coordinates jittered by ±jitter cell
// units. Lattices are connected and (for jitter < 0.5) planar-like.
func Grid(nx, ny int, jitter float64, rng *rand.Rand) *Topology {
	if nx < 1 || ny < 1 {
		panic(fmt.Sprintf("gen: grid dimensions must be positive, got %dx%d", nx, ny))
	}
	t := &Topology{}
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			jx := (rng.Float64()*2 - 1) * jitter
			jy := (rng.Float64()*2 - 1) * jitter
			t.addNode(float64(x)+jx, float64(y)+jy)
		}
	}
	id := func(x, y int) uint32 { return uint32(y*nx + x) }
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			if x+1 < nx {
				t.addEdge(id(x, y), id(x+1, y))
			}
			if y+1 < ny {
				t.addEdge(id(x, y), id(x, y+1))
			}
		}
	}
	return t
}

// Path returns the n-node path v0—v1—…—v(n-1) with unit spacing.
func Path(n int) *Topology {
	t := &Topology{}
	for i := 0; i < n; i++ {
		t.addNode(float64(i), 0)
	}
	for i := 0; i+1 < n; i++ {
		t.addEdge(uint32(i), uint32(i+1))
	}
	return t
}

// Cycle returns the n-node cycle (n >= 3).
func Cycle(n int) *Topology {
	if n < 3 {
		panic("gen: cycle needs at least 3 nodes")
	}
	t := &Topology{}
	for i := 0; i < n; i++ {
		a := 2 * math.Pi * float64(i) / float64(n)
		t.addNode(math.Cos(a), math.Sin(a))
	}
	for i := 0; i < n; i++ {
		t.addEdge(uint32(i), uint32((i+1)%n))
	}
	return t
}

// RandomConnected returns a connected graph on n nodes: a random spanning
// tree plus extra random non-parallel edges. Used heavily by property tests.
func RandomConnected(n, extra int, rng *rand.Rand) *Topology {
	if n < 1 {
		panic("gen: need at least one node")
	}
	t := &Topology{}
	for i := 0; i < n; i++ {
		t.addNode(rng.Float64()*float64(n), rng.Float64()*float64(n))
	}
	perm := rng.Perm(n)
	seen := make(map[[2]uint32]bool)
	for i := 1; i < n; i++ {
		u := uint32(perm[rng.Intn(i)])
		v := uint32(perm[i])
		key := edgeKey(u, v)
		seen[key] = true
		t.addEdge(u, v)
	}
	for tries := 0; extra > 0 && tries < 50*extra && n > 2; tries++ {
		u := uint32(rng.Intn(n))
		v := uint32(rng.Intn(n))
		if u == v {
			continue
		}
		key := edgeKey(u, v)
		if seen[key] {
			continue
		}
		seen[key] = true
		t.addEdge(u, v)
		extra--
	}
	return t
}

func edgeKey(u, v uint32) [2]uint32 {
	if u > v {
		u, v = v, u
	}
	return [2]uint32{u, v}
}

// RoadConfig controls RoadNetwork.
type RoadConfig struct {
	// Nodes is the approximate final node count (default 175_000, matching
	// the paper's San Francisco network).
	Nodes int
	// EdgeNodeRatio is the target |E|/|V| (default 1.2746, SF's ratio).
	EdgeNodeRatio float64
	// PruneFrac is the fraction of grid edges removed before subdivision
	// (default 0.18); removal never disconnects the network.
	PruneFrac float64
	// Jitter perturbs grid coordinates (default 0.3 cell units).
	Jitter float64
	Seed   int64
}

func (c *RoadConfig) defaults() {
	if c.Nodes == 0 {
		c.Nodes = 175_000
	}
	if c.EdgeNodeRatio == 0 {
		c.EdgeNodeRatio = 1.2746
	}
	if c.PruneFrac == 0 {
		c.PruneFrac = 0.18
	}
	if c.Jitter == 0 {
		c.Jitter = 0.3
	}
}

// RoadNetwork synthesises a road-like topology with the configured node
// count and edge/node ratio. See the package comment for the rationale.
func RoadNetwork(cfg RoadConfig) *Topology {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	// The pipeline multiplies node count by (r1-1)/(t-1) during subdivision,
	// where r1 is the post-prune ratio and t the target; size the seed grid
	// accordingly.
	r0 := 2.0 // asymptotic grid ratio
	r1 := r0 * (1 - cfg.PruneFrac)
	growth := (r1 - 1) / (cfg.EdgeNodeRatio - 1)
	if growth < 1 {
		growth = 1
	}
	n0 := int(float64(cfg.Nodes) / growth)
	if n0 < 4 {
		n0 = 4
	}
	side := int(math.Sqrt(float64(n0)))
	if side < 2 {
		side = 2
	}
	t := Grid(side, (n0+side-1)/side, cfg.Jitter, rng)
	pruneConnected(t, cfg.PruneFrac, rng)
	subdivideToRatio(t, cfg.EdgeNodeRatio, rng)
	return t
}

// pruneConnected removes up to frac·|E| edges, never removing spanning-tree
// edges, so the network stays connected.
func pruneConnected(t *Topology, frac float64, rng *rand.Rand) {
	n := t.NumNodes()
	uf := newUnionFind(n)
	tree := make([]bool, t.NumEdges())
	order := rng.Perm(t.NumEdges())
	for _, e := range order {
		if uf.union(int(t.EU[e]), int(t.EV[e])) {
			tree[e] = true
		}
	}
	var removable []int
	for e, isTree := range tree {
		if !isTree {
			removable = append(removable, e)
		}
	}
	rng.Shuffle(len(removable), func(i, j int) { removable[i], removable[j] = removable[j], removable[i] })
	target := int(frac * float64(t.NumEdges()))
	if target > len(removable) {
		target = len(removable)
	}
	drop := make(map[int]bool, target)
	for _, e := range removable[:target] {
		drop[e] = true
	}
	keepEU, keepEV, keepLen := t.EU[:0], t.EV[:0], t.Len[:0]
	for e := range t.EU {
		if !drop[e] {
			keepEU = append(keepEU, t.EU[e])
			keepEV = append(keepEV, t.EV[e])
			keepLen = append(keepLen, t.Len[e])
		}
	}
	t.EU, t.EV, t.Len = keepEU, keepEV, keepLen
}

// subdivideToRatio inserts degree-2 chain nodes into random edges until
// |E|/|V| falls to the target (each insertion adds one node and one edge,
// driving the ratio towards 1).
func subdivideToRatio(t *Topology, target float64, rng *rand.Rand) {
	if target <= 1 {
		return
	}
	// k insertions: (E+k)/(N+k) = target  =>  k = (E - target·N)/(target - 1)
	k := int(math.Ceil((float64(t.NumEdges()) - target*float64(t.NumNodes())) / (target - 1)))
	for i := 0; i < k; i++ {
		e := rng.Intn(t.NumEdges())
		u, v := t.EU[e], t.EV[e]
		fr := 0.3 + rng.Float64()*0.4
		mx := t.X[u] + (t.X[v]-t.X[u])*fr
		my := t.Y[u] + (t.Y[v]-t.Y[u])*fr
		m := t.addNode(mx, my)
		// Replace edge e by (u,m) and append (m,v).
		t.EV[e] = m
		t.Len[e] = math.Hypot(t.X[u]-mx, t.Y[u]-my)
		t.addEdge(m, v)
	}
}

// IsConnected reports whether the topology is a single connected component.
func (t *Topology) IsConnected() bool {
	n := t.NumNodes()
	if n == 0 {
		return true
	}
	uf := newUnionFind(n)
	comps := n
	for e := range t.EU {
		if uf.union(int(t.EU[e]), int(t.EV[e])) {
			comps--
		}
	}
	return comps == 1
}

type unionFind struct {
	parent []int32
	rank   []int8
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int32, n), rank: make([]int8, n)}
	for i := range uf.parent {
		uf.parent[i] = int32(i)
	}
	return uf
}

func (uf *unionFind) find(x int) int32 {
	root := int32(x)
	for uf.parent[root] != root {
		root = uf.parent[root]
	}
	for int32(x) != root {
		next := uf.parent[x]
		uf.parent[x] = root
		x = int(next)
	}
	return root
}

// union merges the sets of a and b, reporting whether they were distinct.
func (uf *unionFind) union(a, b int) bool {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return false
	}
	if uf.rank[ra] < uf.rank[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	if uf.rank[ra] == uf.rank[rb] {
		uf.rank[ra]++
	}
	return true
}
