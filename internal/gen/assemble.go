package gen

import (
	"fmt"
	"math/rand"

	"mcn/internal/graph"
	"mcn/internal/vec"
)

// Assemble builds a graph.Graph from a topology, per-edge cost vectors and
// facility placements.
func Assemble(t *Topology, costs []vec.Costs, placements []Placement, directed bool) (*graph.Graph, error) {
	if len(costs) != t.NumEdges() {
		return nil, fmt.Errorf("gen: %d cost vectors for %d edges", len(costs), t.NumEdges())
	}
	d := 0
	if len(costs) > 0 {
		d = len(costs[0])
	}
	b := graph.NewBuilder(d, directed)
	for i := range t.X {
		b.AddNode(t.X[i], t.Y[i])
	}
	for e := range t.EU {
		b.AddEdge(graph.NodeID(t.EU[e]), graph.NodeID(t.EV[e]), costs[e])
	}
	for _, p := range placements {
		b.AddFacility(graph.EdgeID(p.Edge), p.T)
	}
	return b.Build()
}

// Instance bundles a generated workload: the network plus query locations.
type Instance struct {
	Graph   *graph.Graph
	Queries []graph.Location
}

// InstanceConfig configures MakeInstance, with paper defaults (Sec. VI)
// where a zero value is given.
type InstanceConfig struct {
	Nodes        int          // approx node count; default 175_000
	Facilities   int          // default 100_000
	Clusters     int          // default 10
	D            int          // cost types; default 4
	Dist         Distribution // default AntiCorrelated
	Queries      int          // default 100
	Directed     bool
	Seed         int64
	UniformFacs  bool // place facilities uniformly instead of clustered
	IntegerCosts int  // if > 0, draw integer costs in [1, IntegerCosts] (tie stress)
}

func (c *InstanceConfig) defaults() {
	if c.Nodes == 0 {
		c.Nodes = 175_000
	}
	if c.Facilities == 0 {
		c.Facilities = 100_000
	}
	if c.Clusters == 0 {
		c.Clusters = 10
	}
	if c.D == 0 {
		c.D = 4
	}
	if c.Queries == 0 {
		c.Queries = 100
	}
}

// MakeInstance generates a complete experiment workload per the paper's
// setup. Derived seeds keep the topology stable across parameter sweeps that
// only vary, say, |P| or d.
func MakeInstance(cfg InstanceConfig) (*Instance, error) {
	cfg.defaults()
	topo := RoadNetwork(RoadConfig{Nodes: cfg.Nodes, Seed: cfg.Seed})

	costRng := rand.New(rand.NewSource(cfg.Seed + 1))
	var costs []vec.Costs
	if cfg.IntegerCosts > 0 {
		costs = RandomIntegerCosts(topo, cfg.D, cfg.IntegerCosts, costRng)
	} else {
		costs = AssignCosts(topo, cfg.D, cfg.Dist, costRng)
	}

	var placements []Placement
	if cfg.UniformFacs {
		placements = UniformFacilities(topo, cfg.Facilities, rand.New(rand.NewSource(cfg.Seed+2)))
	} else {
		placements = ClusteredFacilities(topo, ClusterConfig{
			Count:    cfg.Facilities,
			Clusters: cfg.Clusters,
			Seed:     cfg.Seed + 2,
		})
	}

	g, err := Assemble(topo, costs, placements, cfg.Directed)
	if err != nil {
		return nil, err
	}
	return &Instance{Graph: g, Queries: QueryLocations(g, cfg.Queries, cfg.Seed+3)}, nil
}

// QueryLocations samples count uniformly random locations on the network
// (random edge, uniform position), as in the paper's evaluation.
func QueryLocations(g *graph.Graph, count int, seed int64) []graph.Location {
	rng := rand.New(rand.NewSource(seed))
	out := make([]graph.Location, count)
	for i := range out {
		out[i] = graph.Location{
			Edge: graph.EdgeID(rng.Intn(g.NumEdges())),
			T:    rng.Float64(),
		}
	}
	return out
}
