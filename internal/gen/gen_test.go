package gen

import (
	"math"
	"math/rand"
	"testing"
)

func TestGridStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := Grid(4, 3, 0, rng)
	if g.NumNodes() != 12 {
		t.Errorf("nodes = %d, want 12", g.NumNodes())
	}
	// 3 rows * 3 horizontal + 4 cols * 2 vertical = 9 + 8 = 17
	if g.NumEdges() != 17 {
		t.Errorf("edges = %d, want 17", g.NumEdges())
	}
	if !g.IsConnected() {
		t.Error("grid must be connected")
	}
}

func TestPathCycle(t *testing.T) {
	p := Path(5)
	if p.NumNodes() != 5 || p.NumEdges() != 4 {
		t.Errorf("path: (%d, %d), want (5, 4)", p.NumNodes(), p.NumEdges())
	}
	c := Cycle(6)
	if c.NumNodes() != 6 || c.NumEdges() != 6 {
		t.Errorf("cycle: (%d, %d), want (6, 6)", c.NumNodes(), c.NumEdges())
	}
	if !p.IsConnected() || !c.IsConnected() {
		t.Error("path and cycle must be connected")
	}
}

func TestRandomConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(40)
		g := RandomConnected(n, rng.Intn(20), rng)
		if !g.IsConnected() {
			t.Fatalf("trial %d: graph on %d nodes disconnected", trial, n)
		}
		if g.NumEdges() < n-1 {
			t.Fatalf("trial %d: %d edges < n-1", trial, g.NumEdges())
		}
	}
}

func TestRoadNetworkProfile(t *testing.T) {
	topo := RoadNetwork(RoadConfig{Nodes: 20_000, Seed: 42})
	if !topo.IsConnected() {
		t.Fatal("road network must be connected")
	}
	ratio := float64(topo.NumEdges()) / float64(topo.NumNodes())
	if math.Abs(ratio-1.2746) > 0.08 {
		t.Errorf("edge/node ratio = %.4f, want ≈ 1.2746 (SF profile)", ratio)
	}
	if topo.NumNodes() < 14_000 || topo.NumNodes() > 30_000 {
		t.Errorf("node count = %d, want roughly 20k", topo.NumNodes())
	}
}

func TestRoadNetworkDeterministic(t *testing.T) {
	a := RoadNetwork(RoadConfig{Nodes: 2_000, Seed: 7})
	b := RoadNetwork(RoadConfig{Nodes: 2_000, Seed: 7})
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed must give same sizes")
	}
	for i := range a.EU {
		if a.EU[i] != b.EU[i] || a.EV[i] != b.EV[i] {
			t.Fatal("same seed must give identical edges")
		}
	}
	c := RoadNetwork(RoadConfig{Nodes: 2_000, Seed: 8})
	same := c.NumNodes() == a.NumNodes() && c.NumEdges() == a.NumEdges()
	if same {
		different := false
		for i := range a.EU {
			if a.EU[i] != c.EU[i] {
				different = true
				break
			}
		}
		if !different {
			t.Error("different seeds produced identical networks")
		}
	}
}

// sampleCorrelation computes the Pearson correlation of the first two cost
// dimensions across edges.
func sampleCorrelation(costs [][]float64) float64 {
	n := float64(len(costs))
	var sx, sy, sxx, syy, sxy float64
	for _, c := range costs {
		x, y := c[0], c[1]
		sx += x
		sy += y
		sxx += x * x
		syy += y * y
		sxy += x * y
	}
	cov := sxy/n - (sx/n)*(sy/n)
	vx := sxx/n - (sx/n)*(sx/n)
	vy := syy/n - (sy/n)*(sy/n)
	return cov / math.Sqrt(vx*vy)
}

func TestCostDistributions(t *testing.T) {
	topo := Grid(60, 60, 0.2, rand.New(rand.NewSource(5)))
	for _, tc := range []struct {
		dist Distribution
		lo   float64
		hi   float64
	}{
		{Correlated, 0.5, 1.0},
		{AntiCorrelated, -1.0, -0.1},
		{Independent, -0.35, 0.35},
	} {
		rng := rand.New(rand.NewSource(6))
		costs := AssignCosts(topo, 2, tc.dist, rng)
		// Divide out the length factor to recover the multiplier correlation.
		norm := make([][]float64, len(costs))
		for e := range costs {
			norm[e] = []float64{costs[e][0] / topo.Len[e], costs[e][1] / topo.Len[e]}
		}
		r := sampleCorrelation(norm)
		if r < tc.lo || r > tc.hi {
			t.Errorf("%v: correlation = %.3f, want in [%g, %g]", tc.dist, r, tc.lo, tc.hi)
		}
		for e, c := range costs {
			for i, v := range c {
				if v <= 0 {
					t.Fatalf("%v: non-positive cost %g at edge %d dim %d", tc.dist, v, e, i)
				}
			}
		}
	}
}

func TestParseDistribution(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Distribution
	}{
		{"independent", Independent}, {"ind", Independent},
		{"correlated", Correlated}, {"corr", Correlated},
		{"anti-correlated", AntiCorrelated}, {"anti", AntiCorrelated},
	} {
		got, err := ParseDistribution(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseDistribution(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseDistribution("bogus"); err == nil {
		t.Error("bogus distribution accepted")
	}
}

func TestClusteredFacilities(t *testing.T) {
	topo := Grid(50, 50, 0.2, rand.New(rand.NewSource(9)))
	cfg := ClusterConfig{Count: 2_000, Clusters: 5, Seed: 10}
	pls := ClusteredFacilities(topo, cfg)
	if len(pls) != cfg.Count {
		t.Fatalf("placed %d facilities, want %d", len(pls), cfg.Count)
	}
	distinct := make(map[uint32]bool)
	for _, p := range pls {
		if int(p.Edge) >= topo.NumEdges() {
			t.Fatalf("placement on out-of-range edge %d", p.Edge)
		}
		if p.T < 0 || p.T >= 1 {
			t.Fatalf("placement fraction %g outside [0,1)", p.T)
		}
		distinct[p.Edge] = true
	}
	// Clustering must concentrate facilities: the number of distinct edges
	// used should be well below both the facility count and the edge count.
	if len(distinct) > topo.NumEdges()/2 {
		t.Errorf("facilities touch %d/%d edges; clustering looks uniform", len(distinct), topo.NumEdges())
	}
}

func TestUniformFacilities(t *testing.T) {
	topo := Grid(30, 30, 0, rand.New(rand.NewSource(11)))
	pls := UniformFacilities(topo, 5_000, rand.New(rand.NewSource(12)))
	distinct := make(map[uint32]bool)
	for _, p := range pls {
		distinct[p.Edge] = true
	}
	// With 5000 placements over ~1740 edges nearly all edges get one.
	if len(distinct) < topo.NumEdges()/2 {
		t.Errorf("uniform placement too concentrated: %d/%d edges", len(distinct), topo.NumEdges())
	}
}

func TestAssemble(t *testing.T) {
	topo := Path(4)
	costs := UnitCosts(topo, 2)
	pls := []Placement{{Edge: 0, T: 0.5}, {Edge: 2, T: 0.25}}
	g, err := Assemble(topo, costs, pls, false)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	if g.NumNodes() != 4 || g.NumEdges() != 3 || g.NumFacilities() != 2 {
		t.Errorf("sizes = (%d,%d,%d)", g.NumNodes(), g.NumEdges(), g.NumFacilities())
	}
	if g.D() != 2 {
		t.Errorf("D = %d, want 2", g.D())
	}
}

func TestAssembleSizeMismatch(t *testing.T) {
	topo := Path(4)
	costs := UnitCosts(topo, 2)[:1]
	if _, err := Assemble(topo, costs, nil, false); err == nil {
		t.Error("mismatched cost count accepted")
	}
}

func TestMakeInstanceSmall(t *testing.T) {
	inst, err := MakeInstance(InstanceConfig{
		Nodes: 3_000, Facilities: 500, Clusters: 4, D: 3, Queries: 10, Seed: 20,
	})
	if err != nil {
		t.Fatalf("MakeInstance: %v", err)
	}
	g := inst.Graph
	if g.D() != 3 {
		t.Errorf("D = %d", g.D())
	}
	if g.NumFacilities() != 500 {
		t.Errorf("facilities = %d", g.NumFacilities())
	}
	if len(inst.Queries) != 10 {
		t.Errorf("queries = %d", len(inst.Queries))
	}
	for _, q := range inst.Queries {
		if err := q.Validate(g); err != nil {
			t.Fatalf("invalid query location: %v", err)
		}
	}
}

func TestSubdivisionPreservesConnectivity(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	topo := Grid(20, 20, 0.1, rng)
	pruneConnected(topo, 0.18, rng)
	if !topo.IsConnected() {
		t.Fatal("pruning disconnected the grid")
	}
	subdivideToRatio(topo, 1.2746, rng)
	if !topo.IsConnected() {
		t.Fatal("subdivision disconnected the network")
	}
}

func TestUnionFind(t *testing.T) {
	uf := newUnionFind(5)
	if !uf.union(0, 1) {
		t.Error("first union must merge")
	}
	if uf.union(1, 0) {
		t.Error("repeat union must report same set")
	}
	uf.union(2, 3)
	if uf.find(0) == uf.find(2) {
		t.Error("separate sets must differ")
	}
	uf.union(1, 3)
	if uf.find(0) != uf.find(2) {
		t.Error("merged sets must share root")
	}
	if uf.find(4) == uf.find(0) {
		t.Error("singleton must stay apart")
	}
}
