package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mcn"
	"mcn/internal/serve"
)

// testGrid is the shared synthetic network every test backend serves: the
// replicas are identical by construction (same seed, same deterministic
// time profiles), which is the deployment the gateway targets.
type testGrid struct {
	graph *mcn.Graph
	tnet  *mcn.TimeNetwork
}

func newTestGrid(t *testing.T) *testGrid {
	t.Helper()
	g, err := mcn.Synthetic(mcn.SyntheticConfig{Nodes: 600, Facilities: 100, D: 3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	tnet := mcn.TimeDependent(g)
	// Dense profiles so period queries answer with several intervals.
	if err := mcn.AttachSyntheticProfiles(tnet, 600, 11); err != nil {
		t.Fatal(err)
	}
	return &testGrid{graph: g, tnet: tnet}
}

// backend starts one mcnserve replica over the grid.
func (tg *testGrid) backend(t *testing.T) *httptest.Server {
	t.Helper()
	srv := serve.New(mcn.FromGraph(tg.graph), serve.Config{
		Workers: 4,
		Timeout: time.Minute,
		TimeNet: tg.tnet,
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// gateway fronts the given backend URLs.
func newTestGateway(t *testing.T, policy Policy, urls ...string) (*Gateway, *httptest.Server) {
	t.Helper()
	m, err := NewMembership(urls, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	gw := NewGateway(m, policy, time.Minute)
	ts := httptest.NewServer(gw.Handler())
	t.Cleanup(ts.Close)
	return gw, ts
}

// randomURIs generates a seeded mix of every query kind the gateway routes.
func randomURIs(rng *rand.Rand, edges, n int) []string {
	uris := make([]string, 0, n)
	randT := func() string { return fmt.Sprintf("%g", float64(rng.Intn(11))/10) }
	engine := func() string {
		if rng.Intn(2) == 0 {
			return "&engine=lsa"
		}
		return "" // cea, the default
	}
	distinctEdges := func(k int) string {
		seen := map[int]bool{}
		parts := make([]string, 0, k)
		for len(parts) < k {
			e := rng.Intn(edges)
			if seen[e] {
				continue
			}
			seen[e] = true
			parts = append(parts, fmt.Sprint(e))
		}
		return strings.Join(parts, ",")
	}
	for len(uris) < n {
		e := rng.Intn(edges)
		var u string
		switch rng.Intn(8) {
		case 0:
			u = fmt.Sprintf("/skyline?edge=%d&t=%s%s", e, randT(), engine())
		case 1:
			u = fmt.Sprintf("/topk?edge=%d&t=%s&k=%d%s", e, randT(), 1+rng.Intn(6), engine())
		case 2:
			u = fmt.Sprintf("/nearest?edge=%d&t=%s&cost=%d&k=%d", e, randT(), rng.Intn(3), 1+rng.Intn(5))
		case 3:
			u = fmt.Sprintf("/within?edge=%d&t=%s&budget=%d,%d,%d",
				e, randT(), 10+rng.Intn(50), 10+rng.Intn(50), 10+rng.Intn(50))
		case 4:
			u = fmt.Sprintf("/multisource/skyline?cost=%d&edges=%s&ts=%s,%s,%s%s",
				rng.Intn(3), distinctEdges(3), randT(), randT(), randT(), engine())
		case 5:
			u = fmt.Sprintf("/multisource/topk?cost=%d&edges=%s&k=%d",
				rng.Intn(3), distinctEdges(2), 1+rng.Intn(5))
		case 6:
			from := 5 + rng.Float64()*8
			u = fmt.Sprintf("/skyline/period?edge=%d&from=%g&to=%g", e, from, from+2+rng.Float64()*8)
		case 7:
			from := 5 + rng.Float64()*8
			u = fmt.Sprintf("/topk/period?edge=%d&from=%g&to=%g&k=%d", e, from, from+2+rng.Float64()*8, 1+rng.Intn(5))
		}
		uris = append(uris, u)
	}
	return uris
}

func get(t *testing.T, base, uri string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(base + uri)
	if err != nil {
		t.Fatalf("GET %s: %v", uri, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", uri, err)
	}
	return resp.StatusCode, body
}

// payload extracts the answer-bearing fields of an envelope — everything
// except the per-run latency — as raw JSON for byte comparison.
func payload(t *testing.T, uri string, body []byte) string {
	t.Helper()
	var env map[string]json.RawMessage
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("%s: bad JSON %q: %v", uri, body, err)
	}
	field := "facilities"
	if strings.Contains(uri, "/period") {
		field = "intervals"
	}
	return fmt.Sprintf("query=%s count=%s %s=%s", env["query"], env["count"], field, env[field])
}

// checkEquivalent asserts the gateway answers uri with byte-identical query,
// count and facility/interval JSON to the reference replica.
func checkEquivalent(t *testing.T, gwURL, refURL, uri string) {
	t.Helper()
	gs, gb := get(t, gwURL, uri)
	rs, rb := get(t, refURL, uri)
	if gs != rs {
		t.Fatalf("%s: gateway status %d (%s), replica status %d (%s)", uri, gs, gb, rs, rb)
	}
	if gs != http.StatusOK {
		// Errors relay verbatim: the whole body must match.
		if string(gb) != string(rb) {
			t.Fatalf("%s: gateway error body %q != replica %q", uri, gb, rb)
		}
		return
	}
	if gp, rp := payload(t, uri, gb), payload(t, uri, rb); gp != rp {
		t.Fatalf("%s:\ngateway: %s\nreplica: %s", uri, gp, rp)
	}
}

// The headline guarantee: for every query kind — proxied, scattered, or
// range-split — the gateway's answer is byte-identical to what a single
// replica returns, under both routing policies.
func TestGatewayEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("equivalence sweep is slow; run without -short")
	}
	tg := newTestGrid(t)
	b0, b1, b2 := tg.backend(t), tg.backend(t), tg.backend(t)
	uris := randomURIs(rand.New(rand.NewSource(7)), tg.graph.NumEdges(), 40)
	// A few malformed queries ride along: their 400s must relay byte-for-byte.
	uris = append(uris,
		"/skyline?edge=99999999&t=0.5",
		"/multisource/skyline?cost=9&edges=1,2",
		"/skyline/period?edge=3&from=9&to=9",
		"/topk/period?edge=3&from=twelve&to=20",
	)
	for _, policy := range []Policy{PolicyHash, PolicyLeastInflight} {
		t.Run(policy.String(), func(t *testing.T) {
			_, gwTS := newTestGateway(t, policy, b0.URL, b1.URL, b2.URL)
			for _, uri := range uris {
				checkEquivalent(t, gwTS.URL, b0.URL, uri)
			}
		})
	}
}

// Streamed responses pass through the proxy unchanged: every NDJSON row is
// byte-identical and the terminal line reports the same count.
func TestGatewayStreamPassthrough(t *testing.T) {
	if testing.Short() {
		t.Skip("stream sweep is slow; run without -short")
	}
	tg := newTestGrid(t)
	b0 := tg.backend(t)
	_, gwTS := newTestGateway(t, PolicyHash, b0.URL)
	for _, uri := range []string{
		"/skyline?edge=17&t=0.5&stream=1",
		"/topk?edge=17&t=0.5&k=5&stream=1",
	} {
		gs, gb := get(t, gwTS.URL, uri)
		rs, rb := get(t, b0.URL, uri)
		if gs != http.StatusOK || rs != http.StatusOK {
			t.Fatalf("%s: status gateway=%d replica=%d", uri, gs, rs)
		}
		glines := strings.Split(strings.TrimSpace(string(gb)), "\n")
		rlines := strings.Split(strings.TrimSpace(string(rb)), "\n")
		if len(glines) != len(rlines) {
			t.Fatalf("%s: gateway streamed %d lines, replica %d", uri, len(glines), len(rlines))
		}
		for i := 0; i < len(glines)-1; i++ {
			if glines[i] != rlines[i] {
				t.Fatalf("%s line %d: %q != %q", uri, i, glines[i], rlines[i])
			}
		}
		var gdone, rdone struct {
			Done  bool `json:"done"`
			Count int  `json:"count"`
		}
		if err := json.Unmarshal([]byte(glines[len(glines)-1]), &gdone); err != nil {
			t.Fatalf("%s: bad terminal line %q", uri, glines[len(glines)-1])
		}
		if err := json.Unmarshal([]byte(rlines[len(rlines)-1]), &rdone); err != nil {
			t.Fatal(err)
		}
		if !gdone.Done || gdone.Count != rdone.Count {
			t.Fatalf("%s: terminal line %+v, replica %+v", uri, gdone, rdone)
		}
	}
}

// Mid-batch failure: one replica sheds every request, another is killed
// outright. The gateway must keep answering — byte-identical — from the
// replica that is left, for every query kind.
func TestGatewayFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("failover sweep is slow; run without -short")
	}
	tg := newTestGrid(t)
	live := tg.backend(t)
	shedding := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Retry-After 0: never cooled out of rotation, so every request
		// re-exercises the 503 failover path.
		w.Header().Set("Retry-After", "0")
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	t.Cleanup(shedding.Close)
	dead := tg.backend(t)

	for _, policy := range []Policy{PolicyHash, PolicyLeastInflight} {
		t.Run(policy.String(), func(t *testing.T) {
			gw, gwTS := newTestGateway(t, policy, live.URL, shedding.URL, dead.URL)
			uris := randomURIs(rand.New(rand.NewSource(13)), tg.graph.NumEdges(), 12)
			// A range-split query rides along so the per-part failover path
			// is always exercised, whatever the random mix drew.
			uris = append(uris, "/skyline/period?edge=5&from=6&to=18")

			// First requests land while all three look healthy; the dead one
			// dies mid-batch.
			checkEquivalent(t, gwTS.URL, live.URL, uris[0])
			dead.CloseClientConnections()
			dead.Close()
			for _, uri := range uris[1:] {
				checkEquivalent(t, gwTS.URL, live.URL, uri)
			}
			if gw.failovers.Load() == 0 {
				t.Fatal("no failovers recorded across a batch with a shedding and a dead replica")
			}
		})
	}
}

// With every replica draining, the gateway itself sheds with the same
// 503 + Retry-After contract, and its /readyz turns unready.
func TestGatewayAllDraining(t *testing.T) {
	draining := func() *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Retry-After", "3")
			w.WriteHeader(http.StatusServiceUnavailable)
		}))
	}
	d1, d2 := draining(), draining()
	t.Cleanup(d1.Close)
	t.Cleanup(d2.Close)
	_, gwTS := newTestGateway(t, PolicyHash, d1.URL, d2.URL)

	for _, uri := range []string{
		"/skyline?edge=1&t=0.5",
		"/multisource/skyline?cost=0&edges=1,2",
		"/skyline/period?edge=1&from=6&to=20",
	} {
		resp, err := http.Get(gwTS.URL + uri)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s with all replicas draining = %d, want 503", uri, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatalf("%s: gateway 503 missing Retry-After", uri)
		}
	}
	// The first round cooled both replicas; the gateway is now unready.
	resp, err := http.Get(gwTS.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz with every replica cooling = %d, want 503", resp.StatusCode)
	}
}

// /stats must expose the routing policy, per-backend health counters, and the
// gateway's own traffic counters.
func TestGatewayStatsEndpoint(t *testing.T) {
	tg := newTestGrid(t)
	b := tg.backend(t)
	gw, front := newTestGateway(t, PolicyHash, b.URL)
	_ = gw

	// Drive one proxied query so the counters are non-trivial.
	resp, err := http.Get(front.URL + "/skyline?edge=0&t=0.5")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("skyline status = %d", resp.StatusCode)
	}

	resp, err = http.Get(front.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status = %d", resp.StatusCode)
	}
	var stats struct {
		Policy   string `json:"policy"`
		Backends []struct {
			URL       string `json:"url"`
			Healthy   bool   `json:"healthy"`
			Available bool   `json:"available"`
			Inflight  int64  `json:"inflight"`
			Proxied   int64  `json:"proxied"`
		} `json:"backends"`
		Gateway map[string]int64 `json:"gateway"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Policy != "hash" {
		t.Errorf("policy = %q, want hash", stats.Policy)
	}
	if len(stats.Backends) != 1 {
		t.Fatalf("backends = %d, want 1", len(stats.Backends))
	}
	be := stats.Backends[0]
	if be.URL != b.URL || !be.Healthy || !be.Available {
		t.Errorf("backend entry = %+v", be)
	}
	if be.Proxied != 1 {
		t.Errorf("backend proxied = %d, want 1", be.Proxied)
	}
	if stats.Gateway["proxied"] != 1 {
		t.Errorf("gateway proxied = %d, want 1", stats.Gateway["proxied"])
	}
}
