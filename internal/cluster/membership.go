// Package cluster implements the multi-node serving tier in front of
// replicated mcnserve backends: static membership with /readyz health
// probing, pluggable routing policies (consistent hashing on the
// canonicalized query key for result-cache affinity, least-inflight for
// load spreading), overload-aware failover that honours 503 + Retry-After,
// and the scatter-gather request paths that fan multi-source and period
// queries across all healthy replicas and merge per-replica results through
// the core dominance re-filter — so a gateway response is byte-identical to
// what any single replica would have answered alone.
//
// The tier assumes replicated backends: every replica serves the full
// network, so routing is free to pick any available one and scatter-gather
// merging is an idempotent re-filter. The same scaffolding — membership,
// health, routing keys, the merge helpers — is what a graph-partitioned
// tier needs, with only the routing table changing.
package cluster

import (
	"context"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Backend is one mcnserve replica: its base URL plus the gateway's live view
// of its health and load. All state is atomic — the proxy path reads it
// lock-free on every request.
type Backend struct {
	url string

	// healthy is flipped false by transport failures (connection refused,
	// reset) and true again only by a successful /readyz probe.
	healthy atomic.Bool
	// coolUntil is the UnixNano until which the backend is cooling off after
	// a 503 (Retry-After honoured); zero means not cooling. A cooling
	// backend is alive but saturated or draining — don't send work, don't
	// mark it dead.
	coolUntil atomic.Int64

	inflight atomic.Int64
	proxied  atomic.Int64
	failures atomic.Int64
}

// URL returns the backend's base URL.
func (b *Backend) URL() string { return b.url }

// Inflight returns the number of gateway requests currently against b.
func (b *Backend) Inflight() int64 { return b.inflight.Load() }

// markDown records a transport-level failure: the backend is unreachable
// until a probe succeeds.
func (b *Backend) markDown() {
	b.healthy.Store(false)
	b.failures.Add(1)
}

// cool takes the backend out of rotation for d (a 503's Retry-After) without
// marking it unhealthy.
func (b *Backend) cool(now time.Time, d time.Duration) {
	b.coolUntil.Store(now.Add(d).UnixNano())
}

// available reports whether the backend should receive traffic at time now.
func (b *Backend) available(now time.Time) bool {
	if !b.healthy.Load() {
		return false
	}
	if cu := b.coolUntil.Load(); cu != 0 && now.UnixNano() < cu {
		return false
	}
	return true
}

// Membership is the static backend set with its health state. Backends never
// join or leave at runtime (gossip is a later PR); they only move between
// available and unavailable.
type Membership struct {
	backends []*Backend
	client   *http.Client
	timeout  time.Duration
	// retryAfterClamped counts Retry-After hints capped at MaxRetryAfter —
	// a non-zero value fingers a replica advertising absurd cool-offs.
	retryAfterClamped atomic.Int64
	// now is the clock, swappable by tests exercising cool-off windows.
	now func() time.Time
}

// MaxRetryAfter caps how long one 503's Retry-After may cool a backend. A
// misconfigured replica advertising hours would otherwise take itself out of
// rotation for that long on a single response; past this ceiling the next
// probe or request re-evaluates instead.
const MaxRetryAfter = 30 * time.Second

// DefaultProbeTimeout bounds one /readyz probe.
const DefaultProbeTimeout = 500 * time.Millisecond

// NewMembership builds the membership from backend base URLs (scheme +
// host[:port], e.g. "http://10.0.0.3:8080"). Backends start optimistically
// available; probes and per-request failures adjust from there.
func NewMembership(urls []string, probeTimeout time.Duration) (*Membership, error) {
	if len(urls) == 0 {
		return nil, fmt.Errorf("cluster: no backends")
	}
	if probeTimeout <= 0 {
		probeTimeout = DefaultProbeTimeout
	}
	m := &Membership{
		backends: make([]*Backend, 0, len(urls)),
		client:   &http.Client{},
		timeout:  probeTimeout,
		now:      time.Now,
	}
	seen := make(map[string]bool, len(urls))
	for _, raw := range urls {
		raw = strings.TrimRight(strings.TrimSpace(raw), "/")
		if raw == "" {
			continue
		}
		u, err := url.Parse(raw)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("cluster: invalid backend url %q (want scheme://host[:port])", raw)
		}
		if u.Path != "" || u.RawQuery != "" {
			return nil, fmt.Errorf("cluster: backend url %q must not carry a path or query", raw)
		}
		if seen[raw] {
			return nil, fmt.Errorf("cluster: duplicate backend %q", raw)
		}
		seen[raw] = true
		b := &Backend{url: raw}
		b.healthy.Store(true)
		m.backends = append(m.backends, b)
	}
	if len(m.backends) == 0 {
		return nil, fmt.Errorf("cluster: no backends")
	}
	return m, nil
}

// Backends returns all members, available or not, in configuration order.
func (m *Membership) Backends() []*Backend { return m.backends }

// Available returns the members currently eligible for traffic, in
// configuration order.
func (m *Membership) Available() []*Backend {
	now := m.now()
	out := make([]*Backend, 0, len(m.backends))
	for _, b := range m.backends {
		if b.available(now) {
			out = append(out, b)
		}
	}
	return out
}

// ProbeAll probes every backend's /readyz once, concurrently: 200 marks it
// healthy (and clears any cool-off), 503 cools it for the advertised
// Retry-After, and a transport error marks it down. This is both the
// periodic refresh (Start) and the recovery path for backends that were
// marked down by failed requests.
func (m *Membership) ProbeAll(ctx context.Context) {
	done := make(chan struct{}, len(m.backends))
	for _, b := range m.backends {
		go func(b *Backend) {
			defer func() { done <- struct{}{} }()
			m.probe(ctx, b)
		}(b)
	}
	for range m.backends {
		<-done
	}
}

func (m *Membership) probe(ctx context.Context, b *Backend) {
	ctx, cancel := context.WithTimeout(ctx, m.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url+"/readyz", nil)
	if err != nil {
		b.markDown()
		return
	}
	resp, err := m.client.Do(req)
	if err != nil {
		b.markDown()
		return
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		b.healthy.Store(true)
		b.coolUntil.Store(0)
	case http.StatusServiceUnavailable:
		// The replica is alive (it answered) but asks for no traffic:
		// draining or shedding. Honour its Retry-After; keep it healthy so
		// recovery needs no transport-level evidence.
		b.healthy.Store(true)
		b.cool(m.now(), m.retryAfter(resp, time.Second))
	default:
		b.markDown()
	}
}

// Start runs ProbeAll every interval until ctx is done. Run it in a
// goroutine; the first probe round fires immediately.
func (m *Membership) Start(ctx context.Context, interval time.Duration) {
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		m.ProbeAll(ctx)
		select {
		case <-tick.C:
		case <-ctx.Done():
			return
		}
	}
}

// RetryAfterClamped returns how many Retry-After hints have been clamped to
// MaxRetryAfter, for /stats.
func (m *Membership) RetryAfterClamped() int64 { return m.retryAfterClamped.Load() }

// retryAfter reads a response's Retry-After seconds — default for absent or
// malformed values — clamped to MaxRetryAfter, counting clamps.
func (m *Membership) retryAfter(resp *http.Response, def time.Duration) time.Duration {
	d := retryAfterDuration(resp, def)
	if d > MaxRetryAfter {
		m.retryAfterClamped.Add(1)
		return MaxRetryAfter
	}
	return d
}

// retryAfterDuration reads a response's Retry-After seconds, with a default
// for absent or malformed values.
func retryAfterDuration(resp *http.Response, def time.Duration) time.Duration {
	raw := resp.Header.Get("Retry-After")
	if raw == "" {
		return def
	}
	secs, err := strconv.Atoi(raw)
	if err != nil || secs < 0 {
		return def
	}
	return time.Duration(secs) * time.Second
}
