package cluster

// This file is the gateway leg of POST /v1/query: the codec-negotiated
// sibling of the GET routes. Single-location queries forward the client's
// body verbatim (routing on the request's canonical GET rendering, so binary
// and GET forms of one query share a replica and its result cache);
// multi-source and period queries re-encode as binary frames, fan out, and
// merge the decoded parts through the exact same core.Merge* / seam-fusion
// paths the GET scatter uses — so gateway output stays equivalent to a
// single node's on every codec.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"mcn/internal/core"
	"mcn/internal/wire"
)

// handleV1Query answers POST /v1/query in whichever codec the client
// negotiated, dispatching on the decoded request's kind.
func (g *Gateway) handleV1Query(w http.ResponseWriter, r *http.Request) {
	binaryIn, binaryOut := wire.Negotiate(r.Header.Get("Content-Type"), r.Header.Get("Accept"))
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, wire.MaxRequestFrame+16))
	if err != nil {
		writeWireStatus(w, binaryOut, http.StatusBadRequest, "unreadable or oversized request body")
		return
	}
	q, err := wire.DecodeRequestBody(body, binaryIn)
	if err != nil {
		writeWireStatus(w, binaryOut, http.StatusBadRequest, err.Error())
		return
	}
	switch {
	case q.Scatter():
		g.scatterWire(w, r, q, binaryOut)
	case q.Period():
		g.periodWire(w, r, q, body, binaryOut)
	default:
		g.proxyWire(w, r, q, body)
	}
}

// post POSTs body to b's /v1/query on the client request's context.
func (g *Gateway) post(r *http.Request, b *Backend, body []byte, contentType, accept string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, b.url+"/v1/query", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", contentType)
	req.Header.Set("Accept", accept)
	return g.roundTrip(r, b, req)
}

// proxyWire forwards a single-location /v1/query body verbatim — original
// Content-Type and Accept included, so the replica performs the same codec
// negotiation the client asked the gateway for — to one replica chosen by
// routing the request's canonical GET rendering, with the same failover
// discipline as the GET proxy path.
func (g *Gateway) proxyWire(w http.ResponseWriter, r *http.Request, q *wire.Request, body []byte) {
	_, binaryOut := wire.Negotiate(r.Header.Get("Content-Type"), r.Header.Get("Accept"))
	u, err := url.Parse(q.URI())
	if err != nil {
		writeWireStatus(w, binaryOut, http.StatusBadRequest, "unroutable request")
		return
	}
	cands := g.router.Candidates(CanonicalKey(u), g.m.Available())
	if len(cands) == 0 {
		shedWire(w, binaryOut)
		return
	}
	ct, accept := r.Header.Get("Content-Type"), r.Header.Get("Accept")
	for i, b := range cands {
		resp, err := g.post(r, b, body, ct, accept)
		if err != nil {
			if r.Context().Err() != nil {
				return
			}
			continue
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			resp.Body.Close()
			continue
		}
		if i > 0 {
			g.failovers.Add(1)
		}
		b.proxied.Add(1)
		g.proxied.Add(1)
		relay(w, resp)
		return
	}
	shedWire(w, binaryOut)
}

// wireSpec builds the gather spec for one part frame. The part request is
// always a binary frame — request fields are float64 on both codecs, so that
// is lossless — but the part *response* codec follows the client: binary
// clients get float32-narrowed parts that re-encode byte-identically, while
// JSON clients get float64 parts so the merged answer stays byte-identical
// to a single replica's JSON.
func (g *Gateway) wireSpec(r *http.Request, frame []byte, binary bool) gatherSpec {
	accept, decode := wire.ContentTypeJSON, decodeInto
	if binary {
		accept, decode = wire.ContentTypeBinary, decodeWireInto
	}
	return gatherSpec{
		issue: func(cand *Backend) (*http.Response, error) {
			return g.post(r, cand, frame, wire.ContentTypeBinary, accept)
		},
		decode: decode,
	}
}

// decodeWireInto parses a binary 200 body for merging.
func decodeWireInto(out *gathered, body []byte) error {
	payload, err := wire.ReadFrame(bytes.NewReader(body), wire.MaxResponseFrame)
	if err != nil {
		return err
	}
	resp, err := wire.DecodeResponse(payload)
	if err != nil {
		return err
	}
	if resp.Result == nil && resp.Period == nil {
		return fmt.Errorf("cluster: error frame in 200 response")
	}
	out.result = resp.Result
	out.period = resp.Period
	return nil
}

// scatterWire fans a multi-source /v1/query to every available replica as
// binary frames and merges the decoded parts through the same core dominance
// re-filter as the GET scatter path, answering in the client's codec.
func (g *Gateway) scatterWire(w http.ResponseWriter, r *http.Request, q *wire.Request, binaryOut bool) {
	start := time.Now()
	avail := g.m.Available()
	if len(avail) == 0 {
		shedWire(w, binaryOut)
		return
	}
	frame, err := wire.EncodeRequest(q)
	if err != nil {
		writeWireStatus(w, binaryOut, http.StatusBadRequest, err.Error())
		return
	}
	g.scattered.Add(1)
	outs := g.gatherAll(r, avail, frame, binaryOut)
	parts := make([]*core.Result, 0, len(outs))
	for _, o := range outs {
		if o.result == nil {
			continue
		}
		parts = append(parts, &core.Result{
			Facilities: wire.ToFacilities(o.result.Facilities),
			Stats:      o.result.Stats,
		})
	}
	if len(parts) == 0 {
		relayWireGatherError(w, outs, binaryOut)
		return
	}
	var merged *core.Result
	if q.Kind == wire.KindMultiSourceTopK {
		merged = core.MergeTopK(q.K, parts...)
	} else {
		merged = core.MergeSkylines(parts...)
	}
	writeWireResult(w, binaryOut, &wire.Result{
		Query:      q.QueryName(),
		Count:      len(merged.Facilities),
		Facilities: wire.FromFacilities(merged.Facilities),
		Stats:      merged.Stats,
		LatencyMS:  float64(time.Since(start)) / float64(time.Millisecond),
	})
}

// gatherAll runs one gather per backend concurrently, each issuing the same
// binary frame without failover (every replica is already a candidate).
func (g *Gateway) gatherAll(r *http.Request, avail []*Backend, frame []byte, binary bool) []gathered {
	outs := make([]gathered, len(avail))
	done := make(chan struct{}, len(avail))
	for i, b := range avail {
		go func(i int, b *Backend) {
			defer func() { done <- struct{}{} }()
			outs[i] = g.gather(r, []*Backend{b}, g.wireSpec(r, frame, binary))
		}(i, b)
	}
	for range avail {
		<-done
	}
	return outs
}

// periodWire splits a period /v1/query across the available replicas like the
// GET period path: each part is the same request with its sub-range swapped
// in, encoded as a binary frame and gathered with failover, then the interval
// lists are stitched with the identical seam-fusion criterion. Degenerate
// ranges and single-replica clusters forward the client's body verbatim so
// the replica's canonical answer (or error) is the response.
func (g *Gateway) periodWire(w http.ResponseWriter, r *http.Request, q *wire.Request, body []byte, binaryOut bool) {
	start := time.Now()
	avail := g.m.Available()
	if len(avail) == 0 {
		shedWire(w, binaryOut)
		return
	}
	if q.From >= q.To || len(avail) == 1 {
		g.proxyWire(w, r, q, body)
		return
	}
	g.scattered.Add(1)
	bounds := make([]float64, len(avail)+1)
	for i := range bounds {
		bounds[i] = q.From + (q.To-q.From)*float64(i)/float64(len(avail))
	}
	bounds[len(avail)] = q.To
	outs := make([]gathered, len(avail))
	done := make(chan struct{}, len(avail))
	encodeErr := false
	for i, b := range avail {
		part := *q
		part.From, part.To = bounds[i], bounds[i+1]
		frame, err := wire.EncodeRequest(&part)
		if err != nil {
			encodeErr = true
			break
		}
		go func(i int, b *Backend, frame []byte) {
			defer func() { done <- struct{}{} }()
			outs[i] = g.gather(r, g.failoverCands(b, true), g.wireSpec(r, frame, binaryOut))
		}(i, b, frame)
	}
	if encodeErr {
		writeWireStatus(w, binaryOut, http.StatusBadRequest, fmt.Sprintf("unknown query kind %q", q.Kind))
		return
	}
	for range avail {
		<-done
	}
	query := ""
	var intervals []wire.Interval
	for _, o := range outs {
		if o.period == nil {
			relayWireGatherError(w, outs, binaryOut)
			return
		}
		if query == "" {
			query = o.period.Query
		}
		for _, iv := range o.period.Intervals {
			if n := len(intervals); n > 0 && sameIntervalIDs(intervals[n-1], iv) {
				intervals[n-1].To = iv.To
				continue
			}
			intervals = append(intervals, iv)
		}
	}
	writeWirePeriod(w, binaryOut, &wire.PeriodResult{
		Query:     query,
		Count:     len(intervals),
		Intervals: intervals,
		LatencyMS: float64(time.Since(start)) / float64(time.Millisecond),
	})
}

// relayWireGatherError answers a wire scatter/period whose every part failed,
// re-rendering the picked part's error — a binary frame or a JSON envelope,
// depending on the part codec — in the client's codec.
func relayWireGatherError(w http.ResponseWriter, outs []gathered, binaryOut bool) {
	o := pickGatherError(outs)
	if o == nil {
		shedWire(w, binaryOut)
		return
	}
	status, msg := o.errStatus, "backend error"
	if payload, err := wire.ReadFrame(bytes.NewReader(o.errBody), wire.MaxResponseFrame); err == nil {
		if resp, err := wire.DecodeResponse(payload); err == nil && resp.Status != 0 {
			status, msg = resp.Status, resp.Message
		}
	} else {
		var e wire.Error
		if json.Unmarshal(o.errBody, &e) == nil && e.Error != "" {
			msg = e.Error
		}
	}
	writeWireStatus(w, binaryOut, status, msg)
}

// shedWire is unavailable() in the negotiated codec.
func shedWire(w http.ResponseWriter, binary bool) {
	if !binary {
		unavailable(w)
		return
	}
	w.Header().Set("Retry-After", "1")
	writeBinaryFrame(w, http.StatusServiceUnavailable,
		wire.EncodeError(http.StatusServiceUnavailable, "cluster: no backend available"))
}

// writeWireStatus writes a status-plus-message error in the negotiated codec.
func writeWireStatus(w http.ResponseWriter, binary bool, status int, msg string) {
	if binary {
		writeBinaryFrame(w, status, wire.EncodeError(status, msg))
		return
	}
	wire.WriteJSON(w, status, wire.Error{Error: msg})
}

// writeWireResult writes a merged scatter result in the negotiated codec.
func writeWireResult(w http.ResponseWriter, binary bool, res *wire.Result) {
	if !binary {
		wire.WriteJSON(w, http.StatusOK, res)
		return
	}
	frame, err := wire.EncodeResult(res)
	if err != nil {
		writeWireStatus(w, true, http.StatusInternalServerError, "internal encoding failure")
		return
	}
	writeBinaryFrame(w, http.StatusOK, frame)
}

// writeWirePeriod writes a stitched period result in the negotiated codec.
func writeWirePeriod(w http.ResponseWriter, binary bool, pr *wire.PeriodResult) {
	if !binary {
		wire.WriteJSON(w, http.StatusOK, pr)
		return
	}
	frame, err := wire.EncodePeriodResult(pr)
	if err != nil {
		writeWireStatus(w, true, http.StatusInternalServerError, "internal encoding failure")
		return
	}
	writeBinaryFrame(w, http.StatusOK, frame)
}

// writeBinaryFrame writes one complete binary frame as the response body.
func writeBinaryFrame(w http.ResponseWriter, status int, frame []byte) {
	w.Header().Set("Content-Type", wire.ContentTypeBinary)
	w.Header().Set("Content-Length", strconv.Itoa(len(frame)))
	w.WriteHeader(status)
	w.Write(frame) //nolint:errcheck // client gone; nothing to do
}
