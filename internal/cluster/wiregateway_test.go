package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mcn/internal/wire"
)

// A replica advertising an absurd Retry-After must not take itself out of
// rotation for longer than MaxRetryAfter, and the clamp must be counted.
func TestRetryAfterClamp(t *testing.T) {
	shedding := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "3600")
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer shedding.Close()

	m, err := NewMembership([]string{shedding.URL}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	clk := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	m.now = clk.now

	m.ProbeAll(ctx)
	if len(m.Available()) != 0 {
		t.Fatal("shedding backend still available right after the 503")
	}
	clk.advance(MaxRetryAfter - time.Second)
	if len(m.Available()) != 0 {
		t.Fatal("backend available before the clamped cool-off expired")
	}
	// One second past the ceiling: the hour-long hint must have been clamped.
	clk.advance(2 * time.Second)
	if len(m.Available()) != 1 {
		t.Fatal("backend still cooling past MaxRetryAfter; Retry-After not clamped")
	}
	if got := m.RetryAfterClamped(); got != 1 {
		t.Fatalf("RetryAfterClamped() = %d, want 1", got)
	}
}

// relay must strip the RFC 9110 hop-by-hop set plus anything the backend
// names in Connection, while passing end-to-end headers through.
func TestRelayStripsHopByHop(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h := w.Header()
		h.Set("Content-Type", "application/json")
		h.Set("X-End-To-End", "keep")
		h.Set("Keep-Alive", "timeout=5")
		h.Set("Proxy-Authenticate", "Basic")
		h.Set("Upgrade", "h2c")
		h.Set("Connection", "x-hop")
		h.Set("X-Hop", "leak")
		w.WriteHeader(http.StatusOK)
		fmt.Fprint(w, `{"ok":true}`)
	}))
	defer backend.Close()

	_, gwTS := newTestGateway(t, PolicyHash, backend.URL)
	resp, err := http.Get(gwTS.URL + "/skyline?edge=0&t=0.5")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	for _, h := range []string{"Keep-Alive", "Proxy-Authenticate", "Upgrade", "X-Hop"} {
		if v := resp.Header.Get(h); v != "" {
			t.Errorf("hop-by-hop header %s = %q leaked through the gateway", h, v)
		}
	}
	if got := resp.Header.Get("X-End-To-End"); got != "keep" {
		t.Errorf("end-to-end header lost: X-End-To-End = %q, want keep", got)
	}
	if got := resp.Header.Get("Content-Type"); got != "application/json" {
		t.Errorf("Content-Type = %q", got)
	}
}

// Once the client's context is cancelled, gather must stop trying failover
// candidates instead of burning through the whole replica list.
func TestGatherBailsOnClientCancel(t *testing.T) {
	m, err := NewMembership([]string{"http://h:1", "http://h:2", "http://h:3"}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	g := NewGateway(m, PolicyHash, time.Minute)

	reqCtx, cancel := context.WithCancel(context.Background())
	r := httptest.NewRequest(http.MethodGet, "/skyline?edge=0&t=0.5", nil).WithContext(reqCtx)

	var calls atomic.Int64
	out := g.gather(r, m.Backends(), gatherSpec{
		issue: func(cand *Backend) (*http.Response, error) {
			calls.Add(1)
			cancel() // the client hangs up mid-attempt
			return nil, fmt.Errorf("transport: connection reset")
		},
		decode: decodeInto,
	})
	if got := calls.Load(); got != 1 {
		t.Fatalf("gather tried %d candidates after the client cancelled, want 1", got)
	}
	if out.result != nil || out.errStatus != 0 {
		t.Fatalf("cancelled gather produced %+v, want empty", out)
	}
}

// A 5xx from one replica is that replica's problem, not the query's: the
// failover path must move on and answer from a healthy replica, while a 4xx
// still short-circuits as the canonical rejection.
func TestGatherFailsOverOn5xx(t *testing.T) {
	if testing.Short() {
		t.Skip("uses a full serve replica; run without -short")
	}
	tg := newTestGrid(t)
	live := tg.backend(t)
	broken := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprint(w, `{"error":"disk on fire"}`)
	}))
	defer broken.Close()

	_, gwTS := newTestGateway(t, PolicyHash, broken.URL, live.URL)

	// A range-split period query: the part whose primary is the broken
	// replica must fail over and the stitched answer must match single-node.
	uri := "/skyline/period?edge=5&from=6&to=18"
	checkEquivalent(t, gwTS.URL, live.URL, uri)

	// A deterministic 400 must still return immediately, not fail over into
	// a different error.
	status, body := get(t, gwTS.URL, "/multisource/skyline?cost=9&edges=1,2")
	if status != http.StatusBadRequest {
		t.Fatalf("invalid cost via gateway = %d (%s), want 400", status, body)
	}
}

func postV1(t *testing.T, base string, body []byte, contentType, accept string) (int, http.Header, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, base+"/v1/query", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", contentType)
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, out
}

func decodeBinaryBody(t *testing.T, body []byte) *wire.Response {
	t.Helper()
	payload, err := wire.ReadFrame(bytes.NewReader(body), wire.MaxResponseFrame)
	if err != nil {
		t.Fatalf("read response frame: %v", err)
	}
	resp, err := wire.DecodeResponse(payload)
	if err != nil {
		t.Fatalf("decode response frame: %v", err)
	}
	return resp
}

// costsEqualF32 reports whether a binary cost vector matches a JSON one after
// the codec's float32 narrowing; non-finite sentinels must survive exactly.
func costsEqualF32(jsonCosts, binCosts []float64) bool {
	if len(jsonCosts) != len(binCosts) {
		return false
	}
	for i, jc := range jsonCosts {
		bc := binCosts[i]
		switch {
		case math.IsNaN(jc):
			if !math.IsNaN(bc) {
				return false
			}
		case math.IsInf(jc, 0):
			if bc != jc {
				return false
			}
		default:
			if float64(float32(jc)) != bc {
				return false
			}
		}
	}
	return true
}

func checkFacilitiesF32(t *testing.T, label string, ref, bin []wire.Facility) {
	t.Helper()
	if len(ref) != len(bin) {
		t.Fatalf("%s: %d facilities, reference has %d", label, len(bin), len(ref))
	}
	for i := range ref {
		if ref[i].ID != bin[i].ID {
			t.Fatalf("%s facility %d: id %d != reference %d", label, i, bin[i].ID, ref[i].ID)
		}
		if !costsEqualF32(ref[i].Costs, bin[i].Costs) {
			t.Fatalf("%s facility %d: costs %v != reference %v (mod float32)", label, i, bin[i].Costs, ref[i].Costs)
		}
		if float64(float32(ref[i].Score)) != bin[i].Score {
			t.Fatalf("%s facility %d: score %v != reference %v", label, i, bin[i].Score, ref[i].Score)
		}
	}
}

// wireRequests covers every query kind through the gateway's three /v1/query
// paths: proxied single-location, scattered multi-source, and split periods.
func wireRequests() []*wire.Request {
	return []*wire.Request{
		{Kind: wire.KindSkyline, Edge: 17, T: 0.5},
		{Kind: wire.KindTopK, Edge: 40, T: 0.3, K: 5, Weights: []float64{1, 2, 0.5}},
		{Kind: wire.KindNearest, Edge: 9, T: 0.8, K: 3, Cost: 1},
		{Kind: wire.KindWithin, Edge: 23, T: 0.5, Budget: []float64{40, 40, 40}},
		{Kind: wire.KindMultiSourceSkyline, Cost: 0, Edges: []int{3, 71, 15}, Ts: []float64{0.2, 0.5, 0.9}},
		{Kind: wire.KindMultiSourceTopK, Cost: 2, Edges: []int{8, 33}, Ts: []float64{0.5, 0.5}, K: 4},
		{Kind: wire.KindSkylinePeriod, Edge: 5, T: 0.5, From: 6, To: 18},
		{Kind: wire.KindTopKPeriod, Edge: 12, T: 0.5, K: 3, From: 7, To: 15, Engine: "lsa"},
	}
}

// The wire-path headline guarantee: POST /v1/query through the gateway — on
// either codec — answers equivalently to a single replica's GET, for every
// query kind, including the scattered and range-split ones.
func TestGatewayV1QueryEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("equivalence sweep is slow; run without -short")
	}
	tg := newTestGrid(t)
	b0, b1, b2 := tg.backend(t), tg.backend(t), tg.backend(t)
	_, gwTS := newTestGateway(t, PolicyHash, b0.URL, b1.URL, b2.URL)

	for _, q := range wireRequests() {
		uri := q.URI()
		refStatus, refBody := get(t, b0.URL, uri)
		if refStatus != http.StatusOK {
			t.Fatalf("%s: reference status %d (%s)", uri, refStatus, refBody)
		}

		// JSON POST through the gateway: byte-identical payload to the GET.
		jsonBody, err := json.Marshal(q)
		if err != nil {
			t.Fatal(err)
		}
		status, _, body := postV1(t, gwTS.URL, jsonBody, wire.ContentTypeJSON, "")
		if status != http.StatusOK {
			t.Fatalf("%s: gateway JSON POST status %d (%s)", uri, status, body)
		}
		if gp, rp := payload(t, uri, body), payload(t, uri, refBody); gp != rp {
			t.Fatalf("%s JSON POST:\ngateway: %s\nreplica: %s", uri, gp, rp)
		}

		// Binary POST: identical modulo the codec's float32 narrowing.
		frame, err := wire.EncodeRequest(q)
		if err != nil {
			t.Fatal(err)
		}
		status, hdr, body := postV1(t, gwTS.URL, frame, wire.ContentTypeBinary, wire.ContentTypeBinary)
		if status != http.StatusOK {
			t.Fatalf("%s: gateway binary POST status %d", uri, status)
		}
		if ct := hdr.Get("Content-Type"); ct != wire.ContentTypeBinary {
			t.Fatalf("%s: binary response Content-Type = %q", uri, ct)
		}
		resp := decodeBinaryBody(t, body)
		if q.Period() {
			var ref wire.PeriodResult
			if err := json.Unmarshal(refBody, &ref); err != nil {
				t.Fatal(err)
			}
			if resp.Period == nil {
				t.Fatalf("%s: binary response is not a period result", uri)
			}
			if resp.Period.Query != ref.Query || len(resp.Period.Intervals) != len(ref.Intervals) {
				t.Fatalf("%s: binary period %s/%d intervals, reference %s/%d",
					uri, resp.Period.Query, len(resp.Period.Intervals), ref.Query, len(ref.Intervals))
			}
			for i, iv := range ref.Intervals {
				biv := resp.Period.Intervals[i]
				if biv.From != iv.From || biv.To != iv.To || biv.Stats != iv.Stats {
					t.Fatalf("%s interval %d: bounds/stats %+v != reference %+v", uri, i, biv, iv)
				}
				checkFacilitiesF32(t, fmt.Sprintf("%s interval %d", uri, i), iv.Facilities, biv.Facilities)
			}
		} else {
			var ref wire.Result
			if err := json.Unmarshal(refBody, &ref); err != nil {
				t.Fatal(err)
			}
			if resp.Result == nil {
				t.Fatalf("%s: binary response is not a result", uri)
			}
			if resp.Result.Query != ref.Query || resp.Result.Count != ref.Count {
				t.Fatalf("%s: binary envelope %+v != reference %+v", uri, resp.Result, ref)
			}
			// Scattered kinds aggregate stats across replicas; only proxied
			// kinds relay a single replica's stats verbatim.
			if !q.Scatter() && resp.Result.Stats != ref.Stats {
				t.Fatalf("%s: binary stats %+v != reference %+v", uri, resp.Result.Stats, ref.Stats)
			}
			checkFacilitiesF32(t, uri, ref.Facilities, resp.Result.Facilities)
		}
	}
}

// Cross-codec negotiation and error rendering on the gateway's /v1/query.
func TestGatewayV1QueryNegotiationAndErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("uses full serve replicas; run without -short")
	}
	tg := newTestGrid(t)
	b0, b1 := tg.backend(t), tg.backend(t)
	_, gwTS := newTestGateway(t, PolicyHash, b0.URL, b1.URL)

	// Binary in, JSON out, on a scattered kind: the gateway itself re-renders
	// the merged binary parts as JSON.
	q := &wire.Request{Kind: wire.KindMultiSourceSkyline, Cost: 0, Edges: []int{3, 71}, Ts: []float64{0.5, 0.5}}
	frame, err := wire.EncodeRequest(q)
	if err != nil {
		t.Fatal(err)
	}
	status, hdr, body := postV1(t, gwTS.URL, frame, wire.ContentTypeBinary, wire.ContentTypeJSON)
	if status != http.StatusOK {
		t.Fatalf("binary→json scatter status %d (%s)", status, body)
	}
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("binary→json scatter Content-Type = %q", ct)
	}
	var res wire.Result
	if err := json.Unmarshal(body, &res); err != nil || res.Query != "multisource_skyline" {
		t.Fatalf("binary→json scatter body %q (err %v)", body, err)
	}

	// JSON in, binary out, on a proxied kind: the replica negotiates, the
	// gateway relays the frame untouched.
	jsonBody := []byte(`{"kind":"skyline","edge":17}`)
	status, hdr, body = postV1(t, gwTS.URL, jsonBody, wire.ContentTypeJSON, wire.ContentTypeBinary)
	if status != http.StatusOK {
		t.Fatalf("json→binary proxy status %d", status)
	}
	if ct := hdr.Get("Content-Type"); ct != wire.ContentTypeBinary {
		t.Fatalf("json→binary proxy Content-Type = %q", ct)
	}
	if resp := decodeBinaryBody(t, body); resp.Result == nil || resp.Result.Query != "skyline" {
		t.Fatalf("json→binary proxy decoded %+v", resp)
	}

	// A scattered kind with an invalid cost index: every replica rejects it
	// and the gateway re-renders the canonical 400 in the client's codec.
	bad := &wire.Request{Kind: wire.KindMultiSourceSkyline, Cost: 9, Edges: []int{1, 2}, Ts: []float64{0.5, 0.5}}
	frame, err = wire.EncodeRequest(bad)
	if err != nil {
		t.Fatal(err)
	}
	status, _, body = postV1(t, gwTS.URL, frame, wire.ContentTypeBinary, wire.ContentTypeBinary)
	if status != http.StatusBadRequest {
		t.Fatalf("invalid scatter status = %d, want 400", status)
	}
	if resp := decodeBinaryBody(t, body); resp.Status != http.StatusBadRequest || resp.Message == "" {
		t.Fatalf("invalid scatter error frame = %+v", resp)
	}

	// A malformed body is rejected by the gateway itself, in-band.
	status, _, body = postV1(t, gwTS.URL, []byte(`{"kind":"warp"}`), wire.ContentTypeJSON, "")
	if status != http.StatusBadRequest {
		t.Fatalf("unknown kind status = %d (%s)", status, body)
	}
	var e wire.Error
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Fatalf("unknown kind body %q", body)
	}
}

// With no backend available the wire path sheds in the negotiated codec with
// the standard Retry-After contract.
func TestGatewayV1QueryShed(t *testing.T) {
	draining := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "3")
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer draining.Close()
	_, gwTS := newTestGateway(t, PolicyHash, draining.URL)

	for _, kind := range []*wire.Request{
		{Kind: wire.KindSkyline, Edge: 1, T: 0.5},
		{Kind: wire.KindMultiSourceSkyline, Cost: 0, Edges: []int{1, 2}, Ts: []float64{0.5, 0.5}},
		{Kind: wire.KindSkylinePeriod, Edge: 1, T: 0.5, From: 6, To: 18},
	} {
		frame, err := wire.EncodeRequest(kind)
		if err != nil {
			t.Fatal(err)
		}
		status, hdr, body := postV1(t, gwTS.URL, frame, wire.ContentTypeBinary, wire.ContentTypeBinary)
		if status != http.StatusServiceUnavailable {
			t.Fatalf("%s shed status = %d, want 503", kind.Kind, status)
		}
		if hdr.Get("Retry-After") == "" {
			t.Fatalf("%s shed missing Retry-After", kind.Kind)
		}
		if resp := decodeBinaryBody(t, body); resp.Status != http.StatusServiceUnavailable {
			t.Fatalf("%s shed frame = %+v", kind.Kind, resp)
		}
	}
}
