package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync/atomic"
	"testing"
	"time"
)

var ctx = context.Background()

// fakeClock drives Membership.now without sleeping.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestNewMembershipValidation(t *testing.T) {
	cases := []struct {
		name string
		urls []string
	}{
		{"empty", nil},
		{"blank", []string{" ", ""}},
		{"no scheme", []string{"10.0.0.1:8080"}},
		{"path", []string{"http://h:1/api"}},
		{"query", []string{"http://h:1?x=1"}},
		{"duplicate", []string{"http://h:1", "http://h:1/"}},
	}
	for _, tc := range cases {
		if _, err := NewMembership(tc.urls, 0); err == nil {
			t.Errorf("%s: NewMembership(%v) succeeded, want error", tc.name, tc.urls)
		}
	}
	m, err := NewMembership([]string{"http://h:1/", " http://h:2 "}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Backends()[0].URL(); got != "http://h:1" {
		t.Fatalf("normalized URL = %q, want trailing slash stripped", got)
	}
	if n := len(m.Available()); n != 2 {
		t.Fatalf("fresh membership has %d available, want 2 (optimistic start)", n)
	}
}

func TestProbeAllHealthCycle(t *testing.T) {
	var ready atomic.Bool
	ready.Store(true)
	flappy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if ready.Load() {
			w.WriteHeader(http.StatusOK)
			return
		}
		w.Header().Set("Retry-After", "60")
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer flappy.Close()
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close()

	m, err := NewMembership([]string{flappy.URL, dead.URL}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	clk := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	m.now = clk.now

	m.ProbeAll(ctx)
	if av := m.Available(); len(av) != 1 || av[0].URL() != flappy.URL {
		t.Fatalf("after probe: available = %v, want just the live backend", urls(av))
	}

	// The live backend starts shedding: cooled for its Retry-After, but not
	// marked dead.
	ready.Store(false)
	m.ProbeAll(ctx)
	if av := m.Available(); len(av) != 0 {
		t.Fatalf("available while shedding = %v, want none", urls(av))
	}
	if !m.Backends()[0].healthy.Load() {
		t.Fatal("503 marked the backend unhealthy; want cooled but healthy")
	}

	// The cool-off expires on its own — no probe needed for recovery.
	clk.advance(61 * time.Second)
	if av := m.Available(); len(av) != 1 {
		t.Fatalf("available after cool-off = %v, want the shedding backend back", urls(av))
	}

	// A dead backend stays down across probes until one succeeds.
	m.ProbeAll(ctx)
	for _, b := range m.Backends() {
		if b.URL() == dead.URL && b.available(clk.now()) {
			t.Fatal("dead backend reported available after failed probe")
		}
	}
}

func urls(bs []*Backend) []string {
	out := make([]string, len(bs))
	for i, b := range bs {
		out[i] = b.URL()
	}
	return out
}

func TestCanonicalKey(t *testing.T) {
	u, err := url.Parse("/skyline?t=0.5&timeout_ms=250&edge=3&stream=1")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := CanonicalKey(u), "/skyline?edge=3&t=0.5"; got != want {
		t.Fatalf("CanonicalKey = %q, want %q (sorted, delivery params stripped)", got, want)
	}
	// The streamed and buffered forms of one query share a key — and thus a
	// replica and its cache entry.
	u2, _ := url.Parse("/skyline?edge=3&t=0.5")
	if CanonicalKey(u) != CanonicalKey(u2) {
		t.Fatal("stream=1 changed the routing key")
	}
}

func TestParsePolicy(t *testing.T) {
	if p, err := ParsePolicy("hash"); err != nil || p != PolicyHash {
		t.Fatalf("ParsePolicy(hash) = %v, %v", p, err)
	}
	if p, err := ParsePolicy("least-inflight"); err != nil || p != PolicyLeastInflight {
		t.Fatalf("ParsePolicy(least-inflight) = %v, %v", p, err)
	}
	if _, err := ParsePolicy("random"); err == nil {
		t.Fatal("ParsePolicy(random) succeeded, want error")
	}
}

func TestRouterHashAffinity(t *testing.T) {
	m, err := NewMembership([]string{"http://h:1", "http://h:2", "http://h:3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRouter(m, PolicyHash)
	avail := m.Available()

	primaries := map[string]bool{}
	for _, key := range []string{
		"/skyline?edge=1&t=0.5", "/skyline?edge=2&t=0.5", "/topk?edge=3&k=4&t=0.1",
		"/nearest?cost=0&edge=9&k=2&t=0.9", "/within?budget=1,2&edge=40&t=0.3",
		"/skyline?edge=100&t=0.5", "/topk?edge=77&k=1&t=0.25",
	} {
		c1 := r.Candidates(key, avail)
		c2 := r.Candidates(key, avail)
		if len(c1) != len(avail) {
			t.Fatalf("Candidates(%q) returned %d backends, want all %d", key, len(c1), len(avail))
		}
		seen := map[*Backend]bool{}
		for i := range c1 {
			if c1[i] != c2[i] {
				t.Fatalf("Candidates(%q) not deterministic", key)
			}
			if seen[c1[i]] {
				t.Fatalf("Candidates(%q) repeats a backend", key)
			}
			seen[c1[i]] = true
		}
		primaries[c1[0].URL()] = true
	}
	if len(primaries) < 2 {
		t.Fatalf("all keys hashed to one primary %v; ring is not spreading", primaries)
	}

	// Removing a backend from the available set must not reshuffle the
	// others' relative order (consistent hashing's point).
	key := "/skyline?edge=1&t=0.5"
	full := r.Candidates(key, avail)
	without := r.Candidates(key, []*Backend{full[0], full[2]})
	if len(without) != 2 || without[0] != full[0] || without[1] != full[2] {
		t.Fatal("dropping one backend reshuffled the ring order of the rest")
	}
}

func TestRouterLeastInflight(t *testing.T) {
	m, err := NewMembership([]string{"http://h:1", "http://h:2", "http://h:3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	bs := m.Backends()
	bs[0].inflight.Store(5)
	bs[1].inflight.Store(0)
	bs[2].inflight.Store(2)
	r := NewRouter(m, PolicyLeastInflight)
	got := r.Candidates("any", m.Available())
	if got[0] != bs[1] || got[1] != bs[2] || got[2] != bs[0] {
		t.Fatalf("least-inflight order = %v, want h:2, h:3, h:1", urls(got))
	}
}

func TestPolicyString(t *testing.T) {
	if got := PolicyHash.String(); got != "hash" {
		t.Errorf("PolicyHash = %q", got)
	}
	if got := PolicyLeastInflight.String(); got != "least-inflight" {
		t.Errorf("PolicyLeastInflight = %q", got)
	}
	if got := Policy(42).String(); got != "policy(42)" {
		t.Errorf("unknown policy = %q", got)
	}
	m, err := NewMembership([]string{"http://h:1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRouter(m, PolicyLeastInflight)
	if r.Policy() != PolicyLeastInflight {
		t.Errorf("Router.Policy = %v", r.Policy())
	}
}

// Start must probe immediately, keep probing on the interval, and stop when
// its context ends.
func TestMembershipStartLoop(t *testing.T) {
	var probes atomic.Int64
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		probes.Add(1)
		w.WriteHeader(http.StatusOK)
	}))
	defer backend.Close()

	m, err := NewMembership([]string{backend.URL}, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	loopCtx, cancel := context.WithCancel(ctx)
	done := make(chan struct{})
	go func() {
		m.Start(loopCtx, 5*time.Millisecond)
		close(done)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for probes.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("saw %d probes, want the loop to re-fire", probes.Load())
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Start did not return after ctx cancel")
	}
	if n := len(m.Available()); n != 1 {
		t.Fatalf("available = %d, want 1", n)
	}
}
