package cluster

import (
	"encoding/json"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mcn/internal/core"
	"mcn/internal/graph"
	"mcn/internal/wire"
)

// Gateway is the cluster front: it terminates client HTTP, routes
// single-location queries to one replica (with overload-aware failover),
// and scatter-gathers multi-source and period queries across every
// available replica, merging through the core dominance re-filter so the
// merged response is byte-identical to a single replica's answer.
type Gateway struct {
	m      *Membership
	router *Router
	client *http.Client

	proxied   atomic.Int64
	scattered atomic.Int64
	failovers atomic.Int64
}

// NewGateway builds a gateway over the membership with the given routing
// policy. timeout bounds each backend request (0 = no client-side bound; the
// replicas enforce their own -timeout).
func NewGateway(m *Membership, policy Policy, timeout time.Duration) *Gateway {
	// The default transport keeps only 2 idle connections per host; a
	// gateway funnels every client through a handful of backends, so raise
	// the pool or concurrent traffic churns through fresh connections.
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConnsPerHost = 64
	return &Gateway{
		m:      m,
		router: NewRouter(m, policy),
		client: &http.Client{Transport: tr, Timeout: timeout},
	}
}

// Handler returns the gateway's HTTP handler.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		wire.WriteJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", g.handleReadyz)
	mux.HandleFunc("GET /stats", g.handleStats)
	mux.HandleFunc("GET /skyline", g.proxy)
	mux.HandleFunc("GET /topk", g.proxy)
	mux.HandleFunc("GET /nearest", g.proxy)
	mux.HandleFunc("GET /within", g.proxy)
	mux.HandleFunc("GET /multisource/skyline", func(w http.ResponseWriter, r *http.Request) {
		g.scatter(w, r, false)
	})
	mux.HandleFunc("GET /multisource/topk", func(w http.ResponseWriter, r *http.Request) {
		g.scatter(w, r, true)
	})
	mux.HandleFunc("GET /skyline/period", g.period)
	mux.HandleFunc("GET /topk/period", g.period)
	mux.HandleFunc("POST /v1/query", g.handleV1Query)
	return mux
}

// handleReadyz reports ready while at least one backend is available.
func (g *Gateway) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	n := len(g.m.Available())
	if n == 0 {
		unavailable(w)
		return
	}
	wire.WriteJSON(w, http.StatusOK, map[string]any{"status": "ready", "backends": n})
}

func (g *Gateway) handleStats(w http.ResponseWriter, _ *http.Request) {
	now := time.Now()
	backends := make([]map[string]any, 0, len(g.m.Backends()))
	for _, b := range g.m.Backends() {
		backends = append(backends, map[string]any{
			"url":       b.url,
			"healthy":   b.healthy.Load(),
			"available": b.available(now),
			"inflight":  b.inflight.Load(),
			"proxied":   b.proxied.Load(),
			"failures":  b.failures.Load(),
		})
	}
	wire.WriteJSON(w, http.StatusOK, map[string]any{
		"policy":   g.router.Policy().String(),
		"backends": backends,
		"gateway": map[string]int64{
			"proxied":             g.proxied.Load(),
			"scattered":           g.scattered.Load(),
			"failovers":           g.failovers.Load(),
			"retry_after_clamped": g.m.RetryAfterClamped(),
		},
	})
}

// unavailable is the gateway's own shed response, mirroring the replicas'
// overload contract so clients need only one retry discipline.
func unavailable(w http.ResponseWriter) {
	w.Header().Set("Retry-After", "1")
	wire.WriteJSON(w, http.StatusServiceUnavailable, wire.Error{Error: "cluster: no backend available"})
}

// roundTrip issues one prepared backend request, maintaining the backend's
// inflight and health state. A transport error marks the backend down (unless
// the client's own context ended first — that is not the backend's fault); a
// 503 cools it for the advertised Retry-After, clamped to MaxRetryAfter. The
// caller owns resp.Body.
func (g *Gateway) roundTrip(r *http.Request, b *Backend, req *http.Request) (*http.Response, error) {
	b.inflight.Add(1)
	defer b.inflight.Add(-1)
	resp, err := g.client.Do(req)
	if err != nil {
		if r.Context().Err() == nil {
			b.markDown()
		}
		return nil, err
	}
	if resp.StatusCode == http.StatusServiceUnavailable {
		b.cool(g.m.now(), g.m.retryAfter(resp, time.Second))
	}
	return resp, nil
}

// fetch GETs uri from backend b on the client request's context.
func (g *Gateway) fetch(r *http.Request, b *Backend, uri string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, b.url+uri, nil)
	if err != nil {
		return nil, err
	}
	return g.roundTrip(r, b, req)
}

// proxy forwards a single-location query to one replica chosen by the
// routing policy, failing over to the next candidate on transport error or
// 503 — before any response byte has been written, so the client sees
// exactly one clean answer. The response body is streamed through with a
// flush per chunk, which makes NDJSON (stream=1) rows flow incrementally.
func (g *Gateway) proxy(w http.ResponseWriter, r *http.Request) {
	cands := g.router.Candidates(CanonicalKey(r.URL), g.m.Available())
	if len(cands) == 0 {
		unavailable(w)
		return
	}
	for i, b := range cands {
		resp, err := g.fetch(r, b, r.URL.RequestURI())
		if err != nil {
			if r.Context().Err() != nil {
				return
			}
			continue
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			resp.Body.Close()
			continue
		}
		if i > 0 {
			g.failovers.Add(1)
		}
		b.proxied.Add(1)
		g.proxied.Add(1)
		relay(w, resp)
		return
	}
	// Every candidate was overloaded or unreachable: shed with the same
	// contract the replicas use.
	unavailable(w)
}

// hopByHop are the hop-by-hop headers of RFC 9110 §7.6.1: they describe the
// backend↔gateway connection, not the response, and must not leak to the
// client (a relayed Transfer-Encoding or Connection: close would corrupt or
// kill the client connection).
var hopByHop = []string{
	"Connection", "Keep-Alive", "Proxy-Authenticate", "Proxy-Authorization",
	"Te", "Trailer", "Transfer-Encoding", "Upgrade",
}

// relay copies a backend response through: status, end-to-end headers, and
// the body chunk by chunk with a flush after each write. Hop-by-hop headers —
// the RFC 9110 set plus anything the backend named in Connection — are
// stripped, as httputil.ReverseProxy does.
func relay(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	for _, f := range strings.Split(resp.Header.Get("Connection"), ",") {
		if f = strings.TrimSpace(f); f != "" {
			w.Header().Del(f)
		}
	}
	for _, h := range hopByHop {
		w.Header().Del(h)
	}
	w.WriteHeader(resp.StatusCode)
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

// gathered is one replica's outcome during a scatter.
type gathered struct {
	result *wire.Result
	period *wire.PeriodResult
	// errStatus/errBody hold a non-503 error response to relay verbatim;
	// overload notes a 503.
	errStatus int
	errBody   []byte
	errCT     string
	overload  bool
}

// scatter fans a multi-source query to every available replica and merges
// the per-replica results through the core dominance re-filter. With
// replicated backends each replica already answers the full query, so the
// merge — dedup by id, re-filter — is an idempotent no-op and the merged
// facility list is byte-identical to any single replica's. (The same merge
// is exactly what a partitioned tier will need, where it stops being a
// no-op.)
func (g *Gateway) scatter(w http.ResponseWriter, r *http.Request, topk bool) {
	start := time.Now()
	avail := g.m.Available()
	if len(avail) == 0 {
		unavailable(w)
		return
	}
	g.scattered.Add(1)
	outs := make([]gathered, len(avail))
	var wg sync.WaitGroup
	for i, b := range avail {
		wg.Add(1)
		go func(i int, b *Backend) {
			defer wg.Done()
			outs[i] = g.gatherOne(r, b, r.URL.RequestURI(), false)
		}(i, b)
	}
	wg.Wait()

	parts := make([]*core.Result, 0, len(outs))
	query := ""
	for _, o := range outs {
		if o.result == nil {
			continue
		}
		if query == "" {
			query = o.result.Query
		}
		parts = append(parts, &core.Result{
			Facilities: wire.ToFacilities(o.result.Facilities),
			Stats:      o.result.Stats,
		})
	}
	if len(parts) == 0 {
		relayGatherError(w, outs)
		return
	}
	var merged *core.Result
	if topk {
		k := intQuery(r.URL, "k", 4)
		merged = core.MergeTopK(k, parts...)
	} else {
		merged = core.MergeSkylines(parts...)
	}
	wire.WriteJSON(w, http.StatusOK, wire.Result{
		Query:      query,
		Count:      len(merged.Facilities),
		Facilities: wire.FromFacilities(merged.Facilities),
		Stats:      merged.Stats,
		LatencyMS:  float64(time.Since(start)) / float64(time.Millisecond),
	})
}

// gatherOne fetches uri from b and decodes it for merging. When failover is
// set, a failed attempt is retried against the other available replicas
// before giving up (used by period parts, where each sub-range has one
// primary but any replica can answer it).
func (g *Gateway) gatherOne(r *http.Request, b *Backend, uri string, failover bool) gathered {
	return g.gather(r, g.failoverCands(b, failover), gatherSpec{
		issue:  func(cand *Backend) (*http.Response, error) { return g.fetch(r, cand, uri) },
		decode: decodeInto,
	})
}

// failoverCands returns the candidate order for one gather: the primary,
// then (when failover is on) every other available replica.
func (g *Gateway) failoverCands(b *Backend, failover bool) []*Backend {
	cands := []*Backend{b}
	if failover {
		for _, o := range g.m.Available() {
			if o != b {
				cands = append(cands, o)
			}
		}
	}
	return cands
}

// gatherSpec parameterizes gather over the codec: issue sends the query to
// one candidate, decode parses a 200 body into the gathered slot.
type gatherSpec struct {
	issue  func(cand *Backend) (*http.Response, error)
	decode func(out *gathered, body []byte) error
}

// gather tries candidates in order until one yields a decodable answer. A
// 503 or transport error moves on to the next candidate; a 4xx is returned
// immediately — the replicas are deterministic, so a client error from one is
// the canonical answer from all — while a 5xx is one replica's internal
// failure, kept only as a fallback while the remaining candidates get their
// chance.
func (g *Gateway) gather(r *http.Request, cands []*Backend, spec gatherSpec) gathered {
	var out gathered
	for i, cand := range cands {
		// The client hung up: nobody will read an answer, so stop burning
		// replica capacity on failover attempts.
		if r.Context().Err() != nil {
			return out
		}
		resp, err := spec.issue(cand)
		if err != nil {
			continue
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			resp.Body.Close()
			out.overload = true
			continue
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			cand.markDown()
			continue
		}
		if resp.StatusCode != http.StatusOK {
			if resp.StatusCode < http.StatusInternalServerError {
				out.errStatus = resp.StatusCode
				out.errBody = body
				out.errCT = resp.Header.Get("Content-Type")
				return out
			}
			cand.failures.Add(1)
			if out.errStatus == 0 {
				out.errStatus = resp.StatusCode
				out.errBody = body
				out.errCT = resp.Header.Get("Content-Type")
			}
			continue
		}
		if err := spec.decode(&out, body); err != nil {
			cand.failures.Add(1)
			continue
		}
		out.errStatus, out.errBody, out.errCT = 0, nil, ""
		if i > 0 {
			g.failovers.Add(1)
		}
		cand.proxied.Add(1)
		return out
	}
	return out
}

// decodeInto decodes a 200 body as either envelope, keyed on which fields
// appear; scatter reads .result, period reads .period.
func decodeInto(out *gathered, body []byte) error {
	// Decode both envelopes — the caller reads the field it needs, and
	// decoding the other one yields zero values it ignores.
	var res wire.Result
	if err := json.Unmarshal(body, &res); err != nil {
		return err
	}
	var per wire.PeriodResult
	if err := json.Unmarshal(body, &per); err != nil {
		return err
	}
	out.result = &res
	out.period = &per
	return nil
}

// pickGatherError selects the error to relay from failed parts: a 4xx first
// (deterministic rejection every replica agrees on), then any 5xx fallback.
// nil means no part captured an error — the cluster is overloaded or gone.
func pickGatherError(outs []gathered) *gathered {
	var best *gathered
	for i := range outs {
		o := &outs[i]
		if o.errStatus == 0 {
			continue
		}
		if best == nil || (o.errStatus < http.StatusInternalServerError &&
			best.errStatus >= http.StatusInternalServerError) {
			best = o
		}
	}
	return best
}

// relayGatherError answers a scatter/period request whose every part failed:
// a captured error response is relayed verbatim — the replicas are
// deterministic, so any one's client error is the canonical one — otherwise
// the cluster is overloaded or gone and the gateway sheds.
func relayGatherError(w http.ResponseWriter, outs []gathered) {
	if o := pickGatherError(outs); o != nil {
		if o.errCT != "" {
			w.Header().Set("Content-Type", o.errCT)
		}
		w.WriteHeader(o.errStatus)
		w.Write(o.errBody) //nolint:errcheck // client gone; nothing to do
		return
	}
	unavailable(w)
}

// period splits a *OverPeriod query's [from,to) range into one contiguous
// sub-range per available replica, runs the parts concurrently (each with
// failover), and concatenates the per-part interval lists, fusing the seam
// intervals when the preferred set does not change across a boundary — the
// same criterion the single-node sweep uses to merge adjacent elementary
// intervals. Within one elementary interval the answer is constant, so a
// split landing mid-interval always fuses back; the stitched list is
// byte-identical to the single-node sweep's.
func (g *Gateway) period(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	avail := g.m.Available()
	if len(avail) == 0 {
		unavailable(w)
		return
	}
	from, errF := floatQuery(r.URL, "from")
	to, errT := floatQuery(r.URL, "to")
	if errF != nil || errT != nil || from >= to || len(avail) == 1 {
		// Malformed ranges proxy straight through so the replica's canonical
		// error (or single-replica answer) is the response, byte for byte.
		g.proxy(w, r)
		return
	}
	g.scattered.Add(1)
	bounds := make([]float64, len(avail)+1)
	for i := range bounds {
		bounds[i] = from + (to-from)*float64(i)/float64(len(avail))
	}
	bounds[len(avail)] = to
	outs := make([]gathered, len(avail))
	var wg sync.WaitGroup
	for i, b := range avail {
		wg.Add(1)
		go func(i int, b *Backend) {
			defer wg.Done()
			outs[i] = g.gatherOne(r, b, subRangeURI(r.URL, bounds[i], bounds[i+1]), true)
		}(i, b)
	}
	wg.Wait()

	query := ""
	var intervals []wire.Interval
	for _, o := range outs {
		if o.period == nil {
			relayGatherError(w, outs)
			return
		}
		if query == "" {
			query = o.period.Query
		}
		for _, iv := range o.period.Intervals {
			if n := len(intervals); n > 0 && sameIntervalIDs(intervals[n-1], iv) {
				// The preferred set is unchanged across the part boundary:
				// extend the left interval, keeping its result and stats,
				// exactly as the single-node sweep would have.
				intervals[n-1].To = iv.To
				continue
			}
			intervals = append(intervals, iv)
		}
	}
	wire.WriteJSON(w, http.StatusOK, wire.PeriodResult{
		Query:     query,
		Count:     len(intervals),
		Intervals: intervals,
		LatencyMS: float64(time.Since(start)) / float64(time.Millisecond),
	})
}

// subRangeURI rewrites the request's from/to to one part's sub-range; the
// shortest-roundtrip float format guarantees the replica parses the exact
// boundary the gateway computed.
func subRangeURI(u *url.URL, from, to float64) string {
	q := u.Query()
	q.Set("from", strconv.FormatFloat(from, 'g', -1, 64))
	q.Set("to", strconv.FormatFloat(to, 'g', -1, 64))
	sub := *u
	sub.RawQuery = q.Encode()
	return sub.RequestURI()
}

// sameIntervalIDs reports whether two intervals answer with the same
// facility multiset — the seam-fusion criterion, matching the single-node
// sweep's.
func sameIntervalIDs(a, b wire.Interval) bool {
	if len(a.Facilities) != len(b.Facilities) {
		return false
	}
	ids := make(map[graph.FacilityID]int, len(a.Facilities))
	for _, f := range a.Facilities {
		ids[f.ID]++
	}
	for _, f := range b.Facilities {
		if ids[f.ID] == 0 {
			return false
		}
		ids[f.ID]--
	}
	return true
}

func intQuery(u *url.URL, key string, def int) int {
	raw := u.Query().Get(key)
	if raw == "" {
		return def
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return def
	}
	return v
}

func floatQuery(u *url.URL, key string) (float64, error) {
	return strconv.ParseFloat(u.Query().Get(key), 64)
}
