package cluster

import (
	"fmt"
	"hash/fnv"
	"net/url"
	"sort"
)

// Policy selects which available backend a single-location query is proxied
// to first, and the failover order behind it.
type Policy int

const (
	// PolicyHash routes by consistent hashing on the canonicalized query key,
	// so repeats of the same query land on the same replica and hit its
	// result cache. Failover walks the ring to the next distinct replica.
	PolicyHash Policy = iota
	// PolicyLeastInflight routes to the replica with the fewest gateway
	// requests currently in flight, spreading load at the cost of cache
	// affinity.
	PolicyLeastInflight
)

func (p Policy) String() string {
	switch p {
	case PolicyHash:
		return "hash"
	case PolicyLeastInflight:
		return "least-inflight"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParsePolicy parses a -policy flag value.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "hash":
		return PolicyHash, nil
	case "least-inflight":
		return PolicyLeastInflight, nil
	default:
		return 0, fmt.Errorf("cluster: unknown routing policy %q (want hash or least-inflight)", s)
	}
}

// CanonicalKey reduces a request URL to the routing key: path plus the query
// parameters that shape the result, in sorted order. timeout_ms and stream
// are stripped — they change delivery, not the answer — so a streamed and a
// buffered run of the same query share a replica and its cache entry. The
// same normalization feeds each replica's own result-cache key, which is
// what makes hash affinity pay off.
func CanonicalKey(u *url.URL) string {
	q := u.Query()
	q.Del("timeout_ms")
	q.Del("stream")
	return u.Path + "?" + q.Encode()
}

const ringVnodes = 64

type ringEntry struct {
	hash uint64
	b    *Backend
}

// Router orders the available backends for a given query key under the
// configured policy. It is immutable after construction; health is read from
// the membership at lookup time.
type Router struct {
	policy Policy
	ring   []ringEntry
}

// NewRouter builds a router over the membership's full backend set. The hash
// ring places ringVnodes virtual nodes per backend so load stays near-uniform
// with few replicas.
func NewRouter(m *Membership, policy Policy) *Router {
	r := &Router{policy: policy}
	for _, b := range m.Backends() {
		for i := 0; i < ringVnodes; i++ {
			h := fnv.New64a()
			fmt.Fprintf(h, "%s#%d", b.URL(), i)
			r.ring = append(r.ring, ringEntry{hash: h.Sum64(), b: b})
		}
	}
	sort.Slice(r.ring, func(i, j int) bool { return r.ring[i].hash < r.ring[j].hash })
	return r
}

// Policy returns the configured routing policy.
func (r *Router) Policy() Policy { return r.policy }

// Candidates returns the available backends in preference order for key:
// primary first, then the failover sequence. Empty when no backend is
// available.
func (r *Router) Candidates(key string, available []*Backend) []*Backend {
	if len(available) == 0 {
		return nil
	}
	switch r.policy {
	case PolicyLeastInflight:
		out := append([]*Backend(nil), available...)
		sort.SliceStable(out, func(i, j int) bool { return out[i].Inflight() < out[j].Inflight() })
		return out
	default:
		return r.walkRing(key, available)
	}
}

// walkRing returns the distinct available backends in ring order starting at
// the key's position.
func (r *Router) walkRing(key string, available []*Backend) []*Backend {
	avail := make(map[*Backend]bool, len(available))
	for _, b := range available {
		avail[b] = true
	}
	h := fnv.New64a()
	h.Write([]byte(key))
	target := h.Sum64()
	start := sort.Search(len(r.ring), func(i int) bool { return r.ring[i].hash >= target })
	out := make([]*Backend, 0, len(available))
	seen := make(map[*Backend]bool, len(available))
	for i := 0; i < len(r.ring) && len(out) < len(available); i++ {
		e := r.ring[(start+i)%len(r.ring)]
		if seen[e.b] || !avail[e.b] {
			continue
		}
		seen[e.b] = true
		out = append(out, e.b)
	}
	return out
}
