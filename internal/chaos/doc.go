// Package chaos holds the randomized fault-injection harness: tests that run
// the mixed query workload of the equivalence suites against a
// fault.Device-wrapped database and assert the robustness invariants — no
// hangs, every query ends in a correct result or an explicitly classified
// error, transient-only fault schedules leave results byte-identical to the
// fault-free run, permanent faults never poison buffer-pool frames or cached
// results, and no goroutines leak. The package contains no production code;
// the number of randomized schedules scales with -short and the
// CHAOS_SCHEDULES environment variable (see chaos_test.go).
package chaos
