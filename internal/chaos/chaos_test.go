package chaos

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"mcn/internal/core"
	"mcn/internal/engine"
	"mcn/internal/fault"
	"mcn/internal/gen"
	"mcn/internal/graph"
	"mcn/internal/rescache"
	"mcn/internal/storage"
	"mcn/internal/vec"
)

// schedules returns how many randomized fault schedules a test runs: the
// CHAOS_SCHEDULES environment variable when set, else a -short/long default.
// The long default satisfies the 1000-schedule acceptance bar via make chaos.
func schedules(t *testing.T, short, long int) int {
	if s := os.Getenv("CHAOS_SCHEDULES"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("bad CHAOS_SCHEDULES=%q", s)
		}
		return n
	}
	if testing.Short() {
		return short
	}
	return long
}

// testDB builds one small database shared by every schedule of a test. The
// MemDevice is read-only after Build, so schedules reuse it through fresh
// fault wrappers and pools.
func testDB(t *testing.T) (*graph.Graph, *storage.MemDevice) {
	t.Helper()
	inst, err := gen.MakeInstance(gen.InstanceConfig{
		Nodes: 300, Facilities: 150, Clusters: 4, D: 3,
		Dist: gen.AntiCorrelated, Seed: 7, Queries: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	dev, err := storage.BuildMem(inst.Graph)
	if err != nil {
		t.Fatal(err)
	}
	return inst.Graph, dev
}

// workload builds the mixed request batch of the PR 5/6 equivalence suites:
// skylines, top-k, nearest and budget queries at random locations, both
// engines.
func workload(g *graph.Graph, seed int64, n int) []engine.Request {
	locs := gen.QueryLocations(g, n, seed)
	agg := vec.NewWeighted(1, 2, 1)
	reqs := make([]engine.Request, n)
	for i, loc := range locs {
		r := engine.Request{Loc: loc, Timeout: 30 * time.Second}
		if i%2 == 1 {
			r.Opts.Engine = core.CEA
		}
		switch i % 4 {
		case 0:
			r.Kind = engine.Skyline
		case 1:
			r.Kind = engine.TopK
			r.Agg = agg
			r.K = 5
		case 2:
			r.Kind = engine.Nearest
			r.CostIdx = i % 3
			r.K = 4
		case 3:
			r.Kind = engine.Within
			r.Budget = vec.Of(40, 40, 40)
		}
		reqs[i] = r
	}
	return reqs
}

// open builds a network + retrying pool over dev. Backoffs are microseconds
// so a thousand schedules stay fast.
func open(t *testing.T, dev storage.Device) *storage.Network {
	t.Helper()
	pool := storage.NewBufferPool(dev, 64, storage.PoolOptions{
		Retry: storage.RetryPolicy{MaxRetries: 3, BaseBackoff: time.Microsecond, MaxBackoff: 20 * time.Microsecond},
	})
	net, err := storage.OpenWithPool(dev, pool)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func run(net *storage.Network, reqs []engine.Request) []engine.Response {
	ex := engine.New(net, engine.Config{Workers: 4})
	return ex.Execute(context.Background(), reqs)
}

// resultEqual compares two results bit-identically: ids, every cost
// component (by Float64bits — unknown components are NaN, which DeepEqual
// would falsely report as unequal), scores and work statistics (core.Stats
// counts algorithmic work only, so it is fault-invariant).
func resultEqual(a, b *core.Result) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if a.Stats != b.Stats || len(a.Facilities) != len(b.Facilities) {
		return false
	}
	for i := range a.Facilities {
		fa, fb := a.Facilities[i], b.Facilities[i]
		if fa.ID != fb.ID || math.Float64bits(fa.Score) != math.Float64bits(fb.Score) || len(fa.Costs) != len(fb.Costs) {
			return false
		}
		for j := range fa.Costs {
			if math.Float64bits(fa.Costs[j]) != math.Float64bits(fb.Costs[j]) {
				return false
			}
		}
	}
	return true
}

// mustMatch asserts the faulted responses are bit-identical to the
// fault-free ones: same results, no errors.
func mustMatch(t *testing.T, tag string, want, got []engine.Response) {
	t.Helper()
	for i := range want {
		if got[i].Err != nil {
			t.Fatalf("%s: query %d failed: %v", tag, i, got[i].Err)
		}
		if !resultEqual(want[i].Result, got[i].Result) {
			t.Fatalf("%s: query %d result diverged from fault-free run", tag, i)
		}
	}
}

// checkGoroutines fails the test if goroutines leaked relative to start,
// allowing the runtime a moment to retire finished ones.
func checkGoroutines(t *testing.T, start int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= start {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d at start, %d after settle", start, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestTransientOnlySchedules is the headline chaos invariant: with transient
// faults injected on a significant fraction of reads, and a retry budget at
// least the device's consecutive-fault cap, every query of every schedule
// succeeds with results byte-identical to the fault-free run, and no failure
// ever reaches a caller or poisons a frame.
func TestTransientOnlySchedules(t *testing.T) {
	g, dev := testDB(t)
	reqs := workload(g, 1, 16)
	want := run(open(t, dev), reqs)
	for _, w := range want {
		if w.Err != nil {
			t.Fatalf("fault-free run failed: %v", w.Err)
		}
	}
	start := runtime.NumGoroutine()
	n := schedules(t, 40, 1000)
	for s := 0; s < n; s++ {
		fd := fault.Wrap(dev, fault.Options{
			Seed:           uint64(s + 1),
			ReadTransient:  0.10, // >= the 5% acceptance floor
			MaxConsecutive: 2,    // <= pool MaxRetries, so reads always land
		})
		net := open(t, fd)
		fd.Arm()
		got := run(net, reqs)
		mustMatch(t, fmt.Sprintf("schedule %d (armed)", s), want, got)
		fs := net.FailureStats()
		if fs.Permanent != 0 || fs.Transient != 0 {
			t.Fatalf("schedule %d: surfaced failures under transient-only faults: %+v", s, fs)
		}
		if c := fd.Counters().ReadTransient; c > 0 && fs.Retries == 0 {
			t.Fatalf("schedule %d: device injected %d faults but pool retried none", s, c)
		}
		// Frame-table consistency: with injection off, the warm pool must
		// serve the same answers — a poisoned frame would diverge here.
		fd.Disarm()
		mustMatch(t, fmt.Sprintf("schedule %d (disarmed rerun)", s), want, run(net, reqs))
	}
	checkGoroutines(t, start)
}

// TestCorruptionSchedules injects silent single-bit corruption; the checksum
// table must convert every hit into a counted, retried error and the re-read
// must repair it, keeping all results byte-identical.
func TestCorruptionSchedules(t *testing.T) {
	g, dev := testDB(t)
	reqs := workload(g, 2, 16)
	want := run(open(t, dev), reqs)
	n := schedules(t, 20, 200)
	for s := 0; s < n; s++ {
		fd := fault.Wrap(dev, fault.Options{
			Seed:           uint64(1000 + s),
			ReadCorrupt:    0.08,
			MaxConsecutive: 2,
		})
		net := open(t, fd)
		fd.Arm()
		got := run(net, reqs)
		mustMatch(t, fmt.Sprintf("schedule %d", s), want, got)
		fs, fc := net.FailureStats(), fd.Counters()
		if fs.Checksum != fc.ReadCorrupt {
			t.Fatalf("schedule %d: %d corrupt reads injected but %d checksum errors counted",
				s, fc.ReadCorrupt, fs.Checksum)
		}
	}
}

// TestPermanentFaults marks pages permanently unreadable mid-workload: every
// affected query must return a promptly classified, non-transient error;
// unaffected queries must still match the baseline; and clearing the fault
// must restore full correctness (no poisoned frames, no stale cache).
func TestPermanentFaults(t *testing.T) {
	g, dev := testDB(t)
	reqs := workload(g, 3, 16)
	want := run(open(t, dev), reqs)
	start := runtime.NumGoroutine()
	n := schedules(t, 10, 100)
	for s := 0; s < n; s++ {
		fd := fault.Wrap(dev, fault.Options{Seed: uint64(2000 + s)})
		net := open(t, fd)
		// Fail a pseudo-random data page (never the header, which is read
		// before the pool exists).
		victim := storage.PageID(1 + (s*2654435761)%(dev.NumPages()-1))
		fd.FailPage(victim)
		deadline := time.Now().Add(25 * time.Second)
		got := run(net, reqs)
		if time.Now().After(deadline) {
			t.Fatalf("schedule %d: workload overran its deadline", s)
		}
		failed := 0
		for i, r := range got {
			if r.Err == nil {
				if !resultEqual(want[i].Result, r.Result) {
					t.Fatalf("schedule %d: unaffected query %d diverged", s, i)
				}
				continue
			}
			failed++
			if storage.IsTransient(r.Err) {
				t.Fatalf("schedule %d: permanent fault classified transient: %v", s, r.Err)
			}
			if errors.Is(r.Err, context.DeadlineExceeded) || errors.Is(r.Err, context.Canceled) {
				t.Fatalf("schedule %d: permanent fault surfaced as %v instead of an I/O error", s, r.Err)
			}
		}
		if fs := net.FailureStats(); failed > 0 && fs.Permanent == 0 {
			t.Fatalf("schedule %d: %d queries failed but Permanent counter is 0", s, failed)
		}
		// Clearing the fault and dropping frames must restore the baseline:
		// failures never populate frames, so nothing poisonous survives.
		fd.ClearPage(victim)
		net.Pool().Drop()
		mustMatch(t, fmt.Sprintf("schedule %d (cleared)", s), want, run(net, reqs))
	}
	checkGoroutines(t, start)
}

// TestPermanentCorruptionClassified marks a page as stably bit-flipped: the
// checksum layer must exhaust the retry budget and surface ErrChecksum, never
// silently wrong results.
func TestPermanentCorruptionClassified(t *testing.T) {
	g, dev := testDB(t)
	reqs := workload(g, 4, 16)
	want := run(open(t, dev), reqs)
	fd := fault.Wrap(dev, fault.Options{Seed: 31})
	net := open(t, fd)
	victim := storage.PageID(1 + dev.NumPages()/2)
	fd.CorruptPage(victim)
	got := run(net, reqs)
	failed := 0
	for i, r := range got {
		if r.Err == nil {
			if !resultEqual(want[i].Result, r.Result) {
				t.Fatalf("query %d returned silently wrong result under corruption", i)
			}
			continue
		}
		failed++
		if !errors.Is(r.Err, storage.ErrChecksum) {
			t.Fatalf("corruption surfaced as %v, want ErrChecksum in the chain", r.Err)
		}
	}
	if failed == 0 {
		t.Skipf("no query touched corrupted page %d; widen the workload", victim)
	}
	if fs := net.FailureStats(); fs.Checksum == 0 || fs.Transient == 0 {
		t.Fatalf("permanent corruption should count checksum errors and an exhausted retry: %+v", fs)
	}
}

// TestResultCacheStaysRetryableUnderFaults wires the executor's result cache
// into a faulted run: a singleflight leader failing on a permanent I/O error
// must not cache the failure — after the fault clears, the same key must
// compute and then serve hits, and no stale/error value may ever be served.
func TestResultCacheStaysRetryableUnderFaults(t *testing.T) {
	g, dev := testDB(t)
	locs := gen.QueryLocations(g, 1, 9)
	req := engine.Request{Kind: engine.Skyline, Loc: locs[0], Timeout: 30 * time.Second}

	fd := fault.Wrap(dev, fault.Options{Seed: 41})
	net := open(t, fd)
	ex := engine.New(net, engine.Config{Workers: 2})
	ex.SetCache(rescache.New(rescache.Options{Entries: 32}))

	want := ex.Do(context.Background(), req)
	if want.Err != nil {
		t.Fatalf("fault-free query failed: %v", want.Err)
	}
	if !want.Cached {
		// Second identical query must hit.
		if r := ex.Do(context.Background(), req); !r.Cached {
			t.Fatal("repeat query did not hit the result cache")
		}
	}

	// Fail every page, flush frames and cache, and observe a classified
	// error — then clear and require a correct, cacheable recompute.
	for p := 1; p < dev.NumPages(); p++ {
		fd.FailPage(storage.PageID(p))
	}
	net.Pool().Drop()
	ex.Cache().Flush()
	r := ex.Do(context.Background(), req)
	if r.Err == nil {
		t.Fatal("query succeeded with every page failed")
	}
	if r.Cached {
		t.Fatal("error response marked as served from cache")
	}
	for p := 1; p < dev.NumPages(); p++ {
		fd.ClearPage(storage.PageID(p))
	}
	r = ex.Do(context.Background(), req)
	if r.Err != nil {
		t.Fatalf("key stayed poisoned after fault cleared: %v", r.Err)
	}
	if !resultEqual(want.Result, r.Result) {
		t.Fatal("recomputed result diverged from fault-free run")
	}
	if r = ex.Do(context.Background(), req); !r.Cached {
		t.Fatal("recomputed result was not cached")
	}
}
