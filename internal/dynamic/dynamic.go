// Package dynamic implements the paper's first future-work item (Sec. VII):
// incrementally maintaining the skyline and top-k sets of a fixed query
// location while facilities are inserted and deleted.
//
// A Maintainer materialises the cost vectors of the initial facilities once
// (d complete expansions), then serves updates cheaply: an insertion costs d
// early-terminating point probes (the new facility's edge end-nodes) plus an
// O(|P|) dominance pass, and a deletion costs a recomputation over the
// already-materialised vectors only — no network traversal at all.
package dynamic

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"mcn/internal/core"
	"mcn/internal/expand"
	"mcn/internal/graph"
	"mcn/internal/skyline"
	"mcn/internal/vec"
)

// ErrClosed is returned by operations that need the network after the
// Maintainer was closed.
var ErrClosed = errors.New("dynamic: maintainer closed")

// Handle identifies a facility managed by a Maintainer. Handles of the
// initial facilities equal their graph FacilityIDs; inserted facilities get
// fresh handles beyond them.
type Handle uint64

// Entry is a maintained facility with its materialised cost vector.
type Entry struct {
	Handle Handle
	Edge   graph.EdgeID
	T      float64
	Costs  vec.Costs
}

// Maintainer keeps the preference-query state of one query location while
// the facility set changes. It may hold borrowed pooled expansion scratch
// (Options.Scratch) for its insertion probes; callers must Close it when
// done. Insert/Delete/Skyline/TopK are single-goroutine, but Close is safe
// from any goroutine, any number of times — it waits for an in-flight
// Insert probe to finish and runs the release hook exactly once, so the
// scratch is never handed back to the pool mid-probe. After Close, Insert
// (which needs the scratch for network probes) fails with ErrClosed; the
// already-materialised entries remain readable.
type Maintainer struct {
	src     expand.Source
	loc     graph.Location
	next    Handle
	facs    map[Handle]*Entry
	scratch *expand.Scratch

	closed    atomic.Bool
	closeOnce sync.Once
	release   func()
	// onUpdate, when set, observes every successful facility mutation with
	// the edge it touched; the facade points it at the result cache's
	// edge-tag invalidation so live updates kill exactly the cached entries
	// that depend on the touched edge.
	onUpdate func(graph.EdgeID)
	// mu serialises Insert's scratch-backed probes against the releasing
	// half of Close.
	mu sync.Mutex
}

// New materialises the initial state for query location loc. The source's
// existing facilities seed the maintained set; facilities reachable under no
// cost type are excluded (they can never enter any preference result). Only
// opt.Interrupt and opt.Scratch are consulted: the scratch backs both the
// initial materialisation and every later insertion probe, and is retained
// until Close.
func New(src expand.Source, loc graph.Location, opt core.Options) (*Maintainer, error) {
	vectors, _, err := core.MaterializeAll(src, loc, opt)
	if err != nil {
		return nil, err
	}
	m := &Maintainer{
		src:     src,
		loc:     loc,
		facs:    make(map[Handle]*Entry, len(vectors)),
		scratch: opt.Scratch,
	}
	for id, costs := range vectors {
		e, err := src.FacilityEdge(id)
		if err != nil {
			return nil, err
		}
		t, err := facilityFraction(src, e, id)
		if err != nil {
			return nil, err
		}
		m.facs[Handle(id)] = &Entry{Handle: Handle(id), Edge: e, T: t, Costs: costs}
		if Handle(id) >= m.next {
			m.next = Handle(id) + 1
		}
	}
	return m, nil
}

// facilityFraction recovers a facility's position on its edge from the
// edge's facility record.
func facilityFraction(src expand.Source, e graph.EdgeID, id graph.FacilityID) (float64, error) {
	info, err := src.EdgeInfo(e)
	if err != nil {
		return 0, err
	}
	facs, err := src.Facilities(info.FacRef, info.FacCount)
	if err != nil {
		return 0, err
	}
	for _, fe := range facs {
		if fe.ID == id {
			return fe.T, nil
		}
	}
	return 0, fmt.Errorf("dynamic: facility %d not found on its edge %d", id, e)
}

// SetRelease registers fn to run exactly once when the maintainer is
// closed; the facade uses it to return borrowed pooled scratch. It must be
// called before the maintainer is shared across goroutines.
func (m *Maintainer) SetRelease(fn func()) { m.release = fn }

// SetOnUpdate registers fn to observe every successful Insert and Delete
// with the edge the mutation touched. Like SetRelease it must be called
// before the maintainer is used; the facade wires it to result-cache
// invalidation.
func (m *Maintainer) SetOnUpdate(fn func(graph.EdgeID)) { m.onUpdate = fn }

// Close releases the maintainer's borrowed scratch. It is idempotent and
// safe for concurrent use; the release hook runs exactly once, and never
// while an Insert probe is still running on the scratch.
func (m *Maintainer) Close() error {
	m.closed.Store(true)
	m.closeOnce.Do(func() {
		m.mu.Lock() // drain an in-flight Insert before releasing its scratch
		defer m.mu.Unlock()
		m.scratch = nil
		if m.release != nil {
			m.release()
		}
	})
	return nil
}

// Len returns the number of maintained facilities.
func (m *Maintainer) Len() int { return len(m.facs) }

// Insert adds a facility at fraction t on edge e, computing its cost vector
// with d early-terminating point probes, and returns its handle.
func (m *Maintainer) Insert(e graph.EdgeID, t float64) (Handle, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed.Load() {
		return 0, ErrClosed
	}
	if t < 0 || t > 1 {
		return 0, fmt.Errorf("dynamic: fraction %g outside [0,1]", t)
	}
	costs, err := expand.LocationCosts(m.src, m.loc, e, t, m.scratch)
	if err != nil {
		return 0, err
	}
	h := m.next
	m.next++
	m.facs[h] = &Entry{Handle: h, Edge: e, T: t, Costs: costs}
	if m.onUpdate != nil {
		m.onUpdate(e)
	}
	return h, nil
}

// Delete removes a maintained facility.
func (m *Maintainer) Delete(h Handle) error {
	e, ok := m.facs[h]
	if !ok {
		return fmt.Errorf("dynamic: unknown facility handle %d", h)
	}
	delete(m.facs, h)
	if m.onUpdate != nil {
		m.onUpdate(e.Edge)
	}
	return nil
}

// Entry returns the maintained record for h.
func (m *Maintainer) Entry(h Handle) (Entry, bool) {
	e, ok := m.facs[h]
	if !ok {
		return Entry{}, false
	}
	out := *e
	out.Costs = e.Costs.Clone()
	return out, true
}

// ordered returns maintained entries sorted by handle.
func (m *Maintainer) ordered() []*Entry {
	out := make([]*Entry, 0, len(m.facs))
	for _, e := range m.facs {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Handle < out[j].Handle })
	return out
}

// Skyline returns the current skyline over the maintained facilities,
// sorted by handle.
func (m *Maintainer) Skyline() []Entry {
	entries := m.ordered()
	items := make([]vec.Costs, len(entries))
	for i, e := range entries {
		items[i] = e.Costs
	}
	var out []Entry
	for _, idx := range skyline.BNL(items) {
		e := *entries[idx]
		e.Costs = entries[idx].Costs.Clone()
		out = append(out, e)
	}
	return out
}

// TopK returns the k best maintained facilities under agg, ascending score.
func (m *Maintainer) TopK(agg vec.Aggregate, k int) ([]Entry, []float64, error) {
	if k < 1 {
		return nil, nil, fmt.Errorf("dynamic: top-k requires k >= 1, got %d", k)
	}
	entries := m.ordered()
	scores := make([]float64, len(entries))
	order := make([]int, len(entries))
	for i, e := range entries {
		scores[i] = agg.Score(e.Costs)
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if scores[order[a]] != scores[order[b]] {
			return scores[order[a]] < scores[order[b]]
		}
		return entries[order[a]].Handle < entries[order[b]].Handle
	})
	if k > len(order) {
		k = len(order)
	}
	outE := make([]Entry, k)
	outS := make([]float64, k)
	for i := 0; i < k; i++ {
		e := *entries[order[i]]
		e.Costs = entries[order[i]].Costs.Clone()
		outE[i] = e
		outS[i] = scores[order[i]]
	}
	return outE, outS, nil
}
