package dynamic

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"mcn/internal/core"
	"mcn/internal/expand"
	"mcn/internal/gen"
	"mcn/internal/graph"
	"mcn/internal/vec"
)

// buildInstance creates a random connected network with some initial
// facilities.
func buildInstance(t *testing.T, rng *rand.Rand) (*graph.Graph, graph.Location) {
	t.Helper()
	d := 2 + rng.Intn(2)
	n := 3 + rng.Intn(30)
	topo := gen.RandomConnected(n, rng.Intn(n), rng)
	costs := gen.AssignCosts(topo, d, gen.Distribution(rng.Intn(3)), rng)
	pls := gen.UniformFacilities(topo, 1+rng.Intn(15), rng)
	g, err := gen.Assemble(topo, costs, pls, false)
	if err != nil {
		t.Fatal(err)
	}
	return g, graph.Location{Edge: graph.EdgeID(rng.Intn(g.NumEdges())), T: rng.Float64()}
}

// oracleSkyline computes the skyline over the maintainer's own entries by a
// quadratic scan, as an independent check of its BNL-based answer.
func oracleSkyline(entries []Entry) []Handle {
	var out []Handle
	for i, e := range entries {
		dom := false
		for j, o := range entries {
			if i != j && o.Costs.Dominates(e.Costs) {
				dom = true
				break
			}
		}
		if !dom {
			out = append(out, e.Handle)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// rebuildOracle constructs a fresh maintainer-equivalent state from scratch:
// a new graph containing the current facility set, fully rematerialised.
func rebuildOracle(t *testing.T, g *graph.Graph, loc graph.Location, live []Entry) []Entry {
	t.Helper()
	b := graph.NewBuilder(g.D(), g.Directed())
	for v := 0; v < g.NumNodes(); v++ {
		n := g.Node(graph.NodeID(v))
		b.AddNode(n.X, n.Y)
	}
	for e := 0; e < g.NumEdges(); e++ {
		edge := g.Edge(graph.EdgeID(e))
		b.AddEdge(edge.U, edge.V, edge.W)
	}
	for _, e := range live {
		b.AddFacility(e.Edge, e.T)
	}
	g2 := b.MustBuild()
	m2, err := New(expand.NewMemorySource(g2), loc, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]Entry, 0, m2.Len())
	for _, e := range m2.ordered() {
		out = append(out, *e)
	}
	return out
}

func TestMaintainerMatchesRecompute(t *testing.T) {
	rng := rand.New(rand.NewSource(700))
	for trial := 0; trial < 40; trial++ {
		g, loc := buildInstance(t, rng)
		m, err := New(expand.NewMemorySource(g), loc, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		handles := make([]Handle, 0, m.Len())
		for _, e := range m.ordered() {
			handles = append(handles, e.Handle)
		}

		// Random update sequence.
		for step := 0; step < 15; step++ {
			if len(handles) > 0 && rng.Intn(3) == 0 {
				i := rng.Intn(len(handles))
				if err := m.Delete(handles[i]); err != nil {
					t.Fatal(err)
				}
				handles = append(handles[:i], handles[i+1:]...)
			} else {
				h, err := m.Insert(graph.EdgeID(rng.Intn(g.NumEdges())), rng.Float64())
				if err != nil {
					t.Fatal(err)
				}
				handles = append(handles, h)
			}

			// Skyline must match the quadratic oracle over its own entries,
			// and the entries themselves must match a from-scratch rebuild.
			live := m.ordered()
			liveCopies := make([]Entry, len(live))
			for i, e := range live {
				liveCopies[i] = *e
			}
			sky := m.Skyline()
			var got []Handle
			for _, e := range sky {
				got = append(got, e.Handle)
			}
			want := oracleSkyline(liveCopies)
			if len(got) != len(want) {
				t.Fatalf("trial %d step %d: skyline size %d, want %d", trial, step, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("trial %d step %d: skyline %v, want %v", trial, step, got, want)
				}
			}

			rebuilt := rebuildOracle(t, g, loc, liveCopies)
			if len(rebuilt) != len(liveCopies) {
				t.Fatalf("trial %d step %d: rebuild has %d facilities, maintainer %d (unreachable ones may differ)",
					trial, step, len(rebuilt), len(liveCopies))
			}
			for i := range rebuilt {
				for c := range rebuilt[i].Costs {
					a, b := rebuilt[i].Costs[c], liveCopies[i].Costs[c]
					if math.IsInf(a, 1) && math.IsInf(b, 1) {
						continue
					}
					if math.Abs(a-b) > 1e-9*(1+math.Abs(a)) {
						t.Fatalf("trial %d step %d: facility %d cost %d = %g, rebuild %g",
							trial, step, liveCopies[i].Handle, c, b, a)
					}
				}
			}
		}
	}
}

func TestMaintainerTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(701))
	for trial := 0; trial < 30; trial++ {
		g, loc := buildInstance(t, rng)
		m, err := New(expand.NewMemorySource(g), loc, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		coef := make([]float64, g.D())
		for i := range coef {
			coef[i] = rng.Float64()
		}
		agg := vec.NewWeighted(coef...)
		k := 1 + rng.Intn(5)
		entries, scores, err := m.TopK(agg, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != len(scores) {
			t.Fatal("entries/scores length mismatch")
		}
		for i := 1; i < len(scores); i++ {
			if scores[i] < scores[i-1] {
				t.Fatalf("scores not ascending: %v", scores)
			}
		}
		for i, e := range entries {
			want := agg.Score(e.Costs)
			if math.IsInf(want, 1) && math.IsInf(scores[i], 1) {
				continue
			}
			if math.Abs(want-scores[i]) > 1e-9 {
				t.Fatalf("score mismatch for %d: %g vs %g", e.Handle, scores[i], want)
			}
		}
	}
}

func TestMaintainerErrors(t *testing.T) {
	g, loc := buildInstance(t, rand.New(rand.NewSource(702)))
	m, err := New(expand.NewMemorySource(g), loc, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Delete(Handle(1 << 40)); err == nil {
		t.Error("deleting unknown handle succeeded")
	}
	if _, err := m.Insert(0, 1.5); err == nil {
		t.Error("inserting with bad fraction succeeded")
	}
	if _, _, err := m.TopK(vec.NewWeighted(make([]float64, g.D())...), 0); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestMaintainerEntryLookup(t *testing.T) {
	g, loc := buildInstance(t, rand.New(rand.NewSource(703)))
	m, err := New(expand.NewMemorySource(g), loc, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := m.Insert(0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	e, ok := m.Entry(h)
	if !ok || e.Edge != 0 || e.T != 0.5 {
		t.Errorf("Entry(%d) = %+v, %v", h, e, ok)
	}
	if _, ok := m.Entry(Handle(1 << 40)); ok {
		t.Error("unknown handle found")
	}
}
