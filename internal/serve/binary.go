package serve

// This file implements POST /v1/query: the codec-negotiated sibling of the
// GET endpoints, built for persistent high-throughput connections. The
// request body is one wire.Request — a binary frame (Content-Type:
// application/x-mcn-frame) or a JSON object — and the response codec follows
// the Accept header, defaulting to the request's own codec. Execution
// funnels through the same validation, executor and period sweep as the GET
// endpoints, so a query answers identically on every codec.

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"mcn"
	"mcn/internal/wire"
)

// handleV1Query answers POST /v1/query in whichever codec the client
// negotiated.
func (s *Server) handleV1Query(w http.ResponseWriter, r *http.Request) {
	binaryIn, binaryOut := wire.Negotiate(r.Header.Get("Content-Type"), r.Header.Get("Accept"))
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, wire.MaxRequestFrame+16))
	if err != nil {
		s.writeStatus(w, binaryOut, http.StatusBadRequest, "unreadable or oversized request body")
		return
	}
	q, err := wire.DecodeRequestBody(body, binaryIn)
	if err != nil {
		s.writeStatus(w, binaryOut, http.StatusBadRequest, err.Error())
		return
	}
	if q.Period() {
		s.serveWirePeriod(w, r, q, binaryOut)
		return
	}
	req, err := s.batchFromWire(q)
	if err != nil {
		s.writeStatus(w, binaryOut, http.StatusBadRequest, err.Error())
		return
	}
	if err := s.clampTimeout(q.TimeoutMS, &req); err != nil {
		s.writeStatus(w, binaryOut, http.StatusBadRequest, err.Error())
		return
	}
	resp := s.exec.Do(r.Context(), req)
	if resp.Err != nil {
		s.writeWireError(w, binaryOut, resp.Err)
		return
	}
	s.served.Add(1)
	out := &wire.Result{
		Query:      req.Kind.String(),
		Count:      len(resp.Result.Facilities),
		Facilities: wire.FromFacilities(resp.Result.Facilities),
		Stats:      resp.Result.Stats,
		LatencyMS:  float64(resp.Latency.Microseconds()) / 1000,
	}
	if !binaryOut {
		wire.WriteJSON(w, http.StatusOK, out)
		return
	}
	frame, err := wire.EncodeResult(out)
	if err != nil {
		s.writeStatus(w, true, http.StatusInternalServerError, "internal encoding failure")
		return
	}
	writeBinary(w, http.StatusOK, frame)
}

// serveWirePeriod answers the period kinds of /v1/query through the same
// sweep core as the GET period endpoints.
func (s *Server) serveWirePeriod(w http.ResponseWriter, r *http.Request, q *wire.Request, binaryOut bool) {
	if s.tnet == nil {
		s.writeStatus(w, binaryOut, http.StatusBadRequest, "period queries unavailable: no time-dependent network attached")
		return
	}
	if q.From >= q.To {
		s.writeStatus(w, binaryOut, http.StatusBadRequest, fmt.Sprintf("empty period [%g, %g)", q.From, q.To))
		return
	}
	loc, err := s.locFromWire(q.Edge, q.T)
	if err != nil {
		s.writeStatus(w, binaryOut, http.StatusBadRequest, err.Error())
		return
	}
	engOpts, err := engineOpts(q.Engine)
	if err != nil {
		s.writeStatus(w, binaryOut, http.StatusBadRequest, err.Error())
		return
	}
	topk := q.Kind == wire.KindTopKPeriod
	var agg mcn.Aggregate
	if topk {
		if agg, err = weightsOf(q.Weights, s.net.D()); err != nil {
			s.writeStatus(w, binaryOut, http.StatusBadRequest, err.Error())
			return
		}
	}
	if s.exec.Draining() {
		s.writeWireError(w, binaryOut, mcn.ErrDraining)
		return
	}
	ctx, cancel, err := s.periodTimeoutCtx(r.Context(), q.TimeoutMS)
	if err != nil {
		s.writeStatus(w, binaryOut, http.StatusBadRequest, err.Error())
		return
	}
	defer cancel()
	out, err := s.runPeriodSweep(ctx, topk, loc, agg, q.K, q.From, q.To, engOpts)
	if err != nil {
		s.writeWireError(w, binaryOut, err)
		return
	}
	if !binaryOut {
		wire.WriteJSON(w, http.StatusOK, out)
		return
	}
	frame, err := wire.EncodePeriodResult(out)
	if err != nil {
		s.writeStatus(w, true, http.StatusInternalServerError, "internal encoding failure")
		return
	}
	writeBinary(w, http.StatusOK, frame)
}

// batchFromWire converts a decoded wire request into the executor's form,
// with the same semantic validation the GET parsers perform (edge ranges, t
// bounds, arities against the network's d).
func (s *Server) batchFromWire(q *wire.Request) (mcn.BatchRequest, error) {
	engOpts, err := engineOpts(q.Engine)
	if err != nil {
		return mcn.BatchRequest{}, err
	}
	switch q.Kind {
	case wire.KindSkyline:
		loc, err := s.locFromWire(q.Edge, q.T)
		if err != nil {
			return mcn.BatchRequest{}, err
		}
		return mcn.SkylineRequest(loc, engOpts...), nil
	case wire.KindTopK:
		loc, err := s.locFromWire(q.Edge, q.T)
		if err != nil {
			return mcn.BatchRequest{}, err
		}
		agg, err := weightsOf(q.Weights, s.net.D())
		if err != nil {
			return mcn.BatchRequest{}, err
		}
		return mcn.TopKRequest(loc, agg, q.K, engOpts...), nil
	case wire.KindNearest:
		loc, err := s.locFromWire(q.Edge, q.T)
		if err != nil {
			return mcn.BatchRequest{}, err
		}
		return mcn.NearestRequest(loc, q.Cost, q.K), nil
	case wire.KindWithin:
		loc, err := s.locFromWire(q.Edge, q.T)
		if err != nil {
			return mcn.BatchRequest{}, err
		}
		if len(q.Budget) == 0 {
			return mcn.BatchRequest{}, fmt.Errorf("missing budget (want %d components)", s.net.D())
		}
		if len(q.Budget) != s.net.D() {
			return mcn.BatchRequest{}, fmt.Errorf("budget has %d components, network has %d", len(q.Budget), s.net.D())
		}
		return mcn.WithinRequest(loc, mcn.Of(q.Budget...), engOpts...), nil
	case wire.KindMultiSourceSkyline:
		locs, err := s.locsFromWire(q.Edges, q.Ts)
		if err != nil {
			return mcn.BatchRequest{}, err
		}
		return mcn.MultiSourceSkylineRequest(q.Cost, locs, engOpts...), nil
	case wire.KindMultiSourceTopK:
		locs, err := s.locsFromWire(q.Edges, q.Ts)
		if err != nil {
			return mcn.BatchRequest{}, err
		}
		agg, err := weightsOf(q.Weights, len(locs))
		if err != nil {
			return mcn.BatchRequest{}, err
		}
		return mcn.MultiSourceTopKRequest(q.Cost, locs, agg, q.K, engOpts...), nil
	}
	return mcn.BatchRequest{}, fmt.Errorf("unknown query kind %q", q.Kind)
}

// locFromWire validates one location the way parseLoc does.
func (s *Server) locFromWire(edge int, t float64) (mcn.Location, error) {
	if edge < 0 || edge >= s.net.NumEdges() {
		return mcn.Location{}, fmt.Errorf("edge %d out of range (network has %d edges)", edge, s.net.NumEdges())
	}
	if t < 0 || t > 1 {
		return mcn.Location{}, fmt.Errorf("invalid t %g (want a fraction in [0, 1])", t)
	}
	return mcn.Location{Edge: mcn.EdgeID(edge), T: t}, nil
}

// locsFromWire validates the multi-source locations the way parseLocs does;
// empty ts defaults every location to t=0.5.
func (s *Server) locsFromWire(edges []int, ts []float64) ([]mcn.Location, error) {
	if len(edges) == 0 {
		return nil, fmt.Errorf("missing edges (want at least one edge id)")
	}
	if len(ts) > 0 && len(ts) != len(edges) {
		return nil, fmt.Errorf("got %d ts for %d edges", len(ts), len(edges))
	}
	locs := make([]mcn.Location, len(edges))
	for i, e := range edges {
		if e < 0 || e >= s.net.NumEdges() {
			return nil, fmt.Errorf("edge %d out of range (network has %d edges)", e, s.net.NumEdges())
		}
		t := 0.5
		if len(ts) > 0 {
			t = ts[i]
			if t < 0 || t > 1 {
				return nil, fmt.Errorf("invalid t %g (want a fraction in [0, 1])", t)
			}
		}
		locs[i] = mcn.Location{Edge: mcn.EdgeID(e), T: t}
	}
	return locs, nil
}

// clampTimeout applies a wire TimeoutMS to the batch request, capped by the
// server bound like the timeout_ms GET parameter.
func (s *Server) clampTimeout(ms int, req *mcn.BatchRequest) error {
	if ms == 0 {
		return nil
	}
	if ms < 0 {
		return fmt.Errorf("invalid timeout_ms %d", ms)
	}
	req.Timeout = time.Duration(ms) * time.Millisecond
	if s.timeout > 0 && req.Timeout > s.timeout {
		req.Timeout = s.timeout
	}
	return nil
}

// writeStatus writes a status-plus-message error in the negotiated codec.
func (s *Server) writeStatus(w http.ResponseWriter, binary bool, status int, msg string) {
	if binary {
		writeBinary(w, status, wire.EncodeError(status, msg))
		return
	}
	wire.WriteJSON(w, status, wire.Error{Error: msg})
}

// writeWireError is writeError with codec negotiation: sheds still stamp
// Retry-After so gateways treat binary overloads exactly like JSON ones.
func (s *Server) writeWireError(w http.ResponseWriter, binary bool, err error) {
	if s.noteShed(err) {
		w.Header().Set("Retry-After", "1")
	}
	status, msg := classifyError(err)
	s.writeStatus(w, binary, status, msg)
}

// writeBinary writes one complete binary frame as the response body.
func writeBinary(w http.ResponseWriter, status int, frame []byte) {
	w.Header().Set("Content-Type", wire.ContentTypeBinary)
	w.Header().Set("Content-Length", strconv.Itoa(len(frame)))
	w.WriteHeader(status)
	w.Write(frame) //nolint:errcheck // client gone; nothing to do
}
