package serve

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"mcn"
	"mcn/internal/wire"
)

// /topk?stream=1 must deliver the same facilities, in the same ascending
// score order, as TopKSeq, one NDJSON line each with the score present.
func TestStreamTopKNDJSON(t *testing.T) {
	handlers, ref := testServers(t)
	loc := mcn.Location{Edge: 17, T: 0.25}
	agg := mcn.WeightedSum(1, 1, 1)
	var want []mcn.FacilityID
	for f, err := range ref.TopKSeq(ctx, loc, agg) {
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, f.ID)
		if len(want) == 5 {
			break
		}
	}
	if len(want) < 5 {
		t.Fatal("reference top-k too small; pick another location")
	}

	for name, h := range handlers {
		t.Run(name, func(t *testing.T) {
			ts := httptest.NewServer(h)
			defer ts.Close()

			resp, err := ts.Client().Get(ts.URL + "/topk?stream=1&edge=17&t=0.25&k=5&weights=1,1,1")
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d", resp.StatusCode)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
				t.Fatalf("content type %q, want application/x-ndjson", ct)
			}

			var got []mcn.FacilityID
			lastScore := -1.0
			var done *streamLine
			sc := bufio.NewScanner(resp.Body)
			for sc.Scan() {
				var line struct {
					streamLine
					Score float64 `json:"score"`
				}
				if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
					t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
				}
				switch {
				case line.Error != "":
					t.Fatalf("in-band error: %s", line.Error)
				case line.Done:
					done = &line.streamLine
				default:
					if line.ID == nil {
						t.Fatalf("facility line without id: %q", sc.Text())
					}
					if line.Score < lastScore {
						t.Fatalf("scores not ascending: %g after %g", line.Score, lastScore)
					}
					lastScore = line.Score
					got = append(got, *line.ID)
				}
			}
			if err := sc.Err(); err != nil {
				t.Fatal(err)
			}
			if done == nil {
				t.Fatal("stream ended without a terminal done-line")
			}
			if done.Count != len(got) {
				t.Fatalf("terminal count %d, saw %d facilities", done.Count, len(got))
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("streamed %v, want iterator order %v", got, want)
			}
		})
	}
}

// The multi-source endpoints must answer with the same facilities the
// library returns directly, over both backends, and validate their params.
func TestMultiSourceEndpoints(t *testing.T) {
	handlers, ref := testServers(t)
	locs := []mcn.Location{{Edge: 3, T: 0.5}, {Edge: 40, T: 0.1}, {Edge: 77, T: 0.9}}

	wantSky, err := ref.MultiSourceSkyline(ctx, 1, locs, mcn.WithEngine(mcn.CEA))
	if err != nil {
		t.Fatal(err)
	}
	wantTop, err := ref.MultiSourceTopK(ctx, 1, locs, mcn.WeightedSum(1, 1, 1), 3)
	if err != nil {
		t.Fatal(err)
	}

	for name, h := range handlers {
		t.Run(name, func(t *testing.T) {
			ts := httptest.NewServer(h)
			defer ts.Close()

			var sky wire.Result
			getJSON(t, ts, "/multisource/skyline?cost=1&edges=3,40,77&ts=0.5,0.1,0.9", http.StatusOK, &sky)
			if sky.Query != "multisource_skyline" {
				t.Errorf("query = %q", sky.Query)
			}
			if !reflect.DeepEqual(resultIDs(sky), wantSky.IDs()) {
				t.Errorf("multisource skyline ids %v, want %v", resultIDs(sky), wantSky.IDs())
			}

			var top wire.Result
			getJSON(t, ts, "/multisource/topk?cost=1&edges=3,40,77&ts=0.5,0.1,0.9&k=3&weights=1,1,1", http.StatusOK, &top)
			if top.Query != "multisource_topk" {
				t.Errorf("query = %q", top.Query)
			}
			if !reflect.DeepEqual(resultIDs(top), wantTop.IDs()) {
				t.Errorf("multisource topk ids %v, want %v", resultIDs(top), wantTop.IDs())
			}
		})
	}

	ts := httptest.NewServer(handlers["memory"])
	defer ts.Close()
	for _, path := range []string{
		"/multisource/skyline",                        // missing edges
		"/multisource/skyline?edges=1,xyz",            // bad edge
		"/multisource/skyline?edges=1,999999",         // edge out of range
		"/multisource/skyline?edges=1,2&ts=0.5",       // ts arity mismatch
		"/multisource/skyline?edges=1,2&ts=0.5,1.5",   // t out of range
		"/multisource/skyline?edges=1,2&cost=9",       // cost out of range (core error)
		"/multisource/topk?edges=1,2&k=nope",          // bad k
		"/multisource/topk?edges=1,2&weights=1",       // weights arity (|locs|=2)
		"/multisource/skyline?edges=1,2&engine=warp",  // unknown engine
		"/multisource/skyline?edges=1,2&timeout_ms=0", // bad timeout
	} {
		var e wire.Error
		getJSON(t, ts, path, http.StatusBadRequest, &e)
		if e.Error == "" {
			t.Errorf("GET %s: empty error body", path)
		}
	}
}

// timeServer builds a serve handler with the period endpoints enabled over a
// synthetic time-dependent network, plus the TimeNetwork for references.
func timeServer(t *testing.T) (http.Handler, *mcn.TimeNetwork) {
	t.Helper()
	g, err := mcn.Synthetic(mcn.SyntheticConfig{Nodes: 600, Facilities: 100, D: 3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	tnet := mcn.TimeDependent(g)
	// Dense profiles: enough of the network must be time-dependent for the
	// preferred set at the probe location to actually change over the day.
	if err := mcn.AttachSyntheticProfiles(tnet, 600, 11); err != nil {
		t.Fatal(err)
	}
	srv := New(mcn.FromGraph(g), Config{Workers: 4, Timeout: time.Minute, TimeNet: tnet})
	return srv.Handler(), tnet
}

// The period endpoints must reproduce the library's interval sweep exactly:
// same interval boundaries, same facilities per interval.
func TestPeriodEndpoints(t *testing.T) {
	h, tnet := timeServer(t)
	ts := httptest.NewServer(h)
	defer ts.Close()
	loc := mcn.Location{Edge: 17, T: 0.25}

	wantSky, err := tnet.SkylineOverPeriod(ctx, loc, 5, 21, mcn.QueryOptions(mcn.WithEngine(mcn.CEA)))
	if err != nil {
		t.Fatal(err)
	}
	if len(wantSky) < 2 {
		t.Fatalf("reference sweep has %d intervals; want a non-trivial time axis", len(wantSky))
	}

	var sky wire.PeriodResult
	getJSON(t, ts, "/skyline/period?edge=17&t=0.25&from=5&to=21", http.StatusOK, &sky)
	if sky.Query != "skyline_over_period" || sky.Count != len(wantSky) {
		t.Fatalf("period skyline: query %q count %d, want skyline_over_period %d", sky.Query, sky.Count, len(wantSky))
	}
	for i, iv := range sky.Intervals {
		if iv.From != wantSky[i].From || iv.To != wantSky[i].To {
			t.Errorf("interval %d bounds [%g,%g), want [%g,%g)", i, iv.From, iv.To, wantSky[i].From, wantSky[i].To)
		}
		gotIDs := make([]mcn.FacilityID, len(iv.Facilities))
		for j, f := range iv.Facilities {
			gotIDs[j] = f.ID
		}
		if !reflect.DeepEqual(gotIDs, wantSky[i].Result.IDs()) {
			t.Errorf("interval %d ids %v, want %v", i, gotIDs, wantSky[i].Result.IDs())
		}
	}

	wantTop, err := tnet.TopKOverPeriod(ctx, loc, mcn.WeightedSum(1, 1, 1), 3, 5, 21, mcn.QueryOptions())
	if err != nil {
		t.Fatal(err)
	}
	var top wire.PeriodResult
	getJSON(t, ts, "/topk/period?edge=17&t=0.25&from=5&to=21&k=3&weights=1,1,1", http.StatusOK, &top)
	if top.Query != "topk_over_period" || top.Count != len(wantTop) {
		t.Fatalf("period topk: query %q count %d, want topk_over_period %d", top.Query, top.Count, len(wantTop))
	}

	for _, path := range []string{
		"/skyline/period?edge=17",                 // missing from/to
		"/skyline/period?edge=17&from=9&to=9",     // empty period
		"/skyline/period?edge=17&from=x&to=9",     // bad from
		"/topk/period?edge=17&from=5&to=9&k=nope", // bad k
		"/skyline/period?from=5&to=9",             // missing edge
	} {
		var e wire.Error
		getJSON(t, ts, path, http.StatusBadRequest, &e)
		if e.Error == "" {
			t.Errorf("GET %s: empty error body", path)
		}
	}

	// Without a TimeNetwork the period routes don't exist.
	g, err := mcn.Synthetic(mcn.SyntheticConfig{Nodes: 300, Facilities: 40, D: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	plain := httptest.NewServer(New(mcn.FromGraph(g), Config{Workers: 1, Timeout: time.Minute}).Handler())
	defer plain.Close()
	resp, err := plain.Client().Get(plain.URL + "/skyline/period?edge=1&from=5&to=9")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("period endpoint without -timedep: status %d, want 404", resp.StatusCode)
	}
}

// A chaos-opened database surfaces its injected-fault counters in /stats
// under fault_injection; a plain network reports no such section.
func TestStatsFaultInjection(t *testing.T) {
	g, err := mcn.Synthetic(mcn.SyntheticConfig{Nodes: 600, Facilities: 100, D: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "chaos.mcn")
	if err := mcn.CreateDatabase(g, path); err != nil {
		t.Fatal(err)
	}
	db, err := mcn.OpenDatabaseChaos(path, 0.05, mcn.PoolOptions{Retry: mcn.RetryPolicy{MaxRetries: 3}},
		mcn.FaultInjection{Seed: 42, ReadTransient: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	ts := httptest.NewServer(New(db, Config{Workers: 2, Timeout: time.Minute}).Handler())
	defer ts.Close()

	// Drive traffic through the faulty device until injection shows up.
	for i := 0; i < 50; i++ {
		resp, err := ts.Client().Get(ts.URL + "/skyline?edge=17&t=0.25")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if fc, ok := db.FaultCounters(); ok && fc.ReadTransient > 0 {
			break
		}
	}
	fc, ok := db.FaultCounters()
	if !ok {
		t.Fatal("chaos-opened network reports no fault counters")
	}
	if fc.ReadTransient == 0 {
		t.Fatal("no transient faults injected over 50 queries at p=0.2")
	}

	var stats struct {
		Fault *mcn.FaultCounters `json:"fault_injection"`
	}
	getJSON(t, ts, "/stats", http.StatusOK, &stats)
	if stats.Fault == nil || stats.Fault.ReadTransient == 0 {
		t.Fatalf("/stats fault_injection = %+v, want non-zero read_transient", stats.Fault)
	}

	// A plain network has no fault_injection section.
	handlers, _ := testServers(t)
	plain := httptest.NewServer(handlers["memory"])
	defer plain.Close()
	var raw map[string]any
	getJSON(t, plain, "/stats", http.StatusOK, &raw)
	if _, present := raw["fault_injection"]; present {
		t.Error("plain /stats reported fault_injection")
	}
}
