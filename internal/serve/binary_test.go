package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"mcn"
	"mcn/internal/wire"
)

// postQuery sends one /v1/query request with the given body and headers and
// returns the raw response.
func postQuery(t *testing.T, ts *httptest.Server, body []byte, contentType, accept string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/query", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", contentType)
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

// decodeBinaryResponse unwraps a binary response body into its envelope.
func decodeBinaryResponse(t *testing.T, raw []byte) *wire.Response {
	t.Helper()
	payload, err := wire.ReadFrame(bytes.NewReader(raw), wire.MaxResponseFrame)
	if err != nil {
		t.Fatalf("read response frame: %v", err)
	}
	resp, err := wire.DecodeResponse(payload)
	if err != nil {
		t.Fatalf("decode response frame: %v", err)
	}
	return resp
}

// randomQueryURIs draws n GET URIs spanning every query kind the server
// supports, bounded by the network's edge count and d=3 arities.
func randomQueryURIs(rng *rand.Rand, edges, n int) []string {
	kinds := []string{"skyline", "topk", "nearest", "within", "multisource/skyline", "multisource/topk", "skyline/period", "topk/period"}
	uris := make([]string, 0, n)
	for len(uris) < n {
		kind := kinds[len(uris)%len(kinds)]
		edge := rng.Intn(edges)
		tpos := math.Round(rng.Float64()*100) / 100
		eng := ""
		if rng.Intn(2) == 0 {
			eng = "&engine=lsa"
		}
		var uri string
		switch kind {
		case "skyline":
			uri = fmt.Sprintf("/skyline?edge=%d&t=%g%s", edge, tpos, eng)
		case "topk":
			uri = fmt.Sprintf("/topk?edge=%d&t=%g&k=%d&weights=1,2,1%s", edge, tpos, 1+rng.Intn(5), eng)
		case "nearest":
			uri = fmt.Sprintf("/nearest?edge=%d&t=%g&cost=%d&k=%d", edge, tpos, rng.Intn(3), 1+rng.Intn(4))
		case "within":
			uri = fmt.Sprintf("/within?edge=%d&t=%g&budget=%d,%d,%d%s", edge, tpos, 100+rng.Intn(200), 100+rng.Intn(200), 100+rng.Intn(200), eng)
		case "multisource/skyline":
			uri = fmt.Sprintf("/multisource/skyline?cost=%d&edges=%d,%d&ts=%g,%g%s", rng.Intn(3), edge, rng.Intn(edges), tpos, math.Round(rng.Float64()*100)/100, eng)
		case "multisource/topk":
			uri = fmt.Sprintf("/multisource/topk?cost=%d&edges=%d,%d&k=%d&weights=1,1%s", rng.Intn(3), edge, rng.Intn(edges), 1+rng.Intn(3), eng)
		case "skyline/period":
			from := float64(5 + rng.Intn(6))
			uri = fmt.Sprintf("/skyline/period?edge=%d&t=%g&from=%g&to=%g%s", edge, tpos, from, from+3, eng)
		case "topk/period":
			from := float64(5 + rng.Intn(6))
			uri = fmt.Sprintf("/topk/period?edge=%d&t=%g&from=%g&to=%g&k=%d%s", edge, tpos, from, from+3, 1+rng.Intn(4), eng)
		}
		uris = append(uris, uri)
	}
	return uris
}

// sameCostsF32 compares a JSON-decoded float64 cost vector against its
// binary float32 rendering: null/non-finite components match any non-finite
// binary component, finite components must agree after the float32 narrow.
func sameCostsF32(jsonCosts, binCosts wire.Costs) bool {
	if len(jsonCosts) != len(binCosts) {
		return false
	}
	for i := range jsonCosts {
		j, b := jsonCosts[i], binCosts[i]
		if math.IsNaN(j) || math.IsInf(j, 0) {
			if !math.IsNaN(b) && !math.IsInf(b, 0) {
				return false
			}
			continue
		}
		if float64(float32(j)) != b {
			return false
		}
	}
	return true
}

// checkFacilitiesEquivalent asserts the binary facilities are the float32
// rendering of the JSON ones: same ids in the same order, same scores after
// the narrow, component-wise equivalent costs.
func checkFacilitiesEquivalent(t *testing.T, uri string, jsonFs, binFs []wire.Facility) {
	t.Helper()
	if len(jsonFs) != len(binFs) {
		t.Fatalf("%s: %d facilities via JSON, %d via binary", uri, len(jsonFs), len(binFs))
	}
	for i := range jsonFs {
		j, b := jsonFs[i], binFs[i]
		if j.ID != b.ID {
			t.Fatalf("%s: facility %d id %d via JSON, %d via binary", uri, i, j.ID, b.ID)
		}
		if float64(float32(j.Score)) != b.Score {
			t.Fatalf("%s: facility %d score %g via JSON, %g via binary", uri, i, j.Score, b.Score)
		}
		if !sameCostsF32(j.Costs, b.Costs) {
			t.Fatalf("%s: facility %d costs %v via JSON, %v via binary", uri, i, j.Costs, b.Costs)
		}
	}
}

// Randomized equivalence over every query kind: the same request through the
// GET endpoint, the JSON POST body and the binary frame must decode to
// semantically identical results — same ids, orders, stats and interval
// bounds, costs equal modulo the float32 narrowing the binary codec applies.
func TestV1QueryEquivalence(t *testing.T) {
	h, _ := timeServer(t)
	ts := httptest.NewServer(h)
	defer ts.Close()

	rng := rand.New(rand.NewSource(23))
	for _, uri := range randomQueryURIs(rng, 600, 48) {
		q, err := wire.RequestFromURI(uri)
		if err != nil {
			t.Fatalf("RequestFromURI(%s): %v", uri, err)
		}

		// Reference: the GET endpoint's JSON envelope.
		getResp, err := ts.Client().Get(ts.URL + uri)
		if err != nil {
			t.Fatal(err)
		}
		rawGet, err := io.ReadAll(getResp.Body)
		getResp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if getResp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d: %s", uri, getResp.StatusCode, rawGet)
		}

		// JSON POST must reproduce the GET envelope exactly (modulo latency).
		jsonBody, err := json.Marshal(q)
		if err != nil {
			t.Fatal(err)
		}
		postResp, rawPost := postQuery(t, ts, jsonBody, wire.ContentTypeJSON, wire.ContentTypeJSON)
		if postResp.StatusCode != http.StatusOK {
			t.Fatalf("POST %s (json): status %d: %s", uri, postResp.StatusCode, rawPost)
		}

		// Binary POST decodes to the equivalent envelope.
		frame, err := wire.EncodeRequest(q)
		if err != nil {
			t.Fatal(err)
		}
		binResp, rawBin := postQuery(t, ts, frame, wire.ContentTypeBinary, wire.ContentTypeBinary)
		if binResp.StatusCode != http.StatusOK {
			t.Fatalf("POST %s (binary): status %d", uri, binResp.StatusCode)
		}
		if ct := binResp.Header.Get("Content-Type"); ct != wire.ContentTypeBinary {
			t.Fatalf("POST %s (binary): content type %q", uri, ct)
		}
		decoded := decodeBinaryResponse(t, rawBin)

		if q.Period() {
			var want, viaPost wire.PeriodResult
			if err := json.Unmarshal(rawGet, &want); err != nil {
				t.Fatal(err)
			}
			if err := json.Unmarshal(rawPost, &viaPost); err != nil {
				t.Fatal(err)
			}
			viaPost.LatencyMS = want.LatencyMS
			if want.Query != viaPost.Query || want.Count != viaPost.Count || len(want.Intervals) != len(viaPost.Intervals) {
				t.Fatalf("%s: JSON POST diverged from GET: %+v vs %+v", uri, viaPost, want)
			}
			got := decoded.Period
			if got == nil {
				t.Fatalf("%s: binary response is not a PeriodResult", uri)
			}
			if got.Query != want.Query || got.Count != want.Count {
				t.Fatalf("%s: binary envelope %q/%d, want %q/%d", uri, got.Query, got.Count, want.Query, want.Count)
			}
			for i := range want.Intervals {
				w, g := want.Intervals[i], got.Intervals[i]
				if w.From != g.From || w.To != g.To {
					t.Fatalf("%s: interval %d bounds [%g,%g) via binary, want [%g,%g)", uri, i, g.From, g.To, w.From, w.To)
				}
				if w.Stats != g.Stats {
					t.Fatalf("%s: interval %d stats %+v via binary, want %+v", uri, i, g.Stats, w.Stats)
				}
				checkFacilitiesEquivalent(t, uri, w.Facilities, g.Facilities)
			}
			continue
		}

		var want, viaPost wire.Result
		if err := json.Unmarshal(rawGet, &want); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(rawPost, &viaPost); err != nil {
			t.Fatal(err)
		}
		viaPost.LatencyMS = want.LatencyMS
		if want.Query != viaPost.Query || want.Count != viaPost.Count || len(want.Facilities) != len(viaPost.Facilities) {
			t.Fatalf("%s: JSON POST diverged from GET: %+v vs %+v", uri, viaPost, want)
		}
		got := decoded.Result
		if got == nil {
			t.Fatalf("%s: binary response is not a Result", uri)
		}
		if got.Query != want.Query || got.Count != want.Count {
			t.Fatalf("%s: binary envelope %q/%d, want %q/%d", uri, got.Query, got.Count, want.Query, want.Count)
		}
		if got.Stats != want.Stats {
			t.Fatalf("%s: binary stats %+v, want %+v", uri, got.Stats, want.Stats)
		}
		checkFacilitiesEquivalent(t, uri, want.Facilities, got.Facilities)
	}
}

// Content negotiation: the response codec follows Accept when present and
// mirrors the request codec when absent.
func TestV1QueryNegotiation(t *testing.T) {
	h, _ := timeServer(t)
	ts := httptest.NewServer(h)
	defer ts.Close()

	q := &wire.Request{Kind: wire.KindSkyline, Edge: 17, T: 0.25}
	frame, err := wire.EncodeRequest(q)
	if err != nil {
		t.Fatal(err)
	}
	jsonBody, err := json.Marshal(q)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name, contentType, accept, wantCT string
		body                              []byte
	}{
		{"binary mirrors binary", wire.ContentTypeBinary, "", wire.ContentTypeBinary, frame},
		{"json mirrors json", wire.ContentTypeJSON, "", wire.ContentTypeJSON, jsonBody},
		{"binary in, json out", wire.ContentTypeBinary, wire.ContentTypeJSON, wire.ContentTypeJSON, frame},
		{"json in, binary out", wire.ContentTypeJSON, wire.ContentTypeBinary, wire.ContentTypeBinary, jsonBody},
		{"charset parameter ignored", wire.ContentTypeJSON + "; charset=utf-8", "", wire.ContentTypeJSON, jsonBody},
		{"wildcard accept mirrors", wire.ContentTypeBinary, "*/*", wire.ContentTypeBinary, frame},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, raw := postQuery(t, ts, tc.body, tc.contentType, tc.accept)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d: %s", resp.StatusCode, raw)
			}
			if ct := resp.Header.Get("Content-Type"); ct != tc.wantCT {
				t.Fatalf("content type %q, want %q", ct, tc.wantCT)
			}
			if tc.wantCT == wire.ContentTypeBinary {
				if got := decodeBinaryResponse(t, raw); got.Result == nil || got.Result.Query != "skyline" {
					t.Fatalf("binary response = %+v", got)
				}
			} else {
				var res wire.Result
				if err := json.Unmarshal(raw, &res); err != nil || res.Query != "skyline" {
					t.Fatalf("json response %s: %v", raw, err)
				}
			}
		})
	}
}

// Errors come back in the negotiated codec with the same classification the
// GET endpoints apply.
func TestV1QueryErrors(t *testing.T) {
	h, _ := timeServer(t)
	ts := httptest.NewServer(h)
	defer ts.Close()

	badJSON := func(body string) {
		t.Helper()
		resp, raw := postQuery(t, ts, []byte(body), wire.ContentTypeJSON, "")
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("POST %s: status %d, want 400", body, resp.StatusCode)
		}
		var e wire.Error
		if err := json.Unmarshal(raw, &e); err != nil || e.Error == "" {
			t.Fatalf("POST %s: error body %q", body, raw)
		}
	}
	badJSON(`{"kind":"warp","edge":1}`)                           // unknown kind
	badJSON(`{"kind":"skyline","edge":999999}`)                   // edge out of range
	badJSON(`{"kind":"skyline","edge":1,"t":1.5}`)                // t out of range
	badJSON(`{"kind":"within","edge":1}`)                         // missing budget
	badJSON(`{"kind":"multisource/skyline"}`)                     // missing edges
	badJSON(`{"kind":"skyline","edge":1,"timeout_ms":-5}`)        // bad timeout
	badJSON(`{"kind":"skyline/period","edge":1,"from":9,"to":9}`) // empty period
	badJSON(`{not json`)                                          // malformed body

	// Binary error frames carry the status both as HTTP status and in-band.
	q := &wire.Request{Kind: wire.KindSkyline, Edge: 999999, T: 0.5}
	frame, err := wire.EncodeRequest(q)
	if err != nil {
		t.Fatal(err)
	}
	resp, raw := postQuery(t, ts, frame, wire.ContentTypeBinary, "")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("binary bad edge: status %d, want 400", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != wire.ContentTypeBinary {
		t.Fatalf("binary error content type %q", ct)
	}
	decoded := decodeBinaryResponse(t, raw)
	if decoded.Status != http.StatusBadRequest || decoded.Message == "" {
		t.Fatalf("binary error frame = %+v", decoded)
	}

	// A corrupt frame is a 400, answered in the request's codec.
	garbage := append([]byte{9, 0, 0, 0}, []byte("not-magic")...)
	resp, _ = postQuery(t, ts, garbage, wire.ContentTypeBinary, "")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt frame: status %d, want 400", resp.StatusCode)
	}

	// Period kinds without a time-dependent network are a 400 (the route
	// exists — unlike the GET period endpoints, /v1/query is always mounted).
	g, err := mcn.Synthetic(mcn.SyntheticConfig{Nodes: 300, Facilities: 40, D: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	plain := httptest.NewServer(New(mcn.FromGraph(g), Config{Workers: 1, Timeout: 0}).Handler())
	defer plain.Close()
	pq := &wire.Request{Kind: wire.KindSkylinePeriod, Edge: 1, T: 0.5, From: 5, To: 9}
	pframe, err := wire.EncodeRequest(pq)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, plain.URL+"/v1/query", bytes.NewReader(pframe))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", wire.ContentTypeBinary)
	presp, err := plain.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, presp.Body) //nolint:errcheck
	presp.Body.Close()
	if presp.StatusCode != http.StatusBadRequest {
		t.Fatalf("period without tnet: status %d, want 400", presp.StatusCode)
	}
}

// JSON POST bodies get the GET parameter defaults for absent fields while
// explicit zeros keep meaning zero.
func TestV1QueryJSONDefaults(t *testing.T) {
	h, _ := timeServer(t)
	ts := httptest.NewServer(h)
	defer ts.Close()

	// Absent t defaults to 0.5: must match GET /skyline?edge=17 (t=0.5).
	var want wire.Result
	getJSON(t, ts, "/skyline?edge=17", http.StatusOK, &want)
	resp, raw := postQuery(t, ts, []byte(`{"kind":"skyline","edge":17}`), wire.ContentTypeJSON, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var got wire.Result
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(resultIDs(got)) != fmt.Sprint(resultIDs(want)) {
		t.Fatalf("default t: ids %v, want %v", resultIDs(got), resultIDs(want))
	}

	// Explicit t=0 is the edge start, not the default.
	var atZero wire.Result
	getJSON(t, ts, "/skyline?edge=17&t=0", http.StatusOK, &atZero)
	resp, raw = postQuery(t, ts, []byte(`{"kind":"skyline","edge":17,"t":0}`), wire.ContentTypeJSON, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var gotZero wire.Result
	if err := json.Unmarshal(raw, &gotZero); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(resultIDs(gotZero)) != fmt.Sprint(resultIDs(atZero)) {
		t.Fatalf("explicit t=0: ids %v, want %v", resultIDs(gotZero), resultIDs(atZero))
	}

	// Absent k defaults to 4 on /topk.
	var topWant wire.Result
	getJSON(t, ts, "/topk?edge=17&t=0.25", http.StatusOK, &topWant)
	resp, raw = postQuery(t, ts, []byte(`{"kind":"topk","edge":17,"t":0.25}`), wire.ContentTypeJSON, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var topGot wire.Result
	if err := json.Unmarshal(raw, &topGot); err != nil {
		t.Fatal(err)
	}
	if topGot.Count != topWant.Count || strconv.Itoa(topGot.Count) == "" {
		t.Fatalf("default k: count %d, want %d", topGot.Count, topWant.Count)
	}
}
