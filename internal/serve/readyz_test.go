package serve

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"mcn"
)

// fixedClock is a manually advanced time source for exercising the shed
// window without sleeping.
type fixedClock struct{ t time.Time }

func (c *fixedClock) now() time.Time          { return c.t }
func (c *fixedClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFixedClock() *fixedClock              { return &fixedClock{t: time.Unix(1_700_000_000, 0)} }
func readyStatus(t *testing.T, s *Server) int {
	t.Helper()
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	return rec.Code
}

func newReadyzServer(t *testing.T, cfg Config) (*Server, *fixedClock) {
	t.Helper()
	g, err := mcn.Synthetic(mcn.SyntheticConfig{Nodes: 300, Facilities: 40, D: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(mcn.FromGraph(g), cfg)
	clk := newFixedClock()
	srv.now = clk.now
	return srv, clk
}

// A single shed — a brief burst — must NOT flip readiness under the default
// rate threshold; only a sustained shed storm above ShedRate does, and
// readiness recovers once the storm ages out of the window.
func TestReadyzShedRateThreshold(t *testing.T) {
	srv, clk := newReadyzServer(t, Config{Workers: 1, Timeout: time.Minute, ShedRate: 2, ShedWindow: 5 * time.Second})

	if got := readyStatus(t, srv); got != http.StatusOK {
		t.Fatalf("idle /readyz = %d, want 200", got)
	}

	// One shed: rate 0.2/s over the 5s window, far under the 2/s threshold.
	srv.noteShed(mcn.ErrOverloaded)
	if got := readyStatus(t, srv); got != http.StatusOK {
		t.Fatalf("/readyz after a single shed = %d, want 200 (must not twitch)", got)
	}

	// A storm: 11 sheds this second pushes the rate to 2.2/s > 2/s.
	for i := 0; i < 10; i++ {
		srv.noteShed(mcn.ErrOverloaded)
	}
	if got := readyStatus(t, srv); got != http.StatusServiceUnavailable {
		t.Fatalf("/readyz during shed storm = %d, want 503", got)
	}

	// Mid-window the storm still counts…
	clk.advance(3 * time.Second)
	if got := readyStatus(t, srv); got != http.StatusServiceUnavailable {
		t.Fatalf("/readyz 3s after storm = %d, want 503 (still inside window)", got)
	}
	// …and once it ages past the window, readiness recovers.
	clk.advance(3 * time.Second)
	if got := readyStatus(t, srv); got != http.StatusOK {
		t.Fatalf("/readyz after window passed = %d, want 200 (must recover)", got)
	}
}

// Negative ShedRate restores the legacy twitchy behaviour: any shed inside
// the window reports unready.
func TestReadyzLegacyAnyShed(t *testing.T) {
	srv, clk := newReadyzServer(t, Config{Workers: 1, Timeout: time.Minute, ShedRate: -1, ShedWindow: 2 * time.Second})
	srv.noteShed(mcn.ErrDraining)
	if got := readyStatus(t, srv); got != http.StatusServiceUnavailable {
		t.Fatalf("/readyz after shed with ShedRate<0 = %d, want 503", got)
	}
	clk.advance(3 * time.Second)
	if got := readyStatus(t, srv); got != http.StatusOK {
		t.Fatalf("/readyz after window = %d, want 200", got)
	}
}

// Non-shed errors never count toward the shed rate.
func TestNoteShedIgnoresOtherErrors(t *testing.T) {
	srv, _ := newReadyzServer(t, Config{Workers: 1, Timeout: time.Minute, ShedRate: -1})
	if srv.noteShed(http.ErrServerClosed) {
		t.Fatal("noteShed counted a non-admission error")
	}
	if got := readyStatus(t, srv); got != http.StatusOK {
		t.Fatalf("/readyz = %d, want 200", got)
	}
}

// The tracker's per-second ring must reset stale buckets when a second
// index rolls around again (window length later), not double-count them.
func TestShedTrackerBucketReuse(t *testing.T) {
	tr := newShedTracker(3 * time.Second)
	base := time.Unix(1_700_000_000, 0)
	tr.note(base)
	tr.note(base)
	if r := tr.rate(base); r != 2.0/3 {
		t.Fatalf("rate = %v, want 2/3", r)
	}
	// Exactly one window later the same bucket index recurs: the old count
	// must be discarded, not added to.
	later := base.Add(3 * time.Second)
	tr.note(later)
	if r := tr.rate(later); r != 1.0/3 {
		t.Fatalf("rate after bucket reuse = %v, want 1/3", r)
	}
	// And far in the future the window is clean.
	if r := tr.rate(base.Add(time.Hour)); r != 0 {
		t.Fatalf("rate after an idle hour = %v, want 0", r)
	}
}
