package serve

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"mcn"
)

// streamLine is one NDJSON line of /skyline?stream=1: a facility, the
// terminal summary, or an in-band error trailer.
type streamLine struct {
	ID        *mcn.FacilityID `json:"id"`
	Costs     []*float64      `json:"costs"`
	Done      bool            `json:"done"`
	Count     int             `json:"count"`
	LatencyMS float64         `json:"latency_ms"`
	Error     string          `json:"error"`
}

// The streaming endpoint must deliver the same facilities, in the same
// confirmed order, as SkylineSeq, one NDJSON line each, with a terminal
// done-line carrying the count.
func TestStreamSkylineNDJSON(t *testing.T) {
	handlers, ref := testServers(t)
	loc := mcn.Location{Edge: 17, T: 0.25}
	var want []mcn.FacilityID
	for f, err := range ref.SkylineSeq(ctx, loc, mcn.WithEngine(mcn.CEA)) {
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, f.ID)
	}
	if len(want) == 0 {
		t.Fatal("reference skyline empty; pick another location")
	}

	for name, h := range handlers {
		t.Run(name, func(t *testing.T) {
			ts := httptest.NewServer(h)
			defer ts.Close()

			resp, err := ts.Client().Get(ts.URL + "/skyline?stream=1&edge=17&t=0.25")
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d", resp.StatusCode)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
				t.Fatalf("content type %q, want application/x-ndjson", ct)
			}

			var got []mcn.FacilityID
			var done *streamLine
			sc := bufio.NewScanner(resp.Body)
			for sc.Scan() {
				var line streamLine
				if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
					t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
				}
				switch {
				case line.Error != "":
					t.Fatalf("in-band error: %s", line.Error)
				case line.Done:
					if done != nil {
						t.Fatal("two terminal lines")
					}
					done = &line
				default:
					if done != nil {
						t.Fatal("facility line after the terminal line")
					}
					if line.ID == nil {
						t.Fatalf("facility line without id: %q", sc.Text())
					}
					got = append(got, *line.ID)
				}
			}
			if err := sc.Err(); err != nil {
				t.Fatal(err)
			}
			if done == nil {
				t.Fatal("stream ended without a terminal done-line")
			}
			if done.Count != len(got) {
				t.Fatalf("terminal count %d, saw %d facilities", done.Count, len(got))
			}
			if done.LatencyMS < 0 {
				t.Fatalf("negative latency %f", done.LatencyMS)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("streamed %v, want confirmed order %v", got, want)
			}
		})
	}
}

// Parameter validation still happens before any NDJSON is written, and a
// microscopic per-request deadline surfaces as an in-band error trailer
// rather than a hung or silently truncated stream.
func TestStreamSkylineValidationAndDeadline(t *testing.T) {
	handlers, _ := testServers(t)
	ts := httptest.NewServer(handlers["memory"])
	defer ts.Close()

	// stream=0/false selects the ordinary buffered JSON endpoint.
	for _, path := range []string{"/skyline?stream=0&edge=17", "/skyline?stream=false&edge=17"} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		ct := resp.Header.Get("Content-Type")
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || ct != "application/json" {
			t.Errorf("GET %s: status %d content type %q, want buffered JSON", path, resp.StatusCode, ct)
		}
	}

	for _, path := range []string{
		"/skyline?stream=1",                        // missing edge
		"/skyline?stream=1&edge=1&timeout_ms=zero", // bad timeout
		"/skyline?stream=1&edge=1&timeout_ms=-5",   // bad timeout
		"/skyline?stream=yes&edge=1",               // bad stream flag
	} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET %s: status %d, want 400", path, resp.StatusCode)
		}
	}

	// A tight per-request deadline must terminate the stream decisively:
	// either the query beat the deadline (clean done-line) or it was cut off
	// (error trailer) — exactly one of the two, never a stream that just
	// stops.
	resp, err := ts.Client().Get(ts.URL + "/skyline?stream=1&edge=17&timeout_ms=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sawError, sawDone bool
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var line streamLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if line.Error != "" {
			sawError = true
		}
		if line.Done {
			sawDone = true
		}
	}
	if sawDone && sawError {
		t.Fatal("stream has both a done-line and an error trailer")
	}
	if !sawDone && !sawError {
		t.Fatal("deadline stream ended with neither done nor error line")
	}
}

// /stats exposes per-shard buffer-pool counters on disk-backed networks
// only; after traffic, the shard sums must be non-trivial.
func TestStatsPoolShards(t *testing.T) {
	handlers, _ := testServers(t)

	get := func(h http.Handler, path string) map[string]any {
		t.Helper()
		ts := httptest.NewServer(h)
		defer ts.Close()
		if path != "/stats" {
			resp, err := ts.Client().Get(ts.URL + path)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
		}
		resp, err := ts.Client().Get(ts.URL + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	if stats := get(handlers["memory"], "/stats"); stats["pool_shards"] != nil {
		t.Error("in-memory /stats reported pool_shards")
	}
	stats := get(handlers["disk"], "/skyline?edge=17&t=0.25")
	raw, ok := stats["pool_shards"].([]any)
	if !ok || len(raw) == 0 {
		t.Fatalf("disk /stats pool_shards = %v, want a non-empty array", stats["pool_shards"])
	}
	var logical float64
	for _, entry := range raw {
		shard, ok := entry.(map[string]any)
		if !ok {
			t.Fatalf("shard entry %v is not an object", entry)
		}
		for _, key := range []string{"logical", "physical", "hits", "evictions", "coalesced"} {
			if _, ok := shard[key]; !ok {
				t.Fatalf("shard entry missing %q: %v", key, shard)
			}
		}
		logical += shard["logical"].(float64)
	}
	if logical == 0 {
		t.Error("no logical reads recorded across shards after a disk query")
	}
}
