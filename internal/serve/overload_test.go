package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
	"time"

	"mcn"
	"mcn/internal/wire"
)

// overloadServer builds a server over a small synthetic network with the
// given admission bounds, plus a gate for holding worker slots: each call to
// hold() runs a streaming skyline whose callback blocks until release().
type overloadHarness struct {
	srv     *Server
	ts      *httptest.Server
	gate    chan struct{}
	wg      sync.WaitGroup
	results chan error
}

func newOverloadHarness(t *testing.T, workers, queueDepth int) *overloadHarness {
	t.Helper()
	g, err := mcn.Synthetic(mcn.SyntheticConfig{Nodes: 600, Facilities: 120, D: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	h := &overloadHarness{
		// ShedRate -1 restores the any-shed-flips-readiness behaviour: these
		// tests assert the overload machinery itself, and a single deliberate
		// shed must be visible on /readyz without manufacturing a storm (the
		// rate-threshold default has its own tests in readyz_test.go).
		srv:     New(mcn.FromGraph(g), Config{Workers: workers, Timeout: time.Minute, QueueDepth: queueDepth, ShedRate: -1}),
		gate:    make(chan struct{}),
		results: make(chan error, 16),
	}
	h.ts = httptest.NewServer(h.srv.Handler())
	t.Cleanup(h.ts.Close)
	t.Cleanup(h.wg.Wait)
	return h
}

// hold occupies one executor slot (or queue position) with a query that
// cannot progress until release.
func (h *overloadHarness) hold() {
	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		req := mcn.SkylineRequest(mcn.Location{Edge: 3, T: 0.5})
		resp := h.srv.exec.StreamSkyline(ctx, req, func(mcn.Facility) bool {
			<-h.gate
			return true
		})
		h.results <- resp.Err
	}()
}

// waitAdmission polls until the executor reports the wanted occupancy.
func (h *overloadHarness) waitAdmission(t *testing.T, inflight, queued int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := h.srv.exec.AdmissionStats()
		if st.Inflight == inflight && st.Queued == queued {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("admission never reached inflight=%d queued=%d: %+v", inflight, queued, st)
		}
		time.Sleep(time.Millisecond)
	}
}

func (h *overloadHarness) release() { close(h.gate) }

func get(t *testing.T, ts *httptest.Server, path string) *http.Response {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// With the single worker held and the one queue slot occupied, further
// queries must be shed with 503 + Retry-After instead of queuing without
// bound — and every accepted query must still complete.
func TestOverloadSheds503(t *testing.T) {
	h := newOverloadHarness(t, 1, 1)
	h.hold() // occupies the worker
	h.hold() // occupies the queue slot
	h.waitAdmission(t, 1, 1)

	resp := get(t, h.ts, "/skyline?edge=3")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overloaded query: status %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("overloaded query: Retry-After %q, want \"1\"", ra)
	}
	var e wire.Error
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.Error != mcn.ErrOverloaded.Error() {
		t.Fatalf("overloaded query: error %q", e.Error)
	}

	// Readiness dips while shedding; liveness does not.
	if rz := get(t, h.ts, "/readyz"); rz.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz while shedding: status %d, want 503", rz.StatusCode)
	} else {
		rz.Body.Close()
	}
	if hz := get(t, h.ts, "/healthz"); hz.StatusCode != http.StatusOK {
		t.Fatalf("/healthz while shedding: status %d, want 200", hz.StatusCode)
	} else {
		hz.Body.Close()
	}

	// The shed shows up in /stats.
	var stats struct {
		Admission mcn.AdmissionStats `json:"admission"`
	}
	sr := get(t, h.ts, "/stats")
	if err := json.NewDecoder(sr.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	sr.Body.Close()
	if stats.Admission.Shed == 0 {
		t.Fatal("/stats admission.shed_requests is 0 after a shed")
	}

	// Both accepted queries — running and queued — complete once unblocked.
	h.release()
	for i := 0; i < 2; i++ {
		if err := <-h.results; err != nil {
			t.Fatalf("accepted query %d failed: %v", i, err)
		}
	}
}

// StartDrain must reject new queries with 503, flip /readyz to draining, let
// already-admitted queries finish, and leave /healthz (liveness) untouched.
func TestGracefulDrain(t *testing.T) {
	h := newOverloadHarness(t, 2, 0)
	h.hold()
	h.waitAdmission(t, 1, 0)

	h.srv.exec.StartDrain()
	resp := get(t, h.ts, "/topk?edge=3&k=2")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("query during drain: status %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("query during drain: Retry-After %q, want \"1\"", ra)
	}
	var e wire.Error
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.Error != mcn.ErrDraining.Error() {
		t.Fatalf("query during drain: error %q", e.Error)
	}

	var ready struct {
		Status string `json:"status"`
	}
	rz := get(t, h.ts, "/readyz")
	if rz.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz during drain: status %d, want 503", rz.StatusCode)
	}
	if err := json.NewDecoder(rz.Body).Decode(&ready); err != nil {
		t.Fatal(err)
	}
	rz.Body.Close()
	if ready.Status != "draining" {
		t.Fatalf("/readyz during drain: status %q, want draining", ready.Status)
	}
	if hz := get(t, h.ts, "/healthz"); hz.StatusCode != http.StatusOK {
		t.Fatalf("/healthz during drain: status %d, want 200", hz.StatusCode)
	} else {
		hz.Body.Close()
	}

	// The in-flight query was admitted before the drain: it must complete,
	// and DrainWait must then observe an idle executor.
	h.release()
	if err := <-h.results; err != nil {
		t.Fatalf("in-flight query dropped by drain: %v", err)
	}
	dctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := h.srv.exec.DrainWait(dctx); err != nil {
		t.Fatalf("DrainWait: %v", err)
	}
	st := h.srv.exec.AdmissionStats()
	if !st.Draining || st.DrainRejected == 0 || st.Inflight != 0 {
		t.Fatalf("post-drain admission state: %+v", st)
	}
}

// timeout_ms must be validated on every query endpoint, not only the
// streaming skyline path.
func TestTimeoutParamAllEndpoints(t *testing.T) {
	h := newOverloadHarness(t, 2, 0)
	paths := []string{
		"/skyline?edge=3",
		"/skyline?edge=3&stream=1",
		"/topk?edge=3&k=2",
		"/nearest?edge=3&cost=0&k=1",
		"/within?edge=3&budget=50,50,50",
	}
	for _, p := range paths {
		bad := get(t, h.ts, p+"&timeout_ms=nope")
		if bad.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET %s&timeout_ms=nope: status %d, want 400", p, bad.StatusCode)
		}
		bad.Body.Close()
		ok := get(t, h.ts, p+"&timeout_ms=30000")
		if ok.StatusCode != http.StatusOK {
			t.Fatalf("GET %s&timeout_ms=30000: status %d, want 200", p, ok.StatusCode)
		}
		ok.Body.Close()
	}
}

// Soak at ~4x capacity: with the pending queue bounded, an accepted request
// waits for at most the slot-holder in front of it, so accepted-request
// latency stays within a small factor of the uncontended baseline while the
// excess load is shed with 503 — the opposite of unbounded queueing, where
// p99 grows with the backlog. The skyline queries themselves are far too
// fast (~0.2ms) to saturate a slot organically through ~2ms of HTTP
// overhead, so the load side runs in-process: each load query occupies its
// worker slot for a fixed 5ms via a sleeping stream callback, keeping the
// executor pinned at capacity for the whole probe run.
func TestOverloadSoakAcceptedLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in short mode")
	}
	h := newOverloadHarness(t, 1, 1) // capacity: 1 running + 1 queued
	client := h.ts.Client()
	do := func() (time.Duration, int) {
		start := time.Now()
		resp, err := client.Get(h.ts.URL + "/skyline?edge=3")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return time.Since(start), resp.StatusCode
	}

	// Uncontended baseline: one request at a time, before any load starts.
	var base []time.Duration
	for i := 0; i < 50; i++ {
		d, code := do()
		if code != http.StatusOK {
			t.Fatalf("uncontended request got status %d", code)
		}
		base = append(base, d)
	}

	// Load: 4 in-process clients against a capacity of 2, each holding the
	// worker slot for 5ms per admitted query and backing off 1ms when shed.
	stop := make(chan struct{})
	var load sync.WaitGroup
	for c := 0; c < 4; c++ {
		load.Add(1)
		// Each client thinks for a staggered 1-4ms after every query,
		// shed or served. Aggregate demand (4 clients x 5ms holds over
		// 6-9ms cycles) stays well above the capacity of 2, but the think
		// time leaves slot-free windows, so the probe stream sees both
		// outcomes: accepted (a window) and shed (slots pinned).
		backoff := time.Duration(1+c) * time.Millisecond
		go func() {
			defer load.Done()
			req := mcn.SkylineRequest(mcn.Location{Edge: 3, T: 0.5})
			for {
				select {
				case <-stop:
					return
				default:
				}
				h.srv.exec.StreamSkyline(ctx, req, func(mcn.Facility) bool {
					time.Sleep(5 * time.Millisecond)
					return false // bound the hold to one callback
				})
				time.Sleep(backoff)
			}
		}()
	}
	defer load.Wait()
	defer close(stop)

	// Probes: 200 sequential requests against the saturated server.
	var accepted []time.Duration
	var shed int
	for i := 0; i < 200; i++ {
		d, code := do()
		switch code {
		case http.StatusOK:
			accepted = append(accepted, d)
		case http.StatusServiceUnavailable:
			shed++
		default:
			t.Fatalf("unexpected status %d under overload", code)
		}
	}

	if shed == 0 {
		t.Fatal("4x offered load produced no shedding")
	}
	if len(accepted) == 0 {
		t.Fatal("overload shed every single probe")
	}
	p99 := func(ds []time.Duration) time.Duration {
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		return ds[(len(ds)*99)/100]
	}
	basep99, overp99 := p99(base), p99(accepted)
	// The 2x bound is the design target; the absolute slack covers the 5ms
	// slot holds plus CI scheduling noise on sub-millisecond queries without
	// masking the failure mode this guards against (unbounded queueing shows
	// up as hundreds of milliseconds, not tens).
	limit := 2*basep99 + 100*time.Millisecond
	if overp99 > limit {
		t.Fatalf("accepted p99 under overload = %v, want <= %v (uncontended p99 %v; queue not bounded?)",
			overp99, limit, basep99)
	}
	t.Logf("uncontended p99 %v, overloaded accepted p99 %v, accepted %d shed %d of 200",
		basep99, overp99, len(accepted), shed)
}
