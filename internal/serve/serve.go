// Package serve implements the mcnserve HTTP serving layer: JSON query
// endpoints over one shared bounded executor, NDJSON streaming for the
// progressive queries, health/readiness/stats introspection, and the
// scatter-gather-friendly multi-source and period endpoints the cluster
// gateway (internal/cluster) fans out across replicas. The cmd/mcnserve
// binary is a thin flag-parsing shell around this package; keeping the
// handlers here lets the cluster tests spin up real in-process backends
// over httptest.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mcn"
	"mcn/internal/wire"
)

// Config tunes a Server.
type Config struct {
	// Workers bounds concurrent queries; <= 0 selects GOMAXPROCS.
	Workers int
	// Timeout is the default and upper bound for per-request deadlines.
	Timeout time.Duration
	// QueueDepth bounds queries queued for a worker slot (admission
	// control); zero queues without bound and never sheds.
	QueueDepth int
	// ShedRate is the sustained shed rate (rejections per second, averaged
	// over ShedWindow) above which /readyz reports unready. Zero selects
	// DefaultShedRate; negative makes any shed within the window flip
	// readiness (the pre-rate-threshold behaviour).
	ShedRate float64
	// ShedWindow is the sliding window the shed rate is averaged over.
	// Zero selects DefaultShedWindow; sub-second values round up to 1s.
	ShedWindow time.Duration
	// TimeNet, when set, is the time-dependent view of the same network;
	// it enables the /skyline/period and /topk/period endpoints.
	TimeNet *mcn.TimeNetwork
}

// Defaults for Config's readiness knobs: an instance is unready only while
// it sheds more than DefaultShedRate requests/s averaged over
// DefaultShedWindow. A single shed under a brief burst no longer flips
// /readyz — gateways probing readiness would otherwise flap replicas out of
// rotation and pile their load onto the survivors.
const (
	DefaultShedRate   = 5.0
	DefaultShedWindow = 5 * time.Second
)

// Server exposes preference queries over one shared network as JSON
// endpoints. Every query funnels through a single bounded executor, so the
// worker count caps concurrent query work no matter how many HTTP
// connections are open.
type Server struct {
	net     *mcn.Network
	tnet    *mcn.TimeNetwork
	exec    *mcn.Executor
	timeout time.Duration
	started time.Time
	served  atomic.Int64

	shedRate float64
	sheds    *shedTracker
	// now is the clock, swappable by tests exercising the shed window.
	now func() time.Time
}

// New returns a server over net configured by cfg.
func New(net *mcn.Network, cfg Config) *Server {
	if cfg.ShedRate == 0 {
		cfg.ShedRate = DefaultShedRate
	} else if cfg.ShedRate < 0 {
		cfg.ShedRate = 0
	}
	if cfg.ShedWindow <= 0 {
		cfg.ShedWindow = DefaultShedWindow
	}
	return &Server{
		net:      net,
		tnet:     cfg.TimeNet,
		exec:     net.NewExecutor(mcn.ExecutorConfig{Workers: cfg.Workers, Timeout: cfg.Timeout, QueueDepth: cfg.QueueDepth}),
		timeout:  cfg.Timeout,
		started:  time.Now(),
		shedRate: cfg.ShedRate,
		sheds:    newShedTracker(cfg.ShedWindow),
		now:      time.Now,
	}
}

// Executor returns the server's query executor, for drain orchestration
// (StartDrain/DrainWait on shutdown).
func (s *Server) Executor() *mcn.Executor { return s.exec }

// Handler routes the server's endpoints.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /skyline", s.skylineHandler())
	mux.HandleFunc("GET /topk", s.topkHandler())
	mux.HandleFunc("GET /nearest", s.queryHandler(s.nearestRequest))
	mux.HandleFunc("GET /within", s.queryHandler(s.withinRequest))
	mux.HandleFunc("GET /multisource/skyline", s.queryHandler(s.multiSkylineRequest))
	mux.HandleFunc("GET /multisource/topk", s.queryHandler(s.multiTopKRequest))
	mux.HandleFunc("POST /v1/query", s.handleV1Query)
	if s.tnet != nil {
		mux.HandleFunc("GET /skyline/period", s.periodHandler(false))
		mux.HandleFunc("GET /topk/period", s.periodHandler(true))
	}
	return mux
}

// ProfiledHandler is Handler plus net/http/pprof endpoints under
// /debug/pprof/, for profiling query hot paths in-situ (mcnserve -pprof).
// Kept off the default handler: the profiling endpoints expose runtime
// internals and cost CPU while sampling, so they are strictly opt-in.
func (s *Server) ProfiledHandler() http.Handler {
	mux := s.Handler().(*http.ServeMux)
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return mux
}

// shedTracker counts admission rejections in per-second buckets over a
// sliding window, so readiness reflects a sustained shed *rate* rather than
// flipping on any single rejection.
type shedTracker struct {
	secs int64 // window length in whole seconds (>= 1)

	mu sync.Mutex
	// buckets[i] counts sheds during unix second stamps[i]; a bucket is
	// lazily reset when its second rolls around again.
	buckets []int64
	stamps  []int64
}

func newShedTracker(window time.Duration) *shedTracker {
	secs := int64(window / time.Second)
	if secs < 1 {
		secs = 1
	}
	return &shedTracker{secs: secs, buckets: make([]int64, secs), stamps: make([]int64, secs)}
}

// note records one shed at time now.
func (t *shedTracker) note(now time.Time) {
	sec := now.Unix()
	i := sec % t.secs
	t.mu.Lock()
	if t.stamps[i] != sec {
		t.stamps[i] = sec
		t.buckets[i] = 0
	}
	t.buckets[i]++
	t.mu.Unlock()
}

// rate returns the average sheds/s over the window ending at now.
func (t *shedTracker) rate(now time.Time) float64 {
	sec := now.Unix()
	var total int64
	t.mu.Lock()
	for i := range t.buckets {
		if age := sec - t.stamps[i]; age >= 0 && age < t.secs {
			total += t.buckets[i]
		}
	}
	t.mu.Unlock()
	return float64(total) / float64(t.secs)
}

// queryHandler wraps a request parser with the shared execute/respond flow.
// The HTTP request context rides into the query, so a client hanging up
// aborts its query mid-expansion.
func (s *Server) queryHandler(parse func(r *http.Request) (mcn.BatchRequest, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		req, err := parse(r)
		if err != nil {
			wire.WriteJSON(w, http.StatusBadRequest, wire.Error{Error: err.Error()})
			return
		}
		if err := s.applyTimeout(r, &req); err != nil {
			wire.WriteJSON(w, http.StatusBadRequest, wire.Error{Error: err.Error()})
			return
		}
		resp := s.exec.Do(r.Context(), req)
		if resp.Err != nil {
			s.writeError(w, resp.Err)
			return
		}
		s.served.Add(1)
		out := wire.Result{
			Query:      req.Kind.String(),
			Count:      len(resp.Result.Facilities),
			Facilities: wire.FromFacilities(resp.Result.Facilities),
			Stats:      resp.Result.Stats,
			LatencyMS:  float64(resp.Latency.Microseconds()) / 1000,
		}
		wire.WriteJSON(w, http.StatusOK, out)
	}
}

// parseStream reads the stream=0|1 switch shared by /skyline and /topk.
func parseStream(r *http.Request) (bool, error) {
	raw := r.URL.Query().Get("stream")
	if raw == "" {
		return false, nil
	}
	v, err := strconv.ParseBool(raw)
	if err != nil {
		return false, fmt.Errorf("invalid stream %q (want a boolean)", raw)
	}
	return v, nil
}

// skylineHandler answers /skyline. Without stream=1 it is the ordinary
// buffered JSON endpoint; with stream=1 it streams NDJSON — one facility
// per line, flushed the moment the progressive search confirms it, so
// clients see the first skyline members while the query is still running.
// An optional timeout_ms parameter bounds the query (capped by the server
// default); the HTTP request context rides along, so a client hanging up
// aborts the search mid-expansion.
func (s *Server) skylineHandler() http.HandlerFunc {
	buffered := s.queryHandler(s.skylineRequest)
	return func(w http.ResponseWriter, r *http.Request) {
		stream, err := parseStream(r)
		if err != nil {
			wire.WriteJSON(w, http.StatusBadRequest, wire.Error{Error: err.Error()})
			return
		}
		if !stream {
			buffered(w, r)
			return
		}
		req, err := s.skylineRequest(r)
		if err != nil {
			wire.WriteJSON(w, http.StatusBadRequest, wire.Error{Error: err.Error()})
			return
		}
		s.streamQuery(w, r, req, s.exec.StreamSkyline)
	}
}

// topkHandler answers /topk; stream=1 streams facilities in ascending score
// order as the incremental iterator produces them (Executor.StreamTopK over
// Network.TopKSeq), mirroring /skyline?stream=1.
func (s *Server) topkHandler() http.HandlerFunc {
	buffered := s.queryHandler(s.topkRequest)
	return func(w http.ResponseWriter, r *http.Request) {
		stream, err := parseStream(r)
		if err != nil {
			wire.WriteJSON(w, http.StatusBadRequest, wire.Error{Error: err.Error()})
			return
		}
		if !stream {
			buffered(w, r)
			return
		}
		req, err := s.topkRequest(r)
		if err != nil {
			wire.WriteJSON(w, http.StatusBadRequest, wire.Error{Error: err.Error()})
			return
		}
		s.streamQuery(w, r, req, s.exec.StreamTopK)
	}
}

// streamQuery is the shared NDJSON delivery loop behind the stream=1
// endpoints: one wire.Facility per line, flushed as emitted, a terminal
// done-line on success and an in-band error line on failure (headers are
// already out by then).
func (s *Server) streamQuery(w http.ResponseWriter, r *http.Request, req mcn.BatchRequest,
	run func(context.Context, mcn.BatchRequest, func(mcn.Facility) bool) mcn.BatchResponse) {
	if err := s.applyTimeout(r, &req); err != nil {
		wire.WriteJSON(w, http.StatusBadRequest, wire.Error{Error: err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Accel-Buffering", "no") // defeat proxy buffering
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	count := 0
	resp := run(r.Context(), req, func(f mcn.Facility) bool {
		if err := enc.Encode(wire.Facility{ID: f.ID, Costs: wire.Costs(f.Costs), Score: f.Score}); err != nil {
			return false // client went away; abort the query
		}
		count++
		if flusher != nil {
			flusher.Flush()
		}
		return true
	})
	if resp.Err != nil {
		// Headers are already out (possibly with results); report the
		// failure in-band as a terminal NDJSON line.
		s.noteShed(resp.Err)
		_, msg := classifyError(resp.Err)
		enc.Encode(wire.Error{Error: msg})
		return
	}
	s.served.Add(1)
	// Terminal line: lets clients distinguish a complete result from a
	// truncated connection.
	enc.Encode(map[string]any{
		"done":       true,
		"count":      count,
		"latency_ms": float64(resp.Latency.Microseconds()) / 1000,
	})
}

// periodHandler answers /skyline/period and /topk/period (topk selects the
// latter): the time-dependent sweep over [from, to), one interval per
// maximal constant preferred set. Period sweeps run outside the executor
// (they are themselves batches of per-interval queries), so only the
// draining check and the request deadline bound them.
func (s *Server) periodHandler(topk bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		from, err := floatParam(r, "from")
		if err != nil {
			wire.WriteJSON(w, http.StatusBadRequest, wire.Error{Error: err.Error()})
			return
		}
		to, err := floatParam(r, "to")
		if err != nil {
			wire.WriteJSON(w, http.StatusBadRequest, wire.Error{Error: err.Error()})
			return
		}
		if from >= to {
			wire.WriteJSON(w, http.StatusBadRequest, wire.Error{Error: fmt.Sprintf("empty period [%g, %g)", from, to)})
			return
		}
		loc, err := s.parseLoc(r)
		if err != nil {
			wire.WriteJSON(w, http.StatusBadRequest, wire.Error{Error: err.Error()})
			return
		}
		engOpts, err := parseEngine(r)
		if err != nil {
			wire.WriteJSON(w, http.StatusBadRequest, wire.Error{Error: err.Error()})
			return
		}
		var k int
		var agg mcn.Aggregate
		if topk {
			if k, err = intParam(r, "k", 4); err != nil {
				wire.WriteJSON(w, http.StatusBadRequest, wire.Error{Error: err.Error()})
				return
			}
			if agg, err = parseWeights(r.URL.Query().Get("weights"), s.net.D()); err != nil {
				wire.WriteJSON(w, http.StatusBadRequest, wire.Error{Error: err.Error()})
				return
			}
		}
		if s.exec.Draining() {
			s.writeError(w, mcn.ErrDraining)
			return
		}
		ctx, cancel, err := s.periodContext(r)
		if err != nil {
			wire.WriteJSON(w, http.StatusBadRequest, wire.Error{Error: err.Error()})
			return
		}
		defer cancel()

		out, err := s.runPeriodSweep(ctx, topk, loc, agg, k, from, to, engOpts)
		if err != nil {
			s.writeError(w, err)
			return
		}
		wire.WriteJSON(w, http.StatusOK, out)
	}
}

// runPeriodSweep executes one time-dependent sweep over [from, to) and
// packages the wire envelope — the execution core shared by the GET period
// endpoints and POST /v1/query.
func (s *Server) runPeriodSweep(ctx context.Context, topk bool, loc mcn.Location, agg mcn.Aggregate, k int,
	from, to float64, engOpts []mcn.Option) (*wire.PeriodResult, error) {
	start := time.Now()
	var intervals []mcn.IntervalResult
	var err error
	query := "skyline_over_period"
	if topk {
		query = "topk_over_period"
		intervals, err = s.tnet.TopKOverPeriod(ctx, loc, agg, k, from, to, mcn.QueryOptions(engOpts...))
	} else {
		intervals, err = s.tnet.SkylineOverPeriod(ctx, loc, from, to, mcn.QueryOptions(engOpts...))
	}
	if err != nil {
		return nil, err
	}
	s.served.Add(1)
	out := &wire.PeriodResult{
		Query:     query,
		Count:     len(intervals),
		Intervals: make([]wire.Interval, len(intervals)),
		LatencyMS: float64(time.Since(start).Microseconds()) / 1000,
	}
	for i, iv := range intervals {
		out.Intervals[i] = wire.Interval{
			From:       iv.From,
			To:         iv.To,
			Count:      len(iv.Result.Facilities),
			Facilities: wire.FromFacilities(iv.Result.Facilities),
			Stats:      iv.Result.Stats,
		}
	}
	return out, nil
}

// periodContext derives the request context for a period sweep: timeout_ms
// (capped by the server bound) or the server's default timeout.
func (s *Server) periodContext(r *http.Request) (context.Context, context.CancelFunc, error) {
	ms := 0
	if raw := r.URL.Query().Get("timeout_ms"); raw != "" {
		var err error
		if ms, err = strconv.Atoi(raw); err != nil || ms <= 0 {
			return nil, nil, fmt.Errorf("invalid timeout_ms %q", raw)
		}
	}
	return s.periodTimeoutCtx(r.Context(), ms)
}

// periodTimeoutCtx bounds a period sweep by ms milliseconds (0 = server
// default), never loosening past the server's own timeout.
func (s *Server) periodTimeoutCtx(parent context.Context, ms int) (context.Context, context.CancelFunc, error) {
	if ms < 0 {
		return nil, nil, fmt.Errorf("invalid timeout_ms %d", ms)
	}
	timeout := s.timeout
	if ms > 0 {
		t := time.Duration(ms) * time.Millisecond
		if timeout <= 0 || t < timeout {
			timeout = t
		}
	}
	if timeout <= 0 {
		return parent, func() {}, nil
	}
	ctx, cancel := context.WithTimeout(parent, timeout)
	return ctx, cancel, nil
}

// applyTimeout folds an optional timeout_ms parameter into the request
// deadline. A client may tighten its deadline but never loosen it past the
// server's own bound: a huge timeout_ms would pin an executor slot far beyond
// what the operator configured.
func (s *Server) applyTimeout(r *http.Request, req *mcn.BatchRequest) error {
	raw := r.URL.Query().Get("timeout_ms")
	if raw == "" {
		return nil
	}
	ms, err := strconv.Atoi(raw)
	if err != nil || ms <= 0 {
		return fmt.Errorf("invalid timeout_ms %q", raw)
	}
	req.Timeout = time.Duration(ms) * time.Millisecond
	if s.timeout > 0 && req.Timeout > s.timeout {
		req.Timeout = s.timeout
	}
	return nil
}

// noteShed records an admission rejection for /readyz and reports whether err
// was one.
func (s *Server) noteShed(err error) bool {
	if errors.Is(err, mcn.ErrOverloaded) || errors.Is(err, mcn.ErrDraining) {
		s.sheds.note(s.now())
		return true
	}
	return false
}

// writeError renders a query error. Admission rejections additionally carry a
// Retry-After hint: the condition is expected to clear as soon as in-flight
// work finishes (overload) or never on this instance (drain) — either way the
// client's move is the same, retry elsewhere or later.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	if s.noteShed(err) {
		w.Header().Set("Retry-After", "1")
	}
	status, msg := classifyError(err)
	wire.WriteJSON(w, status, wire.Error{Error: msg})
}

// classifyError maps a query error to an HTTP status and client-safe
// message: overload/cancellation is 503, server faults (panics, storage I/O)
// are 500 with the detail kept out of the response, and everything else —
// validation the query layer itself performed — is the caller's 400.
func classifyError(err error) (int, string) {
	switch {
	case errors.Is(err, mcn.ErrOverloaded) || errors.Is(err, mcn.ErrDraining):
		return http.StatusServiceUnavailable, err.Error()
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable, err.Error()
	case mcn.IsQueryPanic(err):
		return http.StatusInternalServerError, "internal query failure"
	case strings.HasPrefix(err.Error(), "storage:"):
		return http.StatusInternalServerError, "storage failure"
	default:
		return http.StatusBadRequest, err.Error()
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	wire.WriteJSON(w, http.StatusOK, map[string]any{
		"status":        "ok",
		"cost_types":    s.net.D(),
		"directed":      s.net.Directed(),
		"nodes":         s.net.NumNodes(),
		"edges":         s.net.NumEdges(),
		"facilities":    s.net.NumFacilities(),
		"workers":       s.exec.Workers(),
		"uptime_sec":    time.Since(s.started).Seconds(),
		"queries_total": s.served.Load(),
	})
}

// handleReadyz answers readiness, as distinct from /healthz liveness: a
// draining or shedding instance is still alive (don't restart it) but should
// receive no new traffic. Readiness returns 503 for the whole drain, and
// while the admission-rejection rate over the sliding window exceeds the
// configured threshold — a single shed under a brief burst keeps the
// instance ready, so health probes don't flap it out of rotation.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.exec.Draining() {
		wire.WriteJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	if s.sheds.rate(s.now()) > s.shedRate {
		w.Header().Set("Retry-After", "1")
		wire.WriteJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "shedding"})
		return
	}
	wire.WriteJSON(w, http.StatusOK, map[string]any{"status": "ready"})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	es := s.exec.Stats()
	out := map[string]any{
		"completed":       es.Completed,
		"failed":          es.Failed,
		"canceled":        es.Canceled,
		"panics":          es.Panics,
		"mean_latency_ms": float64(es.MeanLatency().Microseconds()) / 1000,
		"max_latency_ms":  float64(es.MaxLatency.Microseconds()) / 1000,
		// Admission state: inflight/queued occupancy plus shed_requests,
		// drain_rejected and the draining flag.
		"admission": s.exec.AdmissionStats(),
	}
	if is, ok := s.net.IndexStats(); ok {
		// The pruning index attached to every query, with the lifetime
		// effect it had: node pops discarded before their adjacency was
		// read, against total node expansions performed.
		out["index"] = map[string]any{
			"bounds_bytes":    is.BoundsBytes,
			"build_ms":        float64(is.BuildTime.Microseconds()) / 1000,
			"pruned_nodes":    es.PrunedNodes,
			"node_expansions": es.NodeExpansions,
		}
	}
	if fs, ok := s.net.IOFailureStats(); ok {
		// io_retries, io_fail_transient, io_fail_permanent, checksum_errors —
		// the disk failure-handling ledger (zero on a healthy device).
		out["io_failures"] = fs
	}
	if fc, ok := s.net.FaultCounters(); ok {
		// The -chaos fault-injection ledger: what the injected-fault device
		// actually did to this replica, so game-day drills can correlate
		// io_failures with the faults that caused them.
		out["fault_injection"] = fc
	}
	if io, ok := s.net.IOStats(); ok {
		out["io"] = map[string]any{
			"logical":  io.Logical,
			"physical": io.Physical,
			"hit_rate": io.HitRate(),
		}
	}
	if shards, ok := s.net.PoolShardStats(); ok {
		// Per-shard counters expose skew the aggregate hides: a hot page
		// shows up as one shard carrying most of the logical reads.
		out["pool_shards"] = shards
	}
	if cs, ok := s.net.ResultCacheStats(); ok {
		out["cache"] = map[string]any{
			"hits":        cs.Hits,
			"misses":      cs.Misses,
			"coalesced":   cs.Coalesced,
			"invalidated": cs.Invalidated,
			"evicted":     cs.Evicted,
			"hit_rate":    cs.HitRate(),
		}
	}
	if shards, ok := s.net.ResultCacheShardStats(); ok {
		// Same skew diagnosis as pool_shards, one level up: a single hot
		// query shows as one shard absorbing most hits.
		out["cache_shards"] = shards
	}
	wire.WriteJSON(w, http.StatusOK, out)
}

// skylineRequest parses /skyline?edge=&t=&engine=.
func (s *Server) skylineRequest(r *http.Request) (mcn.BatchRequest, error) {
	loc, err := s.parseLoc(r)
	if err != nil {
		return mcn.BatchRequest{}, err
	}
	opts, err := parseEngine(r)
	if err != nil {
		return mcn.BatchRequest{}, err
	}
	return mcn.SkylineRequest(loc, opts...), nil
}

// topkRequest parses /topk?edge=&t=&k=&weights=&engine=.
func (s *Server) topkRequest(r *http.Request) (mcn.BatchRequest, error) {
	loc, err := s.parseLoc(r)
	if err != nil {
		return mcn.BatchRequest{}, err
	}
	opts, err := parseEngine(r)
	if err != nil {
		return mcn.BatchRequest{}, err
	}
	k, err := intParam(r, "k", 4)
	if err != nil {
		return mcn.BatchRequest{}, err
	}
	agg, err := parseWeights(r.URL.Query().Get("weights"), s.net.D())
	if err != nil {
		return mcn.BatchRequest{}, err
	}
	return mcn.TopKRequest(loc, agg, k, opts...), nil
}

// nearestRequest parses /nearest?edge=&t=&cost=&k=.
func (s *Server) nearestRequest(r *http.Request) (mcn.BatchRequest, error) {
	loc, err := s.parseLoc(r)
	if err != nil {
		return mcn.BatchRequest{}, err
	}
	cost, err := intParam(r, "cost", 0)
	if err != nil {
		return mcn.BatchRequest{}, err
	}
	k, err := intParam(r, "k", 1)
	if err != nil {
		return mcn.BatchRequest{}, err
	}
	return mcn.NearestRequest(loc, cost, k), nil
}

// withinRequest parses /within?edge=&t=&budget=b1,b2,…&engine=.
func (s *Server) withinRequest(r *http.Request) (mcn.BatchRequest, error) {
	loc, err := s.parseLoc(r)
	if err != nil {
		return mcn.BatchRequest{}, err
	}
	opts, err := parseEngine(r)
	if err != nil {
		return mcn.BatchRequest{}, err
	}
	raw := r.URL.Query().Get("budget")
	if raw == "" {
		return mcn.BatchRequest{}, fmt.Errorf("missing budget parameter (comma-separated, %d components)", s.net.D())
	}
	vals, err := parseFloats(raw)
	if err != nil {
		return mcn.BatchRequest{}, fmt.Errorf("budget: %w", err)
	}
	if len(vals) != s.net.D() {
		return mcn.BatchRequest{}, fmt.Errorf("budget has %d components, network has %d", len(vals), s.net.D())
	}
	return mcn.WithinRequest(loc, mcn.Of(vals...), opts...), nil
}

// multiSkylineRequest parses /multisource/skyline?cost=&edges=&ts=&engine=.
func (s *Server) multiSkylineRequest(r *http.Request) (mcn.BatchRequest, error) {
	locs, err := s.parseLocs(r)
	if err != nil {
		return mcn.BatchRequest{}, err
	}
	cost, err := intParam(r, "cost", 0)
	if err != nil {
		return mcn.BatchRequest{}, err
	}
	opts, err := parseEngine(r)
	if err != nil {
		return mcn.BatchRequest{}, err
	}
	return mcn.MultiSourceSkylineRequest(cost, locs, opts...), nil
}

// multiTopKRequest parses /multisource/topk?cost=&edges=&ts=&k=&weights=&engine=.
// The weights span the |locs| per-source distances, not the d cost types.
func (s *Server) multiTopKRequest(r *http.Request) (mcn.BatchRequest, error) {
	locs, err := s.parseLocs(r)
	if err != nil {
		return mcn.BatchRequest{}, err
	}
	cost, err := intParam(r, "cost", 0)
	if err != nil {
		return mcn.BatchRequest{}, err
	}
	opts, err := parseEngine(r)
	if err != nil {
		return mcn.BatchRequest{}, err
	}
	k, err := intParam(r, "k", 4)
	if err != nil {
		return mcn.BatchRequest{}, err
	}
	agg, err := parseWeights(r.URL.Query().Get("weights"), len(locs))
	if err != nil {
		return mcn.BatchRequest{}, err
	}
	return mcn.MultiSourceTopKRequest(cost, locs, agg, k, opts...), nil
}

// parseLocs reads the multi-source query locations: edges (required CSV)
// and ts (optional CSV, default 0.5 each, arity must match edges).
func (s *Server) parseLocs(r *http.Request) ([]mcn.Location, error) {
	raw := r.URL.Query().Get("edges")
	if raw == "" {
		return nil, fmt.Errorf("missing edges parameter (comma-separated edge ids)")
	}
	parts := strings.Split(raw, ",")
	locs := make([]mcn.Location, len(parts))
	for i, p := range parts {
		edge, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || edge < 0 {
			return nil, fmt.Errorf("invalid edge %q", p)
		}
		if edge >= s.net.NumEdges() {
			return nil, fmt.Errorf("edge %d out of range (network has %d edges)", edge, s.net.NumEdges())
		}
		locs[i] = mcn.Location{Edge: mcn.EdgeID(edge), T: 0.5}
	}
	if rawT := r.URL.Query().Get("ts"); rawT != "" {
		ts, err := parseFloats(rawT)
		if err != nil {
			return nil, fmt.Errorf("ts: %w", err)
		}
		if len(ts) != len(locs) {
			return nil, fmt.Errorf("got %d ts for %d edges", len(ts), len(locs))
		}
		for i, t := range ts {
			if t < 0 || t > 1 {
				return nil, fmt.Errorf("invalid t %g (want a fraction in [0, 1])", t)
			}
			locs[i].T = t
		}
	}
	return locs, nil
}

// parseLoc reads the query location: edge (required) and t (default 0.5).
func (s *Server) parseLoc(r *http.Request) (mcn.Location, error) {
	raw := r.URL.Query().Get("edge")
	if raw == "" {
		return mcn.Location{}, fmt.Errorf("missing edge parameter")
	}
	edge, err := strconv.Atoi(raw)
	if err != nil || edge < 0 {
		return mcn.Location{}, fmt.Errorf("invalid edge %q", raw)
	}
	if edge >= s.net.NumEdges() {
		return mcn.Location{}, fmt.Errorf("edge %d out of range (network has %d edges)", edge, s.net.NumEdges())
	}
	t := 0.5
	if rawT := r.URL.Query().Get("t"); rawT != "" {
		t, err = strconv.ParseFloat(rawT, 64)
		if err != nil || t < 0 || t > 1 {
			return mcn.Location{}, fmt.Errorf("invalid t %q (want a fraction in [0, 1])", rawT)
		}
	}
	return mcn.Location{Edge: mcn.EdgeID(edge), T: t}, nil
}

// parseEngine reads engine=lsa|cea (default cea).
func parseEngine(r *http.Request) ([]mcn.Option, error) {
	return engineOpts(r.URL.Query().Get("engine"))
}

// engineOpts maps an engine name ("", "cea", "lsa" — case-insensitive) to
// query options; shared by the GET parameter parser and the wire request
// path.
func engineOpts(engine string) ([]mcn.Option, error) {
	switch strings.ToLower(engine) {
	case "", "cea":
		return []mcn.Option{mcn.WithEngine(mcn.CEA)}, nil
	case "lsa":
		return []mcn.Option{mcn.WithEngine(mcn.LSA)}, nil
	default:
		return nil, fmt.Errorf("unknown engine %q (want lsa or cea)", engine)
	}
}

// parseWeights builds the top-k aggregate; empty means uniform weights.
func parseWeights(raw string, d int) (mcn.Aggregate, error) {
	if raw == "" {
		return weightsOf(nil, d)
	}
	vals, err := parseFloats(raw)
	if err != nil {
		return nil, fmt.Errorf("weights: %w", err)
	}
	return weightsOf(vals, d)
}

// weightsOf builds the top-k aggregate from explicit coefficients; empty
// means uniform. Shared by the GET parser and the wire request path.
func weightsOf(vals []float64, d int) (mcn.Aggregate, error) {
	if len(vals) == 0 {
		coef := make([]float64, d)
		for i := range coef {
			coef[i] = 1
		}
		return mcn.WeightedSum(coef...), nil
	}
	if len(vals) != d {
		return nil, fmt.Errorf("got %d weights, network has %d cost types", len(vals), d)
	}
	return mcn.WeightedSum(vals...), nil
}

func parseFloats(raw string) ([]float64, error) {
	parts := strings.Split(raw, ",")
	out := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("component %d: %v", i, err)
		}
		out[i] = v
	}
	return out, nil
}

func intParam(r *http.Request, name string, def int) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("invalid %s %q", name, raw)
	}
	return v, nil
}

func floatParam(r *http.Request, name string) (float64, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing %s parameter", name)
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return 0, fmt.Errorf("invalid %s %q", name, raw)
	}
	return v, nil
}
