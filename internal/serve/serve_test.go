package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"mcn"
	"mcn/internal/wire"
)

var ctx = context.Background()

// testServers returns handlers over in-memory and disk-resident views of one
// synthetic network, plus the network for computing reference answers.
func testServers(t *testing.T) (map[string]http.Handler, *mcn.Network) {
	t.Helper()
	g, err := mcn.Synthetic(mcn.SyntheticConfig{Nodes: 1_200, Facilities: 200, D: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "serve.mcn")
	if err := mcn.CreateDatabase(g, path); err != nil {
		t.Fatal(err)
	}
	db, err := mcn.OpenDatabase(path, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	mem := mcn.FromGraph(g)
	return map[string]http.Handler{
		"memory": New(mem, Config{Workers: 8, Timeout: time.Minute}).Handler(),
		"disk":   New(db, Config{Workers: 8, Timeout: time.Minute}).Handler(),
	}, mem
}

func getJSON(t *testing.T, ts *httptest.Server, path string, status int, out any) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != status {
		t.Fatalf("GET %s: status %d, want %d", path, resp.StatusCode, status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("GET %s: content type %q", path, ct)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: decode: %v", path, err)
	}
}

func resultIDs(res wire.Result) []mcn.FacilityID {
	out := make([]mcn.FacilityID, len(res.Facilities))
	for i, f := range res.Facilities {
		out[i] = f.ID
	}
	return out
}

// Every query endpoint must answer with the same facilities the library
// returns directly, over both backends.
func TestEndpointsMatchLibrary(t *testing.T) {
	handlers, ref := testServers(t)
	loc := mcn.Location{Edge: 17, T: 0.25}
	agg := mcn.WeightedSum(1, 1, 1)

	wantSky, err := ref.Skyline(ctx, loc, mcn.WithEngine(mcn.CEA))
	if err != nil {
		t.Fatal(err)
	}
	wantTop, err := ref.TopK(ctx, loc, agg, 3)
	if err != nil {
		t.Fatal(err)
	}
	wantNear, err := ref.Nearest(ctx, loc, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	wantWithin, err := ref.Within(ctx, loc, mcn.Of(200, 200, 200))
	if err != nil {
		t.Fatal(err)
	}

	for name, h := range handlers {
		t.Run(name, func(t *testing.T) {
			ts := httptest.NewServer(h)
			defer ts.Close()

			var sky wire.Result
			getJSON(t, ts, "/skyline?edge=17&t=0.25", http.StatusOK, &sky)
			if sky.Query != "skyline" || sky.Count != len(wantSky.Facilities) {
				t.Errorf("skyline count %d, want %d", sky.Count, len(wantSky.Facilities))
			}
			if sky.LatencyMS < 0 {
				t.Errorf("negative latency %f", sky.LatencyMS)
			}

			var top wire.Result
			getJSON(t, ts, "/topk?edge=17&t=0.25&k=3&weights=1,1,1", http.StatusOK, &top)
			if !reflect.DeepEqual(resultIDs(top), wantTop.IDs()) {
				t.Errorf("topk ids %v, want %v", resultIDs(top), wantTop.IDs())
			}
			if len(top.Facilities) > 0 && top.Facilities[0].Score <= 0 {
				t.Errorf("topk first score %f, want > 0", top.Facilities[0].Score)
			}

			var near wire.Result
			getJSON(t, ts, "/nearest?edge=17&t=0.25&cost=1&k=5", http.StatusOK, &near)
			if len(near.Facilities) != len(wantNear) {
				t.Errorf("nearest %d results, want %d", len(near.Facilities), len(wantNear))
			}
			for i := range near.Facilities {
				if near.Facilities[i].ID != wantNear[i].ID {
					t.Errorf("nearest[%d] = %d, want %d", i, near.Facilities[i].ID, wantNear[i].ID)
				}
			}

			var within wire.Result
			getJSON(t, ts, "/within?edge=17&t=0.25&budget=200,200,200", http.StatusOK, &within)
			if !reflect.DeepEqual(resultIDs(within), wantWithin.IDs()) {
				t.Errorf("within ids %v, want %v", resultIDs(within), wantWithin.IDs())
			}
		})
	}
}

// Malformed parameters are 400s with a JSON error body; health and stats
// endpoints report server state.
func TestEndpointValidationAndHealth(t *testing.T) {
	handlers, _ := testServers(t)
	ts := httptest.NewServer(handlers["memory"])
	defer ts.Close()

	bad := []string{
		"/skyline",                    // missing edge
		"/skyline?edge=xyz",           // non-numeric edge
		"/skyline?edge=1&t=1.5",       // t out of range
		"/skyline?edge=1&engine=warp", // unknown engine
		"/topk?edge=1&k=zero",         // bad k
		"/topk?edge=1&weights=1,2",    // wrong arity (d=3)
		"/within?edge=1",              // missing budget
		"/within?edge=1&budget=1,2",   // wrong arity
		"/nearest?edge=1&cost=9",      // cost index out of range (core error)
		"/topk?edge=999999&t=0.5",     // unknown edge (query error)
	}
	for _, path := range bad {
		var e wire.Error
		getJSON(t, ts, path, http.StatusBadRequest, &e)
		if e.Error == "" {
			t.Errorf("GET %s: empty error body", path)
		}
	}

	var health map[string]any
	getJSON(t, ts, "/healthz", http.StatusOK, &health)
	if health["status"] != "ok" || health["cost_types"].(float64) != 3 {
		t.Errorf("healthz = %v", health)
	}

	var stats map[string]any
	getJSON(t, ts, "/stats", http.StatusOK, &stats)
	if _, ok := stats["completed"]; !ok {
		t.Errorf("stats missing counters: %v", stats)
	}
}

// Query errors map to statuses by fault domain: cancellation is 503, panics
// and storage faults are 500 with internals kept out of the message, and
// validation errors are the caller's 400.
func TestClassifyError(t *testing.T) {
	cases := []struct {
		err    error
		status int
		msg    string
	}{
		{context.Canceled, http.StatusServiceUnavailable, context.Canceled.Error()},
		{fmt.Errorf("engine: queued query aborted: %w", context.DeadlineExceeded),
			http.StatusServiceUnavailable, "engine: queued query aborted: context deadline exceeded"},
		{fmt.Errorf("storage: read page 7: disk gone"), http.StatusInternalServerError, "storage failure"},
		{fmt.Errorf("core: top-k requires k >= 1, got 0"), http.StatusBadRequest, "core: top-k requires k >= 1, got 0"},
	}
	for _, c := range cases {
		status, msg := classifyError(c.err)
		if status != c.status || msg != c.msg {
			t.Errorf("classifyError(%v) = %d %q, want %d %q", c.err, status, msg, c.status, c.msg)
		}
	}

	// A panicking query surfaces as a generic 500, not a 400 with internals.
	g, err := mcn.Synthetic(mcn.SyntheticConfig{Nodes: 300, Facilities: 40, D: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	exec := mcn.FromGraph(g).NewExecutor(mcn.ExecutorConfig{Workers: 1})
	resp := exec.Do(context.Background(), mcn.TopKRequest(mcn.Location{Edge: 0, T: 0.5}, nil, 2))
	if !mcn.IsQueryPanic(resp.Err) {
		t.Fatalf("nil aggregate did not register as a panic: %v", resp.Err)
	}
	status, msg := classifyError(resp.Err)
	if status != http.StatusInternalServerError || msg != "internal query failure" {
		t.Errorf("panic classified as %d %q", status, msg)
	}
}

// The server must answer overlapping requests correctly (run with -race):
// many goroutines hammer one handler over a shared network.
func TestServerConcurrentRequests(t *testing.T) {
	handlers, ref := testServers(t)
	for name, h := range handlers {
		t.Run(name, func(t *testing.T) {
			ts := httptest.NewServer(h)
			defer ts.Close()

			locs := []mcn.Location{{Edge: 3, T: 0.5}, {Edge: 40, T: 0.1}, {Edge: 77, T: 0.9}}
			want := make([][]mcn.FacilityID, len(locs))
			for i, loc := range locs {
				res, err := ref.TopK(ctx, loc, mcn.WeightedSum(1, 1, 1), 3)
				if err != nil {
					t.Fatal(err)
				}
				want[i] = res.IDs()
			}

			var wg sync.WaitGroup
			for w := 0; w < 12; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for r := 0; r < 5; r++ {
						i := (w + r) % len(locs)
						resp, err := ts.Client().Get(fmt.Sprintf("%s/topk?edge=%d&t=%g&k=3",
							ts.URL, locs[i].Edge, locs[i].T))
						if err != nil {
							t.Error(err)
							return
						}
						var res wire.Result
						err = json.NewDecoder(resp.Body).Decode(&res)
						resp.Body.Close()
						if err != nil || resp.StatusCode != http.StatusOK {
							t.Errorf("status %d err %v", resp.StatusCode, err)
							return
						}
						if !reflect.DeepEqual(resultIDs(res), want[i]) {
							t.Errorf("loc %d: concurrent %v != sequential %v", i, resultIDs(res), want[i])
							return
						}
					}
				}(w)
			}
			wg.Wait()
		})
	}
}

// TestPprofEndpoints: profiling routes exist only on the opt-in handler.
func TestPprofEndpoints(t *testing.T) {
	g, err := mcn.Synthetic(mcn.SyntheticConfig{Nodes: 600, Facilities: 50, D: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(mcn.FromGraph(g), Config{Workers: 2, Timeout: time.Minute})

	plain := httptest.NewServer(srv.Handler())
	defer plain.Close()
	resp, err := plain.Client().Get(plain.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("default handler serves /debug/pprof/ with %d, want 404", resp.StatusCode)
	}

	profiled := httptest.NewServer(srv.ProfiledHandler())
	defer profiled.Close()
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/debug/pprof/symbol"} {
		resp, err := profiled.Client().Get(profiled.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("profiled handler %s = %d, want 200", path, resp.StatusCode)
		}
	}
	// The query endpoints must still work with profiling enabled.
	resp, err = profiled.Client().Get(profiled.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("profiled handler /healthz = %d, want 200", resp.StatusCode)
	}
}
