// Overlay separates immutable topology from mutable metric, the way
// customizable route planning (CRP) separates its preprocessing phases: one
// CSR compilation of the network's adjacency, facility and edge-record
// arrays is shared by any number of cost intervals, each holding only a
// dense cost matrix of |E|·d float64s. This is the fast path for
// time-dependent preference queries: where the snapshot path rebuilds a
// graph.Graph (nodes, edges, facility indexes) for every interval it
// touches, an overlay resolves an interval to a prebuilt View with one
// pointer read — no rebuild, no allocation — and every View serves the same
// zero-copy CSR rows through the expand.Source seam.
package flat

import (
	"fmt"

	"mcn/internal/graph"
	"mcn/internal/vec"
)

// Overlay is one compiled CSR topology shared by K per-interval cost
// vectors. It is immutable after NewOverlay and safe for any number of
// concurrent readers; distinct intervals may be queried concurrently.
type Overlay struct {
	base  *Source
	views []View
}

// View binds the shared topology to one interval's cost vector: an
// expand.Source whose adjacency rows are the overlay's shared zero-copy
// slices and whose cost lookups index the interval's matrix (it implements
// expand.EdgeCoster). The AdjEntry rows returned by Adjacency carry the
// base compilation's W slices, which expansions ignore in favour of
// EdgeCost; EdgeInfo, by contrast, is patched to the interval's costs, so
// query seeding and point probes see the effective metric.
type View struct {
	base *Source
	d    int
	// costs holds edge e's effective vector at costs[e*d : (e+1)*d].
	costs []float64
}

// NewOverlay compiles g's topology once and attaches intervals cost
// vectors: costsAt(k, e) must return edge e's effective cost vector during
// interval k (it may return shared slices; NewOverlay copies). Every vector
// must have g.D() components, all finite and non-negative.
func NewOverlay(g *graph.Graph, intervals int, costsAt func(interval int, e graph.EdgeID) vec.Costs) (*Overlay, error) {
	if intervals < 1 {
		return nil, fmt.Errorf("flat: overlay needs at least one interval, got %d", intervals)
	}
	o := &Overlay{base: Compile(g)}
	d, e := g.D(), g.NumEdges()
	o.views = make([]View, intervals)
	for k := range o.views {
		m := make([]float64, e*d)
		for i := 0; i < e; i++ {
			w := costsAt(k, graph.EdgeID(i))
			if len(w) != d {
				return nil, fmt.Errorf("flat: interval %d edge %d: %d cost components, want %d", k, i, len(w), d)
			}
			if err := w.Validate(); err != nil {
				return nil, fmt.Errorf("flat: interval %d edge %d: %w", k, i, err)
			}
			if !w.Complete() {
				return nil, fmt.Errorf("flat: interval %d edge %d: unknown cost component", k, i)
			}
			copy(m[i*d:(i+1)*d], w)
		}
		o.views[k] = View{base: o.base, d: d, costs: m}
	}
	return o, nil
}

// Base returns the shared CSR compilation (base-interval costs).
func (o *Overlay) Base() *Source { return o.base }

// NumIntervals returns the number of compiled cost intervals.
func (o *Overlay) NumIntervals() int { return len(o.views) }

// Interval returns the prebuilt View of interval k. Switching intervals is
// this pointer read; the View is shared and must be treated as read-only.
func (o *Overlay) Interval(k int) *View {
	return &o.views[k]
}

// D implements expand.Source.
func (v *View) D() int { return v.d }

// Directed implements expand.Source.
func (v *View) Directed() bool { return v.base.Directed() }

// NumNodes implements expand.Sized.
func (v *View) NumNodes() int { return v.base.NumNodes() }

// NumEdges returns the edge count.
func (v *View) NumEdges() int { return v.base.NumEdges() }

// NumFacilities implements expand.Sized.
func (v *View) NumFacilities() int { return v.base.NumFacilities() }

// ZeroCopyRecords implements expand.ZeroCopy: every record request is a
// shared sub-slice of the one compiled topology.
func (v *View) ZeroCopyRecords() bool { return true }

// EdgeCost implements expand.EdgeCoster: edge e's effective cost under cost
// type costIdx during this view's interval. One multiply-add index into the
// interval matrix — the pointer-swap half of the overlay contract.
func (v *View) EdgeCost(e graph.EdgeID, costIdx int) float64 {
	return v.costs[int(e)*v.d+costIdx]
}

// EdgeCosts returns edge e's effective cost vector as a read-only view into
// the interval matrix.
func (v *View) EdgeCosts(e graph.EdgeID) (vec.Costs, error) {
	if int(e) >= v.base.NumEdges() {
		return nil, fmt.Errorf("flat: edge %d out of range", e)
	}
	i := int(e) * v.d
	return vec.Costs(v.costs[i : i+v.d : i+v.d]), nil
}

// Adjacency implements expand.Source. The returned rows are the topology
// compilation's shared slices; their W fields hold base-interval costs and
// are superseded by EdgeCost (expansions consult it whenever the source
// implements expand.EdgeCoster).
func (v *View) Adjacency(n graph.NodeID) ([]graph.AdjEntry, error) {
	return v.base.Adjacency(n)
}

// Facilities implements expand.Source; facility records are time-invariant.
func (v *View) Facilities(facRef uint64, count int) ([]graph.FacEntry, error) {
	return v.base.Facilities(facRef, count)
}

// FacilityEdge implements expand.Source.
func (v *View) FacilityEdge(p graph.FacilityID) (graph.EdgeID, error) {
	return v.base.FacilityEdge(p)
}

// EdgeInfo implements expand.Source, with W patched to this interval's
// effective costs (the record is returned by value, so the shared edge
// table is untouched and the call stays allocation-free).
func (v *View) EdgeInfo(e graph.EdgeID) (graph.EdgeInfo, error) {
	info, err := v.base.EdgeInfo(e)
	if err != nil {
		return graph.EdgeInfo{}, err
	}
	i := int(e) * v.d
	info.W = vec.Costs(v.costs[i : i+v.d : i+v.d])
	return info, nil
}
