package flat

import (
	"fmt"
	"testing"

	"mcn/internal/core"
	"mcn/internal/expand"
	"mcn/internal/gen"
	"mcn/internal/graph"
	"mcn/internal/vec"
)

// Compile-time checks: every overlay view serves the full fast-path
// capability set — Source, dense id spaces, zero-copy records and the
// cost-overlay hook.
var (
	_ expand.Sized      = (*View)(nil)
	_ expand.ZeroCopy   = (*View)(nil)
	_ expand.EdgeCoster = (*View)(nil)
)

func overlayGraph(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(2, false)
	n0 := b.AddNode(0, 0)
	n1 := b.AddNode(1, 0)
	n2 := b.AddNode(2, 0)
	e0 := b.AddEdge(n0, n1, vec.Of(2, 1))
	b.AddEdge(n1, n2, vec.Of(5, 3))
	b.AddFacility(e0, 0.5)
	return b.MustBuild()
}

func TestOverlayIntervalCosts(t *testing.T) {
	g := overlayGraph(t)
	// Interval k scales every cost by k+1.
	ov, err := NewOverlay(g, 3, func(k int, e graph.EdgeID) vec.Costs {
		w := g.Edge(e).W
		out := make(vec.Costs, len(w))
		for i := range w {
			out[i] = w[i] * float64(k+1)
		}
		return out
	})
	if err != nil {
		t.Fatal(err)
	}
	if ov.NumIntervals() != 3 {
		t.Fatalf("NumIntervals = %d, want 3", ov.NumIntervals())
	}
	for k := 0; k < 3; k++ {
		v := ov.Interval(k)
		for e := 0; e < g.NumEdges(); e++ {
			id := graph.EdgeID(e)
			for i := 0; i < g.D(); i++ {
				want := g.Edge(id).W[i] * float64(k+1)
				if got := v.EdgeCost(id, i); got != want {
					t.Errorf("interval %d EdgeCost(%d, %d) = %g, want %g", k, e, i, got, want)
				}
			}
			info, err := v.EdgeInfo(id)
			if err != nil {
				t.Fatal(err)
			}
			wc, err := v.EdgeCosts(id)
			if err != nil {
				t.Fatal(err)
			}
			if !info.W.Equal(wc) {
				t.Errorf("interval %d edge %d: EdgeInfo.W %v != EdgeCosts %v", k, e, info.W, wc)
			}
			base, err := ov.Base().EdgeInfo(id)
			if err != nil {
				t.Fatal(err)
			}
			if info.U != base.U || info.V != base.V || info.FacRef != base.FacRef || info.FacCount != base.FacCount {
				t.Errorf("interval %d edge %d: topology fields diverge from base", k, e)
			}
		}
	}
	// Shared topology: every view's adjacency rows are the same backing
	// slices as the base compilation's.
	for v := 0; v < g.NumNodes(); v++ {
		baseRows, err := ov.Base().Adjacency(graph.NodeID(v))
		if err != nil {
			t.Fatal(err)
		}
		viewRows, err := ov.Interval(2).Adjacency(graph.NodeID(v))
		if err != nil {
			t.Fatal(err)
		}
		if len(baseRows) != len(viewRows) {
			t.Fatalf("node %d: row lengths differ", v)
		}
		if len(baseRows) > 0 && &baseRows[0] != &viewRows[0] {
			t.Fatalf("node %d: view adjacency is not the shared base slice", v)
		}
	}
}

func TestOverlayRejectsBadCosts(t *testing.T) {
	g := overlayGraph(t)
	for name, costsAt := range map[string]func(int, graph.EdgeID) vec.Costs{
		"wrong-dim": func(int, graph.EdgeID) vec.Costs { return vec.Of(1) },
		"negative":  func(int, graph.EdgeID) vec.Costs { return vec.Of(-1, 1) },
		"unknown":   func(int, graph.EdgeID) vec.Costs { return vec.New(2) },
	} {
		if _, err := NewOverlay(g, 1, costsAt); err == nil {
			t.Errorf("%s cost vector accepted", name)
		}
	}
	if _, err := NewOverlay(g, 0, nil); err == nil {
		t.Error("zero intervals accepted")
	}
}

// Queries over an overlay view must match queries over a materialised graph
// carrying the same scaled costs — the view is a full expand.Source, so the
// core algorithms (both engines, pooled scratch, shrinking-stage filters)
// must not be able to tell the two apart.
func TestOverlayQueryEquivalence(t *testing.T) {
	inst, err := gen.MakeInstance(gen.InstanceConfig{
		Nodes: 250, Facilities: 40, Clusters: 3, D: 3, Queries: 3,
		Seed: 9, IntegerCosts: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := inst.Graph
	scale := func(k int, e graph.EdgeID) vec.Costs {
		w := g.Edge(e).W
		out := make(vec.Costs, len(w))
		for i := range w {
			out[i] = w[i] * float64(k+1)
		}
		return out
	}
	ov, err := NewOverlay(g, 3, scale)
	if err != nil {
		t.Fatal(err)
	}
	pool := expand.NewPool(ov.Interval(0))
	agg := vec.NewWeighted(1, 0.5, 0.25)
	for k := 0; k < ov.NumIntervals(); k++ {
		// Reference: the same scaled costs baked into a fresh graph.
		b := graph.NewBuilder(g.D(), g.Directed())
		for v := 0; v < g.NumNodes(); v++ {
			node := g.Node(graph.NodeID(v))
			b.AddNode(node.X, node.Y)
		}
		for e := 0; e < g.NumEdges(); e++ {
			edge := g.Edge(graph.EdgeID(e))
			b.AddEdge(edge.U, edge.V, scale(k, graph.EdgeID(e)))
		}
		for f := 0; f < g.NumFacilities(); f++ {
			fac := g.Facility(graph.FacilityID(f))
			b.AddFacility(fac.Edge, fac.T)
		}
		ref := expand.NewMemorySource(b.MustBuild())

		view := ov.Interval(k)
		for qi, loc := range inst.Queries {
			wantSky, err := core.Skyline(ref, loc, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			wantTop, err := core.TopK(ref, loc, agg, 4, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			for _, eng := range []core.Engine{core.LSA, core.CEA} {
				sc := pool.Get()
				gotSky, err := core.Skyline(view, loc, core.Options{Engine: eng, Scratch: sc})
				if err != nil {
					t.Fatal(err)
				}
				sameFacilities(t, fmt.Sprintf("interval %d q%d skyline %v", k, qi, eng),
					gotSky.Facilities, wantSky.Facilities)
				sc.Reset()
				gotTop, err := core.TopK(view, loc, agg, 4, core.Options{Engine: eng, Scratch: sc})
				if err != nil {
					t.Fatal(err)
				}
				sameFacilities(t, fmt.Sprintf("interval %d q%d topk %v", k, qi, eng),
					gotTop.Facilities, wantTop.Facilities)
				pool.Put(sc)
			}
		}
	}
}

// Interval resolution plus record access must be allocation-free: the whole
// point of the overlay is that switching intervals is a pointer read.
func TestOverlayAccessAllocFree(t *testing.T) {
	g := overlayGraph(t)
	ov, err := NewOverlay(g, 4, func(k int, e graph.EdgeID) vec.Costs { return g.Edge(e).W })
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		for k := 0; k < ov.NumIntervals(); k++ {
			v := ov.Interval(k)
			if _, err := v.Adjacency(0); err != nil {
				t.Fatal(err)
			}
			if _, err := v.EdgeInfo(0); err != nil {
				t.Fatal(err)
			}
			_ = v.EdgeCost(0, 1)
		}
	})
	if allocs != 0 {
		t.Fatalf("interval switch + record access allocates %.0f/run, want 0", allocs)
	}
}
