package flat

import (
	"testing"

	"mcn/internal/expand"
	"mcn/internal/gen"
	"mcn/internal/graph"
)

func testInstance(t testing.TB, directed bool, seed int64) *gen.Instance {
	t.Helper()
	inst, err := gen.MakeInstance(gen.InstanceConfig{
		Nodes:      300,
		Facilities: 60,
		Clusters:   4,
		D:          3,
		Queries:    4,
		Directed:   directed,
		Seed:       seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

// TestCompileMatchesMemorySource asserts the CSR arrays reproduce, record by
// record, exactly what MemorySource serves.
func TestCompileMatchesMemorySource(t *testing.T) {
	for _, directed := range []bool{false, true} {
		inst := testInstance(t, directed, 7)
		g := inst.Graph
		mem := expand.NewMemorySource(g)
		fs := Compile(g)

		if fs.D() != mem.D() || fs.Directed() != mem.Directed() {
			t.Fatalf("directed=%v: D/Directed mismatch", directed)
		}
		if fs.NumNodes() != g.NumNodes() || fs.NumEdges() != g.NumEdges() || fs.NumFacilities() != g.NumFacilities() {
			t.Fatalf("directed=%v: size mismatch", directed)
		}

		for v := 0; v < g.NumNodes(); v++ {
			want, err := mem.Adjacency(graph.NodeID(v))
			if err != nil {
				t.Fatal(err)
			}
			got, err := fs.Adjacency(graph.NodeID(v))
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("node %d: %d arcs, want %d", v, len(got), len(want))
			}
			for i := range want {
				if got[i].Neighbor != want[i].Neighbor || got[i].Edge != want[i].Edge ||
					got[i].Forward != want[i].Forward || got[i].FacRef != want[i].FacRef ||
					got[i].FacCount != want[i].FacCount || !got[i].W.Equal(want[i].W) {
					t.Fatalf("node %d arc %d: %+v, want %+v", v, i, got[i], want[i])
				}
			}
		}

		for e := 0; e < g.NumEdges(); e++ {
			id := graph.EdgeID(e)
			wantInfo, err := mem.EdgeInfo(id)
			if err != nil {
				t.Fatal(err)
			}
			gotInfo, err := fs.EdgeInfo(id)
			if err != nil {
				t.Fatal(err)
			}
			if gotInfo.U != wantInfo.U || gotInfo.V != wantInfo.V || gotInfo.FacRef != wantInfo.FacRef ||
				gotInfo.FacCount != wantInfo.FacCount || !gotInfo.W.Equal(wantInfo.W) {
				t.Fatalf("edge %d: %+v, want %+v", e, gotInfo, wantInfo)
			}
			want, err := mem.Facilities(wantInfo.FacRef, wantInfo.FacCount)
			if err != nil {
				t.Fatal(err)
			}
			got, err := fs.Facilities(gotInfo.FacRef, gotInfo.FacCount)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("edge %d: %d facilities, want %d", e, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("edge %d facility %d: %+v, want %+v", e, i, got[i], want[i])
				}
			}
		}

		for p := 0; p < g.NumFacilities(); p++ {
			want, err := mem.FacilityEdge(graph.FacilityID(p))
			if err != nil {
				t.Fatal(err)
			}
			got, err := fs.FacilityEdge(graph.FacilityID(p))
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("facility %d edge: %d, want %d", p, got, want)
			}
		}
	}
}

func TestOutOfRangeErrors(t *testing.T) {
	fs := Compile(testInstance(t, false, 3).Graph)
	if _, err := fs.Adjacency(graph.NodeID(fs.NumNodes())); err == nil {
		t.Error("Adjacency out of range: no error")
	}
	if _, err := fs.EdgeInfo(graph.EdgeID(fs.NumEdges())); err == nil {
		t.Error("EdgeInfo out of range: no error")
	}
	if _, err := fs.Facilities(uint64(fs.NumEdges()), 1); err == nil {
		t.Error("Facilities out of range: no error")
	}
	if _, err := fs.FacilityEdge(graph.FacilityID(fs.NumFacilities())); err == nil {
		t.Error("FacilityEdge out of range: no error")
	}
	if facs, err := fs.Facilities(graph.NoFacRef, 0); err != nil || facs != nil {
		t.Errorf("Facilities(NoFacRef) = %v, %v; want nil, nil", facs, err)
	}
}

// drain steps the expansion to exhaustion and returns (pops, steps).
func drain(t testing.TB, x *expand.Expansion) (pops, steps int) {
	t.Helper()
	for {
		ev, _, _, err := x.Step()
		if err != nil {
			t.Fatal(err)
		}
		if ev == expand.EventExhausted {
			return pops, steps
		}
		steps++
		if ev == expand.EventFacility {
			pops++
		}
	}
}

// TestFlatPopLoopZeroAlloc proves the acceptance criterion: with a warmed
// scratch, the steady-state expansion pop loop over a flat source performs
// zero allocations per step. The only allocations left per whole expansion
// are the Expansion struct and the variadic option slice — a constant that
// does not grow with the number of steps.
func TestFlatPopLoopZeroAlloc(t *testing.T) {
	inst := testInstance(t, false, 11)
	fs := Compile(inst.Graph)
	pool := expand.NewPool(fs)
	if pool == nil {
		t.Fatal("NewPool returned nil for a flat source")
	}
	sc := pool.Get()
	defer pool.Put(sc)
	loc := inst.Queries[0]
	withScratch := expand.WithScratch(sc)

	// Warm-up run: grows the heap backing and the dense state arrays once.
	sc.Reset()
	x, err := expand.New(fs, 0, loc, withScratch)
	if err != nil {
		t.Fatal(err)
	}
	_, steps := drain(t, x)
	if steps < 100 {
		t.Fatalf("instance too small for a meaningful measurement: %d steps", steps)
	}

	var stepErr error
	allocs := testing.AllocsPerRun(10, func() {
		sc.Reset()
		x, err := expand.New(fs, 0, loc, withScratch)
		if err != nil {
			stepErr = err
			return
		}
		for {
			ev, _, _, err := x.Step()
			if err != nil {
				stepErr = err
				return
			}
			if ev == expand.EventExhausted {
				return
			}
		}
	})
	if stepErr != nil {
		t.Fatal(stepErr)
	}
	// The per-expansion constant (Expansion struct + options slice) is ≤ 4
	// allocations; with hundreds of steps per run, anything above that means
	// the pop loop itself allocates.
	if allocs > 4 {
		t.Errorf("full expansion over warmed scratch allocated %.1f times (%d steps); pop loop is not alloc-free", allocs, steps)
	}
	if perStep := allocs / float64(steps); perStep > 0.01 {
		t.Errorf("pop loop allocates %.4f/step, want 0", perStep)
	}
}

// TestScratchReuseAcrossQueries runs many queries through one pooled scratch
// and checks each against a fresh map-state expansion: generation stamping
// must fully isolate queries from each other's leftovers.
func TestScratchReuseAcrossQueries(t *testing.T) {
	inst := testInstance(t, false, 13)
	fs := Compile(inst.Graph)
	mem := expand.NewMemorySource(inst.Graph)
	pool := expand.NewPool(fs)
	for round := 0; round < 3; round++ {
		for _, loc := range inst.Queries {
			for cost := 0; cost < fs.D(); cost++ {
				sc := pool.Get()
				xf, err := expand.New(fs, cost, loc, expand.WithScratch(sc))
				if err != nil {
					t.Fatal(err)
				}
				xm, err := expand.New(mem, cost, loc)
				if err != nil {
					t.Fatal(err)
				}
				for {
					pf, cf, okf, err := xf.Next()
					if err != nil {
						t.Fatal(err)
					}
					pm, cm, okm, err := xm.Next()
					if err != nil {
						t.Fatal(err)
					}
					if okf != okm || pf != pm || cf != cm {
						t.Fatalf("round %d cost %d: flat (%d, %g, %v) != map (%d, %g, %v)",
							round, cost, pf, cf, okf, pm, cm, okm)
					}
					if !okf {
						break
					}
				}
				pool.Put(sc)
			}
		}
	}
}

// BenchmarkExpansion measures the pop loop alone — one full expansion to
// exhaustion per iteration, no skyline/top-k driver on top — for the
// hash-map source, the flat source with map state, and the flat source with
// pooled dense state.
func BenchmarkExpansion(b *testing.B) {
	inst, err := gen.MakeInstance(gen.InstanceConfig{
		Nodes:      4_000,
		Facilities: 800,
		Clusters:   4,
		D:          3,
		Queries:    4,
		Seed:       5,
	})
	if err != nil {
		b.Fatal(err)
	}
	g := inst.Graph
	loc := inst.Queries[0]
	mem := expand.NewMemorySource(g)
	fs := Compile(g)
	pool := expand.NewPool(fs)

	run := func(b *testing.B, src expand.Source, sc *expand.Scratch) {
		b.Helper()
		b.ReportAllocs()
		steps := 0
		for i := 0; i < b.N; i++ {
			if sc != nil {
				sc.Reset()
			}
			x, err := expand.New(src, i%g.D(), loc, expand.WithScratch(sc))
			if err != nil {
				b.Fatal(err)
			}
			for {
				ev, _, _, err := x.Step()
				if err != nil {
					b.Fatal(err)
				}
				if ev == expand.EventExhausted {
					break
				}
				steps++
			}
		}
		b.ReportMetric(float64(steps)/float64(b.N), "steps/op")
	}

	b.Run("map-source", func(b *testing.B) { run(b, mem, nil) })
	b.Run("flat-mapstate", func(b *testing.B) { run(b, fs, nil) })
	b.Run("flat-dense", func(b *testing.B) {
		sc := pool.Get()
		defer pool.Put(sc)
		run(b, fs, sc)
	})
}
