package flat

import (
	"testing"

	"mcn/internal/core"
	"mcn/internal/expand"
	"mcn/internal/vec"
)

// TestQueryAllocsWithScratch verifies the shrinking-stage satellite of the
// v2 API work: with a warmed scratch, a whole in-memory skyline or top-k
// query must not allocate its edge filter — the dense epoch-stamped EdgeSet
// replaces the per-query map[EdgeID]bool — and total per-query allocations
// must stay strictly below the map-state baseline. The residual allocations
// are the per-facility tracked structs and the result (the next ROADMAP
// item), so the bound asserts "filter-free", not absolute zero.
func TestQueryAllocsWithScratch(t *testing.T) {
	inst := testInstance(t, false, 17)
	fs := Compile(inst.Graph)
	mem := expand.NewMemorySource(inst.Graph)
	loc := inst.Queries[0]
	coef := make([]float64, inst.Graph.D())
	for i := range coef {
		coef[i] = 1
	}
	agg := vec.NewWeighted(coef...)
	sc := expand.NewScratch(fs.NumNodes(), fs.NumEdges(), fs.NumFacilities())

	runs := func(opt core.Options, topk bool) func() {
		return func() {
			sc.Reset()
			var err error
			if topk {
				_, err = core.TopK(fs, loc, agg, 4, opt)
			} else {
				_, err = core.Skyline(fs, loc, opt)
			}
			if err != nil {
				t.Fatal(err)
			}
		}
	}

	for _, tc := range []struct {
		name string
		topk bool
	}{{"skyline", false}, {"topk", true}} {
		t.Run(tc.name, func(t *testing.T) {
			// Warm the scratch (grows states, heap backing, edge set once).
			runs(core.Options{Scratch: sc}, tc.topk)()

			withScratch := testing.AllocsPerRun(20, runs(core.Options{Scratch: sc}, tc.topk))
			base := testing.AllocsPerRun(20, func() {
				var err error
				if tc.topk {
					_, err = core.TopK(mem, loc, agg, 4, core.Options{})
				} else {
					_, err = core.Skyline(mem, loc, core.Options{})
				}
				if err != nil {
					t.Fatal(err)
				}
			})
			t.Logf("%s allocs/query: scratch+flat %.0f, map-state %.0f", tc.name, withScratch, base)
			if withScratch >= base {
				t.Errorf("%s with dense scratch allocates %.0f/query, not below map baseline %.0f",
					tc.name, withScratch, base)
			}
			// The dominant remaining allocations are tracked structs + cost
			// vectors + result building; the Dijkstra state, the heap and the
			// edge filter must all come from the scratch. An instance with
			// hundreds of nodes stays under this bound only if none of those
			// allocate per node/edge/pop.
			if lim := 16 + 6*float64(inst.Graph.NumFacilities()); withScratch > lim {
				t.Errorf("%s with dense scratch allocates %.0f/query (> %.0f): per-step state is leaking allocations",
					tc.name, withScratch, lim)
			}
		})
	}
}
