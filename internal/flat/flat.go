// Package flat compiles an in-memory graph.Graph into compressed-sparse-row
// (CSR) arrays served through the expand.Source seam with zero per-call
// allocation. It is the in-memory fast path of the library: where
// expand.MemorySource rebuilds each adjacency row — including per-arc
// facility lookups — on every Adjacency call, a flat.Source resolves
// everything once at compile time and answers every record request with a
// shared read-only sub-slice of one contiguous array.
//
// The layout mirrors the paper's adjacency/facility files (Fig. 2), but as
// offset-indexed arrays instead of paged B+-trees:
//
//	adjOff[v] : adjOff[v+1]  → the prebuilt AdjEntry row of node v
//	facOff[e] : facOff[e+1]  → the FacEntry row of edge e
//	edgeInfo[e]              → the resolved EdgeInfo of edge e
//	facEdge[p]               → the edge facility p lies on
//
// flat.Source additionally implements expand.Sized (dense id spaces, so
// expansions can use array-backed Dijkstra state from an expand.Pool) and
// expand.ZeroCopy (records are free to re-fetch, so CEA's per-query record
// memo is skipped — LSA and CEA are identical over a flat source, as the
// sharing CEA exists to provide costs nothing here).
//
// Deliberately, flat.Source does not count accesses: atomic counters on the
// hot path would bounce one cache line between every worker of a concurrent
// engine. Use expand.MemorySource when asserting access patterns.
package flat

import (
	"fmt"

	"mcn/internal/graph"
)

// Source is a CSR compilation of an in-memory multi-cost network. It is
// immutable after Compile and safe for any number of concurrent readers.
type Source struct {
	d        int
	directed bool
	numFacs  int

	adjOff  []int32          // len nodes+1; CSR offsets into adjRows
	adjRows []graph.AdjEntry // prebuilt adjacency entries, grouped by tail node
	facOff  []int32          // len edges+1; CSR offsets into facRows
	facRows []graph.FacEntry // facility entries grouped by edge, sorted by T
	edges   []graph.EdgeInfo // resolved edge records
	facEdge []graph.EdgeID   // edge of each facility
}

// Compile builds the CSR representation of g. The cost-vector slices inside
// the returned entries are shared with g; both must be treated as read-only
// (graph.Graph is immutable by construction).
func Compile(g *graph.Graph) *Source {
	n, e, p := g.NumNodes(), g.NumEdges(), g.NumFacilities()
	s := &Source{
		d:        g.D(),
		directed: g.Directed(),
		numFacs:  p,
		adjOff:   make([]int32, n+1),
		facOff:   make([]int32, e+1),
		edges:    make([]graph.EdgeInfo, e),
		facEdge:  make([]graph.EdgeID, p),
	}

	totalFacs := 0
	for i := 0; i < e; i++ {
		totalFacs += len(g.EdgeFacilities(graph.EdgeID(i)))
	}
	s.facRows = make([]graph.FacEntry, 0, totalFacs)
	for i := 0; i < e; i++ {
		id := graph.EdgeID(i)
		s.facOff[i] = int32(len(s.facRows))
		for _, f := range g.EdgeFacilities(id) {
			s.facRows = append(s.facRows, graph.FacEntry{ID: f, T: g.Facility(f).T})
		}
		edge := g.Edge(id)
		ref, count := facRef(g, id)
		s.edges[i] = graph.EdgeInfo{U: edge.U, V: edge.V, W: edge.W, FacRef: ref, FacCount: count}
	}
	s.facOff[e] = int32(len(s.facRows))

	totalArcs := 0
	for v := 0; v < n; v++ {
		totalArcs += g.Degree(graph.NodeID(v))
	}
	s.adjRows = make([]graph.AdjEntry, 0, totalArcs)
	for v := 0; v < n; v++ {
		s.adjOff[v] = int32(len(s.adjRows))
		for _, a := range g.Arcs(graph.NodeID(v)) {
			ref, count := facRef(g, a.Edge)
			s.adjRows = append(s.adjRows, graph.AdjEntry{
				Neighbor: a.Neighbor,
				Edge:     a.Edge,
				Forward:  a.Forward,
				W:        g.Edge(a.Edge).W,
				FacRef:   ref,
				FacCount: count,
			})
		}
	}
	s.adjOff[n] = int32(len(s.adjRows))

	for i := 0; i < p; i++ {
		s.facEdge[i] = g.Facility(graph.FacilityID(i)).Edge
	}
	return s
}

// facRef matches MemorySource's record-reference convention: the edge id
// itself, or NoFacRef for facility-free edges.
func facRef(g *graph.Graph, e graph.EdgeID) (uint64, int) {
	count := len(g.EdgeFacilities(e))
	if count == 0 {
		return graph.NoFacRef, 0
	}
	return uint64(e), count
}

// D implements expand.Source.
func (s *Source) D() int { return s.d }

// Directed implements expand.Source.
func (s *Source) Directed() bool { return s.directed }

// NumNodes implements expand.Sized.
func (s *Source) NumNodes() int { return len(s.adjOff) - 1 }

// NumEdges returns the edge count.
func (s *Source) NumEdges() int { return len(s.edges) }

// NumFacilities implements expand.Sized.
func (s *Source) NumFacilities() int { return s.numFacs }

// ZeroCopyRecords implements expand.ZeroCopy.
func (s *Source) ZeroCopyRecords() bool { return true }

// Adjacency implements expand.Source. The returned slice is a read-only view
// into the compiled arrays: no allocation, no copying, shared by all
// callers.
func (s *Source) Adjacency(v graph.NodeID) ([]graph.AdjEntry, error) {
	if int(v) >= len(s.adjOff)-1 {
		return nil, fmt.Errorf("flat: node %d out of range", v)
	}
	return s.adjRows[s.adjOff[v]:s.adjOff[v+1]], nil
}

// Facilities implements expand.Source; facRef is the edge id, as with
// MemorySource. The returned slice is a shared read-only view.
func (s *Source) Facilities(facRef uint64, count int) ([]graph.FacEntry, error) {
	if facRef == graph.NoFacRef || count == 0 {
		return nil, nil
	}
	e := graph.EdgeID(facRef)
	if int(e) >= len(s.edges) {
		return nil, fmt.Errorf("flat: facility ref %d out of range", facRef)
	}
	return s.facRows[s.facOff[e]:s.facOff[e+1]], nil
}

// FacilityEdge implements expand.Source.
func (s *Source) FacilityEdge(p graph.FacilityID) (graph.EdgeID, error) {
	if int(p) >= len(s.facEdge) {
		return 0, fmt.Errorf("flat: facility %d out of range", p)
	}
	return s.facEdge[p], nil
}

// EdgeInfo implements expand.Source.
func (s *Source) EdgeInfo(e graph.EdgeID) (graph.EdgeInfo, error) {
	if int(e) >= len(s.edges) {
		return graph.EdgeInfo{}, fmt.Errorf("flat: edge %d out of range", e)
	}
	return s.edges[e], nil
}
