package flat

import (
	"fmt"
	"testing"

	"mcn/internal/core"
	"mcn/internal/expand"
	"mcn/internal/gen"
	"mcn/internal/graph"
	"mcn/internal/vec"
)

// The equivalence suite: for seeded random graphs — directed and undirected,
// with small integer costs so exact cost ties are common — every query type
// must return byte-identical results over the flat CSR source (with and
// without pooled dense state, LSA and CEA) as over the reference
// MemorySource.

func sameFacilities(t *testing.T, label string, got, want []core.Facility) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d facilities, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID {
			t.Fatalf("%s: result %d id %d, want %d", label, i, got[i].ID, want[i].ID)
		}
		if !got[i].Costs.Equal(want[i].Costs) {
			t.Fatalf("%s: result %d (facility %d) costs %v, want %v",
				label, i, got[i].ID, got[i].Costs, want[i].Costs)
		}
		if got[i].Score != want[i].Score {
			t.Fatalf("%s: result %d (facility %d) score %g, want %g",
				label, i, got[i].ID, got[i].Score, want[i].Score)
		}
	}
}

// variant is one (source, engine, scratch) combination under test.
type variant struct {
	name    string
	src     expand.Source
	engine  core.Engine
	scratch bool
}

func runVariant(t *testing.T, v variant, pool *expand.Pool, run func(core.Options) (*core.Result, error)) *core.Result {
	t.Helper()
	opt := core.Options{Engine: v.engine}
	if v.scratch {
		sc := pool.Get()
		defer pool.Put(sc)
		opt.Scratch = sc
	}
	res, err := run(opt)
	if err != nil {
		t.Fatalf("%s: %v", v.name, err)
	}
	return res
}

func TestFlatEquivalence(t *testing.T) {
	for _, directed := range []bool{false, true} {
		for seed := int64(1); seed <= 4; seed++ {
			name := fmt.Sprintf("directed=%v/seed=%d", directed, seed)
			t.Run(name, func(t *testing.T) {
				inst, err := gen.MakeInstance(gen.InstanceConfig{
					Nodes:        250,
					Facilities:   50,
					Clusters:     3,
					D:            3,
					Queries:      4,
					Directed:     directed,
					Seed:         seed,
					IntegerCosts: 3, // [1,3] integer costs: exact ties everywhere
				})
				if err != nil {
					t.Fatal(err)
				}
				g := inst.Graph
				mem := expand.NewMemorySource(g)
				fs := Compile(g)
				pool := expand.NewPool(fs)
				variants := []variant{
					{"mem/CEA", mem, core.CEA, false},
					{"flat/LSA", fs, core.LSA, false},
					{"flat/LSA/scratch", fs, core.LSA, true},
					{"flat/CEA/scratch", fs, core.CEA, true},
				}
				agg := vec.NewWeighted(1, 0.5, 0.25)

				for qi, loc := range inst.Queries {
					// Budget for Within: wide enough to catch a handful of
					// facilities, derived from the reference source only.
					budget := make(vec.Costs, g.D())
					probe, err := core.Nearest(mem, loc, 0, 8, core.Options{})
					if err != nil {
						t.Fatal(err)
					}
					radius := 1.0
					if n := len(probe.Facilities); n > 0 {
						radius = probe.Facilities[n-1].Score * 1.5
					}
					for i := range budget {
						budget[i] = radius
					}

					type query struct {
						name string
						run  func(expand.Source, core.Options) (*core.Result, error)
					}
					queries := []query{
						{"skyline", func(s expand.Source, o core.Options) (*core.Result, error) {
							return core.Skyline(s, loc, o)
						}},
						{"topk", func(s expand.Source, o core.Options) (*core.Result, error) {
							return core.TopK(s, loc, agg, 4, o)
						}},
						{"nearest", func(s expand.Source, o core.Options) (*core.Result, error) {
							return core.Nearest(s, loc, qi%g.D(), 6, o)
						}},
						{"within", func(s expand.Source, o core.Options) (*core.Result, error) {
							return core.Within(s, loc, budget, o)
						}},
					}
					for _, q := range queries {
						want, err := q.run(mem, core.Options{Engine: core.LSA})
						if err != nil {
							t.Fatalf("q%d %s baseline: %v", qi, q.name, err)
						}
						for _, v := range variants {
							got := runVariant(t, v, pool, func(o core.Options) (*core.Result, error) {
								return q.run(v.src, o)
							})
							label := fmt.Sprintf("q%d %s %s", qi, q.name, v.name)
							sameFacilities(t, label, got.Facilities, want.Facilities)
							if got.Stats.Pops != want.Stats.Pops {
								t.Errorf("%s: %d pops, want %d", label, got.Stats.Pops, want.Stats.Pops)
							}
							if got.Stats.NodeExpansions != want.Stats.NodeExpansions {
								t.Errorf("%s: %d node expansions, want %d",
									label, got.Stats.NodeExpansions, want.Stats.NodeExpansions)
							}
						}
					}
				}
			})
		}
	}
}

// TestFlatEquivalenceTieEdges drives the tie semantics directly: facilities
// at identical positions on the same edge and parallel equal-cost paths.
func TestFlatEquivalenceTieEdges(t *testing.T) {
	for _, directed := range []bool{false, true} {
		b := graph.NewBuilder(2, directed)
		n := make([]graph.NodeID, 6)
		for i := range n {
			n[i] = b.AddNode(float64(i), 0)
		}
		// Diamond with equal-cost parallel paths plus a tail.
		e01 := b.AddEdge(n[0], n[1], vec.Of(1, 2))
		b.AddEdge(n[0], n[2], vec.Of(1, 2))
		b.AddEdge(n[1], n[3], vec.Of(1, 1))
		b.AddEdge(n[2], n[3], vec.Of(1, 1))
		e34 := b.AddEdge(n[3], n[4], vec.Of(2, 1))
		e45 := b.AddEdge(n[4], n[5], vec.Of(1, 1))
		// Ties: two facilities at the same fraction of the same edge, one at
		// each end, equal-cost facilities on distinct edges.
		b.AddFacility(e01, 0.5)
		b.AddFacility(e01, 0.5)
		b.AddFacility(e34, 0)
		b.AddFacility(e34, 1)
		b.AddFacility(e45, 0.25)
		g := b.MustBuild()

		mem := expand.NewMemorySource(g)
		fs := Compile(g)
		pool := expand.NewPool(fs)
		loc := graph.Location{Edge: e01, T: 0.25}
		agg := vec.NewWeighted(1, 1)

		for _, engine := range []core.Engine{core.LSA, core.CEA} {
			wantSky, err := core.Skyline(mem, loc, core.Options{Engine: engine})
			if err != nil {
				t.Fatal(err)
			}
			sc := pool.Get()
			gotSky, err := core.Skyline(fs, loc, core.Options{Engine: engine, Scratch: sc})
			if err != nil {
				t.Fatal(err)
			}
			sameFacilities(t, fmt.Sprintf("tie skyline directed=%v %v", directed, engine),
				gotSky.Facilities, wantSky.Facilities)

			wantTop, err := core.TopK(mem, loc, agg, 3, core.Options{Engine: engine})
			if err != nil {
				t.Fatal(err)
			}
			sc.Reset()
			gotTop, err := core.TopK(fs, loc, agg, 3, core.Options{Engine: engine, Scratch: sc})
			if err != nil {
				t.Fatal(err)
			}
			sameFacilities(t, fmt.Sprintf("tie topk directed=%v %v", directed, engine),
				gotTop.Facilities, wantTop.Facilities)
			pool.Put(sc)
		}
	}
}
