// Package index holds the precomputed pruning index: per-criterion
// lower-bound vectors from every network node to its nearest facility,
// in the spirit of ParetoPrep's backward preparation pass. The bounds are
// computed once — at graph compile time (mcn.FromGraph), database build time
// (storage.Build, persisted in layout v3) or overlay compile time (one set
// per elementary interval) — and consulted by the expansion layer as an
// admissible node-discard prune: a popped node label whose cost plus lower
// bound provably cannot contribute a result facility is dropped before its
// adjacency record is read.
//
// Admissibility: Bounds.LowerBound(i, v) ≤ dᵢ(v → p) for every facility p,
// where dᵢ is the network shortest distance under cost type i, so
// key(v) + LowerBound(i, v) never exceeds the cost at which any facility
// reachable through v would pop. The bounds are exact nearest-facility
// distances (not estimates): one backward multi-source Dijkstra per
// criterion, seeded at the facilities, over the reversed arc set.
//
// Floating point: forward expansions and the backward pass may sum the same
// edge weights in different orders, so a bound can exceed the forward
// distance by a few ulps. Consumers must therefore compare through
// SlackFactor (see its doc) rather than raw >; with that margin the prune
// decisions are provably consistent with the unpruned execution, which the
// randomized and fuzz equivalence suites pin byte-identically.
package index

import (
	"fmt"
	"math"
	"time"

	"mcn/internal/graph"
)

// SlackFactor deflates a cost-plus-lower-bound before comparing it against a
// pruning horizon: prune only when bound*SlackFactor still exceeds the
// horizon. The 1e-9 relative margin is ~6 orders of magnitude wider than the
// worst-case float64 summation reordering error on realistic path lengths,
// and far below any meaningful cost resolution, so it never masks a real
// prune on integer-cost networks and never over-prunes on real-valued ones.
const SlackFactor = 1 - 1e-9

// Bounds is the compiled pruning index: for each criterion i and node v, the
// exact network distance from v to the nearest facility under cost type i
// (+Inf where no facility is reachable). The zero value is unusable; build
// one with FromGraph/FromCosts or rehydrate a persisted table with FromData.
//
// Bounds implements expand.LowerBounder. It is immutable after construction
// and safe for concurrent use. It must not be consulted for graphs whose
// facility set has changed since the build (dynamic.Maintainer inserts make
// the distances stale in the unsafe direction), which is why the facade
// detaches it on Maintain.
type Bounds struct {
	d        int
	numNodes int
	data     []float64 // criterion-major: data[i*numNodes+v]
	buildDur time.Duration
}

// FromGraph computes the index for g's base edge costs.
func FromGraph(g *graph.Graph) *Bounds {
	return FromCosts(g, func(e graph.EdgeID, costIdx int) float64 {
		return g.Edge(e).W[costIdx]
	})
}

// FromCosts computes the index for g's topology under an alternative cost
// assignment (the timedep overlay's per-interval effective costs). cost must
// return a non-negative weight for every (edge, criterion) pair.
func FromCosts(g *graph.Graph, cost func(e graph.EdgeID, costIdx int) float64) *Bounds {
	start := time.Now()
	d, n := g.D(), g.NumNodes()
	b := &Bounds{d: d, numNodes: n, data: make([]float64, d*n)}

	// Reverse adjacency, shared across criteria: one reverse arc per
	// traversable direction. Undirected edges are traversable both ways, so
	// the reversed arc set equals the forward one; either way a single O(E)
	// sweep over the edge list builds it without consulting g.Arcs.
	type rarc struct {
		to   graph.NodeID
		edge graph.EdgeID
	}
	deg := make([]int32, n+1)
	for e := 0; e < g.NumEdges(); e++ {
		ed := g.Edge(graph.EdgeID(e))
		deg[ed.V]++ // forward arc U→V reversed lands on V
		if !g.Directed() {
			deg[ed.U]++
		}
	}
	off := make([]int32, n+1)
	for v := 0; v < n; v++ {
		off[v+1] = off[v] + deg[v]
	}
	arcs := make([]rarc, off[n])
	fill := make([]int32, n)
	for e := 0; e < g.NumEdges(); e++ {
		ed := g.Edge(graph.EdgeID(e))
		arcs[off[ed.V]+fill[ed.V]] = rarc{to: ed.U, edge: graph.EdgeID(e)}
		fill[ed.V]++
		if !g.Directed() {
			arcs[off[ed.U]+fill[ed.U]] = rarc{to: ed.V, edge: graph.EdgeID(e)}
			fill[ed.U]++
		}
	}

	h := boundHeap{}
	for i := 0; i < d; i++ {
		dist := b.data[i*n : (i+1)*n]
		for v := range dist {
			dist[v] = math.Inf(1)
		}
		h.a = h.a[:0]

		// Seed with the facility entry points: a facility at fraction T of
		// edge (U,V) is reached from U by traversing T·w forward; in an
		// undirected network also from V by traversing (1−T)·w backward.
		relax := func(v graph.NodeID, key float64) {
			if key < dist[v] {
				dist[v] = key
				h.push(boundItem{key: key, node: v})
			}
		}
		for p := 0; p < g.NumFacilities(); p++ {
			fac := g.Facility(graph.FacilityID(p))
			ed := g.Edge(fac.Edge)
			w := cost(fac.Edge, i)
			relax(ed.U, fac.T*w)
			if !g.Directed() {
				relax(ed.V, (1-fac.T)*w)
			}
		}

		// Backward multi-source Dijkstra: settle nodes in increasing distance
		// to their nearest facility, relaxing along reversed arcs.
		for len(h.a) > 0 {
			it := h.pop()
			if it.key > dist[it.node] {
				continue // superseded entry
			}
			a := arcs[off[it.node]:off[it.node+1]]
			for j := range a {
				relax(a[j].to, it.key+cost(a[j].edge, i))
			}
		}
	}
	b.buildDur = time.Since(start)
	return b
}

// FromData rehydrates a persisted bounds table (storage layout v3). data is
// criterion-major and retained, not copied.
func FromData(d, numNodes int, data []float64) (*Bounds, error) {
	if d < 1 || numNodes < 0 || len(data) != d*numNodes {
		return nil, fmt.Errorf("index: bounds table has %d values, want %d criteria × %d nodes", len(data), d, numNodes)
	}
	return &Bounds{d: d, numNodes: numNodes, data: data}, nil
}

// LowerBound implements expand.LowerBounder: the exact distance from v to
// its nearest facility under cost type costIdx (+Inf if none is reachable).
func (b *Bounds) LowerBound(costIdx int, v graph.NodeID) float64 {
	return b.data[costIdx*b.numNodes+int(v)]
}

// D returns the number of criteria the index covers.
func (b *Bounds) D() int { return b.d }

// NumNodes returns the node count the index was built for.
func (b *Bounds) NumNodes() int { return b.numNodes }

// Data exposes the criterion-major table for persistence (storage.Build).
// Callers must not mutate it.
func (b *Bounds) Data() []float64 { return b.data }

// Bytes returns the in-memory size of the bounds table.
func (b *Bounds) Bytes() int { return 8 * len(b.data) }

// BuildTime returns how long the backward passes took (zero for rehydrated
// tables, whose build cost was paid at storage.Build time).
func (b *Bounds) BuildTime() time.Duration { return b.buildDur }

// boundItem is one entry of the builder's binary min-heap.
type boundItem struct {
	key  float64
	node graph.NodeID
}

type boundHeap struct{ a []boundItem }

func (h *boundHeap) push(it boundItem) {
	h.a = append(h.a, it)
	i := len(h.a) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.a[parent].key <= h.a[i].key {
			break
		}
		h.a[parent], h.a[i] = h.a[i], h.a[parent]
		i = parent
	}
}

func (h *boundHeap) pop() boundItem {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		if l >= len(h.a) {
			break
		}
		c := l
		if r < len(h.a) && h.a[r].key < h.a[l].key {
			c = r
		}
		if h.a[i].key <= h.a[c].key {
			break
		}
		h.a[i], h.a[c] = h.a[c], h.a[i]
		i = c
	}
	return top
}
