package core

import (
	"fmt"
	"math"
	"sort"

	"mcn/internal/expand"
	"mcn/internal/graph"
	"mcn/internal/index"
	"mcn/internal/skyline"
	"mcn/internal/vec"
)

// MaterializeAll performs the paper's straightforward baseline preparation:
// d complete network expansions from loc, materialising the full cost vector
// of every reachable facility (the entire MCN is read d times). Facilities
// unreachable under a cost type get +Inf there; facilities reachable under
// no cost type do not appear. Only opt.Interrupt (polled per pop) and
// opt.Scratch are consulted.
func MaterializeAll(src expand.Source, loc graph.Location, opt Options) (map[graph.FacilityID]vec.Costs, Stats, error) {
	d := src.D()
	out := make(map[graph.FacilityID]vec.Costs)
	var stats Stats
	for i := 0; i < d; i++ {
		x, err := expand.New(src, i, loc, expand.WithScratch(opt.Scratch))
		if err != nil {
			return nil, stats, err
		}
		for {
			if err := opt.interrupted(); err != nil {
				return nil, stats, err
			}
			p, c, ok, err := x.Next()
			if err != nil {
				return nil, stats, err
			}
			if !ok {
				break
			}
			stats.Pops++
			v := out[p]
			if v == nil {
				v = make(vec.Costs, d)
				for j := range v {
					v[j] = math.Inf(1)
				}
				out[p] = v
				stats.Tracked++
			}
			v[i] = c
		}
		stats.NodeExpansions += x.NodeCount()
	}
	return out, stats, nil
}

// NaiveSkyline is the baseline skyline: materialise every cost vector, then
// run a conventional skyline operator (BNL). Results are sorted by facility
// id; the baseline is not progressive. Only opt.Interrupt and opt.Scratch
// are consulted.
func NaiveSkyline(src expand.Source, loc graph.Location, opt Options) (*Result, error) {
	vectors, stats, err := MaterializeAll(src, loc, opt)
	if err != nil {
		return nil, err
	}
	ids := make([]graph.FacilityID, 0, len(vectors))
	for id := range vectors {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	items := make([]vec.Costs, len(ids))
	for i, id := range ids {
		items[i] = vectors[id]
	}
	res := &Result{Stats: stats}
	for _, idx := range skyline.BNL(items) {
		res.Facilities = append(res.Facilities, Facility{ID: ids[idx], Costs: items[idx].Clone()})
	}
	return res, nil
}

// Within returns the facilities whose entire cost vector fits the budget
// (cᵢ(p) ≤ budget[i] for every cost type) — the multi-cost range query the
// paper notes NE supports. Each expansion stops as soon as its frontier
// exceeds its budget component, so the search is local. Results are sorted
// by facility id with complete cost vectors.
//
// When Options.Bounds carries the pruning index, each expansion additionally
// discards popped node labels whose cost plus nearest-facility lower bound
// exceeds the budget component — a static, admissible horizon: every
// facility within budget pops at or below it, so the result set is
// byte-identical to the unpruned run (the work Stats shrink).
func Within(src expand.Source, loc graph.Location, budget vec.Costs, opt Options) (*Result, error) {
	if len(budget) != src.D() {
		return nil, fmt.Errorf("core: budget has %d components, network has %d", len(budget), src.D())
	}
	if err := budget.Validate(); err != nil {
		return nil, err
	}
	if !budget.Complete() {
		return nil, fmt.Errorf("core: budget must be fully specified")
	}
	shared := engineSource(src, opt.Engine)
	d := shared.D()
	type partial struct {
		costs vec.Costs
		known int
	}
	found := make(map[graph.FacilityID]*partial)
	var stats Stats
	for i := 0; i < d; i++ {
		x, err := expand.New(shared, i, loc, expand.WithScratch(opt.Scratch))
		if err != nil {
			return nil, err
		}
		if lb := opt.Bounds; lb != nil && !opt.NoPrune {
			h := budget[i]
			x.SetPrune(lb, func(costPlusBound float64) bool {
				return costPlusBound*index.SlackFactor > h
			})
		}
		for {
			if err := opt.interrupted(); err != nil {
				return nil, err
			}
			if x.HeadKey() > budget[i] {
				break // nothing else can fit this component
			}
			p, c, ok, err := x.Next()
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			stats.Pops++
			if c > budget[i] {
				break
			}
			f := found[p]
			if f == nil {
				f = &partial{costs: vec.New(d)}
				found[p] = f
				stats.Tracked++
			}
			f.costs[i] = c
			f.known++
		}
		stats.NodeExpansions += x.NodeCount()
		stats.PrunedNodes += x.PrunedCount()
	}
	ids := make([]graph.FacilityID, 0, len(found))
	for id, f := range found {
		if f.known == d {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	res := &Result{Stats: stats}
	for _, id := range ids {
		res.Facilities = append(res.Facilities, Facility{ID: id, Costs: found[id].costs.Clone()})
	}
	return res, nil
}

// NaiveTopK is the baseline top-k: materialise every cost vector, score all
// facilities and sort. Only opt.Interrupt and opt.Scratch are consulted.
func NaiveTopK(src expand.Source, loc graph.Location, agg vec.Aggregate, k int, opt Options) (*Result, error) {
	if k < 1 {
		return nil, fmt.Errorf("core: top-k requires k >= 1, got %d", k)
	}
	vectors, stats, err := MaterializeAll(src, loc, opt)
	if err != nil {
		return nil, err
	}
	res := &Result{Stats: stats}
	for id, v := range vectors {
		res.Facilities = append(res.Facilities, Facility{ID: id, Costs: v.Clone(), Score: agg.Score(v)})
	}
	sort.Slice(res.Facilities, func(i, j int) bool {
		if res.Facilities[i].Score != res.Facilities[j].Score {
			return res.Facilities[i].Score < res.Facilities[j].Score
		}
		return res.Facilities[i].ID < res.Facilities[j].ID
	})
	if len(res.Facilities) > k {
		res.Facilities = res.Facilities[:k]
	}
	return res, nil
}
