package core

import (
	"fmt"

	"mcn/internal/expand"
	"mcn/internal/graph"
	"mcn/internal/vec"
)

// Nearest returns up to k facilities closest to loc under cost type costIdx,
// in non-decreasing cost order — the incremental network-expansion primitive
// (NE) the paper's algorithms are built on, exposed for ordinary kNN
// workloads. Each facility's cost vector carries the searched component
// only; Score holds the same value. Only opt.Interrupt is consulted: a
// single expansion has nothing to share, so the engine choice is moot.
func Nearest(src expand.Source, loc graph.Location, costIdx, k int, opt Options) (*Result, error) {
	if costIdx < 0 || costIdx >= src.D() {
		return nil, fmt.Errorf("core: cost index %d out of range (d=%d)", costIdx, src.D())
	}
	if k < 1 {
		return nil, fmt.Errorf("core: nearest requires k >= 1, got %d", k)
	}
	x, err := expand.New(src, costIdx, loc, expand.WithScratch(opt.Scratch))
	if err != nil {
		return nil, err
	}
	res := &Result{}
	for len(res.Facilities) < k {
		if err := opt.interrupted(); err != nil {
			return nil, err
		}
		p, c, ok, err := x.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		res.Stats.Pops++
		costs := vec.New(src.D())
		costs[costIdx] = c
		res.Facilities = append(res.Facilities, Facility{ID: p, Costs: costs, Score: c})
	}
	res.Stats.Tracked = len(res.Facilities)
	res.Stats.NodeExpansions = x.NodeCount()
	return res, nil
}
