package core

import (
	"math/rand"
	"testing"

	"mcn/internal/expand"
	"mcn/internal/flat"
	"mcn/internal/gen"
	"mcn/internal/graph"
	"mcn/internal/index"
	"mcn/internal/vec"
)

// fuzzInstance decodes the shared fuzz-input encoding — the one
// FuzzSkylineInvariants established — into a small random network and query
// location: the fuzzer owns topology size, cost granularity, facility count,
// dimensionality, query position and directedness, with small integer costs
// so exact ties (the hard case) are common.
func fuzzInstance(t *testing.T, seed int64, nodes, extra, facs, d, locBits uint8, directed bool) (*graph.Graph, graph.Location) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	nn := 2 + int(nodes)%24
	topo := gen.RandomConnected(nn, int(extra)%12, rng)
	costs := gen.RandomIntegerCosts(topo, 1+int(d)%4, 3, rng)
	pls := gen.UniformFacilities(topo, 1+int(facs)%12, rng)
	g, err := gen.Assemble(topo, costs, pls, directed)
	if err != nil {
		t.Fatal(err)
	}
	return g, graph.Location{
		Edge: graph.EdgeID(int(locBits) % g.NumEdges()),
		T:    float64(int(locBits)%8) / 8,
	}
}

// FuzzTopKInvariants drives the fixed-k top-k driver over small random
// networks and checks, for fuzzer-chosen integer aggregate weights and k:
//
//  1. score monotonicity: results arrive in ascending (score, id) order;
//  2. exact agreement with NaiveTopK (materialise everything, score, sort)
//     — ids, cost vectors and scores, byte for byte;
//  3. pruned-vs-unpruned byte-identity: attaching the lower-bound pruning
//     index changes no result, only the work statistics, and never upward;
//
// across the map-state and the flat/scratch fast path. Run `make fuzz` for a
// fuzzing session; CI runs a short smoke.
func FuzzTopKInvariants(f *testing.F) {
	f.Add(int64(1), uint8(10), uint8(4), uint8(4), uint8(2), uint8(0), true, uint8(3), uint8(9))
	f.Add(int64(7), uint8(20), uint8(0), uint8(8), uint8(3), uint8(2), false, uint8(1), uint8(27))
	f.Add(int64(42), uint8(3), uint8(9), uint8(1), uint8(4), uint8(5), true, uint8(6), uint8(0))
	f.Fuzz(func(t *testing.T, seed int64, nodes, extra, facs, d, locBits uint8, directed bool, kBits, aggBits uint8) {
		g, loc := fuzzInstance(t, seed, nodes, extra, facs, d, locBits, directed)
		k := 1 + int(kBits)%6
		// Small integer coefficients keep aggregate scores exactly
		// representable, so score ties survive into the comparison.
		coef := make([]float64, g.D())
		for i := range coef {
			coef[i] = float64(1 + (int(aggBits)>>i)%3)
		}
		agg := vec.NewWeighted(coef...)

		mem := expand.NewMemorySource(g)
		naive, err := NaiveTopK(mem, loc, agg, k, Options{})
		if err != nil {
			t.Fatal(err)
		}
		bounds := index.FromGraph(g)

		fs := flat.Compile(g)
		sc := expand.NewScratch(fs.NumNodes(), fs.NumEdges(), fs.NumFacilities())
		for _, run := range []struct {
			name string
			opt  Options
			src  expand.Source
		}{
			{"map/LSA", Options{}, mem},
			{"flat/CEA/scratch", Options{Engine: CEA, Scratch: sc}, fs},
		} {
			sc.Reset()
			res, err := TopK(run.src, loc, agg, k, run.opt)
			if err != nil {
				t.Fatalf("%s: %v", run.name, err)
			}
			for i := 1; i < len(res.Facilities); i++ {
				a, b := res.Facilities[i-1], res.Facilities[i]
				if a.Score > b.Score || (a.Score == b.Score && a.ID >= b.ID) {
					t.Fatalf("%s: results out of (score, id) order at %d: (%g, %d) before (%g, %d)",
						run.name, i, a.Score, a.ID, b.Score, b.ID)
				}
			}
			samePrunedFacilities(t, run.name+" vs naive", res.Facilities, naive.Facilities)

			prunedOpt := run.opt
			prunedOpt.Bounds = bounds
			sc.Reset()
			pruned, err := TopK(run.src, loc, agg, k, prunedOpt)
			if err != nil {
				t.Fatalf("%s pruned: %v", run.name, err)
			}
			samePrunedFacilities(t, run.name+" pruned", pruned.Facilities, res.Facilities)
			if pruned.Stats.NodeExpansions > res.Stats.NodeExpansions {
				t.Fatalf("%s: pruned run expanded %d nodes > unpruned %d",
					run.name, pruned.Stats.NodeExpansions, res.Stats.NodeExpansions)
			}
		}
	})
}

// FuzzWithinInvariants drives the budget range query over small random
// networks with fuzzer-chosen integer budgets and checks:
//
//  1. soundness: every returned facility's full cost vector fits the budget
//     component-wise and matches the baseline's materialised vector;
//  2. completeness: every reachable facility the baseline proves within
//     budget is returned;
//  3. pruned-vs-unpruned byte-identity under the lower-bound index, with
//     work statistics only ever shrinking.
func FuzzWithinInvariants(f *testing.F) {
	f.Add(int64(1), uint8(10), uint8(4), uint8(4), uint8(2), uint8(0), true, uint8(7))
	f.Add(int64(7), uint8(20), uint8(0), uint8(8), uint8(3), uint8(2), false, uint8(12))
	f.Add(int64(42), uint8(3), uint8(9), uint8(1), uint8(4), uint8(5), true, uint8(2))
	f.Fuzz(func(t *testing.T, seed int64, nodes, extra, facs, d, locBits uint8, directed bool, budBits uint8) {
		g, loc := fuzzInstance(t, seed, nodes, extra, facs, d, locBits, directed)
		budget := make(vec.Costs, g.D())
		for i := range budget {
			// Integer budgets in [1, 12]: small enough to cut the search,
			// large enough to usually catch a few facilities, and exactly
			// representable so budget-boundary ties are exact.
			budget[i] = float64(1 + (int(budBits)+3*i)%12)
		}

		mem := expand.NewMemorySource(g)
		vectors, _, err := MaterializeAll(mem, loc, Options{})
		if err != nil {
			t.Fatal(err)
		}
		fits := func(v vec.Costs) bool {
			for i := range v {
				if !(v[i] <= budget[i]) { // NaN/+Inf never fits
					return false
				}
			}
			return true
		}
		bounds := index.FromGraph(g)

		fs := flat.Compile(g)
		sc := expand.NewScratch(fs.NumNodes(), fs.NumEdges(), fs.NumFacilities())
		for _, run := range []struct {
			name string
			opt  Options
			src  expand.Source
		}{
			{"map/LSA", Options{}, mem},
			{"flat/CEA/scratch", Options{Engine: CEA, Scratch: sc}, fs},
		} {
			sc.Reset()
			res, err := Within(run.src, loc, budget, run.opt)
			if err != nil {
				t.Fatalf("%s: %v", run.name, err)
			}
			got := make(map[graph.FacilityID]bool, len(res.Facilities))
			for _, fac := range res.Facilities {
				got[fac.ID] = true
				want, ok := vectors[fac.ID]
				if !ok {
					t.Fatalf("%s: returned facility %d is unreachable per the baseline", run.name, fac.ID)
				}
				if !fac.Costs.Equal(want) {
					t.Fatalf("%s: facility %d costs %v, baseline materialised %v", run.name, fac.ID, fac.Costs, want)
				}
				if !fits(fac.Costs) {
					t.Fatalf("%s: facility %d (%v) exceeds budget %v", run.name, fac.ID, fac.Costs, budget)
				}
			}
			for id, v := range vectors {
				if fits(v) && !got[id] {
					t.Fatalf("%s: facility %d (%v) fits budget %v but is missing", run.name, id, v, budget)
				}
			}

			prunedOpt := run.opt
			prunedOpt.Bounds = bounds
			sc.Reset()
			pruned, err := Within(run.src, loc, budget, prunedOpt)
			if err != nil {
				t.Fatalf("%s pruned: %v", run.name, err)
			}
			samePrunedFacilities(t, run.name+" pruned", pruned.Facilities, res.Facilities)
			if pruned.Stats.NodeExpansions > res.Stats.NodeExpansions {
				t.Fatalf("%s: pruned run expanded %d nodes > unpruned %d",
					run.name, pruned.Stats.NodeExpansions, res.Stats.NodeExpansions)
			}
		}
	})
}
