package core

import (
	"fmt"
	"math"
	"sort"

	"mcn/internal/expand"
	"mcn/internal/graph"
	"mcn/internal/index"
	"mcn/internal/vec"
)

// TopK returns the k facilities minimising the increasingly monotone
// aggregate agg over their cost vectors (paper Sec. V). The growing stage
// pins k facilities; the shrinking stage resolves the remaining candidates,
// eliminating them early through aggregate lower bounds derived from the
// expansion frontiers. Ties at the k-th position are resolved by facility id
// (the smaller id wins), so the result is a deterministic function of the
// facility cost vectors — independent of expansion interleaving, which is
// what lets lower-bound pruning (Options.Bounds) stay byte-identical and
// makes the output agree exactly with NaiveTopK.
func TopK(src expand.Source, loc graph.Location, agg vec.Aggregate, k int, opt Options) (*Result, error) {
	if agg.Dims() != src.D() {
		return nil, fmt.Errorf("core: aggregate expects %d cost types, network has %d", agg.Dims(), src.D())
	}
	shared := engineSource(src, opt.Engine)
	exps := make([]*expand.Expansion, shared.D())
	for i := range exps {
		x, err := expand.New(shared, i, loc, expand.WithScratch(opt.Scratch))
		if err != nil {
			return nil, err
		}
		exps[i] = x
	}
	return topkOverExpansions(shared, exps, agg, k, opt)
}

// MultiSourceTopK answers aggregate nearest-neighbour queries: a single cost
// type, several query locations, and facilities ranked by an increasingly
// monotone aggregate over their network distances from every location (e.g.
// a weighted sum = the classic min-sum meeting-point query). It reuses the
// top-k growing/shrinking driver with one expansion per location.
func MultiSourceTopK(src expand.Source, costIdx int, locs []graph.Location, agg vec.Aggregate, k int, opt Options) (*Result, error) {
	if len(locs) == 0 {
		return nil, fmt.Errorf("core: multi-source top-k requires at least one location")
	}
	if costIdx < 0 || costIdx >= src.D() {
		return nil, fmt.Errorf("core: cost index %d out of range (d=%d)", costIdx, src.D())
	}
	if agg.Dims() != len(locs) {
		return nil, fmt.Errorf("core: aggregate expects %d components, got %d locations", agg.Dims(), len(locs))
	}
	shared := engineSource(src, opt.Engine)
	exps := make([]*expand.Expansion, len(locs))
	for i, loc := range locs {
		x, err := expand.New(shared, costIdx, loc, expand.WithScratch(opt.Scratch))
		if err != nil {
			return nil, err
		}
		exps[i] = x
	}
	return topkOverExpansions(shared, exps, agg, k, opt)
}

// topkOverExpansions runs the top-k driver over any family of NN expansions.
func topkOverExpansions(src expand.Source, exps []*expand.Expansion, agg vec.Aggregate, k int, opt Options) (*Result, error) {
	if k < 1 {
		return nil, fmt.Errorf("core: top-k requires k >= 1, got %d", k)
	}
	s := &topkRun{
		src:       src,
		agg:       agg,
		k:         k,
		opt:       opt,
		tracked:   make(map[graph.FacilityID]*tracked),
		scores:    make(map[graph.FacilityID]float64),
		d:         len(exps),
		exps:      exps,
		exhausted: make([]bool, len(exps)),
	}
	s.installPrune()
	if err := s.run(); err != nil {
		return nil, err
	}
	return s.result(), nil
}

// installPrune arms the expansions with lower-bound node pruning when the
// query carries a pruning index and the aggregate can bound its score
// through a single component. The predicate is admissible only during the
// shrinking stage: once the top set holds k members, any facility whose
// i-th cost alone scores above the current k-th score is provably outside
// the final top set (the k-th score never increases), so node labels that
// bound every such facility's i-th cost from below can be discarded without
// affecting the result — only the work counters change.
func (s *topkRun) installPrune() {
	lb := s.opt.Bounds
	if lb == nil || s.opt.NoPrune {
		return
	}
	cs, ok := s.agg.(vec.ComponentScorer)
	if !ok {
		return // opaque aggregate: no admissible component bound, run unpruned
	}
	for i, x := range s.exps {
		i := i
		x.SetPrune(lb, func(costPlusBound float64) bool {
			// The SlackFactor margin absorbs float summation-order skew
			// between the backward index pass and the forward expansion, so a
			// bound a few ulps above the true distance can never discard a
			// node on a genuine result path (see internal/index).
			return s.shrinking && cs.ComponentScore(i, costPlusBound)*index.SlackFactor > s.worstScore
		})
	}
}

type topkRun struct {
	src expand.Source
	agg vec.Aggregate
	k   int
	opt Options
	d   int

	exps      []*expand.Expansion
	exhausted []bool

	tracked    map[graph.FacilityID]*tracked
	scores     map[graph.FacilityID]float64
	candidates int
	top        []*tracked // current top set, unordered; len ≤ k
	shrinking  bool
	stats      Stats

	// Cached k-th element of the top set under the (score, id) total order,
	// maintained from the moment the top set fills (refreshWorst). The prune
	// predicate reads worstScore on every node pop, so it must not rescan.
	worstScore float64
	worstID    graph.FacilityID
	worstIdx   int
}

func (s *topkRun) run() error {
	// Growing stage: round-robin NN retrieval until k facilities are pinned.
	for !s.shrinking {
		if err := s.opt.interrupted(); err != nil {
			return err
		}
		progressed := false
		for i := 0; i < s.d && !s.shrinking; i++ {
			if s.exhausted[i] {
				continue
			}
			p, c, ok, err := s.exps[i].Next()
			if err != nil {
				return err
			}
			if !ok {
				s.exhausted[i] = true
				continue
			}
			progressed = true
			if err := s.growPop(i, p, c); err != nil {
				return err
			}
		}
		if !progressed && !s.shrinking {
			return s.finalize() // network exhausted with fewer than k pins
		}
	}

	// Shrinking stage: one heap event per expansion per round (the paper's
	// finer probing granularity), with lower-bound elimination after every
	// full pass.
	for s.candidates > 0 {
		if err := s.opt.interrupted(); err != nil {
			return err
		}
		progressed := false
		for i := 0; i < s.d && s.candidates > 0; i++ {
			if !s.active(i) {
				continue
			}
			ev, p, c, err := s.exps[i].Step()
			if err != nil {
				return err
			}
			switch ev {
			case expand.EventExhausted:
				s.exhausted[i] = true
			case expand.EventNode:
				progressed = true
			case expand.EventFacility:
				progressed = true
				if err := s.shrinkPop(i, p, c); err != nil {
					return err
				}
			}
		}
		if s.candidates == 0 {
			break
		}
		s.pruneByLowerBound()
		if !progressed && s.candidates > 0 {
			return s.finalize()
		}
	}
	return nil
}

// active reports whether expansion i still contributes: some candidate is
// missing its i-th cost (paper's per-cost stopping rule for top-k).
func (s *topkRun) active(i int) bool {
	if s.exhausted[i] {
		return false
	}
	if s.opt.NoEnhancements {
		return true
	}
	for _, tr := range s.tracked {
		if tr.cand && !tr.gone && !tr.pinned && vec.IsUnknown(tr.costs[i]) {
			return true
		}
	}
	return false
}

func (s *topkRun) growPop(i int, p graph.FacilityID, c float64) error {
	s.stats.Pops++
	tr := s.tracked[p]
	if tr == nil {
		tr = newTracked(p, s.d)
		s.tracked[p] = tr
		s.stats.Tracked++
		tr.cand = true
		s.candidates++
	}
	pinnedNow, err := tr.setCost(i, c)
	if err != nil {
		return err
	}
	if !pinnedNow {
		return nil
	}
	if tr.cand {
		tr.cand = false
		s.candidates--
	}
	s.scores[p] = s.agg.Score(tr.costs)
	s.top = append(s.top, tr)
	if len(s.top) == s.k {
		s.refreshWorst()
		s.shrinking = true
		s.stats.GrowingPops = s.stats.Pops
		if !s.opt.NoEnhancements {
			if err := s.installFilters(); err != nil {
				return err
			}
		}
	}
	return nil
}

func (s *topkRun) shrinkPop(i int, p graph.FacilityID, c float64) error {
	s.stats.Pops++
	tr := s.tracked[p]
	if tr == nil || tr.gone {
		return nil // new facility in shrinking: provably outside the top-k
	}
	pinnedNow, err := tr.setCost(i, c)
	if err != nil {
		return err
	}
	if !pinnedNow {
		return nil
	}
	if tr.cand {
		tr.cand = false
		s.candidates--
	}
	score := s.agg.Score(tr.costs)
	if s.beatsWorst(score, p) {
		s.scores[p] = score
		s.top[s.worstIdx].gone = true
		s.top[s.worstIdx] = tr
		s.refreshWorst()
	} else {
		tr.gone = true
	}
	return nil
}

// beatsWorst reports whether a pinned facility belongs in the top set under
// the (score, id) total order: strictly smaller score, or an equal score
// with a smaller id. Because the order is total, the top set maintained with
// this rule is always exactly the k smallest (score, id) pairs seen so far,
// whatever order the expansions deliver them in — the property the pruned
// and unpruned executions' byte-identity rests on.
func (s *topkRun) beatsWorst(score float64, id graph.FacilityID) bool {
	if score != s.worstScore {
		return score < s.worstScore
	}
	return id < s.worstID
}

// refreshWorst recomputes the cached k-th (largest under (score, id)) member
// of the full top set.
func (s *topkRun) refreshWorst() {
	s.worstScore, s.worstID, s.worstIdx = math.Inf(-1), 0, -1
	for i, tr := range s.top {
		sc := s.scores[tr.id]
		if i == 0 || sc > s.worstScore || (sc == s.worstScore && tr.id > s.worstID) {
			s.worstScore, s.worstID, s.worstIdx = sc, tr.id, i
		}
	}
}

// pruneByLowerBound eliminates candidates whose aggregate cost cannot fall
// below the current k-th score: unknown costs are bounded from below by the
// expansion head keys t_i (paper Sec. V). The comparison is strict — a
// candidate whose bound merely ties the k-th score could still enter under
// the (score, id) total order, and the head keys it is bounded with depend
// on the expansion interleaving, so eliminating it here would make the
// result depend on that interleaving (and diverge between pruned and
// unpruned runs). Such candidates resolve exactly instead.
func (s *topkRun) pruneByLowerBound() {
	if len(s.top) < s.k {
		return
	}
	heads := make(vec.Costs, s.d)
	for i, x := range s.exps {
		heads[i] = x.HeadKey()
	}
	for _, tr := range s.tracked {
		if !tr.cand || tr.gone || tr.pinned {
			continue
		}
		if s.agg.Score(tr.costs.FillUnknown(heads)) > s.worstScore {
			tr.gone = true
			tr.cand = false
			s.candidates--
		}
	}
}

func (s *topkRun) installFilters() error {
	allowEdge, add := edgeFilter(s.opt.Scratch, s.candidates)
	for id, tr := range s.tracked {
		if tr.cand && !tr.gone && !tr.pinned {
			e, err := s.src.FacilityEdge(id)
			if err != nil {
				return err
			}
			add(e)
		}
	}
	allowFac := func(p graph.FacilityID) bool {
		tr := s.tracked[p]
		return tr != nil && tr.cand && !tr.gone && !tr.pinned
	}
	for _, x := range s.exps {
		x.SetFilter(allowEdge, allowFac)
	}
	return nil
}

// finalize handles global exhaustion: any unknown cost is +Inf. Remaining
// candidates are completed, scored and merged into the top set in
// deterministic order.
func (s *topkRun) finalize() error {
	var rest []*tracked
	for _, tr := range s.tracked {
		if tr.cand && !tr.gone && !tr.pinned {
			rest = append(rest, tr)
		}
	}
	for _, tr := range rest {
		for j := range tr.costs {
			if vec.IsUnknown(tr.costs[j]) {
				tr.costs[j] = math.Inf(1)
				tr.known++
			}
		}
		tr.pinned = true
		tr.cand = false
		s.candidates--
		s.scores[tr.id] = s.agg.Score(tr.costs)
	}
	sort.Slice(rest, func(i, j int) bool {
		si, sj := s.scores[rest[i].id], s.scores[rest[j].id]
		if si != sj {
			return si < sj
		}
		return rest[i].id < rest[j].id
	})
	for _, tr := range rest {
		if len(s.top) < s.k {
			s.top = append(s.top, tr)
			if len(s.top) == s.k {
				s.refreshWorst()
			}
			continue
		}
		if s.beatsWorst(s.scores[tr.id], tr.id) {
			s.top[s.worstIdx].gone = true
			s.top[s.worstIdx] = tr
			s.refreshWorst()
		}
	}
	return nil
}

func (s *topkRun) result() *Result {
	for _, x := range s.exps {
		s.stats.NodeExpansions += x.NodeCount()
		s.stats.PrunedNodes += x.PrunedCount()
	}
	sort.Slice(s.top, func(i, j int) bool {
		si, sj := s.scores[s.top[i].id], s.scores[s.top[j].id]
		if si != sj {
			return si < sj
		}
		return s.top[i].id < s.top[j].id
	})
	res := &Result{Stats: s.stats}
	for _, tr := range s.top {
		res.Facilities = append(res.Facilities, Facility{
			ID:    tr.id,
			Costs: tr.costs.Clone(),
			Score: s.scores[tr.id],
		})
	}
	return res
}
