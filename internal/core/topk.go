package core

import (
	"fmt"
	"math"
	"sort"

	"mcn/internal/expand"
	"mcn/internal/graph"
	"mcn/internal/vec"
)

// TopK returns the k facilities minimising the increasingly monotone
// aggregate agg over their cost vectors (paper Sec. V). The growing stage
// pins k facilities; the shrinking stage resolves the remaining candidates,
// eliminating them early through aggregate lower bounds derived from the
// expansion frontiers. Ties at the k-th position are resolved arbitrarily,
// as the paper allows.
func TopK(src expand.Source, loc graph.Location, agg vec.Aggregate, k int, opt Options) (*Result, error) {
	if agg.Dims() != src.D() {
		return nil, fmt.Errorf("core: aggregate expects %d cost types, network has %d", agg.Dims(), src.D())
	}
	shared := engineSource(src, opt.Engine)
	exps := make([]*expand.Expansion, shared.D())
	for i := range exps {
		x, err := expand.New(shared, i, loc, expand.WithScratch(opt.Scratch))
		if err != nil {
			return nil, err
		}
		exps[i] = x
	}
	return topkOverExpansions(shared, exps, agg, k, opt)
}

// MultiSourceTopK answers aggregate nearest-neighbour queries: a single cost
// type, several query locations, and facilities ranked by an increasingly
// monotone aggregate over their network distances from every location (e.g.
// a weighted sum = the classic min-sum meeting-point query). It reuses the
// top-k growing/shrinking driver with one expansion per location.
func MultiSourceTopK(src expand.Source, costIdx int, locs []graph.Location, agg vec.Aggregate, k int, opt Options) (*Result, error) {
	if len(locs) == 0 {
		return nil, fmt.Errorf("core: multi-source top-k requires at least one location")
	}
	if costIdx < 0 || costIdx >= src.D() {
		return nil, fmt.Errorf("core: cost index %d out of range (d=%d)", costIdx, src.D())
	}
	if agg.Dims() != len(locs) {
		return nil, fmt.Errorf("core: aggregate expects %d components, got %d locations", agg.Dims(), len(locs))
	}
	shared := engineSource(src, opt.Engine)
	exps := make([]*expand.Expansion, len(locs))
	for i, loc := range locs {
		x, err := expand.New(shared, costIdx, loc, expand.WithScratch(opt.Scratch))
		if err != nil {
			return nil, err
		}
		exps[i] = x
	}
	return topkOverExpansions(shared, exps, agg, k, opt)
}

// topkOverExpansions runs the top-k driver over any family of NN expansions.
func topkOverExpansions(src expand.Source, exps []*expand.Expansion, agg vec.Aggregate, k int, opt Options) (*Result, error) {
	if k < 1 {
		return nil, fmt.Errorf("core: top-k requires k >= 1, got %d", k)
	}
	s := &topkRun{
		src:       src,
		agg:       agg,
		k:         k,
		opt:       opt,
		tracked:   make(map[graph.FacilityID]*tracked),
		scores:    make(map[graph.FacilityID]float64),
		d:         len(exps),
		exps:      exps,
		exhausted: make([]bool, len(exps)),
	}
	if err := s.run(); err != nil {
		return nil, err
	}
	return s.result(), nil
}

type topkRun struct {
	src expand.Source
	agg vec.Aggregate
	k   int
	opt Options
	d   int

	exps      []*expand.Expansion
	exhausted []bool

	tracked    map[graph.FacilityID]*tracked
	scores     map[graph.FacilityID]float64
	candidates int
	top        []*tracked // current top set, unordered; len ≤ k
	shrinking  bool
	stats      Stats
}

func (s *topkRun) run() error {
	// Growing stage: round-robin NN retrieval until k facilities are pinned.
	for !s.shrinking {
		if err := s.opt.interrupted(); err != nil {
			return err
		}
		progressed := false
		for i := 0; i < s.d && !s.shrinking; i++ {
			if s.exhausted[i] {
				continue
			}
			p, c, ok, err := s.exps[i].Next()
			if err != nil {
				return err
			}
			if !ok {
				s.exhausted[i] = true
				continue
			}
			progressed = true
			if err := s.growPop(i, p, c); err != nil {
				return err
			}
		}
		if !progressed && !s.shrinking {
			return s.finalize() // network exhausted with fewer than k pins
		}
	}

	// Shrinking stage: one heap event per expansion per round (the paper's
	// finer probing granularity), with lower-bound elimination after every
	// full pass.
	for s.candidates > 0 {
		if err := s.opt.interrupted(); err != nil {
			return err
		}
		progressed := false
		for i := 0; i < s.d && s.candidates > 0; i++ {
			if !s.active(i) {
				continue
			}
			ev, p, c, err := s.exps[i].Step()
			if err != nil {
				return err
			}
			switch ev {
			case expand.EventExhausted:
				s.exhausted[i] = true
			case expand.EventNode:
				progressed = true
			case expand.EventFacility:
				progressed = true
				if err := s.shrinkPop(i, p, c); err != nil {
					return err
				}
			}
		}
		if s.candidates == 0 {
			break
		}
		s.pruneByLowerBound()
		if !progressed && s.candidates > 0 {
			return s.finalize()
		}
	}
	return nil
}

// active reports whether expansion i still contributes: some candidate is
// missing its i-th cost (paper's per-cost stopping rule for top-k).
func (s *topkRun) active(i int) bool {
	if s.exhausted[i] {
		return false
	}
	if s.opt.NoEnhancements {
		return true
	}
	for _, tr := range s.tracked {
		if tr.cand && !tr.gone && !tr.pinned && vec.IsUnknown(tr.costs[i]) {
			return true
		}
	}
	return false
}

func (s *topkRun) growPop(i int, p graph.FacilityID, c float64) error {
	s.stats.Pops++
	tr := s.tracked[p]
	if tr == nil {
		tr = newTracked(p, s.d)
		s.tracked[p] = tr
		s.stats.Tracked++
		tr.cand = true
		s.candidates++
	}
	pinnedNow, err := tr.setCost(i, c)
	if err != nil {
		return err
	}
	if !pinnedNow {
		return nil
	}
	if tr.cand {
		tr.cand = false
		s.candidates--
	}
	s.scores[p] = s.agg.Score(tr.costs)
	s.top = append(s.top, tr)
	if len(s.top) == s.k {
		s.shrinking = true
		s.stats.GrowingPops = s.stats.Pops
		if !s.opt.NoEnhancements {
			if err := s.installFilters(); err != nil {
				return err
			}
		}
	}
	return nil
}

func (s *topkRun) shrinkPop(i int, p graph.FacilityID, c float64) error {
	s.stats.Pops++
	tr := s.tracked[p]
	if tr == nil || tr.gone {
		return nil // new facility in shrinking: provably outside the top-k
	}
	pinnedNow, err := tr.setCost(i, c)
	if err != nil {
		return err
	}
	if !pinnedNow {
		return nil
	}
	if tr.cand {
		tr.cand = false
		s.candidates--
	}
	score := s.agg.Score(tr.costs)
	worst, worstIdx := s.kth()
	if score < worst {
		s.scores[p] = score
		s.top[worstIdx].gone = true
		s.top[worstIdx] = tr
	} else {
		tr.gone = true
	}
	return nil
}

// kth returns the current k-th (largest) score in the top set and its index.
func (s *topkRun) kth() (float64, int) {
	worst, idx := math.Inf(-1), -1
	for i, tr := range s.top {
		if sc := s.scores[tr.id]; sc > worst {
			worst, idx = sc, i
		}
	}
	return worst, idx
}

// pruneByLowerBound eliminates candidates whose aggregate cost cannot fall
// below the current k-th score: unknown costs are bounded from below by the
// expansion head keys t_i (paper Sec. V).
func (s *topkRun) pruneByLowerBound() {
	if len(s.top) < s.k {
		return
	}
	heads := make(vec.Costs, s.d)
	for i, x := range s.exps {
		heads[i] = x.HeadKey()
	}
	worst, _ := s.kth()
	for _, tr := range s.tracked {
		if !tr.cand || tr.gone || tr.pinned {
			continue
		}
		if s.agg.Score(tr.costs.FillUnknown(heads)) >= worst {
			tr.gone = true
			tr.cand = false
			s.candidates--
		}
	}
}

func (s *topkRun) installFilters() error {
	allowEdge, add := edgeFilter(s.opt.Scratch, s.candidates)
	for id, tr := range s.tracked {
		if tr.cand && !tr.gone && !tr.pinned {
			e, err := s.src.FacilityEdge(id)
			if err != nil {
				return err
			}
			add(e)
		}
	}
	allowFac := func(p graph.FacilityID) bool {
		tr := s.tracked[p]
		return tr != nil && tr.cand && !tr.gone && !tr.pinned
	}
	for _, x := range s.exps {
		x.SetFilter(allowEdge, allowFac)
	}
	return nil
}

// finalize handles global exhaustion: any unknown cost is +Inf. Remaining
// candidates are completed, scored and merged into the top set in
// deterministic order.
func (s *topkRun) finalize() error {
	var rest []*tracked
	for _, tr := range s.tracked {
		if tr.cand && !tr.gone && !tr.pinned {
			rest = append(rest, tr)
		}
	}
	for _, tr := range rest {
		for j := range tr.costs {
			if vec.IsUnknown(tr.costs[j]) {
				tr.costs[j] = math.Inf(1)
				tr.known++
			}
		}
		tr.pinned = true
		tr.cand = false
		s.candidates--
		s.scores[tr.id] = s.agg.Score(tr.costs)
	}
	sort.Slice(rest, func(i, j int) bool {
		si, sj := s.scores[rest[i].id], s.scores[rest[j].id]
		if si != sj {
			return si < sj
		}
		return rest[i].id < rest[j].id
	})
	for _, tr := range rest {
		if len(s.top) < s.k {
			s.top = append(s.top, tr)
			continue
		}
		worst, worstIdx := s.kth()
		if s.scores[tr.id] < worst {
			s.top[worstIdx].gone = true
			s.top[worstIdx] = tr
		}
	}
	return nil
}

func (s *topkRun) result() *Result {
	for _, x := range s.exps {
		s.stats.NodeExpansions += x.NodeCount()
	}
	sort.Slice(s.top, func(i, j int) bool {
		si, sj := s.scores[s.top[i].id], s.scores[s.top[j].id]
		if si != sj {
			return si < sj
		}
		return s.top[i].id < s.top[j].id
	})
	res := &Result{Stats: s.stats}
	for _, tr := range s.top {
		res.Facilities = append(res.Facilities, Facility{
			ID:    tr.id,
			Costs: tr.costs.Clone(),
			Score: s.scores[tr.id],
		})
	}
	return res
}
