package core

import (
	"math"
	"math/rand"
	"testing"

	"mcn/internal/expand"
	"mcn/internal/gen"
	"mcn/internal/graph"
	"mcn/internal/testnet"
	"mcn/internal/vec"
)

func TestIncrementalMatchesTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(300))
	for trial := 0; trial < 80; trial++ {
		inst := randomInstance(t, rng, trial%4 == 0)
		agg := randomAggregate(rng, inst.g.D())
		k := 1 + rng.Intn(10)

		batch, err := TopK(expand.NewMemorySource(inst.g), inst.loc, agg, k, Options{})
		if err != nil {
			t.Fatal(err)
		}
		it, err := NewTopKIterator(expand.NewMemorySource(inst.g), inst.loc, agg, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < len(batch.Facilities); i++ {
			f, ok, err := it.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("trial %d: iterator ended at %d, batch has %d", trial, i, len(batch.Facilities))
			}
			want := batch.Facilities[i].Score
			if math.IsInf(f.Score, 1) && math.IsInf(want, 1) {
				continue
			}
			if math.Abs(f.Score-want) > 1e-9*(1+math.Abs(want)) {
				t.Fatalf("trial %d: incremental score[%d] = %g, batch %g", trial, i, f.Score, want)
			}
		}
	}
}

// Draining the iterator must enumerate every reachable facility in
// non-decreasing score order, matching the oracle's full ranking.
func TestIncrementalFullDrain(t *testing.T) {
	rng := rand.New(rand.NewSource(301))
	for trial := 0; trial < 60; trial++ {
		inst := randomInstance(t, rng, false)
		agg := randomAggregate(rng, inst.g.D())
		want := testnet.TopKScores(inst.g, inst.loc, agg, inst.g.NumFacilities())

		it, err := NewTopKIterator(expand.NewMemorySource(inst.g), inst.loc, agg, Options{})
		if err != nil {
			t.Fatal(err)
		}
		var got []float64
		seen := make(map[graph.FacilityID]bool)
		prev := math.Inf(-1)
		for {
			f, ok, err := it.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			if seen[f.ID] {
				t.Fatalf("trial %d: facility %d reported twice", trial, f.ID)
			}
			seen[f.ID] = true
			if f.Score < prev-1e-9 {
				t.Fatalf("trial %d: scores not non-decreasing: %g after %g", trial, f.Score, prev)
			}
			prev = f.Score
			got = append(got, f.Score)
		}
		// The oracle includes facilities unreachable in every dimension (it
		// scores them +Inf); the iterator cannot discover those, so compare
		// only the finite prefix plus count parity of +Inf entries it found.
		finiteWant := want[:0:0]
		for _, w := range want {
			if !math.IsInf(w, 1) {
				finiteWant = append(finiteWant, w)
			}
		}
		var finiteGot []float64
		for _, g := range got {
			if !math.IsInf(g, 1) {
				finiteGot = append(finiteGot, g)
			}
		}
		if len(finiteGot) != len(finiteWant) {
			t.Fatalf("trial %d: %d finite scores, want %d", trial, len(finiteGot), len(finiteWant))
		}
		for i := range finiteGot {
			if math.Abs(finiteGot[i]-finiteWant[i]) > 1e-9*(1+math.Abs(finiteWant[i])) {
				t.Fatalf("trial %d: drain score[%d] = %g, want %g", trial, i, finiteGot[i], finiteWant[i])
			}
		}
	}
}

func TestIncrementalCEA(t *testing.T) {
	rng := rand.New(rand.NewSource(302))
	for trial := 0; trial < 30; trial++ {
		inst := randomInstance(t, rng, false)
		agg := randomAggregate(rng, inst.g.D())
		mem := expand.NewMemorySource(inst.g)
		it, err := NewTopKIterator(mem, inst.loc, agg, Options{Engine: CEA})
		if err != nil {
			t.Fatal(err)
		}
		// Pull three results.
		for i := 0; i < 3; i++ {
			if _, ok, err := it.Next(); err != nil || !ok {
				break
			}
		}
		if mem.Count.Snapshot().Adjacency > int64(inst.g.NumNodes()) {
			t.Fatalf("trial %d: incremental CEA fetched %d adjacency records for %d nodes",
				trial, mem.Count.Snapshot().Adjacency, inst.g.NumNodes())
		}
	}
}

func TestIncrementalEmpty(t *testing.T) {
	topo := gen.Path(4)
	g, err := gen.Assemble(topo, gen.UnitCosts(topo, 2), nil, false)
	if err != nil {
		t.Fatal(err)
	}
	it, err := NewTopKIterator(expand.NewMemorySource(g), graph.Location{Edge: 0, T: 0.5}, vec.NewWeighted(1, 1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := it.Next(); err != nil || ok {
		t.Errorf("empty network: Next = ok=%v err=%v, want exhausted", ok, err)
	}
	// Subsequent calls stay exhausted.
	if _, ok, _ := it.Next(); ok {
		t.Error("exhausted iterator revived")
	}
}

func TestIncrementalDimMismatch(t *testing.T) {
	topo := gen.Path(3)
	g, err := gen.Assemble(topo, gen.UnitCosts(topo, 2), nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewTopKIterator(expand.NewMemorySource(g), graph.Location{Edge: 0, T: 0}, vec.NewWeighted(1), Options{}); err == nil {
		t.Error("dimensionality mismatch accepted")
	}
}

// Incremental stats must accumulate.
func TestIncrementalStats(t *testing.T) {
	inst := randomInstance(t, rand.New(rand.NewSource(303)), false)
	agg := randomAggregate(rand.New(rand.NewSource(304)), inst.g.D())
	it, err := NewTopKIterator(expand.NewMemorySource(inst.g), inst.loc, agg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := it.Next(); err != nil || !ok {
		t.Skip("instance has no reachable facilities")
	}
	s := it.Stats()
	if s.Pops == 0 {
		t.Error("stats should record pops after a successful Next")
	}
}
