package core

import (
	"math"
	"testing"

	"mcn/internal/expand"
	"mcn/internal/graph"
	"mcn/internal/vec"
)

// directedFork builds a one-way path where facility B is unreachable from
// the second query location, so its expansion exhausts without popping B
// and the drivers must finalize: unknown components become +Inf and the
// remaining candidates are pinned in deterministic order.
//
//	0 →(1)→ 1[B at end]    1 →(2)→ 2    2 →(1)→ 3[A at end]
func directedFork(t *testing.T) (*graph.Graph, []graph.Location) {
	t.Helper()
	b := graph.NewBuilder(1, true)
	n := make([]graph.NodeID, 4)
	for i := range n {
		n[i] = b.AddNode(float64(i), 0)
	}
	eB := b.AddEdge(n[0], n[1], vec.Of(1))
	b.AddEdge(n[1], n[2], vec.Of(2))
	eA := b.AddEdge(n[2], n[3], vec.Of(1))
	b.AddFacility(eB, 1.0)
	b.AddFacility(eA, 1.0)
	g := b.MustBuild()
	return g, []graph.Location{
		{Edge: eB, T: 0}, // reaches B (cost 1) and A (cost 4)
		{Edge: eA, T: 0}, // reaches A only: B is behind the one-way path
	}
}

// Exhaustion before every candidate pins: both facilities must be reported
// with and without the Sec. IV-A enhancements. Without them the run ends
// through the finalize path, which must complete B's unreached component to
// +Inf; with them B is emitted by the first-NN shortcut and may legally
// keep an unknown component (the search ends as soon as the set is proven).
func TestMultiSourceSkylineFinalize(t *testing.T) {
	g, locs := directedFork(t)
	src := expand.NewMemorySource(g)
	for _, opt := range []Options{{}, {NoEnhancements: true}} {
		res, err := MultiSourceSkyline(src, 0, locs, opt)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Facilities) != 2 {
			t.Fatalf("enhancements=%v: %d facilities, want 2", !opt.NoEnhancements, len(res.Facilities))
		}
		if !opt.NoEnhancements {
			continue
		}
		sawInf := false
		for _, f := range res.Facilities {
			for _, c := range f.Costs {
				if math.IsInf(c, 1) {
					sawInf = true
				}
			}
		}
		if !sawInf {
			t.Errorf("no +Inf component in %+v; finalize did not complete unreached costs", res.Facilities)
		}
	}
}

// Top-k finalize: exhaustion with fewer than k pins must still rank every
// reachable facility, +Inf components included, in deterministic order.
func TestMultiSourceTopKFinalize(t *testing.T) {
	g, locs := directedFork(t)
	src := expand.NewMemorySource(g)
	agg := vec.NewWeighted(1, 1)
	res, err := MultiSourceTopK(src, 0, locs, agg, 5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Facilities) != 2 {
		t.Fatalf("got %d facilities, want 2 (k capped by reachability)", len(res.Facilities))
	}
	// The fully reachable facility must rank first; the +Inf-scored one last.
	if !math.IsInf(res.Facilities[1].Score, 1) {
		t.Errorf("last-ranked score = %g, want +Inf", res.Facilities[1].Score)
	}
	if math.IsInf(res.Facilities[0].Score, 1) {
		t.Error("first-ranked facility has +Inf score")
	}
}

// Plain top-k with k beyond the facility count exercises the growing-stage
// exhaustion finalize.
func TestTopKExhaustsBelowK(t *testing.T) {
	g, _ := directedFork(t)
	src := expand.NewMemorySource(g)
	loc := graph.Location{Edge: 0, T: 0}
	res, err := TopK(src, loc, vec.NewWeighted(1), 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Facilities) != 2 {
		t.Fatalf("got %d facilities, want 2", len(res.Facilities))
	}
	if res.Facilities[0].Score > res.Facilities[1].Score {
		t.Error("results not in ascending score order")
	}
}
