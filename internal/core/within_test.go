package core

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"mcn/internal/expand"
	"mcn/internal/gen"
	"mcn/internal/graph"
	"mcn/internal/testnet"
	"mcn/internal/vec"
)

func TestWithinMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(1400))
	for trial := 0; trial < 80; trial++ {
		inst := randomInstance(t, rng, trial%3 == 0)
		d := inst.g.D()
		budget := make(vec.Costs, d)
		for i := range budget {
			budget[i] = rng.Float64() * 20
		}
		for _, engine := range []Engine{LSA, CEA} {
			res, err := Within(expand.NewMemorySource(inst.g), inst.loc, budget, Options{Engine: engine})
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			oracle := testnet.AllCosts(inst.g, inst.loc)
			var want []graph.FacilityID
			for p := range oracle {
				fits := true
				for i := range budget {
					if oracle[p][i] > budget[i] {
						fits = false
						break
					}
				}
				if fits {
					want = append(want, graph.FacilityID(p))
				}
			}
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			got := res.IDs()
			if len(want) == 0 {
				want = []graph.FacilityID{}
			}
			if len(got) == 0 {
				got = []graph.FacilityID{}
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d %v: within %v, oracle %v (budget %v)", trial, engine, got, want, budget)
			}
			checkReportedCosts(t, inst, res, "within")
		}
	}
}

func TestWithinLocality(t *testing.T) {
	// A tight budget must not traverse the whole network.
	topo := gen.Grid(60, 60, 0.1, rand.New(rand.NewSource(1401)))
	costs := gen.UnitCosts(topo, 2)
	pls := gen.UniformFacilities(topo, 2000, rand.New(rand.NewSource(1402)))
	g, err := gen.Assemble(topo, costs, pls, false)
	if err != nil {
		t.Fatal(err)
	}
	mem := expand.NewMemorySource(g)
	res, err := Within(mem, graph.Location{Edge: 0, T: 0}, vec.Of(3, 3), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if mem.Count.Snapshot().Adjacency > int64(g.NumNodes()/10) {
		t.Errorf("range query touched %d of %d nodes; not local", mem.Count.Snapshot().Adjacency, g.NumNodes())
	}
	for _, f := range res.Facilities {
		for i, c := range f.Costs {
			if c > 3 {
				t.Fatalf("facility %d exceeds budget in dim %d: %g", f.ID, i, c)
			}
		}
	}
}

func TestWithinValidation(t *testing.T) {
	topo := gen.Path(3)
	g, err := gen.Assemble(topo, gen.UnitCosts(topo, 2), nil, false)
	if err != nil {
		t.Fatal(err)
	}
	src := expand.NewMemorySource(g)
	loc := graph.Location{Edge: 0, T: 0.5}
	if _, err := Within(src, loc, vec.Of(1), Options{}); err == nil {
		t.Error("wrong budget dimensionality accepted")
	}
	if _, err := Within(src, loc, vec.Of(1, -2), Options{}); err == nil {
		t.Error("negative budget accepted")
	}
	if _, err := Within(src, loc, vec.Of(1, vec.Unknown()), Options{}); err == nil {
		t.Error("incomplete budget accepted")
	}
}

func TestWithinZeroBudget(t *testing.T) {
	// Budget zero admits only facilities exactly at the query location.
	topo := gen.Path(3)
	pls := []gen.Placement{{Edge: 1, T: 0.5}, {Edge: 0, T: 0.25}}
	g, err := gen.Assemble(topo, gen.UnitCosts(topo, 2), pls, false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Within(expand.NewMemorySource(g), graph.Location{Edge: 1, T: 0.5}, vec.Of(0, 0), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Facilities) != 1 || res.Facilities[0].ID != 0 {
		t.Errorf("zero-budget range = %v, want the co-located facility only", res.IDs())
	}
}
