package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"mcn/internal/expand"
	"mcn/internal/testnet"
)

func TestNaiveSkylineMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(400))
	for trial := 0; trial < 80; trial++ {
		inst := randomInstance(t, rng, trial%3 == 0)
		res, err := NaiveSkyline(expand.NewMemorySource(inst.g), inst.loc, Options{})
		if err != nil {
			t.Fatal(err)
		}
		want := testnet.Skyline(inst.g, inst.loc)
		got := sortedIDs(res.Facilities)
		if len(want) == 0 {
			want = got[:0]
		}
		if len(got) == 0 {
			got = want[:0]
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: naive skyline %v, oracle %v", trial, got, want)
		}
	}
}

func TestNaiveTopKMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	for trial := 0; trial < 80; trial++ {
		inst := randomInstance(t, rng, false)
		agg := randomAggregate(rng, inst.g.D())
		k := 1 + rng.Intn(8)
		res, err := NaiveTopK(expand.NewMemorySource(inst.g), inst.loc, agg, k, Options{})
		if err != nil {
			t.Fatal(err)
		}
		checkTopKScores(t, inst, agg, k, res, "naive")
	}
}

// The naive baseline must read the whole network d times; LSA must read
// less on localised queries (this is the paper's core motivation).
func TestNaiveReadsEverything(t *testing.T) {
	inst := randomInstance(t, rand.New(rand.NewSource(402)), false)
	mem := expand.NewMemorySource(inst.g)
	if _, err := NaiveSkyline(mem, inst.loc, Options{}); err != nil {
		t.Fatal(err)
	}
	// Each of the d expansions must touch (almost) every node. Undirected
	// connected topologies make all nodes reachable.
	if !inst.g.Directed() {
		want := int64(inst.g.D() * inst.g.NumNodes())
		if mem.Count.Snapshot().Adjacency < want {
			t.Errorf("naive adjacency accesses = %d, want >= %d (d complete expansions)", mem.Count.Snapshot().Adjacency, want)
		}
	}
}

func TestNaiveTopKBadK(t *testing.T) {
	inst := randomInstance(t, rand.New(rand.NewSource(403)), false)
	agg := randomAggregate(rand.New(rand.NewSource(404)), inst.g.D())
	if _, err := NaiveTopK(expand.NewMemorySource(inst.g), inst.loc, agg, 0, Options{}); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestMaterializeAllVectors(t *testing.T) {
	rng := rand.New(rand.NewSource(405))
	inst := randomInstance(t, rng, false)
	vectors, _, err := MaterializeAll(expand.NewMemorySource(inst.g), inst.loc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	oracle := testnet.AllCosts(inst.g, inst.loc)
	for id, v := range vectors {
		for i := range v {
			want := oracle[id][i]
			if math.IsInf(v[i], 1) && math.IsInf(want, 1) {
				continue
			}
			if math.Abs(v[i]-want) > 1e-9*(1+math.Abs(want)) {
				t.Fatalf("facility %d cost %d = %g, oracle %g", id, i, v[i], want)
			}
		}
	}
}
