package core

import (
	"context"
	"errors"
	"iter"

	"mcn/internal/expand"
	"mcn/internal/graph"
	"mcn/internal/vec"
)

// errStreamStopped is the sentinel the drivers return when a streaming
// consumer stops early (breaks out of its range loop). It never escapes the
// Seq adapters: an early break is a normal outcome, not an error.
var errStreamStopped = errors.New("core: stream consumer stopped")

// SkylineSeq returns a range-over-func iterator streaming each confirmed
// skyline facility the moment the growing/shrinking driver proves it
// undominated — the same facilities, in the same progressive order, that a
// batch Skyline call delivers through Options.OnResult. Cost vectors may
// still carry unknown components at emission time (the first-NN shortcut
// reports before all d expansions reach the facility); the batch call's
// final Result is the surface for complete vectors.
//
// Breaking out of the range loop stops the underlying query at the next
// emission or driver round, releasing its expansion work early. A
// cancellation of ctx or an internal failure is yielded once as a non-nil
// error (with a zero Facility) and terminates the stream. The query runs
// entirely inside the consumer's loop: no goroutine is spawned and nothing
// is retained once the loop exits.
func SkylineSeq(ctx context.Context, src expand.Source, loc graph.Location, opt Options) iter.Seq2[Facility, error] {
	return func(yield func(Facility, error) bool) {
		opt = opt.BindContext(ctx)
		shared := engineSource(src, opt.Engine)
		exps := make([]*expand.Expansion, shared.D())
		for i := range exps {
			x, err := expand.New(shared, i, loc, expand.WithScratch(opt.Scratch))
			if err != nil {
				yield(Facility{}, err)
				return
			}
			exps[i] = x
		}
		// stopped guards against yielding after the consumer broke out of
		// its loop: the driver may still surface an interrupt or expansion
		// error while winding down the round, and a range-over-func must
		// never be re-entered once yield returned false.
		stopped := false
		s := newSkylineRun(shared, exps, opt, func(f Facility) bool {
			if !yield(f, nil) {
				stopped = true
				return false
			}
			return true
		})
		if err := s.run(); err != nil && !stopped && !errors.Is(err, errStreamStopped) {
			yield(Facility{}, err)
		}
	}
}

// TopKSeq returns a range-over-func iterator yielding facilities in
// ascending aggregate-score order, on demand and without fixing k in
// advance — the incremental top-k query (paper Sec. V) as a streaming
// surface. Ranged to exhaustion it enumerates every facility reachable
// under at least one cost type; breaking out of the loop simply abandons
// the search, so "pull until satisfied" is the intended use. A ctx
// cancellation or internal failure is yielded once as a non-nil error.
func TopKSeq(ctx context.Context, src expand.Source, loc graph.Location, agg vec.Aggregate, opt Options) iter.Seq2[Facility, error] {
	return func(yield func(Facility, error) bool) {
		it, err := NewTopKIterator(src, loc, agg, opt.BindContext(ctx))
		if err != nil {
			yield(Facility{}, err)
			return
		}
		defer it.Close()
		for {
			f, ok, err := it.Next()
			if err != nil {
				yield(Facility{}, err)
				return
			}
			if !ok {
				return
			}
			if !yield(f, nil) {
				return
			}
		}
	}
}
