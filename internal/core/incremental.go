package core

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"mcn/internal/expand"
	"mcn/internal/graph"
	"mcn/internal/vec"
)

// ErrIteratorClosed is returned by TopKIterator.Next after Close.
var ErrIteratorClosed = errors.New("core: top-k iterator closed")

// TopKIterator is the incremental top-k query of the paper (Sec. V): k is
// not known in advance, and each Next call reports the facility with the
// next-smallest aggregate cost. Nothing is ever eliminated — invoked |P|
// times the iterator enumerates every facility reachable under at least one
// cost type in ascending score order.
//
// Iterators outlive the call that created them and may hold borrowed pooled
// state (Options.Scratch); callers must Close them when done pulling
// results. Next is single-goroutine, but Close is safe to call from any
// goroutine, any number of times — it waits for an in-flight Next to return
// (the closed flag makes it return promptly, at its next poll) and runs the
// release hook exactly once, so the scratch is never handed back to the
// pool while a Next is still expanding on it.
type TopKIterator struct {
	src expand.Source
	agg vec.Aggregate
	opt Options
	d   int

	exps      []*expand.Expansion
	exhausted []bool

	tracked map[graph.FacilityID]*tracked
	scores  map[graph.FacilityID]float64
	ready   []*tracked // pinned, unreported, sorted by (score, id)
	drained bool
	stats   Stats

	closed    atomic.Bool
	closeOnce sync.Once
	release   func()
	// mu serialises Next against the releasing half of Close: Close may not
	// return borrowed scratch while a Next is still expanding on it.
	mu sync.Mutex
}

// NewTopKIterator starts an incremental top-k query at loc.
func NewTopKIterator(src expand.Source, loc graph.Location, agg vec.Aggregate, opt Options) (*TopKIterator, error) {
	if agg.Dims() != src.D() {
		return nil, fmt.Errorf("core: aggregate expects %d cost types, network has %d", agg.Dims(), src.D())
	}
	it := &TopKIterator{
		src:     engineSource(src, opt.Engine),
		agg:     agg,
		opt:     opt,
		tracked: make(map[graph.FacilityID]*tracked),
		scores:  make(map[graph.FacilityID]float64),
	}
	it.d = it.src.D()
	it.exps = make([]*expand.Expansion, it.d)
	it.exhausted = make([]bool, it.d)
	for i := 0; i < it.d; i++ {
		x, err := expand.New(it.src, i, loc, expand.WithScratch(opt.Scratch))
		if err != nil {
			return nil, err
		}
		it.exps[i] = x
	}
	return it, nil
}

// SetRelease registers fn to run exactly once when the iterator is closed;
// the facade uses it to return borrowed pooled scratch. It must be called
// before the iterator is shared across goroutines.
func (it *TopKIterator) SetRelease(fn func()) { it.release = fn }

// Close ends the query and releases any borrowed state. It is idempotent
// and safe for concurrent use: however many goroutines race on it, the
// release hook runs exactly once, and never before an in-flight Next has
// returned (the closed flag aborts it at its next poll). After Close, Next
// returns ErrIteratorClosed.
func (it *TopKIterator) Close() error {
	it.closed.Store(true)
	it.closeOnce.Do(func() {
		it.mu.Lock() // drain an in-flight Next before releasing its scratch
		defer it.mu.Unlock()
		if it.release != nil {
			it.release()
		}
	})
	return nil
}

// Stats returns the work counters accumulated so far.
func (it *TopKIterator) Stats() Stats {
	s := it.stats
	for _, x := range it.exps {
		s.NodeExpansions += x.NodeCount()
	}
	return s
}

// Next reports the facility with the next-smallest aggregate cost. ok is
// false once every reachable facility has been reported.
func (it *TopKIterator) Next() (Facility, bool, error) {
	it.mu.Lock()
	defer it.mu.Unlock()
	for {
		if it.closed.Load() {
			return Facility{}, false, ErrIteratorClosed
		}
		if err := it.opt.interrupted(); err != nil {
			return Facility{}, false, err
		}
		if f, ok := it.tryReport(); ok {
			return f, true, nil
		}
		if it.allExhausted() {
			it.drainFill()
			if len(it.ready) == 0 {
				return Facility{}, false, nil
			}
			return it.pop(), true, nil
		}
		progressed, err := it.advance()
		if err != nil {
			return Facility{}, false, err
		}
		if !progressed && !it.allExhausted() {
			return Facility{}, false, fmt.Errorf("core: incremental top-k made no progress")
		}
	}
}

// tryReport checks the paper's three reporting conditions for the head of
// the ready queue: it is pinned (by construction), it has the smallest score
// among pinned unreported facilities (queue order), and no unpinned
// candidate's aggregate lower bound — nor the bound f(t₁,…,t_d) for
// facilities not yet encountered — is smaller.
func (it *TopKIterator) tryReport() (Facility, bool) {
	if len(it.ready) == 0 {
		return Facility{}, false
	}
	best := it.ready[0]
	bestScore := it.scores[best.id]

	heads := make(vec.Costs, it.d)
	for i, x := range it.exps {
		heads[i] = x.HeadKey()
	}
	if it.agg.Score(heads) < bestScore {
		return Facility{}, false // an unseen facility could still score lower
	}
	for _, q := range it.tracked {
		if q.pinned {
			continue
		}
		if it.agg.Score(q.costs.FillUnknown(heads)) < bestScore {
			return Facility{}, false
		}
	}
	return it.pop(), true
}

func (it *TopKIterator) pop() Facility {
	tr := it.ready[0]
	it.ready = it.ready[1:]
	return Facility{ID: tr.id, Costs: tr.costs.Clone(), Score: it.scores[tr.id]}
}

// advance performs one round-robin pass: each live expansion reports its
// next NN.
func (it *TopKIterator) advance() (bool, error) {
	progressed := false
	for i := 0; i < it.d; i++ {
		if it.exhausted[i] {
			continue
		}
		p, c, ok, err := it.exps[i].Next()
		if err != nil {
			return false, err
		}
		if !ok {
			it.exhausted[i] = true
			continue
		}
		progressed = true
		it.stats.Pops++
		tr := it.tracked[p]
		if tr == nil {
			tr = newTracked(p, it.d)
			it.tracked[p] = tr
			it.stats.Tracked++
		}
		pinnedNow, err := tr.setCost(i, c)
		if err != nil {
			return false, err
		}
		if pinnedNow {
			it.push(tr)
		}
	}
	return progressed, nil
}

func (it *TopKIterator) push(tr *tracked) {
	score := it.agg.Score(tr.costs)
	it.scores[tr.id] = score
	at := sort.Search(len(it.ready), func(i int) bool {
		si := it.scores[it.ready[i].id]
		if si != score {
			return si > score
		}
		return it.ready[i].id > tr.id
	})
	it.ready = append(it.ready, nil)
	copy(it.ready[at+1:], it.ready[at:])
	it.ready[at] = tr
}

// drainFill closes the query once the network is exhausted: facilities never
// popped under some cost type are unreachable there (+Inf).
func (it *TopKIterator) drainFill() {
	if it.drained {
		return
	}
	it.drained = true
	for _, tr := range it.tracked {
		if tr.pinned {
			continue
		}
		for j := range tr.costs {
			if vec.IsUnknown(tr.costs[j]) {
				tr.costs[j] = math.Inf(1)
				tr.known++
			}
		}
		tr.pinned = true
		it.push(tr)
	}
}

func (it *TopKIterator) allExhausted() bool {
	for _, e := range it.exhausted {
		if !e {
			return false
		}
	}
	return true
}
