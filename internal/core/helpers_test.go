package core

import (
	"testing"

	"mcn/internal/graph"
	"mcn/internal/storage"
)

// diskNetwork builds a disk-resident database for g and opens it with the
// given buffer fraction.
func diskNetwork(t *testing.T, g *graph.Graph, frac float64) *storage.Network {
	t.Helper()
	dev, err := storage.BuildMem(g)
	if err != nil {
		t.Fatal(err)
	}
	net, err := storage.Open(dev, frac)
	if err != nil {
		t.Fatal(err)
	}
	return net
}
