package core

import (
	"sort"

	"mcn/internal/graph"
)

// MergeSkylines combines per-partition skyline results into the global
// skyline. Dominance is associative: a facility dominated in the union is
// dominated by some facility of the union, so taking the union of partial
// skylines and re-filtering once yields exactly the skyline of the combined
// facility set. Nil parts are skipped; Stats are summed across parts.
//
// Order is preserved: facilities keep their first-occurrence order across
// parts, so merging N identical replica results returns the first part's
// facility list unchanged (replicated backends answer the same query with
// the same bytes, and the merge is an idempotent no-op on them).
//
// The dominance filter only judges pairs whose vectors are both complete.
// Skyline members may carry unknown (NaN) components when the search
// answered without pinning them; the strict comparison in vec.Dominates is
// not defined for those, so an incomplete vector neither dominates nor is
// dominated here. That is conservative — never dropping a facility a
// single-node run would have kept.
func MergeSkylines(parts ...*Result) *Result {
	merged := dedupFacilities(parts)
	out := merged.Facilities[:0]
	for _, f := range merged.Facilities {
		dominated := false
		if f.Costs.Complete() {
			for _, kept := range out {
				if kept.Costs.Complete() && kept.Costs.Dominates(f.Costs) {
					dominated = true
					break
				}
			}
		}
		if dominated {
			continue
		}
		// A newly kept facility can retroactively dominate earlier survivors
		// (parts arrive in no particular cost order).
		if f.Costs.Complete() {
			n := 0
			for _, kept := range out {
				if kept.Costs.Complete() && f.Costs.Dominates(kept.Costs) {
					continue
				}
				out[n] = kept
				n++
			}
			out = out[:n]
		}
		out = append(out, f)
	}
	merged.Facilities = out
	return merged
}

// MergeTopK combines per-partition top-k results into the global top-k:
// duplicates collapse to their first occurrence, survivors sort by
// ascending score (stable, so equal-score facilities keep first-occurrence
// order) and the list truncates to k when k > 0. Merging identical replica
// results returns the first part's list unchanged: it is already sorted and
// already length ≤ k. Nil parts are skipped; Stats are summed.
func MergeTopK(k int, parts ...*Result) *Result {
	merged := dedupFacilities(parts)
	sort.SliceStable(merged.Facilities, func(i, j int) bool {
		return merged.Facilities[i].Score < merged.Facilities[j].Score
	})
	if k > 0 && len(merged.Facilities) > k {
		merged.Facilities = merged.Facilities[:k]
	}
	return merged
}

// dedupFacilities concatenates the parts' facilities keeping only the first
// occurrence of each id, and sums their Stats.
func dedupFacilities(parts []*Result) *Result {
	out := &Result{}
	total := 0
	for _, p := range parts {
		if p != nil {
			total += len(p.Facilities)
		}
	}
	out.Facilities = make([]Facility, 0, total)
	seen := make(map[graph.FacilityID]struct{}, total)
	for _, p := range parts {
		if p == nil {
			continue
		}
		out.Stats.Pops += p.Stats.Pops
		out.Stats.GrowingPops += p.Stats.GrowingPops
		out.Stats.NodeExpansions += p.Stats.NodeExpansions
		out.Stats.PrunedNodes += p.Stats.PrunedNodes
		out.Stats.Tracked += p.Stats.Tracked
		for _, f := range p.Facilities {
			if _, dup := seen[f.ID]; dup {
				continue
			}
			seen[f.ID] = struct{}{}
			out.Facilities = append(out.Facilities, f)
		}
	}
	return out
}
