package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"mcn/internal/expand"
	"mcn/internal/gen"
	"mcn/internal/graph"
	"mcn/internal/testnet"
	"mcn/internal/vec"
)

// Zero-cost edges create equal-key heap entries between nodes and
// facilities; the expansion's node-before-facility ordering and the skyline
// pending machinery must keep results exact.
func TestSkylineZeroCostEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(1000))
	for trial := 0; trial < 100; trial++ {
		d := 2 + rng.Intn(2)
		n := 2 + rng.Intn(15)
		topo := gen.RandomConnected(n, rng.Intn(n), rng)
		costs := make([]vec.Costs, topo.NumEdges())
		for e := range costs {
			c := make(vec.Costs, d)
			for j := range c {
				c[j] = float64(rng.Intn(3)) // 0, 1 or 2 — plenty of zeros
			}
			costs[e] = c
		}
		nf := 1 + rng.Intn(10)
		pls := make([]gen.Placement, nf)
		for i := range pls {
			pls[i] = gen.Placement{Edge: uint32(rng.Intn(topo.NumEdges())), T: float64(rng.Intn(2))}
		}
		g, err := gen.Assemble(topo, costs, pls, false)
		if err != nil {
			t.Fatal(err)
		}
		inst := instance{g: g, loc: graph.Location{Edge: graph.EdgeID(rng.Intn(g.NumEdges())), T: 0.5}}
		for _, engine := range []Engine{LSA, CEA} {
			res, err := Skyline(expand.NewMemorySource(g), inst.loc, Options{Engine: engine})
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			checkSkylineTieEquivalent(t, inst, res, engine.String())
		}
	}
}

// A facility at the exact query location has an all-zero cost vector and
// dominates everything else (unless tied).
func TestSkylineFacilityAtQuery(t *testing.T) {
	topo := gen.Path(4)
	pls := []gen.Placement{{Edge: 1, T: 0.5}, {Edge: 2, T: 0.25}}
	g, err := gen.Assemble(topo, gen.UnitCosts(topo, 3), pls, false)
	if err != nil {
		t.Fatal(err)
	}
	loc := graph.Location{Edge: 1, T: 0.5}
	for _, engine := range []Engine{LSA, CEA} {
		res, err := Skyline(expand.NewMemorySource(g), loc, Options{Engine: engine})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Facilities) != 1 || res.Facilities[0].ID != 0 {
			t.Errorf("%v: skyline = %v, want only the co-located facility", engine, res.IDs())
		}
		for _, c := range res.Facilities[0].Costs {
			if !vec.IsUnknown(c) && c != 0 {
				t.Errorf("%v: co-located facility has nonzero cost %v", engine, res.Facilities[0].Costs)
			}
		}
	}
}

// Parallel edges between the same nodes (common in real road data: a
// motorway and a service road) must be handled as distinct edges. The two
// facilities here both sit at node 1 with exact-tie vectors (1, 1): under
// the library's distinct-value guarantee the skyline reports at least one of
// them (an unseen exact duplicate of the first pinned facility may be
// omitted — see DESIGN.md §5), and never anything dominated.
func TestSkylineParallelEdges(t *testing.T) {
	b := graph.NewBuilder(2, false)
	b.AddNodes(2)
	fast := b.AddEdge(0, 1, vec.Of(1, 10))
	slow := b.AddEdge(0, 1, vec.Of(10, 1))
	f1 := b.AddFacility(fast, 1.0)
	f2 := b.AddFacility(slow, 1.0)
	g := b.MustBuild()
	loc := graph.Location{Edge: fast, T: 0}
	res, err := Skyline(expand.NewMemorySource(g), loc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	inst := instance{g: g, loc: loc}
	checkSkylineTieEquivalent(t, inst, res, "parallel-edges")
	if len(res.Facilities) < 1 {
		t.Fatal("skyline empty")
	}
	for _, f := range res.Facilities {
		if f.ID != f1 && f.ID != f2 {
			t.Errorf("unexpected facility %d", f.ID)
		}
	}
	// Whichever representative is reported must carry the tied vector.
	want := testnet.AllCosts(g, loc)[res.Facilities[0].ID]
	if !want.Equal(vec.Of(1, 1)) {
		t.Errorf("representative vector = %v, want (1, 1)", want)
	}
}

// High dimensionality (d=8, beyond the paper's 2–5) must still be exact.
func TestSkylineHighDimensional(t *testing.T) {
	rng := rand.New(rand.NewSource(1001))
	for trial := 0; trial < 10; trial++ {
		const d = 8
		topo := gen.RandomConnected(15+rng.Intn(10), 10, rng)
		costs := gen.AssignCosts(topo, d, gen.AntiCorrelated, rng)
		pls := gen.UniformFacilities(topo, 12, rng)
		g, err := gen.Assemble(topo, costs, pls, false)
		if err != nil {
			t.Fatal(err)
		}
		inst := instance{g: g, loc: graph.Location{Edge: 0, T: 0.5}}
		res, err := Skyline(expand.NewMemorySource(g), inst.loc, Options{Engine: CEA})
		if err != nil {
			t.Fatal(err)
		}
		checkSkylineExact(t, inst, res, "d=8")
	}
}

// Boundary facility positions T=0 and T=1 coincide with nodes.
func TestFacilitiesAtNodes(t *testing.T) {
	rng := rand.New(rand.NewSource(1002))
	for trial := 0; trial < 50; trial++ {
		n := 3 + rng.Intn(10)
		topo := gen.RandomConnected(n, rng.Intn(6), rng)
		costs := gen.AssignCosts(topo, 2, gen.Independent, rng)
		var pls []gen.Placement
		for i := 0; i < 1+rng.Intn(6); i++ {
			pls = append(pls, gen.Placement{Edge: uint32(rng.Intn(topo.NumEdges())), T: float64(rng.Intn(2))})
		}
		g, err := gen.Assemble(topo, costs, pls, false)
		if err != nil {
			t.Fatal(err)
		}
		inst := instance{g: g, loc: graph.Location{Edge: 0, T: 1}}
		res, err := Skyline(expand.NewMemorySource(g), inst.loc, Options{})
		if err != nil {
			t.Fatal(err)
		}
		checkSkylineTieEquivalent(t, inst, res, "node-facilities")
	}
}

// quick.Check: for arbitrary small networks, the skyline never contains a
// dominated facility and never misses an undominated cost vector.
func TestSkylineQuickProperty(t *testing.T) {
	type seedInput struct {
		Seed int64
	}
	f := func(in seedInput) bool {
		rng := rand.New(rand.NewSource(in.Seed))
		n := 2 + rng.Intn(20)
		topo := gen.RandomConnected(n, rng.Intn(10), rng)
		costs := gen.RandomIntegerCosts(topo, 2, 4, rng)
		pls := gen.UniformFacilities(topo, 1+rng.Intn(12), rng)
		g, err := gen.Assemble(topo, costs, pls, false)
		if err != nil {
			return false
		}
		loc := graph.Location{Edge: graph.EdgeID(rng.Intn(g.NumEdges())), T: rng.Float64()}
		res, err := Skyline(expand.NewMemorySource(g), loc, Options{Engine: CEA})
		if err != nil {
			return false
		}
		oracle := testnet.AllCosts(g, loc)
		for _, fac := range res.Facilities {
			for q := range oracle {
				if graph.FacilityID(q) != fac.ID && oracle[q].Dominates(oracle[fac.ID]) {
					return false // reported a dominated facility
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// quick.Check: top-1 score always equals the minimum oracle score.
func TestTopOneQuickProperty(t *testing.T) {
	type seedInput struct {
		Seed int64
	}
	f := func(in seedInput) bool {
		rng := rand.New(rand.NewSource(in.Seed))
		n := 2 + rng.Intn(20)
		topo := gen.RandomConnected(n, rng.Intn(8), rng)
		costs := gen.AssignCosts(topo, 3, gen.Distribution(rng.Intn(3)), rng)
		pls := gen.UniformFacilities(topo, 1+rng.Intn(10), rng)
		g, err := gen.Assemble(topo, costs, pls, false)
		if err != nil {
			return false
		}
		loc := graph.Location{Edge: graph.EdgeID(rng.Intn(g.NumEdges())), T: rng.Float64()}
		agg := vec.NewWeighted(rng.Float64(), rng.Float64(), rng.Float64())
		res, err := TopK(expand.NewMemorySource(g), loc, agg, 1, Options{})
		if err != nil || len(res.Facilities) != 1 {
			return false
		}
		want := testnet.TopKScores(g, loc, agg, 1)
		return len(want) == 1 && math.Abs(res.Facilities[0].Score-want[0]) < 1e-9*(1+want[0])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// The skyline is invariant under the query engine, enhancement flags, and
// the storage backend, all at once.
func TestSkylineInvariantAcrossConfigurations(t *testing.T) {
	rng := rand.New(rand.NewSource(1003))
	for trial := 0; trial < 25; trial++ {
		inst := randomInstance(t, rng, trial%2 == 0)
		net := diskNetwork(t, inst.g, 0.05)
		var results [][]graph.FacilityID
		for _, opts := range []Options{
			{Engine: LSA},
			{Engine: CEA},
			{Engine: LSA, NoEnhancements: true},
			{Engine: CEA, NoEnhancements: true},
		} {
			memRes, err := Skyline(expand.NewMemorySource(inst.g), inst.loc, opts)
			if err != nil {
				t.Fatal(err)
			}
			diskRes, err := Skyline(net, inst.loc, opts)
			if err != nil {
				t.Fatal(err)
			}
			results = append(results, sortedIDs(memRes.Facilities), sortedIDs(diskRes.Facilities))
		}
		for i := 1; i < len(results); i++ {
			if !reflect.DeepEqual(results[0], results[i]) {
				t.Fatalf("trial %d: configuration %d differs: %v vs %v", trial, i, results[0], results[i])
			}
		}
	}
}
