// Package core implements the paper's query algorithms over multi-cost
// networks: the Local Search Algorithm (LSA) and Combined Expansion
// Algorithm (CEA) for MCN skylines (Sec. IV), top-k processing with
// lower-bound pruning (Sec. V), the incremental top-k iterator, and the
// straightforward d-complete-expansions baselines the paper compares
// against.
package core

import (
	"context"
	"fmt"

	"mcn/internal/expand"
	"mcn/internal/graph"
	"mcn/internal/vec"
)

// Engine selects how the d per-cost expansions access the network store.
type Engine int

// Supported engines.
const (
	// LSA runs d independent expansions; a record crossed by several
	// expansions is fetched from the store each time (up to d times).
	LSA Engine = iota
	// CEA shares every fetched record among the d expansions, so each
	// adjacency or facility record is fetched at most once per query. NN
	// order, candidate sets and results are identical to LSA.
	CEA
)

// String implements fmt.Stringer.
func (e Engine) String() string {
	switch e {
	case LSA:
		return "LSA"
	case CEA:
		return "CEA"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// Facility is one query answer: a facility with its cost vector and, for
// top-k queries, its aggregate score. Skyline results emitted before being
// pinned (the first-NN shortcut) may carry unknown components in callbacks;
// final results are as complete as the search made them.
type Facility struct {
	ID    graph.FacilityID
	Costs vec.Costs
	Score float64
}

// Stats describes the work one query performed.
type Stats struct {
	// Pops counts facility NN reports across all d expansions.
	Pops int
	// GrowingPops is Pops at the end of the growing stage.
	GrowingPops int
	// NodeExpansions counts node-expansion events across all d expansions.
	NodeExpansions int
	// PrunedNodes counts node pops discarded by the lower-bound pruning
	// index (Options.Bounds) before their adjacency was read. Always zero
	// for skyline, nearest and incremental top-k queries, which run
	// unpruned (see Options.Bounds).
	PrunedNodes int
	// Tracked is the number of distinct facilities ever tracked (candidates
	// plus directly reported ones).
	Tracked int
}

// Result is a completed skyline or top-k answer. Skyline facilities appear
// in emission (progressive) order; top-k facilities in ascending score
// order.
type Result struct {
	Facilities []Facility
	Stats      Stats
}

// IDs returns the facility ids of the result in order.
func (r *Result) IDs() []graph.FacilityID {
	out := make([]graph.FacilityID, len(r.Facilities))
	for i, f := range r.Facilities {
		out[i] = f.ID
	}
	return out
}

// Options configures skyline and top-k processing.
type Options struct {
	// Engine selects LSA (default) or CEA.
	Engine Engine
	// NoEnhancements disables the paper's Sec. IV-A optimisations — the
	// first-NN direct-skyline shortcut, candidate-edge facility filtering in
	// the shrinking stage, and per-cost expansion stopping — for ablation
	// studies. Results are unaffected.
	NoEnhancements bool
	// OnResult, when set on a skyline query, receives every skyline
	// facility the moment it is confirmed (the algorithms are progressive).
	// The cost vector passed may still contain unknown components.
	OnResult func(Facility)
	// Interrupt, when set, is polled between expansion rounds; a non-nil
	// return aborts the query with that error. The engine layer wires
	// per-query context cancellation and timeouts through it.
	Interrupt func() error
	// Scratch, when set, backs this query's expansions with pooled dense
	// Dijkstra state (array-indexed best-cost and visited markers plus
	// reusable heap backing) instead of per-query hash maps. The facade and
	// engine layers supply one automatically for in-memory networks; it must
	// not be shared between concurrent queries. Results are identical with
	// or without it.
	Scratch *expand.Scratch
	// Bounds, when set, is the precomputed pruning index (internal/index):
	// per-criterion lower bounds from every node to its nearest facility.
	// Fixed-k top-k queries consult it during the shrinking stage and Within
	// uses its budget as a static horizon, discarding popped node labels that
	// provably cannot contribute a result; results stay byte-identical to the
	// unpruned run (only Stats change). Skyline and nearest queries ignore it:
	// skyline's progressive emission order observably depends on the live
	// expansion frontiers that node discards would perturb, and an unbounded
	// nearest/incremental query has no admissible horizon. The bounds must
	// have been built for this source's current facility set — the facade
	// detaches them for dynamic.Maintainer, whose inserts would make them
	// inadmissible.
	Bounds expand.LowerBounder
	// NoPrune disables lower-bound pruning even when Bounds is set, for
	// ablation runs and pruned-vs-unpruned equivalence tests.
	NoPrune bool
}

// interrupted polls the Interrupt hook, if any.
func (o *Options) interrupted() error {
	if o.Interrupt == nil {
		return nil
	}
	return o.Interrupt()
}

// BindContext returns a copy of o whose Interrupt hook also observes ctx:
// once ctx is cancelled or past its deadline, the next interrupt poll aborts
// the query with ctx's error. Any previously installed hook keeps running
// after the ctx check. Contexts that can never be cancelled (Background,
// TODO) are not wired in, so the zero-cost path stays zero-cost. This is the
// single adapter every context-first entry point — the facade, the engine's
// executor, the streaming iterators — funnels through.
func (o Options) BindContext(ctx context.Context) Options {
	if ctx == nil || ctx.Done() == nil {
		return o
	}
	prev := o.Interrupt
	o.Interrupt = func() error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if prev != nil {
			return prev()
		}
		return nil
	}
	return o
}

// engineSource wraps src per the selected engine: CEA layers a per-query
// record memo over it. Zero-copy sources (the flat CSR path) are exempt:
// their records are shared slices with no per-fetch cost, so the memo would
// be pure overhead and CEA degenerates to LSA with identical results.
func engineSource(src expand.Source, e Engine) expand.Source {
	if e == CEA {
		if zc, ok := src.(expand.ZeroCopy); ok && zc.ZeroCopyRecords() {
			return src
		}
		return expand.NewSharedSource(src)
	}
	return src
}

// tracked is the per-facility bookkeeping shared by the drivers: the
// partially known cost vector plus status flags.
type tracked struct {
	id     graph.FacilityID
	costs  vec.Costs
	known  int
	inSky  bool // emitted as a skyline member
	cand   bool // counted in the candidate set CS
	pinned bool // popped by all d expansions (vector complete)
	gone   bool // eliminated
	pend   bool // pinned but held back pending tie resolution
}

func newTracked(id graph.FacilityID, d int) *tracked {
	return &tracked{id: id, costs: vec.New(d)}
}

// setCost records cost i and reports whether the facility just became
// pinned.
func (t *tracked) setCost(i int, c float64) (pinnedNow bool, err error) {
	if !vec.IsUnknown(t.costs[i]) {
		return false, fmt.Errorf("core: facility %d popped twice for cost %d", t.id, i)
	}
	t.costs[i] = c
	t.known++
	if t.known == len(t.costs) && !t.pinned {
		t.pinned = true
		return true, nil
	}
	return false, nil
}
