package core

import (
	"math/rand"
	"testing"

	"mcn/internal/expand"
	"mcn/internal/flat"
	"mcn/internal/gen"
	"mcn/internal/graph"
	"mcn/internal/vec"
)

// FuzzSkylineInvariants drives the progressive skyline over small random
// networks — the fuzzer owns the topology size, cost granularity, query
// position and directedness — and checks the two defining invariants
// against the baseline's materialised cost vectors (MaterializeAll, the
// paper's strawman preparation):
//
//  1. mutual non-dominance: no reported facility dominates another;
//  2. maximality: every unreported reachable facility is dominated by a
//     reported one, or ties one exactly (the documented tie semantics).
//
// It also cross-checks the reported vectors against the materialised ones
// and runs both the map-state and the flat/scratch fast path, so a fuzzed
// counterexample in either backing fails loudly. Run `make fuzz` for a
// fuzzing session; CI runs a short smoke.
func FuzzSkylineInvariants(f *testing.F) {
	f.Add(int64(1), uint8(10), uint8(4), uint8(4), uint8(2), uint8(0), true)
	f.Add(int64(7), uint8(20), uint8(0), uint8(8), uint8(3), uint8(2), false)
	f.Add(int64(42), uint8(3), uint8(9), uint8(1), uint8(4), uint8(5), true)
	f.Fuzz(func(t *testing.T, seed int64, nodes, extra, facs, d, locBits uint8, directed bool) {
		rng := rand.New(rand.NewSource(seed))
		nn := 2 + int(nodes)%24
		topo := gen.RandomConnected(nn, int(extra)%12, rng)
		// Small integer costs make exact ties — the hard case — common.
		costs := gen.RandomIntegerCosts(topo, 1+int(d)%4, 3, rng)
		pls := gen.UniformFacilities(topo, 1+int(facs)%12, rng)
		g, err := gen.Assemble(topo, costs, pls, directed)
		if err != nil {
			t.Fatal(err)
		}
		loc := graph.Location{
			Edge: graph.EdgeID(int(locBits) % g.NumEdges()),
			T:    float64(int(locBits)%8) / 8,
		}

		mem := expand.NewMemorySource(g)
		vectors, _, err := MaterializeAll(mem, loc, Options{})
		if err != nil {
			t.Fatal(err)
		}

		fs := flat.Compile(g)
		sc := expand.NewScratch(fs.NumNodes(), fs.NumEdges(), fs.NumFacilities())
		for _, run := range []struct {
			name string
			opt  Options
			src  expand.Source
		}{
			{"map/LSA", Options{}, mem},
			{"flat/CEA/scratch", Options{Engine: CEA, Scratch: sc}, fs},
		} {
			sc.Reset()
			res, err := Skyline(run.src, loc, run.opt)
			if err != nil {
				t.Fatalf("%s: %v", run.name, err)
			}
			// Result vectors may carry unknown components (the search can end
			// before every expansion reaches an emitted facility); known
			// components must match the baseline exactly, and the dominance
			// invariants are checked on the baseline's complete vectors.
			inSky := make(map[graph.FacilityID]bool, len(res.Facilities))
			for _, fac := range res.Facilities {
				inSky[fac.ID] = true
				want, ok := vectors[fac.ID]
				if !ok {
					t.Fatalf("%s: reported facility %d is unreachable per the baseline", run.name, fac.ID)
				}
				for i, c := range fac.Costs {
					if !vec.IsUnknown(c) && c != want[i] {
						t.Fatalf("%s: facility %d costs %v, baseline materialised %v", run.name, fac.ID, fac.Costs, want)
					}
				}
			}
			// Invariant 1: mutual non-dominance.
			for i, a := range res.Facilities {
				for j, b := range res.Facilities {
					if i != j && vectors[a.ID].Dominates(vectors[b.ID]) {
						t.Fatalf("%s: reported %d dominates reported %d (%v ≺ %v)",
							run.name, a.ID, b.ID, vectors[a.ID], vectors[b.ID])
					}
				}
			}
			// Invariant 2: maximality modulo exact ties.
			for id, v := range vectors {
				if inSky[id] {
					continue
				}
				covered := false
				for _, fac := range res.Facilities {
					if w := vectors[fac.ID]; w.Dominates(v) || w.Equal(v) {
						covered = true
						break
					}
				}
				if !covered {
					t.Fatalf("%s: facility %d (%v) neither reported, dominated nor tied", run.name, id, v)
				}
			}
		}

		// The conventional operator over the same vectors must agree on the
		// undominated set (NaiveSkyline keeps exact-tie duplicates; the
		// progressive result is a subset covering every vector).
		naive, err := NaiveSkyline(mem, loc, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(naive.Facilities) > 0 && len(vectors) > 0 {
			res, err := Skyline(mem, loc, Options{})
			if err != nil {
				t.Fatal(err)
			}
			resIDs := make(map[graph.FacilityID]bool)
			for _, fac := range res.Facilities {
				resIDs[fac.ID] = true
			}
			for _, fac := range naive.Facilities {
				if resIDs[fac.ID] {
					continue
				}
				tied := false
				for id := range resIDs {
					if vectors[id].Equal(fac.Costs) {
						tied = true
						break
					}
				}
				if !tied {
					t.Fatalf("naive skyline member %d (%v) missing from progressive result without a tie",
						fac.ID, fac.Costs)
				}
			}
		}
	})
}
