package core

import (
	"context"
	"errors"
	"testing"
)

// BindContext is the single ctx adapter every entry point funnels through;
// pin its contract directly: never-cancellable contexts must not install a
// hook, cancellation must surface through Interrupt, and a pre-existing
// hook must keep running after the ctx check.
func TestBindContext(t *testing.T) {
	var o Options
	if got := o.BindContext(context.Background()); got.Interrupt != nil {
		t.Error("Background ctx installed an interrupt hook")
	}
	if got := o.BindContext(nil); got.Interrupt != nil { //nolint:staticcheck // nil ctx tolerated by design
		t.Error("nil ctx installed an interrupt hook")
	}

	ctx, cancel := context.WithCancel(context.Background())
	bound := o.BindContext(ctx)
	if bound.Interrupt == nil {
		t.Fatal("cancellable ctx installed no hook")
	}
	if err := bound.interrupted(); err != nil {
		t.Errorf("live ctx: interrupt = %v, want nil", err)
	}
	cancel()
	if err := bound.interrupted(); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled ctx: interrupt = %v, want context.Canceled", err)
	}

	// Chaining: the previous hook runs after a live ctx passes.
	sentinel := errors.New("prev hook")
	prev := Options{Interrupt: func() error { return sentinel }}
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	chained := prev.BindContext(ctx2)
	if err := chained.interrupted(); !errors.Is(err, sentinel) {
		t.Errorf("chained interrupt = %v, want sentinel", err)
	}
	cancel2()
	if err := chained.interrupted(); !errors.Is(err, context.Canceled) {
		t.Errorf("chained cancelled = %v, want context.Canceled (ctx checked first)", err)
	}
}
