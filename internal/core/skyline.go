package core

import (
	"fmt"
	"math"
	"sort"

	"mcn/internal/expand"
	"mcn/internal/graph"
	"mcn/internal/vec"
)

// Skyline computes sky(q): the facilities whose cost vectors are not
// dominated by any other facility (paper Sec. IV). The search is local —
// expansions stop as soon as the remaining network provably contains no
// skyline member — and progressive: confirmed members are delivered through
// opt.OnResult before the query finishes.
//
// Tie semantics: every reported facility is provably undominated, and every
// unreported reachable facility is either dominated or carries a cost vector
// exactly equal to a reported member's. On networks without exact cost ties
// (the paper's setting) the output is exactly sky(q). Facilities reachable
// under no cost type are never reported.
//
// Skyline deliberately ignores Options.Bounds: the progressive emission
// order is part of the result, and both the first-NN shortcut and the
// tie-pending resolution (blocked/resolvePending) consult the live
// expansion head keys, which lower-bound node discards would inflate —
// the same facility set would come out in a different, interleaving-
// dependent order. Pruning here is confined to the queries with a scalar
// horizon (fixed-k top-k and Within), where discards are provably
// invisible; see Options.Bounds.
func Skyline(src expand.Source, loc graph.Location, opt Options) (*Result, error) {
	shared := engineSource(src, opt.Engine)
	exps := make([]*expand.Expansion, shared.D())
	for i := range exps {
		x, err := expand.New(shared, i, loc, expand.WithScratch(opt.Scratch))
		if err != nil {
			return nil, err
		}
		exps[i] = x
	}
	return skylineOverExpansions(shared, exps, opt, nil)
}

// MultiSourceSkyline computes the multi-source skyline of Deng et al. (ICDE
// 2007, the paper's Sec. II-C related work): a single cost type, several
// query locations, and each facility judged by its vector of network
// distances from the query locations. Facilities not dominated under that
// vector are returned. The growing/shrinking machinery of LSA/CEA applies
// unchanged — expansion i simply starts from locs[i] instead of running cost
// type i — so engines, enhancements and progressiveness all carry over. No
// Euclidean lower bounds are used (our cost types are general), matching
// this library's Dijkstra-only setting.
func MultiSourceSkyline(src expand.Source, costIdx int, locs []graph.Location, opt Options) (*Result, error) {
	if len(locs) == 0 {
		return nil, fmt.Errorf("core: multi-source skyline requires at least one location")
	}
	if costIdx < 0 || costIdx >= src.D() {
		return nil, fmt.Errorf("core: cost index %d out of range (d=%d)", costIdx, src.D())
	}
	shared := engineSource(src, opt.Engine)
	exps := make([]*expand.Expansion, len(locs))
	for i, loc := range locs {
		x, err := expand.New(shared, costIdx, loc, expand.WithScratch(opt.Scratch))
		if err != nil {
			return nil, err
		}
		exps[i] = x
	}
	return skylineOverExpansions(shared, exps, opt, nil)
}

// skylineOverExpansions runs the growing/shrinking skyline driver over any
// family of NN expansions; component i of every tracked cost vector is fed
// by exps[i]. deliver, when non-nil, receives every confirmed facility in
// emission order and may stop the query early by returning false (the
// streaming surface); the driver then returns errStreamStopped. The OnResult
// option is layered on the same hook by newSkylineRun.
func skylineOverExpansions(src expand.Source, exps []*expand.Expansion, opt Options, deliver func(Facility) bool) (*Result, error) {
	s := newSkylineRun(src, exps, opt, deliver)
	if err := s.run(); err != nil {
		return nil, err
	}
	return s.result(), nil
}

func newSkylineRun(src expand.Source, exps []*expand.Expansion, opt Options, deliver func(Facility) bool) *skylineRun {
	if deliver == nil {
		cb := opt.OnResult
		deliver = func(f Facility) bool {
			if cb != nil {
				cb(f)
			}
			return true
		}
	} else if cb := opt.OnResult; cb != nil {
		next := deliver
		deliver = func(f Facility) bool {
			cb(f)
			return next(f)
		}
	}
	return &skylineRun{
		src:       src,
		opt:       opt,
		deliver:   deliver,
		tracked:   make(map[graph.FacilityID]*tracked),
		d:         len(exps),
		exps:      exps,
		exhausted: make([]bool, len(exps)),
	}
}

type skylineRun struct {
	src expand.Source
	opt Options
	d   int

	// deliver is the progressive emission hook; returning false stops the
	// query (stopped) at the next driver check.
	deliver func(Facility) bool
	stopped bool

	exps      []*expand.Expansion
	exhausted []bool

	tracked    map[graph.FacilityID]*tracked
	candidates int // |CS|: tracked with cand && !gone && !pinned
	pending    []*tracked
	skyOrder   []*tracked
	shrinking  bool
	stats      Stats
}

func (s *skylineRun) run() error {
	for !s.done() {
		if s.stopped {
			return errStreamStopped
		}
		if err := s.opt.interrupted(); err != nil {
			return err
		}
		progressed := false
		for i := 0; i < s.d && !s.done(); i++ {
			// Per-pop stop check: a streaming consumer that broke out of its
			// loop during the previous pop's emission must not pay for the
			// rest of the round — the remaining expansions can each expand
			// arbitrarily many nodes before their next facility.
			if s.stopped {
				return errStreamStopped
			}
			if !s.active(i) {
				continue
			}
			p, c, ok, err := s.exps[i].Next()
			if err != nil {
				return err
			}
			if !ok {
				s.exhausted[i] = true
				s.resolvePending()
				continue
			}
			progressed = true
			if err := s.onPop(i, p, c); err != nil {
				return err
			}
		}
		if !progressed && !s.done() {
			if err := s.finalize(); err != nil {
				return err
			}
			break
		}
	}
	if s.stopped {
		return errStreamStopped
	}
	return nil
}

func (s *skylineRun) done() bool {
	return s.shrinking && s.candidates == 0 && len(s.pending) == 0
}

// active reports whether expansion i still has work: during growing always;
// during shrinking only while some unresolved facility misses cost i (the
// paper's per-cost stopping rule, widened to keep tie-pending resolution
// sound). Inactivity is recomputed every round, so an expansion "stopped"
// by this rule resumes automatically if a later pin needs it.
func (s *skylineRun) active(i int) bool {
	if s.exhausted[i] {
		return false
	}
	if !s.shrinking {
		return true
	}
	if s.opt.NoEnhancements {
		return s.candidates > 0 || len(s.pending) > 0
	}
	for _, tr := range s.tracked {
		if tr.gone || tr.pinned {
			continue
		}
		if !tr.cand && !(tr.inSky && len(s.pending) > 0) {
			continue
		}
		if vec.IsUnknown(tr.costs[i]) {
			return true
		}
	}
	return false
}

func (s *skylineRun) onPop(i int, p graph.FacilityID, c float64) error {
	s.stats.Pops++
	tr := s.tracked[p]
	if tr == nil {
		if s.shrinking {
			// New facility encountered during shrinking: provably dominated
			// by the first pinned facility; ignore (paper Sec. IV-A). With
			// enhancements enabled the expansion filter already drops these.
			return nil
		}
		tr = newTracked(p, s.d)
		s.tracked[p] = tr
		s.stats.Tracked++
	}
	if tr.gone {
		return nil
	}
	pinnedNow, err := tr.setCost(i, c)
	if err != nil {
		return err
	}

	// First-NN shortcut: the first facility popped by expansion i is part of
	// the skyline if nothing else can tie its i-th cost (head key strictly
	// above c); report it immediately (paper Sec. IV-A).
	if !s.opt.NoEnhancements && !s.shrinking && !tr.inSky &&
		s.exps[i].PopCount() == 1 && s.exps[i].HeadKey() > c {
		if tr.cand {
			tr.cand = false
			s.candidates--
		}
		s.emit(tr)
	}

	if !tr.inSky && !tr.cand && !tr.pinned && !tr.pend {
		tr.cand = true
		s.candidates++
	}
	if pinnedNow {
		if tr.cand {
			tr.cand = false
			s.candidates--
		}
		if err := s.onPin(tr); err != nil {
			return err
		}
	}
	s.resolvePending()
	return nil
}

func (s *skylineRun) onPin(tr *tracked) error {
	if !s.shrinking {
		s.shrinking = true
		s.stats.GrowingPops = s.stats.Pops
		if !s.opt.NoEnhancements {
			if err := s.installFilters(); err != nil {
				return err
			}
		}
	}

	// A pinned facility eliminates every candidate it provably dominates
	// (weak dominance on the candidate's known costs with a strict win on at
	// least one of them — unknown costs cannot be smaller than tr's, by the
	// incremental pop order), and every complete pending facility it
	// dominates outright. This holds even if tr itself is later found
	// dominated: its dominator dominates the same facilities transitively.
	s.eliminateDominatedBy(tr)

	// tr itself may be dominated by an exact-tie facility that pinned
	// earlier (impossible without ties; see DESIGN.md).
	for _, other := range s.skyOrder {
		if other != tr && !other.gone && other.pinned && other.costs.Dominates(tr.costs) {
			tr.gone = true
			return nil
		}
	}
	for _, other := range s.pending {
		if other != tr && !other.gone && other.costs.Dominates(tr.costs) {
			tr.gone = true
			return nil
		}
	}

	if tr.inSky {
		return nil // already reported via the first-NN shortcut
	}
	if s.blocked(tr) {
		tr.pend = true
		s.pending = append(s.pending, tr)
		return nil
	}
	s.emit(tr)
	return nil
}

func (s *skylineRun) eliminateDominatedBy(tr *tracked) {
	for _, q := range s.tracked {
		if q == tr || q.gone || q.inSky || q.pend {
			continue
		}
		if q.pinned {
			continue // handled when q pinned (it ran the checks itself)
		}
		if tr.costs.DominatesKnown(q.costs) {
			q.gone = true
			if q.cand {
				q.cand = false
				s.candidates--
			}
		}
	}
	kept := s.pending[:0]
	for _, q := range s.pending {
		if q != tr && tr.costs.Dominates(q.costs) {
			q.gone = true
			q.pend = false
			continue
		}
		kept = append(kept, q)
	}
	s.pending = kept
}

// blocked reports whether some tracked, unpinned facility q could still turn
// out to dominate the pinned tr: q's known costs must all be ≤ tr's, the
// expansion frontiers must leave room for q's unknown costs to be ≤ tr's,
// and a strict win must remain possible somewhere. Without exact ties this
// is never true — the first strict difference in a known dim or a frontier
// already past tr's cost refutes q.
func (s *skylineRun) blocked(tr *tracked) bool {
	for _, q := range s.tracked {
		if q == tr || q.gone || q.pinned {
			continue
		}
		if !q.cand && !q.inSky {
			continue
		}
		possible := true
		strict := false
		for j := 0; j < s.d; j++ {
			if !vec.IsUnknown(q.costs[j]) {
				if q.costs[j] > tr.costs[j] {
					possible = false
					break
				}
				if q.costs[j] < tr.costs[j] {
					strict = true
				}
				continue
			}
			tj := s.exps[j].HeadKey()
			if tj > tr.costs[j] {
				possible = false
				break
			}
			if tj < tr.costs[j] {
				strict = true
			}
		}
		if possible && strict {
			return true
		}
	}
	return false
}

func (s *skylineRun) resolvePending() {
	for changed := true; changed; {
		changed = false
		kept := s.pending[:0]
		for _, tr := range s.pending {
			switch {
			case tr.gone:
				tr.pend = false
				changed = true
			case !s.blocked(tr):
				tr.pend = false
				s.emit(tr)
				changed = true
			default:
				kept = append(kept, tr)
			}
		}
		s.pending = kept
	}
}

func (s *skylineRun) emit(tr *tracked) {
	tr.inSky = true
	s.skyOrder = append(s.skyOrder, tr)
	if !s.stopped && !s.deliver(Facility{ID: tr.id, Costs: tr.costs.Clone()}) {
		s.stopped = true
	}
}

// installFilters is the shrinking-stage optimisation: probe the facility
// tree for each unresolved facility's edge, then restrict all expansions to
// those edges and facilities, avoiding facility-file reads everywhere else.
// The edge set lives in the query scratch when one is attached (a dense
// epoch-stamped bitmap, cleared in O(1)), falling back to a map otherwise.
func (s *skylineRun) installFilters() error {
	allowEdge, add := edgeFilter(s.opt.Scratch, len(s.tracked))
	for id, tr := range s.tracked {
		if tr.gone || tr.pinned {
			continue
		}
		e, err := s.src.FacilityEdge(id)
		if err != nil {
			return err
		}
		add(e)
	}
	allowFac := func(p graph.FacilityID) bool {
		tr := s.tracked[p]
		return tr != nil && !tr.gone && !tr.pinned
	}
	for _, x := range s.exps {
		x.SetFilter(allowEdge, allowFac)
	}
	return nil
}

// edgeFilter returns a membership predicate and an insert function for the
// shrinking-stage edge set: the scratch's dense EdgeSet when available, a
// freshly allocated map otherwise.
func edgeFilter(sc *expand.Scratch, sizeHint int) (has func(graph.EdgeID) bool, add func(graph.EdgeID)) {
	if es := sc.EdgeSet(); es != nil {
		return es.Has, es.Add
	}
	edges := make(map[graph.EdgeID]bool, sizeHint)
	return func(e graph.EdgeID) bool { return edges[e] },
		func(e graph.EdgeID) { edges[e] = true }
}

// finalize handles global exhaustion: every expansion is exhausted or
// inactive, so any cost still unknown is +Inf (unreachable under that cost
// type). Remaining candidates are completed and run through the pinning
// logic in id order; pending entries then resolve because every relevant
// frontier is +Inf.
func (s *skylineRun) finalize() error {
	var rest []*tracked
	for _, tr := range s.tracked {
		if tr.cand && !tr.gone && !tr.pinned {
			rest = append(rest, tr)
		}
	}
	sort.Slice(rest, func(i, j int) bool { return rest[i].id < rest[j].id })
	for _, tr := range rest {
		if tr.gone {
			continue // eliminated by an earlier iteration's pin
		}
		for j := range tr.costs {
			if vec.IsUnknown(tr.costs[j]) {
				tr.costs[j] = math.Inf(1)
				tr.known++
			}
		}
		tr.pinned = true
		tr.cand = false
		s.candidates--
		if err := s.onPin(tr); err != nil {
			return err
		}
	}
	// Unpinned first-NN skyline members also get their unknowns closed so
	// they stop acting as potential dominators.
	for _, tr := range s.tracked {
		if tr.gone || tr.pinned || !tr.inSky {
			continue
		}
		for j := range tr.costs {
			if vec.IsUnknown(tr.costs[j]) && s.exhausted[j] {
				tr.costs[j] = math.Inf(1)
				tr.known++
			}
		}
		if tr.known == s.d {
			tr.pinned = true
		}
	}
	s.resolvePending()
	if !s.done() && !(s.candidates == 0 && len(s.pending) == 0) {
		// No facilities at all: done() requires shrinking, which never
		// started. Nothing further to do either way.
		return nil
	}
	return nil
}

func (s *skylineRun) result() *Result {
	for _, x := range s.exps {
		s.stats.NodeExpansions += x.NodeCount()
	}
	res := &Result{Stats: s.stats}
	for _, tr := range s.skyOrder {
		res.Facilities = append(res.Facilities, Facility{ID: tr.id, Costs: tr.costs.Clone()})
	}
	return res
}
