package core

import (
	"fmt"
	"testing"

	"mcn/internal/expand"
	"mcn/internal/gen"
	"mcn/internal/graph"
	"mcn/internal/index"
	"mcn/internal/vec"
)

// The pruned-vs-unpruned equivalence suite: for seeded random networks with
// small integer costs (exact ties everywhere), every query kind must return
// byte-identical results with the lower-bound pruning index attached as
// without it — facilities, cost vectors and scores, under both engines. The
// work statistics are the only thing allowed to change, and only downward.

// samePrunedFacilities asserts byte-identical result sets (ids, costs,
// scores, order).
func samePrunedFacilities(t *testing.T, label string, got, want []Facility) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d facilities, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID {
			t.Fatalf("%s: result %d id %d, want %d", label, i, got[i].ID, want[i].ID)
		}
		if !got[i].Costs.Equal(want[i].Costs) {
			t.Fatalf("%s: result %d (facility %d) costs %v, want %v",
				label, i, got[i].ID, got[i].Costs, want[i].Costs)
		}
		if got[i].Score != want[i].Score {
			t.Fatalf("%s: result %d (facility %d) score %g, want %g",
				label, i, got[i].ID, got[i].Score, want[i].Score)
		}
	}
}

func TestPrunedEquivalenceRandomized(t *testing.T) {
	for _, directed := range []bool{false, true} {
		for seed := int64(1); seed <= 4; seed++ {
			t.Run(fmt.Sprintf("directed=%v/seed=%d", directed, seed), func(t *testing.T) {
				inst, err := gen.MakeInstance(gen.InstanceConfig{
					Nodes:        250,
					Facilities:   50,
					Clusters:     3,
					D:            3,
					Queries:      3,
					Directed:     directed,
					Seed:         seed,
					IntegerCosts: 3, // [1,3] integer costs: exact ties everywhere
				})
				if err != nil {
					t.Fatal(err)
				}
				g := inst.Graph
				src := expand.NewMemorySource(g)
				bounds := index.FromGraph(g)
				aggs := map[string]vec.Aggregate{
					"weighted": vec.NewWeighted(1, 0.5, 0.25),
					"max":      vec.NewMax(1, 1, 2),
				}
				prunedNodes := 0

				for qi, loc := range inst.Queries {
					// Budget wide enough to catch a handful of facilities,
					// derived from the unpruned path only.
					probe, err := Nearest(src, loc, 0, 6, Options{})
					if err != nil {
						t.Fatal(err)
					}
					radius := 1.0
					if k := len(probe.Facilities); k > 0 {
						radius = probe.Facilities[k-1].Score * 1.5
					}
					budget := vec.Of(radius, radius, radius)

					for _, eng := range []Engine{LSA, CEA} {
						base := Options{Engine: eng}
						pruned := Options{Engine: eng, Bounds: bounds}
						tag := func(kind string) string {
							return fmt.Sprintf("q%d %s/%v", qi, kind, eng)
						}

						for name, agg := range aggs {
							for _, k := range []int{1, 4, 10} {
								want, err := TopK(src, loc, agg, k, base)
								if err != nil {
									t.Fatal(err)
								}
								got, err := TopK(src, loc, agg, k, pruned)
								if err != nil {
									t.Fatal(err)
								}
								label := tag(fmt.Sprintf("topk/%s/k=%d", name, k))
								samePrunedFacilities(t, label, got.Facilities, want.Facilities)
								if got.Stats.NodeExpansions > want.Stats.NodeExpansions {
									t.Errorf("%s: pruned run expanded %d nodes > unpruned %d",
										label, got.Stats.NodeExpansions, want.Stats.NodeExpansions)
								}
								prunedNodes += got.Stats.PrunedNodes

								// Bounds + NoPrune must be indistinguishable
								// from no bounds at all, stats included.
								off, err := TopK(src, loc, agg, k, Options{Engine: eng, Bounds: bounds, NoPrune: true})
								if err != nil {
									t.Fatal(err)
								}
								samePrunedFacilities(t, label+"/noprune", off.Facilities, want.Facilities)
								if off.Stats != want.Stats {
									t.Errorf("%s: NoPrune stats %+v, want %+v", label, off.Stats, want.Stats)
								}
							}
						}

						want, err := Within(src, loc, budget, base)
						if err != nil {
							t.Fatal(err)
						}
						got, err := Within(src, loc, budget, pruned)
						if err != nil {
							t.Fatal(err)
						}
						samePrunedFacilities(t, tag("within"), got.Facilities, want.Facilities)
						if got.Stats.NodeExpansions > want.Stats.NodeExpansions {
							t.Errorf("%s: pruned run expanded %d nodes > unpruned %d",
								tag("within"), got.Stats.NodeExpansions, want.Stats.NodeExpansions)
						}
						prunedNodes += got.Stats.PrunedNodes

						// Skyline deliberately ignores the index: results AND
						// work statistics must match an unpruned run exactly.
						wantSky, err := Skyline(src, loc, base)
						if err != nil {
							t.Fatal(err)
						}
						gotSky, err := Skyline(src, loc, pruned)
						if err != nil {
							t.Fatal(err)
						}
						samePrunedFacilities(t, tag("skyline"), gotSky.Facilities, wantSky.Facilities)
						if gotSky.Stats != wantSky.Stats {
							t.Errorf("%s: stats %+v, want %+v (skyline must ignore bounds)",
								tag("skyline"), gotSky.Stats, wantSky.Stats)
						}

						// Nearest has no admissible horizon and runs unpruned.
						wantNear, err := Nearest(src, loc, qi%g.D(), 5, base)
						if err != nil {
							t.Fatal(err)
						}
						gotNear, err := Nearest(src, loc, qi%g.D(), 5, pruned)
						if err != nil {
							t.Fatal(err)
						}
						samePrunedFacilities(t, tag("nearest"), gotNear.Facilities, wantNear.Facilities)
						if gotNear.Stats != wantNear.Stats {
							t.Errorf("%s: stats %+v, want %+v (nearest must ignore bounds)",
								tag("nearest"), gotNear.Stats, wantNear.Stats)
						}
					}
				}
				if prunedNodes == 0 {
					t.Error("pruning never fired across any query; the hook is not wired")
				}
			})
		}
	}
}

// The pruned top-k must also agree exactly with the naive baseline — the
// total-order (score, id) maintenance makes the fixed-k driver's tie choice
// deterministic, so the three paths coincide byte for byte.
func TestPrunedTopKMatchesNaive(t *testing.T) {
	inst, err := gen.MakeInstance(gen.InstanceConfig{
		Nodes: 200, Facilities: 40, Clusters: 3, D: 3, Queries: 3,
		Seed: 9, IntegerCosts: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	src := expand.NewMemorySource(inst.Graph)
	bounds := index.FromGraph(inst.Graph)
	agg := vec.NewWeighted(1, 1, 1)
	for qi, loc := range inst.Queries {
		for _, k := range []int{1, 3, 8} {
			naive, err := NaiveTopK(src, loc, agg, k, Options{})
			if err != nil {
				t.Fatal(err)
			}
			got, err := TopK(src, loc, agg, k, Options{Bounds: bounds})
			if err != nil {
				t.Fatal(err)
			}
			samePrunedFacilities(t, fmt.Sprintf("q%d k=%d", qi, k), got.Facilities, naive.Facilities)
		}
	}
}

// A pruned query on a graph whose facilities were all placed on one far edge
// exercises the +Inf bound components (unreachable under some cost type must
// not panic or mis-prune).
func TestPrunedDisconnectedComponents(t *testing.T) {
	b := graph.NewBuilder(2, false)
	b.AddNodes(6)
	// Two components: 0-1-2 (facility on 1-2) and 3-4-5 (no facilities).
	e01 := b.AddEdge(0, 1, vec.Of(1, 2))
	e12 := b.AddEdge(1, 2, vec.Of(2, 1))
	b.AddEdge(3, 4, vec.Of(1, 1))
	b.AddEdge(4, 5, vec.Of(1, 1))
	b.AddFacility(e12, 0.5)
	g := b.MustBuild()
	src := expand.NewMemorySource(g)
	bounds := index.FromGraph(g)

	// From the facility's component: pruning works normally.
	loc, err := graph.LocationAt(g, e01, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	want, err := TopK(src, loc, vec.NewWeighted(1, 1), 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := TopK(src, loc, vec.NewWeighted(1, 1), 1, Options{Bounds: bounds})
	if err != nil {
		t.Fatal(err)
	}
	samePrunedFacilities(t, "reachable", got.Facilities, want.Facilities)

	// From the facility-free component every bound is +Inf; queries must
	// come back empty without tripping over Inf arithmetic.
	farLoc, err := graph.LocationAtNode(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := TopK(src, farLoc, vec.NewWeighted(1, 1), 1, Options{Bounds: bounds})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Facilities) != 0 {
		t.Errorf("facility-free component returned %d facilities", len(res.Facilities))
	}
	resW, err := Within(src, farLoc, vec.Of(100, 100), Options{Bounds: bounds})
	if err != nil {
		t.Fatal(err)
	}
	if len(resW.Facilities) != 0 {
		t.Errorf("facility-free component Within returned %d facilities", len(resW.Facilities))
	}
}
