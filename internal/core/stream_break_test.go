package core

import (
	"context"
	"math/rand"
	"testing"

	"mcn/internal/expand"
	"mcn/internal/gen"
	"mcn/internal/graph"
)

// TestSeqBreakStopsPerPop pins the early-break granularity of the skyline
// driver: once a streaming consumer breaks out of its range loop, the
// driver must stop at the next per-pop check, performing zero further
// source accesses — it must NOT finish the in-flight round, whose remaining
// expansions can each expand arbitrarily many nodes before their next
// facility. Before the per-pop checks the overshoot on this workload was
// hundreds of adjacency reads per abandoned stream.
func TestSeqBreakStopsPerPop(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	topo := gen.RandomConnected(400, 250, rng)
	costs := gen.AssignCosts(topo, 3, gen.AntiCorrelated, rng)
	pls := gen.UniformFacilities(topo, 25, rng)
	g, err := gen.Assemble(topo, costs, pls, false)
	if err != nil {
		t.Fatal(err)
	}
	src := expand.NewMemorySource(g)

	for qi := 0; qi < 5; qi++ {
		loc := graph.Location{Edge: graph.EdgeID(rng.Intn(g.NumEdges())), T: rng.Float64()}
		var atBreak expand.Counter
		yields := 0
		for _, err := range SkylineSeq(context.Background(), src, loc, Options{}) {
			if err != nil {
				t.Fatal(err)
			}
			yields++
			atBreak = src.Count.Snapshot()
			break
		}
		if yields == 0 {
			continue // no facility reachable from this location
		}
		after := src.Count.Snapshot()
		if overshoot := after.Total() - atBreak.Total(); overshoot != 0 {
			t.Fatalf("query %d: %d source accesses after the consumer broke (adjacency %d→%d); "+
				"the driver must honour a break at the next pop, not the next round",
				qi, overshoot, atBreak.Adjacency, after.Adjacency)
		}
	}
}
