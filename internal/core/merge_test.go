package core

import (
	"math"
	"reflect"
	"testing"

	"mcn/internal/graph"
	"mcn/internal/vec"
)

func fac(id int, score float64, costs ...float64) Facility {
	return Facility{ID: graph.FacilityID(id), Costs: vec.Costs(costs), Score: score}
}

func ids(r *Result) []graph.FacilityID { return r.IDs() }

func TestMergeSkylinesIdenticalReplicasNoOp(t *testing.T) {
	mk := func() *Result {
		return &Result{
			Facilities: []Facility{fac(3, 0, 1, 9), fac(7, 0, 5, 5), fac(1, 0, 9, 1)},
			Stats:      Stats{Pops: 4, NodeExpansions: 10, Tracked: 3},
		}
	}
	got := MergeSkylines(mk(), mk(), mk())
	if !reflect.DeepEqual(got.Facilities, mk().Facilities) {
		t.Fatalf("merge of identical replicas changed facilities: %+v", got.Facilities)
	}
	if got.Stats.NodeExpansions != 30 || got.Stats.Pops != 12 {
		t.Fatalf("stats not summed: %+v", got.Stats)
	}
}

func TestMergeSkylinesCrossPartDominance(t *testing.T) {
	// Part A's (4,4) dominates part B's (5,5); B's (1,8) survives. A later
	// part's (0,0) retroactively dominates everything before it.
	a := &Result{Facilities: []Facility{fac(1, 0, 4, 4), fac(2, 0, 9, 1)}}
	b := &Result{Facilities: []Facility{fac(3, 0, 5, 5), fac(4, 0, 1, 8)}}
	got := MergeSkylines(a, b)
	want := []graph.FacilityID{1, 2, 4}
	if !reflect.DeepEqual(ids(got), want) {
		t.Fatalf("ids = %v, want %v", ids(got), want)
	}

	c := &Result{Facilities: []Facility{fac(9, 0, 0, 0)}}
	got = MergeSkylines(a, b, c)
	if !reflect.DeepEqual(ids(got), []graph.FacilityID{9}) {
		t.Fatalf("retroactive dominance: ids = %v, want [9]", ids(got))
	}
}

func TestMergeSkylinesDedupKeepsFirstOccurrence(t *testing.T) {
	a := &Result{Facilities: []Facility{fac(5, 0, 2, 3)}}
	b := &Result{Facilities: []Facility{fac(5, 0, 2, 3), fac(6, 0, 3, 2)}}
	got := MergeSkylines(a, b)
	if !reflect.DeepEqual(ids(got), []graph.FacilityID{5, 6}) {
		t.Fatalf("ids = %v, want [5 6]", ids(got))
	}
}

func TestMergeSkylinesIncompleteVectorsNeverJudged(t *testing.T) {
	// NaN components make vec.Dominates vacuously false/true in surprising
	// ways; the merge must neither drop an incomplete vector nor let it
	// dominate. [1,NaN] vs [2,0]: a naive strict check would call the first
	// dominating (NaN comparisons are all false), wrongly dropping [2,0].
	a := &Result{Facilities: []Facility{fac(1, 0, 1, math.NaN())}}
	b := &Result{Facilities: []Facility{fac(2, 0, 2, 0)}}
	got := MergeSkylines(a, b)
	if !reflect.DeepEqual(ids(got), []graph.FacilityID{1, 2}) {
		t.Fatalf("ids = %v, want [1 2] (incomplete vector must not dominate)", ids(got))
	}
	got = MergeSkylines(b, a)
	if !reflect.DeepEqual(ids(got), []graph.FacilityID{2, 1}) {
		t.Fatalf("ids = %v, want [2 1] (incomplete vector must not be dropped)", ids(got))
	}
}

func TestMergeSkylinesNilAndEmptyParts(t *testing.T) {
	a := &Result{Facilities: []Facility{fac(1, 0, 1, 1)}}
	got := MergeSkylines(nil, &Result{}, a, nil)
	if !reflect.DeepEqual(ids(got), []graph.FacilityID{1}) {
		t.Fatalf("ids = %v, want [1]", ids(got))
	}
	if got := MergeSkylines(); len(got.Facilities) != 0 {
		t.Fatalf("empty merge returned facilities: %v", got.Facilities)
	}
}

func TestMergeTopKIdenticalReplicasNoOp(t *testing.T) {
	mk := func() *Result {
		return &Result{
			Facilities: []Facility{fac(4, 1.5, 1, 2), fac(2, 2.0, 2, 2), fac(8, 3.5, 3, 3)},
			Stats:      Stats{Pops: 2},
		}
	}
	got := MergeTopK(3, mk(), mk())
	if !reflect.DeepEqual(got.Facilities, mk().Facilities) {
		t.Fatalf("merge of identical replicas changed facilities: %+v", got.Facilities)
	}
	if got.Stats.Pops != 4 {
		t.Fatalf("stats not summed: %+v", got.Stats)
	}
}

func TestMergeTopKSortsAndTruncates(t *testing.T) {
	a := &Result{Facilities: []Facility{fac(1, 2.0), fac(2, 5.0)}}
	b := &Result{Facilities: []Facility{fac(3, 1.0), fac(4, 3.0)}}
	got := MergeTopK(3, a, b)
	want := []graph.FacilityID{3, 1, 4}
	if !reflect.DeepEqual(ids(got), want) {
		t.Fatalf("ids = %v, want %v", ids(got), want)
	}
	// k <= 0 keeps everything.
	got = MergeTopK(0, a, b)
	if len(got.Facilities) != 4 {
		t.Fatalf("k=0 truncated: %v", ids(got))
	}
}

func TestMergeTopKTiesKeepFirstOccurrence(t *testing.T) {
	a := &Result{Facilities: []Facility{fac(7, 2.0)}}
	b := &Result{Facilities: []Facility{fac(3, 2.0)}}
	got := MergeTopK(2, a, b)
	if !reflect.DeepEqual(ids(got), []graph.FacilityID{7, 3}) {
		t.Fatalf("ids = %v, want [7 3] (stable sort on equal scores)", ids(got))
	}
}
