package core

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"mcn/internal/expand"
	"mcn/internal/gen"
	"mcn/internal/graph"
	"mcn/internal/testnet"
	"mcn/internal/vec"
)

// instance is one randomly generated test network with a query location.
type instance struct {
	g   *graph.Graph
	loc graph.Location
}

func randomInstance(t *testing.T, rng *rand.Rand, ties bool) instance {
	t.Helper()
	d := 2 + rng.Intn(3)
	n := 2 + rng.Intn(50)
	directed := rng.Intn(4) == 0
	topo := gen.RandomConnected(n, rng.Intn(2*n), rng)
	var costs []vec.Costs
	if ties {
		costs = gen.RandomIntegerCosts(topo, d, 3, rng)
	} else {
		costs = gen.AssignCosts(topo, d, gen.Distribution(rng.Intn(3)), rng)
	}
	nf := 1 + rng.Intn(30)
	var pls []gen.Placement
	if ties {
		// Restrict facility positions to a small grid of fractions so that
		// exact cost ties (including exact duplicates) actually occur.
		for i := 0; i < nf; i++ {
			pls = append(pls, gen.Placement{
				Edge: uint32(rng.Intn(topo.NumEdges())),
				T:    float64(rng.Intn(3)) / 2,
			})
		}
	} else {
		pls = gen.UniformFacilities(topo, nf, rng)
	}
	g, err := gen.Assemble(topo, costs, pls, directed)
	if err != nil {
		t.Fatal(err)
	}
	var loc graph.Location
	if ties {
		loc = graph.Location{Edge: graph.EdgeID(rng.Intn(g.NumEdges())), T: float64(rng.Intn(3)) / 2}
	} else {
		loc = graph.Location{Edge: graph.EdgeID(rng.Intn(g.NumEdges())), T: rng.Float64()}
	}
	return instance{g: g, loc: loc}
}

func sortedIDs(fs []Facility) []graph.FacilityID {
	ids := make([]graph.FacilityID, len(fs))
	for i, f := range fs {
		ids[i] = f.ID
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// checkSkylineExact requires the result to equal the oracle skyline exactly
// (valid for tie-free instances).
func checkSkylineExact(t *testing.T, inst instance, res *Result, label string) {
	t.Helper()
	want := testnet.Skyline(inst.g, inst.loc)
	got := sortedIDs(res.Facilities)
	if len(want) == 0 {
		want = []graph.FacilityID{}
	}
	if len(got) == 0 {
		got = []graph.FacilityID{}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: skyline = %v, want %v", label, got, want)
	}
}

// checkSkylineTieEquivalent verifies the tie-robust guarantee: every
// reported facility is in the exact skyline, and every exact-skyline
// facility is either reported or has a cost vector exactly equal to a
// reported one.
func checkSkylineTieEquivalent(t *testing.T, inst instance, res *Result, label string) {
	t.Helper()
	exact := testnet.Skyline(inst.g, inst.loc)
	inExact := make(map[graph.FacilityID]bool, len(exact))
	for _, id := range exact {
		inExact[id] = true
	}
	oracleCosts := testnet.AllCosts(inst.g, inst.loc)
	reportedVecs := make([]vec.Costs, 0, len(res.Facilities))
	for _, f := range res.Facilities {
		if !inExact[f.ID] {
			t.Fatalf("%s: reported facility %d (%v) is not in the exact skyline", label, f.ID, oracleCosts[f.ID])
		}
		reportedVecs = append(reportedVecs, oracleCosts[f.ID])
	}
	for _, id := range exact {
		found := false
		for _, f := range res.Facilities {
			if f.ID == id {
				found = true
				break
			}
		}
		if found {
			continue
		}
		tied := false
		for _, v := range reportedVecs {
			if v.Equal(oracleCosts[id]) {
				tied = true
				break
			}
		}
		if !tied {
			t.Fatalf("%s: exact-skyline facility %d (%v) neither reported nor tied with a reported vector; reported %v",
				label, id, oracleCosts[id], sortedIDs(res.Facilities))
		}
	}
}

// checkReportedCosts verifies each reported known cost against the oracle.
func checkReportedCosts(t *testing.T, inst instance, res *Result, label string) {
	t.Helper()
	oracle := testnet.AllCosts(inst.g, inst.loc)
	for _, f := range res.Facilities {
		for i, c := range f.Costs {
			if vec.IsUnknown(c) {
				continue
			}
			want := oracle[f.ID][i]
			if math.Abs(c-want) > 1e-9*(1+math.Abs(want)) && !(math.IsInf(c, 1) && math.IsInf(want, 1)) {
				t.Fatalf("%s: facility %d cost %d = %g, oracle %g", label, f.ID, i, c, want)
			}
		}
	}
}

func TestSkylineFixedExample(t *testing.T) {
	// Figure 1-style network: two facilities, one faster and one cheaper;
	// both must be in the skyline.
	b := graph.NewBuilder(2, false)
	q0 := b.AddNode(0, 0)
	n1 := b.AddNode(1, 0)
	n2 := b.AddNode(0, 1)
	e1 := b.AddEdge(q0, n1, vec.Of(10, 1)) // fast but tolled
	e2 := b.AddEdge(q0, n2, vec.Of(20, 0)) // slow but free
	b.AddEdge(n1, n2, vec.Of(5, 5))
	p1 := b.AddFacility(e2, 1.0)
	p2 := b.AddFacility(e1, 1.0)
	g := b.MustBuild()
	loc, err := graph.LocationAtNode(g, q0)
	if err != nil {
		t.Fatal(err)
	}
	for _, engine := range []Engine{LSA, CEA} {
		res, err := Skyline(expand.NewMemorySource(g), loc, Options{Engine: engine})
		if err != nil {
			t.Fatal(err)
		}
		got := sortedIDs(res.Facilities)
		want := []graph.FacilityID{p1, p2}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%v: skyline = %v, want %v", engine, got, want)
		}
	}
}

func TestSkylineMatchesOracleContinuous(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	for trial := 0; trial < 150; trial++ {
		inst := randomInstance(t, rng, false)
		for _, engine := range []Engine{LSA, CEA} {
			res, err := Skyline(expand.NewMemorySource(inst.g), inst.loc, Options{Engine: engine})
			if err != nil {
				t.Fatalf("trial %d %v: %v", trial, engine, err)
			}
			checkSkylineExact(t, inst, res, engine.String())
			checkReportedCosts(t, inst, res, engine.String())
		}
	}
}

func TestSkylineTieRobust(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 200; trial++ {
		inst := randomInstance(t, rng, true)
		for _, engine := range []Engine{LSA, CEA} {
			res, err := Skyline(expand.NewMemorySource(inst.g), inst.loc, Options{Engine: engine})
			if err != nil {
				t.Fatalf("trial %d %v: %v", trial, engine, err)
			}
			checkSkylineTieEquivalent(t, inst, res, engine.String())
		}
	}
}

func TestSkylineNoEnhancementsSameAnswer(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	for trial := 0; trial < 80; trial++ {
		inst := randomInstance(t, rng, trial%2 == 0)
		base, err := Skyline(expand.NewMemorySource(inst.g), inst.loc, Options{})
		if err != nil {
			t.Fatal(err)
		}
		plain, err := Skyline(expand.NewMemorySource(inst.g), inst.loc, Options{NoEnhancements: true})
		if err != nil {
			t.Fatal(err)
		}
		a, b := sortedIDs(base.Facilities), sortedIDs(plain.Facilities)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("trial %d: enhancements changed the answer: %v vs %v", trial, a, b)
		}
	}
}

// CEA must produce the same skyline in the same emission order as LSA
// (the paper: identical NN order, candidate set and reporting order).
func TestCEASameOrderAsLSA(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for trial := 0; trial < 100; trial++ {
		inst := randomInstance(t, rng, trial%3 == 0)
		var lsaOrder, ceaOrder []graph.FacilityID
		_, err := Skyline(expand.NewMemorySource(inst.g), inst.loc, Options{
			Engine:   LSA,
			OnResult: func(f Facility) { lsaOrder = append(lsaOrder, f.ID) },
		})
		if err != nil {
			t.Fatal(err)
		}
		_, err = Skyline(expand.NewMemorySource(inst.g), inst.loc, Options{
			Engine:   CEA,
			OnResult: func(f Facility) { ceaOrder = append(ceaOrder, f.ID) },
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(lsaOrder, ceaOrder) {
			t.Fatalf("trial %d: emission order differs: LSA %v, CEA %v", trial, lsaOrder, ceaOrder)
		}
	}
}

// CEA's defining property: at most one source access per adjacency record
// and per facility record per query.
func TestCEAAccessBound(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	for trial := 0; trial < 60; trial++ {
		inst := randomInstance(t, rng, false)
		mem := expand.NewMemorySource(inst.g)
		if _, err := Skyline(mem, inst.loc, Options{Engine: CEA}); err != nil {
			t.Fatal(err)
		}
		if mem.Count.Snapshot().Adjacency > int64(inst.g.NumNodes()) {
			t.Fatalf("trial %d: CEA fetched %d adjacency records for %d nodes", trial, mem.Count.Snapshot().Adjacency, inst.g.NumNodes())
		}
		if mem.Count.Snapshot().Facilities > int64(inst.g.NumEdges()) {
			t.Fatalf("trial %d: CEA fetched %d facility records for %d edges", trial, mem.Count.Snapshot().Facilities, inst.g.NumEdges())
		}
		if mem.Count.Snapshot().EdgeInfo > 1 {
			t.Fatalf("trial %d: CEA resolved the query edge %d times", trial, mem.Count.Snapshot().EdgeInfo)
		}
	}
}

// LSA accesses at least as much as CEA on every instance.
func TestLSAAccessesAtLeastCEA(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	for trial := 0; trial < 40; trial++ {
		inst := randomInstance(t, rng, false)
		lsa := expand.NewMemorySource(inst.g)
		if _, err := Skyline(lsa, inst.loc, Options{Engine: LSA}); err != nil {
			t.Fatal(err)
		}
		cea := expand.NewMemorySource(inst.g)
		if _, err := Skyline(cea, inst.loc, Options{Engine: CEA}); err != nil {
			t.Fatal(err)
		}
		if lsa.Count.Snapshot().Total() < cea.Count.Snapshot().Total() {
			t.Fatalf("trial %d: LSA accesses (%d) < CEA accesses (%d)", trial, lsa.Count.Snapshot().Total(), cea.Count.Snapshot().Total())
		}
	}
}

// Progressiveness: OnResult must deliver exactly the final facilities, in
// emission order, and every emitted facility must already be undominated.
func TestSkylineProgressive(t *testing.T) {
	rng := rand.New(rand.NewSource(106))
	for trial := 0; trial < 60; trial++ {
		inst := randomInstance(t, rng, false)
		var emitted []graph.FacilityID
		res, err := Skyline(expand.NewMemorySource(inst.g), inst.loc, Options{
			OnResult: func(f Facility) { emitted = append(emitted, f.ID) },
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(emitted) != len(res.Facilities) {
			t.Fatalf("trial %d: %d callbacks for %d results", trial, len(emitted), len(res.Facilities))
		}
		for i, f := range res.Facilities {
			if emitted[i] != f.ID {
				t.Fatalf("trial %d: emission order %v != result order %v", trial, emitted, res.IDs())
			}
		}
	}
}

func TestSkylineOnDisk(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	for trial := 0; trial < 25; trial++ {
		inst := randomInstance(t, rng, false)
		net := diskNetwork(t, inst.g, 0.1)
		for _, engine := range []Engine{LSA, CEA} {
			res, err := Skyline(net, inst.loc, Options{Engine: engine})
			if err != nil {
				t.Fatal(err)
			}
			checkSkylineExact(t, inst, res, "disk-"+engine.String())
		}
	}
}

func TestSkylineNoFacilities(t *testing.T) {
	topo := gen.Path(5)
	g, err := gen.Assemble(topo, gen.UnitCosts(topo, 2), nil, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, engine := range []Engine{LSA, CEA} {
		res, err := Skyline(expand.NewMemorySource(g), graph.Location{Edge: 0, T: 0.5}, Options{Engine: engine})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Facilities) != 0 {
			t.Errorf("%v: skyline of empty facility set = %v", engine, res.IDs())
		}
	}
}

func TestSkylineSingleFacility(t *testing.T) {
	topo := gen.Path(5)
	pls := []gen.Placement{{Edge: 3, T: 0.5}}
	g, err := gen.Assemble(topo, gen.UnitCosts(topo, 3), pls, false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Skyline(expand.NewMemorySource(g), graph.Location{Edge: 0, T: 0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Facilities) != 1 || res.Facilities[0].ID != 0 {
		t.Errorf("skyline = %v, want [0]", res.IDs())
	}
}

// Disconnected component: facilities unreachable under every cost type must
// not be reported; partially unreachable ones participate.
func TestSkylineDisconnected(t *testing.T) {
	b := graph.NewBuilder(2, false)
	b.AddNodes(4)
	e0 := b.AddEdge(0, 1, vec.Of(1, 1))
	e1 := b.AddEdge(2, 3, vec.Of(1, 1)) // separate island
	fNear := b.AddFacility(e0, 0.75)
	b.AddFacility(e1, 0.5) // unreachable
	g := b.MustBuild()
	res, err := Skyline(expand.NewMemorySource(g), graph.Location{Edge: e0, T: 0.25}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Facilities) != 1 || res.Facilities[0].ID != fNear {
		t.Errorf("skyline = %v, want [%d]", res.IDs(), fNear)
	}
}

// The dominance region argument: with clustered duplicates near the query,
// the tracked set must stay far below |P|. This guards against regressions
// that silently degrade LSA to the naive baseline.
func TestSkylineLocality(t *testing.T) {
	topo := gen.Grid(40, 40, 0.1, rand.New(rand.NewSource(108)))
	costs := gen.AssignCosts(topo, 2, gen.Correlated, rand.New(rand.NewSource(109)))
	pls := gen.UniformFacilities(topo, 2000, rand.New(rand.NewSource(110)))
	g, err := gen.Assemble(topo, costs, pls, false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Skyline(expand.NewMemorySource(g), graph.Location{Edge: 0, T: 0.5}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Tracked > g.NumFacilities()/4 {
		t.Errorf("tracked %d of %d facilities; search is not local", res.Stats.Tracked, g.NumFacilities())
	}
	checkSkylineExact(t, instance{g: g, loc: graph.Location{Edge: 0, T: 0.5}}, res, "locality")
}
