package core

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"mcn/internal/expand"
	"mcn/internal/gen"
	"mcn/internal/graph"
	"mcn/internal/testnet"
	"mcn/internal/vec"
)

// msOracle computes, for every facility, the vector of its costIdx-distances
// from each query location.
func msOracle(g *graph.Graph, costIdx int, locs []graph.Location) []vec.Costs {
	out := make([]vec.Costs, g.NumFacilities())
	for p := range out {
		out[p] = make(vec.Costs, len(locs))
	}
	for i, loc := range locs {
		ci := testnet.FacilityCosts(g, loc, costIdx)
		for p := range ci {
			out[p][i] = ci[p]
		}
	}
	return out
}

func msSkylineOracle(g *graph.Graph, costIdx int, locs []graph.Location) []graph.FacilityID {
	vecs := msOracle(g, costIdx, locs)
	var out []graph.FacilityID
	for p := range vecs {
		if allInfVec(vecs[p]) {
			continue
		}
		dominated := false
		for q := range vecs {
			if q != p && vecs[q].Dominates(vecs[p]) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, graph.FacilityID(p))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func allInfVec(c vec.Costs) bool {
	for _, v := range c {
		if !math.IsInf(v, 1) {
			return false
		}
	}
	return true
}

func msInstance(t *testing.T, rng *rand.Rand) (*graph.Graph, int, []graph.Location) {
	t.Helper()
	d := 1 + rng.Intn(3)
	topo := gen.RandomConnected(3+rng.Intn(30), rng.Intn(15), rng)
	costs := gen.AssignCosts(topo, d, gen.Distribution(rng.Intn(3)), rng)
	pls := gen.UniformFacilities(topo, 1+rng.Intn(20), rng)
	g, err := gen.Assemble(topo, costs, pls, false)
	if err != nil {
		t.Fatal(err)
	}
	nq := 2 + rng.Intn(3)
	locs := make([]graph.Location, nq)
	for i := range locs {
		locs[i] = graph.Location{Edge: graph.EdgeID(rng.Intn(g.NumEdges())), T: rng.Float64()}
	}
	return g, rng.Intn(d), locs
}

func TestMultiSourceSkylineMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(1200))
	for trial := 0; trial < 80; trial++ {
		g, ci, locs := msInstance(t, rng)
		for _, engine := range []Engine{LSA, CEA} {
			res, err := MultiSourceSkyline(expand.NewMemorySource(g), ci, locs, Options{Engine: engine})
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			want := msSkylineOracle(g, ci, locs)
			got := sortedIDs(res.Facilities)
			if len(want) == 0 {
				want = []graph.FacilityID{}
			}
			if len(got) == 0 {
				got = []graph.FacilityID{}
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d %v: skyline %v, oracle %v", trial, engine, got, want)
			}
		}
	}
}

func TestMultiSourceTopKMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(1201))
	for trial := 0; trial < 80; trial++ {
		g, ci, locs := msInstance(t, rng)
		coef := make([]float64, len(locs))
		for i := range coef {
			coef[i] = rng.Float64()
		}
		agg := vec.NewWeighted(coef...)
		k := 1 + rng.Intn(6)
		res, err := MultiSourceTopK(expand.NewMemorySource(g), ci, locs, agg, k, Options{Engine: CEA})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Oracle ranking.
		vecs := msOracle(g, ci, locs)
		var scores []float64
		for p := range vecs {
			if !allInfVec(vecs[p]) {
				scores = append(scores, agg.Score(vecs[p]))
			}
		}
		sort.Float64s(scores)
		if k > len(scores) {
			k = len(scores)
		}
		if len(res.Facilities) != k {
			t.Fatalf("trial %d: %d results, want %d", trial, len(res.Facilities), k)
		}
		for i, f := range res.Facilities {
			if math.IsInf(f.Score, 1) && math.IsInf(scores[i], 1) {
				continue
			}
			if math.Abs(f.Score-scores[i]) > 1e-9*(1+math.Abs(scores[i])) {
				t.Fatalf("trial %d: score[%d] = %g, oracle %g", trial, i, f.Score, scores[i])
			}
		}
	}
}

func TestMultiSourceMeetingPoint(t *testing.T) {
	// Three friends on a path graph; the min-sum meeting facility must be
	// the middle one.
	topo := gen.Path(7)
	pls := []gen.Placement{
		{Edge: 0, T: 0.5}, // near friend 1
		{Edge: 3, T: 0.0}, // in the middle
		{Edge: 5, T: 0.5}, // near friend 3
	}
	g, err := gen.Assemble(topo, gen.UnitCosts(topo, 1), pls, false)
	if err != nil {
		t.Fatal(err)
	}
	locs := []graph.Location{
		{Edge: 0, T: 0},
		{Edge: 3, T: 0.5},
		{Edge: 5, T: 1},
	}
	agg := vec.NewWeighted(1, 1, 1)
	res, err := MultiSourceTopK(expand.NewMemorySource(g), 0, locs, agg, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Facilities) != 1 || res.Facilities[0].ID != 1 {
		t.Errorf("meeting point = %v, want facility 1", res.IDs())
	}
}

func TestMultiSourceValidation(t *testing.T) {
	topo := gen.Path(3)
	g, err := gen.Assemble(topo, gen.UnitCosts(topo, 2), nil, false)
	if err != nil {
		t.Fatal(err)
	}
	src := expand.NewMemorySource(g)
	loc := graph.Location{Edge: 0, T: 0.5}
	if _, err := MultiSourceSkyline(src, 0, nil, Options{}); err == nil {
		t.Error("empty location list accepted")
	}
	if _, err := MultiSourceSkyline(src, 5, []graph.Location{loc}, Options{}); err == nil {
		t.Error("bad cost index accepted")
	}
	if _, err := MultiSourceTopK(src, 0, []graph.Location{loc, loc}, vec.NewWeighted(1), 1, Options{}); err == nil {
		t.Error("aggregate/location dimensionality mismatch accepted")
	}
	if _, err := MultiSourceTopK(src, 0, []graph.Location{loc}, vec.NewWeighted(1), 0, Options{}); err == nil {
		t.Error("k=0 accepted")
	}
}

// CEA sharing must also hold across multi-source expansions: the d query
// points traverse overlapping regions, so records are fetched once.
func TestMultiSourceCEAAccessBound(t *testing.T) {
	rng := rand.New(rand.NewSource(1202))
	for trial := 0; trial < 30; trial++ {
		g, ci, locs := msInstance(t, rng)
		mem := expand.NewMemorySource(g)
		if _, err := MultiSourceSkyline(mem, ci, locs, Options{Engine: CEA}); err != nil {
			t.Fatal(err)
		}
		if mem.Count.Snapshot().Adjacency > int64(g.NumNodes()) {
			t.Fatalf("trial %d: CEA fetched %d adjacency records for %d nodes", trial, mem.Count.Snapshot().Adjacency, g.NumNodes())
		}
	}
}
