package core

import (
	"math"
	"math/rand"
	"testing"

	"mcn/internal/expand"
	"mcn/internal/gen"
	"mcn/internal/graph"
	"mcn/internal/testnet"
	"mcn/internal/vec"
)

func randomAggregate(rng *rand.Rand, d int) vec.Aggregate {
	coef := make([]float64, d)
	for i := range coef {
		coef[i] = rng.Float64()
	}
	return vec.NewWeighted(coef...)
}

// checkTopKScores compares the result's score multiset to the oracle's k
// smallest scores (tie resolution is arbitrary per the paper, so ids may
// legitimately differ).
func checkTopKScores(t *testing.T, inst instance, agg vec.Aggregate, k int, res *Result, label string) {
	t.Helper()
	want := testnet.TopKScores(inst.g, inst.loc, agg, k)
	if len(res.Facilities) != len(want) {
		t.Fatalf("%s: got %d results, want %d", label, len(res.Facilities), len(want))
	}
	for i, f := range res.Facilities {
		w := want[i]
		if math.IsInf(f.Score, 1) && math.IsInf(w, 1) {
			continue
		}
		if math.Abs(f.Score-w) > 1e-9*(1+math.Abs(w)) {
			t.Fatalf("%s: score[%d] = %g, want %g (got %v want %v)", label, i, f.Score, w, scoresOf(res), want)
		}
	}
	// Scores must also be internally consistent with the oracle's vectors.
	oracle := testnet.AllCosts(inst.g, inst.loc)
	for _, f := range res.Facilities {
		actual := agg.Score(oracle[f.ID])
		if math.IsInf(actual, 1) && math.IsInf(f.Score, 1) {
			continue
		}
		if math.Abs(actual-f.Score) > 1e-9*(1+math.Abs(actual)) {
			t.Fatalf("%s: facility %d reported score %g but oracle vector gives %g", label, f.ID, f.Score, actual)
		}
	}
}

func scoresOf(res *Result) []float64 {
	out := make([]float64, len(res.Facilities))
	for i, f := range res.Facilities {
		out[i] = f.Score
	}
	return out
}

func TestTopKFixedExample(t *testing.T) {
	// Figure 1 scenario with f = 0.9·c_time + 0.1·c_toll: the fast tolled
	// warehouse must win top-1.
	b := graph.NewBuilder(2, false)
	q0 := b.AddNode(0, 0)
	n1 := b.AddNode(1, 0)
	n2 := b.AddNode(0, 1)
	e1 := b.AddEdge(q0, n1, vec.Of(10, 1))
	e2 := b.AddEdge(q0, n2, vec.Of(20, 0))
	p1 := b.AddFacility(e2, 1.0) // (20 min, 0 $)
	p2 := b.AddFacility(e1, 1.0) // (10 min, 1 $)
	_ = p1
	g := b.MustBuild()
	loc, err := graph.LocationAtNode(g, q0)
	if err != nil {
		t.Fatal(err)
	}
	agg := vec.NewWeighted(0.9, 0.1)
	res, err := TopK(expand.NewMemorySource(g), loc, agg, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Facilities) != 1 || res.Facilities[0].ID != p2 {
		t.Errorf("top-1 = %v, want [%d]", res.IDs(), p2)
	}
}

func TestTopKMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(200))
	for trial := 0; trial < 150; trial++ {
		inst := randomInstance(t, rng, trial%4 == 0)
		d := inst.g.D()
		agg := randomAggregate(rng, d)
		k := 1 + rng.Intn(8)
		for _, engine := range []Engine{LSA, CEA} {
			res, err := TopK(expand.NewMemorySource(inst.g), inst.loc, agg, k, Options{Engine: engine})
			if err != nil {
				t.Fatalf("trial %d %v: %v", trial, engine, err)
			}
			checkTopKScores(t, inst, agg, k, res, engine.String())
		}
	}
}

func TestTopKNoEnhancementsSameScores(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	for trial := 0; trial < 60; trial++ {
		inst := randomInstance(t, rng, false)
		agg := randomAggregate(rng, inst.g.D())
		k := 1 + rng.Intn(6)
		a, err := TopK(expand.NewMemorySource(inst.g), inst.loc, agg, k, Options{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := TopK(expand.NewMemorySource(inst.g), inst.loc, agg, k, Options{NoEnhancements: true})
		if err != nil {
			t.Fatal(err)
		}
		sa, sb := scoresOf(a), scoresOf(b)
		if len(sa) != len(sb) {
			t.Fatalf("trial %d: lengths differ", trial)
		}
		for i := range sa {
			if math.Abs(sa[i]-sb[i]) > 1e-9 {
				t.Fatalf("trial %d: scores differ: %v vs %v", trial, sa, sb)
			}
		}
	}
}

func TestTopKLargerThanP(t *testing.T) {
	topo := gen.Path(6)
	pls := []gen.Placement{{Edge: 0, T: 0.5}, {Edge: 4, T: 0.5}}
	g, err := gen.Assemble(topo, gen.UnitCosts(topo, 2), pls, false)
	if err != nil {
		t.Fatal(err)
	}
	agg := vec.NewWeighted(0.5, 0.5)
	res, err := TopK(expand.NewMemorySource(g), graph.Location{Edge: 2, T: 0.5}, agg, 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Facilities) != 2 {
		t.Errorf("k > |P|: got %d facilities, want 2", len(res.Facilities))
	}
}

func TestTopKInvalidArgs(t *testing.T) {
	topo := gen.Path(3)
	g, err := gen.Assemble(topo, gen.UnitCosts(topo, 2), nil, false)
	if err != nil {
		t.Fatal(err)
	}
	src := expand.NewMemorySource(g)
	loc := graph.Location{Edge: 0, T: 0.5}
	if _, err := TopK(src, loc, vec.NewWeighted(1, 1), 0, Options{}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := TopK(src, loc, vec.NewWeighted(1), 1, Options{}); err == nil {
		t.Error("aggregate dimensionality mismatch accepted")
	}
}

func TestTopKCEAAccessBound(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	for trial := 0; trial < 40; trial++ {
		inst := randomInstance(t, rng, false)
		agg := randomAggregate(rng, inst.g.D())
		mem := expand.NewMemorySource(inst.g)
		if _, err := TopK(mem, inst.loc, agg, 4, Options{Engine: CEA}); err != nil {
			t.Fatal(err)
		}
		if mem.Count.Snapshot().Adjacency > int64(inst.g.NumNodes()) {
			t.Fatalf("trial %d: CEA fetched %d adjacency records for %d nodes", trial, mem.Count.Snapshot().Adjacency, inst.g.NumNodes())
		}
	}
}

func TestTopKOnDisk(t *testing.T) {
	rng := rand.New(rand.NewSource(203))
	for trial := 0; trial < 20; trial++ {
		inst := randomInstance(t, rng, false)
		agg := randomAggregate(rng, inst.g.D())
		k := 1 + rng.Intn(5)
		net := diskNetwork(t, inst.g, 0.1)
		for _, engine := range []Engine{LSA, CEA} {
			res, err := TopK(net, inst.loc, agg, k, Options{Engine: engine})
			if err != nil {
				t.Fatal(err)
			}
			checkTopKScores(t, inst, agg, k, res, "disk-"+engine.String())
		}
	}
}

func TestTopKResultsSortedByScore(t *testing.T) {
	rng := rand.New(rand.NewSource(204))
	for trial := 0; trial < 40; trial++ {
		inst := randomInstance(t, rng, false)
		agg := randomAggregate(rng, inst.g.D())
		res, err := TopK(expand.NewMemorySource(inst.g), inst.loc, agg, 6, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(res.Facilities); i++ {
			if res.Facilities[i].Score < res.Facilities[i-1].Score {
				t.Fatalf("trial %d: results not sorted by score: %v", trial, scoresOf(res))
			}
		}
	}
}

// A MaxAgg aggregate is also increasingly monotone; top-k must handle it.
func TestTopKMaxAggregate(t *testing.T) {
	rng := rand.New(rand.NewSource(205))
	for trial := 0; trial < 40; trial++ {
		inst := randomInstance(t, rng, false)
		d := inst.g.D()
		coef := make([]float64, d)
		for i := range coef {
			coef[i] = 0.1 + rng.Float64()
		}
		agg := vec.NewMax(coef...)
		res, err := TopK(expand.NewMemorySource(inst.g), inst.loc, agg, 3, Options{})
		if err != nil {
			t.Fatal(err)
		}
		checkTopKScores(t, inst, agg, 3, res, "maxagg")
	}
}
