package rescache

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"mcn/internal/core"
	"mcn/internal/graph"
	"mcn/internal/vec"
)

func mkValue(id int) Value {
	return Value{Result: &core.Result{Facilities: []core.Facility{{ID: graph.FacilityID(id)}}}}
}

func fill(id int, tags ...Tag) func() (Value, []Tag, error) {
	return func() (Value, []Tag, error) { return mkValue(id), tags, nil }
}

func TestHitMissBasics(t *testing.T) {
	c := New(Options{Entries: 8, Shards: 1})
	v, hit, err := c.Do("a", fill(1))
	if err != nil || hit {
		t.Fatalf("first Do: hit=%v err=%v", hit, err)
	}
	if v.Result.Facilities[0].ID != 1 {
		t.Fatalf("wrong value: %+v", v)
	}
	v2, hit, err := c.Do("a", fill(2))
	if err != nil || !hit {
		t.Fatalf("second Do: hit=%v err=%v", hit, err)
	}
	if v2.Result != v.Result {
		t.Fatalf("hit did not return the cached result pointer")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestErrorsNotCached(t *testing.T) {
	c := New(Options{Entries: 8, Shards: 1})
	boom := errors.New("boom")
	_, _, err := c.Do("a", func() (Value, []Tag, error) { return Value{}, nil, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if c.Len() != 0 {
		t.Fatalf("error was cached")
	}
	_, hit, err := c.Do("a", fill(1))
	if err != nil || hit {
		t.Fatalf("retry after error: hit=%v err=%v", hit, err)
	}
}

func TestTagInvalidation(t *testing.T) {
	c := New(Options{Entries: 8, Shards: 1})
	c.Do("a", fill(1, EdgeTag(10)))
	c.Do("b", fill(2, EdgeTag(20)))

	c.Invalidate(EdgeTag(10))

	if _, ok := c.Lookup("a"); ok {
		t.Fatalf("entry with invalidated tag survived")
	}
	if _, ok := c.Lookup("b"); !ok {
		t.Fatalf("untouched entry was killed")
	}
	if inv := c.Stats().Invalidated; inv != 1 {
		t.Fatalf("Invalidated = %d", inv)
	}
}

func TestFlushKillsEverything(t *testing.T) {
	c := New(Options{Entries: 8, Shards: 2})
	for i := 0; i < 6; i++ {
		c.Do(fmt.Sprintf("k%d", i), fill(i))
	}
	c.Flush()
	for i := 0; i < 6; i++ {
		if _, ok := c.Lookup(fmt.Sprintf("k%d", i)); ok {
			t.Fatalf("entry k%d survived Flush", i)
		}
	}
	// New inserts after the flush must live.
	c.Do("fresh", fill(99))
	if _, ok := c.Lookup("fresh"); !ok {
		t.Fatalf("post-flush insert did not stick")
	}
}

func TestInvalidateDuringCompute(t *testing.T) {
	c := New(Options{Entries: 8, Shards: 1})
	// The invalidation lands while the computation is running: the result
	// must be returned to the caller but never cached.
	v, hit, err := c.Do("a", func() (Value, []Tag, error) {
		c.Invalidate(EdgeTag(5))
		return mkValue(1), []Tag{EdgeTag(5)}, nil
	})
	if err != nil || hit || v.Result == nil {
		t.Fatalf("Do: hit=%v err=%v", hit, err)
	}
	if _, ok := c.Lookup("a"); ok {
		t.Fatalf("stale-at-insert entry was cached")
	}
}

func TestClockEviction(t *testing.T) {
	c := New(Options{Entries: 4, Shards: 1})
	for i := 0; i < 4; i++ {
		c.Do(fmt.Sprintf("k%d", i), fill(i))
	}
	// Touch k0 so it carries a reference bit; k1 is the sweep victim.
	if _, ok := c.Lookup("k0"); !ok {
		t.Fatalf("k0 missing before eviction")
	}
	c.Do("k4", fill(4))
	if _, ok := c.Lookup("k0"); !ok {
		t.Fatalf("referenced entry k0 was evicted before unreferenced ones")
	}
	if _, ok := c.Lookup("k1"); ok {
		t.Fatalf("expected k1 to be the CLOCK victim")
	}
	if ev := c.Stats().Evicted; ev != 1 {
		t.Fatalf("Evicted = %d", ev)
	}
	if c.Len() != 4 {
		t.Fatalf("Len = %d after eviction", c.Len())
	}
}

func TestDeadSlotsReusedWithoutEvicting(t *testing.T) {
	c := New(Options{Entries: 4, Shards: 1})
	for i := 0; i < 4; i++ {
		c.Do(fmt.Sprintf("k%d", i), fill(i, EdgeTag(graph.EdgeID(i))))
	}
	c.Invalidate(EdgeTag(graph.EdgeID(2)))
	c.Lookup("k2") // lazy kill
	c.Do("k9", fill(9))
	if ev := c.Stats().Evicted; ev != 0 {
		t.Fatalf("reusing a dead slot counted as eviction: %d", ev)
	}
	for _, k := range []string{"k0", "k1", "k3", "k9"} {
		if _, ok := c.Lookup(k); !ok {
			t.Fatalf("live entry %s lost when reusing dead slot", k)
		}
	}
}

func TestSingleflightCoalesces(t *testing.T) {
	c := New(Options{Entries: 8, Shards: 1})
	const herd = 32
	var computes atomic.Int64
	gate := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, _, err := c.Do("hot", func() (Value, []Tag, error) {
				computes.Add(1)
				<-gate
				return mkValue(7), nil, nil
			})
			if err != nil || v.Result.Facilities[0].ID != 7 {
				t.Errorf("coalesced Do: v=%+v err=%v", v, err)
			}
		}()
	}
	// Let the herd pile up on the inflight record, then release the leader.
	for c.Stats().Coalesced < herd-1 && computes.Load() <= 1 {
		runtime.Gosched()
	}
	close(gate)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("cold key computed %d times; want 1", n)
	}
	st := c.Stats()
	if st.Coalesced != herd-1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestNoCoalesce(t *testing.T) {
	c := New(Options{Entries: 8, Shards: 1, NoCoalesce: true})
	var computes atomic.Int64
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			c.Do("hot", func() (Value, []Tag, error) {
				computes.Add(1)
				return mkValue(1), nil, nil
			})
		}()
	}
	close(start)
	wg.Wait()
	if c.Stats().Coalesced != 0 {
		t.Fatalf("NoCoalesce cache coalesced")
	}
	if computes.Load() < 1 {
		t.Fatalf("nothing computed")
	}
}

func TestPanicReleasesWaiters(t *testing.T) {
	c := New(Options{Entries: 8, Shards: 1})
	entered := make(chan struct{})
	finish := make(chan struct{})
	var waitErr error
	go func() {
		defer func() { recover(); close(finish) }()
		c.Do("hot", func() (Value, []Tag, error) {
			close(entered)
			// Give the waiter time to register on the inflight record.
			for c.Stats().Coalesced == 0 {
				runtime.Gosched()
			}
			panic("query blew up")
		})
	}()
	<-entered // the panicking goroutine is the leader before the waiter starts
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, waitErr = c.Do("hot", fill(1))
	}()
	<-finish
	wg.Wait()
	if !errors.Is(waitErr, ErrComputePanic) {
		t.Fatalf("waiter error = %v; want ErrComputePanic", waitErr)
	}
	// The key must be retryable afterwards.
	if _, _, err := c.Do("hot", fill(2)); err != nil {
		t.Fatalf("retry after panic: %v", err)
	}
}

func TestShardStatsSumToStats(t *testing.T) {
	c := New(Options{Entries: 64, Shards: 4})
	if c.Shards() != 4 {
		t.Fatalf("Shards = %d", c.Shards())
	}
	for i := 0; i < 40; i++ {
		k := fmt.Sprintf("k%d", i%10)
		c.Do(k, fill(i))
	}
	var sum Stats
	var entries int64
	for _, s := range c.ShardStats() {
		sum.Hits += s.Hits
		sum.Misses += s.Misses
		sum.Coalesced += s.Coalesced
		sum.Invalidated += s.Invalidated
		sum.Evicted += s.Evicted
		entries += s.Entries
	}
	if sum != c.Stats() {
		t.Fatalf("shard sum %+v != aggregate %+v", sum, c.Stats())
	}
	if int(entries) != c.Len() {
		t.Fatalf("shard entries %d != Len %d", entries, c.Len())
	}
	if c.Stats().Hits != 30 || c.Stats().Misses != 10 {
		t.Fatalf("stats = %+v", c.Stats())
	}
}

func TestCapacityClampsShards(t *testing.T) {
	c := New(Options{Entries: 2, Shards: 16})
	if c.Shards() > 2 {
		t.Fatalf("Shards = %d for capacity 2", c.Shards())
	}
	if c.Capacity() != 2 {
		t.Fatalf("Capacity = %d", c.Capacity())
	}
}

func TestHitRate(t *testing.T) {
	s := Stats{Hits: 3, Misses: 1, Coalesced: 1}
	if got := s.HitRate(); got != 0.8 {
		t.Fatalf("HitRate = %g", got)
	}
	if (Stats{}).HitRate() != 0 {
		t.Fatalf("empty HitRate != 0")
	}
}

func TestKeyCanonicalization(t *testing.T) {
	base := KeySpec{Kind: KindTopK, Interval: -1, Edge: 7, T: 0.25,
		Agg: vec.NewWeighted(1, 2, 3), K: 5}
	k1, scale1, ok := base.Key()
	if !ok {
		t.Fatalf("base not cacheable")
	}
	if scale1 != 6 {
		t.Fatalf("scale = %g; want 6", scale1)
	}

	scaled := base
	scaled.Agg = vec.NewWeighted(2, 4, 6)
	k2, scale2, ok := scaled.Key()
	if !ok || k2 != k1 {
		t.Fatalf("proportional weight vectors got different keys")
	}
	if scale2 != 12 {
		t.Fatalf("scaled norm = %g; want 12", scale2)
	}

	diff := base
	diff.Agg = vec.NewWeighted(1, 2, 4)
	if k3, _, _ := diff.Key(); k3 == k1 {
		t.Fatalf("different weights share a key")
	}

	maxAgg := base
	maxAgg.Agg = vec.NewMax(1, 2, 3)
	if k4, _, _ := maxAgg.Key(); k4 == k1 {
		t.Fatalf("MaxAgg shares a key with Weighted")
	}

	opaque := base
	opaque.Agg = vec.Func{D: 3, F: func(vec.Costs) float64 { return 0 }}
	if _, _, ok := opaque.Key(); ok {
		t.Fatalf("opaque aggregate reported cacheable")
	}
}

func TestKeyDiscriminatesFields(t *testing.T) {
	base := KeySpec{Kind: KindNearest, Interval: -1, Edge: 7, T: 0.25, K: 3, CostIdx: 1}
	k0, _, _ := base.Key()
	variants := []KeySpec{
		{Kind: KindNearest, Interval: 0, Edge: 7, T: 0.25, K: 3, CostIdx: 1},
		{Kind: KindNearest, Interval: -1, Edge: 8, T: 0.25, K: 3, CostIdx: 1},
		{Kind: KindNearest, Interval: -1, Edge: 7, T: 0.5, K: 3, CostIdx: 1},
		{Kind: KindNearest, Interval: -1, Edge: 7, T: 0.25, K: 4, CostIdx: 1},
		{Kind: KindNearest, Interval: -1, Edge: 7, T: 0.25, K: 3, CostIdx: 0},
		{Kind: KindNearest, Interval: -1, Edge: 7, T: 0.25, K: 3, CostIdx: 1, Engine: 1},
		{Kind: KindNearest, Interval: -1, Edge: 7, T: 0.25, K: 3, CostIdx: 1, NoEnhancements: true},
		{Kind: KindSkyline, Interval: -1, Edge: 7, T: 0.25},
	}
	seen := map[string]int{k0: -1}
	for i, v := range variants {
		k, _, ok := v.Key()
		if !ok {
			t.Fatalf("variant %d not cacheable", i)
		}
		if prev, dup := seen[k]; dup {
			t.Fatalf("variants %d and %d collide", prev, i)
		}
		seen[k] = i
	}

	within := KeySpec{Kind: KindWithin, Interval: -1, Edge: 7, Budget: vec.Of(1, 2)}
	w0, _, _ := within.Key()
	within.Budget = vec.Of(1, 3)
	if w1, _, _ := within.Key(); w1 == w0 {
		t.Fatalf("different budgets share a key")
	}

	negZero := KeySpec{Kind: KindSkyline, Interval: -1, Edge: 7, T: math.Copysign(0, -1)}
	posZero := KeySpec{Kind: KindSkyline, Interval: -1, Edge: 7, T: 0}
	kn, _, _ := negZero.Key()
	kp, _, _ := posZero.Key()
	if kn != kp {
		t.Fatalf("-0 and +0 locations got different keys")
	}
}

func TestConcurrentChurn(t *testing.T) {
	c := New(Options{Entries: 32, Shards: 4})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("k%d", (w*7+i)%48)
				c.Do(k, fill(i, EdgeTag(graph.EdgeID(i%16))))
				if i%17 == 0 {
					c.Invalidate(EdgeTag(graph.EdgeID(i % 16)))
				}
				if i%97 == 0 {
					c.Flush()
				}
				c.Lookup(k)
				c.Stats()
				c.ShardStats()
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > c.Capacity() {
		t.Fatalf("Len %d exceeds capacity %d", c.Len(), c.Capacity())
	}
}

// A singleflight leader that fails (e.g. a storage I/O error) must hand that
// error to every coalesced waiter without caching it: the key stays
// retryable, and the next compute repopulates it normally.
func TestSingleflightLeaderErrorLeavesKeyRetryable(t *testing.T) {
	c := New(Options{Entries: 8, Shards: 1})
	const herd = 16
	boom := errors.New("storage: page 7: retries exhausted")
	gate := make(chan struct{})
	var computes atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, hit, err := c.Do("hot", func() (Value, []Tag, error) {
				computes.Add(1)
				<-gate
				return Value{}, nil, boom
			})
			if hit {
				t.Error("failed compute reported as cache hit")
			}
			if !errors.Is(err, boom) {
				t.Errorf("waiter err = %v, want the leader's failure", err)
			}
		}()
	}
	// Let the herd register on the inflight record, then fail the leader.
	for c.Stats().Coalesced < herd-1 && computes.Load() <= 1 {
		runtime.Gosched()
	}
	close(gate)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("leader ran %d times; want 1 (waiters must share its failure)", n)
	}
	if c.Len() != 0 {
		t.Fatal("failed compute left an entry in the cache")
	}
	// The key is immediately retryable and caches on success.
	v, hit, err := c.Do("hot", fill(9))
	if err != nil || hit {
		t.Fatalf("retry after failure: hit=%v err=%v", hit, err)
	}
	if v.Result.Facilities[0].ID != 9 {
		t.Fatalf("retry computed wrong value: %+v", v)
	}
	if _, hit, _ := c.Do("hot", fill(10)); !hit {
		t.Fatal("successful retry was not cached")
	}
}
