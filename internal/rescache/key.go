package rescache

import (
	"encoding/binary"
	"math"

	"mcn/internal/graph"
	"mcn/internal/vec"
)

// Query kinds as key bytes. They mirror engine.Kind but are fixed here so a
// reordering of the engine enum can never silently alias cache entries.
const (
	KindSkyline byte = 1
	KindTopK    byte = 2
	KindNearest byte = 3
	KindWithin  byte = 4
)

// KeySpec is everything that identifies a query's result. Key canonicalizes
// it into a cache key: equivalent queries — the same location expressed at
// the same offset, a weight vector scaled by a positive constant, any
// instant inside the same elementary time interval — map to the same bytes.
type KeySpec struct {
	// Kind is one of the Kind* bytes above.
	Kind byte
	// Interval is the elementary time-interval index for time-dependent
	// queries, or -1 for static ones.
	Interval int
	// Engine and NoEnhancements select the algorithm variant. They are part
	// of the key because hits must be byte-identical to what the same
	// request would compute, and the engines report different work stats.
	Engine         byte
	NoEnhancements bool
	// Edge and T are the query location.
	Edge graph.EdgeID
	T    float64
	// Agg is the top-k aggregate (Kind == KindTopK only).
	Agg vec.Aggregate
	// K is the result count for top-k and nearest queries.
	K int
	// CostIdx is the cost type for nearest queries.
	CostIdx int
	// Budget is the cost budget vector for within queries.
	Budget vec.Costs
}

// Key returns the canonical cache key for s, the L1 norm the key's weight
// vector was normalized at (0 when the kind has no aggregate), and whether
// the query is cacheable at all. Opaque aggregates (vec.Func and any type
// this package does not know) are not canonicalizable, so ok is false and
// the query bypasses the cache.
func (s KeySpec) Key() (key string, scale float64, ok bool) {
	b := make([]byte, 0, 64)
	b = append(b, s.Kind, s.Engine)
	if s.NoEnhancements {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = binary.LittleEndian.AppendUint64(b, uint64(s.Interval)+1) // -1 → 0
	b = binary.LittleEndian.AppendUint64(b, uint64(s.Edge))
	b = appendFloat(b, s.T)

	switch s.Kind {
	case KindSkyline:
	case KindTopK:
		var coef []float64
		var isMax byte
		switch a := s.Agg.(type) {
		case vec.Weighted:
			coef = a.Coef
		case *vec.Weighted:
			coef = a.Coef
		case vec.MaxAgg:
			coef, isMax = a.Coef, 1
		case *vec.MaxAgg:
			coef, isMax = a.Coef, 1
		default:
			return "", 0, false
		}
		b = append(b, isMax)
		b = binary.LittleEndian.AppendUint64(b, uint64(s.K))
		b, scale, ok = appendNormalized(b, coef)
		if !ok {
			return "", 0, false
		}
	case KindNearest:
		b = binary.LittleEndian.AppendUint64(b, uint64(s.K))
		b = binary.LittleEndian.AppendUint64(b, uint64(s.CostIdx))
	case KindWithin:
		for _, v := range s.Budget {
			b = appendFloat(b, v)
		}
	default:
		return "", 0, false
	}
	return string(b), scale, true
}

// appendNormalized appends coef scaled to unit L1 norm and returns the norm
// it divided by. Proportional weight vectors therefore share a key: IEEE
// division is correctly rounded, so coef and coef·k (computed with exact
// products) normalize to bit-identical quotients. A zero or non-finite norm
// leaves the coefficients raw with scale 0 (nothing to normalize by; such
// vectors still cache, they just never alias a scaled variant).
func appendNormalized(b []byte, coef []float64) ([]byte, float64, bool) {
	norm := 0.0
	for _, a := range coef {
		if math.IsNaN(a) || math.IsInf(a, 0) {
			return b, 0, false
		}
		norm += a
	}
	scale := norm
	if norm <= 0 || math.IsInf(norm, 0) {
		scale = 0
		norm = 1
	}
	b = binary.LittleEndian.AppendUint64(b, uint64(len(coef)))
	for _, a := range coef {
		b = appendFloat(b, a/norm)
	}
	return b, scale, true
}

// appendFloat appends v's IEEE bits with -0 folded into +0 so the two equal
// values share a key.
func appendFloat(b []byte, v float64) []byte {
	if v == 0 {
		v = 0
	}
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}
