// Package rescache is the serving-layer query-result cache: completed
// preference-query results keyed by a canonical encoding of the query
// (kind, source location, normalized weight vector, k/budget, elementary
// interval for time-dependent queries), so Zipfian traffic — the same
// (source, weights, k) requests repeating — expands the network once per
// distinct query instead of once per request.
//
// The cache reuses the buffer pool's proven machinery one level up (see
// internal/storage): power-of-two shards with per-shard locks and CLOCK
// (second-chance) eviction, per-key miss coalescing (singleflight — a
// thundering herd on a cold popular query performs the expansion once, the
// rest wait and share the result), and lock-free counters on per-shard
// atomics so a /stats poll never stalls query traffic.
//
// # Invalidation
//
// Entries are stamped, not chased: each entry records the tags it depends
// on (the query location's edge, the edges carrying its result facilities,
// its elementary interval) plus the cache's global version at the moment
// its computation began. Invalidate bumps the version and stamps the
// affected tags; an entry is stale when any of its tags was stamped after
// the entry's computation started, and stale entries die lazily — at the
// next lookup that touches them, or when the CLOCK hand sweeps them out.
// Invalidation is therefore O(tags) no matter how many entries are cached,
// and a live update (a facility insert, a profile edit) kills exactly the
// entries whose tags it touched. Flush is the generation-stamped epoch
// fallback: it invalidates every entry at once, for structural changes
// whose precise tag set is unknown (e.g. a time-axis recompile that
// renumbers intervals — though those use the narrower class tag).
//
// # Relaxed consistency
//
// A computation that raced an invalidation (the tag was stamped after the
// computation began) is returned to its immediate callers but never
// cached, so no entry outlives an update that affects it. What a *hit* may
// observe is deliberately relaxed — see the contract in ARCHITECTURE.md
// ("Result cache"): hits return the shared cached result (callers must
// treat it as read-only), carry the work statistics of the query that
// filled the entry, and — for facility updates — entries whose tags the
// update did not touch survive by design.
package rescache

import (
	"errors"
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"mcn/internal/core"
	"mcn/internal/graph"
)

// ErrComputePanic is returned to coalesced waiters when the query that was
// computing their shared entry panicked; the panic itself propagates on the
// computing goroutine (the engine's per-query isolation recovers it there).
var ErrComputePanic = errors.New("rescache: shared computation panicked")

// Tag names one thing a cached entry depends on. Tags partition into kinds
// (edge, elementary interval, class) so the same 64-bit space serves them
// all without collisions.
type Tag uint64

const (
	tagKindEdge     uint64 = 1 << 56
	tagKindInterval uint64 = 2 << 56
	tagKindClass    uint64 = 3 << 56
)

// EdgeTag tags entries that depend on edge e: the query location lies on it
// or a result facility does. Facility updates invalidate through it.
func EdgeTag(e graph.EdgeID) Tag { return Tag(tagKindEdge | uint64(e)) }

// IntervalTag tags entries answered from elementary time interval k of a
// time-dependent overlay. Profile edits that change only interval k's costs
// invalidate through it.
func IntervalTag(k int) Tag { return Tag(tagKindInterval | uint64(k)) }

// ClassTimeDep tags every time-dependent entry; structural profile changes
// (a recompiled time axis renumbers the intervals) invalidate the whole
// class through it without touching static entries.
const ClassTimeDep = Tag(tagKindClass | 1)

// Options tunes a Cache. The zero value selects the defaults.
type Options struct {
	// Entries is the cache capacity in cached results; <= 0 selects the
	// default (4096).
	Entries int
	// Shards is the number of independently locked partitions, rounded down
	// to a power of two and clamped so every shard owns at least one entry.
	// Zero derives a default from GOMAXPROCS.
	Shards int
	// NoCoalesce disables per-key singleflight: concurrent misses on the
	// same cold key each run their own query, as an uncached server would.
	// Kept for A/B experiments; leave it false in servers.
	NoCoalesce bool
}

// DefaultEntries is the capacity Options{Entries: 0} selects.
const DefaultEntries = 4096

// Value is one cached result. Scale records the L1 norm of the aggregate
// the scores were computed at, so a hit under a positively scaled weight
// vector (the same preferences, different units) can rescale the scores;
// zero means the query kind has no aggregate scale (skyline, nearest,
// within).
type Value struct {
	Result *core.Result
	Scale  float64
}

// ResultAt adapts the cached result to the caller's weight scale (the L1
// norm its KeySpec normalized away). An exact scale match — including the
// scale-free kinds, where both are zero — returns the shared cached result
// untouched, byte-identical to an uncached run. A proportionally scaled
// weight vector shares the entry but gets a copy with scores multiplied by
// the ratio; the ranking is unchanged because the ratio is positive.
func (v Value) ResultAt(scale float64) *core.Result {
	if v.Scale == scale || v.Scale == 0 {
		return v.Result
	}
	ratio := scale / v.Scale
	out := &core.Result{
		Facilities: make([]core.Facility, len(v.Result.Facilities)),
		Stats:      v.Result.Stats,
	}
	for i, f := range v.Result.Facilities {
		f.Score *= ratio
		out.Facilities[i] = f
	}
	return out
}

// Stats is an aggregate snapshot of a cache's lifetime counters, summed
// lock-free across shards (approximate under concurrent traffic, monotone
// per counter — the same contract as the buffer pool's Stats).
type Stats struct {
	// Hits counts lookups served from a live entry; Misses counts lookups
	// that ran the query (coalescing leaders included); Coalesced counts
	// lookups that piggybacked on another query's in-flight computation.
	Hits      int64
	Misses    int64
	Coalesced int64
	// Invalidated counts entries found stale and discarded at lookup or
	// insert time; Evicted counts live entries displaced by CLOCK.
	Invalidated int64
	Evicted     int64
}

// Lookups returns the total number of cache consultations.
func (s Stats) Lookups() int64 { return s.Hits + s.Misses + s.Coalesced }

// HitRate returns the fraction of lookups that avoided running the query
// themselves (hits plus coalesced waiters).
func (s Stats) HitRate() float64 {
	n := s.Lookups()
	if n == 0 {
		return 0
	}
	return float64(s.Hits+s.Coalesced) / float64(n)
}

// String implements fmt.Stringer.
func (s Stats) String() string {
	return fmt.Sprintf("hits=%d misses=%d coalesced=%d invalidated=%d evicted=%d hit=%.1f%%",
		s.Hits, s.Misses, s.Coalesced, s.Invalidated, s.Evicted, 100*s.HitRate())
}

// ShardStats is one cache shard's lifetime counters — the result-cache
// analogue of storage.ShardStats, surfaced the same way (lock-free
// snapshots through the facade into /stats) so shard skew is diagnosable
// with the same tooling as the buffer pool's.
type ShardStats struct {
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Coalesced   int64 `json:"coalesced"`
	Invalidated int64 `json:"invalidated"`
	Evicted     int64 `json:"evicted"`
	// Entries is the shard's current live-entry count.
	Entries int64 `json:"entries"`
}

// Cache is a sharded, CLOCK-evicted, singleflight-coalesced map from
// canonical query keys to completed results. It is safe for concurrent use.
type Cache struct {
	cap      int
	coalesce bool
	shift    uint
	shards   []shard

	// version is the global invalidation clock: bumped on every Invalidate
	// and Flush, snapshotted by each computation before it starts.
	version atomic.Uint64
	// flushed is the version of the last Flush; entries whose snapshot
	// predates it are stale regardless of tags.
	flushed atomic.Uint64

	// tagMu guards stamped, the last-invalidated version per tag. Lookups
	// take the read side per tag check; Invalidate the write side briefly.
	tagMu   sync.RWMutex
	stamped map[Tag]uint64
}

// shard is one cache partition; counters above mu are atomics read
// lock-free, everything below mu is guarded by it.
type shard struct {
	hits        atomic.Int64
	misses      atomic.Int64
	coalesced   atomic.Int64
	invalidated atomic.Int64
	evicted     atomic.Int64
	live        atomic.Int64 // len(entries), mirrored for lock-free stats

	mu       sync.Mutex
	cap      int
	entries  map[string]*entry
	inflight map[string]*flight

	// CLOCK ring and sweep hand; free holds ring indices of invalidated
	// entries, reused before any live entry is evicted.
	slots []*entry
	hand  int
	free  []int

	// pad keeps neighbouring shards' counters off one cache line.
	_ [64]byte
}

// entry is one cached result with its dependency stamps.
type entry struct {
	key  string
	val  Value
	tags []Tag
	// ver is the cache version observed before the entry's computation
	// began; any tag stamped after it marks the entry stale.
	ver  uint64
	slot int  // position in the shard's CLOCK ring
	ref  bool // CLOCK reference bit
}

// flight is one coalesced computation: the leader fills val/err and closes
// done; waiters block on done and share the outcome.
type flight struct {
	done chan struct{}
	val  Value
	err  error
}

// New returns a cache with the given options.
func New(opts Options) *Cache {
	capacity := opts.Entries
	if capacity <= 0 {
		capacity = DefaultEntries
	}
	n := opts.Shards
	if n <= 0 {
		n = 4 * runtime.GOMAXPROCS(0)
		if n > 64 {
			n = 64
		}
	}
	n = floorPow2(n)
	if n > capacity {
		n = floorPow2(capacity)
	}
	c := &Cache{
		cap:      capacity,
		coalesce: !opts.NoCoalesce,
		shift:    uint(64 - bits.Len(uint(n-1))),
		shards:   make([]shard, n),
		stamped:  make(map[Tag]uint64),
	}
	if n == 1 {
		c.shift = 64
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.cap = capacity / n
		if i < capacity%n {
			s.cap++
		}
		s.entries = make(map[string]*entry, s.cap)
		s.inflight = make(map[string]*flight)
	}
	c.version.Store(1)
	return c
}

func floorPow2(n int) int { return 1 << (bits.Len(uint(n)) - 1) }

// shard maps a key to its partition by FNV-1a with a Fibonacci finalizer,
// so near-identical keys (adjacent edges, k±1) still spread.
func (c *Cache) shard(key string) *shard {
	if c.shift >= 64 {
		return &c.shards[0]
	}
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return &c.shards[(h*0x9E3779B97F4A7C15)>>c.shift]
}

// Capacity returns the total entry capacity.
func (c *Cache) Capacity() int { return c.cap }

// Shards returns the number of partitions.
func (c *Cache) Shards() int { return len(c.shards) }

// Len returns the number of live cached entries (lock-free, approximate
// during concurrent inserts).
func (c *Cache) Len() int {
	var n int64
	for i := range c.shards {
		n += c.shards[i].live.Load()
	}
	return int(n)
}

// Stats returns the aggregate counters (lock-free; see Stats).
func (c *Cache) Stats() Stats {
	var out Stats
	for i := range c.shards {
		s := &c.shards[i]
		out.Hits += s.hits.Load()
		out.Misses += s.misses.Load()
		out.Coalesced += s.coalesced.Load()
		out.Invalidated += s.invalidated.Load()
		out.Evicted += s.evicted.Load()
	}
	return out
}

// ShardStats returns one entry per partition, in shard order — the same
// per-shard skew view the buffer pool exposes, read lock-free.
func (c *Cache) ShardStats() []ShardStats {
	out := make([]ShardStats, len(c.shards))
	for i := range c.shards {
		s := &c.shards[i]
		out[i] = ShardStats{
			Hits:        s.hits.Load(),
			Misses:      s.misses.Load(),
			Coalesced:   s.coalesced.Load(),
			Invalidated: s.invalidated.Load(),
			Evicted:     s.evicted.Load(),
			Entries:     s.live.Load(),
		}
	}
	return out
}

// Invalidate stamps the given tags: every entry depending on any of them —
// cached already or still computing — is stale from this moment and will
// be discarded rather than served. O(tags); entries die lazily.
func (c *Cache) Invalidate(tags ...Tag) {
	if len(tags) == 0 {
		return
	}
	v := c.version.Add(1)
	c.tagMu.Lock()
	for _, t := range tags {
		c.stamped[t] = v
	}
	c.tagMu.Unlock()
}

// Flush invalidates every entry at once — the epoch fallback for updates
// whose precise tag set is unknown. Like Invalidate it is O(1) in the
// number of entries; memory is reclaimed lazily.
func (c *Cache) Flush() {
	c.flushed.Store(c.version.Add(1))
}

// stale reports whether an entry computed at version ver with the given
// tags has been invalidated since.
func (c *Cache) stale(ver uint64, tags []Tag) bool {
	if c.flushed.Load() > ver {
		return true
	}
	c.tagMu.RLock()
	defer c.tagMu.RUnlock()
	for _, t := range tags {
		if c.stamped[t] > ver {
			return true
		}
	}
	return false
}

// Do returns the cached value for key, computing it on a miss. compute
// returns the value plus the tags it depends on; concurrent Do calls for
// the same key share one computation (unless NoCoalesce). hit reports
// whether the value came from a live cached entry; coalesced waiters
// report hit=false. Errors are never cached: every waiter of a failed
// computation receives its error and the next Do retries.
//
// The returned Value is shared with the cache and other callers; treat the
// Result as read-only.
func (c *Cache) Do(key string, compute func() (Value, []Tag, error)) (val Value, hit bool, err error) {
	s := c.shard(key)
	s.mu.Lock()
	if e, ok := s.entries[key]; ok {
		if c.stale(e.ver, e.tags) {
			s.kill(e)
			s.invalidated.Add(1)
		} else {
			e.ref = true
			val = e.val
			s.hits.Add(1)
			s.mu.Unlock()
			return val, true, nil
		}
	}
	if c.coalesce {
		if f, ok := s.inflight[key]; ok {
			s.coalesced.Add(1)
			s.mu.Unlock()
			<-f.done
			return f.val, false, f.err
		}
	}
	s.misses.Add(1)
	var f *flight
	if c.coalesce {
		f = &flight{done: make(chan struct{})}
		s.inflight[key] = f
	}
	s.mu.Unlock()

	// ver is snapshotted before the computation starts: an invalidation
	// landing while the query runs stamps a higher version, so the entry
	// below is recognisably stale and never inserted.
	ver := c.version.Load()
	completed := false
	if f != nil {
		// A panicking compute must not strand coalesced waiters: release
		// them with an error, then let the panic continue to the caller's
		// isolation layer.
		defer func() {
			if !completed {
				s.mu.Lock()
				delete(s.inflight, key)
				s.mu.Unlock()
				f.err = ErrComputePanic
				close(f.done)
			}
		}()
	}
	val, tags, err := compute()
	completed = true

	s.mu.Lock()
	if f != nil {
		delete(s.inflight, key)
	}
	if err == nil && !c.stale(ver, tags) {
		if _, ok := s.entries[key]; !ok {
			s.insert(&entry{key: key, val: val, tags: tags, ver: ver})
		}
	}
	s.mu.Unlock()
	if f != nil {
		f.val, f.err = val, err
		close(f.done)
	}
	return val, false, err
}

// Lookup probes the cache without computing; ok reports a live hit. It
// obeys the same staleness rules as Do (a stale entry is discarded and
// reported as a miss) but does not touch the hit/miss counters, so probes
// from tests and diagnostics do not skew serving statistics.
func (c *Cache) Lookup(key string) (Value, bool) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if !ok {
		return Value{}, false
	}
	if c.stale(e.ver, e.tags) {
		s.kill(e)
		s.invalidated.Add(1)
		return Value{}, false
	}
	e.ref = true
	return e.val, true
}

// kill removes an invalidated entry from the map and puts its ring slot on
// the free list for reuse. Caller holds mu.
func (s *shard) kill(e *entry) {
	delete(s.entries, e.key)
	s.slots[e.slot] = nil
	s.free = append(s.free, e.slot)
	s.live.Store(int64(len(s.entries)))
}

// insert places a new entry, reusing freed (invalidated) slots first and
// otherwise evicting with a CLOCK second-chance sweep once the shard is
// full. Only displacing a live entry counts as an eviction. Caller holds
// mu; the free-list-first order keeps the invariant that the sweep never
// encounters an empty slot.
func (s *shard) insert(e *entry) {
	switch {
	case len(s.free) > 0:
		e.slot = s.free[len(s.free)-1]
		s.free = s.free[:len(s.free)-1]
		s.slots[e.slot] = e
	case len(s.slots) < s.cap:
		e.slot = len(s.slots)
		s.slots = append(s.slots, e)
	default:
		for {
			victim := s.slots[s.hand]
			if !victim.ref {
				s.evicted.Add(1)
				delete(s.entries, victim.key)
				break
			}
			victim.ref = false
			s.hand++
			if s.hand == len(s.slots) {
				s.hand = 0
			}
		}
		e.slot = s.hand
		s.slots[s.hand] = e
		s.hand++
		if s.hand == len(s.slots) {
			s.hand = 0
		}
	}
	s.entries[e.key] = e
	s.live.Store(int64(len(s.entries)))
}
