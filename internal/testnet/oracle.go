// Package testnet provides slow, obviously-correct reference computations
// used as oracles by tests of the expansion engine and the query algorithms.
// Everything here is deliberately implemented with different techniques than
// the production code (Bellman-Ford relaxation instead of Dijkstra, O(n²)
// skyline scans) so that agreement is meaningful.
package testnet

import (
	"math"
	"sort"

	"mcn/internal/graph"
	"mcn/internal/vec"
)

// NodeCosts computes, by Bellman-Ford relaxation to a fixpoint, the minimum
// cost from loc to every node under cost type costIdx. Unreachable nodes get
// +Inf.
func NodeCosts(g *graph.Graph, loc graph.Location, costIdx int) []float64 {
	dist := make([]float64, g.NumNodes())
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	qe := g.Edge(loc.Edge)
	w := qe.W[costIdx]
	dist[qe.V] = math.Min(dist[qe.V], (1-loc.T)*w)
	if !g.Directed() {
		dist[qe.U] = math.Min(dist[qe.U], loc.T*w)
	}
	for changed := true; changed; {
		changed = false
		for e := 0; e < g.NumEdges(); e++ {
			edge := g.Edge(graph.EdgeID(e))
			we := edge.W[costIdx]
			if dist[edge.U]+we < dist[edge.V] {
				dist[edge.V] = dist[edge.U] + we
				changed = true
			}
			if !g.Directed() && dist[edge.V]+we < dist[edge.U] {
				dist[edge.U] = dist[edge.V] + we
				changed = true
			}
		}
	}
	return dist
}

// FacilityCosts computes the exact cost from loc to every facility under
// cost type costIdx: the best of entering via either end-node of the
// facility's edge, or walking directly along the query edge when the
// facility shares it.
func FacilityCosts(g *graph.Graph, loc graph.Location, costIdx int) []float64 {
	dist := NodeCosts(g, loc, costIdx)
	out := make([]float64, g.NumFacilities())
	for p := 0; p < g.NumFacilities(); p++ {
		f := g.Facility(graph.FacilityID(p))
		edge := g.Edge(f.Edge)
		w := edge.W[costIdx]
		best := dist[edge.U] + f.T*w
		if !g.Directed() {
			best = math.Min(best, dist[edge.V]+(1-f.T)*w)
		}
		if f.Edge == loc.Edge {
			if g.Directed() {
				if f.T >= loc.T {
					best = math.Min(best, (f.T-loc.T)*w)
				}
			} else {
				best = math.Min(best, math.Abs(f.T-loc.T)*w)
			}
		}
		out[p] = best
	}
	return out
}

// AllCosts returns the full cost vector of every facility.
func AllCosts(g *graph.Graph, loc graph.Location) []vec.Costs {
	out := make([]vec.Costs, g.NumFacilities())
	for p := range out {
		out[p] = make(vec.Costs, g.D())
	}
	for i := 0; i < g.D(); i++ {
		ci := FacilityCosts(g, loc, i)
		for p := range ci {
			out[p][i] = ci[p]
		}
	}
	return out
}

// Skyline returns the exact MCN skyline facility ids (sorted) by an O(n²)
// scan over the oracle cost vectors. Facilities unreachable under every cost
// type are excluded (their vectors are all +Inf and dominate nothing, but
// reporting them as "preferred" would be meaningless); facilities
// unreachable under some cost types participate normally, matching the
// production semantics.
func Skyline(g *graph.Graph, loc graph.Location) []graph.FacilityID {
	costs := AllCosts(g, loc)
	var out []graph.FacilityID
	for p := range costs {
		if allInf(costs[p]) {
			continue
		}
		dominated := false
		for q := range costs {
			if q != p && costs[q].Dominates(costs[p]) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, graph.FacilityID(p))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func allInf(c vec.Costs) bool {
	for _, v := range c {
		if !math.IsInf(v, 1) {
			return false
		}
	}
	return true
}

// TopKScores returns the k smallest aggregate scores (sorted ascending,
// including ties resolved by score only) over all facilities reachable under
// at least one cost type; facilities reachable under none cannot be
// discovered by network expansion and are excluded, matching the production
// semantics. Comparing score multisets rather than facility ids makes the
// oracle insensitive to arbitrary tie resolution, which the paper explicitly
// allows.
func TopKScores(g *graph.Graph, loc graph.Location, f vec.Aggregate, k int) []float64 {
	costs := AllCosts(g, loc)
	scores := make([]float64, 0, len(costs))
	for p := range costs {
		if allInf(costs[p]) {
			continue
		}
		scores = append(scores, f.Score(costs[p]))
	}
	sort.Float64s(scores)
	if k > len(scores) {
		k = len(scores)
	}
	return scores[:k]
}
