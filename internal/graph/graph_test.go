package graph

import (
	"math/rand"
	"testing"

	"mcn/internal/vec"
)

// line builds the 3-node path a—b—c with 2 cost types and one facility on
// each edge.
func line(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(2, false)
	a := b.AddNode(0, 0)
	m := b.AddNode(1, 0)
	c := b.AddNode(2, 0)
	e0 := b.AddEdge(a, m, vec.Of(1, 2))
	e1 := b.AddEdge(m, c, vec.Of(3, 4))
	b.AddFacility(e0, 0.5)
	b.AddFacility(e1, 0.25)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

func TestBuildBasics(t *testing.T) {
	g := line(t)
	if g.D() != 2 {
		t.Errorf("D = %d, want 2", g.D())
	}
	if g.NumNodes() != 3 || g.NumEdges() != 2 || g.NumFacilities() != 2 {
		t.Errorf("counts = (%d,%d,%d), want (3,2,2)", g.NumNodes(), g.NumEdges(), g.NumFacilities())
	}
	if g.Directed() {
		t.Error("graph should be undirected")
	}
}

func TestUndirectedAdjacency(t *testing.T) {
	g := line(t)
	if got := g.Degree(0); got != 1 {
		t.Errorf("degree(0) = %d, want 1", got)
	}
	if got := g.Degree(1); got != 2 {
		t.Errorf("degree(1) = %d, want 2", got)
	}
	// Arc from node 1 back to node 0 must be marked backward (node 1 is the
	// V end of edge 0).
	var found bool
	for _, a := range g.Arcs(1) {
		if a.Neighbor == 0 {
			found = true
			if a.Forward {
				t.Error("arc 1->0 should be backward on edge 0")
			}
			if a.Edge != 0 {
				t.Errorf("arc 1->0 edge = %d, want 0", a.Edge)
			}
		}
	}
	if !found {
		t.Fatal("missing reverse arc 1->0")
	}
}

func TestDirectedAdjacency(t *testing.T) {
	b := NewBuilder(1, true)
	u := b.AddNode(0, 0)
	v := b.AddNode(1, 0)
	b.AddEdge(u, v, vec.Of(5))
	g := b.MustBuild()
	if g.Degree(u) != 1 {
		t.Errorf("out-degree(u) = %d, want 1", g.Degree(u))
	}
	if g.Degree(v) != 0 {
		t.Errorf("out-degree(v) = %d, want 0 in directed graph", g.Degree(v))
	}
}

func TestBuilderErrors(t *testing.T) {
	t.Run("endpoint out of range", func(t *testing.T) {
		b := NewBuilder(1, false)
		b.AddNode(0, 0)
		b.AddEdge(0, 5, vec.Of(1))
		if _, err := b.Build(); err == nil {
			t.Error("want error for out-of-range endpoint")
		}
	})
	t.Run("self loop", func(t *testing.T) {
		b := NewBuilder(1, false)
		b.AddNode(0, 0)
		b.AddEdge(0, 0, vec.Of(1))
		if _, err := b.Build(); err == nil {
			t.Error("want error for self-loop")
		}
	})
	t.Run("wrong dimensionality", func(t *testing.T) {
		b := NewBuilder(2, false)
		b.AddNode(0, 0)
		b.AddNode(1, 0)
		b.AddEdge(0, 1, vec.Of(1))
		if _, err := b.Build(); err == nil {
			t.Error("want error for wrong cost dimensionality")
		}
	})
	t.Run("negative cost", func(t *testing.T) {
		b := NewBuilder(1, false)
		b.AddNode(0, 0)
		b.AddNode(1, 0)
		b.AddEdge(0, 1, vec.Of(-1))
		if _, err := b.Build(); err == nil {
			t.Error("want error for negative cost")
		}
	})
	t.Run("facility fraction out of range", func(t *testing.T) {
		b := NewBuilder(1, false)
		b.AddNode(0, 0)
		b.AddNode(1, 0)
		e := b.AddEdge(0, 1, vec.Of(1))
		b.AddFacility(e, 1.5)
		if _, err := b.Build(); err == nil {
			t.Error("want error for fraction > 1")
		}
	})
	t.Run("facility edge out of range", func(t *testing.T) {
		b := NewBuilder(1, false)
		b.AddFacility(3, 0.5)
		if _, err := b.Build(); err == nil {
			t.Error("want error for out-of-range facility edge")
		}
	})
}

func TestEdgeFacilitiesSorted(t *testing.T) {
	b := NewBuilder(1, false)
	b.AddNode(0, 0)
	b.AddNode(1, 0)
	e := b.AddEdge(0, 1, vec.Of(1))
	b.AddFacility(e, 0.9)
	b.AddFacility(e, 0.1)
	b.AddFacility(e, 0.5)
	g := b.MustBuild()
	facs := g.EdgeFacilities(e)
	if len(facs) != 3 {
		t.Fatalf("len = %d, want 3", len(facs))
	}
	prev := -1.0
	for _, f := range facs {
		if g.Facility(f).T < prev {
			t.Fatalf("facilities not sorted by T: %v", facs)
		}
		prev = g.Facility(f).T
	}
}

func TestPartialFrom(t *testing.T) {
	if got := PartialFrom(true, 0.3); got != 0.3 {
		t.Errorf("forward partial = %g, want 0.3", got)
	}
	if got := PartialFrom(false, 0.3); got != 0.7 {
		t.Errorf("backward partial = %g, want 0.7", got)
	}
}

func TestAddNodesBulk(t *testing.T) {
	b := NewBuilder(1, false)
	first := b.AddNodes(10)
	if first != 0 {
		t.Errorf("first = %d, want 0", first)
	}
	second := b.AddNodes(5)
	if second != 10 {
		t.Errorf("second = %d, want 10", second)
	}
	b.AddEdge(0, 14, vec.Of(1))
	g := b.MustBuild()
	if g.NumNodes() != 15 {
		t.Errorf("NumNodes = %d, want 15", g.NumNodes())
	}
}

// Property: in an undirected graph every edge contributes exactly two arcs
// and total arc count is 2|E|; forward/backward flags are consistent.
func TestArcsConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(30)
		b := NewBuilder(1, false)
		b.AddNodes(n)
		m := 1 + rng.Intn(60)
		for i := 0; i < m; i++ {
			u := NodeID(rng.Intn(n))
			v := NodeID(rng.Intn(n))
			if u == v {
				v = (v + 1) % NodeID(n)
			}
			b.AddEdge(u, v, vec.Of(float64(rng.Intn(10))))
		}
		g := b.MustBuild()
		total := 0
		for v := NodeID(0); int(v) < n; v++ {
			for _, a := range g.Arcs(v) {
				total++
				e := g.Edge(a.Edge)
				if a.Forward {
					if e.U != v || e.V != a.Neighbor {
						t.Fatalf("forward arc inconsistent: arc %+v edge %+v tail %d", a, e, v)
					}
				} else {
					if e.V != v || e.U != a.Neighbor {
						t.Fatalf("backward arc inconsistent: arc %+v edge %+v tail %d", a, e, v)
					}
				}
			}
		}
		if total != 2*g.NumEdges() {
			t.Fatalf("arc total = %d, want %d", total, 2*g.NumEdges())
		}
	}
}

func TestLocations(t *testing.T) {
	g := line(t)
	if _, err := LocationAt(g, 0, 0.5); err != nil {
		t.Errorf("valid location rejected: %v", err)
	}
	if _, err := LocationAt(g, 9, 0.5); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if _, err := LocationAt(g, 0, -0.1); err == nil {
		t.Error("negative fraction accepted")
	}
	loc, err := LocationAtNode(g, 1)
	if err != nil {
		t.Fatalf("LocationAtNode: %v", err)
	}
	// Location must coincide with node 1: either T=1 on edge 0 or T=0 on edge 1.
	e := g.Edge(loc.Edge)
	at := e.U
	if loc.T == 1 {
		at = e.V
	} else if loc.T != 0 {
		t.Fatalf("node location fraction = %g, want 0 or 1", loc.T)
	}
	if at != 1 {
		t.Errorf("location lands on node %d, want 1", at)
	}
}

func TestLocationAtNodeDirectedSink(t *testing.T) {
	b := NewBuilder(1, true)
	u := b.AddNode(0, 0)
	v := b.AddNode(1, 0)
	b.AddEdge(u, v, vec.Of(1))
	g := b.MustBuild()
	// v has no outgoing arcs but lies at the V end of edge 0.
	loc, err := LocationAtNode(g, v)
	if err != nil {
		t.Fatalf("LocationAtNode(sink): %v", err)
	}
	if loc.Edge != 0 || loc.T != 1 {
		t.Errorf("sink location = %+v, want edge 0 T=1", loc)
	}
}

func TestLocationAtIsolatedNode(t *testing.T) {
	b := NewBuilder(1, false)
	b.AddNode(0, 0)
	g := b.MustBuild()
	if _, err := LocationAtNode(g, 0); err == nil {
		t.Error("isolated node must not host a location")
	}
}

func TestFacilityLocation(t *testing.T) {
	g := line(t)
	loc := FacilityLocation(g, 0)
	if loc.Edge != 0 || loc.T != 0.5 {
		t.Errorf("FacilityLocation = %+v, want edge 0 T=0.5", loc)
	}
}
