package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"mcn/internal/vec"
)

func TestTextRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1300))
	for trial := 0; trial < 20; trial++ {
		d := 1 + rng.Intn(4)
		b := NewBuilder(d, rng.Intn(2) == 0)
		nn := 1 + rng.Intn(30)
		for i := 0; i < nn; i++ {
			b.AddNode(rng.Float64()*100, rng.Float64()*100)
		}
		added := 0
		if nn > 1 {
			for i := 0; i < rng.Intn(60); i++ {
				u := NodeID(rng.Intn(nn))
				v := NodeID(rng.Intn(nn))
				if u == v {
					v = (v + 1) % NodeID(nn)
				}
				w := make(vec.Costs, d)
				for j := range w {
					w[j] = rng.Float64() * 50
				}
				b.AddEdge(u, v, w)
				added++
			}
		}
		if added > 0 {
			for i := 0; i < rng.Intn(20); i++ {
				b.AddFacility(EdgeID(rng.Intn(added)), rng.Float64())
			}
		}
		g, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}

		var buf bytes.Buffer
		if err := WriteText(&buf, g); err != nil {
			t.Fatal(err)
		}
		g2, err := ReadText(&buf)
		if err != nil {
			t.Fatalf("trial %d: ReadText: %v\n", trial, err)
		}
		if g2.D() != g.D() || g2.Directed() != g.Directed() ||
			g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() ||
			g2.NumFacilities() != g.NumFacilities() {
			t.Fatalf("trial %d: shape mismatch after roundtrip", trial)
		}
		for e := 0; e < g.NumEdges(); e++ {
			a, bb := g.Edge(EdgeID(e)), g2.Edge(EdgeID(e))
			if a.U != bb.U || a.V != bb.V || !a.W.Equal(bb.W) {
				t.Fatalf("trial %d: edge %d mismatch", trial, e)
			}
		}
		for p := 0; p < g.NumFacilities(); p++ {
			a, bb := g.Facility(FacilityID(p)), g2.Facility(FacilityID(p))
			if a.Edge != bb.Edge || a.T != bb.T {
				t.Fatalf("trial %d: facility %d mismatch", trial, p)
			}
		}
	}
}

func TestReadTextHandWritten(t *testing.T) {
	src := `
# a hand-written two-cost network
mcn 2 undirected
node 0 0
node 1 0
node 1 1
edge 0 1  5 2
edge 1 2  3 4
facility 0 0.25
`
	g, err := ReadText(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 2 || g.NumFacilities() != 1 {
		t.Fatalf("parsed shape (%d,%d,%d)", g.NumNodes(), g.NumEdges(), g.NumFacilities())
	}
	if !g.Edge(0).W.Equal(vec.Of(5, 2)) {
		t.Errorf("edge 0 costs = %v", g.Edge(0).W)
	}
	if g.Facility(0).T != 0.25 {
		t.Errorf("facility T = %g", g.Facility(0).T)
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := map[string]string{
		"missing header":    "node 0 0\n",
		"empty":             "",
		"duplicate header":  "mcn 2 undirected\nmcn 2 undirected\n",
		"bad d":             "mcn zero undirected\n",
		"bad direction":     "mcn 2 sideways\n",
		"bad node":          "mcn 1 undirected\nnode 1\n",
		"bad edge arity":    "mcn 2 undirected\nnode 0 0\nnode 1 0\nedge 0 1 5\n",
		"bad cost":          "mcn 1 undirected\nnode 0 0\nnode 1 0\nedge 0 1 abc\n",
		"bad facility":      "mcn 1 undirected\nnode 0 0\nnode 1 0\nedge 0 1 1\nfacility x 0.5\n",
		"unknown record":    "mcn 1 undirected\nhighway 1 2\n",
		"edge out of range": "mcn 1 undirected\nnode 0 0\nedge 0 5 1\n",
	}
	for name, src := range cases {
		if _, err := ReadText(strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
