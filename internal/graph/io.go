package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"mcn/internal/vec"
)

// Text interchange format for multi-cost networks, for users importing their
// own data. Tab- or space-separated lines; '#' starts a comment. Sections:
//
//	mcn <d> <directed|undirected>
//	node <x> <y>                      (implicit ids 0,1,…)
//	edge <u> <v> <w1> … <wd>
//	facility <edge> <t>
//
// Sections may interleave as long as references point backwards.

// WriteText serialises g in the text interchange format.
func WriteText(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	dir := "undirected"
	if g.Directed() {
		dir = "directed"
	}
	fmt.Fprintf(bw, "# multi-cost network: %d nodes, %d edges, %d facilities\n",
		g.NumNodes(), g.NumEdges(), g.NumFacilities())
	fmt.Fprintf(bw, "mcn %d %s\n", g.D(), dir)
	for v := 0; v < g.NumNodes(); v++ {
		n := g.Node(NodeID(v))
		fmt.Fprintf(bw, "node %g %g\n", n.X, n.Y)
	}
	for e := 0; e < g.NumEdges(); e++ {
		edge := g.Edge(EdgeID(e))
		fmt.Fprintf(bw, "edge %d %d", edge.U, edge.V)
		for _, c := range edge.W {
			fmt.Fprintf(bw, " %g", c)
		}
		fmt.Fprintln(bw)
	}
	for p := 0; p < g.NumFacilities(); p++ {
		f := g.Facility(FacilityID(p))
		fmt.Fprintf(bw, "facility %d %g\n", f.Edge, f.T)
	}
	return bw.Flush()
}

// ReadText parses the text interchange format into a Graph.
func ReadText(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var b *Builder
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "mcn":
			if b != nil {
				return nil, fmt.Errorf("graph: line %d: duplicate header", line)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("graph: line %d: header wants 'mcn <d> <directed|undirected>'", line)
			}
			d, err := strconv.Atoi(fields[1])
			if err != nil || d < 1 {
				return nil, fmt.Errorf("graph: line %d: bad d %q", line, fields[1])
			}
			var directed bool
			switch fields[2] {
			case "directed":
				directed = true
			case "undirected":
			default:
				return nil, fmt.Errorf("graph: line %d: want directed|undirected, got %q", line, fields[2])
			}
			b = NewBuilder(d, directed)
		case "node":
			if b == nil {
				return nil, fmt.Errorf("graph: line %d: node before header", line)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("graph: line %d: node wants 2 coordinates", line)
			}
			x, err1 := strconv.ParseFloat(fields[1], 64)
			y, err2 := strconv.ParseFloat(fields[2], 64)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("graph: line %d: bad node coordinates", line)
			}
			b.AddNode(x, y)
		case "edge":
			if b == nil {
				return nil, fmt.Errorf("graph: line %d: edge before header", line)
			}
			if len(fields) != 3+b.d {
				return nil, fmt.Errorf("graph: line %d: edge wants 'edge u v' plus %d costs", line, b.d)
			}
			u, err1 := strconv.ParseUint(fields[1], 10, 32)
			v, err2 := strconv.ParseUint(fields[2], 10, 32)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("graph: line %d: bad edge endpoints", line)
			}
			w := make(vec.Costs, b.d)
			for i := range w {
				c, err := strconv.ParseFloat(fields[3+i], 64)
				if err != nil {
					return nil, fmt.Errorf("graph: line %d: bad cost %q", line, fields[3+i])
				}
				w[i] = c
			}
			b.AddEdge(NodeID(u), NodeID(v), w)
		case "facility":
			if b == nil {
				return nil, fmt.Errorf("graph: line %d: facility before header", line)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("graph: line %d: facility wants 'facility <edge> <t>'", line)
			}
			e, err1 := strconv.ParseUint(fields[1], 10, 32)
			t, err2 := strconv.ParseFloat(fields[2], 64)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("graph: line %d: bad facility record", line)
			}
			b.AddFacility(EdgeID(e), t)
		default:
			return nil, fmt.Errorf("graph: line %d: unknown record %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if b == nil {
		return nil, fmt.Errorf("graph: missing 'mcn' header")
	}
	return b.Build()
}
