package graph

import (
	"fmt"
	"sort"

	"mcn/internal/vec"
)

// Builder incrementally assembles a Graph. The zero value is not usable;
// create builders with NewBuilder.
type Builder struct {
	d        int
	directed bool
	nodes    []Node
	edges    []Edge
	facs     []Facility
	err      error
}

// NewBuilder returns a builder for a network with d cost types. If directed
// is true, each added edge is traversable from U to V only; otherwise both
// directions share the same cost vector (paper Sec. III).
func NewBuilder(d int, directed bool) *Builder {
	if d < 1 {
		panic(fmt.Sprintf("graph: number of cost types must be positive, got %d", d))
	}
	return &Builder{d: d, directed: directed}
}

// AddNode appends a node and returns its identifier.
func (b *Builder) AddNode(x, y float64) NodeID {
	b.nodes = append(b.nodes, Node{X: x, Y: y})
	return NodeID(len(b.nodes) - 1)
}

// AddNodes appends n nodes at the origin and returns the first new id.
// Useful for purely topological networks with no meaningful coordinates.
func (b *Builder) AddNodes(n int) NodeID {
	first := NodeID(len(b.nodes))
	b.nodes = append(b.nodes, make([]Node, n)...)
	return first
}

// AddEdge appends an edge between u and v with the given cost vector and
// returns its identifier. Errors (bad endpoints, wrong dimensionality,
// negative costs) are deferred to Build.
func (b *Builder) AddEdge(u, v NodeID, w vec.Costs) EdgeID {
	id := EdgeID(len(b.edges))
	b.edges = append(b.edges, Edge{U: u, V: v, W: w.Clone()})
	if b.err == nil {
		if int(u) >= len(b.nodes) || int(v) >= len(b.nodes) {
			b.err = fmt.Errorf("edge %d: endpoint out of range (%d, %d)", id, u, v)
		} else if u == v {
			b.err = fmt.Errorf("edge %d: self-loop at node %d", id, u)
		} else if len(w) != b.d {
			b.err = fmt.Errorf("edge %d: %d costs, want %d", id, len(w), b.d)
		} else if !w.Complete() {
			b.err = fmt.Errorf("edge %d: unknown cost components", id)
		} else if verr := w.Validate(); verr != nil {
			b.err = fmt.Errorf("edge %d: %v", id, verr)
		}
	}
	return id
}

// AddFacility places a facility on edge e at fraction t from the edge's U
// end-node and returns its identifier.
func (b *Builder) AddFacility(e EdgeID, t float64) FacilityID {
	id := FacilityID(len(b.facs))
	b.facs = append(b.facs, Facility{Edge: e, T: t})
	if b.err == nil {
		if int(e) >= len(b.edges) {
			b.err = fmt.Errorf("facility %d: edge %d out of range", id, e)
		} else if t < 0 || t > 1 {
			b.err = fmt.Errorf("facility %d: fraction %g outside [0,1]", id, t)
		}
	}
	return id
}

// Build finalises the graph: adjacency lists are materialised and per-edge
// facility lists are sorted by position. It returns the first accumulated
// construction error, if any.
func (b *Builder) Build() (*Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	g := &Graph{
		d:        b.d,
		directed: b.directed,
		nodes:    b.nodes,
		edges:    b.edges,
		facs:     b.facs,
	}
	g.arcs = make([][]Arc, len(g.nodes))
	deg := make([]int, len(g.nodes))
	for _, e := range g.edges {
		deg[e.U]++
		if !b.directed {
			deg[e.V]++
		}
	}
	for v := range g.arcs {
		if deg[v] > 0 {
			g.arcs[v] = make([]Arc, 0, deg[v])
		}
	}
	for i, e := range g.edges {
		id := EdgeID(i)
		g.arcs[e.U] = append(g.arcs[e.U], Arc{Neighbor: e.V, Edge: id, Forward: true})
		if !b.directed {
			g.arcs[e.V] = append(g.arcs[e.V], Arc{Neighbor: e.U, Edge: id, Forward: false})
		}
	}
	g.edgeFacs = make([][]FacilityID, len(g.edges))
	for i, f := range g.facs {
		g.edgeFacs[f.Edge] = append(g.edgeFacs[f.Edge], FacilityID(i))
	}
	for e := range g.edgeFacs {
		facs := g.edgeFacs[e]
		sort.Slice(facs, func(i, j int) bool {
			fi, fj := g.facs[facs[i]], g.facs[facs[j]]
			if fi.T != fj.T {
				return fi.T < fj.T
			}
			return facs[i] < facs[j]
		})
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// MustBuild is Build that panics on error, for tests and examples.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}
