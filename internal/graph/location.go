package graph

import "fmt"

// Location is a query position on the network: a point on edge Edge at
// fraction T from the edge's U end-node. The paper's query location q "must
// fall on the MCN" (Sec. III); positions at T=0 or T=1 coincide with the
// edge's end-nodes.
type Location struct {
	Edge EdgeID
	T    float64
}

// LocationAt returns a validated location on edge e at fraction t.
func LocationAt(g *Graph, e EdgeID, t float64) (Location, error) {
	if int(e) >= g.NumEdges() {
		return Location{}, fmt.Errorf("graph: location edge %d out of range (%d edges)", e, g.NumEdges())
	}
	if t < 0 || t > 1 {
		return Location{}, fmt.Errorf("graph: location fraction %g outside [0,1]", t)
	}
	return Location{Edge: e, T: t}, nil
}

// LocationAtNode returns a location coinciding with node v, using any edge
// incident to v. It fails for isolated nodes, which cannot host a query
// (nothing is reachable from them anyway).
func LocationAtNode(g *Graph, v NodeID) (Location, error) {
	if int(v) >= g.NumNodes() {
		return Location{}, fmt.Errorf("graph: node %d out of range (%d nodes)", v, g.NumNodes())
	}
	arcs := g.Arcs(v)
	if len(arcs) > 0 {
		a := arcs[0]
		if a.Forward {
			return Location{Edge: a.Edge, T: 0}, nil
		}
		return Location{Edge: a.Edge, T: 1}, nil
	}
	// Directed graphs: v may only have incoming edges; scan for one.
	for e := 0; e < g.NumEdges(); e++ {
		edge := g.Edge(EdgeID(e))
		if edge.U == v {
			return Location{Edge: EdgeID(e), T: 0}, nil
		}
		if edge.V == v {
			return Location{Edge: EdgeID(e), T: 1}, nil
		}
	}
	return Location{}, fmt.Errorf("graph: node %d is isolated; cannot place a query there", v)
}

// FacilityLocation returns the location of facility p.
func FacilityLocation(g *Graph, p FacilityID) Location {
	f := g.Facility(p)
	return Location{Edge: f.Edge, T: f.T}
}

// Validate checks the location against g.
func (l Location) Validate(g *Graph) error {
	_, err := LocationAt(g, l.Edge, l.T)
	return err
}
