// Package graph defines the multi-cost network (MCN) model of the paper:
// a road network whose edges carry a vector of d non-negative costs, with
// facilities (points of interest) lying on edges. The model supports both
// undirected (paper default) and directed networks, and does not rely on
// node coordinates for any query — coordinates exist only to support
// workload generation and facility placement.
package graph

import (
	"fmt"

	"mcn/internal/vec"
)

// NodeID identifies a network node (road intersection).
type NodeID uint32

// EdgeID identifies a network edge (road segment).
type EdgeID uint32

// FacilityID identifies a facility (point of interest) on the network.
type FacilityID uint32

// NoFacRef marks an adjacency entry whose edge carries no facilities.
const NoFacRef = ^uint64(0)

// Node is a network node. Coordinates are optional metadata used by
// generators; query processing never reads them.
type Node struct {
	X, Y float64
}

// Edge is a road segment between two nodes with one weight per cost type.
// For directed networks the edge is traversable from U to V only.
type Edge struct {
	U, V NodeID
	W    vec.Costs
}

// Facility is a point of interest lying on an edge, at fraction T ∈ [0, 1]
// measured from the edge's U end-node. The partial weight from U to the
// facility is T·w for every cost type, matching the paper's proportional
// split of edge weights.
type Facility struct {
	Edge EdgeID
	T    float64
}

// Arc is one directed adjacency record: from some node to Neighbor via Edge.
// Forward reports whether the arc tail is the edge's canonical U end-node
// (needed to orient facility fractions).
type Arc struct {
	Neighbor NodeID
	Edge     EdgeID
	Forward  bool
}

// AdjEntry is the logical content of one adjacency-list entry as returned by
// a network source (in-memory or disk-resident). It mirrors the paper's
// adjacency-file record: the neighbour, the edge cost vector, and a pointer
// to the facilities on the edge.
type AdjEntry struct {
	Neighbor NodeID
	Edge     EdgeID
	Forward  bool
	W        vec.Costs
	FacRef   uint64 // opaque locator for the edge's facility record; NoFacRef if none
	FacCount int
}

// FacEntry is the logical content of one facility-file entry: a facility and
// its position on the edge (fraction from the edge's U end-node).
type FacEntry struct {
	ID FacilityID
	T  float64
}

// EdgeInfo is the resolved description of one edge as returned by a network
// source, used to initialise expansions at a query location.
type EdgeInfo struct {
	U, V     NodeID
	W        vec.Costs
	FacRef   uint64
	FacCount int
}

// Graph is an immutable multi-cost network. Construct one with a Builder.
type Graph struct {
	d        int
	directed bool
	nodes    []Node
	edges    []Edge
	arcs     [][]Arc
	facs     []Facility
	edgeFacs [][]FacilityID // per edge, sorted by T
}

// D returns the number of cost types.
func (g *Graph) D() int { return g.d }

// Directed reports whether edges are one-way.
func (g *Graph) Directed() bool { return g.directed }

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return len(g.edges) }

// NumFacilities returns the facility count.
func (g *Graph) NumFacilities() int { return len(g.facs) }

// Node returns the node record for v.
func (g *Graph) Node(v NodeID) Node { return g.nodes[v] }

// Edge returns the edge record for e.
func (g *Graph) Edge(e EdgeID) Edge { return g.edges[e] }

// Facility returns the facility record for p.
func (g *Graph) Facility(p FacilityID) Facility { return g.facs[p] }

// Arcs returns the outgoing arcs of v. The returned slice is owned by the
// graph and must not be modified.
func (g *Graph) Arcs(v NodeID) []Arc { return g.arcs[v] }

// EdgeFacilities returns the facilities on edge e sorted by their fraction T.
// The returned slice is owned by the graph and must not be modified.
func (g *Graph) EdgeFacilities(e EdgeID) []FacilityID { return g.edgeFacs[e] }

// Degree returns the out-degree of v.
func (g *Graph) Degree(v NodeID) int { return len(g.arcs[v]) }

// PartialFrom returns the facility fraction measured from the tail of an arc:
// T itself when the arc is forward (tail is the edge's U), 1-T otherwise.
func PartialFrom(forward bool, t float64) float64 {
	if forward {
		return t
	}
	return 1 - t
}

// Validate checks structural invariants: endpoint and edge references in
// range, non-negative complete cost vectors of uniform dimensionality, and
// facility fractions within [0, 1]. Builders validate on Build; this is
// exposed for graphs arriving from deserialisation.
func (g *Graph) Validate() error {
	n := NodeID(len(g.nodes))
	for i, e := range g.edges {
		if e.U >= n || e.V >= n {
			return fmt.Errorf("edge %d references node out of range (%d, %d; have %d nodes)", i, e.U, e.V, n)
		}
		if len(e.W) != g.d {
			return fmt.Errorf("edge %d has %d costs, want %d", i, len(e.W), g.d)
		}
		if !e.W.Complete() {
			return fmt.Errorf("edge %d has unknown cost components", i)
		}
		if err := e.W.Validate(); err != nil {
			return fmt.Errorf("edge %d: %w", i, err)
		}
	}
	for i, f := range g.facs {
		if int(f.Edge) >= len(g.edges) {
			return fmt.Errorf("facility %d references edge %d out of range", i, f.Edge)
		}
		if f.T < 0 || f.T > 1 {
			return fmt.Errorf("facility %d has fraction %g outside [0,1]", i, f.T)
		}
	}
	return nil
}
