package timedep

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"mcn/internal/core"
	"mcn/internal/expand"
	"mcn/internal/gen"
	"mcn/internal/graph"
	"mcn/internal/testnet"
	"mcn/internal/vec"
)

var ctx = context.Background()

// rushHourNet builds a fork: q at node 0, facility A via a highway whose
// driving time triples during [8, 10), facility B via a steady side road.
//
//	0 --hw (2,1)--> 1(A)        0 --side (5,0)--> 2(B)
func rushHourNet(t *testing.T) (*Network, graph.Location, graph.FacilityID, graph.FacilityID) {
	t.Helper()
	b := graph.NewBuilder(2, false)
	b.AddNodes(3)
	hw := b.AddEdge(0, 1, vec.Of(2, 1))
	side := b.AddEdge(0, 2, vec.Of(5, 0))
	fa := b.AddFacility(hw, 1.0)
	fb := b.AddFacility(side, 1.0)
	g := b.MustBuild()
	n := New(g)
	if err := n.SetProfile(hw, Profile{
		Times: []float64{8, 10},
		Mult:  []vec.Costs{vec.Of(3, 1), vec.Of(1, 1)},
	}); err != nil {
		t.Fatal(err)
	}
	loc, err := graph.LocationAtNode(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	return n, loc, fa, fb
}

func TestProfileAt(t *testing.T) {
	p := Profile{Times: []float64{8, 10}, Mult: []vec.Costs{vec.Of(3), vec.Of(1)}}
	if got := p.At(7.9); got != nil {
		t.Errorf("At(7.9) = %v, want base", got)
	}
	if got := p.At(8); !got.Equal(vec.Of(3)) {
		t.Errorf("At(8) = %v, want (3)", got)
	}
	if got := p.At(9.99); !got.Equal(vec.Of(3)) {
		t.Errorf("At(9.99) = %v", got)
	}
	if got := p.At(10); !got.Equal(vec.Of(1)) {
		t.Errorf("At(10) = %v", got)
	}
	if got := p.At(1e9); !got.Equal(vec.Of(1)) {
		t.Errorf("At(inf) = %v", got)
	}
}

func TestProfileValidate(t *testing.T) {
	d := 2
	ok := Profile{Times: []float64{1, 2}, Mult: []vec.Costs{vec.Of(1, 1), vec.Of(2, 2)}}
	if err := ok.Validate(d); err != nil {
		t.Errorf("valid profile rejected: %v", err)
	}
	bad := []Profile{
		{Times: []float64{1}, Mult: nil},
		{},
		{Times: []float64{2, 1}, Mult: []vec.Costs{vec.Of(1, 1), vec.Of(1, 1)}},
		{Times: []float64{1}, Mult: []vec.Costs{vec.Of(1)}},
		{Times: []float64{1}, Mult: []vec.Costs{vec.Of(0, 1)}},
		{Times: []float64{1}, Mult: []vec.Costs{vec.Of(-1, 1)}},
		// Non-finite breakpoints would corrupt the overlay's sorted time axis.
		{Times: []float64{math.NaN()}, Mult: []vec.Costs{vec.Of(1, 1)}},
		{Times: []float64{1, math.NaN()}, Mult: []vec.Costs{vec.Of(1, 1), vec.Of(2, 2)}},
		{Times: []float64{math.Inf(1)}, Mult: []vec.Costs{vec.Of(1, 1)}},
	}
	for i, p := range bad {
		if err := p.Validate(d); err == nil {
			t.Errorf("bad profile %d accepted", i)
		}
	}
}

func TestSetProfileErrors(t *testing.T) {
	n, _, _, _ := rushHourNet(t)
	if err := n.SetProfile(99, Profile{Times: []float64{1}, Mult: []vec.Costs{vec.Of(1, 1)}}); err == nil {
		t.Error("out-of-range edge accepted")
	}
}

func TestSnapshotAndCostAt(t *testing.T) {
	n, _, _, _ := rushHourNet(t)
	for _, tc := range []struct {
		t    float64
		want vec.Costs
	}{
		{0, vec.Of(2, 1)},
		{8, vec.Of(6, 1)},
		{9.5, vec.Of(6, 1)},
		{10, vec.Of(2, 1)},
	} {
		w, err := n.CostAt(0, tc.t)
		if err != nil {
			t.Fatal(err)
		}
		if !w.Equal(tc.want) {
			t.Errorf("CostAt(hw, %g) = %v, want %v", tc.t, w, tc.want)
		}
		snap, err := n.Snapshot(tc.t)
		if err != nil {
			t.Fatal(err)
		}
		if !snap.Edge(0).W.Equal(tc.want) {
			t.Errorf("Snapshot(%g) edge 0 = %v, want %v", tc.t, snap.Edge(0).W, tc.want)
		}
		// The un-profiled edge must be untouched.
		if !snap.Edge(1).W.Equal(vec.Of(5, 0)) {
			t.Errorf("Snapshot(%g) edge 1 = %v", tc.t, snap.Edge(1).W)
		}
	}
}

func TestSkylineOverPeriodRushHour(t *testing.T) {
	n, loc, fa, fb := rushHourNet(t)
	// Off-peak: A=(2,1), B=(5,0) → both skyline. Rush hour: A=(6,1),
	// B=(5,0) → B dominates A? B=(5,0) vs A=(6,1): 5<6, 0<1 → yes, B alone.
	intervals, err := n.SkylineOverPeriod(ctx, loc, 0, 24, core.Options{Engine: core.CEA})
	if err != nil {
		t.Fatal(err)
	}
	if len(intervals) != 3 {
		t.Fatalf("got %d intervals, want 3: %+v", len(intervals), intervals)
	}
	checkInterval := func(i int, from, to float64, want []graph.FacilityID) {
		t.Helper()
		iv := intervals[i]
		if iv.From != from || iv.To != to {
			t.Errorf("interval %d = [%g, %g), want [%g, %g)", i, iv.From, iv.To, from, to)
		}
		got := iv.Result.IDs()
		sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
		if !reflect.DeepEqual(got, want) {
			t.Errorf("interval %d skyline = %v, want %v", i, got, want)
		}
	}
	checkInterval(0, 0, 8, []graph.FacilityID{fa, fb})
	checkInterval(1, 8, 10, []graph.FacilityID{fb})
	checkInterval(2, 10, 24, []graph.FacilityID{fa, fb})
}

func TestTopKOverPeriodRushHour(t *testing.T) {
	n, loc, fa, fb := rushHourNet(t)
	agg := vec.NewWeighted(1, 0.5) // time-heavy
	intervals, err := n.TopKOverPeriod(ctx, loc, agg, 1, 0, 24, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Off-peak top-1: A scores 2.5, B scores 5 → A. Rush: A 6.5, B 5 → B.
	if len(intervals) != 3 {
		t.Fatalf("got %d intervals, want 3", len(intervals))
	}
	if got := intervals[0].Result.Facilities[0].ID; got != fa {
		t.Errorf("off-peak top-1 = %d, want %d", got, fa)
	}
	if got := intervals[1].Result.Facilities[0].ID; got != fb {
		t.Errorf("rush-hour top-1 = %d, want %d", got, fb)
	}
	if got := intervals[2].Result.Facilities[0].ID; got != fa {
		t.Errorf("evening top-1 = %d, want %d", got, fa)
	}
}

func TestOverPeriodMergesStaticNetwork(t *testing.T) {
	// No profiles: the whole period collapses to one interval equal to the
	// static query.
	topo := gen.Grid(8, 8, 0.1, rand.New(rand.NewSource(1)))
	costs := gen.AssignCosts(topo, 2, gen.AntiCorrelated, rand.New(rand.NewSource(2)))
	pls := gen.UniformFacilities(topo, 20, rand.New(rand.NewSource(3)))
	g, err := gen.Assemble(topo, costs, pls, false)
	if err != nil {
		t.Fatal(err)
	}
	n := New(g)
	loc := graph.Location{Edge: 0, T: 0.5}
	intervals, err := n.SkylineOverPeriod(ctx, loc, 0, 100, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(intervals) != 1 || intervals[0].From != 0 || intervals[0].To != 100 {
		t.Fatalf("static network should give one interval, got %+v", intervals)
	}
	static, err := core.Skyline(expand.NewMemorySource(g), loc, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sameIDs(intervals[0].Result, static) {
		t.Error("period result differs from static query")
	}
}

// Property: at random instants, the snapshot query must equal the interval
// that covers the instant.
func TestOverPeriodMatchesSnapshots(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 15; trial++ {
		topo := gen.RandomConnected(6+rng.Intn(20), rng.Intn(10), rng)
		costs := gen.AssignCosts(topo, 2, gen.Independent, rng)
		pls := gen.UniformFacilities(topo, 1+rng.Intn(10), rng)
		g, err := gen.Assemble(topo, costs, pls, false)
		if err != nil {
			t.Fatal(err)
		}
		n := New(g)
		// Random profiles on a few edges.
		for i := 0; i < 1+rng.Intn(4); i++ {
			e := graph.EdgeID(rng.Intn(g.NumEdges()))
			t1 := rng.Float64() * 50
			t2 := t1 + 1 + rng.Float64()*20
			err := n.SetProfile(e, Profile{
				Times: []float64{t1, t2},
				Mult: []vec.Costs{
					vec.Of(0.5+rng.Float64()*3, 0.5+rng.Float64()*3),
					vec.Of(1, 1),
				},
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		loc := graph.Location{Edge: graph.EdgeID(rng.Intn(g.NumEdges())), T: rng.Float64()}
		intervals, err := n.SkylineOverPeriod(ctx, loc, 0, 100, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Intervals must tile [0, 100).
		if intervals[0].From != 0 || intervals[len(intervals)-1].To != 100 {
			t.Fatalf("trial %d: bad tiling %+v", trial, intervals)
		}
		for i := 1; i < len(intervals); i++ {
			if intervals[i].From != intervals[i-1].To {
				t.Fatalf("trial %d: gap between intervals %d and %d", trial, i-1, i)
			}
		}
		for probe := 0; probe < 10; probe++ {
			at := rng.Float64() * 100
			var covering *IntervalResult
			for i := range intervals {
				if at >= intervals[i].From && at < intervals[i].To {
					covering = &intervals[i]
					break
				}
			}
			if covering == nil {
				t.Fatalf("trial %d: instant %g not covered", trial, at)
			}
			snap, err := n.Snapshot(at)
			if err != nil {
				t.Fatal(err)
			}
			want := testnet.Skyline(snap, loc)
			got := covering.Result.IDs()
			sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
			if len(want) == 0 && len(got) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d t=%g: period skyline %v, snapshot oracle %v", trial, at, got, want)
			}
		}
	}
}

func TestOverPeriodErrors(t *testing.T) {
	n, loc, _, _ := rushHourNet(t)
	if _, err := n.SkylineOverPeriod(ctx, loc, 5, 5, core.Options{}); err == nil {
		t.Error("empty period accepted")
	}
	if _, err := n.SkylineOverPeriod(ctx, graph.Location{Edge: 99}, 0, 1, core.Options{}); err == nil {
		t.Error("invalid location accepted")
	}
	if _, err := n.CostAt(99, 0); err == nil {
		t.Error("CostAt out-of-range edge accepted")
	}
}

func TestBreakpoints(t *testing.T) {
	n, _, _, _ := rushHourNet(t)
	got := n.Breakpoints(0, 24)
	want := []float64{0, 8, 10}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Breakpoints = %v, want %v", got, want)
	}
	// Window excluding the profile: only the period start.
	got = n.Breakpoints(11, 24)
	if !reflect.DeepEqual(got, []float64{11}) {
		t.Errorf("Breakpoints(11,24) = %v", got)
	}
	// Breakpoint exactly at from must not duplicate.
	got = n.Breakpoints(8, 24)
	if !reflect.DeepEqual(got, []float64{8, 10}) {
		t.Errorf("Breakpoints(8,24) = %v", got)
	}
	if math.IsNaN(got[0]) {
		t.Error("unexpected NaN")
	}
}
