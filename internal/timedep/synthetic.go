package timedep

import (
	"fmt"
	"math/rand"

	"mcn/internal/graph"
	"mcn/internal/vec"
)

// AttachSyntheticProfiles attaches deterministic rush-hour-style profiles to
// count distinct edges of n, for benchmarks and multi-node equivalence tests
// that need a non-trivial time axis without hand-authoring profiles. Each
// chosen edge gets four breakpoints (morning ramp-up, midday relief,
// evening ramp-up, night relief, jittered per edge so the elementary
// interval structure is not degenerate) with per-cost multipliers in
// [0.5, 3]. The schedule is a pure function of seed: the same (graph, count,
// seed) always produces the same profiles, so two replicas calling this see
// identical time-dependent networks.
func AttachSyntheticProfiles(n *Network, count int, seed int64) error {
	edges := n.base.NumEdges()
	if edges == 0 {
		return fmt.Errorf("timedep: cannot attach profiles to a network with no edges")
	}
	if count > edges {
		count = edges
	}
	d := n.base.D()
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[graph.EdgeID]bool, count)
	for len(seen) < count {
		e := graph.EdgeID(rng.Intn(edges))
		if seen[e] {
			continue
		}
		seen[e] = true
		times := []float64{
			6 + rng.Float64(),  // morning rush begins
			9 + rng.Float64(),  // relief
			16 + rng.Float64(), // evening rush begins
			19 + rng.Float64(), // night
		}
		mult := make([]vec.Costs, len(times))
		for i := range mult {
			m := make(vec.Costs, d)
			for j := range m {
				m[j] = 0.5 + 2.5*rng.Float64()
			}
			mult[i] = m
		}
		if err := n.SetProfile(e, Profile{Times: times, Mult: mult}); err != nil {
			return err
		}
	}
	return nil
}
