package timedep

import (
	"fmt"
	"math/rand"
	"testing"

	"mcn/internal/core"
	"mcn/internal/expand"
	"mcn/internal/gen"
	"mcn/internal/graph"
	"mcn/internal/vec"
)

// The time-dependent equivalence suite, mirroring internal/flat's: for
// seeded random networks with small integer costs and integer profile
// multipliers — so exact cost ties survive scaling — every query family
// must return byte-identical results over the compiled overlay as over the
// reference Snapshot + MemorySource path, at random instants, exactly on
// interval boundaries, and over whole periods.

func sameFacilities(t *testing.T, label string, got, want []core.Facility) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d facilities, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID {
			t.Fatalf("%s: result %d id %d, want %d", label, i, got[i].ID, want[i].ID)
		}
		if !got[i].Costs.Equal(want[i].Costs) {
			t.Fatalf("%s: result %d (facility %d) costs %v, want %v",
				label, i, got[i].ID, got[i].Costs, want[i].Costs)
		}
		if got[i].Score != want[i].Score {
			t.Fatalf("%s: result %d (facility %d) score %g, want %g",
				label, i, got[i].ID, got[i].Score, want[i].Score)
		}
	}
}

func sameResult(t *testing.T, label string, got, want *core.Result) {
	t.Helper()
	sameFacilities(t, label, got.Facilities, want.Facilities)
	if got.Stats.Pops != want.Stats.Pops {
		t.Errorf("%s: %d pops, want %d", label, got.Stats.Pops, want.Stats.Pops)
	}
	if got.Stats.NodeExpansions != want.Stats.NodeExpansions {
		t.Errorf("%s: %d node expansions, want %d", label, got.Stats.NodeExpansions, want.Stats.NodeExpansions)
	}
}

// randomProfiled builds a random integer-cost network with random integer
// profiles on a few edges and returns it with its query locations.
func randomProfiled(t *testing.T, directed bool, seed int64) (*Network, []graph.Location) {
	t.Helper()
	inst, err := gen.MakeInstance(gen.InstanceConfig{
		Nodes:        200,
		Facilities:   40,
		Clusters:     3,
		D:            3,
		Queries:      3,
		Directed:     directed,
		Seed:         seed,
		IntegerCosts: 3, // [1,3] integer costs: exact ties everywhere
	})
	if err != nil {
		t.Fatal(err)
	}
	n := New(inst.Graph)
	rng := rand.New(rand.NewSource(seed * 31))
	for i := 0; i < 4; i++ {
		e := graph.EdgeID(rng.Intn(inst.Graph.NumEdges()))
		nb := 1 + rng.Intn(3)
		times := make([]float64, 0, nb)
		at := rng.Float64() * 30
		for len(times) < nb {
			times = append(times, at)
			at += 1 + rng.Float64()*25
		}
		mult := make([]vec.Costs, nb)
		for j := range mult {
			m := make(vec.Costs, inst.Graph.D())
			for c := range m {
				m[c] = float64(1 + rng.Intn(3)) // integer multipliers keep ties
			}
			mult[j] = m
		}
		if err := n.SetProfile(e, Profile{Times: times, Mult: mult}); err != nil {
			t.Fatal(err)
		}
	}
	return n, inst.Queries
}

// probeInstants covers the time axis: before the first breakpoint, exactly
// on every breakpoint, and random interior instants.
func probeInstants(n *Network, rng *rand.Rand) []float64 {
	out := []float64{-5}
	breaks := n.Breakpoints(0, 100)
	out = append(out, breaks...)
	for i := 0; i < 5; i++ {
		out = append(out, rng.Float64()*110)
	}
	return out
}

func TestOverlayEquivalenceInstant(t *testing.T) {
	for _, directed := range []bool{false, true} {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("directed=%v/seed=%d", directed, seed), func(t *testing.T) {
				n, locs := randomProfiled(t, directed, seed)
				g := n.Base()
				rng := rand.New(rand.NewSource(seed * 7))
				agg := vec.NewWeighted(1, 0.5, 0.25)
				// Caller-owned scratch variant, sized like the pool's.
				sc := expand.NewScratch(g.NumNodes(), g.NumEdges(), g.NumFacilities())
				prunedNodes := 0

				for _, at := range probeInstants(n, rng) {
					snap, err := n.Snapshot(at)
					if err != nil {
						t.Fatal(err)
					}
					ref := expand.NewMemorySource(snap)
					for qi, loc := range locs {
						// Budget wide enough to catch a handful of facilities,
						// derived from the reference path only.
						budget := make(vec.Costs, g.D())
						probe, err := core.Nearest(ref, loc, 0, 6, core.Options{})
						if err != nil {
							t.Fatal(err)
						}
						radius := 1.0
						if k := len(probe.Facilities); k > 0 {
							radius = probe.Facilities[k-1].Score * 1.5
						}
						for i := range budget {
							budget[i] = radius
						}

						type query struct {
							name    string
							ref     func(core.Options) (*core.Result, error)
							overlay func(core.Options) (*core.Result, error)
						}
						queries := []query{
							{"skyline",
								func(o core.Options) (*core.Result, error) { return core.Skyline(ref, loc, o) },
								func(o core.Options) (*core.Result, error) { return n.SkylineAt(ctx, loc, at, o) }},
							{"topk",
								func(o core.Options) (*core.Result, error) { return core.TopK(ref, loc, agg, 4, o) },
								func(o core.Options) (*core.Result, error) { return n.TopKAt(ctx, loc, agg, 4, at, o) }},
							{"nearest",
								func(o core.Options) (*core.Result, error) { return core.Nearest(ref, loc, qi%g.D(), 5, o) },
								func(o core.Options) (*core.Result, error) { return n.NearestAt(ctx, loc, qi%g.D(), 5, at, o) }},
							{"within",
								func(o core.Options) (*core.Result, error) { return core.Within(ref, loc, budget, o) },
								func(o core.Options) (*core.Result, error) { return n.WithinAt(ctx, loc, budget, at, o) }},
						}
						for _, q := range queries {
							want, err := q.ref(core.Options{Engine: core.LSA})
							if err != nil {
								t.Fatalf("t=%g q%d %s reference: %v", at, qi, q.name, err)
							}
							// Full-stats comparisons against the snapshot
							// reference run with NoPrune: the reference path
							// has no pruning index, and pruning legitimately
							// shrinks the work counters.
							for _, eng := range []core.Engine{core.LSA, core.CEA} {
								got, err := q.overlay(core.Options{Engine: eng, NoPrune: true})
								if err != nil {
									t.Fatalf("t=%g q%d %s overlay/%v: %v", at, qi, q.name, eng, err)
								}
								sameResult(t, fmt.Sprintf("t=%g q%d %s overlay/%v", at, qi, q.name, eng), got, want)
							}
							sc.Reset()
							got, err := q.overlay(core.Options{Scratch: sc, NoPrune: true})
							if err != nil {
								t.Fatalf("t=%g q%d %s overlay/caller-scratch: %v", at, qi, q.name, err)
							}
							sameResult(t, fmt.Sprintf("t=%g q%d %s overlay/caller-scratch", at, qi, q.name), got, want)
							// Pruned run (the *At default): facilities must
							// stay byte-identical; only the work may shrink.
							pruned, err := q.overlay(core.Options{})
							if err != nil {
								t.Fatalf("t=%g q%d %s overlay/pruned: %v", at, qi, q.name, err)
							}
							label := fmt.Sprintf("t=%g q%d %s overlay/pruned", at, qi, q.name)
							sameFacilities(t, label, pruned.Facilities, want.Facilities)
							if pruned.Stats.NodeExpansions > want.Stats.NodeExpansions {
								t.Errorf("%s: %d node expansions > unpruned %d",
									label, pruned.Stats.NodeExpansions, want.Stats.NodeExpansions)
							}
							prunedNodes += pruned.Stats.PrunedNodes
						}
					}
				}
				if prunedNodes == 0 {
					t.Error("pruning never fired across any instant query; the per-interval bounds are not being attached")
				}
			})
		}
	}
}

// refOverPeriod is the pre-overlay implementation, kept as the oracle: one
// Snapshot + MemorySource query per elementary interval, merging adjacent
// intervals with identical facility sets.
func refOverPeriod(t *testing.T, n *Network, from, to float64, query func(expand.Source) (*core.Result, error)) []IntervalResult {
	t.Helper()
	breaks := n.Breakpoints(from, to)
	var out []IntervalResult
	for i, start := range breaks {
		end := to
		if i+1 < len(breaks) {
			end = breaks[i+1]
		}
		snap, err := n.Snapshot(start)
		if err != nil {
			t.Fatal(err)
		}
		res, err := query(expand.NewMemorySource(snap))
		if err != nil {
			t.Fatal(err)
		}
		if len(out) > 0 && sameIDs(out[len(out)-1].Result, res) {
			out[len(out)-1].To = end
			continue
		}
		out = append(out, IntervalResult{From: start, To: end, Result: res})
	}
	return out
}

func TestOverlayEquivalenceOverPeriod(t *testing.T) {
	for _, directed := range []bool{false, true} {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("directed=%v/seed=%d", directed, seed), func(t *testing.T) {
				n, locs := randomProfiled(t, directed, seed)
				agg := vec.NewWeighted(1, 1, 1)
				for _, loc := range locs {
					gotSky, err := n.SkylineOverPeriod(ctx, loc, 0, 100, core.Options{Engine: core.CEA})
					if err != nil {
						t.Fatal(err)
					}
					wantSky := refOverPeriod(t, n, 0, 100, func(s expand.Source) (*core.Result, error) {
						return core.Skyline(s, loc, core.Options{})
					})
					compareIntervals(t, "skyline", gotSky, wantSky)

					gotTop, err := n.TopKOverPeriod(ctx, loc, agg, 3, 0, 100, core.Options{})
					if err != nil {
						t.Fatal(err)
					}
					wantTop := refOverPeriod(t, n, 0, 100, func(s expand.Source) (*core.Result, error) {
						return core.TopK(s, loc, agg, 3, core.Options{})
					})
					compareIntervals(t, "topk", gotTop, wantTop)
				}
			})
		}
	}
}

func compareIntervals(t *testing.T, label string, got, want []IntervalResult) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d intervals, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].From != want[i].From || got[i].To != want[i].To {
			t.Fatalf("%s interval %d: [%g, %g), want [%g, %g)",
				label, i, got[i].From, got[i].To, want[i].From, want[i].To)
		}
		sameFacilities(t, fmt.Sprintf("%s interval %d", label, i),
			got[i].Result.Facilities, want[i].Result.Facilities)
	}
}
