package timedep

import (
	"reflect"
	"testing"

	"mcn/internal/gen"
	"mcn/internal/graph"
	"mcn/internal/vec"
)

// AttachSyntheticProfiles must be a pure function of (graph, count, seed) —
// two replicas calling it see identical time-dependent networks — and must
// produce a non-degenerate interval structure.
func TestAttachSyntheticProfiles(t *testing.T) {
	inst, err := gen.MakeInstance(gen.InstanceConfig{
		Nodes: 300, Facilities: 40, Clusters: 2, D: 3, Seed: 3, Queries: 1,
	})
	if err != nil {
		t.Fatal(err)
	}

	build := func() *Network {
		n := New(inst.Graph)
		if err := AttachSyntheticProfiles(n, 20, 11); err != nil {
			t.Fatal(err)
		}
		return n
	}
	a, b := build(), build()

	bpA := a.Breakpoints(0, 24)
	bpB := b.Breakpoints(0, 24)
	if !reflect.DeepEqual(bpA, bpB) {
		t.Fatal("same (graph, count, seed) produced different breakpoints")
	}
	// 20 profiled edges x 4 jittered breakpoints each: the elementary
	// interval structure must be non-degenerate.
	if len(bpA) < 10 {
		t.Fatalf("only %d breakpoints, want a dense time axis", len(bpA))
	}
	for e := 0; e < inst.Graph.NumEdges(); e++ {
		ca, err := a.CostAt(graph.EdgeID(e), 7.5)
		if err != nil {
			t.Fatal(err)
		}
		cb, err := b.CostAt(graph.EdgeID(e), 7.5)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ca, cb) {
			t.Fatalf("edge %d: costs differ at t=7.5: %v vs %v", e, ca, cb)
		}
	}

	// Asking for more profiles than edges clamps instead of spinning.
	small := graph.NewBuilder(3, false)
	small.AddNodes(2)
	se := small.AddEdge(0, 1, vec.Of(1, 1, 1))
	small.AddFacility(se, 0.5)
	sn := New(small.MustBuild())
	if err := AttachSyntheticProfiles(sn, 99, 1); err != nil {
		t.Fatal(err)
	}

	// A network with no edges cannot carry profiles.
	empty := graph.NewBuilder(3, false)
	empty.AddNodes(1)
	if err := AttachSyntheticProfiles(New(empty.MustBuild()), 1, 1); err == nil {
		t.Error("want error for an edgeless network")
	}
}
