// The absolute allocation bounds below hold for normal builds only: race
// instrumentation adds allocations of its own, and `make cover` runs the
// suite under -race.

//go:build !race

package timedep

import (
	"testing"

	"mcn/internal/core"
	"mcn/internal/gen"
	"mcn/internal/vec"
)

// TestInstantQueryAllocs pins the overlay fast path's allocation behaviour:
// an instant skyline or top-k query on a compiled time-dependent network
// must run at the in-memory flat-path level (the residual allocations are
// the per-facility tracked structs and result building — see
// internal/flat's TestQueryAllocsWithScratch), not at the snapshot path's
// level, which allocates a whole graph per query. Interval resolution,
// scratch pooling and the ctx-first entry points must all stay off the
// allocation profile.
func TestInstantQueryAllocs(t *testing.T) {
	inst, err := gen.MakeInstance(gen.InstanceConfig{
		Nodes: 400, Facilities: 60, Clusters: 3, D: 3, Queries: 1, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	n := New(inst.Graph)
	if err := n.SetProfile(0, Profile{
		Times: []float64{10, 20, 30},
		Mult:  []vec.Costs{vec.Of(2, 1, 1), vec.Of(1, 3, 1), vec.Of(1, 1, 1)},
	}); err != nil {
		t.Fatal(err)
	}
	loc := inst.Queries[0]
	agg := vec.NewWeighted(1, 1, 1)

	for _, tc := range []struct {
		name  string
		limit float64
		run   func(at float64)
	}{
		{"skyline", 25, func(at float64) {
			if _, err := n.SkylineAt(ctx, loc, at, core.Options{}); err != nil {
				t.Fatal(err)
			}
		}},
		{"topk", 70, func(at float64) {
			if _, err := n.TopKAt(ctx, loc, agg, 4, at, core.Options{}); err != nil {
				t.Fatal(err)
			}
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			// Warm the overlay compilation and the scratch pool.
			tc.run(0)
			at := 0.0
			allocs := testing.AllocsPerRun(20, func() {
				tc.run(at)
				at += 7 // rotate across intervals: switching must not allocate
			})
			t.Logf("%s allocs/query: %.0f", tc.name, allocs)
			if allocs > tc.limit {
				t.Errorf("instant %s allocates %.0f/query (> %.0f): the overlay fast path is leaking allocations",
					tc.name, allocs, tc.limit)
			}
		})
	}
}
