// Package timedep implements the paper's second future-work item (Sec.
// VII): preference queries in MCNs whose edge costs are functions of time,
// answering skyline and top-k "for every time instance within a given
// period".
//
// Edge costs follow piecewise-constant profiles (e.g. rush-hour multipliers
// on driving time, off-peak toll discounts). Within one elementary interval
// — between two consecutive breakpoints of any edge profile — every cost in
// the network is constant, so the preferred set is constant too and one
// static MCN query answers the whole interval. A period query therefore
// partitions [from, to) at the profile breakpoints, runs the corresponding
// static query per elementary interval, and merges adjacent intervals with
// identical results.
//
// Costs are frozen at the query instant ("frozen-at-departure"): a route
// evaluated for instant t uses the cost surface at t throughout. This is the
// standard simplification that keeps each instant an ordinary MCN query; the
// FIFO travel-time model of Kanoulas et al. [30] is orthogonal machinery the
// paper treats as related work, not as part of the proposed queries.
//
// Queries run on the flat overlay fast path: the network's topology is
// compiled once into shared CSR arrays (see flat.Overlay) with one dense
// cost vector per elementary interval — the global partition of the time
// axis at every profile breakpoint. Answering a query at instant t then
// costs a binary search over the breakpoints plus a pointer read for the
// interval's view; the per-interval graph.Graph rebuild of the Snapshot
// path (kept as the reference implementation for equivalence tests) never
// runs. Expansion state is drawn from a pooled expand.Scratch sized for the
// shared topology, so instant queries run at the in-memory fast path's
// allocation level.
package timedep

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"

	"mcn/internal/core"
	"mcn/internal/expand"
	"mcn/internal/flat"
	"mcn/internal/graph"
	"mcn/internal/index"
	"mcn/internal/rescache"
	"mcn/internal/vec"
)

// Profile is a piecewise-constant cost modifier for one edge: during
// [Times[i], Times[i+1]) the edge's base cost vector is multiplied
// component-wise by Mult[i] (the last interval extends to +Inf). Before
// Times[0] the base costs apply unchanged.
type Profile struct {
	Times []float64
	Mult  []vec.Costs
}

// Validate checks the profile against a network with d cost types.
func (p Profile) Validate(d int) error {
	if len(p.Times) != len(p.Mult) {
		return fmt.Errorf("timedep: %d breakpoints but %d multipliers", len(p.Times), len(p.Mult))
	}
	if len(p.Times) == 0 {
		return fmt.Errorf("timedep: empty profile")
	}
	// Breakpoints are load-bearing for the overlay's binary-searched time
	// axis: a NaN would slip past the ordering check below and leave the
	// compiled breakpoint array unsorted.
	for i, tv := range p.Times {
		if math.IsNaN(tv) || math.IsInf(tv, 0) {
			return fmt.Errorf("timedep: breakpoint %d is %g; must be finite", i, tv)
		}
	}
	for i := 1; i < len(p.Times); i++ {
		if p.Times[i-1] >= p.Times[i] {
			return fmt.Errorf("timedep: breakpoints not strictly increasing at %d", i)
		}
	}
	for i, m := range p.Mult {
		if len(m) != d {
			return fmt.Errorf("timedep: multiplier %d has %d components, want %d", i, len(m), d)
		}
		for j, v := range m {
			if !(v > 0) {
				return fmt.Errorf("timedep: multiplier %d component %d is %g; must be positive", i, j, v)
			}
		}
	}
	return nil
}

// At returns the multiplier vector in effect at instant t (nil means "base
// costs unchanged").
func (p Profile) At(t float64) vec.Costs {
	// Largest i with Times[i] <= t.
	i := sort.SearchFloat64s(p.Times, t)
	if i < len(p.Times) && p.Times[i] == t {
		return p.Mult[i]
	}
	if i == 0 {
		return nil
	}
	return p.Mult[i-1]
}

// Network is a multi-cost network with time-dependent edge costs. Attach
// profiles with SetProfile, then query; the first query compiles the
// network into a flat overlay (topology once, one cost vector per
// elementary interval), and subsequent queries reuse it. Queries from any
// number of goroutines are safe once profiles stop changing; SetProfile
// must not race in-flight queries.
type Network struct {
	base     *graph.Graph
	profiles map[graph.EdgeID]Profile

	// cache, when non-nil, memoizes instant-query results keyed by
	// elementary interval; see EnableResultCache.
	cache *rescache.Cache

	// mu guards the lazily compiled overlay; SetProfile invalidates it.
	mu       sync.Mutex
	compiled *compiled
	// axis is the global breakpoint union the cache's interval tags are
	// numbered against. It outlives compiled (which SetProfile nils) so
	// consecutive profile edits can keep invalidating precisely; nil means
	// no instant query has run since the numbering last changed, i.e. the
	// cache holds no live entries from this network.
	axis []float64
}

// compiled is the overlay compilation of one profile configuration: the
// ascending global breakpoints, one flat.View per elementary interval
// (views[k] is active on [times[k-1], times[k]), views[0] before times[0]),
// a scratch pool sized for the shared topology, and one pruning index per
// interval (bounds[k] is admissible exactly for interval k's cost surface).
type compiled struct {
	times  []float64
	ov     *flat.Overlay
	pool   *expand.Pool
	bounds []*index.Bounds
}

// intervalAt resolves instant t to its elementary-interval index: a binary
// search over the breakpoints, nothing else.
func (c *compiled) intervalAt(t float64) int {
	return sort.Search(len(c.times), func(i int) bool { return c.times[i] > t })
}

// viewAt resolves instant t to its interval's prebuilt view.
func (c *compiled) viewAt(t float64) *flat.View {
	return c.ov.Interval(c.intervalAt(t))
}

// New wraps a static network; edges without profiles keep their base costs
// at all times.
func New(g *graph.Graph) *Network {
	return &Network{base: g, profiles: make(map[graph.EdgeID]Profile)}
}

// Base returns the underlying static graph.
func (n *Network) Base() *graph.Graph { return n.base }

// EnableResultCache attaches a serving-layer result cache to the network's
// instant queries (*At); period sweeps always execute. Like SetProfile,
// attach it before queries start. Several networks and executors may share
// one cache: time-dependent entries carry interval and class tags that
// static entries never match, so SetProfile invalidation cannot touch them.
func (n *Network) EnableResultCache(c *rescache.Cache) { n.cache = c }

// SetProfile attaches a profile to edge e, replacing any previous one. The
// compiled overlay is invalidated; the next query recompiles.
//
// With a result cache attached, the edit invalidates incrementally: when
// the global breakpoint axis is unchanged (the new profile introduces no
// new instants and retires none), only the elementary intervals where edge
// e's effective cost actually changed are invalidated — cached results for
// untouched intervals stay live across the edit. An edit that changes the
// axis renumbers the intervals, so the whole time-dependent class is
// invalidated (the generation-stamped fallback); static entries in a
// shared cache are never touched either way.
func (n *Network) SetProfile(e graph.EdgeID, p Profile) error {
	if int(e) >= n.base.NumEdges() {
		return fmt.Errorf("timedep: edge %d out of range (%d edges)", e, n.base.NumEdges())
	}
	if err := p.Validate(n.base.D()); err != nil {
		return err
	}
	old, hadOld := n.profiles[e]
	n.profiles[e] = p
	n.mu.Lock()
	n.compiled = nil
	if n.cache == nil || n.axis == nil {
		// No cache, or no instant query ran since the numbering last
		// changed — the cache holds no entries this edit could affect.
		n.mu.Unlock()
		return nil
	}
	axis := n.axis
	if !sameAxis(axis, n.breakpointUnion()) {
		n.axis = nil
		n.mu.Unlock()
		n.cache.Invalidate(rescache.ClassTimeDep)
		return nil
	}
	n.mu.Unlock()

	// Axis unchanged: interval numbering is stable, so diff edge e's
	// effective cost per interval and stamp exactly the changed ones.
	w := n.base.Edge(e).W
	var tags []rescache.Tag
	for k := 0; k <= len(axis); k++ {
		at := math.Inf(-1)
		if k > 0 {
			at = axis[k-1]
		}
		var oldMult, newMult vec.Costs
		if hadOld {
			oldMult = old.At(at)
		}
		newMult = p.At(at)
		if !scaledEqual(w, oldMult, newMult) {
			tags = append(tags, rescache.IntervalTag(k))
		}
	}
	if len(tags) > 0 {
		n.cache.Invalidate(tags...)
	}
	return nil
}

// breakpointUnion returns the sorted union of every profile's instants —
// the global time axis a compile would produce right now. Caller holds mu
// or otherwise excludes profile edits.
func (n *Network) breakpointUnion() []float64 {
	set := make(map[float64]bool)
	for _, p := range n.profiles {
		for _, t := range p.Times {
			set[t] = true
		}
	}
	times := make([]float64, 0, len(set))
	for t := range set {
		times = append(times, t)
	}
	sort.Float64s(times)
	return times
}

func sameAxis(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// scaledEqual reports whether base costs w scaled by the two multiplier
// vectors (nil = unscaled) come out identical.
func scaledEqual(w, ma, mb vec.Costs) bool {
	for i, v := range w {
		a, b := v, v
		if ma != nil {
			a = v * ma[i]
		}
		if mb != nil {
			b = v * mb[i]
		}
		if a != b {
			return false
		}
	}
	return true
}

// overlay returns the compiled overlay, building it on first use: the
// global breakpoint set is the sorted union of every profile's instants,
// and each elementary interval's cost vectors are the base costs scaled by
// the multipliers in effect at the interval's start.
//
// Compilation is eager: memory is |E|·d·(breakpoints+1) float64s, which is
// the right trade when profiles share a small set of instants (rush hours,
// tariff windows — the modelled workloads). Networks where every edge
// contributes distinct breakpoints would want delta compilation instead
// (base costs once plus per-interval patches; see ROADMAP).
func (n *Network) overlay() (*compiled, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.compiled != nil {
		return n.compiled, nil
	}
	set := make(map[float64]bool)
	for _, p := range n.profiles {
		for _, t := range p.Times {
			set[t] = true
		}
	}
	times := make([]float64, 0, len(set))
	for t := range set {
		times = append(times, t)
	}
	sort.Float64s(times)
	ov, err := flat.NewOverlay(n.base, len(times)+1, func(k int, e graph.EdgeID) vec.Costs {
		at := math.Inf(-1) // before the first breakpoint: base costs
		if k > 0 {
			at = times[k-1]
		}
		return n.effectiveCost(e, at)
	})
	if err != nil {
		return nil, err
	}
	// One pruning index per elementary interval, over the interval's cost
	// surface. Eager like the overlay itself and sized the same way
	// (|V|·d·(breakpoints+1) float64s vs the overlay's |E|·d·(breakpoints+1)),
	// so it adds no new asymptotic term; the same delta-compilation follow-up
	// applies (see ROADMAP).
	bounds := make([]*index.Bounds, len(times)+1)
	for k := range bounds {
		at := math.Inf(-1)
		if k > 0 {
			at = times[k-1]
		}
		bounds[k] = index.FromCosts(n.base, func(e graph.EdgeID, i int) float64 {
			w := n.base.Edge(e).W[i]
			if p, ok := n.profiles[e]; ok {
				if m := p.At(at); m != nil {
					return w * m[i]
				}
			}
			return w
		})
	}
	n.compiled = &compiled{times: times, ov: ov, pool: expand.NewPool(ov.Interval(0)), bounds: bounds}
	n.axis = times
	return n.compiled, nil
}

// effectiveCost returns edge e's cost vector at instant t: the base vector,
// scaled component-wise when a profile interval covers t.
func (n *Network) effectiveCost(e graph.EdgeID, t float64) vec.Costs {
	w := n.base.Edge(e).W
	p, ok := n.profiles[e]
	if !ok {
		return w
	}
	m := p.At(t)
	if m == nil {
		return w
	}
	scaled := make(vec.Costs, len(w))
	for i := range w {
		scaled[i] = w[i] * m[i]
	}
	return scaled
}

// Breakpoints returns the ascending instants in [from, to) where some edge
// cost changes, always starting with from itself.
func (n *Network) Breakpoints(from, to float64) []float64 {
	set := map[float64]bool{from: true}
	for _, p := range n.profiles {
		for _, t := range p.Times {
			if t > from && t < to {
				set[t] = true
			}
		}
	}
	out := make([]float64, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Float64s(out)
	return out
}

// Snapshot materialises the static multi-cost network in effect at instant
// t. It is the reference implementation the overlay fast path is tested
// against — every query entry point answers from the compiled overlay
// instead, and per-query callers should never need a snapshot.
func (n *Network) Snapshot(t float64) (*graph.Graph, error) {
	b := graph.NewBuilder(n.base.D(), n.base.Directed())
	for v := 0; v < n.base.NumNodes(); v++ {
		node := n.base.Node(graph.NodeID(v))
		b.AddNode(node.X, node.Y)
	}
	for e := 0; e < n.base.NumEdges(); e++ {
		edge := n.base.Edge(graph.EdgeID(e))
		w := edge.W
		if p, ok := n.profiles[graph.EdgeID(e)]; ok {
			if m := p.At(t); m != nil {
				scaled := make(vec.Costs, len(w))
				for i := range w {
					scaled[i] = w[i] * m[i]
				}
				w = scaled
			}
		}
		b.AddEdge(edge.U, edge.V, w)
	}
	for f := 0; f < n.base.NumFacilities(); f++ {
		fac := n.base.Facility(graph.FacilityID(f))
		b.AddFacility(fac.Edge, fac.T)
	}
	return b.Build()
}

// IntervalResult is one maximal time interval with a constant preferred set.
type IntervalResult struct {
	From, To float64
	Result   *core.Result
}

// queryScratch attaches a pooled scratch to opt when the caller supplied
// none; release returns it to the pool (a no-op for caller-owned scratch).
func (c *compiled) queryScratch(opt core.Options) (core.Options, func()) {
	if opt.Scratch != nil {
		return opt, func() {}
	}
	sc := c.pool.Get()
	opt.Scratch = sc
	return opt, func() { c.pool.Put(sc) }
}

// instant runs one static query against the interval view covering t: the
// shared prologue of every *At entry point — location validation, lazy
// overlay compile, ctx binding, pooled scratch attach/release. spec carries
// the kind-specific key fields; with a cache attached, the query is keyed
// by elementary interval (every instant inside the interval shares one
// entry) and tagged with its interval plus the time-dependent class.
func (n *Network) instant(ctx context.Context, loc graph.Location, t float64, opt core.Options, spec rescache.KeySpec, query func(*flat.View, core.Options) (*core.Result, error)) (*core.Result, error) {
	if err := loc.Validate(n.base); err != nil {
		return nil, err
	}
	c, err := n.overlay()
	if err != nil {
		return nil, err
	}
	k := c.intervalAt(t)
	run := func(opt core.Options) (*core.Result, error) {
		if opt.Bounds == nil && !opt.NoPrune {
			// Attach the interval's own pruning index: bounds built for one
			// cost surface are inadmissible under another, so the static
			// network's index is never reused here. Pruning does not change
			// results, so the cache key needs no extra field.
			opt.Bounds = c.bounds[k]
		}
		opt, release := c.queryScratch(opt.BindContext(ctx))
		defer release()
		return query(c.ov.Interval(k), opt)
	}
	if n.cache != nil && opt.OnResult == nil {
		spec.Interval = k
		spec.Engine = byte(opt.Engine)
		spec.NoEnhancements = opt.NoEnhancements
		spec.Edge = loc.Edge
		spec.T = loc.T
		if key, scale, ok := spec.Key(); ok {
			val, _, err := n.cache.Do(key, func() (rescache.Value, []rescache.Tag, error) {
				res, err := run(opt)
				if err != nil {
					return rescache.Value{}, nil, err
				}
				return rescache.Value{Result: res, Scale: scale},
					[]rescache.Tag{rescache.IntervalTag(k), rescache.ClassTimeDep}, nil
			})
			if err != nil {
				return nil, err
			}
			return val.ResultAt(scale), nil
		}
	}
	return run(opt)
}

// SkylineAt computes sky(q) under the cost surface in effect at instant t:
// the skyline query of the paper over the elementary interval covering t,
// answered from the compiled overlay with pooled expansion state.
// Cancelling ctx aborts the query at its next interrupt poll.
func (n *Network) SkylineAt(ctx context.Context, loc graph.Location, t float64, opt core.Options) (*core.Result, error) {
	return n.instant(ctx, loc, t, opt, rescache.KeySpec{Kind: rescache.KindSkyline},
		func(v *flat.View, opt core.Options) (*core.Result, error) {
			return core.Skyline(v, loc, opt)
		})
}

// TopKAt computes the k facilities minimising agg at instant t.
func (n *Network) TopKAt(ctx context.Context, loc graph.Location, agg vec.Aggregate, k int, t float64, opt core.Options) (*core.Result, error) {
	return n.instant(ctx, loc, t, opt, rescache.KeySpec{Kind: rescache.KindTopK, Agg: agg, K: k},
		func(v *flat.View, opt core.Options) (*core.Result, error) {
			return core.TopK(v, loc, agg, k, opt)
		})
}

// NearestAt returns up to k facilities closest to loc under cost type
// costIdx at instant t, in non-decreasing cost order.
func (n *Network) NearestAt(ctx context.Context, loc graph.Location, costIdx, k int, t float64, opt core.Options) (*core.Result, error) {
	return n.instant(ctx, loc, t, opt, rescache.KeySpec{Kind: rescache.KindNearest, CostIdx: costIdx, K: k},
		func(v *flat.View, opt core.Options) (*core.Result, error) {
			return core.Nearest(v, loc, costIdx, k, opt)
		})
}

// WithinAt returns the facilities whose full cost vector at instant t fits
// the budget component-wise.
func (n *Network) WithinAt(ctx context.Context, loc graph.Location, budget vec.Costs, t float64, opt core.Options) (*core.Result, error) {
	return n.instant(ctx, loc, t, opt, rescache.KeySpec{Kind: rescache.KindWithin, Budget: budget},
		func(v *flat.View, opt core.Options) (*core.Result, error) {
			return core.Within(v, loc, budget, opt)
		})
}

// SkylineOverPeriod returns the skyline for every instant in [from, to): one
// entry per maximal sub-interval with a constant skyline. Cancelling ctx
// aborts the sweep between intervals and, through opt's interrupt hook,
// inside each per-interval query.
func (n *Network) SkylineOverPeriod(ctx context.Context, loc graph.Location, from, to float64, opt core.Options) ([]IntervalResult, error) {
	opt = opt.BindContext(ctx)
	return n.overPeriod(ctx, loc, from, to, opt, func(v *flat.View, opt core.Options) (*core.Result, error) {
		return core.Skyline(v, loc, opt)
	})
}

// TopKOverPeriod returns the top-k set for every instant in [from, to).
func (n *Network) TopKOverPeriod(ctx context.Context, loc graph.Location, agg vec.Aggregate, k int, from, to float64, opt core.Options) ([]IntervalResult, error) {
	opt = opt.BindContext(ctx)
	return n.overPeriod(ctx, loc, from, to, opt, func(v *flat.View, opt core.Options) (*core.Result, error) {
		return core.TopK(v, loc, agg, k, opt)
	})
}

// overPeriod sweeps the elementary intervals intersecting [from, to),
// running one static query per interval against its overlay view and
// merging adjacent intervals with identical preferred sets. One pooled
// scratch serves the whole sweep, reset between intervals.
func (n *Network) overPeriod(ctx context.Context, loc graph.Location, from, to float64, opt core.Options, query func(*flat.View, core.Options) (*core.Result, error)) ([]IntervalResult, error) {
	if !(from < to) {
		return nil, fmt.Errorf("timedep: empty period [%g, %g)", from, to)
	}
	if err := loc.Validate(n.base); err != nil {
		return nil, err
	}
	c, err := n.overlay()
	if err != nil {
		return nil, err
	}
	opt, release := c.queryScratch(opt)
	defer release()
	breaks := n.Breakpoints(from, to)
	var out []IntervalResult
	for i, start := range breaks {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		end := to
		if i+1 < len(breaks) {
			end = breaks[i+1]
		}
		opt.Scratch.Reset()
		iopt := opt
		if iopt.Bounds == nil && !iopt.NoPrune {
			iopt.Bounds = c.bounds[c.intervalAt(start)]
		}
		res, err := query(c.viewAt(start), iopt)
		if err != nil {
			return nil, err
		}
		if len(out) > 0 && sameIDs(out[len(out)-1].Result, res) {
			out[len(out)-1].To = end // merge: identical preferred set
			continue
		}
		out = append(out, IntervalResult{From: start, To: end, Result: res})
	}
	return out, nil
}

// sameIDs compares the facility id sets (order-insensitive) of two results.
func sameIDs(a, b *core.Result) bool {
	if len(a.Facilities) != len(b.Facilities) {
		return false
	}
	ids := make(map[graph.FacilityID]int, len(a.Facilities))
	for _, f := range a.Facilities {
		ids[f.ID]++
	}
	for _, f := range b.Facilities {
		if ids[f.ID] == 0 {
			return false
		}
		ids[f.ID]--
	}
	return true
}

// CostAt returns edge e's effective cost vector at instant t.
func (n *Network) CostAt(e graph.EdgeID, t float64) (vec.Costs, error) {
	if int(e) >= n.base.NumEdges() {
		return nil, fmt.Errorf("timedep: edge %d out of range", e)
	}
	w := n.base.Edge(e).W.Clone()
	if p, ok := n.profiles[e]; ok {
		if m := p.At(t); m != nil {
			for i := range w {
				w[i] *= m[i]
			}
		}
	}
	// Guard against NaN creep from pathological inputs.
	for _, v := range w {
		if math.IsNaN(v) {
			return nil, fmt.Errorf("timedep: NaN cost on edge %d at t=%g", e, t)
		}
	}
	return w, nil
}
