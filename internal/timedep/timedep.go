// Package timedep implements the paper's second future-work item (Sec.
// VII): preference queries in MCNs whose edge costs are functions of time,
// answering skyline and top-k "for every time instance within a given
// period".
//
// Edge costs follow piecewise-constant profiles (e.g. rush-hour multipliers
// on driving time, off-peak toll discounts). Within one elementary interval
// — between two consecutive breakpoints of any edge profile — every cost in
// the network is constant, so the preferred set is constant too and one
// static MCN query answers the whole interval. A period query therefore
// partitions [from, to) at the profile breakpoints, runs the corresponding
// static query per elementary interval, and merges adjacent intervals with
// identical results.
//
// Costs are frozen at the query instant ("frozen-at-departure"): a route
// evaluated for instant t uses the cost surface at t throughout. This is the
// standard simplification that keeps each instant an ordinary MCN query; the
// FIFO travel-time model of Kanoulas et al. [30] is orthogonal machinery the
// paper treats as related work, not as part of the proposed queries.
package timedep

import (
	"context"
	"fmt"
	"math"
	"sort"

	"mcn/internal/core"
	"mcn/internal/expand"
	"mcn/internal/graph"
	"mcn/internal/vec"
)

// Profile is a piecewise-constant cost modifier for one edge: during
// [Times[i], Times[i+1]) the edge's base cost vector is multiplied
// component-wise by Mult[i] (the last interval extends to +Inf). Before
// Times[0] the base costs apply unchanged.
type Profile struct {
	Times []float64
	Mult  []vec.Costs
}

// Validate checks the profile against a network with d cost types.
func (p Profile) Validate(d int) error {
	if len(p.Times) != len(p.Mult) {
		return fmt.Errorf("timedep: %d breakpoints but %d multipliers", len(p.Times), len(p.Mult))
	}
	if len(p.Times) == 0 {
		return fmt.Errorf("timedep: empty profile")
	}
	for i := 1; i < len(p.Times); i++ {
		if p.Times[i-1] >= p.Times[i] {
			return fmt.Errorf("timedep: breakpoints not strictly increasing at %d", i)
		}
	}
	for i, m := range p.Mult {
		if len(m) != d {
			return fmt.Errorf("timedep: multiplier %d has %d components, want %d", i, len(m), d)
		}
		for j, v := range m {
			if !(v > 0) {
				return fmt.Errorf("timedep: multiplier %d component %d is %g; must be positive", i, j, v)
			}
		}
	}
	return nil
}

// At returns the multiplier vector in effect at instant t (nil means "base
// costs unchanged").
func (p Profile) At(t float64) vec.Costs {
	// Largest i with Times[i] <= t.
	i := sort.SearchFloat64s(p.Times, t)
	if i < len(p.Times) && p.Times[i] == t {
		return p.Mult[i]
	}
	if i == 0 {
		return nil
	}
	return p.Mult[i-1]
}

// Network is a multi-cost network with time-dependent edge costs.
type Network struct {
	base     *graph.Graph
	profiles map[graph.EdgeID]Profile
}

// New wraps a static network; edges without profiles keep their base costs
// at all times.
func New(g *graph.Graph) *Network {
	return &Network{base: g, profiles: make(map[graph.EdgeID]Profile)}
}

// Base returns the underlying static graph.
func (n *Network) Base() *graph.Graph { return n.base }

// SetProfile attaches a profile to edge e, replacing any previous one.
func (n *Network) SetProfile(e graph.EdgeID, p Profile) error {
	if int(e) >= n.base.NumEdges() {
		return fmt.Errorf("timedep: edge %d out of range (%d edges)", e, n.base.NumEdges())
	}
	if err := p.Validate(n.base.D()); err != nil {
		return err
	}
	n.profiles[e] = p
	return nil
}

// Breakpoints returns the ascending instants in [from, to) where some edge
// cost changes, always starting with from itself.
func (n *Network) Breakpoints(from, to float64) []float64 {
	set := map[float64]bool{from: true}
	for _, p := range n.profiles {
		for _, t := range p.Times {
			if t > from && t < to {
				set[t] = true
			}
		}
	}
	out := make([]float64, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Float64s(out)
	return out
}

// Snapshot materialises the static multi-cost network in effect at instant
// t.
func (n *Network) Snapshot(t float64) (*graph.Graph, error) {
	b := graph.NewBuilder(n.base.D(), n.base.Directed())
	for v := 0; v < n.base.NumNodes(); v++ {
		node := n.base.Node(graph.NodeID(v))
		b.AddNode(node.X, node.Y)
	}
	for e := 0; e < n.base.NumEdges(); e++ {
		edge := n.base.Edge(graph.EdgeID(e))
		w := edge.W
		if p, ok := n.profiles[graph.EdgeID(e)]; ok {
			if m := p.At(t); m != nil {
				scaled := make(vec.Costs, len(w))
				for i := range w {
					scaled[i] = w[i] * m[i]
				}
				w = scaled
			}
		}
		b.AddEdge(edge.U, edge.V, w)
	}
	for f := 0; f < n.base.NumFacilities(); f++ {
		fac := n.base.Facility(graph.FacilityID(f))
		b.AddFacility(fac.Edge, fac.T)
	}
	return b.Build()
}

// IntervalResult is one maximal time interval with a constant preferred set.
type IntervalResult struct {
	From, To float64
	Result   *core.Result
}

// SkylineOverPeriod returns the skyline for every instant in [from, to): one
// entry per maximal sub-interval with a constant skyline. Cancelling ctx
// aborts the sweep between intervals and, through opt's interrupt hook,
// inside each per-interval query.
func (n *Network) SkylineOverPeriod(ctx context.Context, loc graph.Location, from, to float64, opt core.Options) ([]IntervalResult, error) {
	opt = opt.BindContext(ctx)
	return n.overPeriod(ctx, loc, from, to, func(g *graph.Graph) (*core.Result, error) {
		return core.Skyline(expand.NewMemorySource(g), loc, opt)
	})
}

// TopKOverPeriod returns the top-k set for every instant in [from, to).
func (n *Network) TopKOverPeriod(ctx context.Context, loc graph.Location, agg vec.Aggregate, k int, from, to float64, opt core.Options) ([]IntervalResult, error) {
	opt = opt.BindContext(ctx)
	return n.overPeriod(ctx, loc, from, to, func(g *graph.Graph) (*core.Result, error) {
		return core.TopK(expand.NewMemorySource(g), loc, agg, k, opt)
	})
}

func (n *Network) overPeriod(ctx context.Context, loc graph.Location, from, to float64, query func(*graph.Graph) (*core.Result, error)) ([]IntervalResult, error) {
	if !(from < to) {
		return nil, fmt.Errorf("timedep: empty period [%g, %g)", from, to)
	}
	if err := loc.Validate(n.base); err != nil {
		return nil, err
	}
	breaks := n.Breakpoints(from, to)
	var out []IntervalResult
	for i, start := range breaks {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		end := to
		if i+1 < len(breaks) {
			end = breaks[i+1]
		}
		g, err := n.Snapshot(start)
		if err != nil {
			return nil, err
		}
		res, err := query(g)
		if err != nil {
			return nil, err
		}
		if len(out) > 0 && sameIDs(out[len(out)-1].Result, res) {
			out[len(out)-1].To = end // merge: identical preferred set
			continue
		}
		out = append(out, IntervalResult{From: start, To: end, Result: res})
	}
	return out, nil
}

// sameIDs compares the facility id sets (order-insensitive) of two results.
func sameIDs(a, b *core.Result) bool {
	if len(a.Facilities) != len(b.Facilities) {
		return false
	}
	ids := make(map[graph.FacilityID]int, len(a.Facilities))
	for _, f := range a.Facilities {
		ids[f.ID]++
	}
	for _, f := range b.Facilities {
		if ids[f.ID] == 0 {
			return false
		}
		ids[f.ID]--
	}
	return true
}

// CostAt returns edge e's effective cost vector at instant t.
func (n *Network) CostAt(e graph.EdgeID, t float64) (vec.Costs, error) {
	if int(e) >= n.base.NumEdges() {
		return nil, fmt.Errorf("timedep: edge %d out of range", e)
	}
	w := n.base.Edge(e).W.Clone()
	if p, ok := n.profiles[e]; ok {
		if m := p.At(t); m != nil {
			for i := range w {
				w[i] *= m[i]
			}
		}
	}
	// Guard against NaN creep from pathological inputs.
	for _, v := range w {
		if math.IsNaN(v) {
			return nil, fmt.Errorf("timedep: NaN cost on edge %d at t=%g", e, t)
		}
	}
	return w, nil
}
