// Package wire defines the JSON wire format the serving tier speaks: the
// response envelopes of the mcnserve query endpoints (internal/serve) and
// the decode side the cluster gateway (internal/cluster) uses to merge
// per-replica results. Keeping both ends on one set of types is what makes
// the gateway's merged responses byte-identical to single-node execution:
// a float64 cost decoded from a replica re-encodes to exactly the bytes the
// replica wrote (encoding/json uses the shortest round-tripping
// representation), and the non-finite sentinels map through null in both
// directions.
package wire

import (
	"encoding/json"
	"math"
	"net/http"
	"strconv"
	"strings"

	"mcn/internal/core"
	"mcn/internal/graph"
	"mcn/internal/vec"
)

// Costs renders a cost vector with non-finite components as null: NaN marks
// a component the search never needed (Nearest fills only the queried cost
// type) and +Inf marks unreachability — JSON numbers support neither. On
// decode, null maps back to the NaN sentinel (the Inf/NaN distinction is
// not recoverable from the wire, and nothing downstream needs it: both mean
// "no finite cost").
type Costs []float64

// MarshalJSON implements json.Marshaler.
func (c Costs) MarshalJSON() ([]byte, error) {
	var b strings.Builder
	b.WriteByte('[')
	for i, v := range c {
		if i > 0 {
			b.WriteByte(',')
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			b.WriteString("null")
		} else {
			b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		}
	}
	b.WriteByte(']')
	return []byte(b.String()), nil
}

// UnmarshalJSON implements json.Unmarshaler; null components decode to NaN.
func (c *Costs) UnmarshalJSON(data []byte) error {
	var raw []*float64
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	out := make(Costs, len(raw))
	for i, p := range raw {
		if p == nil {
			out[i] = math.NaN()
		} else {
			out[i] = *p
		}
	}
	*c = out
	return nil
}

// Facility is one query answer on the wire.
type Facility struct {
	ID    graph.FacilityID `json:"id"`
	Costs Costs            `json:"costs"`
	Score float64          `json:"score,omitempty"`
}

// Result is the envelope of every buffered query endpoint.
type Result struct {
	Query      string     `json:"query"`
	Count      int        `json:"count"`
	Facilities []Facility `json:"facilities"`
	Stats      core.Stats `json:"stats"`
	LatencyMS  float64    `json:"latency_ms"`
}

// Interval is one maximal sub-interval of a period query's answer: a
// constant preferred set between From and To.
type Interval struct {
	From       float64    `json:"from"`
	To         float64    `json:"to"`
	Count      int        `json:"count"`
	Facilities []Facility `json:"facilities"`
	Stats      core.Stats `json:"stats"`
}

// PeriodResult is the envelope of the *OverPeriod endpoints; Count is the
// number of intervals.
type PeriodResult struct {
	Query     string     `json:"query"`
	Count     int        `json:"count"`
	Intervals []Interval `json:"intervals"`
	LatencyMS float64    `json:"latency_ms"`
}

// Error is the body of every non-200 response.
type Error struct {
	Error string `json:"error"`
}

// FromFacilities converts core query answers to their wire form.
func FromFacilities(fs []core.Facility) []Facility {
	out := make([]Facility, len(fs))
	for i, f := range fs {
		out[i] = Facility{ID: f.ID, Costs: Costs(f.Costs), Score: f.Score}
	}
	return out
}

// ToFacilities converts wire facilities back to core form, for re-merging
// decoded replica results through the core dominance filter.
func ToFacilities(fs []Facility) []core.Facility {
	out := make([]core.Facility, len(fs))
	for i, f := range fs {
		out[i] = core.Facility{ID: f.ID, Costs: vec.Costs(f.Costs), Score: f.Score}
	}
	return out
}

// WriteJSON writes v as the complete JSON response with the given status.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client gone; nothing to do
}
