package wire

import (
	"fmt"
	"net/url"
	"strconv"
	"strings"
)

// Query kinds a Request can carry — the path of the equivalent GET endpoint.
// One set of names serves three jobs: the JSON request form ("kind" field),
// the binary header's kind byte (see binary.go), and the URI round-trip the
// gateway uses to derive routing keys for /v1/query traffic.
const (
	KindSkyline            = "skyline"
	KindTopK               = "topk"
	KindNearest            = "nearest"
	KindWithin             = "within"
	KindMultiSourceSkyline = "multisource/skyline"
	KindMultiSourceTopK    = "multisource/topk"
	KindSkylinePeriod      = "skyline/period"
	KindTopKPeriod         = "topk/period"
)

// Request is the codec-independent form of one query request: what the GET
// endpoints read from URL parameters, as a struct that also round-trips
// through JSON (POST /v1/query with Content-Type: application/json) and the
// binary frame codec (application/x-mcn-frame). Zero values follow the GET
// defaults: T defaults to 0.5 via the constructors/parsers, K to the
// endpoint default, empty Weights to uniform.
//
// Request floats (T, Ts, Weights, Budget, From, To) stay float64 on every
// codec — unlike response cost vectors, which the binary codec narrows to
// float32 — so both codecs run the exact same query and period sub-range
// boundaries survive gateway splitting bit-for-bit.
type Request struct {
	Kind string `json:"kind"`
	// Edge/T locate single-location queries (all kinds except multisource/*).
	Edge int     `json:"edge,omitempty"`
	T    float64 `json:"t,omitempty"`
	// K is the result bound of topk, nearest, multisource/topk, topk/period.
	K int `json:"k,omitempty"`
	// Cost is the cost-type index of nearest and the multisource kinds.
	Cost int `json:"cost,omitempty"`
	// Weights are the aggregate coefficients of the top-k kinds; empty means
	// uniform.
	Weights []float64 `json:"weights,omitempty"`
	// Budget is the component-wise bound of within.
	Budget []float64 `json:"budget,omitempty"`
	// Edges/Ts are the multisource query locations (Ts empty = 0.5 each).
	Edges []int     `json:"edges,omitempty"`
	Ts    []float64 `json:"ts,omitempty"`
	// Engine is "" or "cea" (default) or "lsa".
	Engine string `json:"engine,omitempty"`
	// From/To bound the period kinds' time range.
	From float64 `json:"from,omitempty"`
	To   float64 `json:"to,omitempty"`
	// TimeoutMS tightens the per-request deadline, like the timeout_ms GET
	// parameter; 0 means the server default.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// KnownKind reports whether kind names one of the eight query kinds.
func KnownKind(kind string) bool {
	switch kind {
	case KindSkyline, KindTopK, KindNearest, KindWithin,
		KindMultiSourceSkyline, KindMultiSourceTopK, KindSkylinePeriod, KindTopKPeriod:
		return true
	}
	return false
}

// singleLocation reports whether the kind queries one Edge/T location.
func (q *Request) singleLocation() bool {
	switch q.Kind {
	case KindMultiSourceSkyline, KindMultiSourceTopK:
		return false
	}
	return true
}

// Period reports whether the request is a *OverPeriod sweep.
func (q *Request) Period() bool {
	return q.Kind == KindSkylinePeriod || q.Kind == KindTopKPeriod
}

// Scatter reports whether the request is a multisource query the gateway
// fans out to every replica.
func (q *Request) Scatter() bool {
	return q.Kind == KindMultiSourceSkyline || q.Kind == KindMultiSourceTopK
}

// URI renders the request as the equivalent GET request URI — the exact form
// the JSON endpoints parse. The gateway routes /v1/query traffic by this
// rendering (via CanonicalKey), so the binary and GET forms of one query
// share a replica and its result-cache entry; RequestFromURI inverts it.
func (q *Request) URI() string {
	v := url.Values{}
	fl := func(key string, f float64) { v.Set(key, strconv.FormatFloat(f, 'g', -1, 64)) }
	csv := func(vals []float64) string {
		parts := make([]string, len(vals))
		for i, f := range vals {
			parts[i] = strconv.FormatFloat(f, 'g', -1, 64)
		}
		return strings.Join(parts, ",")
	}
	if q.singleLocation() {
		v.Set("edge", strconv.Itoa(q.Edge))
		fl("t", q.T)
	} else {
		parts := make([]string, len(q.Edges))
		for i, e := range q.Edges {
			parts[i] = strconv.Itoa(e)
		}
		v.Set("edges", strings.Join(parts, ","))
		if len(q.Ts) > 0 {
			v.Set("ts", csv(q.Ts))
		}
		v.Set("cost", strconv.Itoa(q.Cost))
	}
	switch q.Kind {
	case KindTopK, KindMultiSourceTopK, KindTopKPeriod:
		v.Set("k", strconv.Itoa(q.K))
		if len(q.Weights) > 0 {
			v.Set("weights", csv(q.Weights))
		}
	case KindNearest:
		v.Set("k", strconv.Itoa(q.K))
		v.Set("cost", strconv.Itoa(q.Cost))
	case KindWithin:
		v.Set("budget", csv(q.Budget))
	}
	if q.Period() {
		fl("from", q.From)
		fl("to", q.To)
	}
	if q.Engine != "" {
		v.Set("engine", q.Engine)
	}
	if q.TimeoutMS > 0 {
		v.Set("timeout_ms", strconv.Itoa(q.TimeoutMS))
	}
	return "/" + q.Kind + "?" + v.Encode()
}

// RequestFromURI parses a GET request URI (path + query) into the
// codec-independent Request — the inverse of URI, with the same parameter
// defaults the GET endpoints apply (t=0.5, k per endpoint). It performs only
// syntactic validation; semantic checks (edge ranges, arity against the
// network's d) stay server-side so both codecs share one validation path.
func RequestFromURI(uri string) (*Request, error) {
	u, err := url.Parse(uri)
	if err != nil {
		return nil, fmt.Errorf("wire: parse uri: %w", err)
	}
	q := &Request{Kind: strings.TrimPrefix(u.Path, "/")}
	switch q.Kind {
	case KindSkyline, KindTopK, KindNearest, KindWithin,
		KindMultiSourceSkyline, KindMultiSourceTopK, KindSkylinePeriod, KindTopKPeriod:
	default:
		return nil, fmt.Errorf("wire: unknown query kind %q", q.Kind)
	}
	v := u.Query()
	geti := func(key string, def int) (int, error) {
		raw := v.Get(key)
		if raw == "" {
			return def, nil
		}
		n, err := strconv.Atoi(raw)
		if err != nil {
			return 0, fmt.Errorf("wire: invalid %s %q", key, raw)
		}
		return n, nil
	}
	getf := func(key string, def float64) (float64, error) {
		raw := v.Get(key)
		if raw == "" {
			return def, nil
		}
		f, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return 0, fmt.Errorf("wire: invalid %s %q", key, raw)
		}
		return f, nil
	}
	getfs := func(key string) ([]float64, error) {
		raw := v.Get(key)
		if raw == "" {
			return nil, nil
		}
		parts := strings.Split(raw, ",")
		out := make([]float64, len(parts))
		for i, p := range parts {
			f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				return nil, fmt.Errorf("wire: invalid %s component %q", key, p)
			}
			out[i] = f
		}
		return out, nil
	}
	if q.singleLocation() {
		if q.Edge, err = geti("edge", 0); err != nil {
			return nil, err
		}
		if q.T, err = getf("t", 0.5); err != nil {
			return nil, err
		}
	} else {
		raw := v.Get("edges")
		if raw != "" {
			parts := strings.Split(raw, ",")
			q.Edges = make([]int, len(parts))
			for i, p := range parts {
				if q.Edges[i], err = strconv.Atoi(strings.TrimSpace(p)); err != nil {
					return nil, fmt.Errorf("wire: invalid edges component %q", p)
				}
			}
		}
		if q.Ts, err = getfs("ts"); err != nil {
			return nil, err
		}
		if q.Cost, err = geti("cost", 0); err != nil {
			return nil, err
		}
	}
	switch q.Kind {
	case KindTopK, KindMultiSourceTopK, KindTopKPeriod:
		if q.K, err = geti("k", 4); err != nil {
			return nil, err
		}
		if q.Weights, err = getfs("weights"); err != nil {
			return nil, err
		}
	case KindNearest:
		if q.K, err = geti("k", 1); err != nil {
			return nil, err
		}
		if q.Cost, err = geti("cost", 0); err != nil {
			return nil, err
		}
	case KindWithin:
		if q.Budget, err = getfs("budget"); err != nil {
			return nil, err
		}
	}
	if q.Period() {
		if q.From, err = getf("from", 0); err != nil {
			return nil, err
		}
		if q.To, err = getf("to", 0); err != nil {
			return nil, err
		}
	}
	switch eng := strings.ToLower(v.Get("engine")); eng {
	case "", "cea":
		q.Engine = ""
	case "lsa":
		q.Engine = "lsa"
	default:
		return nil, fmt.Errorf("wire: unknown engine %q", v.Get("engine"))
	}
	if q.TimeoutMS, err = geti("timeout_ms", 0); err != nil {
		return nil, err
	}
	return q, nil
}

// QueryName returns the response envelope's Query label for the kind — the
// same strings the JSON endpoints emit (engine.Kind.String() plus the period
// sweeps' names), so binary responses decode to identical envelopes.
func (q *Request) QueryName() string {
	switch q.Kind {
	case KindMultiSourceSkyline:
		return "multisource_skyline"
	case KindMultiSourceTopK:
		return "multisource_topk"
	case KindSkylinePeriod:
		return "skyline_over_period"
	case KindTopKPeriod:
		return "topk_over_period"
	default:
		return q.Kind
	}
}
