package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"mcn/internal/core"
	"mcn/internal/graph"
)

// Binary frame codec — the compact sibling of the JSON envelopes, spoken on
// POST /v1/query when Content-Type/Accept is ContentTypeBinary. A frame is
//
//	len:uint32 LE | payload
//
// where payload opens with a fixed little-endian header
//
//	magic "MCNB" (4 bytes) | version:uint8 | kind:uint8 | flags:uint16 LE
//
// followed by a kind-specific body. Node/facility ids, counts and stats are
// unsigned varints; request-side floats (t, weights, budgets, period bounds)
// stay float64 LE so both codecs execute the identical query; response-side
// cost vectors and scores narrow to float32 LE, with the NaN/±Inf sentinels
// surviving the conversion (float32(NaN) is NaN, float32(±Inf) is ±Inf).
// The framing is transport-independent: the length prefix delimits messages
// over any persistent byte stream, and over HTTP the frame is simply the
// request/response body.
const (
	// ContentTypeBinary negotiates the binary codec on /v1/query.
	ContentTypeBinary = "application/x-mcn-frame"
	// ContentTypeJSON is the JSON codec's media type.
	ContentTypeJSON = "application/json"

	// BinaryVersion is the frame version this codec writes and accepts.
	BinaryVersion = 1

	frameHeaderLen = 8
	lenPrefixLen   = 4

	// MaxRequestFrame / MaxResponseFrame bound what each side will read:
	// requests are tiny (a handful of varints and floats), responses carry
	// whole result sets.
	MaxRequestFrame  = 1 << 20
	MaxResponseFrame = 64 << 20
)

// Frame kind bytes. Requests are 1..8, mirroring the Kind* path constants;
// responses use the high range so a stream peer can tell the direction of a
// stray frame.
const (
	frameSkyline            = 1
	frameTopK               = 2
	frameNearest            = 3
	frameWithin             = 4
	frameMultiSourceSkyline = 5
	frameMultiSourceTopK    = 6
	frameSkylinePeriod      = 7
	frameTopKPeriod         = 8

	frameResult       = 0x40
	framePeriodResult = 0x41
	frameError        = 0x7F
)

var magic = [4]byte{'M', 'C', 'N', 'B'}

// kindBytes maps request kind paths to their frame kind byte; reqKinds is
// the inverse.
var kindBytes = map[string]byte{
	KindSkyline:            frameSkyline,
	KindTopK:               frameTopK,
	KindNearest:            frameNearest,
	KindWithin:             frameWithin,
	KindMultiSourceSkyline: frameMultiSourceSkyline,
	KindMultiSourceTopK:    frameMultiSourceTopK,
	KindSkylinePeriod:      frameSkylinePeriod,
	KindTopKPeriod:         frameTopKPeriod,
}

var reqKinds = func() map[byte]string {
	m := make(map[byte]string, len(kindBytes))
	for k, b := range kindBytes {
		m[b] = k
	}
	return m
}()

// Response is one decoded response frame: exactly one of Result or Period is
// set on success; Status/Message carry an error frame.
type Response struct {
	Result  *Result
	Period  *PeriodResult
	Status  int
	Message string
}

// WriteFrame writes payload as one length-prefixed frame.
func WriteFrame(w io.Writer, payload []byte) error {
	var pfx [lenPrefixLen]byte
	binary.LittleEndian.PutUint32(pfx[:], uint32(len(payload)))
	if _, err := w.Write(pfx[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed frame payload, rejecting frames larger
// than max before allocating.
func ReadFrame(r io.Reader, max int) ([]byte, error) {
	var pfx [lenPrefixLen]byte
	if _, err := io.ReadFull(r, pfx[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(pfx[:])
	if int64(n) > int64(max) {
		return nil, fmt.Errorf("wire: frame of %d bytes exceeds limit %d", n, max)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// Frame wraps payload with its length prefix in one buffer.
func Frame(payload []byte) []byte {
	out := make([]byte, lenPrefixLen, lenPrefixLen+len(payload))
	binary.LittleEndian.PutUint32(out, uint32(len(payload)))
	return append(out, payload...)
}

// header appends the fixed frame header for kind.
func header(dst []byte, kind byte) []byte {
	dst = append(dst, magic[0], magic[1], magic[2], magic[3], BinaryVersion, kind)
	return binary.LittleEndian.AppendUint16(dst, 0) // flags, reserved
}

// checkHeader validates the fixed header and returns the kind byte and body.
func checkHeader(payload []byte) (byte, []byte, error) {
	if len(payload) < frameHeaderLen {
		return 0, nil, fmt.Errorf("wire: frame payload of %d bytes is shorter than the header", len(payload))
	}
	if [4]byte(payload[:4]) != magic {
		return 0, nil, fmt.Errorf("wire: bad frame magic %q", payload[:4])
	}
	if v := payload[4]; v != BinaryVersion {
		return 0, nil, fmt.Errorf("wire: unsupported frame version %d", v)
	}
	return payload[5], payload[frameHeaderLen:], nil
}

// reader consumes varints and fixed-width values from a frame body, latching
// the first error so call sites read straight-line.
type reader struct {
	buf []byte
	err error
}

func (r *reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("wire: truncated or malformed %s", what)
	}
}

func (r *reader) uvarint(what string) uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf)
	if n <= 0 {
		r.fail(what)
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

func (r *reader) varint(what string) int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf)
	if n <= 0 {
		r.fail(what)
		return 0
	}
	r.buf = r.buf[n:]
	return v
}

func (r *reader) f64(what string) float64 {
	if r.err != nil || len(r.buf) < 8 {
		r.fail(what)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.buf))
	r.buf = r.buf[8:]
	return v
}

func (r *reader) f32(what string) float64 {
	if r.err != nil || len(r.buf) < 4 {
		r.fail(what)
		return 0
	}
	v := math.Float32frombits(binary.LittleEndian.Uint32(r.buf))
	r.buf = r.buf[4:]
	return float64(v)
}

// count reads a length whose elements occupy at least elemSize bytes each,
// bounding it by the remaining buffer so a corrupt frame cannot force a huge
// allocation.
func (r *reader) count(what string, elemSize int) int {
	n := r.uvarint(what)
	if r.err != nil {
		return 0
	}
	if elemSize < 1 {
		elemSize = 1
	}
	if n > uint64(len(r.buf)/elemSize) {
		r.fail(what)
		return 0
	}
	return int(n)
}

func (r *reader) bytes(what string, n int) []byte {
	if r.err != nil || len(r.buf) < n {
		r.fail(what)
		return nil
	}
	b := r.buf[:n]
	r.buf = r.buf[n:]
	return b
}

func appendF64(dst []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
}

func appendF32(dst []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint32(dst, math.Float32bits(float32(f)))
}

func appendF64s(dst []byte, fs []float64) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(fs)))
	for _, f := range fs {
		dst = appendF64(dst, f)
	}
	return dst
}

func (r *reader) f64s(what string) []float64 {
	n := r.count(what, 8)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.f64(what)
	}
	return out
}

// EncodeRequest renders q as a complete binary frame (length prefix
// included), ready to POST to /v1/query.
func EncodeRequest(q *Request) ([]byte, error) {
	kind, ok := kindBytes[q.Kind]
	if !ok {
		return nil, fmt.Errorf("wire: unknown query kind %q", q.Kind)
	}
	var eng byte
	switch q.Engine {
	case "", "cea":
		eng = 0
	case "lsa":
		eng = 1
	default:
		return nil, fmt.Errorf("wire: unknown engine %q", q.Engine)
	}
	b := header(make([]byte, 0, 64), kind)
	b = binary.AppendVarint(b, int64(q.TimeoutMS))
	b = append(b, eng)
	if q.singleLocation() {
		b = binary.AppendVarint(b, int64(q.Edge))
		b = appendF64(b, q.T)
	} else {
		b = binary.AppendUvarint(b, uint64(len(q.Edges)))
		for _, e := range q.Edges {
			b = binary.AppendVarint(b, int64(e))
		}
		b = appendF64s(b, q.Ts)
		b = binary.AppendVarint(b, int64(q.Cost))
	}
	switch q.Kind {
	case KindTopK, KindMultiSourceTopK, KindTopKPeriod:
		b = binary.AppendVarint(b, int64(q.K))
		b = appendF64s(b, q.Weights)
	case KindNearest:
		b = binary.AppendVarint(b, int64(q.K))
		b = binary.AppendVarint(b, int64(q.Cost))
	case KindWithin:
		b = appendF64s(b, q.Budget)
	}
	if q.Period() {
		b = appendF64(b, q.From)
		b = appendF64(b, q.To)
	}
	return Frame(b), nil
}

// DecodeRequest parses one request frame payload (header included, length
// prefix already stripped).
func DecodeRequest(payload []byte) (*Request, error) {
	kind, body, err := checkHeader(payload)
	if err != nil {
		return nil, err
	}
	path, ok := reqKinds[kind]
	if !ok {
		return nil, fmt.Errorf("wire: frame kind 0x%02x is not a request", kind)
	}
	q := &Request{Kind: path}
	r := &reader{buf: body}
	q.TimeoutMS = int(r.varint("timeout"))
	switch eng := r.bytes("engine", 1); {
	case r.err != nil:
	case eng[0] == 0:
		q.Engine = ""
	case eng[0] == 1:
		q.Engine = "lsa"
	default:
		return nil, fmt.Errorf("wire: unknown engine byte %d", eng[0])
	}
	if q.singleLocation() {
		q.Edge = int(r.varint("edge"))
		q.T = r.f64("t")
	} else {
		if n := r.count("edges", 1); n > 0 {
			q.Edges = make([]int, n)
			for i := range q.Edges {
				q.Edges[i] = int(r.varint("edges"))
			}
		}
		q.Ts = r.f64s("ts")
		q.Cost = int(r.varint("cost"))
	}
	switch q.Kind {
	case KindTopK, KindMultiSourceTopK, KindTopKPeriod:
		q.K = int(r.varint("k"))
		q.Weights = r.f64s("weights")
	case KindNearest:
		q.K = int(r.varint("k"))
		q.Cost = int(r.varint("cost"))
	case KindWithin:
		q.Budget = r.f64s("budget")
	}
	if q.Period() {
		q.From = r.f64("from")
		q.To = r.f64("to")
	}
	if r.err != nil {
		return nil, r.err
	}
	if len(r.buf) != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes after request", len(r.buf))
	}
	return q, nil
}

// appendFacilities writes one result set: count, then per facility the
// uvarint id, d float32 cost components and the float32 score.
func appendFacilities(dst []byte, d int, fs []Facility) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(fs)))
	for _, f := range fs {
		dst = binary.AppendUvarint(dst, uint64(f.ID))
		for i := 0; i < d; i++ {
			if i < len(f.Costs) {
				dst = appendF32(dst, f.Costs[i])
			} else {
				dst = appendF32(dst, math.NaN())
			}
		}
		dst = appendF32(dst, f.Score)
	}
	return dst
}

func (r *reader) facilities(d int) []Facility {
	n := r.count("facilities", 1+4*d+4)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]Facility, n)
	for i := range out {
		out[i].ID = graph.FacilityID(r.uvarint("facility id"))
		costs := make(Costs, d)
		for j := range costs {
			costs[j] = r.f32("facility costs")
		}
		out[i].Costs = costs
		out[i].Score = r.f32("facility score")
	}
	return out
}

func appendStats(dst []byte, s core.Stats) []byte {
	dst = binary.AppendUvarint(dst, uint64(s.Pops))
	dst = binary.AppendUvarint(dst, uint64(s.GrowingPops))
	dst = binary.AppendUvarint(dst, uint64(s.NodeExpansions))
	dst = binary.AppendUvarint(dst, uint64(s.PrunedNodes))
	return binary.AppendUvarint(dst, uint64(s.Tracked))
}

func (r *reader) stats() core.Stats {
	return core.Stats{
		Pops:           int(r.uvarint("stats")),
		GrowingPops:    int(r.uvarint("stats")),
		NodeExpansions: int(r.uvarint("stats")),
		PrunedNodes:    int(r.uvarint("stats")),
		Tracked:        int(r.uvarint("stats")),
	}
}

// queryKindByte maps a response envelope's Query label back to the request
// kind byte that produced it, so the Query string never travels on the wire.
func queryKindByte(query string) (byte, error) {
	switch query {
	case "skyline":
		return frameSkyline, nil
	case "topk":
		return frameTopK, nil
	case "nearest":
		return frameNearest, nil
	case "within":
		return frameWithin, nil
	case "multisource_skyline":
		return frameMultiSourceSkyline, nil
	case "multisource_topk":
		return frameMultiSourceTopK, nil
	case "skyline_over_period":
		return frameSkylinePeriod, nil
	case "topk_over_period":
		return frameTopKPeriod, nil
	}
	return 0, fmt.Errorf("wire: no kind byte for query %q", query)
}

// queryName is the inverse of queryKindByte.
func queryName(kind byte) (string, error) {
	path, ok := reqKinds[kind]
	if !ok {
		return "", fmt.Errorf("wire: unknown request kind byte 0x%02x", kind)
	}
	q := Request{Kind: path}
	return q.QueryName(), nil
}

// dims returns the widest cost vector in fs — the d written once per frame.
func dims(fs []Facility) int {
	d := 0
	for _, f := range fs {
		if len(f.Costs) > d {
			d = len(f.Costs)
		}
	}
	return d
}

// EncodeResult renders res as a complete binary response frame.
func EncodeResult(res *Result) ([]byte, error) {
	kind, err := queryKindByte(res.Query)
	if err != nil {
		return nil, err
	}
	d := dims(res.Facilities)
	b := header(make([]byte, 0, 64+len(res.Facilities)*(8+4*d)), frameResult)
	b = append(b, kind)
	b = binary.AppendUvarint(b, uint64(d))
	b = appendFacilities(b, d, res.Facilities)
	b = appendStats(b, res.Stats)
	b = appendF32(b, res.LatencyMS)
	return Frame(b), nil
}

// EncodePeriodResult renders pr as a complete binary response frame.
// Interval bounds stay float64 so gateway seam fusion compares them exactly.
func EncodePeriodResult(pr *PeriodResult) ([]byte, error) {
	kind, err := queryKindByte(pr.Query)
	if err != nil {
		return nil, err
	}
	d := 0
	for _, iv := range pr.Intervals {
		if dd := dims(iv.Facilities); dd > d {
			d = dd
		}
	}
	b := header(make([]byte, 0, 256), framePeriodResult)
	b = append(b, kind)
	b = binary.AppendUvarint(b, uint64(d))
	b = binary.AppendUvarint(b, uint64(len(pr.Intervals)))
	for _, iv := range pr.Intervals {
		b = appendF64(b, iv.From)
		b = appendF64(b, iv.To)
		b = appendFacilities(b, d, iv.Facilities)
		b = appendStats(b, iv.Stats)
	}
	b = appendF32(b, pr.LatencyMS)
	return Frame(b), nil
}

// EncodeError renders an HTTP-status-plus-message error as a binary frame.
func EncodeError(status int, msg string) []byte {
	b := header(make([]byte, 0, 16+len(msg)), frameError)
	b = binary.AppendUvarint(b, uint64(status))
	b = binary.AppendUvarint(b, uint64(len(msg)))
	b = append(b, msg...)
	return Frame(b)
}

// DecodeResponse parses one response frame payload (header included, length
// prefix already stripped) into its envelope.
func DecodeResponse(payload []byte) (*Response, error) {
	kind, body, err := checkHeader(payload)
	if err != nil {
		return nil, err
	}
	r := &reader{buf: body}
	switch kind {
	case frameResult:
		rk := r.bytes("result kind", 1)
		if r.err != nil {
			return nil, r.err
		}
		query, err := queryName(rk[0])
		if err != nil {
			return nil, err
		}
		d := int(r.uvarint("dims"))
		if r.err == nil && d > len(r.buf) {
			r.fail("dims")
		}
		res := &Result{Query: query}
		res.Facilities = r.facilities(d)
		res.Count = len(res.Facilities)
		res.Stats = r.stats()
		res.LatencyMS = r.f32("latency")
		if r.err != nil {
			return nil, r.err
		}
		return &Response{Result: res}, nil
	case framePeriodResult:
		rk := r.bytes("period kind", 1)
		if r.err != nil {
			return nil, r.err
		}
		query, err := queryName(rk[0])
		if err != nil {
			return nil, err
		}
		d := int(r.uvarint("dims"))
		if r.err == nil && d > len(r.buf) {
			r.fail("dims")
		}
		pr := &PeriodResult{Query: query}
		n := r.count("intervals", 17)
		for i := 0; i < n && r.err == nil; i++ {
			iv := Interval{From: r.f64("interval from"), To: r.f64("interval to")}
			iv.Facilities = r.facilities(d)
			iv.Count = len(iv.Facilities)
			iv.Stats = r.stats()
			pr.Intervals = append(pr.Intervals, iv)
		}
		pr.Count = len(pr.Intervals)
		pr.LatencyMS = r.f32("latency")
		if r.err != nil {
			return nil, r.err
		}
		return &Response{Period: pr}, nil
	case frameError:
		status := int(r.uvarint("error status"))
		n := r.count("error message", 1)
		msg := r.bytes("error message", n)
		if r.err != nil {
			return nil, r.err
		}
		return &Response{Status: status, Message: string(msg)}, nil
	}
	return nil, fmt.Errorf("wire: frame kind 0x%02x is not a response", kind)
}
