package wire

// Codec negotiation and body decoding for POST /v1/query, shared by the
// single-node server and the cluster gateway so both resolve a request to the
// same codec pair and the same decoded Request.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
)

// MediaType strips any parameters (charset, boundary) off a Content-Type.
func MediaType(ct string) string {
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	return strings.ToLower(strings.TrimSpace(ct))
}

// Negotiate resolves the request and response codecs from the Content-Type
// and Accept headers: the body codec follows Content-Type, and the response
// codec follows an explicit Accept for either media type, defaulting to the
// request's own codec.
func Negotiate(contentType, accept string) (binaryIn, binaryOut bool) {
	binaryIn = MediaType(contentType) == ContentTypeBinary
	switch {
	case strings.Contains(accept, ContentTypeBinary):
		binaryOut = true
	case strings.Contains(accept, ContentTypeJSON):
		binaryOut = false
	default:
		binaryOut = binaryIn
	}
	return binaryIn, binaryOut
}

// jsonRequest shadows the fields whose GET defaults are not the zero value,
// so an absent "t" or "k" in a JSON body gets the same default the GET
// endpoints apply while explicit zeros still mean zero.
type jsonRequest struct {
	Request
	T *float64 `json:"t"`
	K *int     `json:"k"`
}

// DecodeRequestBody parses a /v1/query request body in the negotiated codec,
// applying the GET parameter defaults to absent JSON fields. Binary bodies
// are one length-prefixed frame and always carry every field explicitly.
func DecodeRequestBody(body []byte, binary bool) (*Request, error) {
	if binary {
		payload, err := ReadFrame(bytes.NewReader(body), MaxRequestFrame)
		if err != nil {
			return nil, fmt.Errorf("read frame: %w", err)
		}
		return DecodeRequest(payload)
	}
	var jr jsonRequest
	if err := json.Unmarshal(body, &jr); err != nil {
		return nil, fmt.Errorf("decode request: %w", err)
	}
	q := jr.Request
	if !KnownKind(q.Kind) {
		return nil, fmt.Errorf("unknown query kind %q", q.Kind)
	}
	if jr.T != nil {
		q.T = *jr.T
	} else if !q.Scatter() {
		q.T = 0.5
	}
	if jr.K != nil {
		q.K = *jr.K
	} else {
		switch q.Kind {
		case KindTopK, KindMultiSourceTopK, KindTopKPeriod:
			q.K = 4
		case KindNearest:
			q.K = 1
		}
	}
	return &q, nil
}
