package wire

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"mcn/internal/core"
	"mcn/internal/graph"
)

// randomRequest draws one request of any kind with randomized parameters,
// including the engine and timeout knobs.
func randomRequest(rng *rand.Rand) *Request {
	kinds := []string{
		KindSkyline, KindTopK, KindNearest, KindWithin,
		KindMultiSourceSkyline, KindMultiSourceTopK, KindSkylinePeriod, KindTopKPeriod,
	}
	q := &Request{Kind: kinds[rng.Intn(len(kinds))]}
	if rng.Intn(2) == 0 {
		q.Engine = "lsa"
	}
	if rng.Intn(2) == 0 {
		q.TimeoutMS = 1 + rng.Intn(5000)
	}
	fs := func(n int) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = math.Round(rng.Float64()*1000) / 100
		}
		return out
	}
	if q.Scatter() {
		n := 1 + rng.Intn(4)
		q.Edges = make([]int, n)
		for i := range q.Edges {
			q.Edges[i] = rng.Intn(600)
		}
		if rng.Intn(2) == 0 {
			q.Ts = fs(n)
		}
		q.Cost = rng.Intn(3)
	} else {
		q.Edge = rng.Intn(600)
		q.T = math.Round(rng.Float64()*100) / 100
	}
	switch q.Kind {
	case KindTopK, KindMultiSourceTopK, KindTopKPeriod:
		q.K = 1 + rng.Intn(8)
		if rng.Intn(2) == 0 {
			q.Weights = fs(3)
		}
	case KindNearest:
		q.K = 1 + rng.Intn(4)
		q.Cost = rng.Intn(3)
	case KindWithin:
		q.Budget = fs(3)
	}
	if q.Period() {
		q.From = rng.Float64() * 10
		q.To = q.From + rng.Float64()*10
	}
	return q
}

// Every request round-trips bit-exactly through both the binary frame and
// the GET URI form, and the two forms agree.
func TestRequestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		q := randomRequest(rng)
		frame, err := EncodeRequest(q)
		if err != nil {
			t.Fatalf("EncodeRequest(%+v): %v", q, err)
		}
		payload, err := ReadFrame(bytes.NewReader(frame), MaxRequestFrame)
		if err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
		got, err := DecodeRequest(payload)
		if err != nil {
			t.Fatalf("DecodeRequest(%+v): %v", q, err)
		}
		if !reflect.DeepEqual(got, q) {
			t.Fatalf("binary round trip changed the request:\n got %+v\nwant %+v", got, q)
		}
		viaURI, err := RequestFromURI(q.URI())
		if err != nil {
			t.Fatalf("RequestFromURI(%s): %v", q.URI(), err)
		}
		// The URI form applies the GET defaults where the struct held zero
		// values; re-rendering must converge.
		if viaURI.URI() != q.URI() {
			t.Fatalf("URI round trip diverged: %s vs %s", viaURI.URI(), q.URI())
		}
	}
}

// The URI parser applies the GET endpoints' defaults.
func TestRequestFromURIDefaults(t *testing.T) {
	q, err := RequestFromURI("/skyline?edge=3")
	if err != nil {
		t.Fatal(err)
	}
	if q.T != 0.5 {
		t.Fatalf("t default = %g, want 0.5", q.T)
	}
	q, err = RequestFromURI("/topk?edge=1&t=0.25")
	if err != nil {
		t.Fatal(err)
	}
	if q.K != 4 {
		t.Fatalf("topk k default = %d, want 4", q.K)
	}
	q, err = RequestFromURI("/nearest?edge=1&cost=1")
	if err != nil {
		t.Fatal(err)
	}
	if q.K != 1 {
		t.Fatalf("nearest k default = %d, want 1", q.K)
	}
	for _, bad := range []string{"/bogus?edge=1", "/skyline?edge=x", "/skyline?edge=1&engine=vroom", "/within?edge=1&budget=1,x"} {
		if _, err := RequestFromURI(bad); err == nil {
			t.Errorf("RequestFromURI(%q) succeeded, want error", bad)
		}
	}
}

// randomResult builds a result whose cost vectors exercise the non-finite
// sentinels and values already representable in float32 (so the narrow wire
// format round-trips them exactly). d <= 0 draws a random dimension.
func randomResult(rng *rand.Rand, query string, d int) *Result {
	if d <= 0 {
		d = 1 + rng.Intn(4)
	}
	n := rng.Intn(6)
	fs := make([]Facility, n)
	for i := range fs {
		costs := make(Costs, d)
		for j := range costs {
			switch rng.Intn(5) {
			case 0:
				costs[j] = math.NaN()
			case 1:
				costs[j] = math.Inf(1)
			default:
				costs[j] = float64(float32(rng.Float64() * 100))
			}
		}
		fs[i] = Facility{
			ID:    graph.FacilityID(rng.Intn(1000)),
			Costs: costs,
			Score: float64(float32(rng.Float64() * 10)),
		}
	}
	return &Result{
		Query:      query,
		Count:      n,
		Facilities: fs,
		Stats: core.Stats{
			Pops: rng.Intn(100), GrowingPops: rng.Intn(100),
			NodeExpansions: rng.Intn(1000), PrunedNodes: rng.Intn(50), Tracked: rng.Intn(40),
		},
		LatencyMS: float64(float32(rng.Float64() * 5)),
	}
}

func sameCosts(a, b Costs) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		switch {
		case math.IsNaN(a[i]) && math.IsNaN(b[i]):
		case a[i] == b[i]: // covers ±Inf
		default:
			return false
		}
	}
	return true
}

func TestResultRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	queries := []string{"skyline", "topk", "nearest", "within", "multisource_skyline", "multisource_topk"}
	for i := 0; i < 300; i++ {
		res := randomResult(rng, queries[rng.Intn(len(queries))], 0)
		frame, err := EncodeResult(res)
		if err != nil {
			t.Fatal(err)
		}
		payload, err := ReadFrame(bytes.NewReader(frame), MaxResponseFrame)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := DecodeResponse(payload)
		if err != nil {
			t.Fatal(err)
		}
		got := resp.Result
		if got == nil {
			t.Fatalf("decoded %+v, want a Result", resp)
		}
		if got.Query != res.Query || got.Count != res.Count || got.Stats != res.Stats || got.LatencyMS != res.LatencyMS {
			t.Fatalf("envelope changed:\n got %+v\nwant %+v", got, res)
		}
		for j := range res.Facilities {
			w, g := res.Facilities[j], got.Facilities[j]
			if g.ID != w.ID || g.Score != w.Score || !sameCosts(g.Costs, w.Costs) {
				t.Fatalf("facility %d changed: got %+v want %+v", j, g, w)
			}
		}
		// Re-encoding the decoded result reproduces the frame byte for byte —
		// the property the gateway's binary scatter path relies on.
		frame2, err := EncodeResult(got)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(frame, frame2) {
			t.Fatal("decode→encode is not byte-identical")
		}
	}
}

func TestPeriodResultRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 200; i++ {
		query := "skyline_over_period"
		if rng.Intn(2) == 0 {
			query = "topk_over_period"
		}
		n := 1 + rng.Intn(4)
		pr := &PeriodResult{Query: query, Count: n, LatencyMS: float64(float32(rng.Float64() * 9))}
		from := rng.Float64()
		// One cost dimension for the whole sweep, as the network fixes d.
		d := 1 + rng.Intn(4)
		for j := 0; j < n; j++ {
			to := from + rng.Float64()*3
			inner := randomResult(rng, "skyline", d)
			pr.Intervals = append(pr.Intervals, Interval{
				From: from, To: to, Count: inner.Count,
				Facilities: inner.Facilities, Stats: inner.Stats,
			})
			from = to
		}
		frame, err := EncodePeriodResult(pr)
		if err != nil {
			t.Fatal(err)
		}
		payload, err := ReadFrame(bytes.NewReader(frame), MaxResponseFrame)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := DecodeResponse(payload)
		if err != nil {
			t.Fatal(err)
		}
		got := resp.Period
		if got == nil {
			t.Fatalf("decoded %+v, want a PeriodResult", resp)
		}
		if got.Query != pr.Query || got.Count != pr.Count || got.LatencyMS != pr.LatencyMS {
			t.Fatalf("envelope changed: got %+v want %+v", got, pr)
		}
		for j := range pr.Intervals {
			w, g := pr.Intervals[j], got.Intervals[j]
			// Interval bounds are float64 on the wire: exact.
			if g.From != w.From || g.To != w.To || g.Stats != w.Stats || g.Count != w.Count {
				t.Fatalf("interval %d changed: got %+v want %+v", j, g, w)
			}
			for k := range w.Facilities {
				if g.Facilities[k].ID != w.Facilities[k].ID || !sameCosts(g.Facilities[k].Costs, w.Facilities[k].Costs) {
					t.Fatalf("interval %d facility %d changed", j, k)
				}
			}
		}
		frame2, err := EncodePeriodResult(got)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(frame, frame2) {
			t.Fatal("period decode→encode is not byte-identical")
		}
	}
}

func TestErrorFrameRoundTrip(t *testing.T) {
	frame := EncodeError(404, "no such facility")
	payload, err := ReadFrame(bytes.NewReader(frame), MaxResponseFrame)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := DecodeResponse(payload)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 404 || resp.Message != "no such facility" {
		t.Fatalf("error frame decoded to %+v", resp)
	}
}

// Oversized, truncated and corrupt frames fail cleanly instead of panicking
// or over-allocating.
func TestFrameBounds(t *testing.T) {
	q := &Request{Kind: KindSkyline, Edge: 1, T: 0.5}
	frame, err := EncodeRequest(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFrame(bytes.NewReader(frame), 4); err == nil {
		t.Fatal("ReadFrame accepted a frame above max")
	}
	payload := frame[4:]
	for cut := 0; cut < len(payload); cut++ {
		if _, err := DecodeRequest(payload[:cut]); err == nil {
			t.Fatalf("DecodeRequest accepted a %d-byte prefix of a %d-byte frame", cut, len(payload))
		}
	}
	bad := append([]byte(nil), payload...)
	bad[0] = 'X'
	if _, err := DecodeRequest(bad); err == nil {
		t.Fatal("DecodeRequest accepted bad magic")
	}
	bad = append([]byte(nil), payload...)
	bad[4] = 99
	if _, err := DecodeRequest(bad); err == nil {
		t.Fatal("DecodeRequest accepted an unknown version")
	}
	if _, err := DecodeResponse(payload); err == nil {
		t.Fatal("DecodeResponse accepted a request frame")
	}
	if _, err := DecodeRequest(append(payload, 0)); err == nil {
		t.Fatal("DecodeRequest accepted trailing bytes")
	}
}

// FuzzDecodeRequest asserts decode never panics and that anything it accepts
// re-encodes to the identical payload (a fixed point of the codec).
func FuzzDecodeRequest(f *testing.F) {
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 16; i++ {
		frame, err := EncodeRequest(randomRequest(rng))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame[4:])
	}
	f.Fuzz(func(t *testing.T, payload []byte) {
		q, err := DecodeRequest(payload)
		if err != nil {
			return
		}
		frame, err := EncodeRequest(q)
		if err != nil {
			t.Fatalf("decoded request %+v does not re-encode: %v", q, err)
		}
		got, err := DecodeRequest(frame[4:])
		if err != nil {
			t.Fatalf("re-encoded request does not decode: %v", err)
		}
		if got.Kind != q.Kind || got.Edge != q.Edge || got.K != q.K {
			t.Fatalf("re-encode changed the request: %+v vs %+v", got, q)
		}
	})
}

// FuzzDecodeResponse asserts response decoding never panics on arbitrary
// bytes.
func FuzzDecodeResponse(f *testing.F) {
	rng := rand.New(rand.NewSource(19))
	for i := 0; i < 8; i++ {
		frame, err := EncodeResult(randomResult(rng, "skyline", 0))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame[4:])
	}
	f.Add(EncodeError(500, "boom")[4:])
	f.Fuzz(func(t *testing.T, payload []byte) {
		resp, err := DecodeResponse(payload)
		if err != nil {
			return
		}
		switch {
		case resp.Result != nil:
			if _, err := EncodeResult(resp.Result); err != nil {
				t.Fatalf("decoded result does not re-encode: %v", err)
			}
		case resp.Period != nil:
			if _, err := EncodePeriodResult(resp.Period); err != nil {
				t.Fatalf("decoded period result does not re-encode: %v", err)
			}
		}
	})
}
