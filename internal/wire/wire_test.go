package wire

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"testing"

	"mcn/internal/core"
	"mcn/internal/vec"
)

// The wire contract the cluster gateway depends on: non-finite components
// map through null in both directions, and finite floats re-encode to
// exactly the bytes a replica wrote.
func TestCostsRoundTrip(t *testing.T) {
	x, y := 0.1, 0.2 // runtime sum: 0.30000000000000004 (constant folding would give exactly 0.3)
	in := Costs{1.5, math.NaN(), math.Inf(1), x + y}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := string(b), `[1.5,null,null,0.30000000000000004]`; got != want {
		t.Fatalf("marshal = %s, want %s", got, want)
	}
	var out Costs
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("len = %d, want %d", len(out), len(in))
	}
	if out[0] != 1.5 || !math.IsNaN(out[1]) || !math.IsNaN(out[2]) || out[3] != in[3] {
		t.Errorf("round trip = %v", out)
	}
	// Decode → re-encode is byte-stable (the gateway merge's invariant).
	b2, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	if string(b2) != string(b) {
		t.Errorf("re-encode = %s, want %s", b2, b)
	}
}

func TestCostsUnmarshalError(t *testing.T) {
	var c Costs
	if err := json.Unmarshal([]byte(`{"not":"an array"}`), &c); err == nil {
		t.Error("want error for non-array costs")
	}
}

func TestFacilityConversionRoundTrip(t *testing.T) {
	in := []core.Facility{
		{ID: 7, Costs: vec.Of(1, 2, 3), Score: 6},
		{ID: 9, Costs: vec.Of(4, math.Inf(1), 5)},
	}
	back := ToFacilities(FromFacilities(in))
	if len(back) != len(in) {
		t.Fatalf("len = %d, want %d", len(back), len(in))
	}
	for i := range in {
		if back[i].ID != in[i].ID || back[i].Score != in[i].Score {
			t.Errorf("facility %d = %+v, want %+v", i, back[i], in[i])
		}
		for j, v := range in[i].Costs {
			if got := back[i].Costs[j]; got != v && !(math.IsInf(v, 1) && math.IsInf(got, 1)) {
				t.Errorf("facility %d cost %d = %v, want %v", i, j, got, v)
			}
		}
	}
}

func TestWriteJSON(t *testing.T) {
	rec := httptest.NewRecorder()
	WriteJSON(rec, 503, Error{Error: "drained"})
	if rec.Code != 503 {
		t.Errorf("status = %d, want 503", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
	var e Error
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error != "drained" {
		t.Errorf("body = %q (%v)", rec.Body.String(), err)
	}
}
