package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"mcn/internal/wire"
)

// SoakConfig drives one sustained-load run against a /v1/query endpoint —
// a single mcnserve or an mcngateway; the generator itself is
// target-agnostic.
type SoakConfig struct {
	// BaseURL is the server under load (scheme://host:port).
	BaseURL string
	// Client is the HTTP client; nil builds one with a connection pool sized
	// for Clients persistent connections.
	Client *http.Client
	// Binary selects the request and response codec (application/x-mcn-frame
	// versus JSON).
	Binary bool
	// Clients is the number of concurrent senders.
	Clients int
	// Rate is the target arrival rate in requests/sec across all clients;
	// 0 runs a closed loop where each client fires as soon as its previous
	// answer lands.
	Rate float64
	// Duration is the measurement window.
	Duration time.Duration
	// Requests is the query mix, cycled in arrival order.
	Requests []*wire.Request
	// Warmup primes every distinct request once before the window opens
	// (connections, scratch pools, result-cache fills), so the histogram
	// measures steady state.
	Warmup bool
}

// SoakResult is one soak run's outcome.
type SoakResult struct {
	Completed   int64
	Errors      int64
	WallSeconds float64
	QPS         float64
	P50         time.Duration
	P99         time.Duration
	P999        time.Duration
	Hist        *Hist
}

// RunSoak drives the configured load and collects the latency histogram.
//
// With a positive Rate the loop is open: arrival n is scheduled at
// start + n/Rate regardless of how the server is coping, and each sample
// measures scheduled-to-done time. A slow server therefore shows its queueing
// delay in the tail quantiles instead of silently slowing the generator down
// (the coordinated-omission trap closed loops fall into). With Rate 0 the
// loop is closed and samples measure send-to-done time, which is the
// throughput-probing mode.
func RunSoak(cfg SoakConfig) (*SoakResult, error) {
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("soak: no target URL")
	}
	if len(cfg.Requests) == 0 {
		return nil, fmt.Errorf("soak: no requests")
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("soak: non-positive duration %v", cfg.Duration)
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 1
	}
	client := cfg.Client
	if client == nil {
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.MaxIdleConnsPerHost = cfg.Clients
		client = &http.Client{Transport: tr}
	}

	contentType := wire.ContentTypeJSON
	if cfg.Binary {
		contentType = wire.ContentTypeBinary
	}
	bodies := make([][]byte, len(cfg.Requests))
	for i, q := range cfg.Requests {
		var err error
		if cfg.Binary {
			bodies[i], err = wire.EncodeRequest(q)
		} else {
			bodies[i], err = json.Marshal(q)
		}
		if err != nil {
			return nil, fmt.Errorf("soak: encode request %d: %w", i, err)
		}
	}

	do := func(ctx context.Context, body []byte) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, cfg.BaseURL+"/v1/query", bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", contentType)
		req.Header.Set("Accept", contentType)
		resp, err := client.Do(req)
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // draining for keep-alive
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("POST /v1/query: status %d", resp.StatusCode)
		}
		return nil
	}

	if cfg.Warmup {
		// Concurrent warmup: one pass over the distinct mix, bounded by the
		// client count.
		sem := make(chan struct{}, cfg.Clients)
		warmErr := make([]error, len(bodies))
		var wg sync.WaitGroup
		for i := range bodies {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer wg.Done()
				warmErr[i] = do(context.Background(), bodies[i])
				<-sem
			}(i)
		}
		wg.Wait()
		for _, err := range warmErr {
			if err != nil {
				return nil, fmt.Errorf("soak: warmup: %w", err)
			}
		}
	}

	var (
		hist      Hist
		seq       atomic.Int64
		completed atomic.Int64
		errCount  atomic.Int64
		errMu     sync.Mutex
		firstErr  error
	)
	start := time.Now()
	deadline := start.Add(cfg.Duration)
	ctx, cancel := context.WithDeadline(context.Background(), deadline)
	defer cancel()

	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				n := seq.Add(1) - 1
				var sched time.Time
				if cfg.Rate > 0 {
					sched = start.Add(time.Duration(float64(n) / cfg.Rate * float64(time.Second)))
					if sched.After(deadline) {
						return
					}
					if d := time.Until(sched); d > 0 {
						t := time.NewTimer(d)
						select {
						case <-t.C:
						case <-ctx.Done():
							t.Stop()
							return
						}
					}
				} else {
					if time.Now().After(deadline) {
						return
					}
					sched = time.Now()
				}
				if err := do(ctx, bodies[n%int64(len(bodies))]); err != nil {
					if ctx.Err() != nil {
						return // the window closed mid-flight; not a failure
					}
					errCount.Add(1)
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					continue
				}
				hist.Record(time.Since(sched))
				completed.Add(1)
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start).Seconds()

	res := &SoakResult{
		Completed:   completed.Load(),
		Errors:      errCount.Load(),
		WallSeconds: wall,
		P50:         hist.Quantile(0.50),
		P99:         hist.Quantile(0.99),
		P999:        hist.Quantile(0.999),
		Hist:        &hist,
	}
	if wall > 0 {
		res.QPS = float64(res.Completed) / wall
	}
	if res.Completed == 0 && firstErr != nil {
		return res, fmt.Errorf("soak: no request completed: %w", firstErr)
	}
	if firstErr != nil {
		return res, fmt.Errorf("soak: %d of %d requests failed: %w",
			res.Errors, res.Errors+res.Completed, firstErr)
	}
	return res, nil
}
