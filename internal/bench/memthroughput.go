package bench

import (
	"context"
	"fmt"
	"time"

	"mcn/internal/core"
	"mcn/internal/engine"
	"mcn/internal/expand"
	"mcn/internal/flat"
)

// memRounds repeats the query set so each configuration sees enough work for
// a stable queries/sec figure.
const memRounds = 8

// runMemThroughput measures the in-memory fast path: wall-clock queries/sec
// for the default skyline+top-k workload served by the batch executor over
// one shared in-memory network, comparing the reference hash-map
// MemorySource against the flat CSR source with pooled dense expansion
// state, across worker counts. The flat/map ratio at equal workers is the
// speedup of the CSR fast path (PR 2's acceptance metric).
func runMemThroughput(cfg Config) ([]Point, error) {
	cfg.defaults()
	w := cfg.DefaultWorkload()
	ds, err := BuildMemDataset(w)
	if err != nil {
		return nil, err
	}

	reqs := make([]engine.Request, 0, 2*memRounds*len(ds.Queries))
	for r := 0; r < memRounds; r++ {
		for i, q := range ds.Queries {
			reqs = append(reqs,
				engine.Request{Kind: engine.Skyline, Loc: q, Opts: core.Options{Engine: core.CEA}},
				engine.Request{Kind: engine.TopK, Loc: q, Agg: ds.Aggs[i], K: w.K, Opts: core.Options{Engine: core.CEA}},
			)
		}
	}

	sources := []struct {
		name string
		src  expand.Source
	}{
		{"map", expand.NewMemorySource(ds.Graph)},
		{"flat", flat.Compile(ds.Graph)},
	}

	var points []Point
	for _, workers := range throughputWorkers {
		pt := Point{Param: fmt.Sprintf("workers=%d", workers)}
		for _, s := range sources {
			exec := engine.New(s.src, engine.Config{Workers: workers})
			// Warmup populates this executor's scratch pool and per-worker
			// state so the measurement below sees the steady state. It must
			// run on the measured executor (the pool is per-executor), so the
			// reported mean latency is computed from the stats delta instead.
			for _, resp := range exec.Execute(context.Background(), reqs[:2*len(ds.Queries)]) {
				if resp.Err != nil {
					return nil, fmt.Errorf("%s warmup: %w", s.name, resp.Err)
				}
			}
			warm := exec.Stats()
			var results int
			start := time.Now()
			for _, resp := range exec.Execute(context.Background(), reqs) {
				if resp.Err != nil {
					return nil, fmt.Errorf("%s workers=%d: %w", s.name, workers, resp.Err)
				}
				results += len(resp.Result.Facilities)
			}
			wall := time.Since(start).Seconds()
			total := exec.Stats()
			meanLatency := (total.TotalLatency - warm.TotalLatency).Seconds() /
				float64(total.Queries()-warm.Queries())
			n := float64(len(reqs))
			pt.Rows = append(pt.Rows, Row{
				Algo:       s.name,
				QPS:        n / wall,
				SimSeconds: wall / n,
				CPUSeconds: meanLatency,
				ResultSize: float64(results) / n,
			})
		}
		points = append(points, pt)
	}
	return points, nil
}
