package bench

import (
	"time"

	"mcn/internal/core"
	"mcn/internal/storage"
)

// runAblation measures the effect of the paper's Sec. IV-A enhancements
// (first-NN shortcut, candidate-edge filtering, expansion stopping) by
// running the default skyline workload with them enabled and disabled, for
// both engines.
func runAblation(cfg Config) ([]Point, error) {
	cfg.defaults()
	w := cfg.DefaultWorkload()
	ds, err := BuildDataset(w)
	if err != nil {
		return nil, err
	}
	pt := Point{Param: "defaults"}
	for _, variant := range []struct {
		name string
		opts core.Options
	}{
		{"LSA", core.Options{Engine: core.LSA}},
		{"LSA-plain", core.Options{Engine: core.LSA, NoEnhancements: true}},
		{"CEA", core.Options{Engine: core.CEA}},
		{"CEA-plain", core.Options{Engine: core.CEA, NoEnhancements: true}},
	} {
		row, err := measureOpts(ds, skylineQuery, variant.name, variant.opts, w, cfg.LatencyMS)
		if err != nil {
			return nil, err
		}
		pt.Rows = append(pt.Rows, row)
	}
	return []Point{pt}, nil
}

// runBaseline compares the paper's strawman (d complete expansions + BNL)
// against LSA and CEA on the default skyline workload.
func runBaseline(cfg Config) ([]Point, error) {
	cfg.defaults()
	w := cfg.DefaultWorkload()
	// The strawman reads the whole database d times per query; a handful of
	// queries suffices to show the gap without dominating suite runtime.
	if w.Queries > 5 {
		w.Queries = 5
	}
	ds, err := BuildDataset(w)
	if err != nil {
		return nil, err
	}
	pt := Point{Param: "defaults"}
	for _, engine := range []core.Engine{core.LSA, core.CEA} {
		row, err := measure(ds, skylineQuery, engine, w, cfg.LatencyMS)
		if err != nil {
			return nil, err
		}
		pt.Rows = append(pt.Rows, row)
	}

	net, err := storage.OpenOptions(ds.Dev, w.Buffer, paperPool)
	if err != nil {
		return nil, err
	}
	var results int
	start := time.Now()
	for _, q := range ds.Queries {
		res, err := core.NaiveSkyline(net, q, core.Options{})
		if err != nil {
			return nil, err
		}
		results += len(res.Facilities)
	}
	cpu := time.Since(start).Seconds()
	stats := net.Stats()
	n := float64(len(ds.Queries))
	row := Row{
		Algo:       "naive",
		CPUSeconds: cpu / n,
		PhysIO:     float64(stats.Physical) / n,
		LogicalIO:  float64(stats.Logical) / n,
		ResultSize: float64(results) / n,
	}
	row.SimSeconds = row.PhysIO*cfg.LatencyMS/1000 + row.CPUSeconds
	pt.Rows = append(pt.Rows, row)
	return []Point{pt}, nil
}
