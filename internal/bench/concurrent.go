package bench

import (
	"context"
	"fmt"
	"time"

	"mcn/internal/core"
	"mcn/internal/engine"
	"mcn/internal/storage"
)

// throughputWorkers is the parallelism axis of the concurrency experiment.
var throughputWorkers = []int{1, 2, 4, 8, 16}

// throughputRounds repeats the query set so each worker count sees enough
// work for a stable queries/sec figure.
const throughputRounds = 8

// runThroughput measures concurrent queries/sec: the default skyline+top-k
// workload served by the batch executor over one shared disk-resident
// network (warm buffer pool under the shipped defaults — sharded clock,
// unlike the paper reproductions, which pin the paper's exact LRU), swept
// across worker counts. Unlike the paper's
// figures this is a wall-clock measurement — the whole point of the executor
// is that independent queries overlap their work — so rows report QPS and
// real per-query latency instead of simulated I/O time.
func runThroughput(cfg Config) ([]Point, error) {
	cfg.defaults()
	w := cfg.DefaultWorkload()
	ds, err := BuildDataset(w)
	if err != nil {
		return nil, err
	}
	net, err := storage.Open(ds.Dev, w.Buffer)
	if err != nil {
		return nil, err
	}

	reqs := make([]engine.Request, 0, 2*throughputRounds*len(ds.Queries))
	for r := 0; r < throughputRounds; r++ {
		for i, q := range ds.Queries {
			reqs = append(reqs,
				engine.Request{Kind: engine.Skyline, Loc: q, Opts: core.Options{Engine: core.CEA}},
				engine.Request{Kind: engine.TopK, Loc: q, Agg: ds.Aggs[i], K: w.K, Opts: core.Options{Engine: core.CEA}},
			)
		}
	}

	// Warmup: run the distinct query set once so every worker count measures
	// against the same warm LRU buffer — otherwise the first row pays all the
	// cold misses and the 1→N scaling is overstated.
	warm := engine.New(net, engine.Config{Workers: throughputWorkers[len(throughputWorkers)-1]})
	for _, resp := range warm.Execute(context.Background(), reqs[:2*len(ds.Queries)]) {
		if resp.Err != nil {
			return nil, fmt.Errorf("warmup: %w", resp.Err)
		}
	}
	net.Pool().ResetStats()

	pt := Point{Param: fmt.Sprintf("%d queries", len(reqs))}
	for _, workers := range throughputWorkers {
		exec := engine.New(net, engine.Config{Workers: workers})
		var results int
		start := time.Now()
		for _, resp := range exec.Execute(context.Background(), reqs) {
			if resp.Err != nil {
				return nil, fmt.Errorf("workers=%d: %w", workers, resp.Err)
			}
			results += len(resp.Result.Facilities)
		}
		wall := time.Since(start).Seconds()
		stats := net.Stats()
		net.Pool().ResetStats()
		n := float64(len(reqs))
		pt.Rows = append(pt.Rows, Row{
			Algo:       fmt.Sprintf("workers=%d", workers),
			QPS:        n / wall,
			SimSeconds: wall / n,
			CPUSeconds: exec.Stats().MeanLatency().Seconds(),
			PhysIO:     float64(stats.Physical) / n,
			LogicalIO:  float64(stats.Logical) / n,
			ResultSize: float64(results) / n,
		})
	}
	return []Point{pt}, nil
}
