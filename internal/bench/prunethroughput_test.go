package bench

import (
	"strings"
	"testing"
)

// The pruning experiment must produce a point per density×kind cell with an
// unpruned and a pruned row answering identically (the index is equivalence-
// tested, not an approximation), deterministic expanded-node counts across
// runs (the regression gate holds them tightly, so nondeterminism here would
// flap CI), and a real cut on the within points.
func TestPruneThroughputExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("measured experiment")
	}
	points, err := runPruneThroughput(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 6 {
		t.Fatalf("points = %d, want 6 (2 densities x 3 kinds)", len(points))
	}
	for _, pt := range points {
		if len(pt.Rows) != 2 {
			t.Fatalf("%s: rows = %d, want 2 (unpruned, pruned)", pt.Param, len(pt.Rows))
		}
		unpruned, pruned := pt.Rows[0], pt.Rows[1]
		if unpruned.Algo != "unpruned" || pruned.Algo != "pruned" {
			t.Fatalf("%s: algos = %q, %q", pt.Param, unpruned.Algo, pruned.Algo)
		}
		for _, r := range pt.Rows {
			if r.QPS <= 0 {
				t.Errorf("%s %s: QPS = %f, want > 0", pt.Param, r.Algo, r.QPS)
			}
			if r.Expanded <= 0 {
				t.Errorf("%s %s: expanded nodes = %f, want > 0", pt.Param, r.Algo, r.Expanded)
			}
		}
		if unpruned.ResultSize != pruned.ResultSize {
			t.Errorf("%s: pruned mean result size %f differs from unpruned %f — pruning changed answers",
				pt.Param, pruned.ResultSize, unpruned.ResultSize)
		}
		if pruned.Expanded > unpruned.Expanded {
			t.Errorf("%s: pruned run expanded %f nodes/query > unpruned %f",
				pt.Param, pruned.Expanded, unpruned.Expanded)
		}
		if strings.Contains(pt.Param, "within") && pruned.Expanded >= unpruned.Expanded {
			t.Errorf("%s: within must show a real cut, got %f vs %f",
				pt.Param, pruned.Expanded, unpruned.Expanded)
		}
	}

	// Determinism: the expanded-node figures must reproduce exactly.
	again, err := runPruneThroughput(tiny())
	if err != nil {
		t.Fatal(err)
	}
	for i, pt := range points {
		for j, r := range pt.Rows {
			if got := again[i].Rows[j]; got.Expanded != r.Expanded || got.Pruned != r.Pruned {
				t.Errorf("%s %s: expanded/pruned %f/%f on rerun, want %f/%f",
					pt.Param, r.Algo, got.Expanded, got.Pruned, r.Expanded, r.Pruned)
			}
		}
	}
}
