package bench

import (
	"encoding/json"
	"fmt"
	"os"
)

// ReadReport loads a JSON report written by mcnbench -json (a committed
// BENCH_*.json baseline or a fresh run).
func ReadReport(path string) (Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return Report{}, fmt.Errorf("bench: open report: %w", err)
	}
	defer f.Close()
	var r Report
	if err := json.NewDecoder(f).Decode(&r); err != nil {
		return Report{}, fmt.Errorf("bench: decode report %s: %w", path, err)
	}
	return r, nil
}

// CompareOptions tunes the regression gate.
type CompareOptions struct {
	// QPSTolerance is the allowed fractional throughput drop before a row is
	// a regression (0.25 = fail when the new QPS is more than 25% below the
	// baseline). Zero selects the default 0.25; a negative value means zero
	// tolerance (any drop fails).
	QPSTolerance float64
	// IOTolerance is the allowed fractional physical-I/O growth (same
	// workload, seed and pool configuration ⇒ page counts are near-
	// deterministic, so this catches cache-efficiency regressions machine-
	// independently). Zero selects the default 0.25; a negative value means
	// zero tolerance.
	IOTolerance float64
}

func (o *CompareOptions) defaults() {
	if o.QPSTolerance == 0 {
		o.QPSTolerance = 0.25
	}
	if o.QPSTolerance < 0 {
		o.QPSTolerance = 0
	}
	if o.IOTolerance == 0 {
		o.IOTolerance = 0.25
	}
	if o.IOTolerance < 0 {
		o.IOTolerance = 0
	}
}

// Delta is one baseline/current row pair for a metric the gate watches.
type Delta struct {
	Experiment string
	Param      string
	Algo       string
	Metric     string // "qps", "phys_io", "io_retries", "expanded" or "missing"
	Base       float64
	New        float64
	// Change is the fractional change, positive when the metric grew
	// ((new-base)/base).
	Change float64
	// Regression marks deltas beyond the configured tolerance.
	Regression bool
}

// String renders a delta as one report line.
func (d Delta) String() string {
	verdict := "ok"
	if d.Regression {
		verdict = "REGRESSION"
	}
	if d.Metric == "missing" {
		return fmt.Sprintf("%-11s %-18s %-10s %-8s baseline row missing from new report        %s",
			d.Experiment, d.Param, d.Algo, d.Metric, verdict)
	}
	return fmt.Sprintf("%-11s %-18s %-10s %-8s %12.2f -> %12.2f  %+7.1f%%  %s",
		d.Experiment, d.Param, d.Algo, d.Metric, d.Base, d.New, 100*d.Change, verdict)
}

// CompareReports matches the baseline's rows against cur (by experiment id,
// point parameter and algorithm label) and evaluates every shared QPS and
// physical-I/O measurement against the tolerances. Rows present in the
// baseline but absent from cur are regressions (a silently dropped
// measurement must not pass the gate); rows only in cur are ignored (new
// experiments are allowed to appear).
func CompareReports(base, cur Report, opts CompareOptions) []Delta {
	opts.defaults()
	curRows := make(map[string]Row)
	for _, exp := range cur.Results {
		for _, pt := range exp.Points {
			for _, row := range pt.Rows {
				curRows[exp.ID+"\x00"+pt.Param+"\x00"+row.Algo] = row
			}
		}
	}
	var out []Delta
	for _, exp := range base.Results {
		for _, pt := range exp.Points {
			for _, row := range pt.Rows {
				now, ok := curRows[exp.ID+"\x00"+pt.Param+"\x00"+row.Algo]
				if !ok {
					out = append(out, Delta{Experiment: exp.ID, Param: pt.Param, Algo: row.Algo,
						Metric: "missing", Regression: true})
					continue
				}
				// A metric the baseline has but the new run zeroed is a
				// regression, not a skip: a gate that goes green because the
				// measurement vanished is worse than a red one.
				if row.QPS > 0 {
					change := (now.QPS - row.QPS) / row.QPS
					out = append(out, Delta{Experiment: exp.ID, Param: pt.Param, Algo: row.Algo,
						Metric: "qps", Base: row.QPS, New: now.QPS, Change: change,
						Regression: now.QPS <= 0 || change < -opts.QPSTolerance})
				}
				if row.PhysIO > 0 {
					change := (now.PhysIO - row.PhysIO) / row.PhysIO
					out = append(out, Delta{Experiment: exp.ID, Param: pt.Param, Algo: row.Algo,
						Metric: "phys_io", Base: row.PhysIO, New: now.PhysIO, Change: change,
						Regression: now.PhysIO <= 0 || change > opts.IOTolerance})
				}
				// Retry growth is gated like physical I/O: with a seeded fault
				// schedule the retry count is near-deterministic, so a jump
				// means the retry layer started re-reading more than the
				// backoff schedule intends. A drop to zero is equally a
				// regression — the measurement (or injection) vanished.
				if row.IORetries > 0 {
					change := (now.IORetries - row.IORetries) / row.IORetries
					out = append(out, Delta{Experiment: exp.ID, Param: pt.Param, Algo: row.Algo,
						Metric: "io_retries", Base: row.IORetries, New: now.IORetries, Change: change,
						Regression: now.IORetries <= 0 || change > opts.IOTolerance})
				}
				// Expanded-node counts are seed-deterministic (pure graph
				// search, no hardware in the loop), so growth past the I/O
				// tolerance means the pruning index — or the expansion itself
				// — started doing more work. A count that vanishes is the
				// measurement disappearing, equally a regression.
				if row.Expanded > 0 {
					change := (now.Expanded - row.Expanded) / row.Expanded
					out = append(out, Delta{Experiment: exp.ID, Param: pt.Param, Algo: row.Algo,
						Metric: "expanded", Base: row.Expanded, New: now.Expanded, Change: change,
						Regression: now.Expanded <= 0 || change > opts.IOTolerance})
				}
			}
		}
	}
	return out
}

// Regressions filters deltas down to the failures.
func Regressions(deltas []Delta) []Delta {
	var out []Delta
	for _, d := range deltas {
		if d.Regression {
			out = append(out, d)
		}
	}
	return out
}
