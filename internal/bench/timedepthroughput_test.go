package bench

import "testing"

// The time-dependent throughput experiment must produce one point per
// interval count with a snapshot row and an overlay row, both answering
// identically (same mean result size — the overlay is an equivalence-tested
// fast path, not an approximation) and with positive QPS.
func TestTimedepThroughputExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("measured experiment")
	}
	points, err := runTimedepThroughput(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(timedepIntervalSweep) {
		t.Fatalf("points = %d, want %d", len(points), len(timedepIntervalSweep))
	}
	for _, pt := range points {
		if len(pt.Rows) != 2 {
			t.Fatalf("%s: rows = %d, want 2 (snapshot, overlay)", pt.Param, len(pt.Rows))
		}
		snapshot, overlay := pt.Rows[0], pt.Rows[1]
		if snapshot.Algo != "snapshot" || overlay.Algo != "overlay" {
			t.Fatalf("%s: algos = %q, %q", pt.Param, snapshot.Algo, overlay.Algo)
		}
		for _, r := range pt.Rows {
			if r.QPS <= 0 {
				t.Errorf("%s %s: QPS = %f, want > 0", pt.Param, r.Algo, r.QPS)
			}
		}
		if snapshot.ResultSize != overlay.ResultSize {
			t.Errorf("%s: overlay mean result size %f differs from snapshot %f — the fast path changed answers",
				pt.Param, overlay.ResultSize, snapshot.ResultSize)
		}
	}
}
