package bench

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"time"

	"mcn"
	"mcn/internal/cluster"
	"mcn/internal/serve"
	"mcn/internal/storage"
)

// The cluster-throughput experiment measures the gateway's horizontal
// scaling: the same single-location request stream is driven through
// mcngateway's handler fronting 1, 2 and 4 in-process mcnserve replicas,
// each replica paced by its own simulated disk (LatencyDevice). The device
// is the bottleneck — each replica can absorb clusterQueueDepth concurrent
// page reads of clusterReadLatency each — so adding replicas must raise the
// gateway's QPS near-linearly; a routing or failover regression (requests
// piling onto one replica, retries burning capacity) flattens the curve.
// Both routing policies run at every backend count: hash shows cache/pool
// affinity, least-inflight shows pure load spreading.
var (
	// clusterBackendCounts is the replica-count axis.
	clusterBackendCounts = []int{1, 2, 4}
	// clusterReadLatency/clusterQueueDepth pace each replica's device; the
	// unit test shrinks the latency to keep the suite fast.
	clusterReadLatency = 250 * time.Microsecond
	clusterQueueDepth  = 8
	// clusterClients is the closed-loop client count driving the gateway —
	// enough to keep 4 replicas' worker slots full with requests queued
	// behind them.
	clusterClients = 32
	// clusterBuffer keeps the replica pools small so queries stay
	// device-bound after warmup (a big pool would turn the experiment into
	// a CPU benchmark where in-process replicas share one machine).
	clusterBuffer = 0.02
	// clusterWorkers pins each replica's executor parallelism.
	clusterWorkers = 4
	// clusterMinWall is the measurement window per row: clients cycle the
	// request stream until it elapses, then cancel what is still in flight.
	// Long enough that even the slowest row completes a three-digit request
	// count — the gate's QPS tolerance needs counting statistics, not luck.
	clusterMinWall = 2 * time.Second
	// clusterMinURIs pads the distinct request set so consistent hashing has
	// enough keys to spread across 4 replicas. Keys carry very different
	// expansion costs, so the count must be high enough that no replica
	// draws an outsized share of the heavy ones by luck.
	clusterMinURIs = 192
)

// runClusterThroughput measures gateway queries/sec versus backend count
// under both routing policies, over one shared dataset image.
func runClusterThroughput(cfg Config) ([]Point, error) {
	cfg.defaults()
	w := cfg.DefaultWorkload()
	// The experiment measures routing, not expansion cost: half the default
	// workload keeps each device-paced query cheap enough that the full
	// 1/2/4-replica sweep stays inside a CI smoke's budget.
	w.Nodes /= 2
	w.Facilities /= 2
	ds, err := BuildDataset(w)
	if err != nil {
		return nil, err
	}

	// The stream is k-nearest queries only: their expansions are short and
	// near-uniform in cost, so a row's QPS is set by device capacity and
	// routing, not by which replica happened to draw the heaviest skyline.
	// Pad to clusterMinURIs with DISTINCT queries (cost type and k vary per
	// round): consistent hashing spreads distinct keys, so duplicates would
	// land on one replica and understate the hash policy's scaling.
	uris := make([]string, 0, clusterMinURIs)
	for r := 0; len(uris) < clusterMinURIs; r++ {
		for i, q := range ds.Queries {
			t := strconv.FormatFloat(q.T, 'g', -1, 64)
			uris = append(uris,
				fmt.Sprintf("/nearest?edge=%d&t=%s&cost=%d&k=%d", q.Edge, t, (i+r)%w.D, 1+r%4))
		}
	}

	var points []Point
	for _, n := range clusterBackendCounts {
		pt := Point{Param: fmt.Sprintf("backends=%d", n)}
		for _, policy := range []cluster.Policy{cluster.PolicyHash, cluster.PolicyLeastInflight} {
			row, err := measureCluster(ds, w, n, policy, uris)
			if err != nil {
				return nil, fmt.Errorf("clusterthroughput backends=%d %s: %w", n, policy, err)
			}
			pt.Rows = append(pt.Rows, row)
		}
		points = append(points, pt)
	}
	return points, nil
}

// measureCluster stands up n fresh replicas (each on its own latency-paced
// view of the dataset device) behind one gateway and drives the request
// stream through it with clusterClients closed-loop clients.
func measureCluster(ds *Dataset, w Workload, n int, policy cluster.Policy, uris []string) (Row, error) {
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		dev := storage.NewLatencyDevice(ds.Dev, clusterReadLatency, clusterQueueDepth)
		net, err := mcn.OpenDeviceOptions(dev, clusterBuffer, mcn.PoolOptions{Shards: 2})
		if err != nil {
			return Row{}, err
		}
		defer net.Close()
		srv := serve.New(net, serve.Config{Workers: clusterWorkers, Timeout: time.Minute})
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		urls[i] = ts.URL
	}
	m, err := cluster.NewMembership(urls, time.Second)
	if err != nil {
		return Row{}, err
	}
	gw := cluster.NewGateway(m, policy, time.Minute)
	gts := httptest.NewServer(gw.Handler())
	defer gts.Close()

	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConnsPerHost = clusterClients
	client := &http.Client{Transport: tr}

	do := func(ctx context.Context, uri string) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, gts.URL+uri, nil)
		if err != nil {
			return err
		}
		resp, err := client.Do(req)
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // draining for keep-alive
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("GET %s: status %d", uri, resp.StatusCode)
		}
		return nil
	}

	// A brief concurrent warmup settles connections and scratch pools (the
	// 2% replica pools retain almost nothing, so cold and steady state read
	// alike; sequential warmup would cost seconds per device-paced query).
	var warmWG sync.WaitGroup
	warmErr := make([]error, min(8, len(uris)))
	for i := range warmErr {
		warmWG.Add(1)
		go func(i int) {
			defer warmWG.Done()
			warmErr[i] = do(context.Background(), uris[i])
		}(i)
	}
	warmWG.Wait()
	for _, err := range warmErr {
		if err != nil {
			return Row{}, err
		}
	}

	// Continuous closed loop: every client cycles the stream from its own
	// offset until the window elapses, so no worker slot idles behind a
	// straggler the way a pass barrier would leave it. At the deadline the
	// shared context cancels whatever is still queued or running — draining
	// 32 in-flight device-paced queries would otherwise dominate the row's
	// wall clock without adding signal.
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		total    int64
	)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	timer := time.AfterFunc(clusterMinWall, cancel)
	defer timer.Stop()
	start := time.Now()
	for c := 0; c < clusterClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			done := int64(0)
			for i := c * len(uris) / clusterClients; ; i++ {
				if err := do(ctx, uris[i%len(uris)]); err != nil {
					if ctx.Err() == nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						mu.Unlock()
					}
					break
				}
				done++
			}
			mu.Lock()
			total += done
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	wall := time.Since(start).Seconds()
	if firstErr != nil {
		return Row{}, firstErr
	}
	nq := float64(total)
	return Row{
		Algo:       policy.String(),
		QPS:        nq / wall,
		SimSeconds: wall / nq,
	}, nil
}
