package bench

import (
	"math"
	"math/rand"
	"testing"
)

// The Zipf sampler must cover all of [0, n), be skewed (a top-popularity
// index dominates a tail index), and put the hottest keys where the
// permutation maps rank 1 — not always at index 0.
func TestZipfStream(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n, length = 16, 100_000
	stream := zipfStream(rng, n, length, 1.0)
	counts := make([]int, n)
	for _, idx := range stream {
		if idx < 0 || idx >= n {
			t.Fatalf("index %d out of range [0, %d)", idx, n)
		}
		counts[idx]++
	}
	max, min := 0, length
	for _, c := range counts {
		if c > max {
			max = c
		}
		if c < min {
			min = c
		}
	}
	if min == 0 {
		t.Error("some index never sampled — the sampler truncates the tail")
	}
	// Zipf s=1 over 16 ranks: rank 1 carries 1/H_16 ≈ 29.6% of the mass and
	// rank 16 about 1.9%, a ~16x ratio. Even with sampling noise the max/min
	// ratio must be clearly skewed, far beyond a uniform distribution's ~1.
	if ratio := float64(max) / float64(min); ratio < 8 {
		t.Errorf("max/min frequency ratio = %.1f, want >= 8 (Zipf skew lost)", ratio)
	}
	// The hottest key's observed share should be near 1/H_n (rank 1's Zipf
	// probability): H_16 ≈ 3.38, so ≈ 29.6%.
	h := 0.0
	for rank := 1; rank <= n; rank++ {
		h += 1 / float64(rank)
	}
	if share := float64(max) / float64(length); math.Abs(share-1/h) > 0.05 {
		t.Errorf("hottest share = %.3f, want ≈ %.3f", share, 1/h)
	}
}

// The result-cache throughput experiment must produce one point per worker
// count with a nocache row and a cache row, both answering identically (the
// cache is equivalence-tested, not an approximation), with positive QPS and
// the cached rows faster — this PR's acceptance metric (>= 3x at 4+ workers)
// is asserted at a conservative 2x here so a loaded CI machine cannot flake
// the suite while a disabled or thrashing cache still fails.
func TestCacheThroughputExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("measured experiment")
	}
	points, err := runCacheThroughput(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(cacheWorkers) {
		t.Fatalf("points = %d, want %d", len(points), len(cacheWorkers))
	}
	for _, pt := range points {
		if len(pt.Rows) != 2 {
			t.Fatalf("%s: rows = %d, want 2 (nocache, cache)", pt.Param, len(pt.Rows))
		}
		nocache, cache := pt.Rows[0], pt.Rows[1]
		if nocache.Algo != "nocache" || cache.Algo != "cache" {
			t.Fatalf("%s: algos = %q, %q", pt.Param, nocache.Algo, cache.Algo)
		}
		for _, r := range pt.Rows {
			if r.QPS <= 0 {
				t.Errorf("%s %s: QPS = %f, want > 0", pt.Param, r.Algo, r.QPS)
			}
		}
		if nocache.ResultSize != cache.ResultSize {
			t.Errorf("%s: cached mean result size %f differs from uncached %f — the cache changed answers",
				pt.Param, cache.ResultSize, nocache.ResultSize)
		}
		if cache.QPS < 2*nocache.QPS {
			t.Errorf("%s: cached QPS %.0f < 2x uncached %.0f — the cache is not serving hits",
				pt.Param, cache.QPS, nocache.QPS)
		}
	}
}
