package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func report(qps, physIO float64) Report {
	return Report{
		Results: []ExperimentResult{{
			ID: "diskthroughput",
			Points: []Point{{
				Param: "workers=8",
				Rows:  []Row{{Algo: "sharded", QPS: qps, PhysIO: physIO}},
			}},
		}},
	}
}

func TestCompareReportsWithinTolerance(t *testing.T) {
	deltas := CompareReports(report(100, 50), report(80, 60), CompareOptions{})
	if len(deltas) != 2 {
		t.Fatalf("deltas = %d, want 2 (qps + phys_io)", len(deltas))
	}
	if regs := Regressions(deltas); len(regs) != 0 {
		t.Errorf("-20%% QPS and +20%% IO within 25%% tolerance flagged: %v", regs)
	}
}

func TestCompareReportsQPSRegression(t *testing.T) {
	deltas := CompareReports(report(100, 50), report(70, 50), CompareOptions{})
	regs := Regressions(deltas)
	if len(regs) != 1 || regs[0].Metric != "qps" {
		t.Fatalf("want one qps regression, got %v", regs)
	}
	if regs[0].Change > -0.25 {
		t.Errorf("change = %f, want <= -0.30", regs[0].Change)
	}
	if !strings.Contains(regs[0].String(), "REGRESSION") {
		t.Errorf("String() = %q, want REGRESSION marker", regs[0].String())
	}
}

func TestCompareReportsIORegression(t *testing.T) {
	deltas := CompareReports(report(100, 50), report(100, 80), CompareOptions{})
	regs := Regressions(deltas)
	if len(regs) != 1 || regs[0].Metric != "phys_io" {
		t.Fatalf("want one phys_io regression, got %v", regs)
	}
}

func TestCompareReportsCustomTolerance(t *testing.T) {
	// A 10% drop passes the default gate but fails a 5% one.
	base, cur := report(100, 50), report(90, 50)
	if regs := Regressions(CompareReports(base, cur, CompareOptions{})); len(regs) != 0 {
		t.Errorf("10%% drop failed the default 25%% gate: %v", regs)
	}
	if regs := Regressions(CompareReports(base, cur, CompareOptions{QPSTolerance: 0.05})); len(regs) != 1 {
		t.Errorf("10%% drop passed a 5%% gate: %v", regs)
	}
}

func TestCompareReportsMissingRow(t *testing.T) {
	cur := report(100, 50)
	cur.Results[0].Points[0].Rows[0].Algo = "renamed"
	regs := Regressions(CompareReports(report(100, 50), cur, CompareOptions{}))
	if len(regs) != 1 || regs[0].Metric != "missing" {
		t.Fatalf("want one missing-row regression, got %v", regs)
	}
}

func TestCompareReportsIgnoresExtraRows(t *testing.T) {
	cur := report(100, 50)
	cur.Results = append(cur.Results, ExperimentResult{
		ID:     "brandnew",
		Points: []Point{{Param: "p", Rows: []Row{{Algo: "x", QPS: 1}}}},
	})
	if regs := Regressions(CompareReports(report(100, 50), cur, CompareOptions{})); len(regs) != 0 {
		t.Errorf("extra experiment in the new report flagged: %v", regs)
	}
}

func TestReadReportRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	want := report(123, 45)
	want.Config = Config{Scale: 0.05, Queries: 4, Seed: 1}
	if err := WriteJSON(f, want); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Config != want.Config {
		t.Errorf("config = %+v, want %+v", got.Config, want.Config)
	}
	if len(got.Results) != 1 || got.Results[0].Points[0].Rows[0].QPS != 123 {
		t.Errorf("results round-trip mismatch: %+v", got.Results)
	}
	if _, err := ReadReport(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("ReadReport of a missing file succeeded")
	}
}

func TestCompareReportsZeroedMetricIsRegression(t *testing.T) {
	// A measurement the baseline has but the new run zeroed must fail the
	// gate, not silently drop out of it.
	regs := Regressions(CompareReports(report(100, 50), report(0, 50), CompareOptions{}))
	if len(regs) != 1 || regs[0].Metric != "qps" || regs[0].New != 0 {
		t.Fatalf("want one qps regression for the zeroed metric, got %v", regs)
	}
	regs = Regressions(CompareReports(report(100, 50), report(100, 0), CompareOptions{}))
	if len(regs) != 1 || regs[0].Metric != "phys_io" {
		t.Fatalf("want one phys_io regression for the zeroed metric, got %v", regs)
	}
}

func TestCompareReportsExpandedNodes(t *testing.T) {
	// Expanded-node growth past the I/O tolerance is a regression (the count
	// is seed-deterministic), as is the count vanishing; shrinkage is an
	// improvement and passes.
	withExpanded := func(qps, expanded float64) Report {
		r := report(qps, 0)
		r.Results[0].Points[0].Rows[0].Expanded = expanded
		return r
	}
	base := withExpanded(100, 1000)
	if regs := Regressions(CompareReports(base, withExpanded(100, 1200), CompareOptions{})); len(regs) != 0 {
		t.Errorf("+20%% expanded within 25%% tolerance flagged: %v", regs)
	}
	if regs := Regressions(CompareReports(base, withExpanded(100, 400), CompareOptions{})); len(regs) != 0 {
		t.Errorf("expanded-node improvement flagged: %v", regs)
	}
	regs := Regressions(CompareReports(base, withExpanded(100, 1500), CompareOptions{}))
	if len(regs) != 1 || regs[0].Metric != "expanded" {
		t.Fatalf("want one expanded regression for +50%% growth, got %v", regs)
	}
	regs = Regressions(CompareReports(base, withExpanded(100, 0), CompareOptions{}))
	if len(regs) != 1 || regs[0].Metric != "expanded" || regs[0].New != 0 {
		t.Fatalf("want one expanded regression for the zeroed metric, got %v", regs)
	}
}

func TestCompareReportsNegativeToleranceIsStrict(t *testing.T) {
	// Negative tolerances mean zero slack: any drop or growth fails.
	opts := CompareOptions{QPSTolerance: -1, IOTolerance: -1}
	regs := Regressions(CompareReports(report(100, 50), report(99.9, 50.1), opts))
	if len(regs) != 2 {
		t.Fatalf("strict mode missed regressions: %v", regs)
	}
	if regs := Regressions(CompareReports(report(100, 50), report(100, 50), opts)); len(regs) != 0 {
		t.Errorf("strict mode flagged identical reports: %v", regs)
	}
}
