package bench

import (
	"fmt"

	"mcn/internal/gen"
)

// facilitySweep is the |P| axis of Figs. 8(a) and 10(a): 25K…200K at paper
// scale, multiplied by cfg.Scale.
var facilitySweep = []int{25_000, 50_000, 100_000, 150_000, 200_000}

// dSweep is the cost-type axis of Figs. 8(b) and 10(b).
var dSweep = []int{2, 3, 4, 5}

// distSweep is the cost-distribution axis of Figs. 9(a) and 11(a).
var distSweep = []gen.Distribution{gen.AntiCorrelated, gen.Independent, gen.Correlated}

// bufferSweep is the cache-size axis of Figs. 9(b) and 11(b): percentages of
// the database pages.
var bufferSweep = []float64{0, 0.005, 0.01, 0.015, 0.02}

// kSweep is the axis of Fig. 12.
var kSweep = []int{1, 2, 4, 8, 16}

// All returns the experiments regenerating every figure of Sec. VI, in paper
// order.
func All() []Experiment {
	return []Experiment{
		{
			ID:    "fig8a",
			Title: "Fig. 8(a): skyline processing time vs |P|",
			Run: func(cfg Config) ([]Point, error) {
				cfg.defaults()
				params := make([]string, len(facilitySweep))
				for i, p := range facilitySweep {
					params[i] = fmt.Sprintf("|P|=%dK", p/1000)
				}
				return sweep(cfg, skylineQuery, params, func(w *Workload, i int) {
					w.Facilities = int(float64(facilitySweep[i]) * cfg.Scale)
				})
			},
		},
		{
			ID:    "fig8b",
			Title: "Fig. 8(b): skyline processing time vs number of cost types d",
			Run: func(cfg Config) ([]Point, error) {
				params := make([]string, len(dSweep))
				for i, d := range dSweep {
					params[i] = fmt.Sprintf("d=%d", d)
				}
				return sweep(cfg, skylineQuery, params, func(w *Workload, i int) {
					w.D = dSweep[i]
				})
			},
		},
		{
			ID:    "fig9a",
			Title: "Fig. 9(a): skyline processing time vs edge-cost distribution",
			Run: func(cfg Config) ([]Point, error) {
				params := make([]string, len(distSweep))
				for i, d := range distSweep {
					params[i] = d.String()
				}
				return sweep(cfg, skylineQuery, params, func(w *Workload, i int) {
					w.Dist = distSweep[i]
				})
			},
		},
		{
			ID:    "fig9b",
			Title: "Fig. 9(b): skyline processing time vs buffer size",
			Run: func(cfg Config) ([]Point, error) {
				params := make([]string, len(bufferSweep))
				for i, b := range bufferSweep {
					params[i] = fmt.Sprintf("buffer=%.1f%%", b*100)
				}
				return sweep(cfg, skylineQuery, params, func(w *Workload, i int) {
					w.Buffer = bufferSweep[i]
				})
			},
		},
		{
			ID:    "fig10a",
			Title: "Fig. 10(a): top-k processing time vs |P|",
			Run: func(cfg Config) ([]Point, error) {
				cfg.defaults()
				params := make([]string, len(facilitySweep))
				for i, p := range facilitySweep {
					params[i] = fmt.Sprintf("|P|=%dK", p/1000)
				}
				return sweep(cfg, topkQuery, params, func(w *Workload, i int) {
					w.Facilities = int(float64(facilitySweep[i]) * cfg.Scale)
				})
			},
		},
		{
			ID:    "fig10b",
			Title: "Fig. 10(b): top-k processing time vs number of cost types d",
			Run: func(cfg Config) ([]Point, error) {
				params := make([]string, len(dSweep))
				for i, d := range dSweep {
					params[i] = fmt.Sprintf("d=%d", d)
				}
				return sweep(cfg, topkQuery, params, func(w *Workload, i int) {
					w.D = dSweep[i]
				})
			},
		},
		{
			ID:    "fig11a",
			Title: "Fig. 11(a): top-k processing time vs edge-cost distribution",
			Run: func(cfg Config) ([]Point, error) {
				params := make([]string, len(distSweep))
				for i, d := range distSweep {
					params[i] = d.String()
				}
				return sweep(cfg, topkQuery, params, func(w *Workload, i int) {
					w.Dist = distSweep[i]
				})
			},
		},
		{
			ID:    "fig11b",
			Title: "Fig. 11(b): top-k processing time vs buffer size",
			Run: func(cfg Config) ([]Point, error) {
				params := make([]string, len(bufferSweep))
				for i, b := range bufferSweep {
					params[i] = fmt.Sprintf("buffer=%.1f%%", b*100)
				}
				return sweep(cfg, topkQuery, params, func(w *Workload, i int) {
					w.Buffer = bufferSweep[i]
				})
			},
		},
		{
			ID:    "fig12",
			Title: "Fig. 12: top-k processing time vs k",
			Run: func(cfg Config) ([]Point, error) {
				params := make([]string, len(kSweep))
				for i, k := range kSweep {
					params[i] = fmt.Sprintf("k=%d", k)
				}
				return sweep(cfg, topkQuery, params, func(w *Workload, i int) {
					w.K = kSweep[i]
				})
			},
		},
		{
			ID:    "ablation",
			Title: "Ablation: Sec. IV-A enhancements on vs off (skyline, defaults)",
			Run:   runAblation,
		},
		{
			ID:    "baseline",
			Title: "Baseline: naive d-expansions method vs LSA/CEA (skyline, defaults)",
			Run:   runBaseline,
		},
		{
			ID:    "throughput",
			Title: "Throughput: concurrent queries/sec vs executor worker count (CEA, defaults)",
			Run:   runThroughput,
		},
		{
			ID:    "memthroughput",
			Title: "In-memory throughput: flat CSR fast path vs hash-map source (queries/sec)",
			Run:   runMemThroughput,
		},
		{
			ID:    "diskthroughput",
			Title: "Disk throughput: sharded clock pool vs single-mutex LRU on a latency-bound device (queries/sec)",
			Run:   runDiskThroughput,
		},
		{
			ID:    "timedepthroughput",
			Title: "Time-dependent throughput: flat overlay vs per-query snapshot rebuild (queries/sec, 4 workers)",
			Run:   runTimedepThroughput,
		},
		{
			ID:    "cachethroughput",
			Title: "Result-cache throughput: Zipfian (s=1.0) request stream with vs without the serving-layer cache (queries/sec)",
			Run:   runCacheThroughput,
		},
		{
			ID:    "faultthroughput",
			Title: "Fault throughput: clean device vs 5% injected transient read faults through the retry layer (queries/sec, retries/query)",
			Run:   runFaultThroughput,
		},
		{
			ID:    "prunethroughput",
			Title: "Pruning throughput: lower-bound index on vs off for top-k and budget queries (queries/sec, expanded nodes/query)",
			Run:   runPruneThroughput,
		},
		{
			ID:    "clusterthroughput",
			Title: "Cluster throughput: gateway queries/sec vs replica count (1/2/4 device-paced backends, hash and least-inflight routing)",
			Run:   runClusterThroughput,
		},
		{
			ID:    "soakthroughput",
			Title: "Soak throughput: /v1/query binary vs JSON codec under sustained load (queries/sec, p50/p99/p999 latency)",
			Run:   runSoakThroughput,
		},
	}
}

// Find returns the experiment with the given id.
func Find(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
