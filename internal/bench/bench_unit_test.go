package bench

import (
	"bytes"
	"strings"
	"testing"

	"mcn/internal/gen"
)

// tiny returns a configuration small enough for unit tests.
func tiny() Config {
	return Config{Scale: 0.01, Queries: 3, LatencyMS: 1, Seed: 7}
}

func TestBuildDataset(t *testing.T) {
	cfg := tiny()
	ds, err := BuildDataset(cfg.DefaultWorkload())
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Queries) != cfg.Queries {
		t.Errorf("queries = %d, want %d", len(ds.Queries), cfg.Queries)
	}
	if len(ds.Aggs) != cfg.Queries {
		t.Errorf("aggs = %d, want %d", len(ds.Aggs), cfg.Queries)
	}
	if ds.Dev.NumPages() == 0 {
		t.Error("dataset device is empty")
	}
}

func TestAllExperimentsRegistered(t *testing.T) {
	want := []string{"fig8a", "fig8b", "fig9a", "fig9b", "fig10a", "fig10b", "fig11a", "fig11b", "fig12", "ablation", "baseline", "throughput", "memthroughput", "diskthroughput", "timedepthroughput", "cachethroughput", "faultthroughput", "prunethroughput", "clusterthroughput", "soakthroughput"}
	got := All()
	if len(got) != len(want) {
		t.Fatalf("have %d experiments, want %d", len(got), len(want))
	}
	for i, id := range want {
		if got[i].ID != id {
			t.Errorf("experiment %d = %s, want %s", i, got[i].ID, id)
		}
		if _, ok := Find(id); !ok {
			t.Errorf("Find(%q) failed", id)
		}
	}
	if _, ok := Find("nope"); ok {
		t.Error("Find accepted an unknown id")
	}
}

// fastDisk shrinks the disk-throughput device simulation so unit tests do
// not pay real sleeps; the restore runs via t.Cleanup.
func fastDisk(t *testing.T) {
	t.Helper()
	latency, depth, workers := diskReadLatency, diskQueueDepth, diskWorkers
	diskReadLatency, diskQueueDepth, diskWorkers = 0, 64, []int{1, 2}
	t.Cleanup(func() { diskReadLatency, diskQueueDepth, diskWorkers = latency, depth, workers })
}

// Each experiment must run end-to-end on a tiny config and produce rows with
// positive measurements.
func TestExperimentsRunTiny(t *testing.T) {
	cfg := tiny()
	fastDisk(t)
	for _, exp := range All() {
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			points, err := exp.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(points) == 0 {
				t.Fatal("no points")
			}
			for _, pt := range points {
				if len(pt.Rows) < 2 {
					t.Fatalf("%s: %d rows", pt.Param, len(pt.Rows))
				}
				for _, r := range pt.Rows {
					// The in-memory experiments perform no page I/O at all,
					// and the cluster experiment measures HTTP-level QPS
					// (its replicas' page I/O stays inside their own pools);
					// everything else must report it.
					noIO := exp.ID == "memthroughput" || exp.ID == "timedepthroughput" ||
						exp.ID == "cachethroughput" || exp.ID == "prunethroughput" ||
						exp.ID == "clusterthroughput" || exp.ID == "soakthroughput"
					if !noIO && (r.PhysIO <= 0 || r.LogicalIO <= 0) {
						t.Errorf("%s/%s: non-positive I/O %+v", pt.Param, r.Algo, r)
					}
					if r.SimSeconds <= 0 {
						t.Errorf("%s/%s: non-positive sim time", pt.Param, r.Algo)
					}
				}
			}
		})
	}
}

// CEA must beat LSA on physical I/O at the default point of the tiny config.
func TestCEABeatsLSAOnIO(t *testing.T) {
	cfg := tiny()
	cfg.Queries = 5
	w := cfg.DefaultWorkload()
	ds, err := BuildDataset(w)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := runPoint("defaults", w, skylineQuery, cfg.LatencyMS)
	if err != nil {
		t.Fatal(err)
	}
	_ = ds
	lsa, cea := pt.Rows[0], pt.Rows[1]
	if cea.PhysIO >= lsa.PhysIO {
		t.Errorf("CEA phys I/O (%.1f) not below LSA (%.1f)", cea.PhysIO, lsa.PhysIO)
	}
}

func TestWriteTableAndCSV(t *testing.T) {
	exp := Experiment{ID: "x", Title: "Test experiment"}
	points := []Point{{
		Param: "p=1",
		Rows: []Row{
			{Algo: "LSA", SimSeconds: 2, PhysIO: 100, LogicalIO: 200, CPUSeconds: 0.01, ResultSize: 3},
			{Algo: "CEA", SimSeconds: 1, PhysIO: 50, LogicalIO: 80, CPUSeconds: 0.005, ResultSize: 3},
		},
	}}
	var tbl bytes.Buffer
	WriteTable(&tbl, exp, points)
	out := tbl.String()
	for _, want := range []string{"Test experiment", "LSA", "CEA", "2.00x"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	var csv bytes.Buffer
	WriteCSV(&csv, exp, points, true)
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d, want 3", len(lines))
	}
	if !strings.HasPrefix(lines[0], "experiment,param,algo") {
		t.Errorf("csv header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "x,p=1,LSA") {
		t.Errorf("csv row = %q", lines[1])
	}
}

func TestRatio(t *testing.T) {
	pt := Point{Rows: []Row{{SimSeconds: 3}, {SimSeconds: 1.5}}}
	if r := pt.Ratio(); r != 2 {
		t.Errorf("Ratio = %g, want 2", r)
	}
	if r := (Point{}).Ratio(); r != 0 {
		t.Errorf("empty Ratio = %g, want 0", r)
	}
}

func TestDistributionsCoveredBySweep(t *testing.T) {
	if len(distSweep) != 3 {
		t.Fatal("distribution sweep must cover all three paper distributions")
	}
	seen := map[gen.Distribution]bool{}
	for _, d := range distSweep {
		seen[d] = true
	}
	for _, d := range []gen.Distribution{gen.Independent, gen.Correlated, gen.AntiCorrelated} {
		if !seen[d] {
			t.Errorf("distribution %v missing from sweep", d)
		}
	}
}
