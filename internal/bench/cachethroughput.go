package bench

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"mcn/internal/core"
	"mcn/internal/engine"
	"mcn/internal/flat"
	"mcn/internal/rescache"
)

// cacheWorkers is the parallelism axis of the result-cache experiment. The
// acceptance criterion lives at 4+ workers, where coalescing and shard
// contention both matter; 1 worker shows the raw hit-vs-recompute gap.
var cacheWorkers = []int{1, 4, 8}

// cacheZipfS is the skew exponent of the request popularity distribution.
// s=1.0 is classic Zipf — the canonical model for web query popularity — and
// sits exactly on the boundary math/rand's Zipf generator excludes (it
// requires s > 1), hence the manual inverse-CDF sampler below.
const cacheZipfS = 1.0

// cacheStreamMin is the minimum request-stream length per worker count. The
// cached run serves mostly O(µs) hits, so a short stream would measure timer
// noise instead of throughput.
const cacheStreamMin = 512

// cacheRounds scales the stream with the distinct query count, like the
// other throughput experiments.
const cacheRounds = 8

// zipfStream samples length indices in [0, n) from a Zipf(s) popularity
// distribution by inverse-CDF over the cumulative rank weights 1/rank^s.
// Rank 1 (the hottest key) is mapped through a random permutation so the hot
// queries are not systematically the first-generated ones.
func zipfStream(rng *rand.Rand, n, length int, s float64) []int {
	cum := make([]float64, n)
	total := 0.0
	for rank := 1; rank <= n; rank++ {
		total += 1 / math.Pow(float64(rank), s)
		cum[rank-1] = total
	}
	perm := rng.Perm(n)
	out := make([]int, length)
	for i := range out {
		u := rng.Float64() * total
		out[i] = perm[sort.SearchFloat64s(cum, u)]
	}
	return out
}

// runCacheThroughput measures the serving-layer result cache on a Zipfian
// workload: wall-clock queries/sec for a skewed request stream (distinct
// skyline+top-k queries, popularity ~ Zipf s=1.0) served by the in-memory
// batch executor with and without the result cache, across worker counts.
// Both configurations replay the identical stream; the cache/nocache QPS
// ratio at equal workers is the serving-layer speedup (PR 6's acceptance
// metric: >= 3x at 4+ workers). The warmup pass runs every distinct query
// once on the measured executor, so the cached rows report the steady state
// of a server whose working set is resident — the regime the cache exists
// for; misses and invalidation costs are covered by the unit benchmarks.
func runCacheThroughput(cfg Config) ([]Point, error) {
	cfg.defaults()
	w := cfg.DefaultWorkload()
	ds, err := BuildMemDataset(w)
	if err != nil {
		return nil, err
	}
	src := flat.Compile(ds.Graph)

	distinct := make([]engine.Request, 0, 2*len(ds.Queries))
	for i, q := range ds.Queries {
		distinct = append(distinct,
			engine.Request{Kind: engine.Skyline, Loc: q, Opts: core.Options{Engine: core.CEA}},
			engine.Request{Kind: engine.TopK, Loc: q, Agg: ds.Aggs[i], K: w.K, Opts: core.Options{Engine: core.CEA}},
		)
	}

	length := cacheRounds * len(distinct)
	if length < cacheStreamMin {
		length = cacheStreamMin
	}
	rng := rand.New(rand.NewSource(w.Seed + 41))
	stream := zipfStream(rng, len(distinct), length, cacheZipfS)
	reqs := make([]engine.Request, len(stream))
	for i, idx := range stream {
		reqs[i] = distinct[idx]
	}

	modes := []struct {
		name  string
		cache bool
	}{
		{"nocache", false},
		{"cache", true},
	}

	var points []Point
	for _, workers := range cacheWorkers {
		pt := Point{Param: fmt.Sprintf("workers=%d", workers)}
		for _, m := range modes {
			exec := engine.New(src, engine.Config{Workers: workers})
			if m.cache {
				exec.SetCache(rescache.New(rescache.Options{Entries: rescache.DefaultEntries}))
			}
			// Warmup on the measured executor: populates the scratch pool and,
			// in cache mode, fills the cache with the distinct query set.
			for _, resp := range exec.Execute(context.Background(), distinct) {
				if resp.Err != nil {
					return nil, fmt.Errorf("%s warmup: %w", m.name, resp.Err)
				}
			}
			warm := exec.Stats()
			jobs, results, wall, err := runStream(exec, reqs)
			if err != nil {
				return nil, fmt.Errorf("%s workers=%d: %w", m.name, workers, err)
			}
			total := exec.Stats()
			meanLatency := (total.TotalLatency - warm.TotalLatency).Seconds() /
				float64(total.Queries()-warm.Queries())
			n := float64(jobs)
			pt.Rows = append(pt.Rows, Row{
				Algo:       m.name,
				QPS:        n / wall,
				SimSeconds: wall / n,
				CPUSeconds: meanLatency,
				ResultSize: float64(results) / n,
			})
		}
		points = append(points, pt)
	}
	return points, nil
}
