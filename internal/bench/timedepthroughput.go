package bench

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"mcn/internal/core"
	"mcn/internal/expand"
	"mcn/internal/graph"
	"mcn/internal/timedep"
	"mcn/internal/vec"
)

// timedepIntervalSweep is the x-axis: elementary interval counts of the
// compiled time axis. The snapshot path rebuilds a graph per query
// regardless; the overlay path resolves the interval with a binary search,
// so its QPS should hold flat as intervals grow.
var timedepIntervalSweep = []int{4, 16, 64}

const (
	// timedepWorkers is the concurrency of the measurement (the acceptance
	// figure for the overlay fast path is its speedup at 4 workers).
	timedepWorkers = 4
	timedepRounds  = 4
	// timedepMinJobs floors the per-cell job count so smoke-scale runs (few
	// query locations) still measure sustained throughput.
	timedepMinJobs = 800
	// timedepPeriod is the modelled day; profiles break inside it and query
	// instants are drawn from it.
	timedepPeriod = 24.0
)

// timedepJob is one instant query: location index and query instant.
type timedepJob struct {
	qi int
	at float64
}

// runTimedepThroughput measures the time-dependent fast path: wall-clock
// queries/sec for a mixed skyline+top-k instant-query workload at random
// instants, comparing the legacy snapshot path (rebuild a graph.Graph +
// MemorySource per query — what *OverPeriod ran on before the overlay)
// against the compiled flat overlay, across elementary interval counts.
// The overlay/snapshot ratio at equal workers is the speedup of compiling
// topology once and swapping cost vectors per interval.
func runTimedepThroughput(cfg Config) ([]Point, error) {
	cfg.defaults()
	w := cfg.DefaultWorkload()
	// A slice of the default workload: the snapshot path pays a full graph
	// rebuild per query, so the paper-scale network would measure little
	// beyond allocator throughput.
	w.Nodes /= 8
	w.Facilities /= 8
	ds, err := BuildMemDataset(w)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(w.Seed + 29))
	// Repeat the query set until the job count supports a stable wall-clock
	// figure: the overlay path answers in tens of microseconds, so a
	// smoke-scale query set alone would measure scheduler noise.
	rounds := timedepRounds
	if rounds*len(ds.Queries) < timedepMinJobs {
		rounds = (timedepMinJobs + len(ds.Queries) - 1) / len(ds.Queries)
	}
	jobs := make([]timedepJob, 0, rounds*len(ds.Queries))
	for r := 0; r < rounds; r++ {
		for qi := range ds.Queries {
			jobs = append(jobs, timedepJob{qi: qi, at: rng.Float64() * timedepPeriod})
		}
	}

	var points []Point
	for _, intervals := range timedepIntervalSweep {
		tn, err := profiledNetwork(ds, intervals, rng)
		if err != nil {
			return nil, err
		}
		pt := Point{Param: fmt.Sprintf("intervals=%d", intervals)}
		for _, algo := range []struct {
			name string
			run  func(timedepJob) (int, error)
		}{
			{"snapshot", func(j timedepJob) (int, error) {
				g, err := tn.Snapshot(j.at)
				if err != nil {
					return 0, err
				}
				return runInstantQuery(expand.NewMemorySource(g), ds, j, nil)
			}},
			{"overlay", func(j timedepJob) (int, error) {
				return runInstantQuery(nil, ds, j, tn)
			}},
		} {
			// Warmup compiles the overlay and populates the scratch pool.
			for _, j := range jobs[:min(len(jobs), 2*timedepWorkers)] {
				if _, err := algo.run(j); err != nil {
					return nil, fmt.Errorf("timedep %s warmup: %w", algo.name, err)
				}
			}
			var results int64
			var firstErr atomic.Value
			ch := make(chan timedepJob)
			var wg sync.WaitGroup
			start := time.Now()
			for wk := 0; wk < timedepWorkers; wk++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					// Keep draining after an error so the unbuffered producer
					// below never blocks on departed workers.
					for j := range ch {
						if firstErr.Load() != nil {
							continue
						}
						n, err := algo.run(j)
						if err != nil {
							firstErr.CompareAndSwap(nil, err)
							continue
						}
						atomic.AddInt64(&results, int64(n))
					}
				}()
			}
			for _, j := range jobs {
				ch <- j
			}
			close(ch)
			wg.Wait()
			wall := time.Since(start).Seconds()
			if err, ok := firstErr.Load().(error); ok {
				return nil, fmt.Errorf("timedep %s intervals=%d: %w", algo.name, intervals, err)
			}
			n := float64(len(jobs))
			pt.Rows = append(pt.Rows, Row{
				Algo:       algo.name,
				QPS:        n / wall,
				SimSeconds: wall / n,
				ResultSize: float64(results) / n,
			})
		}
		points = append(points, pt)
	}
	return points, nil
}

// profiledNetwork attaches profiles sharing one breakpoint list of
// intervals-1 instants to ~10% of the edges, so the compiled time axis has
// exactly the requested number of elementary intervals.
func profiledNetwork(ds *MemDataset, intervals int, rng *rand.Rand) (*timedep.Network, error) {
	tn := timedep.New(ds.Graph)
	times := make([]float64, intervals-1)
	for i := range times {
		times[i] = timedepPeriod * float64(i+1) / float64(intervals)
	}
	d := ds.Graph.D()
	edges := ds.Graph.NumEdges()
	profiled := edges / 10
	if profiled < 1 {
		profiled = 1
	}
	for i := 0; i < profiled; i++ {
		mult := make([]vec.Costs, len(times))
		for j := range mult {
			m := make(vec.Costs, d)
			for c := range m {
				m[c] = 0.5 + 2*rng.Float64()
			}
			mult[j] = m
		}
		e := graph.EdgeID((i * 7919) % edges) // spread deterministically
		if err := tn.SetProfile(e, timedep.Profile{Times: times, Mult: mult}); err != nil {
			return nil, err
		}
	}
	return tn, nil
}

// runInstantQuery answers job j — skyline for even locations, top-k for
// odd, mirroring the mixed workload of the other throughput experiments —
// over either a static source (snapshot path) or the network's overlay.
func runInstantQuery(src expand.Source, ds *MemDataset, j timedepJob, tn *timedep.Network) (int, error) {
	ctx := context.Background()
	loc := ds.Queries[j.qi]
	opt := core.Options{Engine: core.CEA}
	var res *core.Result
	var err error
	switch {
	case tn != nil && j.qi%2 == 0:
		res, err = tn.SkylineAt(ctx, loc, j.at, opt)
	case tn != nil:
		res, err = tn.TopKAt(ctx, loc, ds.Aggs[j.qi], defaultK, j.at, opt)
	case j.qi%2 == 0:
		res, err = core.Skyline(src, loc, opt)
	default:
		res, err = core.TopK(src, loc, ds.Aggs[j.qi], defaultK, opt)
	}
	if err != nil {
		return 0, err
	}
	return len(res.Facilities), nil
}
