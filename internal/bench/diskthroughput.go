package bench

import (
	"context"
	"fmt"
	"time"

	"mcn/internal/core"
	"mcn/internal/engine"
	"mcn/internal/storage"
)

// The disk-throughput experiment runs the storage path against a device with
// real read latency and a bounded command queue (a cloud block volume:
// ~2 ms per read, a handful of reads in flight), so queries/sec is decided
// by how the buffer pool schedules device traffic — exactly the regime the
// paper's I/O-dominated cost model describes (Sec. VI footnote 7) — rather
// than by this machine's CPU count.
const (
	// diskRounds repeats the query set for stable figures.
	diskRounds = 2
	// diskGroup is the hot-spot factor: how many concurrent users issue
	// queries from the same location (a popular venue). Grouped requests are
	// adjacent in the batch, so they run concurrently at worker counts >=
	// diskGroup and their cold page reads can coalesce.
	diskGroup = 8
)

// The device parameters are variables so unit tests can run the experiment
// end-to-end without paying real sleeps.
var (
	// diskReadLatency is the simulated device service time per page read.
	diskReadLatency = 2 * time.Millisecond
	// diskQueueDepth bounds concurrently serviced reads: the device delivers
	// at most diskQueueDepth/diskReadLatency pages per second no matter how
	// many queries are waiting.
	diskQueueDepth = 2
	// diskWorkers is the parallelism axis.
	diskWorkers = []int{1, 2, 4, 8}
	// diskBuffer replaces the workload's default 1% buffer: against a
	// millisecond-latency device a server would cache aggressively, and the
	// larger pool keeps the sweep's wall-clock time within a CI budget.
	diskBuffer = 0.5
)

// runDiskThroughput measures disk-path queries/sec across worker counts for
// two buffer pools over the same latency-bound device: the pre-sharding
// single-mutex LRU pool without miss coalescing ("mutex") and the sharded
// clock pool with coalescing ("sharded"). The workload models a hot-spot
// pattern: groups of diskGroup users querying from the same location at the
// same time. With coalescing, a group's overlapping cold reads collapse to
// one device read each, so the sharded pool spends the device's bounded
// queue depth on distinct pages; the mutex pool re-reads the same page once
// per concurrent query and saturates the queue with duplicates.
func runDiskThroughput(cfg Config) ([]Point, error) {
	cfg.defaults()
	w := cfg.DefaultWorkload()
	w.Buffer = diskBuffer
	ds, err := BuildDataset(w)
	if err != nil {
		return nil, err
	}
	dev := storage.NewLatencyDevice(ds.Dev, diskReadLatency, diskQueueDepth)

	// Nearest and top-k keep per-query page counts moderate (unlike full
	// skylines), so the sweep completes in seconds while still reading
	// hundreds of pages per group.
	group := func(i int) []engine.Request {
		q := ds.Queries[i]
		reqs := make([]engine.Request, 0, diskGroup)
		for g := 0; g < diskGroup; g++ {
			if g%2 == 0 {
				reqs = append(reqs, engine.Request{Kind: engine.TopK, Loc: q, Agg: ds.Aggs[i], K: w.K, Opts: core.Options{Engine: core.CEA}})
			} else {
				reqs = append(reqs, engine.Request{Kind: engine.Nearest, Loc: q, CostIdx: 0, K: w.K})
			}
		}
		return reqs
	}
	var reqs []engine.Request
	for r := 0; r < diskRounds; r++ {
		for i := range ds.Queries {
			reqs = append(reqs, group(i)...)
		}
	}

	// Both pool configurations are pinned — the sharded pool's default shard
	// count derives from GOMAXPROCS, which would make the CI-gated numbers
	// depend on the runner's CPU count.
	pools := []struct {
		name string
		opts storage.PoolOptions
	}{
		{"mutex", storage.PoolOptions{Shards: 1, Policy: storage.PolicyLRU, NoCoalesce: true}},
		{"sharded", storage.PoolOptions{Shards: 8}},
	}

	var points []Point
	for _, workers := range diskWorkers {
		pt := Point{Param: fmt.Sprintf("workers=%d", workers)}
		for _, p := range pools {
			net, err := storage.OpenOptions(dev, w.Buffer, p.opts)
			if err != nil {
				return nil, err
			}
			// Warm the pool with one pass over the distinct groups so every
			// configuration measures against the same steady state.
			warm := engine.New(net, engine.Config{Workers: workers})
			for _, resp := range warm.Execute(context.Background(), reqs[:diskGroup*len(ds.Queries)]) {
				if resp.Err != nil {
					return nil, fmt.Errorf("%s warmup: %w", p.name, resp.Err)
				}
			}
			net.Pool().ResetStats()

			exec := engine.New(net, engine.Config{Workers: workers})
			var results int
			start := time.Now()
			for _, resp := range exec.Execute(context.Background(), reqs) {
				if resp.Err != nil {
					return nil, fmt.Errorf("%s workers=%d: %w", p.name, workers, resp.Err)
				}
				results += len(resp.Result.Facilities)
			}
			wall := time.Since(start).Seconds()
			stats := net.Stats()
			n := float64(len(reqs))
			pt.Rows = append(pt.Rows, Row{
				Algo:       p.name,
				QPS:        n / wall,
				SimSeconds: wall / n,
				CPUSeconds: exec.Stats().MeanLatency().Seconds(),
				PhysIO:     float64(stats.Physical) / n,
				LogicalIO:  float64(stats.Logical) / n,
				ResultSize: float64(results) / n,
			})
		}
		points = append(points, pt)
	}
	return points, nil
}
