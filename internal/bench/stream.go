package bench

import (
	"context"
	"time"

	"mcn/internal/engine"
)

// streamMinWall is the minimum measurement window for wall-clock QPS rows.
// The cached and pruned fast paths answer in microseconds, so a fixed-length
// request stream can finish in under a millisecond — a window where one
// scheduler hiccup halves the reported QPS and the regression gate flaps on
// shared runners. Repeating the identical stream until the window is long
// enough measures sustained throughput instead; per-query averages stay
// deterministic because every pass contributes identical work.
var streamMinWall = 200 * time.Millisecond

// runStream replays reqs through exec, whole passes at a time, until the
// elapsed wall clock reaches streamMinWall. It returns the number of
// requests executed, the summed result sizes and the wall seconds.
func runStream(exec *engine.Executor, reqs []engine.Request) (n int, results int, wall float64, err error) {
	start := time.Now()
	for {
		for _, resp := range exec.Execute(context.Background(), reqs) {
			if resp.Err != nil {
				return 0, 0, 0, resp.Err
			}
			results += len(resp.Result.Facilities)
		}
		n += len(reqs)
		if elapsed := time.Since(start); elapsed >= streamMinWall {
			return n, results, elapsed.Seconds(), nil
		}
	}
}
